// Table 3 — Scalability of DDPM.
//
// Paper: | n x n mesh, torus | 2logn   | 128 x 128 (16384 nodes) |
//        | n-cube hypercube  | log2^n  | 2^16 nodes              |
// We additionally validate the analytical limit constructively: the codec
// must build (and round-trip) at the limit and refuse one step beyond.
#include "bench_util.hpp"
#include "marking/ddpm.hpp"
#include "marking/scalability.hpp"
#include "topology/factory.hpp"

int main() {
  using namespace ddpm;
  using mark::SchemeKind;

  bench::banner("Table 3: Scalability of DDPM");
  {
    bench::Table t({"Topology", "Required Field", "Max Cluster Size"});
    for (const auto& row : mark::scalability_table(SchemeKind::kDdpm)) {
      t.row(row.topology, row.formula, row.max_cluster);
    }
    t.print();
  }

  bench::banner("Constructive check: codec at and beyond the limit");
  {
    bench::Table t({"topology", "required bits", "codec builds?"});
    for (const char* spec :
         {"mesh:128x128", "torus:128x128", "hypercube:16", "mesh:16x16x32",
          "mesh:256x128", "hypercube:16"}) {
      const auto topo = topo::make_topology(spec);
      const int bits = mark::DdpmCodec::required_bits(*topo);
      bool built = true;
      try {
        mark::DdpmCodec codec(*topo);
      } catch (const std::exception&) {
        built = false;
      }
      t.row(spec, bits, built ? "yes" : "refused (over 16)");
    }
    t.print();
  }

  bench::banner("Required bits by size (contrast with Tables 1-2)");
  {
    bench::Table t({"mesh side n", "simple PPM", "bit-diff PPM", "DDPM"});
    for (int n = 4; n <= 256; n *= 2) {
      t.row(n, mark::required_bits_mesh2d(SchemeKind::kSimplePpm, n),
            mark::required_bits_mesh2d(SchemeKind::kBitDiffPpm, n),
            mark::required_bits_mesh2d(SchemeKind::kDdpm, n));
    }
    t.print();
  }
  return 0;
}
