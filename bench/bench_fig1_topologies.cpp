// Figure 1 — the three direct-network families the paper targets:
// (a) 2-D mesh, (b) 4-ary 2-cube torus, (c) 3-cube hypercube, with the
// degree/diameter properties §3 quotes, plus a size sweep per family.
#include "bench_util.hpp"
#include "topology/factory.hpp"
#include "topology/graph.hpp"

int main() {
  using namespace ddpm;

  bench::banner("Figure 1: the paper's example networks");
  {
    bench::Table t({"network", "nodes", "links", "degree", "diameter",
                    "paper degree", "paper diameter"});
    struct Entry {
      const char* spec;
      int degree, diameter;
    };
    // Paper §3: mesh degree 2n / diameter sum(k-1) ("degree four, diameter
    // six" for Fig 1a); torus degree 2n / diameter sum(k/2); hypercube n/n.
    for (const Entry& e : {Entry{"mesh:4x4", 4, 6}, Entry{"torus:4x4", 4, 4},
                           Entry{"hypercube:3", 3, 3}}) {
      const auto topo = topo::make_topology(e.spec);
      t.row(e.spec, topo->num_nodes(), topo->links().size(), topo->degree(),
            topo->diameter(), e.degree, e.diameter);
    }
    t.print();
  }

  bench::banner("Family sweep (BFS-verified diameter)");
  {
    bench::Table t({"network", "nodes", "degree", "diameter",
                    "BFS diameter", "avg min hops"});
    for (const char* spec :
         {"mesh:4x4", "mesh:8x8", "mesh:16x16", "mesh:4x4x4", "torus:4x4",
          "torus:8x8", "torus:4x4x4", "hypercube:3", "hypercube:6",
          "hypercube:9"}) {
      const auto topo = topo::make_topology(spec);
      // BFS eccentricity from node 0 (all three families are
      // vertex-transitive except the mesh, where we scan all nodes).
      int bfs_diam = 0;
      double total = 0;
      std::uint64_t pairs = 0;
      const bool scan_all = topo->kind() == topo::TopologyKind::kMesh;
      const topo::NodeId sources =
          scan_all ? topo->num_nodes() : topo::NodeId(1);
      for (topo::NodeId s = 0; s < sources; ++s) {
        for (int d : topo::bfs_distances(*topo, s)) {
          bfs_diam = std::max(bfs_diam, d);
          total += d;
          ++pairs;
        }
      }
      t.row(spec, topo->num_nodes(), topo->degree(), topo->diameter(),
            bfs_diam, total / double(pairs));
    }
    t.print();
  }

  bench::banner("Why Internet traceback breaks here: cluster diameters");
  {
    // Paper §4.2: a ~1024-node mesh has diameter 62, far beyond the ~15
    // average Internet hops PPM/DPM were designed for.
    bench::Table t({"network", "nodes", "diameter", "> 16-hop DPM window?"});
    for (const char* spec : {"mesh:32x32", "mesh:64x64", "mesh:128x128",
                             "torus:32x32", "hypercube:10", "hypercube:16"}) {
      const auto topo = topo::make_topology(spec);
      t.row(spec, topo->num_nodes(), topo->diameter(),
            topo->diameter() > 16 ? "yes" : "no");
    }
    t.print();
  }
  return 0;
}
