// Experiment E1 — PPM convergence cost (paper §2 and §4.2).
//
// Savage's bound says the victim needs ~ ln(d) / (p (1-p)^(d-1)) packets to
// reconstruct a path of length d. Cluster interconnects have much larger d
// than the Internet paths PPM was designed for, so the cost explodes; and
// under adaptive routing the marks come from many paths at once and
// reconstruction mixes them. This bench measures all three effects.
#include <algorithm>
#include <cmath>

#include "bench_util.hpp"
#include "marking/ppm.hpp"
#include "marking/ppm_fragment.hpp"
#include "marking/ppm_reconstruct.hpp"
#include "marking/walk.hpp"
#include "routing/router.hpp"
#include "topology/mesh.hpp"

namespace {

using namespace ddpm;
using topo::Coord;

/// Packets until the identifier's candidates contain the true source;
/// 0 if the budget runs out.
std::uint64_t converge(const topo::Topology& topo, const route::Router& router,
                       mark::PpmScheme& scheme, mark::PpmIdentifier& identifier,
                       topo::NodeId src, topo::NodeId victim,
                       std::uint64_t budget, std::uint64_t seed) {
  identifier.reset();
  for (std::uint64_t n = 1; n <= budget; ++n) {
    mark::WalkOptions options;
    options.seed = seed * 1000003 + n;
    options.record_path = false;
    const auto walk = mark::walk_packet(topo, router, &scheme, src, victim, options);
    if (!walk.delivered()) continue;
    const auto c = identifier.observe(walk.packet, victim);
    if (std::find(c.begin(), c.end(), src) != c.end()) return n;
  }
  return 0;
}

}  // namespace

int main() {
  bench::banner("E1: packets needed to reconstruct a path of length d");
  std::cout << "(full-edge PPM on an 8x8 mesh, deterministic XY routes,\n"
               " marking probability p; simulated = mean over 5 trials)\n";

  topo::Mesh m({8, 8});
  const auto dor = route::make_router("dor", m);
  const auto victim = m.id_of(Coord{7, 7});

  for (const double p : {0.04, 0.10, 0.20}) {
    bench::Table t({"d (hops)", "formula ln(d)/(p(1-p)^(d-1))",
                    "simulated packets", "converged"});
    for (int d = 2; d <= 14; d += 2) {
      // Source at L1 distance d from the victim.
      const int dx = std::min(d, 7);
      const int dy = d - dx;
      const auto src = m.id_of(Coord{7 - dx, 7 - dy});
      double total = 0;
      int converged = 0;
      constexpr int kTrials = 5;
      for (int trial = 0; trial < kTrials; ++trial) {
        mark::PpmScheme scheme(m, mark::PpmVariant::kFullEdge, p,
                               std::uint64_t(trial) * 7 + 1);
        mark::PpmIdentifier identifier(m, mark::PpmVariant::kFullEdge);
        const auto used = converge(m, *dor, scheme, identifier, src, victim,
                                   200000, std::uint64_t(trial));
        if (used > 0) {
          total += double(used);
          ++converged;
        }
      }
      t.row(d, mark::ppm_expected_packets(d, p),
            converged ? total / converged : 0.0,
            std::to_string(converged) + "/" + std::to_string(kTrials));
    }
    std::cout << "\np = " << p << '\n';
    t.print();
  }

  bench::banner("E1b: deterministic vs adaptive routing (p = 0.1, d = 14)");
  {
    bench::Table t({"router", "mean packets to converge", "converged"});
    const auto src = m.id_of(Coord{0, 0});
    for (const char* router_name : {"dor", "west-first", "adaptive"}) {
      const auto router = route::make_router(router_name, m);
      double total = 0;
      int converged = 0;
      constexpr int kTrials = 5;
      for (int trial = 0; trial < kTrials; ++trial) {
        mark::PpmScheme scheme(m, mark::PpmVariant::kFullEdge, 0.1,
                               std::uint64_t(trial) * 13 + 5);
        mark::PpmIdentifier identifier(m, mark::PpmVariant::kFullEdge);
        const auto used = converge(m, *router, scheme, identifier, src, victim,
                                   20000, std::uint64_t(trial) + 100);
        if (used > 0) {
          total += double(used);
          ++converged;
        }
      }
      t.row(router_name, converged ? total / converged : 0.0,
            std::to_string(converged) + "/5");
    }
    t.print();
  }

  bench::banner(
      "E1d: Savage's k-fragment encoding — fits 16x16 (full-edge cannot), "
      "costs k ln(kd)/ln(d) more packets");
  {
    bench::Table t({"network", "layout", "mean packets (p=0.15)", "converged"});
    struct Case { const char* spec; int side; };
    for (const Case c : {Case{"mesh:8x8", 8}, Case{"mesh:16x16", 16}}) {
      topo::Mesh net({c.side, c.side});
      const auto router2 = route::make_router("dor", net);
      const auto src = net.id_of(Coord{0, 0});
      const auto dst = net.id_of(Coord{topo::Coord::value_type(c.side - 1),
                                       topo::Coord::value_type(c.side - 1)});
      // Fragment variant (always fits here).
      double total = 0;
      int converged = 0;
      for (int trial = 0; trial < 3; ++trial) {
        mark::FragmentPpmScheme scheme(net, 0.15, std::uint64_t(trial) + 1);
        mark::FragmentPpmIdentifier identifier(net);
        for (std::uint64_t n = 1; n <= 300000; ++n) {
          mark::WalkOptions options;
          options.seed = n * 48271 + std::uint64_t(trial);
          options.record_path = false;
          const auto walk =
              mark::walk_packet(net, *router2, &scheme, src, dst, options);
          const auto cand = identifier.observe(walk.packet, dst);
          if (std::find(cand.begin(), cand.end(), src) != cand.end()) {
            total += double(n);
            ++converged;
            break;
          }
        }
      }
      t.row(c.spec, "fragment k=4", converged ? total / converged : 0.0,
            std::to_string(converged) + "/3");
      // Full-edge where it fits.
      if (mark::PpmLayout::for_topology(mark::PpmVariant::kFullEdge, net).fits) {
        double ftotal = 0;
        int fconv = 0;
        for (int trial = 0; trial < 3; ++trial) {
          mark::PpmScheme scheme(net, mark::PpmVariant::kFullEdge, 0.15,
                                 std::uint64_t(trial) + 1);
          mark::PpmIdentifier identifier(net, mark::PpmVariant::kFullEdge);
          const auto used = converge(net, *router2, scheme, identifier, src,
                                     dst, 300000, std::uint64_t(trial) + 50);
          if (used) {
            ftotal += double(used);
            ++fconv;
          }
        }
        t.row(c.spec, "full edge", fconv ? ftotal / fconv : 0.0,
              std::to_string(fconv) + "/3");
      } else {
        t.row(c.spec, "full edge", "DOES NOT FIT (21 bits)", "-");
      }
    }
    t.print();
  }

  bench::banner("E1c: the diameter wall — formula cost at cluster scale");
  {
    bench::Table t({"network", "diameter d", "expected packets (p=0.04)"});
    struct Net { const char* name; int d; };
    for (const Net net : {Net{"Internet-ish path", 15}, Net{"mesh:16x16", 30},
                          Net{"mesh:32x32 (1024 nodes)", 62},
                          Net{"mesh:128x128", 254}}) {
      t.row(net.name, net.d, mark::ppm_expected_packets(net.d, 0.04));
    }
    t.print();
    std::cout << "The 1/(1-p)^d blow-up is why PPM cannot serve cluster\n"
                 "interconnects even before adaptivity is considered.\n";
  }
  return 0;
}
