// Ablation A8 — the baseline the paper dismissed too quickly.
//
// §2: "Ferguson and Senie proposed an ingress filtering scheme ... It is
// effective to block DDoS attacks in small networks because routers are
// aware of all source IP addresses. However, in large networks it is
// impossible to have all the IP information." Inside a cluster that
// impossibility evaporates: each switch has exactly one attached compute
// node and knows its one address (the §4.1 mapping table), so the ingress
// check is a single compare.
//
// This bench measures: (a) ingress filtering kills 100% of spoofed
// traffic at the source switch; (b) the attacker's only recourse is
// honest addresses, where victim-side address blocking suffices without
// any marking; and (c) what marking still buys — identification inside
// pre-deployed networks without filters, and attribution evidence beyond
// an address header.
#include <memory>

#include "bench_util.hpp"
#include "core/sis.hpp"

namespace {

using namespace ddpm;

core::ScenarioReport run(bool filtering, attack::SpoofStrategy spoof,
                         bool block_by_address) {
  core::ScenarioConfig config;
  config.cluster.topology = "mesh:8x8";
  config.cluster.router = "adaptive";
  config.cluster.scheme = "none";  // no marking at all in this study
  config.cluster.benign_rate_per_node = 0.0002;
  config.cluster.ingress_filtering = filtering;
  config.cluster.seed = 31;
  config.identifier = "none";
  config.detect_rate_threshold = 0.005;
  config.duration = 400000;
  config.attack.kind = attack::AttackKind::kUdpFlood;
  config.attack.victim = 27;
  config.attack.zombies = {3, 40, 59, 14};
  config.attack.rate_per_zombie = 0.008;
  config.attack.spoof = spoof;
  config.attack.start_time = 50000;

  core::SourceIdentificationSystem system(config);
  if (block_by_address) {
    // Victim-side policy without marking: once alarmed, block the claimed
    // source address of every attack packet.
    auto& net = system.network();
    auto detector =
        std::make_shared<detect::RateThresholdDetector>(0.005, 2000);
    system.set_observer([&net, detector](const pkt::Packet& p,
                                         topo::NodeId at) {
      if (at != 27) return;
      detector->observe(p, net.sim().now());
      if (detector->alarmed() && p.is_attack()) {
        net.filter().block_address(p.header.source());
      }
    });
  }
  return system.run();
}

}  // namespace

int main() {
  bench::banner("A8: RFC 2267 ingress filtering inside the cluster");
  {
    bench::Table t({"config", "attack injected", "spoofed dropped at source",
                    "attack delivered to victim"});
    const auto off = run(false, attack::SpoofStrategy::kRandomCluster, false);
    t.row("no filter, spoofing", off.metrics.injected_attack,
          off.metrics.dropped_spoofed_ingress, off.metrics.delivered_attack);
    const auto on = run(true, attack::SpoofStrategy::kRandomCluster, false);
    t.row("ingress filter, spoofing", on.metrics.injected_attack,
          on.metrics.dropped_spoofed_ingress, on.metrics.delivered_attack);
    t.print();
    std::cout << "Every spoofed packet dies at its own switch: the spoofing\n"
                 "premise of the traceback problem is optional in clusters.\n";
  }

  bench::banner("A8b: the attacker falls back to honest addresses");
  {
    bench::Table t({"victim policy", "attack delivered", "address rules",
                    "delivered after first block"});
    const auto naive = run(true, attack::SpoofStrategy::kNone, false);
    t.row("none", naive.metrics.delivered_attack, 0, "-");
    const auto blocked = run(true, attack::SpoofStrategy::kNone, true);
    t.row("block claimed address",
          blocked.metrics.delivered_attack,
          blocked.metrics.filtered_at_victim > 0 ? "installed" : "none",
          blocked.metrics.filtered_at_victim);
    t.print();
    std::cout << "\nWith spoofing off the table, the address header is\n"
                 "trustworthy and victim-side blocking needs no marking at\n"
                 "all (though source-switch blocking, which marking's\n"
                 "switch-id evidence supports, still saves the network the\n"
                 "dead traffic — compare bench_mitigation).\n\n"
                 "Critical note for EXPERIMENTS.md: inside a cluster,\n"
                 "ingress filtering + address blocking solves the paper's\n"
                 "problem under the paper's own trust assumptions; DDPM's\n"
                 "residual value is forensic (switch-written evidence\n"
                 "rather than host-written headers) and deployment-\n"
                 "flexibility (works where filters are not configured).\n";
  }
  return 0;
}
