// Extension X6 — authentication on the switching layer (paper §6.2's
// "rigorous research required" direction, made concrete).
//
// The Authenticated Stamp splits the 16-bit field into [index | MAC],
// with the MAC keyed per switch over the flow id. This bench measures the
// exact security/capacity trade:
//   (a) frame-up success of a compromised switch against the plain
//       ingress stamp (always succeeds) vs the authenticated one
//       (2^-(mac bits) per packet);
//   (b) the capacity/forgery-floor frontier as cluster size grows.
#include <cmath>

#include "bench_util.hpp"
#include "marking/authenticated.hpp"
#include "marking/ingress.hpp"
#include "netsim/rng.hpp"

int main() {
  using namespace ddpm;
  constexpr std::uint64_t kSecret = 0x5eedULL;

  bench::banner("X6a: frame-up success against a chosen innocent");
  {
    bench::Table t({"scheme", "forgery attempts", "accepted as innocent",
                    "success rate"});
    constexpr int kTrials = 100000;
    netsim::Rng rng(1);
    // Plain ingress stamp: the forger just writes the innocent's index.
    {
      mark::IngressStampIdentifier identifier(64);
      int accepted = 0;
      for (int i = 0; i < kTrials; ++i) {
        pkt::Packet p;
        p.flow = rng.next_u64();
        p.set_marking_field(7);  // frame node 7 — nothing to get wrong
        accepted += !identifier.observe(p, 63).empty();
      }
      t.row("ingress-stamp", kTrials, accepted,
            std::to_string(accepted * 100 / kTrials) + "%");
    }
    // Authenticated: the forger must guess PRF(k_7, flow) per packet.
    {
      mark::AuthenticatedStampIdentifier identifier(64, kSecret);
      int accepted = 0;
      for (int i = 0; i < kTrials; ++i) {
        pkt::Packet p;
        p.flow = rng.next_u64();
        p.set_marking_field(std::uint16_t((7u << 10) | rng.next_below(1024)));
        accepted += !identifier.observe(p, 63).empty();
      }
      std::ostringstream rate;
      rate << double(accepted) * 100.0 / kTrials << "% (theory "
           << 100.0 / 1024.0 << "%)";
      t.row("auth-stamp (10-bit MAC)", kTrials, accepted, rate.str());
    }
    t.print();
  }

  bench::banner("X6b: capacity vs forgery floor (index + MAC = 16 bits)");
  {
    bench::Table t({"cluster size", "index bits", "MAC bits",
                    "forgery success / packet", "packets to forge once (p=0.5)"});
    for (const std::uint64_t nodes : {16ull, 64ull, 256ull, 1024ull, 4096ull}) {
      mark::AuthenticatedStampScheme scheme(nodes, kSecret);
      const double p = 1.0 / double(1u << scheme.mac_bits());
      t.row(nodes, scheme.index_bits(), scheme.mac_bits(), p,
            std::uint64_t(std::log(0.5) / std::log(1.0 - p)));
    }
    t.print();
    std::cout << "\nAuthentication costs index bits: a 4096-node cluster\n"
                 "keeps only a 4-bit MAC (1/16 forgery floor), and 8192\n"
                 "nodes leave too little to be worth having. In 16 bits,\n"
                 "authentication and scalability trade directly — the\n"
                 "quantified version of the paper's §6.2 caution.\n";
  }
  return 0;
}
