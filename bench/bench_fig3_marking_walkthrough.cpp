// Figure 3 — marking walk-throughs.
//
// (a) Simple (full-edge) PPM on the 4x4 mesh: the set of edge marks a
//     victim can receive along deterministic paths from two sources. (The
//     paper labels nodes with 4-bit ids; we use our row-major ids — the
//     structure, two cleanly reconstructable paths, is the point.)
// (b) DDPM on the 4x4 mesh: the paper's exact adaptive walk from (1,1) to
//     (2,3) with distance vector evolution (1,0) ... (1,2).
// (c) DDPM on the 3-cube: the paper's exact walk ending at (0,0,0) with
//     vector (1,1,0) -> source (1,1,0).
#include "bench_util.hpp"
#include "marking/ddpm.hpp"
#include "marking/walk.hpp"
#include "routing/router.hpp"
#include "topology/factory.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"

namespace {

using namespace ddpm;
using topo::Coord;

std::string node_str(const topo::Topology& topo, topo::NodeId id) {
  return topo.coord_of(id).to_string() + "=" + std::to_string(id);
}

void part_a() {
  bench::banner("Figure 3(a): simple PPM edge marks on the 4x4 mesh");
  topo::Mesh m({4, 4});
  const auto router = route::make_router("xy", m);
  const auto victim = m.id_of(Coord{3, 2});
  for (const Coord src : {Coord{0, 1}, Coord{1, 0}}) {
    const auto walk =
        mark::walk_packet(m, *router, nullptr, m.id_of(src), victim);
    std::cout << "\npath from " << src.to_string() << ": ";
    for (std::size_t i = 0; i < walk.path.size(); ++i) {
      std::cout << (i ? " -> " : "") << node_str(m, walk.path[i]);
    }
    std::cout << '\n';
    bench::Table t({"mark (start, end, distance)", "written by", "meaning"});
    // A mark (start, end, d): `start` marked, its successor completed the
    // edge, and d switches forwarded the packet after `start`.
    const auto& path = walk.path;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const int d = int(path.size()) - 2 - int(i);
      std::string cell = "(";
      cell += node_str(m, path[i]);
      cell += ", ";
      cell += (d == 0) ? "-stale-" : node_str(m, path[i + 1]);
      cell += ", ";
      cell += std::to_string(d);
      cell += ")";
      t.row(cell, node_str(m, path[i]),
            d == 0 ? "last forwarding switch" : "edge at distance " + std::to_string(d));
    }
    t.print();
  }
  std::cout << "\nThe victim chains marks of adjacent distances to rebuild\n"
               "each path — needing MANY packets so every edge gets sampled.\n";
}

void part_b() {
  bench::banner("Figure 3(b): DDPM distance vector on the 4x4 mesh (paper's walk)");
  topo::Mesh m({4, 4});
  mark::DdpmScheme scheme(m);
  mark::DdpmIdentifier identifier(m);
  const std::vector<Coord> visited{{1, 1}, {2, 1}, {3, 1}, {3, 0},
                                   {2, 0}, {2, 1}, {2, 2}, {2, 3}};
  pkt::Packet p;
  p.dest_node = m.id_of(visited.back());
  scheme.on_injection(p, m.id_of(visited.front()));
  bench::Table t({"hop", "at node", "V (decoded)", "MF (hex)"});
  for (std::size_t i = 1; i < visited.size(); ++i) {
    scheme.on_forward(p, m.id_of(visited[i - 1]), m.id_of(visited[i]));
    std::ostringstream hex;
    hex << "0x" << std::hex << std::setw(4) << std::setfill('0')
        << p.marking_field();
    t.row(i, visited[i].to_string(),
          scheme.codec().decode(p.marking_field()).to_string(), hex.str());
  }
  t.print();
  const auto src = identifier.identify(p.dest_node, p.marking_field());
  std::cout << "victim (2,3) computes (2,3) - V = "
            << m.coord_of(*src).to_string()
            << "  -> source identified from ONE packet\n";
}

void part_c() {
  bench::banner("Figure 3(c): DDPM XOR vector on the 3-cube (paper's walk)");
  topo::Hypercube h(3);
  mark::DdpmScheme scheme(h);
  mark::DdpmIdentifier identifier(h);
  const std::vector<Coord> visited{{1, 1, 0}, {0, 1, 0}, {0, 1, 1}, {1, 1, 1},
                                   {1, 0, 1}, {1, 0, 0}, {0, 0, 0}};
  pkt::Packet p;
  p.dest_node = h.id_of(visited.back());
  scheme.on_injection(p, h.id_of(visited.front()));
  bench::Table t({"hop", "at node", "V (decoded)"});
  for (std::size_t i = 1; i < visited.size(); ++i) {
    scheme.on_forward(p, h.id_of(visited[i - 1]), h.id_of(visited[i]));
    t.row(i, visited[i].to_string(),
          scheme.codec().decode(p.marking_field()).to_string());
  }
  t.print();
  const auto src = identifier.identify(p.dest_node, p.marking_field());
  std::cout << "victim (0,0,0) computes (0,0,0) XOR V = "
            << h.coord_of(*src).to_string()
            << "  -> source identified from ONE packet\n";
}

}  // namespace

int main() {
  part_a();
  part_b();
  part_c();
  return 0;
}
