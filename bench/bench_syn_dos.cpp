// Extension X3 — the SYN flood as an actual denial of service.
//
// The paper's §1 description: "TCP SYN flooding attack makes as many TCP
// half-open connections as the victim host is limited to receive", while
// "the individual connection has nothing wrong". With the transport model
// we can measure what the victim's USERS see — connection success rate —
// through the attack and through DDPM-driven quarantine.
#include <map>

#include "bench_util.hpp"
#include "marking/ddpm.hpp"
#include "transport/tcp.hpp"

namespace {

using namespace ddpm;

struct Timeline {
  std::map<std::uint64_t, std::uint64_t> attempted, completed;
  transport::TcpStats final_stats;
  std::uint64_t blocked_zombies = 0;
};

Timeline run(bool defend, std::uint64_t window) {
  cluster::ClusterConfig config;
  config.topology = "mesh:8x8";
  config.router = "adaptive";
  config.scheme = "ddpm";
  config.benign_rate_per_node = 0.0;
  config.seed = 1010;
  cluster::ClusterNetwork net(config);

  attack::AttackConfig attack;
  attack.kind = attack::AttackKind::kSynFlood;
  attack.victim = 27;  // the cluster's service node
  attack.zombies = {3, 12, 33, 48, 59};
  attack.rate_per_zombie = 0.002;
  attack.spoof = attack::SpoofStrategy::kRandomCluster;
  attack.start_time = 200000;
  net.set_attack(attack);

  transport::TcpConfig tcp;
  tcp.connection_rate_per_node = 0.00002;
  tcp.server_backlog = 64;
  tcp.handshake_timeout = 50000;
  tcp.fixed_server = attack.victim;
  transport::TcpWorkload workload(net, tcp);

  Timeline timeline;
  mark::DdpmIdentifier identifier(net.topology());
  workload.set_tap([&](const pkt::Packet& p, topo::NodeId at) {
    if (!defend || at != attack.victim || !p.is_attack()) return;
    const auto named = identifier.observe(p, at);
    if (named.size() == 1 && !net.filter().blocks_injection(named.front())) {
      net.filter().block_source_node(named.front());
      ++timeline.blocked_zombies;
    }
  });

  net.start();
  workload.start();
  transport::TcpStats last{};
  for (std::uint64_t t = window; t <= 1000000; t += window) {
    net.run_until(t);
    const auto& s = workload.stats();
    timeline.attempted[t / window] = s.attempted - last.attempted;
    timeline.completed[t / window] = s.completed - last.completed;
    last = s;
  }
  timeline.final_stats = workload.stats();
  return timeline;
}

}  // namespace

int main() {
  constexpr std::uint64_t kWindow = 100000;
  const Timeline off = run(false, kWindow);
  const Timeline on = run(true, kWindow);

  bench::banner("X3: service-level SYN-flood outage and recovery");
  std::cout << "64-node mesh; every client dials the service node; 5 spoofing\n"
               "zombies open "
            << "SYN floods at t=200000; backlog 64, 50k-tick timeout.\n\n";
  bench::Table t({"window", "success (no defense)", "success (DDPM+quarantine)"});
  for (std::uint64_t w = 1; w <= 10; ++w) {
    auto rate = [&](const Timeline& tl) -> std::string {
      const auto att = tl.attempted.at(w);
      if (att == 0) return "-";
      return std::to_string(tl.completed.at(w) * 100 / att) + "%";
    };
    t.row(std::to_string((w - 1) * kWindow) + "+", rate(off), rate(on));
  }
  t.print();

  std::cout << "\nno defense:   " << off.final_stats.attempted << " attempts, "
            << off.final_stats.refused << " refused at a full backlog, "
            << off.final_stats.attack_syns << " attack SYNs absorbed, "
            << off.final_stats.backscatter << " backscatter SYN+ACKs\n";
  std::cout << "with defense: " << on.final_stats.attempted << " attempts, "
            << on.final_stats.refused << " refused, "
            << on.final_stats.attack_syns << " attack SYNs absorbed, "
            << on.blocked_zombies << " zombies quarantined\n";
  std::cout << "\nReading: without identification the service flatlines for\n"
               "the rest of the run (each spoofed SYN pins a backlog slot\n"
               "for the full timeout). With DDPM, each zombie is cut off at\n"
               "its first delivered SYN and service recovers within one\n"
               "timeout window.\n";
  return 0;
}
