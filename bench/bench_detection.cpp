// Ablation A3 — the detection stage the paper assumes (§6.1).
//
// Identification is only as fast as detection. This bench sweeps attack
// intensity and compares the detectors' time-to-alarm and their benign
// false-alarm behavior: the EWMA rate detector, the source-entropy
// detector (spoofing makes entropy spike), and the SYN half-open counter.
#include <optional>

#include "bench_util.hpp"
#include "cluster/network.hpp"
#include "detect/detector.hpp"

namespace {

using namespace ddpm;

struct AlarmTimes {
  std::optional<netsim::SimTime> rate, entropy, syn;
};

AlarmTimes run(double attack_rate, attack::AttackKind kind) {
  cluster::ClusterConfig config;
  config.topology = "mesh:8x8";
  config.router = "adaptive";
  config.scheme = "ddpm";
  config.benign_rate_per_node = 0.0003;
  config.seed = 31337;
  cluster::ClusterNetwork net(config);

  attack::AttackConfig attack;
  attack.kind = kind;
  attack.victim = 27;
  attack.zombies = {1, 14, 40, 62};
  attack.rate_per_zombie = attack_rate;
  attack.spoof = attack::SpoofStrategy::kRandomAny;
  attack.start_time = 150000;
  net.set_attack(attack);

  detect::RateThresholdDetector rate(0.005, 2000);
  // Benign baseline: ~63 distinct sources over a 256-packet window gives
  // ~5.9 bits; random-any spoofing drives the window toward 8 bits.
  detect::EntropyDetector entropy(256, 0.5, 6.8);
  detect::SynHalfOpenDetector syn(64, 50000);
  net.set_delivery_hook([&](const pkt::Packet& p, topo::NodeId at) {
    if (at != attack.victim) return;
    const auto now = net.sim().now();
    rate.observe(p, now);
    entropy.observe(p, now);
    syn.observe(p, now);
  });
  net.start();
  net.run_until(500000);
  return {rate.alarm_time(), entropy.alarm_time(), syn.alarm_time()};
}

std::string latency(std::optional<netsim::SimTime> alarm,
                    netsim::SimTime start) {
  if (!alarm) return "no alarm";
  if (*alarm < start) return "FALSE ALARM (pre-attack)";
  std::string out = "+";
  out += std::to_string(*alarm - start);
  out += " ticks";
  return out;
}

}  // namespace

int main() {
  constexpr netsim::SimTime kStart = 150000;

  bench::banner("A3: detection latency vs UDP-flood intensity (alarm after attack start)");
  {
    bench::Table t({"rate/zombie", "EWMA rate", "source entropy",
                    "SYN half-open"});
    for (const double rate : {0.0005, 0.001, 0.002, 0.005, 0.01, 0.02}) {
      const auto a = run(rate, attack::AttackKind::kUdpFlood);
      t.row(rate, latency(a.rate, kStart), latency(a.entropy, kStart),
            latency(a.syn, kStart));
    }
    t.print();
    std::cout << "SYN counter stays silent on UDP floods (by design);\n"
                 "entropy fires when spoofed-source diversity floods the\n"
                 "window; EWMA needs the rate to clear its threshold.\n";
  }

  bench::banner("A3b: SYN flood — the half-open counter's home turf");
  {
    bench::Table t({"rate/zombie", "EWMA rate", "source entropy",
                    "SYN half-open"});
    for (const double rate : {0.0005, 0.002, 0.01}) {
      const auto a = run(rate, attack::AttackKind::kSynFlood);
      t.row(rate, latency(a.rate, kStart), latency(a.entropy, kStart),
            latency(a.syn, kStart));
    }
    t.print();
  }

  bench::banner("A3c: benign-only run (false-alarm check, 500k ticks)");
  {
    const auto a = run(0.0, attack::AttackKind::kNone);
    bench::Table t({"EWMA rate", "source entropy", "SYN half-open"});
    t.row(a.rate ? "FALSE ALARM" : "quiet",
          a.entropy ? "FALSE ALARM" : "quiet",
          a.syn ? "FALSE ALARM" : "quiet");
    t.print();
  }
  return 0;
}
