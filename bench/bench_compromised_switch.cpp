// Ablation A1 — violating the trusted-switch assumption (paper §4.1:
// "switches cannot be compromised"; §6.2 calls authenticated marking
// future work).
//
// A growing fraction of switches is compromised and corrupts the Marking
// Field of every packet it forwards. For each scheme we measure, over
// random (source, victim) pairs on adaptive routes:
//   correct    — single-packet verdicts naming the true source
//   misled     — verdicts naming an innocent node (the dangerous case)
//   detected   — fields the victim can at least recognize as invalid
//   silent     — no single verdict (ambiguous/empty)
#include "bench_util.hpp"
#include "marking/ddpm.hpp"
#include "marking/tamper.hpp"
#include "marking/walk.hpp"
#include "routing/router.hpp"
#include "topology/factory.hpp"

namespace {

using namespace ddpm;

struct Tally {
  int correct = 0, misled = 0, detected = 0, silent = 0, total = 0;
};

}  // namespace

int main() {
  bench::banner("A1: DDPM under compromised switches (8x8 mesh, adaptive)");
  const auto topo = topo::make_topology("mesh:8x8");
  const auto router = route::make_router("adaptive", *topo);

  bench::Table t({"compromised switches", "correct", "misled (innocent)",
                  "detected invalid", "no verdict"});
  for (const int compromised_count : {0, 1, 2, 4, 8, 16}) {
    netsim::Rng rng(900 + compromised_count);
    std::unordered_set<topo::NodeId> compromised;
    while (int(compromised.size()) < compromised_count) {
      compromised.insert(topo::NodeId(rng.next_below(topo->num_nodes())));
    }
    mark::TamperingScheme scheme(std::make_unique<mark::DdpmScheme>(*topo),
                                 compromised,
                                 mark::TamperingScheme::Action::kRandomize);
    mark::DdpmIdentifier identifier(*topo);
    Tally tally;
    for (int trial = 0; trial < 2000; ++trial) {
      const auto src = topo::NodeId(rng.next_below(topo->num_nodes()));
      auto dst = topo::NodeId(rng.next_below(topo->num_nodes()));
      if (dst == src) dst = (dst + 1) % topo->num_nodes();
      mark::WalkOptions options;
      options.seed = rng.next_u64();
      options.record_path = false;
      const auto walk =
          mark::walk_packet(*topo, *router, &scheme, src, dst, options);
      if (!walk.delivered()) continue;
      ++tally.total;
      const auto named = identifier.identify(dst, walk.packet.marking_field());
      if (!named) {
        ++tally.detected;
      } else if (*named == src) {
        ++tally.correct;
      } else {
        ++tally.misled;
      }
    }
    auto pct = [&tally](int v) {
      return std::to_string(v * 100 / std::max(tally.total, 1)) + "%";
    };
    t.row(compromised_count, pct(tally.correct), pct(tally.misled),
          pct(tally.detected), pct(tally.silent));
  }
  t.print();

  bench::banner("A1b: targeted frame-up from one compromised last-hop switch");
  {
    // The strongest attack: the victim's neighbor switch rewrites every
    // field to decode to a chosen innocent node. DDPM has no defense — the
    // paper's trust assumption is load-bearing, and this quantifies it.
    const auto victim = topo->num_nodes() - 1;
    const auto innocent = topo::NodeId(7);
    const auto last_hop = topo->neighbors(victim).front();
    mark::DdpmCodec codec(*topo);
    const auto frame = codec.encode(topo->coord_of(victim) -
                                    topo->coord_of(innocent));
    mark::TamperingScheme scheme(std::make_unique<mark::DdpmScheme>(*topo),
                                 {last_hop},
                                 mark::TamperingScheme::Action::kFrameUp,
                                 frame);
    mark::DdpmIdentifier identifier(*topo);
    netsim::Rng rng(4321);
    int framed = 0, total = 0;
    for (int trial = 0; trial < 1000; ++trial) {
      const auto src = topo::NodeId(rng.next_below(topo->num_nodes() - 1));
      mark::WalkOptions options;
      options.seed = rng.next_u64();
      options.record_path = false;
      const auto walk =
          mark::walk_packet(*topo, *router, &scheme, src, victim, options);
      if (!walk.delivered()) continue;
      ++total;
      const auto named = identifier.identify(victim, walk.packet.marking_field());
      framed += (named == innocent);
    }
    std::cout << "packets routed through the compromised switch that frame\n"
                 "node " << innocent << ": " << framed << "/" << total
              << " (" << framed * 100 / std::max(total, 1) << "%)\n"
              << "-> switch integrity is a hard prerequisite; marking alone\n"
                 "   cannot authenticate itself in 16 bits (paper §6.2).\n";
  }
  return 0;
}
