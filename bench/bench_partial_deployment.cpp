// Ablation A2 — incremental deployment (paper §6.1: "find a minimal set
// of trusted switches for detection and identification ... requires more
// extensive research").
//
// Only a random fraction of switches runs DDPM. Any unmarked hop removes
// its delta from the telescoping sum, so attribution shifts; an undeployed
// source switch additionally leaves the attacker's seeded field alive.
// Measured: correct / off-by-k / detected-invalid verdicts vs deployment
// fraction, with honest and with field-seeding attackers.
#include "bench_util.hpp"
#include "marking/ddpm.hpp"
#include "marking/tamper.hpp"
#include "marking/walk.hpp"
#include "routing/router.hpp"
#include "topology/factory.hpp"

namespace {

using namespace ddpm;

std::unordered_set<topo::NodeId> sample_deployed(const topo::Topology& topo,
                                                 double fraction,
                                                 netsim::Rng& rng) {
  std::unordered_set<topo::NodeId> deployed;
  for (topo::NodeId n = 0; n < topo.num_nodes(); ++n) {
    if (rng.next_bool(fraction)) deployed.insert(n);
  }
  return deployed;
}

}  // namespace

int main() {
  const auto topo = topo::make_topology("mesh:8x8");
  const auto router = route::make_router("adaptive", *topo);
  mark::DdpmIdentifier identifier(*topo);
  mark::DdpmCodec codec(*topo);

  for (const bool attacker_seeds : {false, true}) {
    bench::banner(std::string("A2: DDPM vs deployment fraction, ") +
                  (attacker_seeds ? "attacker seeds the field"
                                  : "honest traffic"));
    bench::Table t({"deployed", "correct", "off by 1-2 hops", "further off",
                    "detected invalid"});
    for (const double fraction : {1.0, 0.95, 0.9, 0.75, 0.5, 0.25}) {
      netsim::Rng rng(7000 + int(fraction * 100) + attacker_seeds);
      int correct = 0, near = 0, far = 0, detected = 0, total = 0;
      for (int round = 0; round < 20; ++round) {
        mark::PartialDeploymentScheme scheme(
            std::make_unique<mark::DdpmScheme>(*topo),
            sample_deployed(*topo, fraction, rng));
        for (int trial = 0; trial < 100; ++trial) {
          const auto src = topo::NodeId(rng.next_below(topo->num_nodes()));
          auto dst = topo::NodeId(rng.next_below(topo->num_nodes()));
          if (dst == src) dst = (dst + 1) % topo->num_nodes();
          std::uint16_t seed_field = 0;
          if (attacker_seeds) {
            // Seed a random in-range displacement to deflect attribution.
            auto v = topo::Coord(topo->num_dims());
            for (std::size_t d = 0; d < v.size(); ++d) {
              v[d] = topo::Coord::value_type(
                  rng.next_in(-(topo->dim_size(d) - 1), topo->dim_size(d) - 1));
            }
            seed_field = codec.encode(v);
          }
          mark::WalkOptions options;
          options.seed = rng.next_u64();
          options.record_path = false;
          const auto walk = mark::walk_packet(*topo, *router, &scheme, src,
                                              dst, options, seed_field);
          if (!walk.delivered()) continue;
          ++total;
          const auto named =
              identifier.identify(dst, walk.packet.marking_field());
          if (!named) {
            ++detected;
          } else if (*named == src) {
            ++correct;
          } else if (topo->min_hops(*named, src) <= 2) {
            ++near;
          } else {
            ++far;
          }
        }
      }
      auto pct = [total](int v) {
        return std::to_string(v * 100 / std::max(total, 1)) + "%";
      };
      t.row(std::to_string(int(fraction * 100)) + "%", pct(correct), pct(near),
            pct(far), pct(detected));
    }
    t.print();
  }
  std::cout << "\nReading: DDPM degrades gracefully with honest traffic\n"
               "(missing hops shift attribution to nearby nodes), but any\n"
               "undeployed source switch lets a seeding attacker relocate\n"
               "itself arbitrarily: identification needs full (or at least\n"
               "source-side) switch coverage — the paper's §6.1 open problem\n"
               "made quantitative.\n";
  return 0;
}
