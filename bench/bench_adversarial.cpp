// Ablation A7 — adversaries that outflank source identification.
//
// Two attacks the paper's threat model does not cover, measured against
// the full pipeline:
//   (a) Reflection: zombies SYN random servers with the victim's spoofed
//       address; the SYN+ACK backscatter floods the victim. Marking
//       truthfully names the REFLECTORS — blocking them is whack-a-mole
//       against innocents while the zombies rotate to fresh reflectors.
//   (b) Pulsing (shrew): on/off bursts tuned against the EWMA detector's
//       half-life delay or fully evade detection while still delivering
//       most of the flood.
#include <algorithm>
#include <set>

#include "bench_util.hpp"
#include "detect/detector.hpp"
#include "marking/ddpm.hpp"
#include "transport/tcp.hpp"

namespace {

using namespace ddpm;

void reflector() {
  bench::banner("A7a: reflector attack — whack-a-mole against innocents");
  cluster::ClusterConfig config;
  config.topology = "mesh:8x8";
  config.router = "adaptive";
  config.scheme = "ddpm";
  config.benign_rate_per_node = 0.0;
  config.seed = 2;
  cluster::ClusterNetwork net(config);
  attack::AttackConfig attack;
  attack.kind = attack::AttackKind::kReflector;
  attack.victim = 27;
  attack.zombies = {3, 40, 59};
  attack.rate_per_zombie = 0.002;
  attack.start_time = 0;
  net.set_attack(attack);
  transport::TcpConfig tcp;
  tcp.connection_rate_per_node = 0.0;
  transport::TcpWorkload workload(net, tcp);

  // Naive mitigation: block whatever DDPM names on backscatter packets.
  mark::DdpmIdentifier identifier(net.topology());
  std::set<topo::NodeId> blocked;
  std::uint64_t backscatter_at_victim = 0;
  workload.set_tap([&](const pkt::Packet& p, topo::NodeId at) {
    if (at != attack.victim || !(p.tcp_flags & pkt::tcpflags::kAck)) return;
    ++backscatter_at_victim;
    const auto named = identifier.observe(p, at);
    if (named.size() == 1 && !blocked.count(named.front())) {
      net.filter().block_source_node(named.front());
      blocked.insert(named.front());
    }
  });
  net.start();
  workload.start();

  bench::Table t({"time", "backscatter at victim", "nodes blocked",
                  "innocents blocked", "zombies blocked"});
  for (netsim::SimTime when = 100000; when <= 600000; when += 100000) {
    net.run_until(when);
    std::size_t innocents = 0, zombies = 0;
    for (auto n : blocked) {
      if (std::count(attack.zombies.begin(), attack.zombies.end(), n)) {
        ++zombies;
      } else {
        ++innocents;
      }
    }
    t.row(when, backscatter_at_victim, blocked.size(), innocents, zombies);
  }
  t.print();
  std::cout << "Marking is telling the truth — each SYN+ACK really came\n"
               "from the reflector it names — but the blocking policy ends\n"
               "up quarantining essentially the whole cluster (60 innocents\n"
               "here) while the orchestrating zombies never send the victim\n"
               "a byte under their own address. The attacker has weaponized\n"
               "the mitigation. Tracing the zombies requires correlating at\n"
               "the REFLECTORS, whose DDPM marks on the incoming SYNs do\n"
               "name them.\n";
}

void pulsing() {
  bench::banner("A7b: pulsing flood vs the EWMA rate detector");
  auto run = [](netsim::SimTime period, double duty) {
    cluster::ClusterConfig config;
    config.topology = "mesh:8x8";
    config.benign_rate_per_node = 0.0002;
    config.seed = 9;
    cluster::ClusterNetwork net(config);
    attack::AttackConfig attack;
    attack.kind = attack::AttackKind::kUdpFlood;
    attack.victim = 27;
    attack.zombies = {3, 40, 59};
    attack.rate_per_zombie = 0.004;
    attack.start_time = 50000;
    attack.pulse_period = period;
    attack.pulse_duty = duty;
    net.set_attack(attack);
    detect::RateThresholdDetector ewma(0.006, 4000);
    detect::CusumDetector cusum(/*window=*/2000, /*benign_mean=*/0.45,
                                /*slack=*/1.0, /*threshold=*/25.0);
    net.set_delivery_hook([&](const pkt::Packet& p, topo::NodeId at) {
      if (at != 27) return;
      ewma.observe(p, net.sim().now());
      cusum.observe(p, net.sim().now());
    });
    net.start();
    net.run_until(600000);
    return std::make_tuple(ewma.alarm_time(), cusum.alarm_time(),
                           net.metrics().delivered_attack);
  };
  bench::Table t({"pulse period", "duty", "attack delivered",
                  "EWMA detects", "CUSUM detects"});
  struct Case { netsim::SimTime period; double duty; };
  for (const Case c : {Case{0, 1.0}, Case{40000, 0.5}, Case{16000, 0.25},
                       Case{8000, 0.1}, Case{4000, 0.05}}) {
    const auto [ewma_alarm, cusum_alarm, delivered] = run(c.period, c.duty);
    auto show = [](const std::optional<netsim::SimTime>& alarm) {
      if (!alarm) return std::string("NEVER (evaded)");
      std::string out = "+";
      out += std::to_string(*alarm - 50000);
      out += " ticks";
      return out;
    };
    t.row(c.period == 0 ? "continuous" : std::to_string(c.period),
          c.duty, delivered, show(ewma_alarm), show(cusum_alarm));
  }
  t.print();
  std::cout << "Short low-duty bursts deliver a thinner flood but stay\n"
               "under the EWMA threshold — the §6.1 detection assumption\n"
               "is where this pipeline is attackable, not identification.\n"
               "The classic fix, also implemented: CUSUM ratchets across\n"
               "bursts instead of decaying between them.\n";
}

void two_stage() {
  bench::banner("A7c: two-stage reflection tracing (the constructive fix)");
  cluster::ClusterConfig config;
  config.topology = "mesh:8x8";
  config.router = "adaptive";
  config.scheme = "ddpm";
  config.benign_rate_per_node = 0.0;
  config.seed = 2;
  cluster::ClusterNetwork net(config);
  attack::AttackConfig attack;
  attack.kind = attack::AttackKind::kReflector;
  attack.victim = 27;
  attack.zombies = {3, 40, 59};
  attack.rate_per_zombie = 0.002;
  attack.start_time = 0;
  net.set_attack(attack);
  transport::TcpConfig tcp;
  tcp.connection_rate_per_node = 0.00002;
  transport::TcpWorkload workload(net, tcp);
  mark::DdpmIdentifier identifier(net.topology());
  workload.enable_reflection_tracing(&identifier);
  net.start();
  workload.start();

  bench::Table t({"time", "zombies traced", "innocents accused"});
  for (netsim::SimTime when = 20000; when <= 100000; when += 20000) {
    net.run_until(when);
    const auto traced = workload.trace_reflection(attack.victim);
    std::size_t zombies = 0, innocents = 0;
    for (auto n : traced) {
      if (std::count(attack.zombies.begin(), attack.zombies.end(), n)) {
        ++zombies;
      } else {
        ++innocents;
      }
    }
    t.row(when, std::to_string(zombies) + "/" +
                    std::to_string(attack.zombies.size()),
          innocents);
  }
  t.print();
  std::cout << "Every server records the DDPM-identified origin of each\n"
               "incoming SYN keyed by its CLAIMED source. Asking 'who has\n"
               "been impersonating the victim?' names exactly the zombies —\n"
               "within the first seconds of the attack, zero innocents.\n"
               "Marking is sufficient for reflection attacks too, provided\n"
               "the correlation happens where the forged packets land.\n";
}

}  // namespace

int main() {
  reflector();
  two_stage();
  pulsing();
  return 0;
}
