// Ablation A6 — the record-route IP option, measured (paper §4.2's
// rejected alternative).
//
// Identical benign workloads on the cluster simulator, marking with DDPM
// (zero wire overhead) vs record-route (4 bytes per hop per packet, capped
// at 9 entries). With small packets the option inflates wire load by tens
// of percent: queues fill sooner, latency climbs, drops appear — the
// "large overhead" the paper waves at, in numbers.
#include "bench_util.hpp"
#include "cluster/network.hpp"
#include "marking/record_route.hpp"

namespace {

using namespace ddpm;

struct Result {
  std::uint64_t delivered;
  std::uint64_t dropped;
  double mean_latency;
  double mean_wire_bytes;
};

/// Identical workload; only the per-packet wire size differs (the +36
/// bytes a 9-entry record-route option would add).
Result run(double rate, std::uint32_t payload) {
  cluster::ClusterConfig config;
  config.topology = "mesh:8x8";
  config.router = "adaptive";
  config.scheme = "ddpm";
  config.benign_rate_per_node = rate;
  config.benign_payload = payload;
  config.queue_capacity = 8;
  config.seed = 4;
  cluster::ClusterNetwork net(config);
  net.start();
  net.run_until(400000);
  const auto& m = net.metrics();
  return {m.delivered(), m.dropped(), m.latency_benign.mean(), 0.0};
}

}  // namespace

int main() {
  bench::banner("A6: record-route option overhead (paper §4.2's rejected idea)");
  {
    bench::Table t({"payload", "marking", "wire bytes at victim (14 hops)",
                    "overhead"});
    for (const std::uint32_t payload : {44u, 236u, 1004u}) {
      const std::uint32_t base = 20 + payload;
      const std::uint32_t rr = base + 4 * 9;  // 9 recorded hops (RFC cap)
      t.row(payload, "ddpm", base, "0%");
      t.row(payload, "record-route", rr,
            std::to_string((rr - base) * 100 / base) + "%");
    }
    t.print();
  }

  bench::banner("A6b: end-to-end effect of the extra bytes (64-byte packets)");
  {
    // The option's +36 bytes on a 64-byte payload is ~43% more wire load;
    // emulate it by inflating the payload by the same amount and compare
    // identical workloads.
    bench::Table t({"offered rate", "marking", "delivered", "dropped",
                    "mean latency"});
    for (const double rate : {0.0005, 0.001, 0.002}) {
      const Result ddpm = run(rate, 44);
      const Result rr = run(rate, 44 + 36);
      t.row(rate, "ddpm (84B wire)", ddpm.delivered, ddpm.dropped,
            ddpm.mean_latency);
      t.row(rate, "record-route (120B wire)", rr.delivered, rr.dropped,
            rr.mean_latency);
    }
    t.print();
    std::cout << "\nSame traffic, same routes: the option alone adds ~35% to\n"
                 "mean latency at these loads (and saturates links sooner at\n"
                 "higher ones) — and past 9 hops it stops recording anyway.\n"
                 "DDPM buys exact identification for zero wire bytes.\n";
  }
  return 0;
}
