// Ablation A4 — performance vs security at network level (paper §6.2:
// "we need to find the relationship between performance degradation and
// security functions").
//
// Identical benign workloads on the full cluster simulator with marking
// disabled / DDPM / DPM / PPM: delivered-packet latency and throughput
// must be statistically indistinguishable, because marking work is orders
// of magnitude below link serialization (see bench_switch_overhead for the
// per-operation numbers).
#include "bench_util.hpp"
#include "cluster/network.hpp"

namespace {

using namespace ddpm;

struct RunResult {
  std::uint64_t delivered;
  double mean_latency;
  double p99_latency;
  double mean_hops;
};

RunResult run(const std::string& scheme, const std::string& pattern) {
  cluster::ClusterConfig config;
  config.topology = "torus:8x8";
  config.router = "adaptive";
  config.scheme = scheme;
  config.pattern = pattern;
  config.benign_rate_per_node = 0.001;
  config.seed = 5;  // identical workload across schemes
  cluster::ClusterNetwork net(config);
  net.start();
  net.run_until(400000);
  const auto& m = net.metrics();
  return {m.delivered_benign, m.latency_benign.mean(),
          m.latency_benign_p99.value(), m.hops.mean()};
}

}  // namespace

int main() {
  for (const char* pattern : {"uniform", "transpose", "hotspot"}) {
    bench::banner(std::string("A4: benign ") + pattern +
                  " workload, torus:8x8, adaptive routing");
    bench::Table t({"scheme", "delivered", "mean latency (ticks)",
                    "p99 latency", "mean hops"});
    for (const char* scheme : {"none", "ddpm", "dpm", "ppm-full"}) {
      const auto r = run(scheme, pattern);
      t.row(scheme, r.delivered, r.mean_latency, r.p99_latency, r.mean_hops);
    }
    t.print();
  }
  std::cout << "\nMarking changes neither delivery counts nor latency: the\n"
               "simulator charges the same link costs, and the real-world\n"
               "analogue (ns-scale ALU work per hop, bench_switch_overhead)\n"
               "is far below serialization delay — the paper's §6.2\n"
               "expectation, made concrete.\n";
  return 0;
}
