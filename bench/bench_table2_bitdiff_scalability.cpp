// Table 2 — Scalability of simple bit-difference PPM.
//
// Note: the paper's printed hypercube formula is inconsistent with its own
// quoted maximum (2^8 nodes); we use the self-consistent reading
// (one index + bit position + distance). See EXPERIMENTS.md.
#include "bench_util.hpp"
#include "marking/scalability.hpp"

int main() {
  using namespace ddpm;
  using mark::SchemeKind;

  bench::banner("Table 2: Scalability of simple bit-difference PPM");
  {
    bench::Table t({"Topology", "Required Field", "Max Cluster Size"});
    for (const auto& row : mark::scalability_table(SchemeKind::kBitDiffPpm)) {
      t.row(row.topology, row.formula, row.max_cluster);
    }
    t.print();
  }

  bench::banner("Required bits by size (16-bit Marking Field)");
  {
    bench::Table t({"mesh side n", "bits needed", "fits?"});
    for (int n = 4; n <= 256; n *= 2) {
      const int bits = mark::required_bits_mesh2d(SchemeKind::kBitDiffPpm, n);
      t.row(n, bits, bits <= 16 ? "yes" : "NO");
    }
    t.print();
  }
  {
    bench::Table t({"hypercube n", "nodes", "bits needed", "fits?"});
    for (int n = 4; n <= 12; ++n) {
      const int bits = mark::required_bits_hypercube(SchemeKind::kBitDiffPpm, n);
      t.row(n, 1 << n, bits, bits <= 16 ? "yes" : "NO");
    }
    t.print();
  }
  return 0;
}
