// Experiment E3 — the headline comparison: source-identification quality of
// DDPM vs DPM vs PPM across routing algorithms (paper §4-§5).
//
// For random (source, victim) pairs, packets flow until the victim-side
// identifier names exactly the true source (or the budget runs out).
// Reported per (scheme, router):
//   accuracy   — pairs where the true source was (eventually) named alone
//   packets    — mean packets consumed until that happened
//   misnamed   — pairs where some single innocent node was named first
//
// Expected shape (the paper's argument): DDPM = 100% with 1 packet under
// every router; DPM only works under the deterministic router it trained
// on, and ambiguously; PPM needs orders of magnitude more packets and
// degrades under adaptivity.
#include <algorithm>

#include "bench_util.hpp"
#include "marking/ddpm.hpp"
#include "marking/dpm.hpp"
#include "marking/ppm.hpp"
#include "marking/ppm_reconstruct.hpp"
#include "marking/walk.hpp"
#include "routing/dor.hpp"
#include "routing/router.hpp"
#include "topology/factory.hpp"

namespace {

using namespace ddpm;

struct Outcome {
  int identified = 0;
  int misnamed = 0;
  double packets = 0;
};

/// One (src, victim) episode: feed packets, watch the candidate sets.
struct Episode {
  bool identified = false;
  bool misnamed_first = false;
  std::uint64_t packets_used = 0;
};

Episode run_episode(const topo::Topology& topo, const route::Router& router,
                    mark::MarkingScheme* scheme,
                    mark::SourceIdentifier& identifier, topo::NodeId src,
                    topo::NodeId victim, std::uint64_t budget,
                    std::uint64_t seed) {
  Episode e;
  identifier.reset();
  for (std::uint64_t n = 1; n <= budget; ++n) {
    mark::WalkOptions options;
    options.seed = seed * 65537 + n;
    options.record_path = false;
    const auto walk =
        mark::walk_packet(topo, router, scheme, src, victim, options);
    if (!walk.delivered()) continue;
    const auto c = identifier.observe(walk.packet, victim);
    if (c.size() == 1) {
      if (c.front() == src) {
        e.identified = true;
        e.packets_used = n;
        return e;
      }
      if (!e.misnamed_first) e.misnamed_first = true;
    }
  }
  return e;
}

}  // namespace

int main() {
  bench::banner("E3: identification accuracy, 8x8 mesh, 40 random pairs each");
  const auto topo = topo::make_topology("mesh:8x8");
  netsim::Rng pair_rng(314159);
  struct Pair { topo::NodeId src, victim; };
  std::vector<Pair> pairs;
  for (int i = 0; i < 40; ++i) {
    const auto a = topo::NodeId(pair_rng.next_below(topo->num_nodes()));
    auto b = topo::NodeId(pair_rng.next_below(topo->num_nodes()));
    if (b == a) b = (b + 1) % topo->num_nodes();
    pairs.push_back({a, b});
  }

  bench::Table t({"scheme", "router", "accuracy", "mean packets",
                  "misnamed innocents"});
  for (const char* scheme_name : {"ddpm", "dpm", "ppm-full"}) {
    for (const char* router_name : {"dor", "west-first", "adaptive",
                                    "adaptive-misroute"}) {
      const auto router = route::make_router(router_name, *topo);
      Outcome outcome;
      const std::uint64_t budget =
          std::string(scheme_name) == "ppm-full" ? 20000 : 200;
      for (std::size_t i = 0; i < pairs.size(); ++i) {
        // Fresh scheme per episode so PPM's RNG stream is reproducible.
        std::unique_ptr<mark::MarkingScheme> scheme;
        std::unique_ptr<mark::SourceIdentifier> identifier;
        if (std::string(scheme_name) == "ddpm") {
          scheme = std::make_unique<mark::DdpmScheme>(*topo);
          identifier = std::make_unique<mark::DdpmIdentifier>(*topo);
        } else if (std::string(scheme_name) == "dpm") {
          scheme = std::make_unique<mark::DpmScheme>();
          route::DimensionOrderRouter trained(*topo);
          identifier = std::make_unique<mark::DpmIdentifier>(
              *topo, trained, pairs[i].victim, mark::DpmScheme(), 64);
        } else {
          scheme = std::make_unique<mark::PpmScheme>(
              *topo, mark::PpmVariant::kFullEdge, 0.1, i * 31 + 7);
          identifier = std::make_unique<mark::PpmIdentifier>(
              *topo, mark::PpmVariant::kFullEdge);
        }
        const Episode e = run_episode(*topo, *router, scheme.get(), *identifier,
                                      pairs[i].src, pairs[i].victim, budget, i);
        if (e.identified) {
          ++outcome.identified;
          outcome.packets += double(e.packets_used);
        }
        if (e.misnamed_first) ++outcome.misnamed;
      }
      t.row(scheme_name, router_name,
            std::to_string(outcome.identified * 100 / int(pairs.size())) + "%",
            outcome.identified ? outcome.packets / outcome.identified : 0.0,
            outcome.misnamed);
    }
  }
  t.print();
  std::cout << "\nDDPM: one packet, every router. DPM: usable only under the\n"
               "deterministic routes it trained on, with collisions. PPM:\n"
               "hundreds-thousands of packets, worse under adaptivity.\n";
  return 0;
}
