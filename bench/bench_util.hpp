// Shared console-table formatting for the benchmark binaries. Each bench
// regenerates one paper artifact (table/figure/experiment) and prints it in
// a shape comparable with the paper; EXPERIMENTS.md records the comparison.
#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/build_info.hpp"

namespace ddpm::bench {

// Build-provenance fields for bench JSON artifacts: without the commit,
// compiler, build type and telemetry gate attached, a perf number cannot be
// compared against any other run. Returns the inner fields (no braces) so
// each bench can splice them into its own object at the chosen indent.
inline std::string provenance_json_fields(const std::string& indent = "  ") {
  std::ostringstream os;
  os << indent << "\"git_sha\": \"" << build::kGitSha << "\",\n"
     << indent << "\"compiler\": \"" << build::kCompiler << "\",\n"
     << indent << "\"build_type\": \"" << build::kBuildType << "\",\n"
     << indent << "\"telemetry\": "
     << (build::kTelemetryEnabled ? "true" : "false");
  return os.str();
}

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {
    widths_.reserve(headers_.size());
    for (const auto& h : headers_) widths_.push_back(h.size());
    // Grow-once for typical table sizes; row() never reallocates rows_ for
    // tables up to 64 rows (the largest the benches print).
    rows_.reserve(64);
  }

  template <typename... Cells>
  void row(Cells&&... cells) {
    std::vector<std::string> r;
    (r.push_back(to_cell(std::forward<Cells>(cells))), ...);
    for (std::size_t i = 0; i < r.size() && i < widths_.size(); ++i) {
      widths_[i] = std::max(widths_[i], r[i].size());
    }
    rows_.push_back(std::move(r));
  }

  void print(std::ostream& os = std::cout) const {
    print_row(os, headers_);
    std::string rule;
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      rule += std::string(widths_[i] + 2, '-');
      if (i + 1 < headers_.size()) rule += '+';
    }
    os << rule << '\n';
    for (const auto& r : rows_) print_row(os, r);
  }

 private:
  template <typename T>
  static std::string to_cell(T&& value) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(std::forward<T>(value));
    } else {
      std::ostringstream os;
      os << std::setprecision(4) << value;
      return os.str();
    }
  }

  void print_row(std::ostream& os, const std::vector<std::string>& r) const {
    for (std::size_t i = 0; i < r.size(); ++i) {
      os << ' ' << std::setw(int(widths_[i])) << std::left << r[i] << ' ';
      if (i + 1 < r.size()) os << '|';
    }
    os << '\n';
  }

  std::vector<std::string> headers_;
  std::vector<std::size_t> widths_;
  std::vector<std::vector<std::string>> rows_;
};

inline void banner(const std::string& title) {
  std::cout << '\n' << std::string(72, '=') << '\n'
            << title << '\n'
            << std::string(72, '=') << '\n';
}

}  // namespace ddpm::bench
