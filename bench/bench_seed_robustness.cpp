// Ablation A5 — robustness across seeds: the headline results hold for
// every RNG seed, not a lucky one. Each scenario re-runs under 10 seeds;
// DDPM must be perfect (all zombies, zero innocents) in every run, with
// only detection latency varying.
#include "bench_util.hpp"
#include "core/experiment.hpp"

namespace {

using namespace ddpm;

core::ScenarioConfig base(const std::string& scheme, const std::string& router) {
  core::ScenarioConfig config;
  config.cluster.topology = "mesh:8x8";
  config.cluster.router = router;
  config.cluster.scheme = scheme;
  config.cluster.benign_rate_per_node = 0.0002;
  config.identifier = scheme;
  config.detect_rate_threshold = 0.005;
  config.duration = 300000;
  config.attack.kind = attack::AttackKind::kUdpFlood;
  config.attack.victim = 63;
  config.attack.zombies = {0, 9, 27, 36};
  config.attack.rate_per_zombie = 0.01;
  config.attack.start_time = 20000;
  return config;
}

}  // namespace

int main() {
  bench::banner("A5: 10-seed robustness, 8x8 mesh, 4-zombie flood");
  bench::Table t({"scheme", "router", "perfect runs", "TP mean +- sd",
                  "FP mean", "detect latency mean +- sd"});
  for (const char* scheme : {"ddpm", "dpm"}) {
    for (const char* router : {"dor", "adaptive"}) {
      const auto s = core::run_repeated_n(base(scheme, router), 10);
      t.row(scheme, router,
            std::to_string(s.perfect_runs) + "/" + std::to_string(s.runs),
            std::to_string(s.true_positives.mean()) + " +- " +
                std::to_string(s.true_positives.stddev()),
            s.false_positives.mean(),
            std::to_string(s.detection_latency.mean()) + " +- " +
                std::to_string(s.detection_latency.stddev()));
    }
  }
  t.print();
  std::cout << "\nDDPM: perfect in every run under every router. DPM: this\n"
               "zombie set happens to have collision-free signatures on the\n"
               "trained routes (see bench_dpm_ambiguity for sets that do\n"
               "not), but under adaptive routing it blames innocents in\n"
               "every single seed.\n";
  return 0;
}
