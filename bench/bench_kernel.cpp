// Kernel perf harness — the repository's performance trajectory anchor.
//
// Measures the discrete-event kernel's hot paths (event schedule/pop/cancel
// throughput, the wormhole substrate's steps/sec, and an end-to-end sweep
// cell serial vs parallel) and optionally writes the numbers to
// BENCH_kernel.json so subsequent PRs can regress against them. See
// docs/PERFORMANCE.md for how to read the output.
//
//   bench_kernel [--json [path]] [--jobs N] [--smoke]
//
//   --json    write machine-readable results (default path
//             BENCH_kernel.json in the working directory)
//   --jobs N  thread count for the parallel sweep measurement
//             (default: hardware concurrency)
//   --smoke   drastically shrunk workloads; used by the `perf`-labelled
//             ctest so sanitizer suites stay fast
#include <algorithm>
#include <chrono>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "attack/traffic.hpp"
#include "core/sweep_grid.hpp"
#include "flow/trace_gen.hpp"
#include "netsim/event_queue.hpp"
#include "routing/router.hpp"
#include "stream/flow_analyzer.hpp"
#include "stream/sketch.hpp"
#include "topology/factory.hpp"
#include "wormhole/wormhole.hpp"

namespace {

using namespace ddpm;
using Clock = std::chrono::steady_clock;

struct Result {
  std::string name;
  double value = 0;
  std::string unit;
};

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// xorshift64 — a self-contained time-pattern generator for the queue
/// microbenches (deliberately not Rng: the subject under test should not
/// also supply the workload).
std::uint64_t next_time_sample(std::uint64_t& x) {
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return x;
}

Result bench_schedule_pop(std::size_t n, int rounds) {
  netsim::EventQueue q;
  q.reserve(n);
  std::uint64_t x = 88172645463325252ull;
  std::uint64_t fired = 0;
  const auto start = Clock::now();
  for (int round = 0; round < rounds; ++round) {
    for (std::size_t i = 0; i < n; ++i) {
      q.schedule(next_time_sample(x) % 1000000, [&fired] { ++fired; });
    }
    while (!q.empty()) q.pop().second();
    q.clear();
  }
  const double ops = 2.0 * double(rounds) * double(n);
  return {"eq_schedule_pop", ops / seconds_since(start), "ops/s"};
}

Result bench_churn(std::size_t pending, std::size_t ops) {
  netsim::EventQueue q;
  q.reserve(pending);
  std::uint64_t x = 123456789ull;
  for (std::size_t i = 0; i < pending; ++i) {
    q.schedule(next_time_sample(x) % 100000, [] {});
  }
  const auto start = Clock::now();
  for (std::size_t i = 0; i < ops; ++i) {
    auto [when, action] = q.pop();
    action();
    q.schedule(when + 1 + next_time_sample(x) % 1000, [] {});
  }
  return {"eq_churn", double(ops) / seconds_since(start), "ops/s"};
}

Result bench_cancel(std::size_t n, int rounds) {
  netsim::EventQueue q;
  q.reserve(n);
  std::uint64_t x = 55555ull;
  std::vector<netsim::EventId> ids;
  ids.reserve(n);
  const auto start = Clock::now();
  for (int round = 0; round < rounds; ++round) {
    ids.clear();
    for (std::size_t i = 0; i < n; ++i) {
      ids.push_back(q.schedule(next_time_sample(x) % 1000000, [] {}));
    }
    for (std::size_t i = 0; i < n; i += 2) q.cancel(ids[i]);
    while (!q.empty()) q.pop().second();
    q.clear();
  }
  const double ops = double(rounds) * (double(n) + double(n));  // sched+cancel/pop
  return {"eq_cancel_drain", ops / seconds_since(start), "ops/s"};
}

Result bench_wormhole(std::uint64_t cycles) {
  const auto topo = topo::make_topology("torus:8x8");
  const auto router = route::make_router("adaptive", *topo);
  wormhole::WormholeConfig config;
  config.buffer_flits = 4;
  wormhole::WormholeNetwork net(*topo, *router, nullptr, config);
  attack::UniformPattern pattern(*topo);
  netsim::Rng rng(1234);
  const auto start = Clock::now();
  const topo::NodeId n_nodes = topo->num_nodes();  // hoist the virtual call
  for (std::uint64_t cycle = 0; cycle < cycles; ++cycle) {
    for (topo::NodeId n = 0; n < n_nodes; ++n) {
      if (rng.next_bool(0.06)) {
        pkt::Packet p;
        const auto dest = pattern.pick_dest(n, rng);
        p.header = pkt::IpHeader(n + 1, dest + 1, pkt::IpProto::kUdp, 44);
        p.true_source = n;
        p.dest_node = dest;
        p.payload_bytes = 44;
        p.injected_at = net.cycle();
        net.inject(std::move(p), n);
      }
    }
    net.step();
  }
  return {"wormhole_steps", double(cycles) / seconds_since(start), "steps/s"};
}

Result bench_sketch_update(std::uint64_t updates) {
  // Count-min conservative update over a synthetic spoofed-source stream:
  // every key fresh (the worst case for the conservative-update early-out),
  // default analyzer geometry. This is the inner loop of every sketch
  // detector, so the ratchet guards it directly.
  stream::CountMinSketch cms(2048, 4, 0x5eed'beefULL);
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  std::uint64_t sink = 0;
  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < updates; ++i) {
    sink += cms.update(std::uint32_t(next_time_sample(x)));
  }
  const double elapsed = seconds_since(start);
  if (sink == 0) std::cerr << "sketch_update: impossible zero estimate\n";
  return {"sketch_update", double(updates) / elapsed, "updates/s"};
}

Result bench_trace_replay(std::uint32_t sources) {
  // End-to-end streaming pipeline: generate a spoofed flood with `sources`
  // distinct addresses and push it through the full sharded analyzer
  // (ingest -> sketches -> window judgement). Records/s, single worker, so
  // the number tracks per-record cost rather than thread count.
  flow::TraceGenConfig gen;
  gen.seed = 7;
  gen.attack = flow::AttackShape::kFlood;
  gen.attack_sources = sources;
  gen.attack_start = 50'000;
  gen.attack_duration = 400'000;
  gen.duration = 500'000;
  gen.attack_rate = 1.25 * double(sources) / double(gen.attack_duration);
  flow::TraceGenerator source(gen);
  stream::FlowAnalyzerConfig config;
  const auto start = Clock::now();
  const stream::StreamReport report = stream::replay(source, config);
  const double elapsed = seconds_since(start);
  if (!report.detection_time.has_value()) {
    std::cerr << "WARNING: trace_replay flood went undetected\n";
  }
  return {"trace_replay", double(report.records) / elapsed, "records/s"};
}

core::SweepSpec sweep_spec(std::size_t seeds, std::size_t jobs) {
  core::SweepSpec spec;
  spec.topologies = {"torus:8x8"};
  spec.schemes = {"ddpm", "dpm", "ppm-full"};
  spec.routers = {"adaptive"};
  spec.rates = {0.005, 0.01};
  spec.seeds = seeds;
  spec.jobs = jobs;
  return spec;
}

void write_json(const std::string& path, const std::vector<Result>& results,
                std::size_t jobs, bool smoke) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"kernel\",\n"
      << bench::provenance_json_fields() << ",\n  \"mode\": \""
      << (smoke ? "smoke" : "full") << "\",\n  \"jobs\": " << jobs
      << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    out << "    {\"name\": \"" << results[i].name << "\", \"value\": "
        << results[i].value << ", \"unit\": \"" << results[i].unit << "\"}"
        << (i + 1 < results.size() ? "," : "") << '\n';
  }
  // Floors are absolute minima the ratchet enforces regardless of its
  // relative tolerance: sweep_speedup must never fall below parity again.
  out << "  ],\n  \"floors\": {\"sweep_speedup\": 0.99}\n}\n";
  std::cout << "wrote " << path << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool json = false;
  std::string json_path = "BENCH_kernel.json";
  std::size_t jobs = std::thread::hardware_concurrency();
  if (jobs == 0) jobs = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--json") {
      json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') json_path = argv[++i];
    } else if (arg == "--jobs" && i + 1 < argc) {
      jobs = std::stoul(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "bench_kernel [--json [path]] [--jobs N] [--smoke]\n";
      return 0;
    } else {
      std::cerr << "unknown option: " << arg << '\n';
      return 1;
    }
  }

  std::vector<Result> results;

  // Event-queue microbenches.
  if (smoke) {
    results.push_back(bench_schedule_pop(20000, 2));
    results.push_back(bench_churn(2000, 50000));
    results.push_back(bench_cancel(10000, 2));
    results.push_back(bench_wormhole(1500));
    results.push_back(bench_sketch_update(500000));
    results.push_back(bench_trace_replay(50000));
  } else {
    results.push_back(bench_schedule_pop(400000, 4));
    results.push_back(bench_churn(10000, 2000000));
    results.push_back(bench_cancel(200000, 4));
    // 100k cycles ≈ 0.5 s at the SoA engine's rate: long enough that the
    // steps/s figure is stable run to run (at 20k the window was ~0.1 s
    // and the metric swung ±10% with scheduler noise).
    results.push_back(bench_wormhole(100000));
    results.push_back(bench_sketch_update(20000000));
    results.push_back(bench_trace_replay(1000000));
  }

  // End-to-end sweep cell: serial vs parallel, same workload. Each leg is
  // timed twice in alternating order and the minimum kept: with jobs=1 both
  // legs run the identical inline loop, so a sustained ratio below 1.0 can
  // only be measurement drift (allocator/page-cache warm-up, scheduler
  // jitter) landing on whichever leg ran second — exactly how the committed
  // speedup once recorded 0.98x. Min-of-two with alternation cancels that.
  {
    const std::size_t seeds = smoke ? 2 : 16;
    std::vector<core::SweepCell> serial, parallel;
    double serial_s = std::numeric_limits<double>::infinity();
    double par_s = std::numeric_limits<double>::infinity();
    for (int pass = 0; pass < 2; ++pass) {
      const bool serial_first = (pass == 0);
      for (int leg = 0; leg < 2; ++leg) {
        const bool time_serial = (leg == 0) == serial_first;
        const auto start = Clock::now();
        if (time_serial) {
          serial = core::run_sweep(sweep_spec(seeds, 1));
          serial_s = std::min(serial_s, seconds_since(start));
        } else {
          parallel = core::run_sweep(sweep_spec(seeds, jobs));
          par_s = std::min(par_s, seconds_since(start));
        }
      }
      if (core::sweep_csv(serial) != core::sweep_csv(parallel)) {
        std::cerr << "FATAL: sweep output diverged between jobs=1 and jobs="
                  << jobs << '\n';
        return 1;
      }
    }
    results.push_back({"sweep_serial", serial_s, "s"});
    results.push_back({"sweep_jobs" + std::to_string(jobs), par_s, "s"});
    results.push_back({"sweep_speedup", serial_s / par_s, "x"});
  }

  bench::banner(std::string("Kernel perf (") + (smoke ? "smoke" : "full") +
                ", jobs=" + std::to_string(jobs) + ")");
  bench::Table t({"benchmark", "value", "unit"});
  for (const auto& r : results) t.row(r.name, r.value, r.unit);
  t.print();

  if (json) write_json(json_path, results, jobs, smoke);
  return 0;
}
