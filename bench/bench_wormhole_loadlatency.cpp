// Extension X2 — wormhole load-latency characterization.
//
// The canonical interconnection-network figure: average packet latency vs
// offered load, up to saturation, under uniform traffic — run on the
// cycle-accurate wormhole substrate with DDPM marking enabled and
// disabled. Two results:
//   1. the substrate behaves like a real wormhole network (flat latency at
//      low load, knee at saturation; adaptive routing saturates later than
//      dimension-order);
//   2. marking has zero effect on the curve (paper §6.2), and every
//      delivered packet still identifies its source at every load point.
#include <optional>

#include "bench_util.hpp"
#include "attack/traffic.hpp"
#include "topology/factory.hpp"
#include "marking/ddpm.hpp"
#include "wormhole/wormhole.hpp"

namespace {

using namespace ddpm;

struct Point {
  double avg_latency = 0;
  double throughput = 0;  // delivered packets / node / cycle
  bool identification_ok = true;
};

Point run_point(const topo::Topology& topo, const std::string& router_name,
                bool with_ddpm, double injection_rate) {
  const auto router = route::make_router(router_name, topo);
  std::optional<mark::DdpmScheme> scheme;
  if (with_ddpm) scheme.emplace(topo);
  mark::DdpmIdentifier identifier(topo);
  wormhole::WormholeConfig config;
  config.buffer_flits = 4;
  wormhole::WormholeNetwork net(topo, *router,
                                scheme ? &*scheme : nullptr, config);

  attack::UniformPattern pattern(topo);
  netsim::Rng rng(1234);
  Point point;
  double latency_sum = 0;
  std::uint64_t latency_count = 0;
  constexpr std::uint64_t kWarmup = 3000;
  constexpr std::uint64_t kMeasure = 12000;
  net.set_delivery_hook([&](pkt::Packet&& p, topo::NodeId at) {
    if (p.injected_at < kWarmup) return;  // warm-up transient
    latency_sum += double(p.delivered_at - p.injected_at);
    ++latency_count;
    if (with_ddpm) {
      const auto named = identifier.identify(at, p.marking_field());
      point.identification_ok &=
          (named.has_value() && *named == p.true_source);
    }
  });

  for (std::uint64_t cycle = 0; cycle < kWarmup + kMeasure; ++cycle) {
    for (topo::NodeId n = 0; n < topo.num_nodes(); ++n) {
      if (rng.next_bool(injection_rate)) {
        pkt::Packet p;
        const auto dest = pattern.pick_dest(n, rng);
        p.header = pkt::IpHeader(n + 1, dest + 1, pkt::IpProto::kUdp, 44);
        p.true_source = n;
        p.dest_node = dest;
        p.payload_bytes = 44;  // 64-byte packets -> 4 flits
        p.injected_at = net.cycle();
        net.inject(std::move(p), n);
      }
    }
    net.step();
  }
  net.drain(200000);

  point.avg_latency = latency_count ? latency_sum / double(latency_count) : 0;
  point.throughput = double(latency_count) /
                     double(topo.num_nodes()) / double(kMeasure);
  return point;
}

}  // namespace

int main() {
  for (const char* spec : {"mesh:8x8", "torus:8x8"}) {
    const auto topo = topo::make_topology(spec);
    bench::banner(std::string("X2: wormhole load-latency, ") + spec +
                  ", uniform traffic, 4-flit packets");
    bench::Table t({"inj rate (pkt/node/cyc)", "dor latency",
                    "adaptive latency", "adaptive+ddpm latency",
                    "ddpm 1-pkt ID"});
    for (const double rate : {0.01, 0.02, 0.04, 0.06, 0.08, 0.10, 0.12}) {
      const Point dor = run_point(*topo, "dor", false, rate);
      const Point ada = run_point(*topo, "adaptive", false, rate);
      const Point ddpm = run_point(*topo, "adaptive", true, rate);
      t.row(rate, dor.avg_latency, ada.avg_latency, ddpm.avg_latency,
            ddpm.identification_ok ? "100%" : "BROKEN");
    }
    t.print();
  }
  std::cout << "\nFlat latency at low load, saturation knee at high load —\n"
               "the canonical wormhole curve. DDPM does not move it, and\n"
               "one-packet identification holds at every load point,\n"
               "including beyond saturation.\n";
  return 0;
}
