// Experiment E4 — switch-side processing overhead (paper §6.2).
//
// The paper argues DDPM adds only "simple functions such as addition,
// subtraction, and XOR" per packet. These google-benchmark measurements put
// numbers on the per-packet marking cost for each scheme, plus the
// victim-side identification cost.
#include <benchmark/benchmark.h>

#include "marking/ddpm.hpp"
#include "marking/dpm.hpp"
#include "marking/ppm.hpp"
#include "marking/ppm_fragment.hpp"
#include "marking/record_route.hpp"
#include "marking/ppm_reconstruct.hpp"
#include "routing/dor.hpp"
#include "topology/factory.hpp"

namespace {

using namespace ddpm;

std::unique_ptr<topo::Topology> topo_for(const benchmark::State& state) {
  switch (state.range(0)) {
    case 0: return topo::make_topology("mesh:8x8");
    case 1: return topo::make_topology("torus:8x8");
    default: return topo::make_topology("hypercube:6");
  }
}

void args(benchmark::internal::Benchmark* b) {
  b->Arg(0)->Arg(1)->Arg(2);  // mesh, torus, hypercube
}

void BM_NoMarking_Baseline(benchmark::State& state) {
  const auto topo = topo_for(state);
  pkt::Packet p;
  p.set_marking_field(0);
  std::uint64_t x = 0;
  for (auto _ : state) {
    // The non-marking switch still touches the header (TTL).
    p.header.set_ttl(64);
    x += p.header.decrement_ttl();
    benchmark::DoNotOptimize(p);
  }
  benchmark::DoNotOptimize(x);
}
BENCHMARK(BM_NoMarking_Baseline)->Apply(args);

void BM_DdpmForward(benchmark::State& state) {
  const auto topo = topo_for(state);
  mark::DdpmScheme scheme(*topo);
  pkt::Packet p;
  scheme.on_injection(p, 0);
  const topo::NodeId a = 0;
  const topo::NodeId b = topo->neighbors(0).front();
  bool flip = false;
  for (auto _ : state) {
    // Alternate directions so the accumulated vector stays bounded.
    if (flip) {
      scheme.on_forward(p, b, a);
    } else {
      scheme.on_forward(p, a, b);
    }
    flip = !flip;
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_DdpmForward)->Apply(args);

void BM_DpmForward(benchmark::State& state) {
  const auto topo = topo_for(state);
  mark::DpmScheme scheme;
  pkt::Packet p;
  p.header.set_ttl(64);
  for (auto _ : state) {
    p.header.set_ttl(p.header.ttl() ? p.header.ttl() - 1 : 64);
    scheme.on_forward(p, 0, 1);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_DpmForward)->Apply(args);

void BM_PpmForward(benchmark::State& state) {
  const auto topo = topo_for(state);
  mark::PpmScheme scheme(*topo, mark::PpmVariant::kFullEdge, 0.04, 1);
  pkt::Packet p;
  p.set_marking_field(0);
  for (auto _ : state) {
    scheme.on_forward(p, 0, 1);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_PpmForward)->Apply(args);

void BM_FragmentPpmForward(benchmark::State& state) {
  const auto topo = topo_for(state);
  mark::FragmentPpmScheme scheme(*topo, 0.04, 1);
  pkt::Packet p;
  p.set_marking_field(0);
  for (auto _ : state) {
    scheme.on_forward(p, 0, 1);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_FragmentPpmForward)->Apply(args);

void BM_RecordRouteForward(benchmark::State& state) {
  // The variable-length option write the paper rejects on overhead
  // grounds; the wire cost dominates, but the per-hop CPU work is here.
  const auto topo = topo_for(state);
  mark::RecordRouteScheme scheme;
  pkt::Packet p;
  for (auto _ : state) {
    if (p.route_option.size() >= mark::RecordRouteScheme::kMaxEntries) {
      p.route_option.clear();
    }
    scheme.on_forward(p, 0, 1);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_RecordRouteForward)->Apply(args);

void BM_DdpmIdentify(benchmark::State& state) {
  const auto topo = topo_for(state);
  mark::DdpmScheme scheme(*topo);
  mark::DdpmIdentifier identifier(*topo);
  pkt::Packet p;
  scheme.on_injection(p, 0);
  scheme.on_forward(p, 0, topo->neighbors(0).front());
  const topo::NodeId victim = topo->neighbors(0).front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(identifier.identify(victim, p.marking_field()));
  }
}
BENCHMARK(BM_DdpmIdentify)->Apply(args);

void BM_DpmSignatureLookup(benchmark::State& state) {
  const auto topo = topo_for(state);
  route::DimensionOrderRouter router(*topo);
  mark::DpmScheme scheme;
  const topo::NodeId victim = topo->num_nodes() - 1;
  mark::DpmIdentifier identifier(*topo, router, victim, scheme);
  pkt::Packet p;
  p.set_marking_field(identifier.signature_of(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(identifier.observe(p, victim));
  }
}
BENCHMARK(BM_DpmSignatureLookup)->Apply(args);

void BM_HeaderChecksumRewrite(benchmark::State& state) {
  // The cost a real switch pays to keep the IPv4 checksum valid after
  // rewriting the identification field.
  const auto topo = topo_for(state);
  pkt::IpHeader h(0x0a000001, 0x0a000002, pkt::IpProto::kUdp, 64);
  std::uint16_t id = 0;
  for (auto _ : state) {
    h.set_identification(++id);
    benchmark::DoNotOptimize(h.serialize());
  }
}
BENCHMARK(BM_HeaderChecksumRewrite)->Apply(args);

}  // namespace

BENCHMARK_MAIN();
