// Extension X5 — hybrid (two-level) networks: hierarchical DDPM on a mesh
// of buses (paper §3 names "multiple backbone buses and cluster-based
// networks" as the hybrid family; §6.3 defers them to future work).
//
// Field budget trade-off made visible: local-host bits compete with the
// mesh distance vector inside the same 16-bit field, so hosts-per-switch
// trades against mesh side. Identification remains one-packet and
// route-independent because the two regions never interact.
#include "bench_util.hpp"
#include "hybrid/hybrid.hpp"
#include "marking/walk.hpp"
#include "routing/router.hpp"

int main() {
  using namespace ddpm;

  bench::banner("X5a: hierarchical DDPM field budget (16-bit MF)");
  {
    bench::Table t({"switch mesh", "hosts/switch", "total hosts",
                    "bits needed", "fits?"});
    for (const auto& [side, hosts] :
         std::vector<std::pair<int, int>>{{8, 4}, {8, 16}, {16, 16},
                                          {16, 64}, {32, 16}, {32, 32},
                                          {64, 4}, {64, 16}}) {
      hybrid::HybridTopology topo(side, hosts);
      const int bits = hybrid::HierarchicalDdpmCodec::required_bits(topo);
      std::ostringstream mesh;
      mesh << side << "x" << side;
      t.row(mesh.str(), hosts, topo.num_hosts(), bits,
            bits <= 16 ? "yes" : "NO");
    }
    t.print();
    std::cout << "Sweet spot: 32x32 switches x 16 hosts = 16384 hosts in\n"
                 "exactly 16 bits — the same budget DDPM's Table 3 spends\n"
                 "on a flat 128x128 mesh.\n";
  }

  bench::banner("X5b: one-packet host identification across adaptive routes");
  {
    bench::Table t({"configuration", "trials", "correct host", "wrong"});
    for (const auto& [side, hosts] :
         std::vector<std::pair<int, int>>{{8, 8}, {16, 16}, {32, 16}}) {
      hybrid::HybridTopology topo(side, hosts);
      hybrid::HierarchicalDdpmScheme scheme(topo);
      hybrid::HierarchicalDdpmIdentifier identifier(topo);
      const auto router = route::make_router("adaptive", topo.mesh());
      netsim::Rng rng(99);
      int correct = 0, wrong = 0, trials = 3000;
      for (int i = 0; i < trials; ++i) {
        const auto src = hybrid::HostId(rng.next_below(topo.num_hosts()));
        const auto dst = hybrid::HostId(rng.next_below(topo.num_hosts()));
        pkt::Packet p;
        p.set_marking_field(std::uint16_t(rng.next_u64()));  // hostile seed
        scheme.mark_injection(p, topo.switch_of(src), topo.local_of(src));
        if (topo.switch_of(src) != topo.switch_of(dst)) {
          mark::WalkOptions options;
          options.seed = rng.next_u64();
          options.initial_ttl = 255;
          options.record_path = true;
          const auto walk =
              mark::walk_packet(topo.mesh(), *router, nullptr,
                                topo.switch_of(src), topo.switch_of(dst),
                                options);
          for (std::size_t h = 1; h < walk.path.size(); ++h) {
            scheme.mark_forward(p, walk.path[h - 1], walk.path[h]);
          }
        }
        const auto named =
            identifier.identify(topo.switch_of(dst), p.marking_field());
        if (named && *named == src) {
          ++correct;
        } else {
          ++wrong;
        }
      }
      std::ostringstream name;
      name << side << "x" << side << " x " << hosts;
      t.row(name.str(), trials,
            std::to_string(correct * 100 / trials) + "%", wrong);
    }
    t.print();
  }
  return 0;
}
