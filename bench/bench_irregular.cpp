// Extension X4 — irregular networks (paper §6.3: "hybrid networks and
// irregular networks do not have a universal regularity and it may need a
// completely different approach").
//
// On a random irregular switch network with up*/down* routing there is no
// coordinate system, so DDPM's distance vector has nothing to accumulate.
// The "completely different approach" that works under the same trust
// model is Ingress-Stamp Marking: the source switch writes its own index.
// This bench characterizes the substrate (up*/down* path inflation) and
// the identification result — plus the critical comparison on REGULAR
// networks, where ingress stamping also works and scales further than
// DDPM's Table 3 (an observation the paper does not make; see
// EXPERIMENTS.md).
#include "bench_util.hpp"
#include "irregular/irregular.hpp"
#include "marking/ddpm.hpp"
#include "marking/ingress.hpp"
#include "marking/scalability.hpp"

int main() {
  using namespace ddpm;

  bench::banner("X4a: up*/down* substrate on random irregular networks");
  {
    bench::Table t({"network", "edges", "diameter-ish", "path inflation",
                    "all pairs routable"});
    for (const auto& [nodes, extra, seed] :
         std::vector<std::tuple<irregular::NodeId, std::size_t, std::uint64_t>>{
             {32, 8, 1}, {64, 24, 2}, {96, 48, 3}, {128, 64, 4}}) {
      irregular::IrregularTopology topo(nodes, extra, seed);
      irregular::UpDownRouter router(topo);
      int worst = 0;
      bool all = true;
      for (irregular::NodeId s = 0; s < nodes; ++s) {
        for (irregular::NodeId d = 0; d < nodes; ++d) {
          if (s == d) continue;
          const int legal = router.legal_distance(s, d);
          all = all && legal > 0;
          worst = std::max(worst, legal);
        }
      }
      t.row(topo.spec(), topo.num_edges(), worst, router.path_inflation(),
            all ? "yes" : "NO");
    }
    t.print();
  }

  bench::banner("X4b: ingress-stamp identification on irregular networks");
  {
    bench::Table t({"network", "trials", "correct", "seed-proof"});
    for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
      irregular::IrregularTopology topo(96, 48, seed);
      irregular::UpDownRouter router(topo);
      mark::IngressStampScheme scheme(topo.num_nodes());
      mark::IngressStampIdentifier identifier(topo.num_nodes());
      netsim::Rng rng(seed * 7);
      int correct = 0, seed_proof = 0, trials = 2000;
      for (int i = 0; i < trials; ++i) {
        const auto s = irregular::NodeId(rng.next_below(topo.num_nodes()));
        auto d = irregular::NodeId(rng.next_below(topo.num_nodes()));
        if (d == s) d = (d + 1) % topo.num_nodes();
        const auto path = walk_updown(topo, router, s, d, rng);
        for (const std::uint16_t seeded : {std::uint16_t(0), std::uint16_t(0xffff)}) {
          pkt::Packet p;
          p.set_marking_field(seeded);
          scheme.on_injection(p, s);
          for (std::size_t h = 1; h < path.size(); ++h) {
            scheme.on_forward(p, path[h - 1], path[h]);
          }
          const auto named = identifier.observe(p, d);
          const bool ok = named.size() == 1 && named.front() == s;
          if (seeded == 0) correct += ok; else seed_proof += ok;
        }
      }
      t.row(topo.spec(), trials,
            std::to_string(correct * 100 / trials) + "%",
            std::to_string(seed_proof * 100 / trials) + "%");
    }
    t.print();
  }

  bench::banner("X4c: critical comparison — field budget, ingress stamp vs DDPM");
  {
    bench::Table t({"topology family", "DDPM max (Table 3)",
                    "ingress-stamp max", "note"});
    t.row("n x n mesh/torus", "128 x 128 (16384)", "256 x 256 (65536)",
          "stamp = ceil(log2 N) bits");
    t.row("n-cube hypercube", "16-cube (65536)", "16-cube (65536)",
          "equal: DDPM needs n bits too");
    t.row("butterfly MIN", "n/a (no coordinates)", "65536 terminals",
          "port-stamp equivalent");
    t.row("irregular", "n/a (no coordinates)", "65536 switches", "this bench");
    t.print();
    std::cout <<
        "\nCritical note: under the paper's own trust model (switches are\n"
        "trusted and the source switch knows it is first — the assumption\n"
        "behind Figure 4's V := 0), simply stamping the ingress switch id\n"
        "identifies sources in ANY topology and scales further than DDPM.\n"
        "DDPM's distinctive value is that only the FIRST switch needs the\n"
        "'I am first' knowledge while every other switch does pure local\n"
        "arithmetic, and that per-hop increments keep working when the\n"
        "ingress reset is the only lost function (see the partial-\n"
        "deployment ablation A2: with honest traffic, missing interior\n"
        "switches merely shift attribution a few hops, whereas a missing\n"
        "ingress stamp loses everything).\n";
  }
  return 0;
}
