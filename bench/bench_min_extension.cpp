// Extension X1 — indirect networks (paper §6.3 future work).
//
// The paper's approach is limited to direct networks; §6.3 asks for a new
// approach for indirect ones. Port-Stamp Marking (src/indirect) is that
// approach for butterflies (MINs): under destination-tag routing the input
// port at stage i equals source digit i, so stamping input ports into the
// Marking Field reconstructs the source terminal from one packet.
//
// This bench regenerates (a) the scalability table in the style of the
// paper's Tables 1-3 and (b) an exhaustive identification check.
#include "bench_util.hpp"
#include "indirect/port_stamp.hpp"

int main() {
  using namespace ddpm;
  using indirect::Butterfly;
  using indirect::PortStampScheme;

  bench::banner("X1: Port-Stamp Marking scalability on k-ary n-fly MINs");
  {
    bench::Table t({"network", "terminals", "switches", "bits needed",
                    "fits 16-bit MF?"});
    for (const auto& [k, n] : std::vector<std::pair<int, int>>{{2, 8},
                                                               {2, 12},
                                                               {2, 16},
                                                               {2, 17},
                                                               {4, 6},
                                                               {4, 8},
                                                               {4, 9},
                                                               {8, 5},
                                                               {16, 4}}) {
      // Constructing a >16-bit scheme throws; probe via required_bits.
      Butterfly net(k, n);
      const int bits = PortStampScheme::required_bits(net);
      t.row(net.spec(), net.num_terminals(), net.num_switches(), bits,
            bits <= 16 ? "yes" : "NO");
    }
    t.print();
    std::cout << "Like DDPM's hypercube bound (Table 3), the limit is\n"
                 "ceil(log2 N) bits: 65536 terminals in 16 bits.\n";
  }

  bench::banner("X1b: exhaustive one-packet identification");
  {
    bench::Table t({"network", "(src,dst) pairs", "correct", "seed-proof"});
    for (const auto& [k, n] : std::vector<std::pair<int, int>>{{2, 6},
                                                               {4, 4},
                                                               {8, 2},
                                                               {3, 4}}) {
      Butterfly net(k, n);
      PortStampScheme scheme(net);
      std::uint64_t pairs = 0, correct = 0, seed_proof = 0;
      for (indirect::TerminalId s = 0; s < net.num_terminals(); ++s) {
        for (indirect::TerminalId d = 0; d < net.num_terminals(); ++d) {
          ++pairs;
          correct += (scheme.identify(scheme.mark_along(s, d, 0)) == s);
          seed_proof += (scheme.identify(scheme.mark_along(s, d, 0xffff)) == s);
        }
      }
      t.row(net.spec(), pairs, std::to_string(correct * 100 / pairs) + "%",
            std::to_string(seed_proof * 100 / pairs) + "%");
    }
    t.print();
    std::cout << "100% from a single packet, even when the attacker pre-\n"
                 "loads the field: every digit slot is switch-overwritten.\n"
                 "Boundary: requires the unique destination-tag path —\n"
                 "multipath MINs (Benes, fat trees) remain open, as §6.3\n"
                 "anticipated.\n";
  }
  return 0;
}
