// Experiment E5 — the end-to-end pipeline the paper motivates (§1, §2):
// detect the flood, identify the sources with DDPM, block them at their own
// switches, and watch the victim recover.
//
// Two runs of the identical scenario: mitigation off vs on. Reported as a
// timeline of attack/benign packets absorbed by the victim per window.
#include <map>

#include "bench_util.hpp"
#include "core/sis.hpp"

namespace {

using namespace ddpm;

struct Timeline {
  std::map<std::uint64_t, std::uint64_t> attack;
  std::map<std::uint64_t, std::uint64_t> benign;
  core::ScenarioReport report;
};

Timeline run(bool auto_block, std::uint64_t window) {
  core::ScenarioConfig config;
  config.cluster.topology = "mesh:8x8";
  config.cluster.router = "adaptive";
  config.cluster.scheme = "ddpm";
  config.cluster.benign_rate_per_node = 0.0003;
  config.cluster.seed = 777;
  config.identifier = "ddpm";
  config.detect_rate_threshold = 0.005;
  config.auto_block = auto_block;
  config.duration = 600000;
  config.attack.kind = attack::AttackKind::kUdpFlood;
  config.attack.victim = 27;
  config.attack.zombies = {2, 16, 45, 61, 38};
  config.attack.rate_per_zombie = 0.008;
  config.attack.start_time = 100000;
  config.attack.spoof = attack::SpoofStrategy::kRandomCluster;

  core::SourceIdentificationSystem system(config);
  Timeline timeline;
  system.set_observer([&](const pkt::Packet& p, topo::NodeId at) {
    if (at != config.attack.victim) return;
    const std::uint64_t bucket = p.delivered_at / window;
    if (p.is_attack()) {
      ++timeline.attack[bucket];
    } else {
      ++timeline.benign[bucket];
    }
  });
  timeline.report = system.run();
  return timeline;
}

}  // namespace

int main() {
  constexpr std::uint64_t kWindow = 50000;
  const Timeline off = run(false, kWindow);
  const Timeline on = run(true, kWindow);

  bench::banner("E5: victim-absorbed traffic per 50k-tick window");
  bench::Table t({"window", "attack (no mitigation)", "attack (DDPM+block)",
                  "benign (no mitigation)", "benign (DDPM+block)"});
  for (std::uint64_t w = 0; w < 12; ++w) {
    auto get = [w](const std::map<std::uint64_t, std::uint64_t>& m) {
      const auto it = m.find(w);
      return it == m.end() ? std::uint64_t(0) : it->second;
    };
    t.row(std::to_string(w * kWindow) + "+", get(off.attack), get(on.attack),
          get(off.benign), get(on.benign));
  }
  t.print();

  bench::banner("Pipeline summary (mitigated run)");
  std::cout << on.report.summary() << '\n';

  bench::banner("Pipeline summary (unmitigated run)");
  std::cout << off.report.summary() << '\n';

  std::cout << "\nReading: the attack opens at t=100000. Unmitigated, the\n"
               "victim keeps absorbing the flood for the whole run. With\n"
               "DDPM identification + source blocking, the flood dies within\n"
               "one window of detection, and only in-flight packets leak.\n";
  return 0;
}
