// Figure 2 — routing adaptivity on a 4x4 mesh under link failures:
// (a) healthy network: XY routing works;
// (b) failed east links at the sources: XY blocks, west-first detours;
// (c) destination reachable only from its east side (the final turn must
//     be westward): west-first also fails, full adaptivity survives.
#include "bench_util.hpp"
#include "marking/walk.hpp"
#include "routing/router.hpp"
#include "topology/factory.hpp"

namespace {

using namespace ddpm;
using topo::Coord;

struct Scenario {
  const char* name;
  topo::LinkFailureSet failures;
  std::vector<topo::NodeId> sources;
  topo::NodeId dest;
};

void run_scenario(const topo::Topology& topo, const Scenario& scenario) {
  bench::banner(std::string("Figure 2") + scenario.name);
  bench::Table t({"router", "delivered", "blocked", "ttl-expired",
                  "mean hops (delivered)"});
  for (const char* router_name :
       {"xy", "west-first", "north-last", "negative-first", "adaptive",
        "adaptive-misroute", "oracle"}) {
    const auto router = route::make_router(router_name, topo);
    int delivered = 0, blocked = 0, expired = 0;
    double hops = 0;
    constexpr int kSeeds = 50;
    for (topo::NodeId src : scenario.sources) {
      for (int seed = 0; seed < kSeeds; ++seed) {
        mark::WalkOptions options;
        options.failures = &scenario.failures;
        options.seed = std::uint64_t(seed) * 977 + src;
        options.record_path = false;
        const auto walk =
            mark::walk_packet(topo, *router, nullptr, src, scenario.dest, options);
        switch (walk.outcome) {
          case mark::WalkOutcome::kDelivered:
            ++delivered;
            hops += walk.hops;
            break;
          case mark::WalkOutcome::kBlocked:
            ++blocked;
            break;
          case mark::WalkOutcome::kTtlExpired:
            ++expired;
            break;
        }
      }
    }
    const int total = int(scenario.sources.size()) * kSeeds;
    t.row(router_name,
          std::to_string(delivered * 100 / total) + "%",
          std::to_string(blocked * 100 / total) + "%",
          std::to_string(expired * 100 / total) + "%",
          delivered ? hops / delivered : 0.0);
  }
  t.print();
}

}  // namespace

int main() {
  const auto topo = topo::make_topology("mesh:4x4");
  const auto s1 = topo->id_of(Coord{0, 1});
  const auto s2 = topo->id_of(Coord{0, 2});
  const auto d = topo->id_of(Coord{3, 1});

  Scenario a{"(a): healthy 4x4 mesh", {}, {s1, s2}, d};
  run_scenario(*topo, a);

  Scenario b{"(b): east links out of the sources failed", {}, {s1, s2}, d};
  b.failures.fail(s1, topo->id_of(Coord{1, 1}));
  b.failures.fail(s2, topo->id_of(Coord{1, 2}));
  run_scenario(*topo, b);

  // Scenario (c) needs a destination with a live east neighbor, so the
  // only surviving approach forces a final westward turn: D = (2,1).
  const auto d_c = topo->id_of(Coord{2, 1});
  Scenario c{"(c): destination approachable only from the east", {}, {s1, s2}, d_c};
  c.failures.fail(d_c, topo->id_of(Coord{1, 1}));  // west approach dead
  c.failures.fail(d_c, topo->id_of(Coord{2, 0}));  // north approach dead
  c.failures.fail(d_c, topo->id_of(Coord{2, 2}));  // south approach dead
  run_scenario(*topo, c);

  std::cout << "\nReading: (a) everyone delivers; (b) XY blocks where the\n"
               "turn models and adaptive routing detour; (c) only routers\n"
               "willing to misroute past D and turn back west deliver —\n"
               "the paper's case for full adaptivity, and the reason\n"
               "path-recording traceback cannot assume stable routes.\n";
  return 0;
}
