// Experiment E2 — DPM ambiguity and signature instability (paper §4.3).
//
// Three measurements:
//   1. Signature collisions under the stable-route assumption: how many
//      sources share a signature at the victim.
//   2. Signature instability under adaptive routing: the fraction of
//      packets whose observed signature was never seen in training, or
//      names the wrong source.
//   3. The 16-hop wrap-around: beyond 16 hops the oldest bits are
//      overwritten, so far-away sources become mutually indistinguishable.
#include <algorithm>
#include <map>

#include "bench_util.hpp"
#include "marking/dpm.hpp"
#include "marking/walk.hpp"
#include "routing/adaptive.hpp"
#include "routing/dor.hpp"
#include "topology/factory.hpp"
#include "topology/mesh.hpp"

namespace {

using namespace ddpm;
using topo::Coord;

void collisions() {
  bench::banner("E2a: DPM signature collisions (deterministic routes)");
  bench::Table t({"network", "sources", "distinct signatures",
                  "worst collision (sources/sig)", "ambiguous sources"});
  for (const char* spec : {"mesh:4x4", "mesh:8x8", "mesh:16x16", "torus:8x8",
                           "hypercube:6", "hypercube:8"}) {
    const auto topo = topo::make_topology(spec);
    route::DimensionOrderRouter router(*topo);
    mark::DpmScheme scheme;
    const topo::NodeId victim = topo->num_nodes() - 1;
    mark::DpmIdentifier identifier(*topo, router, victim, scheme);
    std::map<std::uint16_t, int> histogram;
    for (topo::NodeId s = 0; s < topo->num_nodes(); ++s) {
      if (s != victim) ++histogram[identifier.signature_of(s)];
    }
    int worst = 0, ambiguous = 0;
    for (const auto& [sig, count] : histogram) {
      worst = std::max(worst, count);
      if (count > 1) ambiguous += count;
    }
    t.row(spec, topo->num_nodes() - 1, identifier.distinct_signatures(), worst,
          ambiguous);
  }
  t.print();
}

void pi_variants() {
  bench::banner("E2a': bits-per-hop trade (Yaar's Pi, paper ref [20])");
  bench::Table t({"bits/hop", "window (hops)", "distinct signatures",
                  "ambiguous sources"});
  topo::Mesh m({8, 8});
  route::DimensionOrderRouter router(m);
  const auto victim = m.id_of(Coord{4, 4});
  for (const int bits : {1, 2, 4}) {
    mark::DpmScheme scheme(mark::DpmScheme::HashInput::kSwitchIndex, bits);
    mark::DpmIdentifier identifier(m, router, victim, scheme);
    std::map<std::uint16_t, int> histogram;
    for (topo::NodeId s = 0; s < m.num_nodes(); ++s) {
      if (s != victim) ++histogram[identifier.signature_of(s)];
    }
    int ambiguous = 0;
    for (const auto& [sig, count] : histogram) {
      if (count > 1) ambiguous += count;
    }
    t.row(bits, scheme.window_hops(), identifier.distinct_signatures(),
          ambiguous);
  }
  t.print();
  std::cout << "More bits per hop discriminate better inside the window but\n"
               "shrink it: at 4 bits the window is 4 hops, so most of an\n"
               "8x8 mesh wraps — the trade Pi cannot escape in 16 bits.\n";
}

void adaptivity() {
  bench::banner("E2b: DPM lookups under routing adaptivity (8x8 mesh)");
  topo::Mesh m({8, 8});
  route::DimensionOrderRouter trained(m);
  mark::DpmScheme scheme;
  const auto victim = m.id_of(Coord{7, 7});
  mark::DpmIdentifier identifier(m, trained, victim, scheme);
  bench::Table t({"runtime router", "exact hit", "ambiguous", "wrong source",
                  "unknown signature"});
  for (const char* router_name :
       {"dor", "west-first", "negative-first", "adaptive", "adaptive-misroute"}) {
    const auto router = route::make_router(router_name, m);
    int exact = 0, ambiguous = 0, wrong = 0, unknown = 0, total = 0;
    for (topo::NodeId src = 0; src < m.num_nodes(); ++src) {
      if (src == victim) continue;
      for (int trial = 0; trial < 20; ++trial) {
        mark::WalkOptions options;
        options.seed = std::uint64_t(src) * 131 + trial;
        options.record_path = false;
        const auto walk =
            mark::walk_packet(m, *router, &scheme, src, victim, options);
        if (!walk.delivered()) continue;
        ++total;
        const auto candidates = identifier.observe(walk.packet, victim);
        if (candidates.empty()) {
          ++unknown;
        } else if (std::find(candidates.begin(), candidates.end(), src) ==
                   candidates.end()) {
          ++wrong;
        } else if (candidates.size() == 1) {
          ++exact;
        } else {
          ++ambiguous;
        }
      }
    }
    auto pct = [total](int v) {
      return std::to_string(v * 100 / std::max(total, 1)) + "%";
    };
    t.row(router_name, pct(exact), pct(ambiguous), pct(wrong), pct(unknown));
  }
  t.print();
  std::cout << "Stable routes: lookups mostly land (some ambiguity). Adaptive\n"
               "routes: signatures the victim never trained on — DPM breaks.\n";
}

void wraparound() {
  bench::banner("E2c: 16-hop wrap-around erases distant-source information");
  topo::Mesh m({20, 20});
  route::DimensionOrderRouter router(m);
  mark::DpmScheme scheme;
  const auto victim = m.id_of(Coord{19, 19});
  // Group sources by XY distance; count how many share their signature
  // with another source at the same distance.
  std::map<int, std::pair<int, int>> by_distance;  // d -> (sources, collided)
  std::map<int, std::map<std::uint16_t, int>> sigs;
  for (topo::NodeId s = 0; s < m.num_nodes(); ++s) {
    if (s == victim) continue;
    const auto walk = mark::walk_packet(m, router, &scheme, s, victim);
    if (!walk.delivered()) continue;
    ++sigs[walk.hops][walk.packet.marking_field()];
  }
  bench::Table t({"path length d", "sources", "distinct signatures",
                  "info bits still unique"});
  for (const auto& [d, histogram] : sigs) {
    int sources = 0;
    for (const auto& [sig, count] : histogram) sources += count;
    if (sources < 4) continue;
    t.row(d, sources, histogram.size(), d <= 16 ? "yes (d <= 16)" : "NO (wrapped)");
  }
  t.print();
  std::cout << "Beyond 16 hops every new switch overwrites a bit written\n"
               "16 hops earlier: the marks that distinguish distant sources\n"
               "are destroyed (paper: 'the MF starts to lose information of\n"
               "paths farther than 16 hops').\n";
}

}  // namespace

int main() {
  collisions();
  pi_variants();
  adaptivity();
  wraparound();
  return 0;
}
