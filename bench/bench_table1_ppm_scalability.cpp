// Table 1 — Scalability of simple (full-edge) PPM.
//
// Paper: | n x n mesh, torus | logn^2 + logn^2 + log2n | 8 x 8 nodes |
//        | n-cube hypercube  | 2log2^n + loglog2^n     | 2^6 nodes   |
#include "bench_util.hpp"
#include "marking/scalability.hpp"

int main() {
  using namespace ddpm;
  using mark::SchemeKind;

  bench::banner("Table 1: Scalability of simple PPM (full-edge layout)");
  {
    bench::Table t({"Topology", "Required Field", "Max Cluster Size"});
    for (const auto& row : mark::scalability_table(SchemeKind::kSimplePpm)) {
      t.row(row.topology, row.formula, row.max_cluster);
    }
    t.print();
  }

  bench::banner("Required bits by size (16-bit Marking Field)");
  {
    bench::Table t({"mesh side n", "bits needed", "fits?"});
    for (int n = 4; n <= 256; n *= 2) {
      const int bits = mark::required_bits_mesh2d(SchemeKind::kSimplePpm, n);
      t.row(n, bits, bits <= 16 ? "yes" : "NO");
    }
    t.print();
  }
  {
    bench::Table t({"hypercube n", "nodes", "bits needed", "fits?"});
    for (int n = 3; n <= 12; ++n) {
      const int bits = mark::required_bits_hypercube(SchemeKind::kSimplePpm, n);
      t.row(n, 1 << n, bits, bits <= 16 ? "yes" : "NO");
    }
    t.print();
  }
  return 0;
}
