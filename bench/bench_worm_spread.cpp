// Experiment E6 (motivation, paper §1) — second-generation DDoS: a
// random-scanning worm inside the cluster. Infection count and scan traffic
// grow with the infected population until the cluster saturates; DDPM still
// names every scanner from single packets, enabling progressive quarantine.
#include "bench_util.hpp"
#include "cluster/network.hpp"
#include "marking/ddpm.hpp"

namespace {

using namespace ddpm;

void spread_timeline() {
  bench::banner("E6a: worm infection growth (16x16 torus, patient zero)");
  cluster::ClusterConfig config;
  config.topology = "torus:16x16";
  config.router = "adaptive";
  config.scheme = "ddpm";
  config.benign_rate_per_node = 0.0;
  config.seed = 4242;
  cluster::ClusterNetwork net(config);
  attack::AttackConfig attack;
  attack.kind = attack::AttackKind::kWorm;
  attack.zombies = {0};
  attack.worm_scan_rate = 0.0003;
  attack.worm_incubation = 5000;
  net.set_attack(attack);
  net.start();

  bench::Table t({"time", "infected nodes", "worm packets injected"});
  for (netsim::SimTime when = 0; when <= 600000; when += 40000) {
    net.run_until(when);
    t.row(when, net.infected_count(), net.metrics().injected_attack);
  }
  t.print();
  std::cout << "Traffic grows with the infected population — the paper's\n"
               "'total traffic increases exponentially' second-generation\n"
               "attack, reproduced inside the interconnect.\n";
}

void quarantine() {
  bench::banner("E6b: DDPM-driven quarantine of scanners");
  cluster::ClusterConfig config;
  config.topology = "torus:16x16";
  config.router = "adaptive";
  config.scheme = "ddpm";
  config.benign_rate_per_node = 0.0;
  config.seed = 4242;
  cluster::ClusterNetwork net(config);
  attack::AttackConfig attack;
  attack.kind = attack::AttackKind::kWorm;
  attack.zombies = {0};
  attack.worm_scan_rate = 0.0003;
  attack.worm_incubation = 5000;
  net.set_attack(attack);

  // Every node quarantines scanners: any TCP scan delivered anywhere is
  // traced with DDPM and the true origin is blocked at its source switch.
  mark::DdpmIdentifier identifier(net.topology());
  std::uint64_t quarantined = 0;
  net.set_delivery_hook([&](const pkt::Packet& p, topo::NodeId at) {
    if (p.traffic != pkt::TrafficClass::kAttackWorm) return;
    const auto candidates = identifier.observe(p, at);
    if (candidates.size() == 1 &&
        !net.filter().blocks_injection(candidates.front())) {
      net.filter().block_source_node(candidates.front());
      ++quarantined;
    }
  });
  net.start();

  bench::Table t({"time", "infected", "quarantined", "scan packets delivered"});
  std::uint64_t last_delivered = 0;
  for (netsim::SimTime when = 0; when <= 600000; when += 40000) {
    net.run_until(when);
    const auto delivered = net.metrics().delivered_attack;
    t.row(when, net.infected_count(), quarantined, delivered - last_delivered);
    last_delivered = delivered;
  }
  t.print();
  std::cout << "Each scanner is cut off after its first delivered scan —\n"
               "infection still spreads through packets already in flight,\n"
               "but scan traffic collapses instead of growing.\n";
}

}  // namespace

int main() {
  spread_timeline();
  quarantine();
  return 0;
}
