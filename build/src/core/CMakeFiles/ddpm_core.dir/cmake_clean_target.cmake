file(REMOVE_RECURSE
  "libddpm_core.a"
)
