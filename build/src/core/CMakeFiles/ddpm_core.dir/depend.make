# Empty dependencies file for ddpm_core.
# This may be replaced when dependencies are built.
