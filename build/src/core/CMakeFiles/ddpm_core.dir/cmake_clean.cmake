file(REMOVE_RECURSE
  "CMakeFiles/ddpm_core.dir/experiment.cpp.o"
  "CMakeFiles/ddpm_core.dir/experiment.cpp.o.d"
  "CMakeFiles/ddpm_core.dir/report_json.cpp.o"
  "CMakeFiles/ddpm_core.dir/report_json.cpp.o.d"
  "CMakeFiles/ddpm_core.dir/sis.cpp.o"
  "CMakeFiles/ddpm_core.dir/sis.cpp.o.d"
  "libddpm_core.a"
  "libddpm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddpm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
