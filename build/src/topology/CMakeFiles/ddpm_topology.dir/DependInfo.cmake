
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/cartesian.cpp" "src/topology/CMakeFiles/ddpm_topology.dir/cartesian.cpp.o" "gcc" "src/topology/CMakeFiles/ddpm_topology.dir/cartesian.cpp.o.d"
  "/root/repo/src/topology/coord.cpp" "src/topology/CMakeFiles/ddpm_topology.dir/coord.cpp.o" "gcc" "src/topology/CMakeFiles/ddpm_topology.dir/coord.cpp.o.d"
  "/root/repo/src/topology/factory.cpp" "src/topology/CMakeFiles/ddpm_topology.dir/factory.cpp.o" "gcc" "src/topology/CMakeFiles/ddpm_topology.dir/factory.cpp.o.d"
  "/root/repo/src/topology/graph.cpp" "src/topology/CMakeFiles/ddpm_topology.dir/graph.cpp.o" "gcc" "src/topology/CMakeFiles/ddpm_topology.dir/graph.cpp.o.d"
  "/root/repo/src/topology/hypercube.cpp" "src/topology/CMakeFiles/ddpm_topology.dir/hypercube.cpp.o" "gcc" "src/topology/CMakeFiles/ddpm_topology.dir/hypercube.cpp.o.d"
  "/root/repo/src/topology/mesh.cpp" "src/topology/CMakeFiles/ddpm_topology.dir/mesh.cpp.o" "gcc" "src/topology/CMakeFiles/ddpm_topology.dir/mesh.cpp.o.d"
  "/root/repo/src/topology/topology.cpp" "src/topology/CMakeFiles/ddpm_topology.dir/topology.cpp.o" "gcc" "src/topology/CMakeFiles/ddpm_topology.dir/topology.cpp.o.d"
  "/root/repo/src/topology/torus.cpp" "src/topology/CMakeFiles/ddpm_topology.dir/torus.cpp.o" "gcc" "src/topology/CMakeFiles/ddpm_topology.dir/torus.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
