# Empty compiler generated dependencies file for ddpm_topology.
# This may be replaced when dependencies are built.
