file(REMOVE_RECURSE
  "libddpm_topology.a"
)
