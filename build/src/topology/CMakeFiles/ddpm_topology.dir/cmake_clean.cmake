file(REMOVE_RECURSE
  "CMakeFiles/ddpm_topology.dir/cartesian.cpp.o"
  "CMakeFiles/ddpm_topology.dir/cartesian.cpp.o.d"
  "CMakeFiles/ddpm_topology.dir/coord.cpp.o"
  "CMakeFiles/ddpm_topology.dir/coord.cpp.o.d"
  "CMakeFiles/ddpm_topology.dir/factory.cpp.o"
  "CMakeFiles/ddpm_topology.dir/factory.cpp.o.d"
  "CMakeFiles/ddpm_topology.dir/graph.cpp.o"
  "CMakeFiles/ddpm_topology.dir/graph.cpp.o.d"
  "CMakeFiles/ddpm_topology.dir/hypercube.cpp.o"
  "CMakeFiles/ddpm_topology.dir/hypercube.cpp.o.d"
  "CMakeFiles/ddpm_topology.dir/mesh.cpp.o"
  "CMakeFiles/ddpm_topology.dir/mesh.cpp.o.d"
  "CMakeFiles/ddpm_topology.dir/topology.cpp.o"
  "CMakeFiles/ddpm_topology.dir/topology.cpp.o.d"
  "CMakeFiles/ddpm_topology.dir/torus.cpp.o"
  "CMakeFiles/ddpm_topology.dir/torus.cpp.o.d"
  "libddpm_topology.a"
  "libddpm_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddpm_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
