file(REMOVE_RECURSE
  "libddpm_trace.a"
)
