file(REMOVE_RECURSE
  "CMakeFiles/ddpm_trace.dir/trace.cpp.o"
  "CMakeFiles/ddpm_trace.dir/trace.cpp.o.d"
  "libddpm_trace.a"
  "libddpm_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddpm_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
