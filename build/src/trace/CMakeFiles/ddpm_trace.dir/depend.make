# Empty dependencies file for ddpm_trace.
# This may be replaced when dependencies are built.
