file(REMOVE_RECURSE
  "CMakeFiles/ddpm_indirect.dir/butterfly.cpp.o"
  "CMakeFiles/ddpm_indirect.dir/butterfly.cpp.o.d"
  "CMakeFiles/ddpm_indirect.dir/port_stamp.cpp.o"
  "CMakeFiles/ddpm_indirect.dir/port_stamp.cpp.o.d"
  "libddpm_indirect.a"
  "libddpm_indirect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddpm_indirect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
