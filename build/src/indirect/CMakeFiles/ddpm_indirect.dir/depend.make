# Empty dependencies file for ddpm_indirect.
# This may be replaced when dependencies are built.
