file(REMOVE_RECURSE
  "libddpm_indirect.a"
)
