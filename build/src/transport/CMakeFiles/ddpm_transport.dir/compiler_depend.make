# Empty compiler generated dependencies file for ddpm_transport.
# This may be replaced when dependencies are built.
