file(REMOVE_RECURSE
  "libddpm_transport.a"
)
