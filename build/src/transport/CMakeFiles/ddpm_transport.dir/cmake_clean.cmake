file(REMOVE_RECURSE
  "CMakeFiles/ddpm_transport.dir/tcp.cpp.o"
  "CMakeFiles/ddpm_transport.dir/tcp.cpp.o.d"
  "libddpm_transport.a"
  "libddpm_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddpm_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
