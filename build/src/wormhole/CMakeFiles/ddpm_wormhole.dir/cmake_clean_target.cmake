file(REMOVE_RECURSE
  "libddpm_wormhole.a"
)
