# Empty dependencies file for ddpm_wormhole.
# This may be replaced when dependencies are built.
