file(REMOVE_RECURSE
  "CMakeFiles/ddpm_wormhole.dir/wormhole.cpp.o"
  "CMakeFiles/ddpm_wormhole.dir/wormhole.cpp.o.d"
  "libddpm_wormhole.a"
  "libddpm_wormhole.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddpm_wormhole.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
