# Empty compiler generated dependencies file for ddpm_detect.
# This may be replaced when dependencies are built.
