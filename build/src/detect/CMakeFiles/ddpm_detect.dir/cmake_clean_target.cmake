file(REMOVE_RECURSE
  "libddpm_detect.a"
)
