file(REMOVE_RECURSE
  "CMakeFiles/ddpm_detect.dir/detector.cpp.o"
  "CMakeFiles/ddpm_detect.dir/detector.cpp.o.d"
  "libddpm_detect.a"
  "libddpm_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddpm_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
