
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/metrics.cpp" "src/cluster/CMakeFiles/ddpm_cluster.dir/metrics.cpp.o" "gcc" "src/cluster/CMakeFiles/ddpm_cluster.dir/metrics.cpp.o.d"
  "/root/repo/src/cluster/network.cpp" "src/cluster/CMakeFiles/ddpm_cluster.dir/network.cpp.o" "gcc" "src/cluster/CMakeFiles/ddpm_cluster.dir/network.cpp.o.d"
  "/root/repo/src/cluster/node.cpp" "src/cluster/CMakeFiles/ddpm_cluster.dir/node.cpp.o" "gcc" "src/cluster/CMakeFiles/ddpm_cluster.dir/node.cpp.o.d"
  "/root/repo/src/cluster/switch.cpp" "src/cluster/CMakeFiles/ddpm_cluster.dir/switch.cpp.o" "gcc" "src/cluster/CMakeFiles/ddpm_cluster.dir/switch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/marking/CMakeFiles/ddpm_marking.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/ddpm_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/ddpm_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/ddpm_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/ddpm_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/ddpm_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/ddpm_netsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
