# Empty compiler generated dependencies file for ddpm_cluster.
# This may be replaced when dependencies are built.
