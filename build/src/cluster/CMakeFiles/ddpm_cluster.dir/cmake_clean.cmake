file(REMOVE_RECURSE
  "CMakeFiles/ddpm_cluster.dir/metrics.cpp.o"
  "CMakeFiles/ddpm_cluster.dir/metrics.cpp.o.d"
  "CMakeFiles/ddpm_cluster.dir/network.cpp.o"
  "CMakeFiles/ddpm_cluster.dir/network.cpp.o.d"
  "CMakeFiles/ddpm_cluster.dir/node.cpp.o"
  "CMakeFiles/ddpm_cluster.dir/node.cpp.o.d"
  "CMakeFiles/ddpm_cluster.dir/switch.cpp.o"
  "CMakeFiles/ddpm_cluster.dir/switch.cpp.o.d"
  "libddpm_cluster.a"
  "libddpm_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddpm_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
