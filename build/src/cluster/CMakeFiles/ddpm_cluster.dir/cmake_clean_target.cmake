file(REMOVE_RECURSE
  "libddpm_cluster.a"
)
