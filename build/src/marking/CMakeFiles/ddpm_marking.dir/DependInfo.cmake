
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/marking/authenticated.cpp" "src/marking/CMakeFiles/ddpm_marking.dir/authenticated.cpp.o" "gcc" "src/marking/CMakeFiles/ddpm_marking.dir/authenticated.cpp.o.d"
  "/root/repo/src/marking/ddpm.cpp" "src/marking/CMakeFiles/ddpm_marking.dir/ddpm.cpp.o" "gcc" "src/marking/CMakeFiles/ddpm_marking.dir/ddpm.cpp.o.d"
  "/root/repo/src/marking/dpm.cpp" "src/marking/CMakeFiles/ddpm_marking.dir/dpm.cpp.o" "gcc" "src/marking/CMakeFiles/ddpm_marking.dir/dpm.cpp.o.d"
  "/root/repo/src/marking/factory.cpp" "src/marking/CMakeFiles/ddpm_marking.dir/factory.cpp.o" "gcc" "src/marking/CMakeFiles/ddpm_marking.dir/factory.cpp.o.d"
  "/root/repo/src/marking/ppm.cpp" "src/marking/CMakeFiles/ddpm_marking.dir/ppm.cpp.o" "gcc" "src/marking/CMakeFiles/ddpm_marking.dir/ppm.cpp.o.d"
  "/root/repo/src/marking/ppm_fragment.cpp" "src/marking/CMakeFiles/ddpm_marking.dir/ppm_fragment.cpp.o" "gcc" "src/marking/CMakeFiles/ddpm_marking.dir/ppm_fragment.cpp.o.d"
  "/root/repo/src/marking/ppm_reconstruct.cpp" "src/marking/CMakeFiles/ddpm_marking.dir/ppm_reconstruct.cpp.o" "gcc" "src/marking/CMakeFiles/ddpm_marking.dir/ppm_reconstruct.cpp.o.d"
  "/root/repo/src/marking/scalability.cpp" "src/marking/CMakeFiles/ddpm_marking.dir/scalability.cpp.o" "gcc" "src/marking/CMakeFiles/ddpm_marking.dir/scalability.cpp.o.d"
  "/root/repo/src/marking/walk.cpp" "src/marking/CMakeFiles/ddpm_marking.dir/walk.cpp.o" "gcc" "src/marking/CMakeFiles/ddpm_marking.dir/walk.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/packet/CMakeFiles/ddpm_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/ddpm_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/ddpm_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/ddpm_netsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
