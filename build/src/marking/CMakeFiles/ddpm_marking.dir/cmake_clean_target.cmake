file(REMOVE_RECURSE
  "libddpm_marking.a"
)
