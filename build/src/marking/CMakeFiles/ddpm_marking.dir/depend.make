# Empty dependencies file for ddpm_marking.
# This may be replaced when dependencies are built.
