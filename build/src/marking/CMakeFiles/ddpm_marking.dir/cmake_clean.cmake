file(REMOVE_RECURSE
  "CMakeFiles/ddpm_marking.dir/authenticated.cpp.o"
  "CMakeFiles/ddpm_marking.dir/authenticated.cpp.o.d"
  "CMakeFiles/ddpm_marking.dir/ddpm.cpp.o"
  "CMakeFiles/ddpm_marking.dir/ddpm.cpp.o.d"
  "CMakeFiles/ddpm_marking.dir/dpm.cpp.o"
  "CMakeFiles/ddpm_marking.dir/dpm.cpp.o.d"
  "CMakeFiles/ddpm_marking.dir/factory.cpp.o"
  "CMakeFiles/ddpm_marking.dir/factory.cpp.o.d"
  "CMakeFiles/ddpm_marking.dir/ppm.cpp.o"
  "CMakeFiles/ddpm_marking.dir/ppm.cpp.o.d"
  "CMakeFiles/ddpm_marking.dir/ppm_fragment.cpp.o"
  "CMakeFiles/ddpm_marking.dir/ppm_fragment.cpp.o.d"
  "CMakeFiles/ddpm_marking.dir/ppm_reconstruct.cpp.o"
  "CMakeFiles/ddpm_marking.dir/ppm_reconstruct.cpp.o.d"
  "CMakeFiles/ddpm_marking.dir/scalability.cpp.o"
  "CMakeFiles/ddpm_marking.dir/scalability.cpp.o.d"
  "CMakeFiles/ddpm_marking.dir/walk.cpp.o"
  "CMakeFiles/ddpm_marking.dir/walk.cpp.o.d"
  "libddpm_marking.a"
  "libddpm_marking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddpm_marking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
