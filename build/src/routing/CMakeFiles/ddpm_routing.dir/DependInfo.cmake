
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/adaptive.cpp" "src/routing/CMakeFiles/ddpm_routing.dir/adaptive.cpp.o" "gcc" "src/routing/CMakeFiles/ddpm_routing.dir/adaptive.cpp.o.d"
  "/root/repo/src/routing/dor.cpp" "src/routing/CMakeFiles/ddpm_routing.dir/dor.cpp.o" "gcc" "src/routing/CMakeFiles/ddpm_routing.dir/dor.cpp.o.d"
  "/root/repo/src/routing/factory.cpp" "src/routing/CMakeFiles/ddpm_routing.dir/factory.cpp.o" "gcc" "src/routing/CMakeFiles/ddpm_routing.dir/factory.cpp.o.d"
  "/root/repo/src/routing/oracle.cpp" "src/routing/CMakeFiles/ddpm_routing.dir/oracle.cpp.o" "gcc" "src/routing/CMakeFiles/ddpm_routing.dir/oracle.cpp.o.d"
  "/root/repo/src/routing/router.cpp" "src/routing/CMakeFiles/ddpm_routing.dir/router.cpp.o" "gcc" "src/routing/CMakeFiles/ddpm_routing.dir/router.cpp.o.d"
  "/root/repo/src/routing/turn_model.cpp" "src/routing/CMakeFiles/ddpm_routing.dir/turn_model.cpp.o" "gcc" "src/routing/CMakeFiles/ddpm_routing.dir/turn_model.cpp.o.d"
  "/root/repo/src/routing/valiant.cpp" "src/routing/CMakeFiles/ddpm_routing.dir/valiant.cpp.o" "gcc" "src/routing/CMakeFiles/ddpm_routing.dir/valiant.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/ddpm_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/ddpm_netsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
