file(REMOVE_RECURSE
  "libddpm_routing.a"
)
