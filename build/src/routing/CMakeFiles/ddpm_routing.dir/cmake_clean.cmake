file(REMOVE_RECURSE
  "CMakeFiles/ddpm_routing.dir/adaptive.cpp.o"
  "CMakeFiles/ddpm_routing.dir/adaptive.cpp.o.d"
  "CMakeFiles/ddpm_routing.dir/dor.cpp.o"
  "CMakeFiles/ddpm_routing.dir/dor.cpp.o.d"
  "CMakeFiles/ddpm_routing.dir/factory.cpp.o"
  "CMakeFiles/ddpm_routing.dir/factory.cpp.o.d"
  "CMakeFiles/ddpm_routing.dir/oracle.cpp.o"
  "CMakeFiles/ddpm_routing.dir/oracle.cpp.o.d"
  "CMakeFiles/ddpm_routing.dir/router.cpp.o"
  "CMakeFiles/ddpm_routing.dir/router.cpp.o.d"
  "CMakeFiles/ddpm_routing.dir/turn_model.cpp.o"
  "CMakeFiles/ddpm_routing.dir/turn_model.cpp.o.d"
  "CMakeFiles/ddpm_routing.dir/valiant.cpp.o"
  "CMakeFiles/ddpm_routing.dir/valiant.cpp.o.d"
  "libddpm_routing.a"
  "libddpm_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddpm_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
