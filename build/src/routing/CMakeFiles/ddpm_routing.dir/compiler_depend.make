# Empty compiler generated dependencies file for ddpm_routing.
# This may be replaced when dependencies are built.
