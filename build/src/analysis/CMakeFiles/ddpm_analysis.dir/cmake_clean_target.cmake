file(REMOVE_RECURSE
  "libddpm_analysis.a"
)
