file(REMOVE_RECURSE
  "CMakeFiles/ddpm_analysis.dir/attack_graph.cpp.o"
  "CMakeFiles/ddpm_analysis.dir/attack_graph.cpp.o.d"
  "libddpm_analysis.a"
  "libddpm_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddpm_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
