# Empty compiler generated dependencies file for ddpm_analysis.
# This may be replaced when dependencies are built.
