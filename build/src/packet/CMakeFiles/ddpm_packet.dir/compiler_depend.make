# Empty compiler generated dependencies file for ddpm_packet.
# This may be replaced when dependencies are built.
