file(REMOVE_RECURSE
  "CMakeFiles/ddpm_packet.dir/ip_header.cpp.o"
  "CMakeFiles/ddpm_packet.dir/ip_header.cpp.o.d"
  "libddpm_packet.a"
  "libddpm_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddpm_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
