file(REMOVE_RECURSE
  "libddpm_packet.a"
)
