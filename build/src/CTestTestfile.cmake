# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("netsim")
subdirs("topology")
subdirs("packet")
subdirs("routing")
subdirs("marking")
subdirs("indirect")
subdirs("irregular")
subdirs("hybrid")
subdirs("wormhole")
subdirs("attack")
subdirs("detect")
subdirs("cluster")
subdirs("transport")
subdirs("trace")
subdirs("analysis")
subdirs("core")
