file(REMOVE_RECURSE
  "libddpm_netsim.a"
)
