file(REMOVE_RECURSE
  "CMakeFiles/ddpm_netsim.dir/event_queue.cpp.o"
  "CMakeFiles/ddpm_netsim.dir/event_queue.cpp.o.d"
  "CMakeFiles/ddpm_netsim.dir/quantile.cpp.o"
  "CMakeFiles/ddpm_netsim.dir/quantile.cpp.o.d"
  "CMakeFiles/ddpm_netsim.dir/rng.cpp.o"
  "CMakeFiles/ddpm_netsim.dir/rng.cpp.o.d"
  "CMakeFiles/ddpm_netsim.dir/simulator.cpp.o"
  "CMakeFiles/ddpm_netsim.dir/simulator.cpp.o.d"
  "CMakeFiles/ddpm_netsim.dir/stats.cpp.o"
  "CMakeFiles/ddpm_netsim.dir/stats.cpp.o.d"
  "libddpm_netsim.a"
  "libddpm_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddpm_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
