
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netsim/event_queue.cpp" "src/netsim/CMakeFiles/ddpm_netsim.dir/event_queue.cpp.o" "gcc" "src/netsim/CMakeFiles/ddpm_netsim.dir/event_queue.cpp.o.d"
  "/root/repo/src/netsim/quantile.cpp" "src/netsim/CMakeFiles/ddpm_netsim.dir/quantile.cpp.o" "gcc" "src/netsim/CMakeFiles/ddpm_netsim.dir/quantile.cpp.o.d"
  "/root/repo/src/netsim/rng.cpp" "src/netsim/CMakeFiles/ddpm_netsim.dir/rng.cpp.o" "gcc" "src/netsim/CMakeFiles/ddpm_netsim.dir/rng.cpp.o.d"
  "/root/repo/src/netsim/simulator.cpp" "src/netsim/CMakeFiles/ddpm_netsim.dir/simulator.cpp.o" "gcc" "src/netsim/CMakeFiles/ddpm_netsim.dir/simulator.cpp.o.d"
  "/root/repo/src/netsim/stats.cpp" "src/netsim/CMakeFiles/ddpm_netsim.dir/stats.cpp.o" "gcc" "src/netsim/CMakeFiles/ddpm_netsim.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
