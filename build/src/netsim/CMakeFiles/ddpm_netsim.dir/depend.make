# Empty dependencies file for ddpm_netsim.
# This may be replaced when dependencies are built.
