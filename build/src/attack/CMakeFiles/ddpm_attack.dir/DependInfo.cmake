
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/attacker.cpp" "src/attack/CMakeFiles/ddpm_attack.dir/attacker.cpp.o" "gcc" "src/attack/CMakeFiles/ddpm_attack.dir/attacker.cpp.o.d"
  "/root/repo/src/attack/spoof.cpp" "src/attack/CMakeFiles/ddpm_attack.dir/spoof.cpp.o" "gcc" "src/attack/CMakeFiles/ddpm_attack.dir/spoof.cpp.o.d"
  "/root/repo/src/attack/traffic.cpp" "src/attack/CMakeFiles/ddpm_attack.dir/traffic.cpp.o" "gcc" "src/attack/CMakeFiles/ddpm_attack.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/packet/CMakeFiles/ddpm_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/ddpm_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/ddpm_netsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
