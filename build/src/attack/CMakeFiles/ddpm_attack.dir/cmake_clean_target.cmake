file(REMOVE_RECURSE
  "libddpm_attack.a"
)
