file(REMOVE_RECURSE
  "CMakeFiles/ddpm_attack.dir/attacker.cpp.o"
  "CMakeFiles/ddpm_attack.dir/attacker.cpp.o.d"
  "CMakeFiles/ddpm_attack.dir/spoof.cpp.o"
  "CMakeFiles/ddpm_attack.dir/spoof.cpp.o.d"
  "CMakeFiles/ddpm_attack.dir/traffic.cpp.o"
  "CMakeFiles/ddpm_attack.dir/traffic.cpp.o.d"
  "libddpm_attack.a"
  "libddpm_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddpm_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
