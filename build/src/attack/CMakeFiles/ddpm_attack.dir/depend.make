# Empty dependencies file for ddpm_attack.
# This may be replaced when dependencies are built.
