file(REMOVE_RECURSE
  "libddpm_hybrid.a"
)
