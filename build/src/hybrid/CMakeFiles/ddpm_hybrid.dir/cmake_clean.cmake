file(REMOVE_RECURSE
  "CMakeFiles/ddpm_hybrid.dir/hybrid.cpp.o"
  "CMakeFiles/ddpm_hybrid.dir/hybrid.cpp.o.d"
  "libddpm_hybrid.a"
  "libddpm_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddpm_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
