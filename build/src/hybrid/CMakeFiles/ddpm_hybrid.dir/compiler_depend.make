# Empty compiler generated dependencies file for ddpm_hybrid.
# This may be replaced when dependencies are built.
