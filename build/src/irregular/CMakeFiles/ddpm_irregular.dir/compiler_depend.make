# Empty compiler generated dependencies file for ddpm_irregular.
# This may be replaced when dependencies are built.
