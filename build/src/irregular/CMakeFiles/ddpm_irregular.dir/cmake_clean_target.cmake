file(REMOVE_RECURSE
  "libddpm_irregular.a"
)
