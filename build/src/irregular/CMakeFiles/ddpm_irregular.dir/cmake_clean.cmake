file(REMOVE_RECURSE
  "CMakeFiles/ddpm_irregular.dir/irregular.cpp.o"
  "CMakeFiles/ddpm_irregular.dir/irregular.cpp.o.d"
  "libddpm_irregular.a"
  "libddpm_irregular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddpm_irregular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
