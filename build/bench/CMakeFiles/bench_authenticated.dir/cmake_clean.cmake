file(REMOVE_RECURSE
  "CMakeFiles/bench_authenticated.dir/bench_authenticated.cpp.o"
  "CMakeFiles/bench_authenticated.dir/bench_authenticated.cpp.o.d"
  "bench_authenticated"
  "bench_authenticated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_authenticated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
