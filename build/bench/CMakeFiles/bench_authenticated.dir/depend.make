# Empty dependencies file for bench_authenticated.
# This may be replaced when dependencies are built.
