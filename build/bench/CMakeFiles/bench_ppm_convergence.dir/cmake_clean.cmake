file(REMOVE_RECURSE
  "CMakeFiles/bench_ppm_convergence.dir/bench_ppm_convergence.cpp.o"
  "CMakeFiles/bench_ppm_convergence.dir/bench_ppm_convergence.cpp.o.d"
  "bench_ppm_convergence"
  "bench_ppm_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ppm_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
