# Empty compiler generated dependencies file for bench_ppm_convergence.
# This may be replaced when dependencies are built.
