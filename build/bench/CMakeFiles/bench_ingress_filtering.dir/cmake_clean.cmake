file(REMOVE_RECURSE
  "CMakeFiles/bench_ingress_filtering.dir/bench_ingress_filtering.cpp.o"
  "CMakeFiles/bench_ingress_filtering.dir/bench_ingress_filtering.cpp.o.d"
  "bench_ingress_filtering"
  "bench_ingress_filtering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ingress_filtering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
