# Empty compiler generated dependencies file for bench_ingress_filtering.
# This may be replaced when dependencies are built.
