# Empty dependencies file for bench_table3_ddpm_scalability.
# This may be replaced when dependencies are built.
