file(REMOVE_RECURSE
  "CMakeFiles/bench_wormhole_loadlatency.dir/bench_wormhole_loadlatency.cpp.o"
  "CMakeFiles/bench_wormhole_loadlatency.dir/bench_wormhole_loadlatency.cpp.o.d"
  "bench_wormhole_loadlatency"
  "bench_wormhole_loadlatency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wormhole_loadlatency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
