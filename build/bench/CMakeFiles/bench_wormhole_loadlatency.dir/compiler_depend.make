# Empty compiler generated dependencies file for bench_wormhole_loadlatency.
# This may be replaced when dependencies are built.
