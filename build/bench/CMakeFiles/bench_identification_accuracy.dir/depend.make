# Empty dependencies file for bench_identification_accuracy.
# This may be replaced when dependencies are built.
