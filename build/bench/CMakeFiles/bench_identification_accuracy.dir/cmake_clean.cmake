file(REMOVE_RECURSE
  "CMakeFiles/bench_identification_accuracy.dir/bench_identification_accuracy.cpp.o"
  "CMakeFiles/bench_identification_accuracy.dir/bench_identification_accuracy.cpp.o.d"
  "bench_identification_accuracy"
  "bench_identification_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_identification_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
