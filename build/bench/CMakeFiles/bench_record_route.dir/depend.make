# Empty dependencies file for bench_record_route.
# This may be replaced when dependencies are built.
