file(REMOVE_RECURSE
  "CMakeFiles/bench_record_route.dir/bench_record_route.cpp.o"
  "CMakeFiles/bench_record_route.dir/bench_record_route.cpp.o.d"
  "bench_record_route"
  "bench_record_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_record_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
