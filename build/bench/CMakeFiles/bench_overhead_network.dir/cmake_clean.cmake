file(REMOVE_RECURSE
  "CMakeFiles/bench_overhead_network.dir/bench_overhead_network.cpp.o"
  "CMakeFiles/bench_overhead_network.dir/bench_overhead_network.cpp.o.d"
  "bench_overhead_network"
  "bench_overhead_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overhead_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
