# Empty dependencies file for bench_overhead_network.
# This may be replaced when dependencies are built.
