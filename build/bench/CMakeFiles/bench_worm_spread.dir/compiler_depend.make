# Empty compiler generated dependencies file for bench_worm_spread.
# This may be replaced when dependencies are built.
