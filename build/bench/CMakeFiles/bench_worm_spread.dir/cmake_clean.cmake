file(REMOVE_RECURSE
  "CMakeFiles/bench_worm_spread.dir/bench_worm_spread.cpp.o"
  "CMakeFiles/bench_worm_spread.dir/bench_worm_spread.cpp.o.d"
  "bench_worm_spread"
  "bench_worm_spread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_worm_spread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
