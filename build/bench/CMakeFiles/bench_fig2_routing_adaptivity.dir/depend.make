# Empty dependencies file for bench_fig2_routing_adaptivity.
# This may be replaced when dependencies are built.
