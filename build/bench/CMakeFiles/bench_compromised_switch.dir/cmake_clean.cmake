file(REMOVE_RECURSE
  "CMakeFiles/bench_compromised_switch.dir/bench_compromised_switch.cpp.o"
  "CMakeFiles/bench_compromised_switch.dir/bench_compromised_switch.cpp.o.d"
  "bench_compromised_switch"
  "bench_compromised_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compromised_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
