# Empty compiler generated dependencies file for bench_compromised_switch.
# This may be replaced when dependencies are built.
