# Empty dependencies file for bench_switch_overhead.
# This may be replaced when dependencies are built.
