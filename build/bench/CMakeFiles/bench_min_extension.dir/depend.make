# Empty dependencies file for bench_min_extension.
# This may be replaced when dependencies are built.
