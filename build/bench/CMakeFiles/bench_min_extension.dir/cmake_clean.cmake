file(REMOVE_RECURSE
  "CMakeFiles/bench_min_extension.dir/bench_min_extension.cpp.o"
  "CMakeFiles/bench_min_extension.dir/bench_min_extension.cpp.o.d"
  "bench_min_extension"
  "bench_min_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_min_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
