# Empty compiler generated dependencies file for bench_table2_bitdiff_scalability.
# This may be replaced when dependencies are built.
