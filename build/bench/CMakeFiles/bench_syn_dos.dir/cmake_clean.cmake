file(REMOVE_RECURSE
  "CMakeFiles/bench_syn_dos.dir/bench_syn_dos.cpp.o"
  "CMakeFiles/bench_syn_dos.dir/bench_syn_dos.cpp.o.d"
  "bench_syn_dos"
  "bench_syn_dos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_syn_dos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
