# Empty compiler generated dependencies file for bench_syn_dos.
# This may be replaced when dependencies are built.
