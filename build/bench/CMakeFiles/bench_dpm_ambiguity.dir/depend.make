# Empty dependencies file for bench_dpm_ambiguity.
# This may be replaced when dependencies are built.
