file(REMOVE_RECURSE
  "CMakeFiles/bench_dpm_ambiguity.dir/bench_dpm_ambiguity.cpp.o"
  "CMakeFiles/bench_dpm_ambiguity.dir/bench_dpm_ambiguity.cpp.o.d"
  "bench_dpm_ambiguity"
  "bench_dpm_ambiguity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dpm_ambiguity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
