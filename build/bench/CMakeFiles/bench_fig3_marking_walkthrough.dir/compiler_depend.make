# Empty compiler generated dependencies file for bench_fig3_marking_walkthrough.
# This may be replaced when dependencies are built.
