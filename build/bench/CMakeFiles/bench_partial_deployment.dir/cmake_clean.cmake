file(REMOVE_RECURSE
  "CMakeFiles/bench_partial_deployment.dir/bench_partial_deployment.cpp.o"
  "CMakeFiles/bench_partial_deployment.dir/bench_partial_deployment.cpp.o.d"
  "bench_partial_deployment"
  "bench_partial_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partial_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
