# Empty compiler generated dependencies file for bench_partial_deployment.
# This may be replaced when dependencies are built.
