file(REMOVE_RECURSE
  "CMakeFiles/test_authenticated.dir/test_authenticated.cpp.o"
  "CMakeFiles/test_authenticated.dir/test_authenticated.cpp.o.d"
  "test_authenticated"
  "test_authenticated.pdb"
  "test_authenticated[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_authenticated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
