# Empty compiler generated dependencies file for test_authenticated.
# This may be replaced when dependencies are built.
