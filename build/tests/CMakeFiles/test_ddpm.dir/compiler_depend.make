# Empty compiler generated dependencies file for test_ddpm.
# This may be replaced when dependencies are built.
