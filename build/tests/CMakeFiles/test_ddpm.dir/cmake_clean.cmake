file(REMOVE_RECURSE
  "CMakeFiles/test_ddpm.dir/test_ddpm.cpp.o"
  "CMakeFiles/test_ddpm.dir/test_ddpm.cpp.o.d"
  "test_ddpm"
  "test_ddpm.pdb"
  "test_ddpm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ddpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
