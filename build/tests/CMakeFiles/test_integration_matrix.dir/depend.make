# Empty dependencies file for test_integration_matrix.
# This may be replaced when dependencies are built.
