file(REMOVE_RECURSE
  "CMakeFiles/test_port_stamp.dir/test_port_stamp.cpp.o"
  "CMakeFiles/test_port_stamp.dir/test_port_stamp.cpp.o.d"
  "test_port_stamp"
  "test_port_stamp.pdb"
  "test_port_stamp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_port_stamp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
