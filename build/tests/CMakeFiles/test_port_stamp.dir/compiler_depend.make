# Empty compiler generated dependencies file for test_port_stamp.
# This may be replaced when dependencies are built.
