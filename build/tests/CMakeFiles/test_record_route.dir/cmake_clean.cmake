file(REMOVE_RECURSE
  "CMakeFiles/test_record_route.dir/test_record_route.cpp.o"
  "CMakeFiles/test_record_route.dir/test_record_route.cpp.o.d"
  "test_record_route"
  "test_record_route.pdb"
  "test_record_route[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_record_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
