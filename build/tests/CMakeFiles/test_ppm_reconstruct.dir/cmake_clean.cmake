file(REMOVE_RECURSE
  "CMakeFiles/test_ppm_reconstruct.dir/test_ppm_reconstruct.cpp.o"
  "CMakeFiles/test_ppm_reconstruct.dir/test_ppm_reconstruct.cpp.o.d"
  "test_ppm_reconstruct"
  "test_ppm_reconstruct.pdb"
  "test_ppm_reconstruct[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ppm_reconstruct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
