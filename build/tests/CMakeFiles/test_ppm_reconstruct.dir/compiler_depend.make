# Empty compiler generated dependencies file for test_ppm_reconstruct.
# This may be replaced when dependencies are built.
