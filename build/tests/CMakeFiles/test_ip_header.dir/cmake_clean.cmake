file(REMOVE_RECURSE
  "CMakeFiles/test_ip_header.dir/test_ip_header.cpp.o"
  "CMakeFiles/test_ip_header.dir/test_ip_header.cpp.o.d"
  "test_ip_header"
  "test_ip_header.pdb"
  "test_ip_header[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ip_header.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
