# Empty dependencies file for test_ip_header.
# This may be replaced when dependencies are built.
