# Empty compiler generated dependencies file for test_attack_graph.
# This may be replaced when dependencies are built.
