file(REMOVE_RECURSE
  "CMakeFiles/test_attack_graph.dir/test_attack_graph.cpp.o"
  "CMakeFiles/test_attack_graph.dir/test_attack_graph.cpp.o.d"
  "test_attack_graph"
  "test_attack_graph.pdb"
  "test_attack_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attack_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
