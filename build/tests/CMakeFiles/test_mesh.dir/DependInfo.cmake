
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_mesh.cpp" "tests/CMakeFiles/test_mesh.dir/test_mesh.cpp.o" "gcc" "tests/CMakeFiles/test_mesh.dir/test_mesh.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ddpm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ddpm_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/ddpm_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/ddpm_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/marking/CMakeFiles/ddpm_marking.dir/DependInfo.cmake"
  "/root/repo/build/src/indirect/CMakeFiles/ddpm_indirect.dir/DependInfo.cmake"
  "/root/repo/build/src/irregular/CMakeFiles/ddpm_irregular.dir/DependInfo.cmake"
  "/root/repo/build/src/hybrid/CMakeFiles/ddpm_hybrid.dir/DependInfo.cmake"
  "/root/repo/build/src/wormhole/CMakeFiles/ddpm_wormhole.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/ddpm_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ddpm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ddpm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/ddpm_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/ddpm_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/ddpm_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/ddpm_netsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
