# Empty compiler generated dependencies file for test_ppm_fragment.
# This may be replaced when dependencies are built.
