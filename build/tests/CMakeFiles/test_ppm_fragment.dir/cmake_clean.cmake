file(REMOVE_RECURSE
  "CMakeFiles/test_ppm_fragment.dir/test_ppm_fragment.cpp.o"
  "CMakeFiles/test_ppm_fragment.dir/test_ppm_fragment.cpp.o.d"
  "test_ppm_fragment"
  "test_ppm_fragment.pdb"
  "test_ppm_fragment[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ppm_fragment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
