# Empty dependencies file for test_dpm.
# This may be replaced when dependencies are built.
