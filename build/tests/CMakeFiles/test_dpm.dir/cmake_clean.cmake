file(REMOVE_RECURSE
  "CMakeFiles/test_dpm.dir/test_dpm.cpp.o"
  "CMakeFiles/test_dpm.dir/test_dpm.cpp.o.d"
  "test_dpm"
  "test_dpm.pdb"
  "test_dpm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
