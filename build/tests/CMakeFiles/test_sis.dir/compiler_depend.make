# Empty compiler generated dependencies file for test_sis.
# This may be replaced when dependencies are built.
