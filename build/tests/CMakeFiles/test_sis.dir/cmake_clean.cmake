file(REMOVE_RECURSE
  "CMakeFiles/test_sis.dir/test_sis.cpp.o"
  "CMakeFiles/test_sis.dir/test_sis.cpp.o.d"
  "test_sis"
  "test_sis.pdb"
  "test_sis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
