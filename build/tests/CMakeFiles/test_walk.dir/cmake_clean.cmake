file(REMOVE_RECURSE
  "CMakeFiles/test_walk.dir/test_walk.cpp.o"
  "CMakeFiles/test_walk.dir/test_walk.cpp.o.d"
  "test_walk"
  "test_walk.pdb"
  "test_walk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_walk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
