file(REMOVE_RECURSE
  "CMakeFiles/test_topology_properties.dir/test_topology_properties.cpp.o"
  "CMakeFiles/test_topology_properties.dir/test_topology_properties.cpp.o.d"
  "test_topology_properties"
  "test_topology_properties.pdb"
  "test_topology_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topology_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
