# Empty compiler generated dependencies file for test_marking_field.
# This may be replaced when dependencies are built.
