file(REMOVE_RECURSE
  "CMakeFiles/test_marking_field.dir/test_marking_field.cpp.o"
  "CMakeFiles/test_marking_field.dir/test_marking_field.cpp.o.d"
  "test_marking_field"
  "test_marking_field.pdb"
  "test_marking_field[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_marking_field.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
