# Empty dependencies file for test_ddpm_properties.
# This may be replaced when dependencies are built.
