file(REMOVE_RECURSE
  "CMakeFiles/test_ddpm_properties.dir/test_ddpm_properties.cpp.o"
  "CMakeFiles/test_ddpm_properties.dir/test_ddpm_properties.cpp.o.d"
  "test_ddpm_properties"
  "test_ddpm_properties.pdb"
  "test_ddpm_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ddpm_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
