file(REMOVE_RECURSE
  "CMakeFiles/test_scheme_conformance.dir/test_scheme_conformance.cpp.o"
  "CMakeFiles/test_scheme_conformance.dir/test_scheme_conformance.cpp.o.d"
  "test_scheme_conformance"
  "test_scheme_conformance.pdb"
  "test_scheme_conformance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scheme_conformance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
