# Empty dependencies file for test_scheme_conformance.
# This may be replaced when dependencies are built.
