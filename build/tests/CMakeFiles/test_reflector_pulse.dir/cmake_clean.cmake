file(REMOVE_RECURSE
  "CMakeFiles/test_reflector_pulse.dir/test_reflector_pulse.cpp.o"
  "CMakeFiles/test_reflector_pulse.dir/test_reflector_pulse.cpp.o.d"
  "test_reflector_pulse"
  "test_reflector_pulse.pdb"
  "test_reflector_pulse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reflector_pulse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
