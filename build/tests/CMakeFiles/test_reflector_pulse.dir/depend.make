# Empty dependencies file for test_reflector_pulse.
# This may be replaced when dependencies are built.
