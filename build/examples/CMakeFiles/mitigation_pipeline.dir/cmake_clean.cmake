file(REMOVE_RECURSE
  "CMakeFiles/mitigation_pipeline.dir/mitigation_pipeline.cpp.o"
  "CMakeFiles/mitigation_pipeline.dir/mitigation_pipeline.cpp.o.d"
  "mitigation_pipeline"
  "mitigation_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitigation_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
