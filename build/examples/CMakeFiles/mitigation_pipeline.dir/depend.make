# Empty dependencies file for mitigation_pipeline.
# This may be replaced when dependencies are built.
