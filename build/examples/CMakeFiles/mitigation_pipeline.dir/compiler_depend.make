# Empty compiler generated dependencies file for mitigation_pipeline.
# This may be replaced when dependencies are built.
