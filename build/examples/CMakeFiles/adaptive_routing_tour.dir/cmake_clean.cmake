file(REMOVE_RECURSE
  "CMakeFiles/adaptive_routing_tour.dir/adaptive_routing_tour.cpp.o"
  "CMakeFiles/adaptive_routing_tour.dir/adaptive_routing_tour.cpp.o.d"
  "adaptive_routing_tour"
  "adaptive_routing_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_routing_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
