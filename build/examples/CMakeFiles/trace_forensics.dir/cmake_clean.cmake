file(REMOVE_RECURSE
  "CMakeFiles/trace_forensics.dir/trace_forensics.cpp.o"
  "CMakeFiles/trace_forensics.dir/trace_forensics.cpp.o.d"
  "trace_forensics"
  "trace_forensics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_forensics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
