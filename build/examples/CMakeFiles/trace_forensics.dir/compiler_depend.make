# Empty compiler generated dependencies file for trace_forensics.
# This may be replaced when dependencies are built.
