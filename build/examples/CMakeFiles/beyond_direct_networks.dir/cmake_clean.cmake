file(REMOVE_RECURSE
  "CMakeFiles/beyond_direct_networks.dir/beyond_direct_networks.cpp.o"
  "CMakeFiles/beyond_direct_networks.dir/beyond_direct_networks.cpp.o.d"
  "beyond_direct_networks"
  "beyond_direct_networks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beyond_direct_networks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
