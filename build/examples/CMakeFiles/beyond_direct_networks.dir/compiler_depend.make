# Empty compiler generated dependencies file for beyond_direct_networks.
# This may be replaced when dependencies are built.
