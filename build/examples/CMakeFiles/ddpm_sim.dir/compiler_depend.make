# Empty compiler generated dependencies file for ddpm_sim.
# This may be replaced when dependencies are built.
