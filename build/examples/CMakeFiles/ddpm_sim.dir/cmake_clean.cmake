file(REMOVE_RECURSE
  "CMakeFiles/ddpm_sim.dir/ddpm_sim.cpp.o"
  "CMakeFiles/ddpm_sim.dir/ddpm_sim.cpp.o.d"
  "ddpm_sim"
  "ddpm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddpm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
