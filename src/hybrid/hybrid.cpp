#include "hybrid/hybrid.hpp"

#include <bit>
#include <stdexcept>

namespace ddpm::hybrid {

namespace {

int ceil_log2(unsigned v) { return v <= 1 ? 0 : std::bit_width(v - 1); }

}  // namespace

HybridTopology::HybridTopology(int side, int hosts_per_switch)
    : mesh_({side, side}), hosts_(hosts_per_switch) {
  if (hosts_per_switch < 1) {
    throw std::invalid_argument("HybridTopology: need >= 1 host per switch");
  }
}

int HierarchicalDdpmCodec::required_bits(const HybridTopology& topo) {
  const int local = std::max(1, ceil_log2(unsigned(topo.hosts_per_switch())));
  const int per_dim = ceil_log2(unsigned(topo.mesh().dim_size(0))) + 1;
  return local + 2 * per_dim;
}

HierarchicalDdpmCodec::HierarchicalDdpmCodec(const HybridTopology& topo)
    : topo_(topo) {
  const int total = required_bits(topo);
  if (total > 16) {
    throw std::invalid_argument("HierarchicalDdpmCodec: needs " +
                                std::to_string(total) + " bits");
  }
  const unsigned per_dim =
      unsigned(ceil_log2(unsigned(topo.mesh().dim_size(0))) + 1);
  vector_slices_[0] = {0, per_dim};
  vector_slices_[1] = {per_dim, per_dim};
  local_bits_ =
      unsigned(std::max(1, ceil_log2(unsigned(topo.hosts_per_switch()))));
  local_slice_ = {2 * per_dim, local_bits_};
}

std::uint16_t HierarchicalDdpmCodec::encode(int local,
                                            const topo::Coord& v) const {
  std::uint16_t field = 0;
  field = pkt::write_unsigned(field, local_slice_, std::uint16_t(local));
  field = pkt::write_signed(field, vector_slices_[0], v[0]);
  field = pkt::write_signed(field, vector_slices_[1], v[1]);
  return field;
}

int HierarchicalDdpmCodec::decode_local(std::uint16_t field) const {
  return int(pkt::read_unsigned(field, local_slice_));
}

topo::Coord HierarchicalDdpmCodec::decode_vector(std::uint16_t field) const {
  topo::Coord v{0, 0};
  v[0] = topo::Coord::value_type(pkt::read_signed(field, vector_slices_[0]));
  v[1] = topo::Coord::value_type(pkt::read_signed(field, vector_slices_[1]));
  return v;
}

void HierarchicalDdpmScheme::mark_injection(pkt::Packet& packet,
                                            topo::NodeId /*sw*/,
                                            int local) const {
  packet.set_marking_field(codec_.encode(local, topo::Coord{0, 0}));
}

void HierarchicalDdpmScheme::mark_forward(pkt::Packet& packet,
                                          topo::NodeId current,
                                          topo::NodeId next) const {
  const std::uint16_t field = packet.marking_field();
  const topo::Coord v = codec_.decode_vector(field);
  const topo::Coord updated =
      v + (topo_.mesh().coord_of(next) - topo_.mesh().coord_of(current));
  packet.set_marking_field(
      codec_.encode(codec_.decode_local(field), updated));
}

std::optional<HostId> HierarchicalDdpmIdentifier::identify(
    topo::NodeId victim_switch, std::uint16_t field) const {
  const topo::Coord v = codec_.decode_vector(field);
  const topo::Coord s = topo_.mesh().coord_of(victim_switch) - v;
  for (std::size_t d = 0; d < 2; ++d) {
    if (s[d] < 0 || s[d] >= topo_.mesh().dim_size(d)) return std::nullopt;
  }
  const int local = codec_.decode_local(field);
  if (local >= topo_.hosts_per_switch()) return std::nullopt;
  return topo_.host_of(topo_.mesh().id_of(s), local);
}

}  // namespace ddpm::hybrid
