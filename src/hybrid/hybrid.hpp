// Hybrid (two-level) topology and hierarchical DDPM (paper §6.3: "Multiple
// backbone buses and cluster-based networks are examples of hybrid
// networks" — §3; "hybrid networks ... may need a completely different
// approach" — §6.3).
//
// Model: a 2-D mesh of switches where every switch also hosts a shared bus
// with H compute hosts (the classic cluster-of-SMPs shape). A host is
// addressed hierarchically as (switch coordinates, local index).
//
// Hierarchical DDPM splits the Marking Field into two regions:
//   [ local index : h bits | mesh distance vector : 2*(ceil(log2 side)+1) ]
// The source's switch writes the local index of the injecting host and
// zeroes the vector (the Figure 4 reset, extended one level down); every
// mesh hop updates the vector exactly as plain DDPM. The victim recovers
// the switch as D - V and the host from the local bits — one packet, any
// route, same arithmetic. Scalability: a 32x32 mesh with 16 hosts per
// switch (16384 hosts) uses 4 + 12 = 16 bits.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "marking/scheme.hpp"
#include "packet/marking_field.hpp"
#include "topology/mesh.hpp"

namespace ddpm::hybrid {

/// Host identifier: switch_id * hosts_per_switch + local_index.
using HostId = std::uint32_t;

class HybridTopology {
 public:
  /// side x side switch mesh, `hosts_per_switch` hosts on each bus.
  HybridTopology(int side, int hosts_per_switch);

  const topo::Mesh& mesh() const noexcept { return mesh_; }
  int hosts_per_switch() const noexcept { return hosts_; }
  HostId num_hosts() const noexcept {
    return mesh_.num_nodes() * HostId(hosts_);
  }

  topo::NodeId switch_of(HostId host) const { return host / HostId(hosts_); }
  int local_of(HostId host) const { return int(host % HostId(hosts_)); }
  HostId host_of(topo::NodeId sw, int local) const {
    return sw * HostId(hosts_) + HostId(local);
  }

 private:
  topo::Mesh mesh_;
  int hosts_;
};

/// Field split for hierarchical DDPM; throws if local + vector bits > 16.
class HierarchicalDdpmCodec {
 public:
  explicit HierarchicalDdpmCodec(const HybridTopology& topo);

  static int required_bits(const HybridTopology& topo);
  static bool fits(const HybridTopology& topo) {
    return required_bits(topo) <= 16;
  }

  std::uint16_t encode(int local, const topo::Coord& v) const;
  int decode_local(std::uint16_t field) const;
  topo::Coord decode_vector(std::uint16_t field) const;

 private:
  const HybridTopology& topo_;
  unsigned local_bits_;
  std::array<pkt::FieldSlice, 2> vector_slices_;
  pkt::FieldSlice local_slice_;
};

/// Switch-side hierarchical DDPM. The injection hook takes the HOST id via
/// Packet::true_source... no — schemes never read ground truth. Instead the
/// injecting host's local index rides in `Packet::flow`'s low bits? Also
/// no: the scheme receives it explicitly through mark_injection(), because
/// the switch knows which bus port the packet physically entered.
class HierarchicalDdpmScheme {
 public:
  explicit HierarchicalDdpmScheme(const HybridTopology& topo)
      : topo_(topo), codec_(topo) {}

  /// Source switch `sw`, packet entering from bus port `local`.
  void mark_injection(pkt::Packet& packet, topo::NodeId sw, int local) const;

  /// Mesh hop, identical to Figure 4.
  void mark_forward(pkt::Packet& packet, topo::NodeId current,
                    topo::NodeId next) const;

  const HierarchicalDdpmCodec& codec() const noexcept { return codec_; }

 private:
  const HybridTopology& topo_;
  HierarchicalDdpmCodec codec_;
};

/// Victim-side: one packet -> one host.
class HierarchicalDdpmIdentifier {
 public:
  explicit HierarchicalDdpmIdentifier(const HybridTopology& topo)
      : topo_(topo), codec_(topo) {}

  /// `victim_switch` is the switch the packet was delivered through.
  std::optional<HostId> identify(topo::NodeId victim_switch,
                                 std::uint16_t field) const;

 private:
  const HybridTopology& topo_;
  HierarchicalDdpmCodec codec_;
};

}  // namespace ddpm::hybrid
