#include "stream/space_saving.hpp"

#include <algorithm>

#include "core/check.hpp"
#include "stream/sketch.hpp"

namespace ddpm::stream {

namespace {

std::uint32_t next_pow2(std::uint32_t v) noexcept {
  std::uint32_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

SpaceSavingTopK::SpaceSavingTopK(std::uint32_t capacity, std::uint64_t seed)
    : capacity_(capacity), seed_(seed) {
  DDPM_CHECK(capacity_ > 0, "SpaceSavingTopK: capacity must be positive");
  // 4x headroom keeps linear-probe chains short at full occupancy.
  const std::uint32_t table_size = next_pow2(std::max(capacity_ * 4, 8u));
  table_mask_ = table_size - 1;
  heap_.reserve(capacity_);
  table_.assign(table_size, SsIndexSlot{});
}

DDPM_HOT std::uint32_t SpaceSavingTopK::home(
    std::uint32_t key) const noexcept {
  return std::uint32_t(mix64(seed_ ^ key)) & table_mask_;
}

DDPM_HOT std::int32_t SpaceSavingTopK::find(std::uint32_t key) const noexcept {
  std::uint32_t i = home(key);
  while (table_[i].heap_pos >= 0) {
    if (table_[i].key == key) return std::int32_t(i);
    i = (i + 1) & table_mask_;
  }
  return -1;
}

DDPM_HOT std::uint32_t SpaceSavingTopK::claim(std::uint32_t key) noexcept {
  std::uint32_t i = home(key);
  while (table_[i].heap_pos >= 0) i = (i + 1) & table_mask_;
  table_[i].key = key;
  return i;
}

DDPM_HOT void SpaceSavingTopK::vacate(std::uint32_t t) noexcept {
  // Backward-shift deletion: pull every displaced successor of the probe
  // chain one hole earlier so find() never needs tombstones.
  table_[t].heap_pos = -1;
  std::uint32_t hole = t;
  std::uint32_t i = (t + 1) & table_mask_;
  while (table_[i].heap_pos >= 0) {
    const std::uint32_t h = home(table_[i].key);
    // Move i into the hole iff the hole lies cyclically in [h, i).
    if (((i - h) & table_mask_) >= ((i - hole) & table_mask_)) {
      table_[hole] = table_[i];
      heap_[std::uint32_t(table_[hole].heap_pos)].idx_slot = hole;
      table_[i].heap_pos = -1;
      hole = i;
    }
    i = (i + 1) & table_mask_;
  }
}

DDPM_HOT void SpaceSavingTopK::swap_slots(std::uint32_t a,
                                          std::uint32_t b) noexcept {
  const SsSlot tmp = heap_[a];
  heap_[a] = heap_[b];
  heap_[b] = tmp;
  table_[heap_[a].idx_slot].heap_pos = std::int32_t(a);
  table_[heap_[b].idx_slot].heap_pos = std::int32_t(b);
}

DDPM_HOT void SpaceSavingTopK::sink(std::uint32_t pos) noexcept {
  const auto n = std::uint32_t(heap_.size());
  for (;;) {
    const std::uint32_t first_child = pos * kArity + 1;
    if (first_child >= n) return;
    std::uint32_t smallest = pos;
    const std::uint32_t last_child = std::min(first_child + kArity, n);
    for (std::uint32_t c = first_child; c < last_child; ++c) {
      if (heap_[c].count < heap_[smallest].count) smallest = c;
    }
    if (smallest == pos) return;
    swap_slots(pos, smallest);
    pos = smallest;
  }
}

DDPM_HOT void SpaceSavingTopK::swim(std::uint32_t pos) noexcept {
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) / kArity;
    if (heap_[parent].count <= heap_[pos].count) return;
    swap_slots(pos, parent);
    pos = parent;
  }
}

DDPM_HOT void SpaceSavingTopK::offer(std::uint32_t key,
                                     std::uint64_t w) noexcept {
  total_ += w;
  const std::int32_t found = find(key);
  if (found >= 0) {
    const auto pos = std::uint32_t(table_[std::uint32_t(found)].heap_pos);
    heap_[pos].count += w;
    sink(pos);  // count grew: it can only move away from the min root
    return;
  }
  if (heap_.size() < capacity_) {
    const std::uint32_t t = claim(key);
    SsSlot slot;
    slot.count = w;
    slot.error = 0;
    slot.key = key;
    slot.idx_slot = t;
    heap_.push_back(slot);
    const auto pos = std::uint32_t(heap_.size() - 1);
    table_[t].heap_pos = std::int32_t(pos);
    swim(pos);
    return;
  }
  // Summary full: the classic Space-Saving step. Evict the minimum,
  // inherit its count as the new key's error bound.
  SsSlot& root = heap_[0];
  vacate(root.idx_slot);
  const std::uint32_t t = claim(key);
  table_[t].heap_pos = 0;
  root.error = root.count;
  root.count += w;
  root.key = key;
  root.idx_slot = t;
  sink(0);
}

std::vector<SpaceSavingTopK::Item> SpaceSavingTopK::top(std::size_t k) const {
  std::vector<Item> items;
  items.reserve(heap_.size());
  for (const SsSlot& s : heap_) {
    items.push_back(Item{s.key, s.count, s.error});
  }
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.key < b.key;
  });
  if (items.size() > k) items.resize(k);
  return items;
}

SpaceSavingTopK::Item SpaceSavingTopK::top1() const noexcept {
  Item best;
  for (const SsSlot& s : heap_) {
    if (s.count > best.count || (s.count == best.count && s.key < best.key)) {
      best = Item{s.key, s.count, s.error};
    }
  }
  return best;
}

std::uint64_t SpaceSavingTopK::estimate(std::uint32_t key) const noexcept {
  const std::int32_t found = find(key);
  if (found < 0) return 0;
  return heap_[std::uint32_t(table_[std::uint32_t(found)].heap_pos)].count;
}

std::uint64_t SpaceSavingTopK::min_count() const noexcept {
  if (heap_.size() < capacity_) return 0;
  return heap_[0].count;
}

void SpaceSavingTopK::clear() noexcept {
  heap_.clear();
  std::fill(table_.begin(), table_.end(), SsIndexSlot{});
  total_ = 0;
}

}  // namespace ddpm::stream
