// Count-min sketch with conservative update — the bounded-memory
// frequency oracle behind the streaming detectors.
//
// Geometry: `depth` rows of `width` 64-bit counters, one independent hash
// per row. The classic guarantees hold (Cormode & Muthukrishnan):
//
//   estimate(k) >= true count(k)                                 (always)
//   estimate(k) <= true count(k) + eps * N   with prob >= 1 - delta
//   eps = e / width,  delta = e^-depth,  N = total stream weight
//
// Conservative update (Estan & Varghese) only raises the rows that are
// below estimate+w, which tightens the overestimate substantially on
// skewed streams while preserving the bounds; it makes updates
// ORDER-DEPENDENT, which is why the sharded flow analyzer keys every
// query to the shard that performed the updates (see flow_analyzer.hpp).
//
// The update path is DDPM_HOT: no allocation, no virtual dispatch, no
// locks, no throw/IO, and no hardware division — row/column mapping uses
// a multiply-shift range reduction instead of `% width`. tests pin the
// error bounds differentially against exact counters on 100k-source
// streams; bench_kernel ratchets `sketch_update` throughput.
#pragma once

#include <cstdint>
#include <vector>

#include "core/hot_path.hpp"

namespace ddpm::stream {

/// SplitMix64-style 64-bit finalizer used by every sketch in this library
/// (stateless, allocation-free, division-free).
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51'afd7'ed55'8ccdULL;
  x ^= x >> 33;
  x *= 0xc4ce'b9fe'1a85'ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Maps a 64-bit hash onto [0, range) without division: take the high 32
/// hash bits and multiply-shift them into the range (Lemire reduction).
constexpr std::uint32_t range_reduce(std::uint64_t hash,
                                     std::uint32_t range) noexcept {
  const auto h32 = std::uint32_t(hash >> 32);
  return std::uint32_t((std::uint64_t(h32) * std::uint64_t(range)) >> 32);
}

class CountMinSketch {
 public:
  static constexpr std::uint32_t kMaxDepth = 8;

  /// `width` counters per row, `depth` rows (clamped to kMaxDepth). Each
  /// row's hash is seeded from `seed`.
  CountMinSketch(std::uint32_t width, std::uint32_t depth, std::uint64_t seed,
                 bool conservative = true);

  /// Adds `w` to `key` and returns the post-update point estimate.
  DDPM_HOT std::uint64_t update(std::uint32_t key,
                                std::uint64_t w = 1) noexcept;

  /// Point estimate (min over rows); an upper bound on the true count.
  DDPM_HOT std::uint64_t estimate(std::uint32_t key) const noexcept;

  /// Total stream weight N (sum of update weights).
  std::uint64_t items() const noexcept { return items_; }

  std::uint32_t width() const noexcept { return width_; }
  std::uint32_t depth() const noexcept { return depth_; }
  bool conservative() const noexcept { return conservative_; }

  /// Error-bound parameters for this geometry.
  double epsilon() const noexcept;  // e / width
  double delta() const noexcept;    // e^-depth

  /// Counter storage footprint (the 4 MiB budget is checked against this).
  std::size_t memory_bytes() const noexcept {
    return counts_.size() * sizeof(std::uint64_t) +
           seeds_.size() * sizeof(std::uint64_t);
  }

  void clear() noexcept;

 private:
  std::uint32_t width_;
  std::uint32_t depth_;
  bool conservative_;
  std::uint64_t items_ = 0;
  std::vector<std::uint64_t> seeds_;   // one per row
  std::vector<std::uint64_t> counts_;  // depth_ rows of width_ counters
};

}  // namespace ddpm::stream
