// Sliding-window entropy estimator over hashed buckets.
//
// Exact sliding-window source entropy needs a per-source count map — the
// unbounded-memory trap detect::EntropyDetector fell into before it was
// capped. This sketch folds sources into `buckets` hashed counters and
// maintains the window incrementally:
//
//   H_bucket = log2(n) - (1/n) * sum_b c_b * log2(c_b)
//
// Hash collisions only MERGE sources, so H_bucket <= H_true <=
// log2(buckets); with buckets >> distinct-sources-in-window the gap is
// negligible, and the detection signal (entropy collapsing toward 0 under
// a single-victim flood, or saturating toward log2(buckets) under random
// spoofing) survives collisions by construction.
//
// observe_key() is DDPM_HOT: ring-buffer eviction, two table lookups, and
// a log2 table delta — no allocation, no division (power-of-two masks;
// the one division lives in the cold entropy_bits() query).
#pragma once

#include <cstdint>
#include <vector>

#include "core/hot_path.hpp"

namespace ddpm::stream {

class SlidingEntropySketch {
 public:
  /// Window of the last `window` keys over `buckets` hashed counters
  /// (both rounded up to powers of two).
  SlidingEntropySketch(std::uint32_t window, std::uint32_t buckets,
                       std::uint64_t seed);

  /// Feeds one key, evicting the oldest once the window is full.
  DDPM_HOT void observe_key(std::uint32_t key) noexcept;

  /// Entropy (bits) of the current window's bucket distribution. Cold:
  /// one division. 0 when the window is empty.
  double entropy_bits() const noexcept;

  bool full() const noexcept { return filled_ == window_; }
  std::uint32_t window() const noexcept { return window_; }
  std::uint32_t buckets() const noexcept {
    return std::uint32_t(counts_.size());
  }

  std::size_t memory_bytes() const noexcept {
    return ring_.size() * sizeof(std::uint32_t) +
           counts_.size() * sizeof(std::uint32_t);
  }

  void clear() noexcept;

 private:
  DDPM_HOT double clog2c(std::uint32_t c) const noexcept;

  std::uint32_t window_;       // power of two
  std::uint32_t ring_mask_;    // window_ - 1
  std::uint32_t bucket_mask_;  // buckets - 1
  std::uint32_t head_ = 0;     // next ring slot to write
  std::uint32_t filled_ = 0;   // keys currently in the window
  std::uint64_t seed_;
  double clogc_sum_ = 0.0;          // sum over buckets of c * log2(c)
  std::vector<std::uint32_t> ring_;    // bucket index per windowed key
  std::vector<std::uint32_t> counts_;  // per-bucket occupancy
  std::vector<double> log2_table_;     // log2(c) for c in [0, window_]
};

}  // namespace ddpm::stream
