// CUSUM fold over sketch-derived rates (header-only).
//
// The one-sided cumulative-sum statistic S = max(0, S + x - mean - slack)
// ratchets across windows, so pulsing floods that duck under a static
// threshold between bursts still accumulate. The flow analyzer feeds it
// per-window top-destination deltas computed from the Space-Saving
// summary; detect::CusumDetector is the per-packet sibling.
#pragma once

#include "core/hot_path.hpp"

namespace ddpm::stream {

class RateCusum {
 public:
  /// `mean` is the expected benign per-window value, `slack` the drift
  /// allowance (k), `threshold` the alarm level (h).
  RateCusum(double mean, double slack, double threshold) noexcept
      : mean_(mean), slack_(slack), threshold_(threshold) {}

  /// Folds one window's value; true when the statistic crosses threshold.
  DDPM_HOT bool fold(double value) noexcept {
    s_ += value - mean_ - slack_;
    if (s_ < 0.0) s_ = 0.0;
    return s_ > threshold_;
  }

  double statistic() const noexcept { return s_; }
  double threshold() const noexcept { return threshold_; }

  /// Re-baselines the fold mid-stream (used after warm-up calibration).
  void rebase(double mean) noexcept { mean_ = mean; }

  void clear() noexcept { s_ = 0.0; }

 private:
  double mean_;
  double slack_;
  double threshold_;
  double s_ = 0.0;
};

}  // namespace ddpm::stream
