#include "stream/flow_analyzer.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "core/check.hpp"
#include "core/parallel_runner.hpp"

namespace ddpm::stream {

namespace {

void append_top(std::ostringstream& os, const char* name,
                const std::vector<TopEntry>& entries) {
  os << "  \"" << name << "\": [";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i != 0) os << ", ";
    os << "{\"key\": " << entries[i].key << ", \"count\": " << entries[i].count
       << ", \"error\": " << entries[i].error << "}";
  }
  os << "]";
}

void append_alarm(std::ostringstream& os, const char* name,
                  const std::optional<netsim::SimTime>& t) {
  os << "  \"" << name << "\": ";
  if (t) {
    os << *t;
  } else {
    os << "null";
  }
  os << ",\n";
}

}  // namespace

std::string StreamReport::to_json() const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(6);
  os << "{\n";
  os << "  \"records\": " << records << ",\n";
  os << "  \"packets\": " << packets << ",\n";
  os << "  \"bytes\": " << bytes << ",\n";
  os << "  \"windows\": " << windows << ",\n";
  append_alarm(os, "detection_time", detection_time);
  append_alarm(os, "entropy_alarm", entropy_alarm);
  append_alarm(os, "share_alarm", share_alarm);
  append_alarm(os, "cusum_alarm", cusum_alarm);
  os << "  \"victim_identified\": " << (victim_identified ? "true" : "false")
     << ",\n";
  os << "  \"victim\": " << victim << ",\n";
  os << "  \"victim_share\": " << victim_share << ",\n";
  os << "  \"last_entropy_bits\": " << last_entropy_bits << ",\n";
  os << "  \"cusum_statistic\": " << cusum_statistic << ",\n";
  os << "  \"memory_bytes\": " << memory_bytes << ",\n";
  os << "  \"peak_buffer_bytes\": " << peak_buffer_bytes << ",\n";
  append_top(os, "top_sources", top_sources);
  os << ",\n";
  append_top(os, "top_dests", top_dests);
  os << "\n}\n";
  return os.str();
}

FlowStreamAnalyzer::Shard::Shard(const FlowAnalyzerConfig& config,
                                 std::uint64_t seed)
    : src_cms(config.cms_width, config.cms_depth, seed),
      dst_cms(config.cms_width, config.cms_depth, mix64(seed)),
      src_top(config.topk, seed),
      dst_top(config.topk, mix64(seed)),
      win_dst_top(config.topk, mix64(seed)) {}

std::size_t FlowStreamAnalyzer::Shard::memory_bytes() const noexcept {
  return src_cms.memory_bytes() + dst_cms.memory_bytes() +
         src_top.memory_bytes() + dst_top.memory_bytes() +
         win_dst_top.memory_bytes();
}

FlowStreamAnalyzer::FlowStreamAnalyzer(FlowAnalyzerConfig config)
    : config_(config),
      entropy_(config.entropy_window, config.entropy_buckets,
               mix64(config.seed ^ 0xe117'0b17ULL)) {
  DDPM_CHECK(config_.window > 0, "FlowStreamAnalyzer: window must be positive");
  DDPM_CHECK(config_.shards > 0, "FlowStreamAnalyzer: shards must be positive");
  shards_.reserve(config_.shards);
  for (std::uint32_t i = 0; i < config_.shards; ++i) {
    shards_.emplace_back(config_, mix64(config_.seed + i + 1));
  }
  src_buf_.resize(config_.shards);
  dst_buf_.resize(config_.shards);
}

std::uint32_t FlowStreamAnalyzer::shard_of(std::uint32_t key) const noexcept {
  return range_reduce(mix64(config_.seed ^ key), config_.shards);
}

void FlowStreamAnalyzer::ingest(const flow::FlowRecord& record) {
  DDPM_CHECK(!finished_, "FlowStreamAnalyzer: ingest after finish");
  const core::WindowIndex w = record.first_ts / config_.window;
  while (open_window_ < w) close_window();

  ++report_.records;
  report_.packets += record.packets;
  report_.bytes += record.bytes;
  win_arrivals_ += record.packets;
  src_buf_[shard_of(record.src)].push_back(Staged{record.src, record.packets});
  dst_buf_[shard_of(record.dst)].push_back(Staged{record.dst, record.packets});
  // One entropy observation per record: flow arrivals, not packets, carry
  // the source-diversity signal (a spoofed flood is many flows).
  entropy_.observe_key(record.src);
}

void FlowStreamAnalyzer::judge_window(std::uint64_t arrivals) {
  const netsim::SimTime window_end =
      netsim::SimTime(open_window_ + 1) * config_.window;

  // Per-window top destination across shards (serial, shard order).
  SpaceSavingTopK::Item best;
  for (const Shard& s : shards_) {
    const SpaceSavingTopK::Item it = s.win_dst_top.top1();
    if (it.count > best.count ||
        (it.count == best.count && it.count > 0 && it.key < best.key)) {
      best = it;
    }
  }

  report_.last_entropy_bits = entropy_.entropy_bits();
  const bool busy = arrivals >= config_.min_window_arrivals;

  if (busy && entropy_.full()) {
    const double h = report_.last_entropy_bits;
    if ((h < config_.entropy_low_bits || h > config_.entropy_high_bits) &&
        !report_.entropy_alarm) {
      report_.entropy_alarm = window_end;
    }
  }

  // Provable share: count - error is a lower bound on the true count.
  const double floor = double(best.count - best.error);
  const double share = arrivals > 0 ? floor / double(arrivals) : 0.0;
  if (busy && share > config_.hh_share && !report_.share_alarm) {
    report_.share_alarm = window_end;
  }

  // CUSUM over the window's top-destination count, baselined on warm-up.
  const double value = double(best.count);
  if (report_.windows < config_.warmup_windows) {
    warmup_sum_ += value;
    if (report_.windows + 1 == config_.warmup_windows) {
      const double mean =
          std::max(1.0, warmup_sum_ / double(config_.warmup_windows));
      cusum_.emplace(mean, config_.cusum_slack_frac * mean,
                     config_.cusum_threshold_frac * mean);
    }
  } else if (cusum_) {
    if (cusum_->fold(value) && !report_.cusum_alarm) {
      report_.cusum_alarm = window_end;
    }
    report_.cusum_statistic = cusum_->statistic();
  }

  if (!report_.detection_time &&
      (report_.entropy_alarm || report_.share_alarm || report_.cusum_alarm)) {
    report_.detection_time = window_end;
    // Name the window's top destination as the victim at first alarm.
    if (best.count > 0) {
      report_.victim_identified = true;
      report_.victim = best.key;
      report_.victim_share = share;
    }
  }
}

void FlowStreamAnalyzer::close_window() {
  std::size_t buffered = 0;
  for (std::uint32_t i = 0; i < config_.shards; ++i) {
    buffered += src_buf_[i].capacity() + dst_buf_[i].capacity();
  }
  buffered *= sizeof(Staged);
  report_.peak_buffer_bytes = std::max(report_.peak_buffer_bytes, buffered);

  // Fan the shards across workers: each index touches only shards_[i],
  // src_buf_[i], dst_buf_[i] — disjoint state, no locks needed. Results
  // are merged serially below, so jobs never changes a single byte.
  const core::ParallelRunner runner(config_.jobs);
  // det-taint allowance: each index touches only shard i's sketches and
  // buffers (disjoint state), and judge/merge below run serially in shard
  // order — the dispatch is unobservable in the report bytes.
  runner.for_each_index(  // ddpm-analyze: allow(det-taint)
      config_.shards, [&](std::size_t i) {
    Shard& s = shards_[i];
    for (const Staged& st : src_buf_[i]) {
      s.src_cms.update(st.key, st.weight);
      s.src_top.offer(st.key, st.weight);
    }
    for (const Staged& st : dst_buf_[i]) {
      s.dst_cms.update(st.key, st.weight);
      s.dst_top.offer(st.key, st.weight);
      s.win_dst_top.offer(st.key, st.weight);
    }
  });

  judge_window(win_arrivals_);

  for (std::uint32_t i = 0; i < config_.shards; ++i) {
    shards_[i].win_dst_top.clear();
    src_buf_[i].clear();
    dst_buf_[i].clear();
  }
  win_arrivals_ = 0;
  ++open_window_;
  ++report_.windows;
}

std::vector<TopEntry> FlowStreamAnalyzer::merged_top(bool sources,
                                                     std::size_t k) const {
  std::vector<TopEntry> merged;
  for (const Shard& s : shards_) {
    const SpaceSavingTopK& summary = sources ? s.src_top : s.dst_top;
    for (const SpaceSavingTopK::Item& it : summary.top(k)) {
      merged.push_back(TopEntry{it.key, it.count, it.error});
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const TopEntry& a, const TopEntry& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.key < b.key;
            });
  if (merged.size() > k) merged.resize(k);
  return merged;
}

std::size_t FlowStreamAnalyzer::memory_bytes() const noexcept {
  std::size_t total = entropy_.memory_bytes();
  for (const Shard& s : shards_) total += s.memory_bytes();
  return total;
}

StreamReport FlowStreamAnalyzer::finish() {
  DDPM_CHECK(!finished_, "FlowStreamAnalyzer: finish called twice");
  close_window();  // flush the open window
  finished_ = true;
  report_.memory_bytes = memory_bytes();
  report_.top_sources = merged_top(true, 10);
  report_.top_dests = merged_top(false, 10);
  return report_;
}

StreamReport replay(flow::TraceGenerator& gen,
                    const FlowAnalyzerConfig& config) {
  FlowStreamAnalyzer analyzer(config);
  flow::FlowRecord record;
  while (gen.next(record)) analyzer.ingest(record);
  return analyzer.finish();
}

StreamReport replay(const std::vector<flow::FlowRecord>& records,
                    const FlowAnalyzerConfig& config) {
  FlowStreamAnalyzer analyzer(config);
  for (const flow::FlowRecord& record : records) analyzer.ingest(record);
  return analyzer.finish();
}

}  // namespace ddpm::stream
