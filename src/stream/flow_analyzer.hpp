// FlowStreamAnalyzer: bounded-memory DDoS detection over flow streams,
// byte-identical for any --jobs count.
//
// The analyzer tumbles the stream into fixed windows and keeps every
// sketch SHARDED by key, with a structural shard count that is part of
// the configuration — NOT the thread count:
//
//   * ingest (serial): each record is staged into the shard owning its
//     source key and the shard owning its destination key; the global
//     sliding-entropy sketch is fed in stream order.
//   * window close: shards are processed by core::ParallelRunner — each
//     worker touches only its own shard's sketches (count-min with
//     conservative update is order-dependent, so a key's counters are
//     only ever updated AND queried by the one shard that owns it) —
//     then merged serially in shard order.
//
// Every detection decision happens at a window boundary from the merged
// per-shard state, so reports are bit-identical for jobs=1..N by
// construction (tests/test_determinism.cpp pins this).
//
// Detection signals (all sublinear in distinct sources):
//   * source-entropy: sliding window over hashed buckets; spoofed floods
//     saturate it toward log2(buckets), single-source floods collapse it;
//   * victim concentration: per-window destination heavy-hitter share
//     (Space-Saving lower bound) — also names the victim;
//   * CUSUM over the per-window top-destination count, baselined on the
//     first `warmup_windows` windows — catches pulsing floods.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/shard_annotations.hpp"
#include "flow/record.hpp"
#include "flow/trace_gen.hpp"
#include "stream/cusum.hpp"
#include "stream/entropy_window.hpp"
#include "stream/sketch.hpp"
#include "stream/space_saving.hpp"

namespace ddpm::stream {

struct FlowAnalyzerConfig {
  /// Tumbling-window length in ticks.
  netsim::SimTime window = 10'000;

  /// Structural shard count. Part of the detector definition: changing it
  /// changes which hash owns which key, so reports are comparable only at
  /// equal shard counts. Independent of `jobs`.
  std::uint32_t shards = 16;

  /// Per-shard count-min geometry (per side: sources and destinations).
  std::uint32_t cms_width = 2048;
  std::uint32_t cms_depth = 4;

  /// Per-shard Space-Saving capacity (cumulative and per-window).
  std::uint32_t topk = 64;

  /// Global sliding source-entropy window/buckets (rounded to pow2).
  std::uint32_t entropy_window = 4096;
  std::uint32_t entropy_buckets = 4096;
  double entropy_low_bits = 0.5;
  double entropy_high_bits = 11.0;

  /// Windows quieter than this are never judged (entropy/share alarms).
  std::uint64_t min_window_arrivals = 64;

  /// Victim-concentration alarm: provable top-destination share of the
  /// window's arrivals.
  double hh_share = 0.4;

  /// CUSUM baseline calibration: mean top-destination count over the
  /// first `warmup_windows` windows; slack/threshold scale off that mean.
  std::uint32_t warmup_windows = 4;
  double cusum_slack_frac = 1.0;
  double cusum_threshold_frac = 8.0;

  std::uint64_t seed = 0x5eed'f10eULL;

  /// Worker threads for window close. Any value yields the same bytes.
  std::size_t jobs = 1;
};

struct TopEntry {
  std::uint32_t key = 0;
  std::uint64_t count = 0;  // packets (Space-Saving upper bound)
  std::uint64_t error = 0;  // max overcount of `count`
};

struct StreamReport {
  std::uint64_t records = 0;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t windows = 0;

  /// Earliest alarm across the three signals, in ticks (window-end
  /// timestamps). Subtract the attack start to get detection latency.
  std::optional<netsim::SimTime> detection_time;
  std::optional<netsim::SimTime> entropy_alarm;
  std::optional<netsim::SimTime> share_alarm;
  std::optional<netsim::SimTime> cusum_alarm;

  /// Destination named at the first alarmed window (top destination of
  /// that window), plus its provable share of the window's packets.
  bool victim_identified = false;
  std::uint32_t victim = 0;
  double victim_share = 0.0;

  double last_entropy_bits = 0.0;
  double cusum_statistic = 0.0;

  /// Persistent sketch state (the 4 MiB budget) and the peak transient
  /// ingest-staging footprint, reported separately on purpose.
  std::size_t memory_bytes = 0;
  std::size_t peak_buffer_bytes = 0;

  /// Cumulative heavy hitters by packets (Space-Saving estimates).
  std::vector<TopEntry> top_sources;
  std::vector<TopEntry> top_dests;

  /// Deterministic single-line-per-field JSON; excludes `jobs` so runs at
  /// different parallelism compare byte-for-byte.
  std::string to_json() const;
};

class FlowStreamAnalyzer {
 public:
  explicit FlowStreamAnalyzer(FlowAnalyzerConfig config);

  /// Feeds one record. Records are windowed by first_ts; a record older
  /// than the open window is folded into the open window (late arrival).
  void ingest(const flow::FlowRecord& record);

  /// Flushes the open window and returns the final report. Call once.
  /// DDPM_DET_SINK: the report is the byte-identity artifact the
  /// determinism suite pins; every cross-shard read on its path must go
  /// through a DDPM_SHARD_MERGE function.
  DDPM_DET_SINK StreamReport finish();

  /// Persistent sketch footprint (excludes transient ingest buffers).
  /// DDPM_SHARD_MERGE: folds per-shard footprints in shard order.
  DDPM_SHARD_MERGE std::size_t memory_bytes() const noexcept;

  const FlowAnalyzerConfig& config() const noexcept { return config_; }

 private:
  struct Staged {
    std::uint32_t key = 0;
    std::uint32_t weight = 0;  // packets
  };

  /// Per-shard sketch state; only the owning shard's close-window worker
  /// ever touches it.
  struct Shard {
    Shard(const FlowAnalyzerConfig& config, std::uint64_t seed);

    CountMinSketch src_cms;        // cumulative, conservative update
    CountMinSketch dst_cms;        // cumulative
    SpaceSavingTopK src_top;       // cumulative
    SpaceSavingTopK dst_top;       // cumulative
    SpaceSavingTopK win_dst_top;   // cleared every window

    std::size_t memory_bytes() const noexcept;
  };

  std::uint32_t shard_of(std::uint32_t key) const noexcept;
  /// DDPM_SHARD_MERGE: drains the staging buffers into the shard
  /// sketches (fanned, disjoint per index) and then judges/merges the
  /// window serially in shard order.
  DDPM_SHARD_MERGE void close_window();
  void judge_window(std::uint64_t arrivals);
  /// DDPM_SHARD_MERGE: folds the per-shard top-k summaries in shard
  /// order with a total tie-break, so the result is order-stable.
  DDPM_SHARD_MERGE std::vector<TopEntry> merged_top(bool sources,
                                                    std::size_t k) const;

  FlowAnalyzerConfig config_;
  /// DDPM_SHARD_STATE: per-shard sketches — owned by this class, crossed
  /// only through the DDPM_SHARD_MERGE members above.
  DDPM_SHARD_STATE std::vector<Shard> shards_;
  SlidingEntropySketch entropy_;
  std::optional<RateCusum> cusum_;      // armed after warm-up
  double warmup_sum_ = 0.0;
  core::WindowIndex open_window_ = 0;   // ordinal of the open window
  std::uint64_t win_arrivals_ = 0;      // packets staged in the open window
  /// DDPM_SHARD_STATE: per-shard ingest staging (drained at window close).
  DDPM_SHARD_STATE std::vector<std::vector<Staged>> src_buf_;
  DDPM_SHARD_STATE std::vector<std::vector<Staged>> dst_buf_;
  StreamReport report_;
  bool finished_ = false;
};

/// Streams a generator (or a materialized trace) through an analyzer.
StreamReport replay(flow::TraceGenerator& gen, const FlowAnalyzerConfig& config);
StreamReport replay(const std::vector<flow::FlowRecord>& records,
                    const FlowAnalyzerConfig& config);

}  // namespace ddpm::stream
