#include "stream/detectors.hpp"

#include <stdexcept>

namespace ddpm::stream {

SketchEntropyDetector::SketchEntropyDetector(const SketchDetectorTuning& tuning)
    : low_(tuning.entropy_low_bits),
      high_(tuning.entropy_high_bits),
      sketch_(tuning.entropy_window, tuning.entropy_buckets, tuning.seed) {}

void SketchEntropyDetector::observe(const pkt::Packet& packet,
                                    netsim::SimTime now) {
  sketch_.observe_key(packet.header.source());
  if (!sketch_.full()) return;
  const double h = sketch_.entropy_bits();
  if (h < low_ || h > high_) latch(now);
}

void SketchEntropyDetector::reset() {
  alarm_time_.reset();
  sketch_.clear();
}

std::size_t SketchEntropyDetector::memory_bytes() const noexcept {
  return sketch_.memory_bytes();
}

HeavyHitterDetector::HeavyHitterDetector(const SketchDetectorTuning& tuning)
    : share_(tuning.hh_share),
      min_total_(tuning.hh_min_total),
      summary_(tuning.hh_capacity, tuning.seed) {}

void HeavyHitterDetector::observe(const pkt::Packet& packet,
                                  netsim::SimTime now) {
  summary_.offer(packet.header.source());
  if (summary_.total() < min_total_) return;
  const SpaceSavingTopK::Item leader = summary_.top1();
  // count - error is a LOWER bound on the leader's true count, so this
  // comparison can only under-fire, never alarm on sketch error.
  const double floor = double(leader.count - leader.error);
  if (floor > share_ * double(summary_.total())) latch(now);
}

void HeavyHitterDetector::reset() {
  alarm_time_.reset();
  summary_.clear();
}

std::size_t HeavyHitterDetector::memory_bytes() const noexcept {
  return summary_.memory_bytes();
}

SketchCusumDetector::SketchCusumDetector(const SketchDetectorTuning& tuning)
    : window_(tuning.cusum_window),
      cusum_(tuning.cusum_mean, tuning.cusum_slack, tuning.cusum_threshold),
      summary_(tuning.hh_capacity, tuning.seed) {}

void SketchCusumDetector::advance(netsim::SimTime now) {
  const std::uint64_t current = now / window_;
  while (bucket_ < current) {
    // Close the open window: fold its busiest source's count (0 for the
    // empty windows in between), then recycle the summary.
    const double value = double(summary_.top1().count);
    if (cusum_.fold(value)) latch((bucket_ + 1) * window_);
    summary_.clear();
    ++bucket_;
  }
}

void SketchCusumDetector::observe(const pkt::Packet& packet,
                                  netsim::SimTime now) {
  advance(now);
  summary_.offer(packet.header.source());
}

void SketchCusumDetector::reset() {
  alarm_time_.reset();
  cusum_.clear();
  summary_.clear();
  bucket_ = 0;
}

std::size_t SketchCusumDetector::memory_bytes() const noexcept {
  return summary_.memory_bytes();
}

std::unique_ptr<detect::Detector> make_detector(
    const std::string& name, double rate_threshold, double half_life,
    const SketchDetectorTuning& tuning) {
  if (name == "rate-threshold") {
    return std::make_unique<detect::RateThresholdDetector>(rate_threshold,
                                                           half_life);
  }
  if (name == "entropy") {
    return std::make_unique<detect::EntropyDetector>(
        tuning.entropy_window, tuning.entropy_low_bits,
        tuning.entropy_high_bits);
  }
  if (name == "cusum") {
    return std::make_unique<detect::CusumDetector>(
        tuning.cusum_window, tuning.cusum_mean, tuning.cusum_slack,
        tuning.cusum_threshold);
  }
  if (name == "syn-half-open") {
    return std::make_unique<detect::SynHalfOpenDetector>(
        tuning.syn_max_half_open, tuning.syn_timeout);
  }
  if (name == "sketch-entropy") {
    return std::make_unique<SketchEntropyDetector>(tuning);
  }
  if (name == "heavy-hitter") {
    return std::make_unique<HeavyHitterDetector>(tuning);
  }
  if (name == "sketch-cusum") {
    return std::make_unique<SketchCusumDetector>(tuning);
  }
  throw std::invalid_argument("make_detector: unknown detector '" + name + "'");
}

}  // namespace ddpm::stream
