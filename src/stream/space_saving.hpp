// Space-Saving top-K heavy-hitter summary (Metwally, Agrawal & El Abbadi).
//
// Tracks at most `capacity` candidate keys with guaranteed bounds:
//
//   count(k) - error(k) <= true count(k) <= count(k)      (monitored keys)
//   any key with true count > N / capacity is monitored    (N = stream weight)
//
// Implementation: a min-heap over the monitored counts (4-ary, like the
// event queue) plus a linear-probing open-addressing index with
// backward-shift deletion, all over flat preallocated arrays — offer() is
// DDPM_HOT: zero allocation, no virtual dispatch, no locking, no
// hardware division (power-of-two table masks, constant heap arity).
// Heap entries and index slots carry reciprocal positions so every swap,
// eviction and backward shift is O(1) pointer maintenance.
//
// Query-side helpers (top(), estimate()) are cold and may allocate.
#pragma once

#include <cstdint>
#include <vector>

#include "core/hot_path.hpp"

namespace ddpm::stream {

/// One monitored key. `idx_slot` is the key's slot in the probing table
/// (kept in sync by heap swaps), so evictions never search.
struct DDPM_HOT_STATE SsSlot {
  std::uint64_t count = 0;
  std::uint64_t error = 0;
  std::uint32_t key = 0;
  std::uint32_t idx_slot = 0;
};
DDPM_HOT_LAYOUT(SsSlot, 24, 8);

/// One probing-table slot; heap_pos < 0 means empty.
struct DDPM_HOT_STATE SsIndexSlot {
  std::uint32_t key = 0;
  std::int32_t heap_pos = -1;
};
DDPM_HOT_LAYOUT(SsIndexSlot, 8, 4);

class SpaceSavingTopK {
 public:
  struct Item {
    std::uint32_t key = 0;
    std::uint64_t count = 0;
    std::uint64_t error = 0;
  };

  SpaceSavingTopK(std::uint32_t capacity, std::uint64_t seed);

  /// Feeds `w` occurrences of `key` into the summary.
  DDPM_HOT void offer(std::uint32_t key, std::uint64_t w = 1) noexcept;

  /// The k heaviest monitored keys, sorted by count descending (key
  /// ascending on ties — deterministic output for reports).
  std::vector<Item> top(std::size_t k) const;

  /// The single heaviest monitored key without allocating (linear scan of
  /// the summary); a zero-count Item while the summary is empty.
  Item top1() const noexcept;

  /// Monitored count for `key`; 0 when the key is not monitored. An upper
  /// bound on the true count (true >= estimate - error of that entry).
  std::uint64_t estimate(std::uint32_t key) const noexcept;

  /// Smallest monitored count — the eviction threshold; also the maximum
  /// undercount of any UNmonitored key. 0 while the summary has room.
  std::uint64_t min_count() const noexcept;

  std::uint64_t total() const noexcept { return total_; }
  std::size_t size() const noexcept { return heap_.size(); }
  std::uint32_t capacity() const noexcept { return capacity_; }

  std::size_t memory_bytes() const noexcept {
    return heap_.capacity() * sizeof(SsSlot) +
           table_.size() * sizeof(SsIndexSlot);
  }

  void clear() noexcept;

 private:
  static constexpr std::uint32_t kArity = 4;

  DDPM_HOT std::uint32_t home(std::uint32_t key) const noexcept;
  DDPM_HOT std::int32_t find(std::uint32_t key) const noexcept;
  /// Inserts `key` into the probing table, returning the claimed slot.
  DDPM_HOT std::uint32_t claim(std::uint32_t key) noexcept;
  /// Removes table slot `t` with backward-shift compaction.
  DDPM_HOT void vacate(std::uint32_t t) noexcept;
  /// Restores heap order downward/upward from `pos` after a count change.
  DDPM_HOT void sink(std::uint32_t pos) noexcept;
  DDPM_HOT void swim(std::uint32_t pos) noexcept;
  DDPM_HOT void swap_slots(std::uint32_t a, std::uint32_t b) noexcept;

  std::uint32_t capacity_;
  std::uint32_t table_mask_;  // table size - 1 (power of two)
  std::uint64_t seed_;
  std::uint64_t total_ = 0;
  std::vector<SsSlot> heap_;        // min-heap on count
  std::vector<SsIndexSlot> table_;  // linear probing, backward-shift delete
};

}  // namespace ddpm::stream
