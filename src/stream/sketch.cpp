#include "stream/sketch.hpp"

#include <algorithm>
#include <cmath>

#include "core/check.hpp"

namespace ddpm::stream {

CountMinSketch::CountMinSketch(std::uint32_t width, std::uint32_t depth,
                               std::uint64_t seed, bool conservative)
    : width_(width),
      depth_(std::min(depth, kMaxDepth)),
      conservative_(conservative) {
  DDPM_CHECK(width_ > 0, "CountMinSketch: width must be positive");
  DDPM_CHECK(depth_ > 0, "CountMinSketch: depth must be positive");
  seeds_.reserve(depth_);
  for (std::uint32_t row = 0; row < depth_; ++row) {
    seeds_.push_back(mix64(seed + 0x9e37'79b9'7f4a'7c15ULL * (row + 1)));
  }
  counts_.assign(std::size_t(width_) * depth_, 0);
}

DDPM_HOT std::uint64_t CountMinSketch::update(std::uint32_t key,
                                              std::uint64_t w) noexcept {
  items_ += w;
  std::uint32_t cols[kMaxDepth];
  std::uint64_t est = ~0ULL;
  std::size_t base = 0;
  for (std::uint32_t row = 0; row < depth_; ++row, base += width_) {
    const std::uint32_t col = range_reduce(mix64(seeds_[row] ^ key), width_);
    cols[row] = col;
    const std::uint64_t c = counts_[base + col];
    if (c < est) est = c;
  }
  const std::uint64_t target = est + w;
  base = 0;
  for (std::uint32_t row = 0; row < depth_; ++row, base += width_) {
    std::uint64_t& c = counts_[base + cols[row]];
    if (conservative_) {
      // Conservative update: only lift rows below the new estimate.
      if (c < target) c = target;
    } else {
      c += w;
    }
  }
  return target;
}

DDPM_HOT std::uint64_t CountMinSketch::estimate(
    std::uint32_t key) const noexcept {
  std::uint64_t est = ~0ULL;
  std::size_t base = 0;
  for (std::uint32_t row = 0; row < depth_; ++row, base += width_) {
    const std::uint64_t c =
        counts_[base + range_reduce(mix64(seeds_[row] ^ key), width_)];
    if (c < est) est = c;
  }
  return est;
}

double CountMinSketch::epsilon() const noexcept {
  return std::exp(1.0) / double(width_);
}

double CountMinSketch::delta() const noexcept {
  return std::exp(-double(depth_));
}

void CountMinSketch::clear() noexcept {
  std::fill(counts_.begin(), counts_.end(), 0);
  items_ = 0;
}

}  // namespace ddpm::stream
