// Sketch-backed detect::Detector implementations + the detector factory.
//
// These adapters put the bounded-memory primitives (sketch.hpp,
// space_saving.hpp, entropy_window.hpp, cusum.hpp) behind the existing
// victim-side Detector interface so any SIS scenario can select them by
// name. Unlike the exact detectors in src/detect, every one of these holds
// O(sketch) state regardless of how many distinct sources the attacker
// spoofs — the property that matters at million-source scale (see
// docs/STREAMING.md for the bounds).
//
// The virtual observe() wrappers are intentionally NOT DDPM_HOT — the hot
// annotations live on the inner sketch primitives they call, which the
// analyzer audits via the call closure.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "detect/detector.hpp"
#include "stream/cusum.hpp"
#include "stream/entropy_window.hpp"
#include "stream/space_saving.hpp"

namespace ddpm::stream {

/// Shared knobs for the sketch detectors (and the exact detectors the
/// factory can also build). Defaults suit the scenario-matrix clusters;
/// the flow analyzer carries its own config (flow_analyzer.hpp).
struct SketchDetectorTuning {
  // sketch-entropy: window of claimed sources over hashed buckets; alarm
  // when the windowed entropy leaves [low, high] bits.
  std::uint32_t entropy_window = 4096;
  std::uint32_t entropy_buckets = 2048;
  double entropy_low_bits = 1.0;
  double entropy_high_bits = 10.0;

  // heavy-hitter: alarm when one claimed source PROVABLY owns more than
  // `hh_share` of the stream (Space-Saving lower bound), after at least
  // `hh_min_total` observations.
  std::uint32_t hh_capacity = 64;
  double hh_share = 0.5;
  std::uint64_t hh_min_total = 512;

  // sketch-cusum: per-window top-source counts folded into a CUSUM.
  netsim::SimTime cusum_window = 10'000;
  double cusum_mean = 8.0;
  double cusum_slack = 4.0;
  double cusum_threshold = 64.0;

  // syn-half-open passthrough (factory convenience).
  std::size_t syn_max_half_open = 64;
  netsim::SimTime syn_timeout = 20'000;

  std::uint64_t seed = 0x5eed'0000'0001ULL;
};

/// detect::EntropyDetector's sublinear replacement: same alarm rule, but
/// the window lives in a fixed ring + hashed buckets instead of a
/// per-source map, so memory is independent of distinct-source count.
class SketchEntropyDetector final : public detect::Detector {
 public:
  explicit SketchEntropyDetector(const SketchDetectorTuning& tuning);

  std::string name() const override { return "sketch-entropy"; }
  void observe(const pkt::Packet& packet, netsim::SimTime now) override;
  bool alarmed() const noexcept override { return alarm_time_.has_value(); }
  void reset() override;
  std::size_t memory_bytes() const noexcept override;

  double current_entropy() const noexcept { return sketch_.entropy_bits(); }

 private:
  double low_, high_;
  SlidingEntropySketch sketch_;
};

/// Alarms when a single claimed source provably dominates the inbound
/// stream — the non-spoofed volumetric flood signature. Uses the
/// Space-Saving LOWER bound (count - error), so an alarm is never a
/// sketch artifact.
class HeavyHitterDetector final : public detect::Detector {
 public:
  explicit HeavyHitterDetector(const SketchDetectorTuning& tuning);

  std::string name() const override { return "heavy-hitter"; }
  void observe(const pkt::Packet& packet, netsim::SimTime now) override;
  bool alarmed() const noexcept override { return alarm_time_.has_value(); }
  void reset() override;
  std::size_t memory_bytes() const noexcept override;

  /// The dominating source at alarm time (or the current leader).
  SpaceSavingTopK::Item top_source() const noexcept { return summary_.top1(); }

 private:
  double share_;
  std::uint64_t min_total_;
  SpaceSavingTopK summary_;
};

/// CUSUM over per-window top-source counts: catches pulsing floods whose
/// bursts duck under rate thresholds but whose busiest source ratchets
/// the statistic across windows.
class SketchCusumDetector final : public detect::Detector {
 public:
  explicit SketchCusumDetector(const SketchDetectorTuning& tuning);

  std::string name() const override { return "sketch-cusum"; }
  void observe(const pkt::Packet& packet, netsim::SimTime now) override;
  bool alarmed() const noexcept override { return alarm_time_.has_value(); }
  void reset() override;
  std::size_t memory_bytes() const noexcept override;

  double statistic() const noexcept { return cusum_.statistic(); }

 private:
  /// Folds completed windows up to `now` into the statistic.
  void advance(netsim::SimTime now);

  netsim::SimTime window_;
  std::uint64_t bucket_ = 0;  // index of the open window
  RateCusum cusum_;
  SpaceSavingTopK summary_;  // cleared at every window boundary
};

/// Builds a victim-side detector by name:
///   "rate-threshold"  detect::RateThresholdDetector(rate_threshold, half_life)
///   "entropy"         detect::EntropyDetector (exact, capped window)
///   "cusum"           detect::CusumDetector
///   "syn-half-open"   detect::SynHalfOpenDetector
///   "sketch-entropy"  SketchEntropyDetector
///   "heavy-hitter"    HeavyHitterDetector
///   "sketch-cusum"    SketchCusumDetector
/// Throws std::invalid_argument for anything else.
std::unique_ptr<detect::Detector> make_detector(
    const std::string& name, double rate_threshold, double half_life,
    const SketchDetectorTuning& tuning = {});

}  // namespace ddpm::stream
