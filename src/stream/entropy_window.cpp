#include "stream/entropy_window.hpp"

#include <algorithm>
#include <cmath>

#include "core/check.hpp"
#include "stream/sketch.hpp"

namespace ddpm::stream {

namespace {

std::uint32_t next_pow2(std::uint32_t v) noexcept {
  std::uint32_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

SlidingEntropySketch::SlidingEntropySketch(std::uint32_t window,
                                           std::uint32_t buckets,
                                           std::uint64_t seed)
    : seed_(seed) {
  DDPM_CHECK(window > 0, "SlidingEntropySketch: window must be positive");
  DDPM_CHECK(buckets > 0, "SlidingEntropySketch: buckets must be positive");
  window_ = next_pow2(window);
  ring_mask_ = window_ - 1;
  const std::uint32_t bucket_count = next_pow2(buckets);
  bucket_mask_ = bucket_count - 1;
  ring_.assign(window_, 0);
  counts_.assign(bucket_count, 0);
  // Hot updates fetch log2(c) from this table; std::log2 stays cold.
  log2_table_.resize(std::size_t(window_) + 1);
  log2_table_[0] = 0.0;  // by convention 0 * log2(0) = 0
  for (std::size_t c = 1; c < log2_table_.size(); ++c) {
    log2_table_[c] = std::log2(double(c));
  }
}

DDPM_HOT double SlidingEntropySketch::clog2c(std::uint32_t c) const noexcept {
  return double(c) * log2_table_[c];
}

DDPM_HOT void SlidingEntropySketch::observe_key(std::uint32_t key) noexcept {
  if (filled_ == window_) {
    // Evict the key falling out of the window from its bucket.
    const std::uint32_t old_bucket = ring_[head_];
    std::uint32_t& old_c = counts_[old_bucket];
    clogc_sum_ -= clog2c(old_c);
    --old_c;
    clogc_sum_ += clog2c(old_c);
  } else {
    ++filled_;
  }
  const auto bucket =
      std::uint32_t(mix64(seed_ ^ key)) & bucket_mask_;
  std::uint32_t& c = counts_[bucket];
  clogc_sum_ -= clog2c(c);
  ++c;
  clogc_sum_ += clog2c(c);
  ring_[head_] = bucket;
  head_ = (head_ + 1) & ring_mask_;
}

double SlidingEntropySketch::entropy_bits() const noexcept {
  if (filled_ == 0) return 0.0;
  const double n = double(filled_);
  const double h = std::log2(n) - clogc_sum_ / n;
  // Clamp the tiny negative residue float cancellation can leave behind.
  return h < 0.0 ? 0.0 : h;
}

void SlidingEntropySketch::clear() noexcept {
  std::fill(ring_.begin(), ring_.end(), 0);
  std::fill(counts_.begin(), counts_.end(), 0);
  head_ = 0;
  filled_ = 0;
  clogc_sum_ = 0.0;
}

}  // namespace ddpm::stream
