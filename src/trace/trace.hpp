// Packet trace capture and offline replay.
//
// Operationally, source identification is a forensic activity: the victim
// records what it received and analysts re-run identification later,
// possibly with a different scheme's decoder. This module provides that
// workflow: a CSV trace writer that hooks any delivery stream, a reader,
// and replay of a trace into any victim-side SourceIdentifier.
//
// The format is line-oriented CSV with a fixed header; all fields are
// numeric, so no quoting is needed. `true_source` is recorded so replays
// can be SCORED — a field an analyst would not have, clearly marked.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "marking/scheme.hpp"
#include "packet/packet.hpp"

namespace ddpm::trace {

struct TraceRecord {
  std::uint64_t time = 0;           // delivery time (ticks)
  topo::NodeId delivered_at = 0;    // consuming node
  std::uint32_t claimed_source = 0; // header source address (spoofable)
  std::uint32_t dest_address = 0;
  std::uint16_t marking_field = 0;
  std::uint8_t protocol = 0;
  std::uint8_t tcp_flags = 0;
  std::uint8_t traffic_class = 0;   // ground truth, for scoring only
  std::uint32_t hops = 0;
  std::uint64_t flow = 0;
  topo::NodeId true_source = 0;     // ground truth, for scoring only

  static TraceRecord from_packet(const pkt::Packet& packet,
                                 topo::NodeId at);
};

/// Streams records to CSV. The header row is written on construction.
class TraceWriter {
 public:
  explicit TraceWriter(std::ostream& out);

  void record(const pkt::Packet& packet, topo::NodeId at);
  void record(const TraceRecord& record);
  std::uint64_t records_written() const noexcept { return count_; }

  static const char* header();

 private:
  std::ostream& out_;
  std::uint64_t count_ = 0;
};

/// Parses a full CSV trace. Throws std::invalid_argument on a malformed
/// header or row.
std::vector<TraceRecord> read_trace(std::istream& in);

/// Replay outcome of one trace through an identifier.
struct ReplayResult {
  std::uint64_t packets = 0;
  std::uint64_t identified = 0;        // single-candidate verdicts
  std::uint64_t correct = 0;           // ... that matched true_source
  std::uint64_t misattributed = 0;     // ... that did not
  std::vector<topo::NodeId> named;     // unique single-candidate names
};

/// Feeds every record delivered at `victim` into the identifier, in trace
/// order, and scores against the recorded ground truth.
ReplayResult replay(const std::vector<TraceRecord>& records,
                    mark::SourceIdentifier& identifier, topo::NodeId victim);

}  // namespace ddpm::trace
