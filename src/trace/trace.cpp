#include "trace/trace.hpp"

#include <algorithm>
#include <charconv>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace ddpm::trace {

TraceRecord TraceRecord::from_packet(const pkt::Packet& packet,
                                     topo::NodeId at) {
  TraceRecord r;
  r.time = packet.delivered_at;
  r.delivered_at = at;
  r.claimed_source = packet.header.source();
  r.dest_address = packet.header.destination();
  r.marking_field = packet.marking_field();
  r.protocol = std::uint8_t(packet.header.protocol());
  r.tcp_flags = packet.tcp_flags;
  r.traffic_class = std::uint8_t(packet.traffic);
  r.hops = packet.hops;
  r.flow = packet.flow;
  r.true_source = packet.true_source;
  return r;
}

const char* TraceWriter::header() {
  return "time,delivered_at,claimed_source,dest_address,marking_field,"
         "protocol,tcp_flags,traffic_class,hops,flow,true_source";
}

TraceWriter::TraceWriter(std::ostream& out) : out_(out) {
  out_ << header() << '\n';
}

void TraceWriter::record(const pkt::Packet& packet, topo::NodeId at) {
  record(TraceRecord::from_packet(packet, at));
}

void TraceWriter::record(const TraceRecord& r) {
  out_ << r.time << ',' << r.delivered_at << ',' << r.claimed_source << ','
       << r.dest_address << ',' << r.marking_field << ','
       << unsigned(r.protocol) << ',' << unsigned(r.tcp_flags) << ','
       << unsigned(r.traffic_class) << ',' << r.hops << ',' << r.flow << ','
       << r.true_source << '\n';
  ++count_;
}

namespace {

std::vector<std::uint64_t> parse_row(const std::string& line) {
  std::vector<std::uint64_t> fields;
  std::size_t start = 0;
  while (start <= line.size()) {
    const std::size_t comma = line.find(',', start);
    const std::size_t end = comma == std::string::npos ? line.size() : comma;
    std::uint64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(line.data() + start, line.data() + end, value);
    if (ec != std::errc() || ptr != line.data() + end) {
      throw std::invalid_argument("trace: malformed field in row: " + line);
    }
    fields.push_back(value);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return fields;
}

}  // namespace

std::vector<TraceRecord> read_trace(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != TraceWriter::header()) {
    throw std::invalid_argument("trace: missing or unknown header");
  }
  std::vector<TraceRecord> records;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto f = parse_row(line);
    if (f.size() != 11) {
      throw std::invalid_argument("trace: wrong field count in row: " + line);
    }
    TraceRecord r;
    r.time = f[0];
    r.delivered_at = topo::NodeId(f[1]);
    r.claimed_source = std::uint32_t(f[2]);
    r.dest_address = std::uint32_t(f[3]);
    r.marking_field = std::uint16_t(f[4]);
    r.protocol = std::uint8_t(f[5]);
    r.tcp_flags = std::uint8_t(f[6]);
    r.traffic_class = std::uint8_t(f[7]);
    r.hops = std::uint32_t(f[8]);
    r.flow = f[9];
    r.true_source = topo::NodeId(f[10]);
    records.push_back(r);
  }
  return records;
}

ReplayResult replay(const std::vector<TraceRecord>& records,
                    mark::SourceIdentifier& identifier, topo::NodeId victim) {
  ReplayResult result;
  for (const TraceRecord& r : records) {
    if (r.delivered_at != victim) continue;
    ++result.packets;
    // Rebuild the packet view the identifier is entitled to see.
    pkt::Packet p;
    p.header = pkt::IpHeader(r.claimed_source, r.dest_address,
                             pkt::IpProto(r.protocol), 0);
    p.set_marking_field(r.marking_field);
    p.tcp_flags = r.tcp_flags;
    p.flow = r.flow;
    p.hops = r.hops;
    const auto candidates = identifier.observe(p, victim);
    if (candidates.size() != 1) continue;
    ++result.identified;
    if (candidates.front() == r.true_source) {
      ++result.correct;
    } else {
      ++result.misattributed;
    }
    if (std::find(result.named.begin(), result.named.end(),
                  candidates.front()) == result.named.end()) {
      result.named.push_back(candidates.front());
    }
  }
  return result;
}

}  // namespace ddpm::trace
