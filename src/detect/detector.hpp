// Victim-side DDoS detection (paper §6.1).
//
// The paper assumes "there exists an efficient DDoS detection method" and
// discusses why detection is hard inside a cluster. We provide the two
// standard lightweight detectors so the end-to-end pipeline
// (detect -> identify -> block) is runnable:
//   * RateThresholdDetector — EWMA inbound packet rate vs. threshold, the
//     classic volumetric-flood alarm;
//   * EntropyDetector — Shannon entropy of claimed source addresses over a
//     sliding window; random spoofing pushes entropy far above the benign
//     baseline, single-source floods push it far below;
//   * SynHalfOpenDetector — count of TCP connections stuck half-open,
//     modelling the SYN-flood symptom the paper describes in §1.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>

#include "netsim/event_queue.hpp"
#include "netsim/stats.hpp"
#include "packet/packet.hpp"

namespace ddpm::detect {

/// Common interface: feed every delivered packet; `alarmed` latches once
/// triggered until reset().
class Detector {
 public:
  virtual ~Detector() = default;
  virtual std::string name() const = 0;
  virtual void observe(const pkt::Packet& packet, netsim::SimTime now) = 0;
  virtual bool alarmed() const noexcept = 0;
  virtual void reset() = 0;

  /// Approximate heap footprint of the detector's state, for the
  /// memory-vs-scale telemetry. 0 = "constant and negligible".
  virtual std::size_t memory_bytes() const noexcept { return 0; }

  /// Time of the first alarm, if any.
  std::optional<netsim::SimTime> alarm_time() const noexcept { return alarm_time_; }

 protected:
  // C.67: a Detector sliced through the base handle would shed the derived
  // detector's window state and latch spuriously.
  Detector() = default;
  Detector(const Detector&) = default;
  Detector& operator=(const Detector&) = default;

  void latch(netsim::SimTime now) {
    if (!alarm_time_) alarm_time_ = now;
  }
  std::optional<netsim::SimTime> alarm_time_;
};

class RateThresholdDetector final : public Detector {
 public:
  /// Alarms when the EWMA inbound rate exceeds `threshold` packets/tick.
  RateThresholdDetector(double threshold, double half_life)
      : threshold_(threshold), half_life_(half_life), rate_(half_life) {}

  std::string name() const override { return "rate-threshold"; }
  void observe(const pkt::Packet& packet, netsim::SimTime now) override;
  bool alarmed() const noexcept override { return alarm_time_.has_value(); }
  void reset() override;

  double current_rate(netsim::SimTime now) const { return rate_.rate(now); }

 private:
  double threshold_;
  double half_life_;
  netsim::EwmaRate rate_;
};

class EntropyDetector final : public Detector {
 public:
  /// The window is clamped to this many packets. The cap bounds the
  /// per-source map: this detector keeps an EXACT count per distinct
  /// source inside the window, so without it a spoofed flood (every
  /// packet a fresh source) would grow `counts_` without limit — the
  /// attacker controls the detector's memory. At million-source scale use
  /// stream::SketchEntropyDetector, whose footprint is fixed by
  /// construction (hashed buckets, not per-source entries).
  static constexpr std::size_t kMaxWindow = std::size_t(1) << 16;

  /// Alarms when the source-address entropy over the last `window` packets
  /// leaves [low_bits, high_bits]. The window must fill once first.
  EntropyDetector(std::size_t window, double low_bits, double high_bits)
      : window_(window < kMaxWindow ? window : kMaxWindow),
        low_(low_bits),
        high_(high_bits) {}

  std::string name() const override { return "source-entropy"; }
  void observe(const pkt::Packet& packet, netsim::SimTime now) override;
  bool alarmed() const noexcept override { return alarm_time_.has_value(); }
  void reset() override;
  std::size_t memory_bytes() const noexcept override;

  double current_entropy() const;
  std::size_t window() const noexcept { return window_; }

 private:
  std::size_t window_;
  double low_, high_;
  std::deque<std::uint32_t> recent_;
  std::unordered_map<std::uint32_t, std::uint64_t> counts_;
};

/// CUSUM change-point detector over fixed arrival-count windows.
///
/// The classic answer to pulsing (shrew) floods that evade EWMA smoothing
/// (ablation A7b): the statistic S = max(0, S + count - mean - slack)
/// RATCHETS across bursts instead of decaying between them, so a 10%-duty
/// pulse train that never lifts the EWMA above threshold still drives S
/// over h after a few periods.
class CusumDetector final : public Detector {
 public:
  /// `window` ticks per bucket; `benign_mean` the expected benign arrivals
  /// per bucket; `slack` the per-bucket drift allowance (k); `threshold`
  /// the alarm level (h), in arrival units.
  CusumDetector(netsim::SimTime window, double benign_mean, double slack,
                double threshold)
      : window_(window),
        benign_mean_(benign_mean),
        slack_(slack),
        threshold_(threshold) {}

  std::string name() const override { return "cusum"; }
  void observe(const pkt::Packet& packet, netsim::SimTime now) override;
  bool alarmed() const noexcept override { return alarm_time_.has_value(); }
  void reset() override;

  double statistic() const noexcept { return s_; }

 private:
  /// Folds completed windows up to `now` into the statistic.
  void advance(netsim::SimTime now);

  netsim::SimTime window_;
  double benign_mean_;
  double slack_;
  double threshold_;
  double s_ = 0.0;
  std::uint64_t bucket_ = 0;      // index of the open window
  std::uint64_t in_bucket_ = 0;   // arrivals in the open window
};

class SynHalfOpenDetector final : public Detector {
 public:
  /// A SYN opens a half-open slot that closes after `handshake_timeout` if
  /// no matching completion arrives. Attack SYNs (spoofed) never complete.
  /// Alarms when more than `max_half_open` slots are pending.
  SynHalfOpenDetector(std::size_t max_half_open,
                      netsim::SimTime handshake_timeout)
      : max_half_open_(max_half_open), timeout_(handshake_timeout) {}

  std::string name() const override { return "syn-half-open"; }
  void observe(const pkt::Packet& packet, netsim::SimTime now) override;
  bool alarmed() const noexcept override { return alarm_time_.has_value(); }
  void reset() override;

  std::size_t half_open(netsim::SimTime now) const;

 private:
  void expire(netsim::SimTime now) const;

  std::size_t max_half_open_;
  netsim::SimTime timeout_;
  mutable std::deque<netsim::SimTime> pending_;  // open times, FIFO
};

}  // namespace ddpm::detect
