// Blocking filters — the mitigation step (paper §2: "Once a source or a
// path is identified, we can protect our system by blocking packets from
// that source or that path").
//
// Three rule kinds, one per identification scheme:
//   * by true source node — installable at the offender's own switch once
//     DDPM names it, cutting the attack at its origin;
//   * by DPM signature — the victim drops everything whose Marking Field
//     matches a known-bad signature ("without additional computing
//     complexity", §2), at the cost of collateral damage on colliding
//     signatures;
//   * by claimed source address — the naive filter spoofing defeats,
//     included as the baseline.
#pragma once

#include <cstdint>
#include <unordered_set>

#include "packet/packet.hpp"
#include "topology/topology.hpp"

namespace ddpm::detect {

class BlockingFilter {
 public:
  /// Block packets injected at this node (requires source-switch
  /// enforcement; DDPM makes the node identifiable).
  void block_source_node(topo::NodeId node) { nodes_.insert(node); }

  /// Block packets whose final Marking Field equals this DPM signature
  /// (victim-side enforcement).
  void block_signature(std::uint16_t signature) { signatures_.insert(signature); }

  /// Block packets claiming this source address (victim-side; defeated by
  /// spoofing).
  void block_address(pkt::Ipv4Address address) { addresses_.insert(address); }

  /// Source-switch check: is traffic injected by `injector` blocked?
  bool blocks_injection(topo::NodeId injector) const {
    return nodes_.count(injector) != 0;
  }

  /// Victim-side check on a delivered packet.
  bool blocks_delivery(const pkt::Packet& packet) const {
    return signatures_.count(packet.marking_field()) != 0 ||
           addresses_.count(packet.header.source()) != 0;
  }

  void clear() {
    nodes_.clear();
    signatures_.clear();
    addresses_.clear();
  }

  std::size_t rule_count() const noexcept {
    return nodes_.size() + signatures_.size() + addresses_.size();
  }

 private:
  std::unordered_set<topo::NodeId> nodes_;
  std::unordered_set<std::uint16_t> signatures_;
  std::unordered_set<pkt::Ipv4Address> addresses_;
};

}  // namespace ddpm::detect
