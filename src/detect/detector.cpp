#include "detect/detector.hpp"

#include <algorithm>

namespace ddpm::detect {

void RateThresholdDetector::observe(const pkt::Packet&, netsim::SimTime now) {
  rate_.observe(now);
  if (rate_.rate(now) > threshold_) latch(now);
}

void RateThresholdDetector::reset() {
  alarm_time_.reset();
  rate_ = netsim::EwmaRate(half_life_);
}

void EntropyDetector::observe(const pkt::Packet& packet, netsim::SimTime now) {
  const std::uint32_t src = packet.header.source();
  recent_.push_back(src);
  ++counts_[src];
  if (recent_.size() > window_) {
    const std::uint32_t old = recent_.front();
    recent_.pop_front();
    auto it = counts_.find(old);
    if (--it->second == 0) counts_.erase(it);
  }
  if (recent_.size() < window_) return;
  const double h = netsim::shannon_entropy(counts_);
  if (h < low_ || h > high_) latch(now);
}

void EntropyDetector::reset() {
  alarm_time_.reset();
  recent_.clear();
  counts_.clear();
}

double EntropyDetector::current_entropy() const {
  return netsim::shannon_entropy(counts_);
}

std::size_t EntropyDetector::memory_bytes() const noexcept {
  // Deque ring + map nodes (key, count, hash link) — approximate, but the
  // point is the trend: this grows with DISTINCT sources in the window,
  // capped only by kMaxWindow. stream::SketchEntropyDetector's equivalent
  // is constant.
  return recent_.size() * sizeof(std::uint32_t) +
         counts_.size() *
             (sizeof(std::uint32_t) + sizeof(std::uint64_t) + 2 * sizeof(void*));
}

void CusumDetector::advance(netsim::SimTime now) {
  const std::uint64_t current = now / window_;
  while (bucket_ < current) {
    // Close the open window, fold it, and account the empty ones between.
    s_ = std::max(0.0, s_ + double(in_bucket_) - benign_mean_ - slack_);
    if (s_ > threshold_) latch((bucket_ + 1) * window_);
    in_bucket_ = 0;
    ++bucket_;
  }
}

void CusumDetector::observe(const pkt::Packet&, netsim::SimTime now) {
  advance(now);
  ++in_bucket_;
  // Intra-window early alarm: the open bucket alone may already prove it.
  if (s_ + double(in_bucket_) - benign_mean_ - slack_ > threshold_) {
    latch(now);
  }
}

void CusumDetector::reset() {
  alarm_time_.reset();
  s_ = 0.0;
  bucket_ = 0;
  in_bucket_ = 0;
}

void SynHalfOpenDetector::expire(netsim::SimTime now) const {
  while (!pending_.empty() && pending_.front() + timeout_ <= now) {
    pending_.pop_front();
  }
}

void SynHalfOpenDetector::observe(const pkt::Packet& packet,
                                  netsim::SimTime now) {
  if (packet.header.protocol() != pkt::IpProto::kTcp) return;
  expire(now);
  pending_.push_back(now);
  if (pending_.size() > max_half_open_) latch(now);
}

void SynHalfOpenDetector::reset() {
  alarm_time_.reset();
  pending_.clear();
}

std::size_t SynHalfOpenDetector::half_open(netsim::SimTime now) const {
  expire(now);
  return pending_.size();
}

}  // namespace ddpm::detect
