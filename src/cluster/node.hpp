// Compute-node model: injects benign traffic, executes attack roles
// (zombie flooder or worm scanner/victim of infection), and receives
// delivered packets.
//
// Benign injections form a Poisson process per node over the configured
// destination pattern. A zombie additionally runs the attack process from
// AttackConfig::start_time to stop_time. Worm infection follows the paper's
// second-generation description (§1): a scan hitting a clean node infects
// it after an incubation delay, after which it scans too — traffic grows
// with the infected population.
#pragma once

#include <functional>
#include <optional>

#include "attack/attacker.hpp"
#include "attack/traffic.hpp"
#include "cluster/metrics.hpp"
#include "netsim/rng.hpp"
#include "netsim/simulator.hpp"
#include "packet/address_map.hpp"

namespace ddpm::cluster {

using topo::NodeId;

class ComputeNode {
 public:
  struct Env {
    netsim::Simulator* sim = nullptr;
    const topo::Topology* topo = nullptr;
    const pkt::AddressMap* addresses = nullptr;
    const attack::TrafficPattern* pattern = nullptr;
    Metrics* metrics = nullptr;
    /// Injects into the local switch; returns false if blocked at source.
    std::function<bool(pkt::Packet&&, NodeId at)> inject;
    /// Notifies the network that this node consumed a packet.
    std::function<void(const pkt::Packet&, NodeId at)> delivered;
    /// Marks a sibling node infected (worm propagation).
    std::function<void(NodeId node, netsim::SimTime when)> infect_peer;

    double benign_rate = 0.0;  // packets per tick (0 disables)
    std::uint32_t benign_payload = 256;
    std::uint8_t initial_ttl = 64;
    bool record_traces = false;
    const attack::AttackConfig* attack = nullptr;  // may be null
  };

  ComputeNode(NodeId id, Env* env, netsim::Rng rng);

  /// Schedules this node's traffic processes. Call once before running.
  void start();

  /// Delivery from the local switch.
  void receive(pkt::Packet&& packet);

  /// Worm state transitions (driven by the network).
  bool infected() const noexcept { return infected_; }
  void infect();

  NodeId id() const noexcept { return id_; }
  std::uint64_t packets_received() const noexcept { return received_; }

 private:
  bool is_zombie() const;
  void schedule_benign();
  void schedule_attack();
  void inject_benign();
  void inject_attack();
  pkt::Packet make_packet(NodeId dest, pkt::IpProto proto,
                          pkt::TrafficClass traffic, std::uint32_t payload);

  NodeId id_;
  Env* env_;
  netsim::Rng rng_;
  bool infected_ = false;
  std::uint64_t received_ = 0;
  std::uint64_t next_flow_ = 0;
};

}  // namespace ddpm::cluster
