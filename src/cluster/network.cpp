#include "cluster/network.hpp"

#include <algorithm>
#include <stdexcept>

#include "marking/factory.hpp"

namespace ddpm::cluster {

ClusterNetwork::ClusterNetwork(const ClusterConfig& config)
    : config_(config),
      topo_(topo::make_topology(config.topology)),
      addresses_(topo_->num_nodes()),
      router_(route::make_router(config.router, *topo_)),
      scheme_(mark::make_scheme(config.scheme, *topo_, config.ppm_probability,
                                config.seed ^ 0x5eedULL)),
      pattern_(attack::make_pattern(config.pattern, *topo_)),
      registry_(config.telemetry),
      link_state_(*this) {
  if (scheme_ != nullptr) scheme_->bind_telemetry(&registry_);
  switch_env_.sim = &sim_;
  switch_env_.topo = topo_.get();
  switch_env_.router = router_.get();
  switch_env_.scheme = scheme_.get();
  switch_env_.links = &link_state_;
  switch_env_.metrics = &metrics_;
  switch_env_.registry = &registry_;
  switch_env_.deliver = [this](pkt::Packet&& p, topo::NodeId at) {
    deliver_local(std::move(p), at);
  };
  switch_env_.arrive = [this](pkt::Packet&& p, topo::NodeId from,
                              topo::NodeId to) {
    switches_[to].handle(std::move(p), *topo_->port_to(to, from));
  };
  switch_env_.link_bandwidth = config.link_bandwidth;
  switch_env_.link_latency = config.link_latency;
  switch_env_.queue_capacity = config.queue_capacity;
  port_labels_ = telemetry_port_labels(*topo_);
  switch_env_.port_labels = &port_labels_;

  node_env_.sim = &sim_;
  node_env_.topo = topo_.get();
  node_env_.addresses = &addresses_;
  node_env_.pattern = pattern_.get();
  node_env_.metrics = &metrics_;
  node_env_.inject = [this](pkt::Packet&& p, topo::NodeId at) {
    return inject(std::move(p), at);
  };
  node_env_.delivered = [this](const pkt::Packet& p, topo::NodeId at) {
    if (hook_) hook_(p, at);
  };
  node_env_.infect_peer = [this](topo::NodeId node, netsim::SimTime when) {
    sim_.schedule_at(when, [this, node]() { nodes_[node].infect(); });
  };
  node_env_.benign_rate = config.benign_rate_per_node;
  node_env_.benign_payload = config.benign_payload;
  node_env_.initial_ttl = config.initial_ttl;
  node_env_.record_traces = config.record_traces;
  node_env_.attack = &attack_;

  // Steady state keeps roughly one pending event per busy output port plus
  // a couple of timers per node; size the queue once so the warm-up ramp
  // does not reallocate it.
  const auto nodes = std::size_t(topo_->num_nodes());
  sim_.reserve(nodes * (2 * std::size_t(topo_->num_ports()) + 4));

  // Stream hierarchy: seed -> long_jump per replication -> jump per entity.
  // Every entity draws from its own 2^128-draw block; see ClusterConfig.
  netsim::Rng master(config.seed);
  for (std::uint64_t s = 0; s < config.rng_stream; ++s) master.long_jump();
  switches_.reserve(nodes);
  nodes_.reserve(nodes);
  for (topo::NodeId id = 0; id < topo_->num_nodes(); ++id) {
    switches_.emplace_back(id, &switch_env_, master.jump_stream());
    nodes_.emplace_back(id, &node_env_, master.jump_stream());
  }
}

void ClusterNetwork::set_attack(attack::AttackConfig attack) {
  if (started_) {
    throw std::logic_error("ClusterNetwork::set_attack: already started");
  }
  std::sort(attack.zombies.begin(), attack.zombies.end());
  attack_ = std::move(attack);
}

void ClusterNetwork::start() {
  if (started_) throw std::logic_error("ClusterNetwork::start: called twice");
  started_ = true;
  for (ComputeNode& node : nodes_) node.start();
}

bool ClusterNetwork::inject(pkt::Packet&& packet, topo::NodeId at) {
  if (filter_.blocks_injection(at)) {
    ++metrics_.blocked_at_source;
    return false;
  }
  if (config_.ingress_filtering &&
      packet.header.source() != addresses_.address_of(at)) {
    ++metrics_.dropped_spoofed_ingress;
    return false;
  }
  packet.id = next_packet_id_++;
  switches_[at].inject(std::move(packet));
  return true;
}

void ClusterNetwork::deliver_local(pkt::Packet&& packet, topo::NodeId at) {
  if (filter_.blocks_delivery(packet)) {
    ++metrics_.filtered_at_victim;
    return;
  }
  nodes_[at].receive(std::move(packet));
}

void ClusterNetwork::set_tracer(telemetry::Tracer* tracer) {
  switch_env_.tracer = tracer;
  sim_.attach_tracer(tracer);
}

telemetry::MetricsSnapshot ClusterNetwork::telemetry_snapshot() {
  // Kernel and network aggregates live outside the registry (the kernel so
  // its hot loop never touches telemetry slots; Metrics because it predates
  // the registry). Publish them as gauges at snapshot time: gauge values sum
  // across replication merges, exactly like the counters they mirror.
  registry_.gauge("sim.events_executed").set(double(sim_.events_executed()));
  registry_.gauge("sim.clamped_schedules").set(double(sim_.clamped_events()));
  registry_.gauge("sim.now_ticks").set(double(sim_.now()));
  registry_.gauge("sim.pending_events").set(double(sim_.pending_count()));
  registry_.gauge("net.injected_benign").set(double(metrics_.injected_benign));
  registry_.gauge("net.injected_attack").set(double(metrics_.injected_attack));
  registry_.gauge("net.delivered_benign").set(double(metrics_.delivered_benign));
  registry_.gauge("net.delivered_attack").set(double(metrics_.delivered_attack));
  registry_.gauge("net.blocked_at_source").set(double(metrics_.blocked_at_source));
  registry_.gauge("net.dropped_spoofed_ingress")
      .set(double(metrics_.dropped_spoofed_ingress));
  registry_.gauge("net.filtered_at_victim")
      .set(double(metrics_.filtered_at_victim));
  return registry_.snapshot();
}

std::size_t ClusterNetwork::infected_count() const {
  std::size_t count = 0;
  for (const ComputeNode& node : nodes_) count += node.infected();
  return count;
}

}  // namespace ddpm::cluster
