// ClusterNetwork: builds a complete simulated cluster — topology, one
// switch plus one compute node per index, a routing policy, a marking
// scheme, benign traffic, and optionally an attack — and runs it on the
// discrete-event kernel.
//
// Mitigation hooks are built in: the BlockingFilter is consulted at
// injection (source-switch rules, which DDPM identifications enable) and
// before local delivery (signature/address rules). Victim-side analysis
// (detectors, identifiers) attaches through the delivery hook.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "attack/attacker.hpp"
#include "attack/traffic.hpp"
#include "cluster/metrics.hpp"
#include "cluster/node.hpp"
#include "cluster/switch.hpp"
#include "detect/filter.hpp"
#include "marking/scheme.hpp"
#include "netsim/simulator.hpp"
#include "packet/address_map.hpp"
#include "routing/router.hpp"
#include "topology/factory.hpp"

namespace ddpm::cluster {

struct ClusterConfig {
  std::string topology = "mesh:8x8";
  std::string router = "adaptive";
  std::string scheme = "ddpm";  // "none" disables marking
  std::string pattern = "uniform";

  double benign_rate_per_node = 0.0005;  // packets per tick (0 disables)
  std::uint32_t benign_payload = 256;

  // With ticks read as nanoseconds these defaults model a 1 GB/s link with
  // 50 ns per-hop propagation.
  double link_bandwidth = 1.0;        // bytes per tick
  netsim::SimTime link_latency = 50;  // ticks
  std::size_t queue_capacity = 16;    // packets per output queue

  /// RFC 2267 ingress filtering at the source switch: drop any injection
  /// whose source address is not the attached node's own. Inside a cluster
  /// this check is complete and O(1) — the critical baseline the paper's
  /// §2 dismisses for the Internet ("in large networks it is impossible to
  /// have all the IP information") but which trivially holds here.
  bool ingress_filtering = false;

  std::uint8_t initial_ttl = 64;
  std::uint64_t seed = 42;

  /// Replication stream index. Replication k applies k long_jump()s
  /// (2^192 draws apart) to the master generator before dealing per-entity
  /// jump()-spaced streams, so replications of one seed are provably
  /// disjoint instead of relying on re-seeding. 0 = the seed's own block.
  std::uint64_t rng_stream = 0;
  bool record_traces = false;
  double ppm_probability = 0.04;

  /// Runtime telemetry gate: when false the metrics registry hands out
  /// inert handles, so probes cost one predicted-not-taken branch. The
  /// compile-time gate is the DDPM_TELEMETRY CMake option.
  bool telemetry = true;
};

class ClusterNetwork {
 public:
  explicit ClusterNetwork(const ClusterConfig& config);

  // Non-copyable, non-movable: switches/nodes hold pointers into us.
  ClusterNetwork(const ClusterNetwork&) = delete;
  ClusterNetwork& operator=(const ClusterNetwork&) = delete;

  /// Installs the attack. Must precede start().
  void set_attack(attack::AttackConfig attack);

  /// Observes every packet a compute node consumes (post-filter).
  using DeliveryHook = std::function<void(const pkt::Packet&, topo::NodeId)>;
  void set_delivery_hook(DeliveryHook hook) { hook_ = std::move(hook); }

  /// Schedules all node traffic processes. Call once.
  void start();

  /// Runs the event loop up to (and including) time `t`.
  void run_until(netsim::SimTime t) { sim_.run(t); }

  /// Manual injection at a node's switch (tests, replay). Returns false if
  /// the source is blocked.
  bool inject(pkt::Packet&& packet, topo::NodeId at);

  const topo::Topology& topology() const noexcept { return *topo_; }
  const route::Router& router() const noexcept { return *router_; }
  mark::MarkingScheme* scheme() noexcept { return scheme_.get(); }
  const pkt::AddressMap& addresses() const noexcept { return addresses_; }
  netsim::Simulator& sim() noexcept { return sim_; }
  Metrics& metrics() noexcept { return metrics_; }
  const Metrics& metrics() const noexcept { return metrics_; }
  telemetry::Registry& registry() noexcept { return registry_; }

  /// Routes trace events from the kernel and all switches to `tracer`
  /// (nullptr detaches). The tracer must outlive the network or be
  /// detached before destruction.
  void set_tracer(telemetry::Tracer* tracer);

  /// Publishes kernel/network aggregates into the registry and returns a
  /// sorted snapshot of every series. Safe to call repeatedly.
  telemetry::MetricsSnapshot telemetry_snapshot();
  detect::BlockingFilter& filter() noexcept { return filter_; }
  topo::LinkFailureSet& failures() noexcept { return failures_; }
  const ClusterConfig& config() const noexcept { return config_; }

  std::size_t queue_length(topo::NodeId node, topo::Port port) const {
    return switches_[node].queue_length(port);
  }
  bool node_infected(topo::NodeId node) const { return nodes_[node].infected(); }
  std::size_t infected_count() const;

 private:
  /// Live congestion view: output-queue occupancy + failure set.
  class QueueLinkState final : public route::LinkStateView {
   public:
    explicit QueueLinkState(const ClusterNetwork& net) : net_(net) {}
    bool link_usable(topo::NodeId node, topo::Port port) const override {
      const auto next = net_.topo_->neighbor(node, port);
      return next && !net_.failures_.is_failed(node, *next);
    }
    double congestion(topo::NodeId node, topo::Port port) const override {
      return double(net_.switches_[node].queue_length(port));
    }

   private:
    const ClusterNetwork& net_;
  };

  void deliver_local(pkt::Packet&& packet, topo::NodeId at);

  ClusterConfig config_;
  std::unique_ptr<topo::Topology> topo_;
  pkt::AddressMap addresses_;
  std::unique_ptr<route::Router> router_;
  std::unique_ptr<mark::MarkingScheme> scheme_;
  std::unique_ptr<attack::TrafficPattern> pattern_;
  topo::LinkFailureSet failures_;
  netsim::Simulator sim_;
  Metrics metrics_;
  /// Declared before switches_ so per-switch series registration in the
  /// Switch constructors happens against a live registry.
  telemetry::Registry registry_;
  detect::BlockingFilter filter_;
  attack::AttackConfig attack_;
  QueueLinkState link_state_;
  /// One label set shared by every switch through Env::port_labels.
  std::vector<std::string> port_labels_;
  Switch::Env switch_env_;
  ComputeNode::Env node_env_;
  std::vector<Switch> switches_;
  std::vector<ComputeNode> nodes_;
  DeliveryHook hook_;
  std::uint64_t next_packet_id_ = 1;
  bool started_ = false;
};

}  // namespace ddpm::cluster
