// Counters and statistics collected by a cluster simulation run.
#pragma once

#include <cstdint>
#include <string>

#include "netsim/quantile.hpp"
#include "netsim/stats.hpp"

namespace ddpm::cluster {

struct Metrics {
  // Injection side.
  std::uint64_t injected_benign = 0;
  std::uint64_t injected_attack = 0;
  /// Injections refused because the source node is blocked (mitigation).
  std::uint64_t blocked_at_source = 0;
  /// Injections dropped by ingress filtering: the header's source address
  /// did not match the injecting node (paper §2's RFC 2267, which IS
  /// complete inside a cluster — every switch knows its attached address).
  std::uint64_t dropped_spoofed_ingress = 0;

  // In-network losses.
  std::uint64_t dropped_queue_full = 0;
  std::uint64_t dropped_no_route = 0;
  std::uint64_t dropped_ttl = 0;

  // Delivery side.
  std::uint64_t delivered_benign = 0;
  std::uint64_t delivered_attack = 0;
  /// Deliveries suppressed by a victim-side filter rule.
  std::uint64_t filtered_at_victim = 0;

  netsim::RunningStat latency_benign;  // ticks, injection -> delivery
  netsim::RunningStat latency_attack;
  netsim::RunningStat hops;
  /// Streaming tail estimate of benign delivery latency (P^2 algorithm).
  netsim::P2Quantile latency_benign_p99{0.99};

  std::uint64_t injected() const noexcept {
    return injected_benign + injected_attack;
  }
  std::uint64_t delivered() const noexcept {
    return delivered_benign + delivered_attack;
  }
  std::uint64_t dropped() const noexcept {
    return dropped_queue_full + dropped_no_route + dropped_ttl;
  }

  std::string summary() const;
};

}  // namespace ddpm::cluster
