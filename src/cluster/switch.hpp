// Switch model (paper §4.1: "one node consists of a switch and a computing
// node, but they are separate entities"; switches are trusted and run only
// the routing + marking fast path).
//
// Store-and-forward, output-queued: a packet arriving at a switch is
// routed, TTL-checked, marked, and appended to the chosen output queue;
// each output link serializes one packet at a time at the configured
// bandwidth and delivers it to the neighbor after the link latency.
//
// Per-hop processing order matches walk_packet (walk.hpp) and Figure 4:
// route -> decrement TTL -> mark with (current, next).
#pragma once

#include <functional>
#include <vector>

#include "cluster/metrics.hpp"
#include "core/hot_path.hpp"
#include "core/ring.hpp"
#include "marking/scheme.hpp"
#include "netsim/rng.hpp"
#include "netsim/simulator.hpp"
#include "routing/router.hpp"
#include "telemetry/probes.hpp"

namespace ddpm::cluster {

using topo::NodeId;
using topo::Port;

class Switch {
 public:
  /// Services the owning network provides. All pointers outlive the switch.
  struct Env {
    netsim::Simulator* sim = nullptr;
    const topo::Topology* topo = nullptr;
    const route::Router* router = nullptr;
    mark::MarkingScheme* scheme = nullptr;  // nullable: unmarked network
    const route::LinkStateView* links = nullptr;
    Metrics* metrics = nullptr;
    /// Per-switch/per-port registry series; nullable (no registration).
    telemetry::Registry* registry = nullptr;
    /// Event tracer for drop instants and link-transmission spans. Owned by
    /// the driver; the network rebinds it on all switches via set_tracer().
    telemetry::Tracer* tracer = nullptr;
    /// Telemetry port labels, built once by the owning network and shared
    /// by every switch (they are identical across a topology). Nullable:
    /// a standalone switch builds its own.
    const std::vector<std::string>* port_labels = nullptr;
    /// Hands a packet to the local compute node.
    std::function<void(pkt::Packet&&, NodeId at)> deliver;
    /// Hands a packet to the neighbor switch (already past the link).
    std::function<void(pkt::Packet&&, NodeId from, NodeId to)> arrive;

    double link_bandwidth = 1.0;        // bytes per tick
    netsim::SimTime link_latency = 50;  // ticks of propagation per hop
    std::size_t queue_capacity = 16;    // packets per output queue
  };

  Switch(NodeId id, Env* env, netsim::Rng rng);

  /// Packet enters from the attached compute node; runs the scheme's
  /// injection hook (Figure 4's V := 0) before normal handling.
  void inject(pkt::Packet&& packet);

  /// Packet enters from a neighbor through `arrived_on` (this switch's
  /// port toward that neighbor).
  void handle(pkt::Packet&& packet, Port arrived_on);

  /// Output-queue occupancy, the congestion signal adaptive routing reads.
  std::size_t queue_length(Port port) const;

  NodeId id() const noexcept { return id_; }

 private:
  struct OutputPort {
    /// Bounded by Env::queue_capacity and reserved to it at construction,
    /// so steady-state enqueue/dequeue never touches the allocator.
    core::RingBuffer<pkt::Packet> queue;
    /// Serialized onto the link, still propagating. Arrival events complete
    /// strictly in transmission order (serialization is sequential and the
    /// latency constant), so a FIFO here lets the arrival event capture
    /// just [this, port] instead of hauling the packet through the event
    /// queue — the capture stays inside InlineAction's inline buffer.
    core::RingBuffer<pkt::Packet> in_flight;
    bool busy = false;
  };

  void start_transmission(Port port);

  NodeId id_;
  Env* env_;
  netsim::Rng rng_;
  std::vector<OutputPort> ports_;
  telemetry::SwitchProbes probes_;
};

/// Human-readable per-port labels for telemetry: "-x"/"+x"/... on mesh and
/// torus (port 2d is the negative direction in dimension d), "d0"/"d1"/...
/// on the hypercube.
std::vector<std::string> telemetry_port_labels(const topo::Topology& topo);

}  // namespace ddpm::cluster
