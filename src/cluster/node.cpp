#include "cluster/node.hpp"

#include <algorithm>

namespace ddpm::cluster {

ComputeNode::ComputeNode(NodeId id, Env* env, netsim::Rng rng)
    : id_(id), env_(env), rng_(rng) {}

bool ComputeNode::is_zombie() const {
  const auto* a = env_->attack;
  if (a == nullptr || a->kind == attack::AttackKind::kNone) return false;
  return std::binary_search(a->zombies.begin(), a->zombies.end(), id_);
}

void ComputeNode::start() {
  if (env_->benign_rate > 0.0) schedule_benign();
  const auto* a = env_->attack;
  if (a == nullptr || a->kind == attack::AttackKind::kNone) return;
  if (a->kind == attack::AttackKind::kWorm) {
    if (is_zombie()) {
      // Patient zero: infected from the start, scans once the attack opens.
      infected_ = true;
      env_->sim->schedule_at(a->start_time, [this]() { schedule_attack(); });
    }
  } else if (is_zombie()) {
    env_->sim->schedule_at(a->start_time, [this]() { schedule_attack(); });
  }
}

void ComputeNode::schedule_benign() {
  const auto wait =
      netsim::SimTime(rng_.next_exponential(env_->benign_rate)) + 1;
  env_->sim->schedule_in(wait, [this]() {
    inject_benign();
    schedule_benign();
  });
}

void ComputeNode::schedule_attack() {
  const auto* a = env_->attack;
  const double rate = a->kind == attack::AttackKind::kWorm ? a->worm_scan_rate
                                                           : a->rate_per_zombie;
  if (rate <= 0.0) return;
  const auto wait = netsim::SimTime(rng_.next_exponential(rate)) + 1;
  env_->sim->schedule_in(wait, [this]() {
    const auto* cfg = env_->attack;
    const auto now = env_->sim->now();
    if (now > cfg->stop_time) return;  // attack window closed
    // Pulsing (shrew) attack: inject only in the on-phase of each period.
    bool on_phase = true;
    if (cfg->pulse_period > 0 && now >= cfg->start_time) {
      const auto phase = (now - cfg->start_time) % cfg->pulse_period;
      on_phase = double(phase) <
                 cfg->pulse_duty * double(cfg->pulse_period);
    }
    if (on_phase) inject_attack();
    schedule_attack();
  });
}

pkt::Packet ComputeNode::make_packet(NodeId dest, pkt::IpProto proto,
                                     pkt::TrafficClass traffic,
                                     std::uint32_t payload) {
  pkt::Packet p;
  p.header = pkt::IpHeader(env_->addresses->address_of(id_),
                           env_->addresses->address_of(dest), proto,
                           std::uint16_t(std::min<std::uint32_t>(payload, 1480)));
  p.header.set_ttl(env_->initial_ttl);
  p.true_source = id_;
  p.dest_node = dest;
  p.traffic = traffic;
  p.payload_bytes = payload;
  p.injected_at = env_->sim->now();
  p.flow = (std::uint64_t(id_) << 40) | next_flow_++;
  if (env_->record_traces) p.trace.push_back(id_);
  return p;
}

void ComputeNode::inject_benign() {
  const NodeId dest = env_->pattern->pick_dest(id_, rng_);
  pkt::Packet p = make_packet(dest, pkt::IpProto::kUdp,
                              pkt::TrafficClass::kBenign, env_->benign_payload);
  if (env_->inject(std::move(p), id_)) ++env_->metrics->injected_benign;
}

void ComputeNode::inject_attack() {
  const auto* a = env_->attack;
  NodeId dest = a->victim;
  pkt::IpProto proto = pkt::IpProto::kUdp;
  pkt::TrafficClass traffic = pkt::TrafficClass::kAttackFlood;
  switch (a->kind) {
    case attack::AttackKind::kUdpFlood:
      dest = a->victim;
      proto = pkt::IpProto::kUdp;
      traffic = pkt::TrafficClass::kAttackFlood;
      break;
    case attack::AttackKind::kSynFlood:
      dest = a->victim;
      proto = pkt::IpProto::kTcp;
      traffic = pkt::TrafficClass::kAttackSyn;
      break;
    case attack::AttackKind::kWorm: {
      // Random scanning over the whole cluster.
      const auto draw = NodeId(rng_.next_below(env_->topo->num_nodes() - 1));
      dest = draw >= id_ ? draw + 1 : draw;
      proto = pkt::IpProto::kTcp;
      traffic = pkt::TrafficClass::kAttackWorm;
      break;
    }
    case attack::AttackKind::kReflector: {
      // SYN a random reflector (not the victim, not ourselves); the
      // victim's address is forged below, so the reflector's SYN+ACK
      // lands on the victim.
      do {
        dest = NodeId(rng_.next_below(env_->topo->num_nodes()));
      } while (dest == id_ || dest == a->victim);
      proto = pkt::IpProto::kTcp;
      traffic = pkt::TrafficClass::kAttackSyn;
      break;
    }
    case attack::AttackKind::kNone:
      return;
  }
  pkt::Packet p = make_packet(dest, proto, traffic, a->payload_bytes);
  // SYN floods are streams of fresh connection openers (each flow id is
  // unique from make_packet, so every SYN pins its own backlog slot).
  if (a->kind == attack::AttackKind::kSynFlood ||
      a->kind == attack::AttackKind::kReflector) {
    p.tcp_flags = pkt::tcpflags::kSyn;
  }
  // Reflection only works with the victim's address in the source field.
  const auto spoof = a->kind == attack::AttackKind::kReflector
                         ? attack::SpoofStrategy::kVictimReflect
                         : a->spoof;
  attack::apply_spoof(p, spoof, *env_->addresses, id_, a->victim, rng_);
  if (env_->inject(std::move(p), id_)) ++env_->metrics->injected_attack;
}

void ComputeNode::receive(pkt::Packet&& packet) {
  ++received_;
  if (packet.is_attack()) {
    ++env_->metrics->delivered_attack;
    env_->metrics->latency_attack.add(
        double(packet.delivered_at - packet.injected_at));
  } else {
    ++env_->metrics->delivered_benign;
    env_->metrics->latency_benign.add(
        double(packet.delivered_at - packet.injected_at));
    env_->metrics->latency_benign_p99.add(
        double(packet.delivered_at - packet.injected_at));
  }
  env_->metrics->hops.add(double(packet.hops));
  // Worm propagation: a scan that lands on a clean node compromises it
  // after the incubation delay.
  const auto* a = env_->attack;
  if (a != nullptr && a->kind == attack::AttackKind::kWorm &&
      packet.traffic == pkt::TrafficClass::kAttackWorm && !infected_) {
    env_->infect_peer(id_, env_->sim->now() + a->worm_incubation);
  }
  env_->delivered(packet, id_);
}

void ComputeNode::infect() {
  if (infected_) return;
  infected_ = true;
  schedule_attack();
}

}  // namespace ddpm::cluster
