#include "cluster/switch.hpp"

#include <cmath>

namespace ddpm::cluster {

std::vector<std::string> telemetry_port_labels(const topo::Topology& topo) {
  std::vector<std::string> labels;
  labels.reserve(std::size_t(topo.num_ports()));
  for (int p = 0; p < topo.num_ports(); ++p) {
    // Built with += (not operator+) to dodge a GCC 12 -O3 -Wrestrict
    // false positive in the const char* + string&& overload.
    std::string label;
    if (topo.kind() == topo::TopologyKind::kHypercube) {
      label += 'd';
      label += std::to_string(p);
    } else {
      const int dim = p / 2;
      label += (p % 2 == 0) ? '-' : '+';
      if (dim < 4) {
        label += "xyzw"[dim];
      } else {
        label += "dim";
        label += std::to_string(dim);
      }
    }
    labels.push_back(std::move(label));
  }
  return labels;
}

Switch::Switch(NodeId id, Env* env, netsim::Rng rng)
    : id_(id),
      env_(env),
      rng_(rng),
      ports_(std::size_t(env->topo->num_ports())) {
  for (OutputPort& port : ports_) {
    port.queue.reserve(env_->queue_capacity);
    port.in_flight.reserve(env_->queue_capacity);
  }
  // Labels are a function of the topology alone; the owning network builds
  // them once and shares them (hoisted out of this ctor, which used to
  // allocate the full label set per switch).
  if (env_->port_labels != nullptr) {
    probes_.bind(env_->registry, id_, *env_->port_labels);
  } else {
    probes_.bind(env_->registry, id_, telemetry_port_labels(*env_->topo));
  }
}

void Switch::inject(pkt::Packet&& packet) {
  if (env_->scheme != nullptr) env_->scheme->on_injection(packet, id_);
  handle(std::move(packet), route::kLocalPort);
}

DDPM_HOT void Switch::handle(pkt::Packet&& packet, Port arrived_on) {
  if (packet.dest_node == id_) {
    packet.delivered_at = env_->sim->now();
    probes_.on_local_delivery();
    env_->deliver(std::move(packet), id_);
    return;
  }
  const auto port = env_->router->select_output(id_, packet.dest_node,
                                                arrived_on, *env_->links, rng_);
  if (!port) {
    ++env_->metrics->dropped_no_route;
    probes_.on_drop_no_route(env_->tracer, id_);
    return;
  }
  if (packet.header.decrement_ttl() == 0) {
    ++env_->metrics->dropped_ttl;
    probes_.on_drop_ttl(env_->tracer, id_);
    return;
  }
  OutputPort& out = ports_[std::size_t(*port)];
  if (out.queue.size() >= env_->queue_capacity) {
    ++env_->metrics->dropped_queue_full;
    probes_.on_drop_queue_full(env_->tracer, id_);
    return;
  }
  const NodeId next = *env_->topo->neighbor(id_, *port);
  if (env_->scheme != nullptr) {
    env_->scheme->on_forward(packet, id_, next);
    probes_.on_mark_hook();
  }
  ++packet.hops;
  if (!packet.trace.empty()) packet.trace.push_back(next);
  out.queue.push_back(std::move(packet));
  probes_.on_forward(out.queue.size());
  start_transmission(*port);
}

DDPM_HOT void Switch::start_transmission(Port port) {
  OutputPort& out = ports_[std::size_t(port)];
  if (out.busy || out.queue.empty()) return;
  out.busy = true;
  pkt::Packet packet = std::move(out.queue.front());
  out.queue.pop_front();
  const auto tx_ticks = netsim::SimTime(
      // Floating-point divide (bandwidth scaling), not an integer one;
      // the textual frontend cannot type-check the operands.
      std::ceil(double(packet.wire_bytes()) / env_->link_bandwidth));  // ddpm-analyze: allow(hot-no-div)
  const NodeId next = *env_->topo->neighbor(id_, port);
  // The span covers serialization + propagation; both durations are known
  // at schedule time, so one complete event suffices (no open/close pair).
  probes_.on_tx(env_->tracer, id_, std::size_t(port), packet.wire_bytes(),
                tx_ticks, env_->sim->now(),
                env_->sim->now() + tx_ticks + env_->link_latency);
  // Link frees up after serialization; the packet lands after propagation.
  env_->sim->schedule_in(tx_ticks, [this, port]() {
    ports_[std::size_t(port)].busy = false;
    start_transmission(port);
  });
  out.in_flight.push_back(std::move(packet));
  env_->sim->schedule_in(tx_ticks + env_->link_latency,
                         [this, port, next]() {
                           OutputPort& p = ports_[std::size_t(port)];
                           pkt::Packet landed = std::move(p.in_flight.front());
                           p.in_flight.pop_front();
                           env_->arrive(std::move(landed), id_, next);
                         });
}

std::size_t Switch::queue_length(Port port) const {
  if (port < 0 || std::size_t(port) >= ports_.size()) return 0;
  return ports_[std::size_t(port)].queue.size();
}

}  // namespace ddpm::cluster
