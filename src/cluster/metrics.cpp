#include "cluster/metrics.hpp"

#include <sstream>

namespace ddpm::cluster {

std::string Metrics::summary() const {
  std::ostringstream os;
  os << "injected " << injected() << " (benign " << injected_benign
     << ", attack " << injected_attack << "), delivered " << delivered()
     << " (benign " << delivered_benign << ", attack " << delivered_attack
     << "), dropped " << dropped() << " (queue " << dropped_queue_full
     << ", no-route " << dropped_no_route << ", ttl " << dropped_ttl
     << "), blocked-at-source " << blocked_at_source
     << ", ingress-filtered " << dropped_spoofed_ingress << ", filtered "
     << filtered_at_victim;
  if (latency_benign.count() > 0) {
    os << "; benign latency mean " << latency_benign.mean() << " ticks";
  }
  return os.str();
}

}  // namespace ddpm::cluster
