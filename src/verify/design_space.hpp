// Design-space enumeration for ddpm_verify (docs/VERIFICATION.md).
//
// The verifier's value is coverage of the FACTORY design space, not of one
// hand-picked config: these drivers walk every Topology x Router combo the
// factories accept (CDG deadlock verdicts) and a ladder of topology sizes
// (marking invariant, injectivity, field widths) and return the verdict
// rows the CLI renders. tests/test_verify.cpp and the `verify` CI job both
// call the same drivers, so the artifact and the tier-1 gate cannot drift.
#pragma once

#include <string>
#include <vector>

#include "verify/invariant.hpp"
#include "verify/verdict.hpp"

namespace ddpm::verify {

/// Topology specs the CDG suite covers (small enough to close the
/// reachable-state BFS in milliseconds, large enough to exhibit every
/// wrap/turn cycle class).
std::vector<std::string> cdg_topologies();

/// Router factory names the CDG suite covers — the full `make_router` set.
std::vector<std::string> cdg_routers();

/// Builds a CDG verdict for one combo. Unsupported combos (the factory
/// throws) pass trivially with supported == false.
CdgVerdict verify_combo(const std::string& topology_spec,
                        const std::string& router_name);

/// CDG verdicts for the whole Topology x Router grid.
std::vector<CdgVerdict> run_cdg_suite();

/// Marking-invariant verdicts over the size ladder: exhaustive pair
/// enumeration up to radix 8 / 4 dimensions, randomized sampling above.
std::vector<InvariantVerdict> run_invariant_suite(
    const InvariantOptions& opt = {});

/// Injectivity verdicts over the same ladder.
std::vector<InjectivityVerdict> run_injectivity_suite(
    const InvariantOptions& opt = {});

/// The full report: CDG + invariant + injectivity + field widths + the
/// bounded protocol model-checking grid (verify/model/suite.hpp).
Report run_all(const InvariantOptions& opt = {});

}  // namespace ddpm::verify
