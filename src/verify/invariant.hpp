// Symbolic marking-invariant checker (docs/VERIFICATION.md).
//
// DDPM's correctness rests on one telescoping identity: after any route
// prefix S = x0 -> x1 -> ... -> xi, the accumulated marking vector equals
// coord(xi) - coord(S) EXACTLY (XOR of coordinates on the hypercube) — no
// modular reduction, because each hop contributes the raw coordinate
// difference of the link it crosses (a torus wrap hop contributes -(k-1),
// which IS the coordinate difference). The checker proves this by driving
// the real DdpmScheme/DdpmCodec over every minimal route (plus bounded
// non-minimal detour perturbations) of every (S, D) pair on small radices,
// and over randomly sampled pairs/routes above the exhaustive bound,
// asserting the identity and victim-side identification at EVERY prefix.
// It also round-trips the codec over the full displacement domain and
// checks injectivity: for a fixed victim D, distinct sources always yield
// distinct field values.
#pragma once

#include <cstdint>

#include "topology/topology.hpp"
#include "verify/verdict.hpp"

namespace ddpm::verify {

struct InvariantOptions {
  std::uint64_t seed = 0x5eed;
  /// All (S, D) pairs are enumerated when n*n is at most this; above it,
  /// `sampled_pairs` random pairs are checked instead.
  std::uint64_t max_exhaustive_pairs = 70000;
  std::uint64_t sampled_pairs = 512;
  /// DFS cap on minimal routes per pair (hypercubes explode factorially).
  std::uint64_t max_paths_per_pair = 24;
  std::uint64_t hypercube_paths_per_pair = 8;
  /// Non-minimal perturbations (x -> n -> x round trips) added per pair.
  std::uint64_t detour_variants = 2;
  /// Injectivity: all destinations when n is at most this, else sampled.
  std::uint64_t injectivity_dest_cap = 4096;
  std::uint64_t injectivity_sampled_dests = 64;
  std::uint64_t injectivity_source_cap = 4096;
};

/// Proves (or refutes, with a witness in `note`) the per-prefix marking
/// invariant and victim-side identification on `topo`.
InvariantVerdict check_invariant(const topo::Topology& topo,
                                 const InvariantOptions& opt = {});

/// Proves that source identification is injective for fixed destinations:
/// no two sources map to the same marking-field value.
InjectivityVerdict check_injectivity(const topo::Topology& topo,
                                     const InvariantOptions& opt = {});

}  // namespace ddpm::verify
