#include "verify/invariant.hpp"

#include <sstream>
#include <vector>

#include "core/check.hpp"
#include "marking/ddpm.hpp"
#include "netsim/rng.hpp"
#include "packet/packet.hpp"

namespace ddpm::verify {

using topo::Coord;
using topo::NodeId;
using topo::Port;

namespace {

/// The claimed identity: accumulated V after reaching `at` from `src`.
Coord expected_vector(const topo::Topology& topo, const Coord& src_coord,
                      NodeId at) {
  const Coord here = topo.coord_of(at);
  return topo.kind() == topo::TopologyKind::kHypercube ? (here ^ src_coord)
                                                       : (here - src_coord);
}

struct PathChecker {
  const topo::Topology& topo;
  mark::DdpmScheme scheme;
  mark::DdpmIdentifier identifier;
  netsim::Rng rng;
  std::uint64_t hops = 0;
  std::string failure;  // first counterexample, empty while the proof holds

  PathChecker(const topo::Topology& t, std::uint64_t seed)
      : topo(t), scheme(t), identifier(t), rng(seed) {}

  bool ok() const { return failure.empty(); }

  void fail(NodeId src, NodeId dst, NodeId at, const char* what) {
    if (!failure.empty()) return;
    std::ostringstream os;
    os << what << " at node " << at << " on route " << src << "->" << dst;
    failure = os.str();
  }

  /// Drives the real scheme along `path` (path.front() == S), asserting
  /// the telescoping identity and victim-side identification after the
  /// injection and after every hop.
  void check_path(const std::vector<NodeId>& path) {
    if (!ok()) return;
    const NodeId src = path.front();
    const Coord src_coord = topo.coord_of(src);
    pkt::Packet packet;
    packet.true_source = src;
    packet.dest_node = path.back();
    // Pre-load attacker garbage: on_injection must zero the field.
    packet.set_marking_field(std::uint16_t(rng.next_below(0x10000)));
    scheme.on_injection(packet, src);
    for (std::size_t i = 0; i < path.size(); ++i) {
      const NodeId at = path[i];
      const Coord got = scheme.codec().decode(packet.marking_field());
      if (got != expected_vector(topo, src_coord, at)) {
        return fail(src, path.back(), at, "V != D - S prefix identity");
      }
      const auto back = identifier.identify(at, packet.marking_field());
      if (!back || *back != src) {
        return fail(src, path.back(), at, "identify(X, V) != S");
      }
      ++hops;
      if (i + 1 < path.size()) {
        scheme.on_forward(packet, at, path[i + 1]);
      }
    }
  }
};

/// Depth-first enumeration of minimal routes from src to dst, capped.
/// Returns true if the cap truncated the enumeration.
bool enumerate_minimal(const topo::Topology& topo, NodeId src, NodeId dst,
                       std::uint64_t cap,
                       std::vector<std::vector<NodeId>>& out) {
  std::vector<NodeId> path{src};
  bool truncated = false;
  // Explicit stack of (node, next port to try) frames.
  std::vector<std::pair<NodeId, Port>> stack{{src, 0}};
  while (!stack.empty()) {
    const NodeId node = stack.back().first;
    if (node == dst) {
      out.push_back(path);
      if (out.size() >= cap) {
        truncated = true;
        break;
      }
      stack.pop_back();
      path.pop_back();
      continue;
    }
    bool descended = false;
    while (stack.back().second < topo.num_ports()) {
      const Port p = stack.back().second++;  // resume point when we unwind
      const auto next = topo.neighbor(node, p);
      if (!next) continue;
      if (topo.min_hops(*next, dst) != topo.min_hops(node, dst) - 1) continue;
      path.push_back(*next);
      stack.emplace_back(*next, 0);
      descended = true;
      break;
    }
    if (!descended) {
      stack.pop_back();
      path.pop_back();
    }
  }
  return truncated;
}

/// One random minimal route (uniform productive neighbor per hop).
std::vector<NodeId> random_minimal(const topo::Topology& topo, NodeId src,
                                   NodeId dst, netsim::Rng& rng) {
  std::vector<NodeId> path{src};
  NodeId current = src;
  while (current != dst) {
    std::vector<NodeId> productive;
    for (Port p = 0; p < topo.num_ports(); ++p) {
      const auto next = topo.neighbor(current, p);
      if (next && topo.min_hops(*next, dst) == topo.min_hops(current, dst) - 1) {
        productive.push_back(*next);
      }
    }
    DDPM_CHECK(!productive.empty(), "no productive neighbor on a minimal walk");
    current = productive[rng.next_below(productive.size())];
    path.push_back(current);
  }
  return path;
}

/// Inserts an x -> n -> x round trip at a random interior position: the
/// detour's two contributions cancel exactly, so the prefix identity must
/// keep holding at n and after the return.
std::vector<NodeId> perturb(const topo::Topology& topo,
                            const std::vector<NodeId>& path,
                            netsim::Rng& rng) {
  const std::size_t pos = rng.next_below(path.size());
  const NodeId x = path[pos];
  std::vector<NodeId> neighbors;
  for (Port p = 0; p < topo.num_ports(); ++p) {
    if (const auto n = topo.neighbor(x, p)) neighbors.push_back(*n);
  }
  const NodeId n = neighbors[rng.next_below(neighbors.size())];
  std::vector<NodeId> detoured(path.begin(),
                               path.begin() + std::ptrdiff_t(pos) + 1);
  detoured.push_back(n);
  detoured.push_back(x);
  detoured.insert(detoured.end(), path.begin() + std::ptrdiff_t(pos) + 1,
                  path.end());
  return detoured;
}

/// Odometer over the full displacement domain: decode(encode(v)) == v for
/// every representable legal vector, encode rejects out-of-slice values,
/// and identify returns nullopt when D - V leaves the coordinate space.
bool codec_roundtrip(const topo::Topology& topo, std::string& note) {
  const mark::DdpmCodec codec(topo);
  const mark::DdpmIdentifier identifier(topo);
  const bool cube = topo.kind() == topo::TopologyKind::kHypercube;
  const std::size_t dims = topo.num_dims();
  std::vector<int> lo(dims), hi(dims);
  std::uint64_t domain = 1;
  for (std::size_t d = 0; d < dims; ++d) {
    lo[d] = cube ? 0 : -(topo.dim_size(d) - 1);
    hi[d] = cube ? 1 : topo.dim_size(d) - 1;
    domain *= std::uint64_t(hi[d] - lo[d] + 1);
  }
  DDPM_CHECK(domain <= (1u << 17), "displacement domain too large to sweep");
  std::vector<int> v(lo);
  while (true) {
    Coord c(dims);
    for (std::size_t d = 0; d < dims; ++d) c[d] = Coord::value_type(v[d]);
    const std::uint16_t field = codec.encode(c);
    if (codec.decode(field) != c) {
      note = "codec round-trip failed";
      return false;
    }
    // Odometer increment.
    std::size_t d = 0;
    while (d < dims) {
      if (++v[d] <= hi[d]) break;
      v[d] = lo[d];
      ++d;
    }
    if (d == dims) break;
  }
  if (!cube) {
    // Components one past the slice range must throw, not wrap silently.
    Coord over(dims);
    over[0] = Coord::value_type(1 << (codec.slice(0).width - 1));
    bool threw = false;
    try {
      (void)codec.encode(over);
    } catch (const std::range_error&) {
      threw = true;
    }
    if (!threw) {
      note = "encode accepted an out-of-slice component";
      return false;
    }
    // identify must reject fields whose implied source leaves the grid:
    // from the origin, any positive displacement does.
    Coord off_grid(dims);
    off_grid[0] = 1;
    if (identifier.identify(topo.id_of(Coord(dims)), codec.encode(off_grid))) {
      note = "identify accepted an off-grid source";
      return false;
    }
  }
  return true;
}

}  // namespace

InvariantVerdict check_invariant(const topo::Topology& topo,
                                 const InvariantOptions& opt) {
  InvariantVerdict verdict;
  verdict.topology = topo.spec();
  const NodeId n = topo.num_nodes();
  const std::uint64_t all_pairs = std::uint64_t(n) * std::uint64_t(n);
  verdict.exhaustive_pairs = all_pairs <= opt.max_exhaustive_pairs;
  const std::uint64_t path_cap =
      topo.kind() == topo::TopologyKind::kHypercube
          ? opt.hypercube_paths_per_pair
          : opt.max_paths_per_pair;

  verdict.codec_roundtrip = codec_roundtrip(topo, verdict.note);
  PathChecker checker(topo, opt.seed);
  netsim::Rng pair_rng(opt.seed ^ 0x9e3779b97f4a7c15ULL);

  const auto check_pair = [&](NodeId src, NodeId dst) {
    ++verdict.pairs;
    std::vector<std::vector<NodeId>> paths;
    if (enumerate_minimal(topo, src, dst, path_cap, paths)) {
      ++verdict.truncated_pairs;
    }
    for (std::uint64_t i = 0; i < opt.detour_variants && !paths.empty(); ++i) {
      paths.push_back(perturb(topo, paths.front(), checker.rng));
    }
    for (const auto& path : paths) {
      checker.check_path(path);
      ++verdict.paths;
      if (!checker.ok()) return false;
    }
    return true;
  };

  if (verdict.exhaustive_pairs) {
    for (NodeId src = 0; src < n && checker.ok(); ++src) {
      for (NodeId dst = 0; dst < n; ++dst) {
        if (!check_pair(src, dst)) break;
      }
    }
  } else {
    for (std::uint64_t i = 0; i < opt.sampled_pairs; ++i) {
      const NodeId src = NodeId(pair_rng.next_below(n));
      const NodeId dst = NodeId(pair_rng.next_below(n));
      // Sampled regime: one random minimal route + detours beats the DFS
      // prefix bias on big radices.
      ++verdict.pairs;
      std::vector<std::vector<NodeId>> paths{
          random_minimal(topo, src, dst, pair_rng)};
      for (std::uint64_t d = 0; d < opt.detour_variants; ++d) {
        paths.push_back(perturb(topo, paths.front(), checker.rng));
      }
      for (const auto& path : paths) {
        checker.check_path(path);
        ++verdict.paths;
      }
      if (!checker.ok()) break;
    }
  }

  verdict.hops = checker.hops;
  verdict.holds = checker.ok();
  if (!checker.ok()) verdict.note = checker.failure;
  verdict.pass = verdict.holds && verdict.codec_roundtrip;
  return verdict;
}

InjectivityVerdict check_injectivity(const topo::Topology& topo,
                                     const InvariantOptions& opt) {
  InjectivityVerdict verdict;
  verdict.topology = topo.spec();
  const mark::DdpmCodec codec(topo);
  const mark::DdpmIdentifier identifier(topo);
  const bool cube = topo.kind() == topo::TopologyKind::kHypercube;
  const NodeId n = topo.num_nodes();
  netsim::Rng rng(opt.seed ^ 0xda3e39cb94b95bdbULL);

  const bool all_dests = std::uint64_t(n) <= opt.injectivity_dest_cap;
  const bool all_sources = std::uint64_t(n) <= opt.injectivity_source_cap;
  verdict.exhaustive = all_dests && all_sources;
  verdict.destinations = all_dests ? n : opt.injectivity_sampled_dests;
  verdict.sources = all_sources ? n : opt.injectivity_source_cap;

  // Per-destination uniqueness over the 16-bit field space, epoch-stamped
  // so the 64 KiB scratch is allocated once.
  std::vector<std::uint32_t> stamp(1u << 16, 0);
  std::vector<NodeId> owner(1u << 16, 0);
  std::uint32_t epoch = 0;
  verdict.injective = true;

  for (std::uint64_t di = 0; di < verdict.destinations && verdict.injective;
       ++di) {
    const NodeId dst = all_dests ? NodeId(di) : NodeId(rng.next_below(n));
    const Coord dst_coord = topo.coord_of(dst);
    ++epoch;
    for (std::uint64_t si = 0; si < verdict.sources; ++si) {
      const NodeId src = all_sources ? NodeId(si) : NodeId(rng.next_below(n));
      const Coord src_coord = topo.coord_of(src);
      const Coord v = cube ? (dst_coord ^ src_coord) : (dst_coord - src_coord);
      const std::uint16_t field = codec.encode(v);
      if (stamp[field] == epoch && owner[field] != src) {
        verdict.injective = false;
        std::ostringstream os;
        os << "sources " << owner[field] << " and " << src
           << " collide on field " << field << " for destination " << dst;
        verdict.note = os.str();
        break;
      }
      stamp[field] = epoch;
      owner[field] = src;
      const auto back = identifier.identify(dst, field);
      if (!back || *back != src) {
        verdict.injective = false;
        std::ostringstream os;
        os << "identify(" << dst << ", " << field << ") != " << src;
        verdict.note = os.str();
        break;
      }
    }
  }
  verdict.pass = verdict.injective;
  return verdict;
}

}  // namespace ddpm::verify
