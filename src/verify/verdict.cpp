#include "verify/verdict.hpp"

#include <sstream>

namespace ddpm::verify {

namespace {

void json_escape(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

void field(std::ostream& os, const char* key, const std::string& value,
           bool first = false) {
  os << (first ? "" : ", ") << '"' << key << "\": \"";
  json_escape(os, value);
  os << '"';
}

void field(std::ostream& os, const char* key, bool value, bool first = false) {
  os << (first ? "" : ", ") << '"' << key << "\": "
     << (value ? "true" : "false");
}

void field(std::ostream& os, const char* key, std::uint64_t value,
           bool first = false) {
  os << (first ? "" : ", ") << '"' << key << "\": " << value;
}

const char* mark(bool pass) { return pass ? "pass" : "FAIL"; }

}  // namespace

bool Report::all_pass() const noexcept { return failures() == 0; }

std::size_t Report::rows() const noexcept {
  return cdg.size() + invariant.size() + injectivity.size() + width.size() +
         model.size();
}

std::size_t Report::failures() const noexcept {
  std::size_t n = 0;
  for (const auto& v : cdg) n += !v.pass;
  for (const auto& v : invariant) n += !v.pass;
  for (const auto& v : injectivity) n += !v.pass;
  for (const auto& v : width) n += !v.pass;
  for (const auto& v : model) n += !v.pass;
  return n;
}

std::string Report::to_json() const {
  std::ostringstream os;
  os << "{\n  \"tool\": \"ddpm_verify\",\n  \"cdg\": [";
  for (std::size_t i = 0; i < cdg.size(); ++i) {
    const CdgVerdict& v = cdg[i];
    os << (i ? "," : "") << "\n    {";
    field(os, "topology", v.topology, true);
    field(os, "router", v.router);
    field(os, "supported", v.supported);
    field(os, "declared", v.declared);
    field(os, "channels", std::uint64_t(v.channels));
    field(os, "dependencies", std::uint64_t(v.dependencies));
    field(os, "cyclic", v.cyclic);
    field(os, "escape_acyclic", v.escape_acyclic);
    os << ", \"cycle\": [";
    for (std::size_t c = 0; c < v.cycle.size(); ++c) {
      os << (c ? ", " : "") << '"';
      json_escape(os, v.cycle[c]);
      os << '"';
    }
    os << ']';
    field(os, "pass", v.pass);
    field(os, "note", v.note);
    os << '}';
  }
  os << (cdg.empty() ? "" : "\n  ") << "],\n  \"invariant\": [";
  for (std::size_t i = 0; i < invariant.size(); ++i) {
    const InvariantVerdict& v = invariant[i];
    os << (i ? "," : "") << "\n    {";
    field(os, "topology", v.topology, true);
    field(os, "exhaustive_pairs", v.exhaustive_pairs);
    field(os, "pairs", v.pairs);
    field(os, "paths", v.paths);
    field(os, "hops", v.hops);
    field(os, "truncated_pairs", v.truncated_pairs);
    field(os, "codec_roundtrip", v.codec_roundtrip);
    field(os, "holds", v.holds);
    field(os, "pass", v.pass);
    field(os, "note", v.note);
    os << '}';
  }
  os << (invariant.empty() ? "" : "\n  ") << "],\n  \"injectivity\": [";
  for (std::size_t i = 0; i < injectivity.size(); ++i) {
    const InjectivityVerdict& v = injectivity[i];
    os << (i ? "," : "") << "\n    {";
    field(os, "topology", v.topology, true);
    field(os, "destinations", v.destinations);
    field(os, "sources", v.sources);
    field(os, "exhaustive", v.exhaustive);
    field(os, "injective", v.injective);
    field(os, "pass", v.pass);
    field(os, "note", v.note);
    os << '}';
  }
  os << (injectivity.empty() ? "" : "\n  ") << "],\n  \"width\": [";
  for (std::size_t i = 0; i < width.size(); ++i) {
    const WidthVerdict& v = width[i];
    os << (i ? "," : "") << "\n    {";
    field(os, "check", v.check, true);
    field(os, "detail", v.detail);
    field(os, "pass", v.pass);
    field(os, "note", v.note);
    os << '}';
  }
  os << (width.empty() ? "" : "\n  ") << "],\n  \"model\": [";
  for (std::size_t i = 0; i < model.size(); ++i) {
    const ModelVerdict& v = model[i];
    os << (i ? "," : "") << "\n    {";
    field(os, "topology", v.topology, true);
    field(os, "router", v.router);
    field(os, "vcs", std::uint64_t(v.vcs));
    field(os, "depth", std::uint64_t(v.depth));
    field(os, "packets", std::uint64_t(v.packets));
    field(os, "flits_per_packet", std::uint64_t(v.flits_per_packet));
    field(os, "pairs", v.pairs);
    field(os, "symmetry", v.symmetry);
    field(os, "states", v.states);
    field(os, "transitions", v.transitions);
    field(os, "complete", v.complete);
    field(os, "credit_conservation", v.credit_conservation);
    field(os, "no_overflow", v.no_overflow);
    field(os, "no_loss", v.no_loss);
    field(os, "escape_reachable", v.escape_reachable);
    field(os, "bounded_progress", v.bounded_progress);
    field(os, "violated", v.violated);
    field(os, "witness_events", v.witness_events);
    field(os, "witness_replay", v.witness_replay);
    field(os, "pass", v.pass);
    field(os, "note", v.note);
    os << '}';
  }
  os << (model.empty() ? "" : "\n  ") << "],\n  \"all_pass\": "
     << (all_pass() ? "true" : "false") << "\n}\n";
  return os.str();
}

std::string Report::to_markdown() const {
  std::ostringstream os;
  if (!cdg.empty()) {
    os << "### Channel-dependency deadlock verdicts\n\n"
       << "| Topology | Router | Declared | CDG | Escape CDG | Verdict |\n"
       << "|---|---|---|---|---|---|\n";
    for (const CdgVerdict& v : cdg) {
      os << "| " << v.topology << " | " << v.router << " | ";
      if (!v.supported) {
        os << "— | — | — | pass (factory rejects) |\n";
        continue;
      }
      os << v.declared << " | " << (v.cyclic ? "cyclic" : "acyclic") << " | "
         << (v.declared == "acyclic" ? "n/a"
                                     : (v.escape_acyclic ? "acyclic" : "CYCLIC"))
         << " | " << mark(v.pass) << " |\n";
    }
    os << '\n';
  }
  if (!invariant.empty()) {
    os << "### Marking invariant (V = D − S at every prefix)\n\n"
       << "| Topology | Pairs | Routes | Hop checks | Coverage | Codec "
          "round-trip | Verdict |\n"
       << "|---|---|---|---|---|---|---|\n";
    for (const InvariantVerdict& v : invariant) {
      os << "| " << v.topology << " | " << v.pairs << " | " << v.paths
         << " | " << v.hops << " | "
         << (v.exhaustive_pairs ? "exhaustive pairs" : "sampled pairs")
         << " | " << (v.codec_roundtrip ? "yes" : "NO") << " | "
         << mark(v.pass) << " |\n";
    }
    os << '\n';
  }
  if (!injectivity.empty()) {
    os << "### Identification injectivity (fixed D, distinct S ⇒ distinct "
          "V)\n\n"
       << "| Topology | Destinations | Sources each | Coverage | Verdict |\n"
       << "|---|---|---|---|---|\n";
    for (const InjectivityVerdict& v : injectivity) {
      os << "| " << v.topology << " | " << v.destinations << " | "
         << v.sources << " | " << (v.exhaustive ? "exhaustive" : "sampled")
         << " | " << mark(v.pass) << " |\n";
    }
    os << '\n';
  }
  if (!width.empty()) {
    os << "### Field-width certification (Tables 1–3)\n\n"
       << "| Check | Detail | Verdict |\n|---|---|---|\n";
    for (const WidthVerdict& v : width) {
      os << "| " << v.check << " | " << v.detail << " | " << mark(v.pass)
         << " |\n";
    }
    os << '\n';
  }
  if (!model.empty()) {
    os << "### Model-checked protocol configurations\n\n"
       << "| Topology | Router | VCs | Depth | K | States | Coverage | "
          "Conservation | Overflow | Loss/dup | Escape | Progress | "
          "Verdict |\n"
       << "|---|---|---|---|---|---|---|---|---|---|---|---|---|\n";
    for (const ModelVerdict& v : model) {
      os << "| " << v.topology << " | " << v.router << " | " << v.vcs
         << " | " << v.depth << " | " << v.packets << " | " << v.states
         << " | " << (v.complete ? "exhaustive" : "TRUNCATED") << " | "
         << (v.credit_conservation ? "proved" : "VIOLATED") << " | "
         << (v.no_overflow ? "proved" : "VIOLATED") << " | "
         << (v.no_loss ? "proved" : "VIOLATED") << " | "
         << (v.escape_reachable ? "proved" : "VIOLATED") << " | "
         << (v.bounded_progress ? "proved" : "VIOLATED") << " | "
         << mark(v.pass) << " |\n";
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace ddpm::verify
