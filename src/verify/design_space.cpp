#include "verify/design_space.hpp"

#include <memory>
#include <stdexcept>

#include "routing/deadlock.hpp"
#include "routing/router.hpp"
#include "topology/factory.hpp"
#include "verify/cdg.hpp"
#include "verify/model/suite.hpp"
#include "verify/width_cert.hpp"

namespace ddpm::verify {

std::vector<std::string> cdg_topologies() {
  return {"mesh:4x4",  "mesh:3x3x3",  "torus:4x4",
          "torus:3x3x3", "hypercube:3", "hypercube:4"};
}

std::vector<std::string> cdg_routers() {
  return {"dor",      "west-first", "north-last", "negative-first",
          "adaptive", "adaptive-misroute", "oracle", "valiant"};
}

CdgVerdict verify_combo(const std::string& topology_spec,
                        const std::string& router_name) {
  CdgVerdict verdict;
  verdict.topology = topology_spec;
  verdict.router = router_name;
  const auto topo = topo::make_topology(topology_spec);
  std::unique_ptr<route::Router> router;
  try {
    router = route::make_router(router_name, *topo);
  } catch (const std::invalid_argument&) {
    verdict.supported = false;
    verdict.pass = true;
    verdict.note = "factory rejects this combo";
    return verdict;
  }
  verdict.supported = true;
  const route::DeadlockClass declared =
      route::declared_deadlock_class(*router);
  verdict.declared = route::to_string(declared);

  const CdgResult full = build_cdg(*topo, *router);
  verdict.channels = full.channels;
  verdict.dependencies = full.dependencies;
  verdict.cyclic = full.cyclic;
  verdict.cycle = full.cycle;
  const CdgResult escape = build_escape_cdg(*topo);
  verdict.escape_acyclic = !escape.cyclic;

  if (declared == route::DeadlockClass::kAcyclic) {
    // A cyclic graph under an acyclic declaration is the finding that
    // gates the factory: the declaration (and the wormhole gate built on
    // it) would admit a deadlockable combo.
    verdict.pass = !verdict.cyclic;
    if (!verdict.pass) {
      verdict.note = "declared acyclic but the reachable CDG has a cycle";
    }
  } else {
    // kNeedsEscapeVcs is honest about the cycle; safety rests entirely on
    // the escape subnetwork, which must therefore be provably acyclic.
    verdict.pass = verdict.escape_acyclic;
    if (!verdict.pass) {
      verdict.note = "escape subnetwork CDG has a cycle";
    } else if (!verdict.cyclic) {
      verdict.note = "stricter than declared: full CDG is acyclic anyway";
    }
  }
  return verdict;
}

std::vector<CdgVerdict> run_cdg_suite() {
  std::vector<CdgVerdict> out;
  for (const std::string& spec : cdg_topologies()) {
    for (const std::string& router : cdg_routers()) {
      out.push_back(verify_combo(spec, router));
    }
  }
  return out;
}

namespace {

/// Size ladder shared by the invariant and injectivity suites. The first
/// group closes exhaustively under the default options; the second is
/// sampled (pairs drawn at random, one random minimal route each).
const char* const kInvariantLadder[] = {
    // exhaustive
    "mesh:4x4", "torus:5x5", "mesh:8x8", "torus:8x8", "hypercube:4",
    "hypercube:8", "mesh:3x3x3x3", "torus:3x3x3x3",
    // sampled
    "mesh:32x32", "torus:16x16", "mesh:8x8x8x8", "torus:8x8x8x8",
    "hypercube:16",
};

}  // namespace

std::vector<InvariantVerdict> run_invariant_suite(const InvariantOptions& opt) {
  std::vector<InvariantVerdict> out;
  for (const char* spec : kInvariantLadder) {
    out.push_back(check_invariant(*topo::make_topology(spec), opt));
  }
  return out;
}

std::vector<InjectivityVerdict> run_injectivity_suite(
    const InvariantOptions& opt) {
  std::vector<InjectivityVerdict> out;
  for (const char* spec : kInvariantLadder) {
    out.push_back(check_injectivity(*topo::make_topology(spec), opt));
  }
  return out;
}

Report run_all(const InvariantOptions& opt) {
  Report report;
  report.cdg = run_cdg_suite();
  report.invariant = run_invariant_suite(opt);
  report.injectivity = run_injectivity_suite(opt);
  report.width = certify_widths();
  report.model = model::run_model_suite();
  return report;
}

}  // namespace ddpm::verify
