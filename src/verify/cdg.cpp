#include "verify/cdg.hpp"

#include <deque>
#include <set>
#include <sstream>
#include <utility>

#include "core/check.hpp"
#include "routing/dor.hpp"

namespace ddpm::verify {

using topo::NodeId;
using topo::Port;

namespace {

/// Dependency graph over channel ids with deterministic edge order (the
/// per-node edge sets are ordered, so witnesses are reproducible).
struct DepGraph {
  explicit DepGraph(std::size_t channels) : adj(channels) {}

  void add(std::size_t from, std::size_t to) { adj[from].insert(to); }

  std::size_t edges() const {
    std::size_t n = 0;
    for (const auto& out : adj) n += out.size();
    return n;
  }

  /// Iterative 3-color DFS; on the first back edge, fills `cycle` with the
  /// channel ids along the witness loop and returns true.
  bool find_cycle(std::vector<std::size_t>& cycle) const {
    enum : char { kWhite, kGray, kBlack };
    std::vector<char> color(adj.size(), kWhite);
    std::vector<std::size_t> path;
    // Frame: (node, iterator into its edge set).
    std::vector<std::pair<std::size_t, std::set<std::size_t>::const_iterator>>
        stack;
    for (std::size_t root = 0; root < adj.size(); ++root) {
      if (color[root] != kWhite) continue;
      color[root] = kGray;
      path.push_back(root);
      stack.emplace_back(root, adj[root].begin());
      while (!stack.empty()) {
        auto& [node, it] = stack.back();
        if (it == adj[node].end()) {
          color[node] = kBlack;
          path.pop_back();
          stack.pop_back();
          continue;
        }
        const std::size_t next = *it++;
        if (color[next] == kGray) {
          // Witness: the path suffix from `next` to the current node.
          std::size_t start = 0;
          while (path[start] != next) ++start;
          cycle.assign(path.begin() + std::ptrdiff_t(start), path.end());
          return true;
        }
        if (color[next] == kWhite) {
          color[next] = kGray;
          path.push_back(next);
          stack.emplace_back(next, adj[next].begin());
        }
      }
    }
    return false;
  }

  std::vector<std::set<std::size_t>> adj;
};

std::size_t channel_id(const topo::Topology& topo, NodeId from, Port port,
                       int vc, int num_vcs) {
  return (std::size_t(from) * std::size_t(topo.num_ports()) +
          std::size_t(port)) *
             std::size_t(num_vcs) +
         std::size_t(vc);
}

void decode_channel(const topo::Topology& topo, std::size_t cid, int num_vcs,
                    NodeId& from, Port& port, int& vc) {
  vc = int(cid % std::size_t(num_vcs));
  const std::size_t link = cid / std::size_t(num_vcs);
  port = Port(link % std::size_t(topo.num_ports()));
  from = NodeId(link / std::size_t(topo.num_ports()));
}

std::vector<std::string> name_cycle(const topo::Topology& topo,
                                    const std::vector<std::size_t>& cycle,
                                    int num_vcs) {
  std::vector<std::string> names;
  names.reserve(cycle.size());
  for (const std::size_t cid : cycle) {
    NodeId from = 0;
    Port port = 0;
    int vc = 0;
    decode_channel(topo, cid, num_vcs, from, port, vc);
    names.push_back(channel_name(topo, from, port, vc, num_vcs));
  }
  return names;
}

CdgResult finalize(const topo::Topology& topo, const DepGraph& graph,
                   std::size_t channels, int num_vcs) {
  CdgResult result;
  result.channels = channels;
  result.dependencies = graph.edges();
  std::vector<std::size_t> cycle;
  result.cyclic = graph.find_cycle(cycle);
  if (result.cyclic) result.cycle = name_cycle(topo, cycle, num_vcs);
  return result;
}

}  // namespace

std::string channel_name(const topo::Topology& topo, NodeId from, Port port,
                         int vc, int num_vcs) {
  std::ostringstream os;
  const auto to = topo.neighbor(from, port);
  os << from << "->" << (to ? std::to_string(*to) : std::string("?"));
  if (num_vcs > 1) os << "/vc" << vc;
  return os.str();
}

CdgResult build_cdg(const topo::Topology& topo, const route::Router& router,
                    bool include_fallbacks) {
  const NodeId n = topo.num_nodes();
  const std::size_t ports = std::size_t(topo.num_ports());
  const std::size_t channels = std::size_t(n) * ports;
  DepGraph graph(channels);

  // Count only channels over real links (mesh boundaries have port slots
  // with no neighbor).
  std::size_t real_channels = 0;
  for (NodeId from = 0; from < n; ++from) {
    for (Port p = 0; p < topo.num_ports(); ++p) {
      if (topo.neighbor(from, p)) ++real_channels;
    }
  }

  // Reachable-state BFS over (occupied channel, destination).
  std::vector<char> visited(channels * std::size_t(n), 0);
  std::deque<std::pair<std::size_t, NodeId>> queue;

  const auto requests = [&](NodeId current, NodeId dest,
                            Port arrived_on) -> route::PortList {
    route::PortList out = router.candidates(current, dest, arrived_on);
    if (include_fallbacks) {
      for (const Port p : router.fallback_candidates(current, dest, arrived_on))
        out.push_back(p);
    }
    return out;
  };

  const auto push_state = [&](std::size_t chan, NodeId dest) {
    const std::size_t state = chan * std::size_t(n) + std::size_t(dest);
    if (visited[state]) return;
    visited[state] = 1;
    queue.emplace_back(chan, dest);
  };

  // Seeds: a packet injected at src toward dest occupies no channel yet, so
  // injection contributes start states but no dependency edges.
  for (NodeId src = 0; src < n; ++src) {
    for (NodeId dest = 0; dest < n; ++dest) {
      if (src == dest) continue;
      for (const Port p : requests(src, dest, route::kLocalPort)) {
        if (!topo.neighbor(src, p)) continue;
        push_state(channel_id(topo, src, p, 0, 1), dest);
      }
    }
  }

  while (!queue.empty()) {
    const auto [chan, dest] = queue.front();
    queue.pop_front();
    NodeId prev = 0;
    Port in_port = 0;
    int vc = 0;
    decode_channel(topo, chan, 1, prev, in_port, vc);
    const auto current_opt = topo.neighbor(prev, in_port);
    DDPM_CHECK(current_opt.has_value(), "CDG state over a nonexistent link");
    const NodeId current = *current_opt;
    if (current == dest) continue;  // channel drains at the destination
    const auto arrived_opt = topo.port_to(current, prev);
    DDPM_CHECK(arrived_opt.has_value(), "asymmetric link in CDG walk");
    for (const Port p : requests(current, dest, *arrived_opt)) {
      if (!topo.neighbor(current, p)) continue;
      const std::size_t next_chan = channel_id(topo, current, p, 0, 1);
      graph.add(chan, next_chan);
      push_state(next_chan, dest);
    }
  }

  CdgResult result = finalize(topo, graph, real_channels, 1);
  return result;
}

CdgResult build_escape_cdg(const topo::Topology& topo) {
  const route::DimensionOrderRouter dor(topo);
  if (topo.kind() != topo::TopologyKind::kTorus) {
    // Mesh / hypercube escape layer is plain dimension-order on one VC.
    return build_cdg(topo, dor, /*include_fallbacks=*/false);
  }

  // Torus: two dateline VCs per ring. Walk every (src, dst) dimension-order
  // path; a hop is labeled with the packet's current VC class, and crossing
  // a ring's wrap link moves the packet to class 1 for the rest of that
  // dimension (class resets to 0 when dimension-order advances to the next
  // dimension). This is the wormhole substrate's escape discipline.
  const int kVcs = 2;
  const NodeId n = topo.num_nodes();
  const std::size_t channels = std::size_t(n) *
                               std::size_t(topo.num_ports()) *
                               std::size_t(kVcs);
  DepGraph graph(channels);
  std::size_t real_channels = 0;
  for (NodeId from = 0; from < n; ++from) {
    for (Port p = 0; p < topo.num_ports(); ++p) {
      if (topo.neighbor(from, p)) real_channels += std::size_t(kVcs);
    }
  }

  for (NodeId src = 0; src < n; ++src) {
    for (NodeId dst = 0; dst < n; ++dst) {
      if (src == dst) continue;
      NodeId current = src;
      int vc = 0;
      std::size_t current_dim = std::size_t(-1);
      bool have_prev = false;
      std::size_t prev_chan = 0;
      int hops = 0;
      while (current != dst) {
        DDPM_CHECK(++hops <= topo.diameter() + 1,
                   "dimension-order walk exceeded the diameter");
        const auto cands = dor.candidates(current, dst, route::kLocalPort);
        DDPM_CHECK(!cands.empty(), "dimension-order returned no port");
        const Port p = cands.front();
        const auto next_opt = topo.neighbor(current, p);
        DDPM_CHECK(next_opt.has_value(), "dimension-order port has no link");
        const NodeId next = *next_opt;
        const std::size_t dim = std::size_t(p) / 2;
        if (dim != current_dim) {
          current_dim = dim;
          vc = 0;
        }
        const std::size_t chan = channel_id(topo, current, p, vc, kVcs);
        if (have_prev) graph.add(prev_chan, chan);
        // Wrap detection: a positive-direction hop that decreases the
        // coordinate (or negative-direction that increases it) crossed the
        // dateline between k-1 and 0.
        const topo::Coord a = topo.coord_of(current);
        const topo::Coord b = topo.coord_of(next);
        const int dir = (p % 2 == 0) ? -1 : +1;
        const bool wrap =
            (dir > 0 && b[dim] < a[dim]) || (dir < 0 && b[dim] > a[dim]);
        if (wrap) vc = 1;
        prev_chan = chan;
        have_prev = true;
        current = next;
      }
    }
  }
  return finalize(topo, graph, real_channels, kVcs);
}

}  // namespace ddpm::verify
