// Channel-dependency-graph deadlock verifier (Dally & Seitz, docs/VERIFICATION.md).
//
// A channel is a directed link (node, port). A dependency a -> b exists
// when a packet that occupies channel a can request channel b as its next
// hop. On a blocking substrate, routing is deadlock-free iff this graph is
// acyclic. The builder here enumerates only *reachable* dependencies: it
// runs a BFS over (occupied channel, destination) states seeded at
// injection, querying the router for each state — the naive all-states
// closure would count 180-degree reversals no packet can perform and
// wrongly convict dimension-order routing.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "routing/router.hpp"
#include "topology/topology.hpp"

namespace ddpm::verify {

struct CdgResult {
  std::size_t channels = 0;      ///< directed channels (incl. VC split)
  std::size_t dependencies = 0;  ///< distinct reachable dependency edges
  bool cyclic = false;
  std::vector<std::string> cycle;  ///< witness: channel names along a cycle
};

/// Builds and cycle-checks the reachable CDG of `router` on `topo`.
/// `include_fallbacks` adds misroute (fallback) candidates to every
/// state's request set — the conservative closure for adaptive routers
/// whose fallbacks fire under congestion.
CdgResult build_cdg(const topo::Topology& topo, const route::Router& router,
                    bool include_fallbacks = true);

/// Builds and cycle-checks the CDG of the escape subnetwork a blocking
/// substrate provides for `topo`: dimension-order routing, with each torus
/// wrap ring split across two dateline virtual channels (packets move to
/// the second class after crossing the wrap link — the wormhole
/// substrate's discipline). Acyclic here + unrestricted fallback to the
/// escape layer is Duato's deadlock-freedom criterion for the adaptive
/// combos.
CdgResult build_escape_cdg(const topo::Topology& topo);

/// Stable channel label for witnesses/JSON: "from->to" or "from->to/vc1".
std::string channel_name(const topo::Topology& topo, topo::NodeId from,
                         topo::Port port, int vc, int num_vcs);

}  // namespace ddpm::verify
