#include "verify/width_cert.hpp"

#include <sstream>
#include <stdexcept>
#include <string>

#include "marking/ddpm.hpp"
#include "marking/scalability.hpp"
#include "topology/factory.hpp"

namespace ddpm::verify {

namespace {

using mark::SchemeKind;

struct PinnedRow {
  const char* topology;
  const char* formula;
  const char* max_cluster;
  std::uint64_t max_nodes;
};

struct PinnedTable {
  const char* check;
  SchemeKind scheme;
  PinnedRow mesh;
  PinnedRow cube;
};

// The paper's Tables 1-3, transcribed verbatim (formula strings in the
// paper's notation, maxima as printed). The certifier recomputes every
// cell from marking/scalability and demands bit-for-bit equality.
constexpr PinnedTable kTables[] = {
    {"table1-simple-ppm",
     SchemeKind::kSimplePpm,
     {"n x n mesh, torus", "logn^2 + logn^2 + log2n", "8 x 8 (64 nodes)", 64},
     {"n-cube hypercube", "2log2^n + loglog2^n", "6-cube (64 nodes)", 64}},
    {"table2-bitdiff-ppm",
     SchemeKind::kBitDiffPpm,
     {"n x n mesh, torus", "logn^2 + loglogn^2 + log2n", "16 x 16 (256 nodes)",
      256},
     {"n-cube hypercube", "log2^n + 2loglog2^n", "8-cube (256 nodes)", 256}},
    {"table3-ddpm",
     SchemeKind::kDdpm,
     {"n x n mesh, torus", "2(logn + 1)", "128 x 128 (16384 nodes)", 16384},
     {"n-cube hypercube", "log2^n", "16-cube (65536 nodes)", 65536}},
};

WidthVerdict make_verdict(const std::string& check, const std::string& detail,
                          bool pass, const std::string& note = "") {
  WidthVerdict v;
  v.check = check;
  v.detail = detail;
  v.pass = pass;
  v.note = note;
  return v;
}

bool row_matches(const mark::ScalabilityRow& got, const PinnedRow& want,
                 std::string& note) {
  if (got.topology != want.topology || got.formula != want.formula ||
      got.max_cluster != want.max_cluster || got.max_nodes != want.max_nodes) {
    note = "computed \"" + got.formula + "\" / \"" + got.max_cluster +
           "\" differs from the paper's row";
    return false;
  }
  return true;
}

WidthVerdict check_table(const PinnedTable& table) {
  const auto rows = mark::scalability_table(table.scheme);
  std::string note;
  bool pass = rows.size() == 2;
  if (!pass) note = "expected one mesh row and one hypercube row";
  pass = pass && row_matches(rows[0], table.mesh, note);
  pass = pass && row_matches(rows[1], table.cube, note);
  return make_verdict(table.check,
                      to_string(table.scheme) +
                          " scalability row vs the paper's printed table",
                      pass, note);
}

WidthVerdict check_codec_vs_mesh2d() {
  std::string note;
  bool pass = true;
  for (const int n : {2, 3, 4, 5, 7, 8, 9, 16, 27, 32, 100, 128}) {
    const std::string side = std::to_string(n);
    for (const char* kind : {"mesh", "torus"}) {
      if (std::string(kind) == "torus" && n < 3) continue;  // min radix 3
      const auto topo = topo::make_topology(std::string(kind) + ":" + side +
                                            "x" + side);
      const int codec = mark::DdpmCodec::required_bits(*topo);
      const int table = mark::required_bits_mesh2d(SchemeKind::kDdpm, n);
      if (codec != table) {
        std::ostringstream os;
        os << kind << ":" << n << "x" << n << " codec needs " << codec
           << " bits, Table 3 formula says " << table;
        note = os.str();
        pass = false;
      }
    }
  }
  return make_verdict("ddpm-codec-vs-table3-mesh2d",
                      "DdpmCodec::required_bits == 2(logn + 1) on n x n "
                      "mesh/torus, n in {2..128}",
                      pass, note);
}

WidthVerdict check_codec_vs_hypercube() {
  std::string note;
  bool pass = true;
  for (int n = 1; n <= 16; ++n) {
    const auto topo = topo::make_topology("hypercube:" + std::to_string(n));
    const int codec = mark::DdpmCodec::required_bits(*topo);
    if (codec != n ||
        codec != mark::required_bits_hypercube(SchemeKind::kDdpm, n)) {
      note = "hypercube:" + std::to_string(n) + " codec needs " +
             std::to_string(codec) + " bits, Table 3 says n";
      pass = false;
    }
  }
  return make_verdict("ddpm-codec-vs-table3-hypercube",
                      "DdpmCodec::required_bits == n on the n-cube, n in "
                      "{1..16}",
                      pass, note);
}

WidthVerdict check_slice_layout() {
  std::string note;
  bool pass = true;
  for (const char* spec : {"mesh:4x4", "mesh:8x8", "torus:5x5", "torus:8x8",
                           "mesh:3x3x3x3", "torus:8x8x8x8", "hypercube:4",
                           "hypercube:16", "mesh:128x128"}) {
    const auto topo = topo::make_topology(spec);
    const mark::DdpmCodec codec(*topo);
    unsigned offset = 0;
    for (std::size_t d = 0; d < codec.num_dims() && pass; ++d) {
      const pkt::FieldSlice slice = codec.slice(d);
      if (!slice.valid() || slice.offset != offset) {
        note = std::string(spec) + ": slice " + std::to_string(d) +
               " is not contiguous from bit 0";
        pass = false;
      }
      offset += slice.width;
    }
    if (pass && int(offset) != mark::DdpmCodec::required_bits(*topo)) {
      note = std::string(spec) + ": slice widths do not sum to required_bits";
      pass = false;
    }
    if (pass && offset > 16) {
      note = std::string(spec) + ": layout exceeds the 16-bit field";
      pass = false;
    }
    if (!pass) break;
    // Extremes round-trip: the widest legal displacement each way.
    const bool cube = topo->kind() == topo::TopologyKind::kHypercube;
    topo::Coord hi(topo->num_dims());
    topo::Coord lo(topo->num_dims());
    for (std::size_t d = 0; d < topo->num_dims(); ++d) {
      hi[d] = topo::Coord::value_type(cube ? 1 : topo->dim_size(d) - 1);
      lo[d] = topo::Coord::value_type(cube ? 0 : -(topo->dim_size(d) - 1));
    }
    if (codec.decode(codec.encode(hi)) != hi ||
        codec.decode(codec.encode(lo)) != lo) {
      note = std::string(spec) + ": extreme displacement does not round-trip";
      pass = false;
      break;
    }
  }
  return make_verdict("ddpm-slice-layout",
                      "per-dimension slices contiguous, widths sum to "
                      "required_bits, extremes round-trip",
                      pass, note);
}

/// True iff constructing the codec on `spec` throws std::invalid_argument.
bool codec_rejects(const std::string& spec) {
  const auto topo = topo::make_topology(spec);
  try {
    const mark::DdpmCodec codec(*topo);
  } catch (const std::invalid_argument&) {
    return true;
  }
  return false;
}

WidthVerdict check_factory_overflow() {
  std::string note;
  bool pass = true;
  // 2-D meshes and tori across the Table 3 boundary (128 fits, 129 does
  // not): fits() must agree with required_bits and the constructor.
  for (int n = 2; n <= 200 && pass; ++n) {
    for (const char* kind : {"mesh", "torus"}) {
      if (std::string(kind) == "torus" && n < 3) continue;
      const std::string spec =
          std::string(kind) + ":" + std::to_string(n) + "x" + std::to_string(n);
      const auto topo = topo::make_topology(spec);
      const bool fits = mark::DdpmCodec::fits(*topo);
      if (fits != (mark::DdpmCodec::required_bits(*topo) <= 16) ||
          fits == codec_rejects(spec)) {
        note = spec + ": fits()/required_bits/constructor disagree";
        pass = false;
      }
      if (n == 128 && !fits) {
        note = spec + " must fit (Table 3 maximum)";
        pass = false;
      }
      if (n == 129 && fits) {
        note = spec + " must overflow the 16-bit field";
        pass = false;
      }
    }
  }
  // Hypercubes: every factory-constructible dimension (1..16) fits; 17 is
  // already rejected by the topology factory itself.
  for (int n = 1; n <= 16 && pass; ++n) {
    const std::string spec = "hypercube:" + std::to_string(n);
    if (!mark::DdpmCodec::fits(*topo::make_topology(spec)) ||
        codec_rejects(spec)) {
      note = spec + " must fit the 16-bit field";
      pass = false;
    }
  }
  if (pass) {
    bool threw = false;
    try {
      (void)topo::make_topology("hypercube:17");
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    if (!threw) {
      note = "hypercube:17 must be rejected by the topology factory";
      pass = false;
    }
  }
  // Multi-dimensional spot checks across the boundary.
  if (pass && (codec_rejects("mesh:8x8x8x8") ||        // 4*(3+1) = 16: fits
               codec_rejects("torus:8x8x8x8") ||       // same budget
               !codec_rejects("mesh:9x9x9x9") ||       // 4*(4+1) = 20: over
               !codec_rejects("torus:9x9x9x9"))) {
    note = "4-D boundary: 8^4 must fit, 9^4 must overflow";
    pass = false;
  }
  return make_verdict("factory-overflow",
                      "every constructible topology either fits 16 bits or "
                      "the codec rejects it",
                      pass, note);
}

WidthVerdict check_paper_maxima() {
  struct Maxima {
    SchemeKind scheme;
    int mesh_pow2, mesh_exact, cube;
  };
  constexpr Maxima kMaxima[] = {
      {SchemeKind::kSimplePpm, 8, 8, 6},
      {SchemeKind::kBitDiffPpm, 16, 16, 8},
      {SchemeKind::kDdpm, 128, 128, 16},
  };
  std::string note;
  bool pass = true;
  for (const Maxima& m : kMaxima) {
    if (mark::max_mesh2d_side(m.scheme) != m.mesh_pow2 ||
        mark::max_mesh2d_side_exact(m.scheme) != m.mesh_exact ||
        mark::max_hypercube_dim(m.scheme) != m.cube) {
      note = to_string(m.scheme) + " maxima differ from the paper";
      pass = false;
    }
  }
  return make_verdict("paper-maxima-exact",
                      "largest-fitting sides/dimensions match Tables 1-3 "
                      "(incl. exact non-power-of-two sides)",
                      pass, note);
}

}  // namespace

std::vector<WidthVerdict> certify_widths() {
  std::vector<WidthVerdict> out;
  for (const PinnedTable& table : kTables) out.push_back(check_table(table));
  out.push_back(check_codec_vs_mesh2d());
  out.push_back(check_codec_vs_hypercube());
  out.push_back(check_slice_layout());
  out.push_back(check_factory_overflow());
  out.push_back(check_paper_maxima());
  return out;
}

}  // namespace ddpm::verify
