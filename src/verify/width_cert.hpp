// Field-width certifier (docs/VERIFICATION.md).
//
// Recomputes the paper's Tables 1-3 bit budgets from marking/scalability
// and pins them against the exact published numbers, then cross-checks the
// DDPM formula rows against the bit layout the real DdpmCodec builds:
// per-dimension slice widths, contiguity, totals, and — the check the
// others exist to protect — that every factory-constructible topology
// either fits the 16-bit Marking Field or is rejected by the codec before
// a truncated mark can ever be emitted.
#pragma once

#include "verify/verdict.hpp"

#include <vector>

namespace ddpm::verify {

/// Runs every width-certification check; one verdict per check id.
std::vector<WidthVerdict> certify_widths();

}  // namespace ddpm::verify
