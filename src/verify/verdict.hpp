// Verdict model for the static design-space verifier (docs/VERIFICATION.md).
//
// Each checker in src/verify fills typed verdict rows; the Report
// aggregates them and renders deterministic JSON (the `verify` CI job
// diffs it against tools/ddpm_verify_baseline.json, ratchet-style) and a
// Markdown table (pasted into EXPERIMENTS.md "Verified configurations").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ddpm::verify {

/// One Topology x Router factory combo's channel-dependency-graph verdict.
struct CdgVerdict {
  std::string topology;  ///< topology spec, e.g. "torus:4x4"
  std::string router;    ///< factory name, e.g. "adaptive"
  bool supported = false;  ///< false when the factory rejects the combo
  std::string declared;    ///< declared deadlock class (routing/deadlock.hpp)
  std::size_t channels = 0;      ///< directed channels in the graph
  std::size_t dependencies = 0;  ///< distinct reachable dependency edges
  bool cyclic = false;           ///< computed CDG has a cycle
  bool escape_acyclic = false;   ///< escape subnetwork CDG proven acyclic
  std::vector<std::string> cycle;  ///< witness cycle (channel names), if any
  bool pass = false;  ///< declaration consistent with the computed graph
  std::string note;
};

/// One topology's marking-invariant verdict: V == D - S (or D ^ S) at
/// every path prefix, for every enumerated/sampled route.
struct InvariantVerdict {
  std::string topology;
  bool exhaustive_pairs = false;  ///< all (S, D) pairs enumerated
  std::uint64_t pairs = 0;        ///< (S, D) pairs checked
  std::uint64_t paths = 0;        ///< routes walked (minimal + perturbed)
  std::uint64_t hops = 0;         ///< per-hop prefix assertions
  std::uint64_t truncated_pairs = 0;  ///< pairs whose path set hit the cap
  bool codec_roundtrip = false;   ///< decode(encode(v)) == v over the domain
  bool holds = false;             ///< the telescoping invariant held
  bool pass = false;
  std::string note;
};

/// One topology's identification-injectivity verdict: for a fixed victim D
/// no two sources share a marking-field value.
struct InjectivityVerdict {
  std::string topology;
  std::uint64_t destinations = 0;
  std::uint64_t sources = 0;  ///< sources checked per destination
  bool exhaustive = false;
  bool injective = false;
  bool pass = false;
  std::string note;
};

/// One field-width certification check (Tables 1-3 cross-checks, codec
/// layout audit, factory overflow scan).
struct WidthVerdict {
  std::string check;   ///< stable check id, e.g. "table3-ddpm"
  std::string detail;  ///< what was compared
  bool pass = false;
  std::string note;
};

/// One bounded model-checking configuration's verdict: the VC/credit
/// protocol properties proven (or convicted) over the exhaustively
/// enumerated reachable states of a small fabric (src/verify/model).
struct ModelVerdict {
  std::string topology;  ///< topology spec, e.g. "mesh:2x2"
  std::string router;    ///< factory name, e.g. "adaptive"
  int vcs = 0;           ///< total VCs (escape + adaptive)
  int depth = 0;         ///< per-(port, VC) credit depth
  int packets = 0;       ///< injection budget K
  int flits_per_packet = 0;
  std::uint64_t pairs = 0;  ///< (src, dst) pairs in the injection alphabet
  bool symmetry = false;    ///< explored under the symmetry quotient
  std::uint64_t states = 0;
  std::uint64_t transitions = 0;
  bool complete = false;  ///< reachable space closed under max_states
  bool credit_conservation = false;
  bool no_overflow = false;
  bool no_loss = false;          ///< no flit loss or duplication
  bool escape_reachable = false;
  bool bounded_progress = false;  ///< every step chain drains
  std::string violated;  ///< first violated property id ("" = none)
  std::uint64_t witness_events = 0;  ///< conviction witness length
  /// "" (no conviction), "reproduced", "not-reproduced" (abstraction
  /// unsound), or "unavailable".
  std::string witness_replay;
  bool pass = false;
  std::string note;
};

struct Report {
  std::vector<CdgVerdict> cdg;
  std::vector<InvariantVerdict> invariant;
  std::vector<InjectivityVerdict> injectivity;
  std::vector<WidthVerdict> width;
  std::vector<ModelVerdict> model;

  bool all_pass() const noexcept;
  std::size_t rows() const noexcept;
  std::size_t failures() const noexcept;

  /// Deterministic machine-readable form (the CI artifact).
  std::string to_json() const;
  /// Markdown verdict tables (EXPERIMENTS.md "Verified configurations").
  std::string to_markdown() const;
};

}  // namespace ddpm::verify
