// Abstract stepping model of the wormhole VC/credit protocol.
//
// ProtoModel is the bounded model checker's transition system: a pure-state
// re-statement of the WormholeNetwork reference engine's cycle semantics
// (src/wormhole/wormhole.cpp, "Reference engine") over a small topology,
// router, VC count, and credit depth. Nothing here simulates performance —
// a ModelState is exactly the protocol-relevant projection (buffer
// contents, VC allocations, credit counters, round-robin pointers), and
// step()/inject() are the only transitions. The fidelity contract is
// lockstep equality with the real network's DDPM_MODEL snapshot_protocol()
// projection after every event (tests/test_model_checker.cpp drives both
// on shared schedules), which is what entitles the explorer's verdicts to
// speak about the production engine, and what witness replay re-checks on
// every conviction (docs/VERIFICATION.md, "Bounded protocol model
// checking").
//
// The ModelMutation knob mirrors the DDPM_MODEL_MUTATION hooks compiled
// into the real engines (src/core/model_hooks.hpp): the same three seeded
// bugs exist at the same protocol points, so a conviction found here has a
// concrete counterpart to reproduce on replay.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/model_hooks.hpp"
#include "routing/port_list.hpp"
#include "routing/router.hpp"
#include "topology/topology.hpp"

namespace ddpm::verify::model {

using topo::NodeId;
using topo::Port;

/// One bounded-exploration configuration: the small fabric, the injection
/// alphabet, and the exploration budget.
struct ModelOptions {
  std::string topology = "mesh:2x2";  ///< topo::make_topology spec
  std::string router = "dor";         ///< route::make_router factory name
  int adaptive_vcs = 1;               ///< VCs beyond the escape layer
  int buffer_flits = 1;               ///< per-(port, VC) credit depth
  int packets = 2;                    ///< total injection budget K
  int flits_per_packet = 2;           ///< flits per injected packet (>= 2)
  /// Ordered (src, dst) pairs the inject action may use; empty = every
  /// ordered pair of distinct nodes. Restricting the alphabet is how the
  /// larger configurations stay exhaustively closable.
  std::vector<std::pair<int, int>> allowed_pairs;
  std::uint64_t max_states = 400000;  ///< exploration cap (completeness gate)
  /// Quotient the search by the validated symmetry group
  /// (verify/model/symmetry.hpp). Heuristic speedup: group elements are
  /// structurally filtered but intra-cycle ordering is not modded out, so
  /// proofs default to the full space and the parity test pins agreement.
  bool use_symmetry = false;
  bool disable_escape = false;  ///< negative control (drops the escape layer)
  core::ModelMutation mutation = core::ModelMutation::kNone;
};

/// One buffered flit. `dest` stands in for the packet (all protocol
/// decisions the engines make per flit depend only on the destination and
/// the head/tail flags); `cls` is the torus dateline escape class, updated
/// on head flits at allocation exactly as the real engine does.
struct ModelFlit {
  std::uint8_t dest = 0;
  bool head = false;
  bool tail = false;
  std::uint8_t cls = 0;
};

/// Full protocol state between cycles. Flat layouts match the real
/// network: input units as node * (P+1) * V + port * V + vc (port P =
/// injection), output VCs as node * P * V + port * V + vc.
struct ModelState {
  std::vector<std::vector<ModelFlit>> queue;  ///< one FIFO per input unit
  std::vector<std::uint8_t> active;           ///< input unit holds an output VC
  std::vector<std::int8_t> out_port;          ///< claimed output port (-1 none)
  std::vector<std::int8_t> out_vc;            ///< claimed output VC (-1 none)
  std::vector<std::int8_t> credits;           ///< credit counter per output VC
  std::vector<std::uint8_t> allocated;        ///< allocation flag per output VC
  std::vector<std::uint8_t> rr;               ///< round-robin unit pointer per
                                              ///< (node, output port)
  std::uint32_t injected = 0;                 ///< packets injected so far
  std::uint32_t delivered = 0;  ///< packets delivered (not encoded; derived)
  std::uint64_t flits = 0;      ///< flits in flight (= sum of queue sizes)
};

/// The model-side analogue of wormhole::ProtocolSnapshot, for the lockstep
/// differential test (same indexing, engine-agnostic).
struct ModelProjection {
  std::vector<std::uint32_t> occupancy;
  std::vector<std::int32_t> credits;
  std::vector<std::uint8_t> allocated;
  std::uint64_t flits_in_flight = 0;
  std::uint64_t delivered = 0;
};

class ProtoModel {
 public:
  /// Builds the topology, router, and flat link/candidate tables. Throws
  /// std::invalid_argument when the factories reject the combo.
  explicit ProtoModel(const ModelOptions& opt);

  const ModelOptions& options() const noexcept { return opt_; }
  int nodes() const noexcept { return nodes_; }
  int ports() const noexcept { return ports_; }
  int vcs() const noexcept { return vcs_; }
  int escape_vcs() const noexcept { return escape_vcs_; }
  int depth() const noexcept { return opt_.buffer_flits; }
  int in_units() const noexcept { return (ports_ + 1) * vcs_; }
  int out_units() const noexcept { return ports_ * vcs_; }
  const topo::Topology& topology() const noexcept { return *topo_; }

  /// The injection alphabet actually in force (allowed_pairs or the full
  /// ordered-pair set), in deterministic order.
  const std::vector<std::pair<int, int>>& pairs() const noexcept {
    return pairs_;
  }

  ModelState initial() const;

  /// Queues one packet (flits_per_packet flits) at src's injection unit.
  void inject(ModelState& s, int src, int dst) const;

  /// Advances one full cycle with the reference engine's exact semantics:
  /// ascending node sweep, VC-allocation/ejection pass, one-flit-per-
  /// output-port switch traversal with intra-sweep credit return, then the
  /// staged arrivals land.
  void step(ModelState& s) const;

  /// Between-cycles safety properties: flit accounting (no loss or
  /// duplication), buffer occupancy <= depth, and per-link/VC credit
  /// conservation. On violation fills `property` with the stable id
  /// ("no-loss", "no-overflow", "credit-conservation") and `why` with the
  /// concrete site.
  bool check_safety(const ModelState& s, std::string* property,
                    std::string* why) const;

  /// Structural escape-layer proof: from every node the escape (DOR) next-
  /// hop chain reaches every destination in finitely many hops. Vacuously
  /// true when the escape layer is disabled.
  bool check_escape_reach(std::string* why) const;

  /// Deterministic byte encoding of the dedup-relevant state (queues,
  /// allocations, credits, rr pointers, injection count). `delivered` and
  /// `flits` are derivable and excluded.
  std::string encode_state(const ModelState& s) const;
  ModelState decode_state(const std::string& bytes) const;

  ModelProjection project(const ModelState& s) const;

  // Flat tables, exposed for the symmetry-group validator.
  NodeId link_neighbor(NodeId n, Port p) const noexcept {
    return neighbor_[std::size_t(n) * std::size_t(ports_) + std::size_t(p)];
  }
  Port link_reverse(NodeId n, Port p) const noexcept {
    return reverse_port_[std::size_t(n) * std::size_t(ports_) +
                         std::size_t(p)];
  }
  bool link_wrap(NodeId n, Port p) const noexcept {
    return wrap_link_[std::size_t(n) * std::size_t(ports_) +
                      std::size_t(p)] != 0;
  }
  /// Adaptive candidates for (node, dest, arrived_on); arrived_on may be
  /// route::kLocalPort.
  const route::PortList& cand(NodeId n, NodeId d, Port arrived_on) const;
  Port escape_port(NodeId n, NodeId d) const noexcept {
    return escape_port_[std::size_t(n) * std::size_t(nodes_) +
                        std::size_t(d)];
  }

 private:
  int unit_of(int port, int vc) const noexcept { return port * vcs_ + vc; }
  bool mut(core::ModelMutation m) const noexcept { return opt_.mutation == m; }

  void restore_credit(ModelState& s, NodeId node, int in_port,
                     int in_vc) const;
  bool try_allocate(ModelState& s, NodeId node, int in_port, int unit) const;
  /// Consumes buffered flits of the packet being ejected (until the tail or
  /// the buffer empties); returns the number consumed.
  std::size_t drain_ejection(ModelState& s, NodeId node, int unit) const;

  ModelOptions opt_;
  std::unique_ptr<topo::Topology> topo_;
  std::unique_ptr<route::Router> router_;
  std::unique_ptr<route::Router> escape_router_;
  int nodes_ = 0;
  int ports_ = 0;
  int vcs_ = 0;
  int escape_vcs_ = 0;
  std::vector<NodeId> neighbor_;        // N * P
  std::vector<Port> reverse_port_;      // N * P
  std::vector<std::uint8_t> wrap_link_; // N * P
  std::vector<Port> escape_port_;       // N * N
  std::vector<route::PortList> cand_;   // N * N * (P + 1), arrival-indexed
  std::vector<std::pair<int, int>> pairs_;
};

}  // namespace ddpm::verify::model
