// Symmetry reduction for the bounded protocol model checker.
//
// Candidate automorphisms are generated from the topology's geometry —
// per-dimension coordinate reflections on mesh/torus (port map swaps the
// +/- direction pair of each reflected dimension), per-dimension bit
// complements on the hypercube (port map is the identity) — and then
// STRUCTURALLY FILTERED: an element survives only if it commutes with the
// link tables (neighbor/reverse/wrap), maps every escape next-hop
// consistently, preserves the router's candidate sets, and fixes the
// injection-pair alphabet. What the filter does not (cannot cheaply) mod
// out is intra-cycle ordering: the engines sweep nodes and candidate ports
// in index order, so tie-breaking under a surviving permutation may still
// diverge. The quotient is therefore a heuristic: proofs run on the full
// space by default (ModelOptions::use_symmetry = false), the symmetry
// parity test pins verdict agreement empirically, and any conviction found
// under the quotient is re-explored unreduced before a witness is emitted
// (verify/model/explore.cpp). docs/VERIFICATION.md spells out the
// contract.
#pragma once

#include <string>
#include <vector>

#include "verify/model/proto_model.hpp"

namespace ddpm::verify::model {

/// One symmetry: a node relabeling plus the matching physical-port
/// relabeling (the injection port always maps to itself).
struct SymElem {
  std::vector<int> node_map;  ///< size N
  std::vector<int> port_map;  ///< size P
};

class SymmetryGroup {
 public:
  /// Generates and validates the group for `m`'s topology. Always contains
  /// at least the identity.
  explicit SymmetryGroup(const ProtoModel& m);

  std::size_t size() const noexcept { return elems_.size(); }
  const std::vector<SymElem>& elements() const noexcept { return elems_; }

  /// Image of `s` under `e` (states, queues, allocations, credits, and
  /// round-robin pointers all relabeled).
  ModelState apply(const ProtoModel& m, const ModelState& s,
                   const SymElem& e) const;

  /// Lexicographically smallest encoding over all group images — the
  /// quotient representative used for deduplication.
  std::string canonical(const ProtoModel& m, const ModelState& s) const;

 private:
  bool validates(const ProtoModel& m, const SymElem& e) const;

  std::vector<SymElem> elems_;
};

}  // namespace ddpm::verify::model
