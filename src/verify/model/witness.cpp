#include "verify/model/witness.hpp"

#include <sstream>

#include "core/model_hooks.hpp"

namespace ddpm::verify::model {

namespace {

void json_escape(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

}  // namespace

const char* mutation_name(int mutation) {
  switch (core::ModelMutation(mutation)) {
    case core::ModelMutation::kNone:
      return "none";
    case core::ModelMutation::kDropCreditReturn:
      return "drop-credit-return";
    case core::ModelMutation::kBufferOffByOne:
      return "buffer-off-by-one";
    case core::ModelMutation::kSkipEscapeFallback:
      return "skip-escape-fallback";
  }
  return "unknown";
}

std::string ModelWitness::to_json() const {
  std::ostringstream os;
  os << "{\n  \"topology\": \"";
  json_escape(os, topology);
  os << "\",\n  \"router\": \"";
  json_escape(os, router);
  os << "\",\n  \"adaptive_vcs\": " << adaptive_vcs
     << ",\n  \"buffer_flits\": " << buffer_flits
     << ",\n  \"flits_per_packet\": " << flits_per_packet
     << ",\n  \"disable_escape\": " << (disable_escape ? "true" : "false")
     << ",\n  \"mutation\": \"";
  json_escape(os, mutation);
  os << "\",\n  \"property\": \"";
  json_escape(os, property);
  os << "\",\n  \"progress_kind\": \"";
  json_escape(os, progress_kind);
  os << "\",\n  \"detail\": \"";
  json_escape(os, detail);
  os << "\",\n  \"events\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    os << (i ? ", " : "") << '"';
    json_escape(os, events[i]);
    os << '"';
  }
  os << "]\n}\n";
  return os.str();
}

}  // namespace ddpm::verify::model
