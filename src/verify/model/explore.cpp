#include "verify/model/explore.hpp"

#include <memory>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "core/check.hpp"
#include "verify/model/symmetry.hpp"

namespace ddpm::verify::model {

namespace {

constexpr std::uint32_t kNone = 0xffffffffu;

/// Per-state bookkeeping. `action` encodes the edge from `parent`:
/// 0 = step, 1 + i = inject pairs()[i].
struct Rec {
  std::uint32_t parent = kNone;
  std::uint32_t action = 0;
  std::uint32_t step_succ = kNone;
  std::uint8_t delivered = 0;  // not in the encoding; re-attached on decode
  std::uint8_t injected = 0;
  bool has_flits = false;
};

struct Search {
  const ProtoModel& model;
  const SymmetryGroup* group;  // null = full space
  std::unordered_map<std::string, std::uint32_t> canon_ids;
  std::vector<const std::string*> by_id;
  std::vector<Rec> recs;
  ModelCheckResult* result;
  std::uint32_t convicted = kNone;

  std::string canon(const ModelState& s) const {
    return group != nullptr ? group->canonical(model, s) : model.encode_state(s);
  }

  /// Registers (or finds) the canonical image of `s`; runs the safety
  /// checks on first discovery. Returns the state id.
  std::uint32_t intern(const ModelState& s, std::uint32_t parent,
                       std::uint32_t action) {
    auto [it, inserted] = canon_ids.emplace(canon(s),
                                            std::uint32_t(recs.size()));
    if (!inserted) return it->second;
    const std::uint32_t id = it->second;
    by_id.push_back(&it->first);
    Rec rec;
    rec.parent = parent;
    rec.action = action;
    rec.delivered = std::uint8_t(s.delivered);
    rec.injected = std::uint8_t(s.injected);
    rec.has_flits = s.flits > 0;
    recs.push_back(rec);
    std::string property, why;
    if (convicted == kNone && !model.check_safety(s, &property, &why)) {
      convicted = id;
      result->violated = property;
      result->detail = why;
      if (property == "no-loss") result->ok_loss = false;
      if (property == "no-overflow") result->ok_overflow = false;
      if (property == "credit-conservation") result->ok_conservation = false;
    }
    return id;
  }

  ModelState decode_state(std::uint32_t id) const {
    ModelState s = model.decode_state(*by_id[id]);
    s.delivered = recs[id].delivered;
    return s;
  }

  /// Event path from the root to `id`, in execution order.
  std::vector<std::string> events_to(std::uint32_t id) const {
    std::vector<std::string> rev;
    for (std::uint32_t cur = id; recs[cur].parent != kNone;
         cur = recs[cur].parent) {
      const std::uint32_t action = recs[cur].action;
      if (action == 0) {
        rev.emplace_back("step");
      } else {
        const auto& [src, dst] = model.pairs()[action - 1];
        std::ostringstream os;
        os << "inject " << src << " " << dst;
        rev.push_back(os.str());
      }
    }
    return {rev.rbegin(), rev.rend()};
  }
};

/// Classifies every step-successor chain once the search is complete.
/// Returns the smallest-id stuck state (kNone when every chain drains) and
/// fills `kind` with "deadlock" or "livelock" for that state's cycle.
std::uint32_t classify_progress(const std::vector<Rec>& recs,
                                std::string* kind) {
  enum : std::uint8_t { kWhite = 0, kGray = 1, kDone = 2 };
  std::vector<std::uint8_t> color(recs.size(), kWhite);
  std::vector<std::uint8_t> stuck(recs.size(), 0);
  std::vector<std::string> stuck_kind(recs.size());
  std::uint32_t first_stuck = kNone;
  std::vector<std::uint32_t> path;
  for (std::uint32_t root = 0; root < recs.size(); ++root) {
    if (color[root] != kWhite) continue;
    path.clear();
    std::uint32_t cur = root;
    bool base_stuck = false;
    std::string base_kind;
    while (true) {
      if (!recs[cur].has_flits) break;  // drains (empty net is a fixpoint)
      if (color[cur] == kDone) {
        base_stuck = stuck[cur] != 0;
        base_kind = stuck_kind[cur];
        break;
      }
      if (color[cur] == kGray) {
        // `cur` is on the current path: the chain entered a step cycle.
        std::size_t pos = path.size();
        while (pos > 0 && path[pos - 1] != cur) --pos;
        --pos;  // path[pos] == cur; cycle = path[pos..end]
        base_stuck = true;
        // A one-state cycle means step(S) == S: a true deadlock fixpoint.
        base_kind = (path.size() - pos == 1) ? "deadlock" : "livelock";
        break;
      }
      color[cur] = kGray;
      path.push_back(cur);
      cur = recs[cur].step_succ;
      DDPM_CHECK(cur != kNone, "progress pass on incomplete search");
    }
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
      color[*it] = kDone;
      stuck[*it] = base_stuck ? 1 : 0;
      stuck_kind[*it] = base_kind;
      if (base_stuck && (first_stuck == kNone || *it < first_stuck)) {
        first_stuck = *it;
        *kind = base_kind;
      }
    }
  }
  if (first_stuck != kNone) *kind = stuck_kind[first_stuck];
  return first_stuck;
}

ModelCheckResult run_once(const ModelOptions& opt) {
  ModelCheckResult result;
  result.symmetry = opt.use_symmetry;
  ProtoModel model(opt);
  std::string escape_why;
  if (!model.check_escape_reach(&escape_why)) {
    result.ok_escape = false;
    result.violated = "escape-reachability";
    result.detail = escape_why;
  }
  std::unique_ptr<SymmetryGroup> group;
  if (opt.use_symmetry) group = std::make_unique<SymmetryGroup>(model);

  Search search{model, group.get(), {}, {}, {}, &result, kNone};
  search.intern(model.initial(), kNone, 0);

  bool truncated = false;
  std::uint32_t id = 0;
  for (; id < search.recs.size() && search.convicted == kNone; ++id) {
    if (search.recs.size() >= opt.max_states) {
      truncated = true;
      break;
    }
    const ModelState state = search.decode_state(id);
    {
      ModelState t = state;
      model.step(t);
      ++result.transitions;
      search.recs[id].step_succ = search.intern(t, id, 0);
    }
    if (search.convicted != kNone) break;
    if (std::uint32_t(state.injected) < std::uint32_t(opt.packets)) {
      for (std::size_t pi = 0; pi < model.pairs().size(); ++pi) {
        ModelState t = state;
        model.inject(t, model.pairs()[pi].first, model.pairs()[pi].second);
        ++result.transitions;
        search.intern(t, id, std::uint32_t(1 + pi));
        if (search.convicted != kNone) break;
      }
    }
  }
  result.states = search.recs.size();
  result.complete = !truncated && search.convicted == kNone &&
                    id >= search.recs.size();

  std::uint32_t witness_state = kNone;
  std::uint64_t extra_steps = 0;
  if (search.convicted != kNone) {
    witness_state = search.convicted;
  } else if (result.complete) {
    std::string kind;
    const std::uint32_t stuck = classify_progress(search.recs, &kind);
    if (stuck != kNone) {
      result.ok_progress = false;
      result.progress_kind = kind;
      if (result.violated.empty()) {
        result.violated = "bounded-progress";
        std::ostringstream os;
        os << kind << " reached after the witness prefix (step chain never "
           << "drains)";
        result.detail = os.str();
      }
      witness_state = stuck;
      // Append enough steps to demonstrably enter and tour the cycle.
      std::uint32_t cur = stuck;
      std::vector<std::uint8_t> seen(search.recs.size(), 0);
      while (seen[cur] == 0) {
        seen[cur] = 1;
        cur = search.recs[cur].step_succ;
        ++extra_steps;
      }
      extra_steps += 2;  // one extra lap entry plus slack
    }
  } else if (result.violated.empty()) {
    result.violated = "incomplete";
    std::ostringstream os;
    os << "state budget exhausted at " << result.states
       << " states; nothing proven";
    result.detail = os.str();
  }

  if (witness_state != kNone && group == nullptr) {
    // Quotient parent chains are only sound up to the group action; the
    // caller re-runs unreduced before emitting a witness.
    ModelWitness w;
    w.topology = opt.topology;
    w.router = opt.router;
    w.adaptive_vcs = opt.adaptive_vcs;
    w.buffer_flits = opt.buffer_flits;
    w.flits_per_packet = opt.flits_per_packet;
    w.disable_escape = opt.disable_escape;
    w.mutation = mutation_name(int(opt.mutation));
    w.property = result.violated;
    w.progress_kind = result.progress_kind;
    w.detail = result.detail;
    w.events = search.events_to(witness_state);
    for (std::uint64_t i = 0; i < extra_steps; ++i) {
      w.events.emplace_back("step");
    }
    result.witness = std::move(w);
    result.has_witness = true;
  }
  return result;
}

}  // namespace

ModelCheckResult check_model(const ModelOptions& opt) {
  ModelCheckResult result = run_once(opt);
  if (opt.use_symmetry && !result.all_ok()) {
    // Sound witnesses need exact parent chains: redo on the full space.
    ModelOptions full = opt;
    full.use_symmetry = false;
    ModelCheckResult exact = run_once(full);
    exact.note = "conviction under symmetry quotient; re-explored the full "
                 "space for the witness";
    return exact;
  }
  return result;
}

}  // namespace ddpm::verify::model
