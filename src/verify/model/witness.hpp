// Witness format for bounded model-checker convictions.
//
// A witness is a concrete, self-contained event sequence — "inject SRC
// DST" and "step" lines — that drives a fresh network (abstract model or
// real WormholeNetwork, they accept the same alphabet) from the empty
// initial state to the claimed violation. The replay harness
// (verify/model/replay.hpp) executes it on the production engine and
// reports whether the real failure reproduces; a witness that does NOT
// reproduce convicts the abstraction instead of the protocol
// (docs/VERIFICATION.md, "witness replay contract").
#pragma once

#include <string>
#include <vector>

namespace ddpm::verify::model {

struct ModelWitness {
  // Enough configuration to rebuild the exact network the events assume.
  std::string topology;
  std::string router;
  int adaptive_vcs = 1;
  int buffer_flits = 1;
  int flits_per_packet = 2;
  bool disable_escape = false;
  std::string mutation = "none";  ///< core::ModelMutation, stable name

  /// Violated property id: "no-loss", "no-overflow",
  /// "credit-conservation", "escape-reachability", "bounded-progress".
  std::string property;
  /// For bounded-progress: "deadlock" (step fixpoint) or "livelock"
  /// (non-trivial step cycle). Empty for safety properties.
  std::string progress_kind;
  std::string detail;  ///< human-readable description of the violation

  /// The event sequence: "inject SRC DST" or "step", in order.
  std::vector<std::string> events;

  /// Deterministic JSON rendering (the CI failure artifact).
  std::string to_json() const;
};

/// Stable name for a ModelMutation value ("none", "drop-credit-return",
/// "buffer-off-by-one", "skip-escape-fallback").
const char* mutation_name(int mutation);

}  // namespace ddpm::verify::model
