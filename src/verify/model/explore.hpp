// Bounded exhaustive exploration of the protocol state space.
//
// check_model() runs a breadth-first search over every protocol state a
// ProtoModel configuration can reach from the empty network, under the
// action alphabet {inject(src, dst), step}: injections are bounded by the
// packet budget, states are deduplicated by canonical encoding (optionally
// quotiented by the validated symmetry group), and every newly discovered
// state is checked against the safety properties (no loss/duplication, no
// overflow, credit conservation). Bounded progress is decided after the
// search closes: each state has exactly one step-successor, so the
// step-successor chains partition into "drains" (reaches zero flits) and
// "stuck" (enters a step cycle with flits in flight — a fixpoint is a
// deadlock, a longer cycle a livelock), classified in one memoized pass.
//
// Convictions carry a ModelWitness whose event path is exact: a conviction
// found under the symmetry quotient is automatically re-explored on the
// full space first, because quotient parent chains are only sound up to
// the (heuristically validated) group action (verify/model/symmetry.hpp).
#pragma once

#include <cstdint>
#include <string>

#include "verify/model/proto_model.hpp"
#include "verify/model/witness.hpp"

namespace ddpm::verify::model {

struct ModelCheckResult {
  std::uint64_t states = 0;       ///< distinct states stored
  std::uint64_t transitions = 0;  ///< edges examined
  bool complete = false;  ///< frontier exhausted under max_states, no early stop
  bool symmetry = false;  ///< the returned verdict used the quotient

  bool ok_loss = true;
  bool ok_overflow = true;
  bool ok_conservation = true;
  bool ok_escape = true;
  bool ok_progress = true;

  std::string violated;       ///< first violated property id ("" = none)
  std::string detail;         ///< concrete violation site
  std::string progress_kind;  ///< "deadlock" / "livelock" when progress fails

  bool has_witness = false;
  ModelWitness witness;
  std::string note;

  bool all_ok() const noexcept {
    return ok_loss && ok_overflow && ok_conservation && ok_escape &&
           ok_progress;
  }
};

/// Explores `opt` exhaustively and returns the verdict (+ witness on
/// conviction). Throws std::invalid_argument when the topology/router
/// factories reject the configuration.
ModelCheckResult check_model(const ModelOptions& opt);

}  // namespace ddpm::verify::model
