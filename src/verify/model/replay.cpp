#include "verify/model/replay.hpp"

#include <cstring>
#include <sstream>
#include <string>

#include "core/model_hooks.hpp"
#include "packet/packet.hpp"
#include "routing/router.hpp"
#include "topology/factory.hpp"
#include "wormhole/wormhole.hpp"

namespace ddpm::verify::model {

namespace {

/// Extra cycles run past the witness prefix when validating a
/// bounded-progress claim, and the stall threshold that then counts as a
/// real deadlock. Generous against the model's exact cycle counts: a real
/// stuck state stays stuck.
constexpr std::uint64_t kProgressProbeCycles = 1500;
constexpr std::uint64_t kDeadlockStallThreshold = 1000;

int mutation_from_name(const std::string& name) {
  for (int m = 0; m < 4; ++m) {
    if (name == mutation_name(m)) return m;
  }
  return -1;
}

}  // namespace

ReplayResult replay_witness(const ModelWitness& w, bool use_soa_engine) {
  ReplayResult result;
  const int mutation = mutation_from_name(w.mutation);
  if (mutation < 0) {
    result.detail = "unknown mutation '" + w.mutation + "'";
    return result;
  }
  if (mutation != int(core::ModelMutation::kNone)) {
#if defined(DDPM_MODEL_MUTATIONS)
    core::set_model_mutation(core::ModelMutation(mutation));
#else
    result.detail =
        "witness names a seeded mutation but this binary was built without "
        "DDPM_MODEL_MUTATIONS";
    return result;
#endif
  }
  if (w.property == "escape-reachability") {
    // Structural property of the routing tables; there is no event
    // sequence to execute.
    result.detail = "escape-reachability is structural; nothing to replay";
    return result;
  }

  const auto topo = topo::make_topology(w.topology);
  const auto router = route::make_router(w.router, *topo);
  wormhole::WormholeConfig config;
  config.adaptive_vcs = w.adaptive_vcs;
  config.buffer_flits = w.buffer_flits;
  config.disable_escape = w.disable_escape;
  config.use_soa_engine = use_soa_engine;
  wormhole::WormholeNetwork net(*topo, *router, nullptr, config);

  // A packet of exactly flits_per_packet flits: wire bytes are the 20-byte
  // header plus payload, at 16 bytes per flit.
  const std::uint32_t payload = 16u * std::uint32_t(w.flits_per_packet) -
                                std::uint32_t(pkt::IpHeader::kWireSize);

  const bool progress_claim = w.property == "bounded-progress";
  bool violated = false;
  std::string why;
  for (const std::string& event : w.events) {
    if (event == "step") {
      net.step();
    } else if (event.rfind("inject ", 0) == 0) {
      std::istringstream is(event.substr(7));
      int src = -1, dst = -1;
      is >> src >> dst;
      if (src < 0 || dst < 0 || topo::NodeId(src) >= topo->num_nodes() ||
          topo::NodeId(dst) >= topo->num_nodes()) {
        result.detail = "malformed witness event '" + event + "'";
        violated = false;
        break;
      }
      pkt::Packet packet;
      packet.dest_node = topo::NodeId(dst);
      packet.true_source = topo::NodeId(src);
      packet.payload_bytes = payload;
      net.inject(std::move(packet), topo::NodeId(src));
    } else {
      result.detail = "malformed witness event '" + event + "'";
      break;
    }
    if (!progress_claim && !net.check_protocol_invariants(&why)) {
      violated = true;
      break;
    }
  }

  result.ran = true;
  if (progress_claim) {
    const std::uint64_t delivered_before = net.delivered();
    for (std::uint64_t i = 0; i < kProgressProbeCycles; ++i) net.step();
    const bool frozen = net.delivered() == delivered_before;
    const bool wedged =
        net.flits_in_flight() > 0 || net.dropped_ttl() > 0;
    if (w.progress_kind == "deadlock") {
      result.reproduced =
          frozen && net.deadlocked(kDeadlockStallThreshold);
      result.detail = result.reproduced
                          ? "real network deadlocked (no movement, flits "
                            "wedged in flight)"
                          : "real network kept making progress";
    } else {
      result.reproduced = frozen && wedged;
      result.detail = result.reproduced
                          ? "real network livelocked (flits moving, none "
                            "delivered)"
                          : "real network kept making progress";
    }
  } else if (violated) {
    result.reproduced = true;
    result.detail = "real invariant violation: " + why;
  } else if (result.detail.empty()) {
    result.detail = "protocol invariants held on the real network";
  }

#if defined(DDPM_MODEL_MUTATIONS)
  core::set_model_mutation(core::ModelMutation::kNone);
#endif
  return result;
}

}  // namespace ddpm::verify::model
