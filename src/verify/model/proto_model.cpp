#include "verify/model/proto_model.hpp"

#include <sstream>
#include <stdexcept>

#include "core/check.hpp"
#include "topology/factory.hpp"

namespace ddpm::verify::model {

ProtoModel::ProtoModel(const ModelOptions& opt) : opt_(opt) {
  if (opt_.buffer_flits < 1 || opt_.buffer_flits > 15) {
    throw std::invalid_argument("ProtoModel: buffer_flits must be in [1, 15]");
  }
  if (opt_.flits_per_packet < 2 || opt_.flits_per_packet > 15) {
    // The real network's minimum is 2 (a 20-byte header alone spans two
    // 16-byte flits), and witness replay depends on matching flit counts.
    throw std::invalid_argument(
        "ProtoModel: flits_per_packet must be in [2, 15]");
  }
  topo_ = topo::make_topology(opt_.topology);
  router_ = route::make_router(opt_.router, *topo_);
  escape_router_ = route::make_router("dor", *topo_);
  nodes_ = int(topo_->num_nodes());
  ports_ = topo_->num_ports();
  escape_vcs_ =
      opt_.disable_escape
          ? 0
          : (topo_->kind() == topo::TopologyKind::kTorus ? 2 : 1);
  vcs_ = escape_vcs_ + opt_.adaptive_vcs;
  if (nodes_ > 250 || vcs_ < 1 || vcs_ > 15) {
    throw std::invalid_argument("ProtoModel: configuration out of range");
  }

  const std::size_t N = std::size_t(nodes_);
  const std::size_t P = std::size_t(ports_);
  neighbor_.assign(N * P, topo::kInvalidNode);
  reverse_port_.assign(N * P, Port(-1));
  wrap_link_.assign(N * P, 0);
  for (NodeId n = 0; n < NodeId(N); ++n) {
    for (Port p = 0; p < ports_; ++p) {
      const auto nbr = topo_->neighbor(n, p);
      if (!nbr.has_value()) continue;
      neighbor_[std::size_t(n) * P + std::size_t(p)] = *nbr;
      reverse_port_[std::size_t(n) * P + std::size_t(p)] =
          *topo_->port_to(*nbr, n);
      if (escape_vcs_ > 1) {
        // Same dateline rule as WormholeNetwork::build_route_tables: a
        // torus link whose coordinate delta is not +-1 wraps.
        const std::size_t dim = std::size_t(p / 2);
        const topo::Coord here = topo_->coord_of(n);
        const topo::Coord there = topo_->coord_of(*nbr);
        const int delta = int(there[dim]) - int(here[dim]);
        if (delta != 1 && delta != -1) {
          wrap_link_[std::size_t(n) * P + std::size_t(p)] = 1;
        }
      }
    }
  }

  escape_port_.assign(N * N, Port(-1));
  cand_.assign(N * N * (P + 1), route::PortList{});
  for (NodeId n = 0; n < NodeId(N); ++n) {
    for (NodeId d = 0; d < NodeId(N); ++d) {
      const auto esc = escape_router_->candidates(n, d, route::kLocalPort);
      if (!esc.empty()) {
        escape_port_[std::size_t(n) * N + std::size_t(d)] = esc.front();
      }
      const std::size_t base = (std::size_t(n) * N + std::size_t(d)) * (P + 1);
      cand_[base + P] = router_->candidates(n, d, route::kLocalPort);
      for (Port a = 0; a < ports_; ++a) {
        cand_[base + std::size_t(a)] = router_->candidates(n, d, a);
      }
    }
  }

  if (!opt_.allowed_pairs.empty()) {
    for (const auto& [s, d] : opt_.allowed_pairs) {
      if (s < 0 || d < 0 || s >= nodes_ || d >= nodes_ || s == d) {
        throw std::invalid_argument("ProtoModel: allowed pair out of range");
      }
    }
    pairs_ = opt_.allowed_pairs;
  } else {
    for (int s = 0; s < nodes_; ++s) {
      for (int d = 0; d < nodes_; ++d) {
        if (s != d) pairs_.emplace_back(s, d);
      }
    }
  }
}

const route::PortList& ProtoModel::cand(NodeId n, NodeId d,
                                        Port arrived_on) const {
  const std::size_t a =
      arrived_on == route::kLocalPort ? std::size_t(ports_)
                                      : std::size_t(arrived_on);
  return cand_[(std::size_t(n) * std::size_t(nodes_) + std::size_t(d)) *
                   std::size_t(ports_ + 1) +
               a];
}

ModelState ProtoModel::initial() const {
  ModelState s;
  const std::size_t N = std::size_t(nodes_);
  s.queue.assign(N * std::size_t(in_units()), {});
  s.active.assign(N * std::size_t(in_units()), 0);
  s.out_port.assign(N * std::size_t(in_units()), -1);
  s.out_vc.assign(N * std::size_t(in_units()), -1);
  s.credits.assign(N * std::size_t(out_units()),
                   std::int8_t(opt_.buffer_flits));
  s.allocated.assign(N * std::size_t(out_units()), 0);
  s.rr.assign(N * std::size_t(ports_), 0);
  return s;
}

void ProtoModel::inject(ModelState& s, int src, int dst) const {
  DDPM_CHECK(src >= 0 && src < nodes_ && dst >= 0 && dst < nodes_,
             "model inject out of range");
  const int unit = ports_ * vcs_;  // injection port, VC 0
  auto& q = s.queue[std::size_t(src) * std::size_t(in_units()) +
                    std::size_t(unit)];
  for (int i = 0; i < opt_.flits_per_packet; ++i) {
    ModelFlit flit;
    flit.dest = std::uint8_t(dst);
    flit.head = (i == 0);
    flit.tail = (i + 1 == opt_.flits_per_packet);
    q.push_back(flit);
  }
  s.flits += std::uint64_t(opt_.flits_per_packet);
  ++s.injected;
}

void ProtoModel::restore_credit(ModelState& s, NodeId node, int in_port,
                               int in_vc) const {
  if (mut(core::ModelMutation::kDropCreditReturn)) return;  // seeded bug
  if (in_port == ports_) return;  // injection queue is unbounded
  const std::size_t link = std::size_t(node) * std::size_t(ports_) +
                           std::size_t(in_port);
  const NodeId up = neighbor_[link];
  const Port up_port = reverse_port_[link];
  std::int8_t& credits =
      s.credits[std::size_t(up) * std::size_t(out_units()) +
                std::size_t(up_port) * std::size_t(vcs_) +
                std::size_t(in_vc)];
  if (credits < std::int8_t(opt_.buffer_flits)) ++credits;
}

std::size_t ProtoModel::drain_ejection(ModelState& s, NodeId node, int unit) const {
  const std::size_t gi = std::size_t(node) * std::size_t(in_units()) +
                         std::size_t(unit);
  auto& q = s.queue[gi];
  std::size_t consumed = 0;
  while (!q.empty()) {
    const ModelFlit flit = q.front();
    q.erase(q.begin());
    --s.flits;
    ++consumed;
    if (flit.tail) {
      s.active[gi] = 0;
      ++s.delivered;
      s.out_port[gi] = -1;
      s.out_vc[gi] = -1;
      break;
    }
  }
  return consumed;
}

bool ProtoModel::try_allocate(ModelState& s, NodeId node, int in_port,
                          int unit) const {
  const std::size_t gi = std::size_t(node) * std::size_t(in_units()) +
                         std::size_t(unit);
  auto& q = s.queue[gi];
  const ModelFlit& head = q.front();
  const NodeId dest = head.dest;
  const Port arrived_on =
      in_port == ports_ ? route::kLocalPort : Port(in_port);

  // 1. Adaptive VCs on any candidate port: most downstream credits wins,
  //    first wins ties, in the router's candidate order (identical to the
  //    real engine whichever of its two routing paths is live).
  Port best_port = -1;
  int best_vc = -1;
  int best_credits = 0;
  for (const Port p : cand(node, dest, arrived_on)) {
    for (int v = escape_vcs_; v < vcs_; ++v) {
      const std::size_t oi = std::size_t(node) * std::size_t(out_units()) +
                             std::size_t(p) * std::size_t(vcs_) +
                             std::size_t(v);
      if (s.allocated[oi] == 0 && int(s.credits[oi]) > best_credits) {
        best_credits = int(s.credits[oi]);
        best_port = p;
        best_vc = v;
      }
    }
  }

  // 2. Escape layer: dimension-order port, dateline-disciplined VC class.
  std::uint8_t next_class = head.cls;
  if (best_port < 0 &&
      (opt_.disable_escape || mut(core::ModelMutation::kSkipEscapeFallback))) {
    return false;  // no escape lanes: wait (possibly forever — deadlock)
  }
  if (best_port < 0) {
    const Port p = escape_port(node, dest);
    if (p < 0) return false;  // only possible if already at dest
    if (escape_vcs_ > 1) {
      const std::size_t dim = std::size_t(p / 2);
      bool same_dim_as_arrival = false;
      if (arrived_on != route::kLocalPort) {
        same_dim_as_arrival = (std::size_t(arrived_on / 2) == dim);
      }
      if (!same_dim_as_arrival) next_class = 0;
      if (link_wrap(node, p)) next_class = 1;  // wrap crossing
    }
    const int v = int(next_class);
    const std::size_t oi = std::size_t(node) * std::size_t(out_units()) +
                           std::size_t(p) * std::size_t(vcs_) +
                           std::size_t(v);
    if (s.allocated[oi] != 0 || s.credits[oi] == 0) return false;  // wait
    best_port = p;
    best_vc = v;
  }

  s.allocated[std::size_t(node) * std::size_t(out_units()) +
              std::size_t(best_port) * std::size_t(vcs_) +
              std::size_t(best_vc)] = 1;
  s.active[gi] = 1;
  s.out_port[gi] = std::int8_t(best_port);
  s.out_vc[gi] = std::int8_t(best_vc);
  q.front().cls = next_class;
  return true;
}

void ProtoModel::step(ModelState& s) const {
  struct Arrival {
    NodeId node;
    int unit;
    ModelFlit flit;
  };
  std::vector<Arrival> staged;
  const int in_u = in_units();
  for (NodeId node = 0; node < NodeId(nodes_); ++node) {
    // Pass 1: VC allocation + ejection for heads at buffer fronts.
    for (int unit = 0; unit < in_u; ++unit) {
      const std::size_t gi = std::size_t(node) * std::size_t(in_u) +
                             std::size_t(unit);
      if (s.queue[gi].empty()) continue;
      const int in_port = unit / vcs_;
      const int in_vc = unit % vcs_;
      if (s.active[gi] == 0) {
        const ModelFlit& front = s.queue[gi].front();
        if (!front.head) continue;  // body flits of an advancing head
        if (front.dest == node) {
          // Local delivery path: consume and credit.
          s.out_port[gi] = -1;
          s.active[gi] = 1;  // occupy until tail passes
          const std::size_t consumed = drain_ejection(s, node, unit);
          for (std::size_t i = 0; i < consumed; ++i) {
            restore_credit(s, node, in_port, in_vc);
          }
          continue;
        }
        if (!try_allocate(s, node, in_port, unit)) continue;
      }
      if (s.active[gi] != 0 && s.out_port[gi] == -1) {
        // Ejection in progress: keep consuming arrivals.
        const std::size_t consumed = drain_ejection(s, node, unit);
        for (std::size_t i = 0; i < consumed; ++i) {
          restore_credit(s, node, in_port, in_vc);
        }
      }
    }
    // Pass 2: switch traversal, one flit per output port, round-robin.
    for (Port out_port = 0; out_port < ports_; ++out_port) {
      const std::size_t rr_idx = std::size_t(node) * std::size_t(ports_) +
                                 std::size_t(out_port);
      std::size_t unit = s.rr[rr_idx];
      for (int probe = 0; probe < in_u;
           ++probe, unit = (unit + 1 == std::size_t(in_u)) ? 0 : unit + 1) {
        const std::size_t gi = std::size_t(node) * std::size_t(in_u) + unit;
        if (s.active[gi] == 0 || s.out_port[gi] != std::int8_t(out_port) ||
            s.queue[gi].empty()) {
          continue;
        }
        const int ovc = int(s.out_vc[gi]);
        const std::size_t oi = std::size_t(node) * std::size_t(out_units()) +
                               std::size_t(out_port) * std::size_t(vcs_) +
                               std::size_t(ovc);
        if (s.credits[oi] == 0 &&
            !mut(core::ModelMutation::kBufferOffByOne)) {
          continue;  // credit stall
        }
        const ModelFlit flit = s.queue[gi].front();
        s.queue[gi].erase(s.queue[gi].begin());
        // The off-by-one mutation clamps instead of underflowing, exactly
        // as the hooked real engines do.
        if (s.credits[oi] > 0) --s.credits[oi];
        restore_credit(s, node, int(unit) / vcs_, int(unit) % vcs_);
        const std::size_t link = std::size_t(node) * std::size_t(ports_) +
                                 std::size_t(out_port);
        const NodeId next = neighbor_[link];
        const Port next_in_port = reverse_port_[link];
        if (flit.tail) {
          s.allocated[oi] = 0;
          s.active[gi] = 0;
          s.out_port[gi] = -1;
          s.out_vc[gi] = -1;
        }
        staged.push_back(Arrival{next, int(next_in_port) * vcs_ + ovc, flit});
        s.rr[rr_idx] =
            std::uint8_t((unit + 1 == std::size_t(in_u)) ? 0 : unit + 1);
        break;  // one flit per output port per cycle
      }
    }
  }
  for (const Arrival& a : staged) {
    s.queue[std::size_t(a.node) * std::size_t(in_u) + std::size_t(a.unit)]
        .push_back(a.flit);
  }
}

bool ProtoModel::check_safety(const ModelState& s, std::string* property,
                              std::string* why) const {
  const auto fail = [&](const char* prop, const std::string& msg) {
    if (property != nullptr) *property = prop;
    if (why != nullptr) *why = msg;
    return false;
  };
  // No loss or duplication: every in-flight flit is buffered exactly once,
  // and a drained network delivered every injected packet.
  std::uint64_t buffered = 0;
  for (const auto& q : s.queue) buffered += q.size();
  if (buffered != s.flits) {
    std::ostringstream os;
    os << "flit accounting: " << buffered << " buffered vs " << s.flits
       << " in flight";
    return fail("no-loss", os.str());
  }
  if (s.flits == 0 && s.delivered != s.injected) {
    std::ostringstream os;
    os << "drained with " << s.delivered << " of " << s.injected
       << " packets delivered";
    return fail("no-loss", os.str());
  }
  const int in_u = in_units();
  for (NodeId n = 0; n < NodeId(nodes_); ++n) {
    for (Port p = 0; p < ports_; ++p) {
      for (int vc = 0; vc < vcs_; ++vc) {
        const std::size_t occ =
            s.queue[std::size_t(n) * std::size_t(in_u) +
                    std::size_t(p) * std::size_t(vcs_) + std::size_t(vc)]
                .size();
        if (occ > std::size_t(opt_.buffer_flits)) {
          std::ostringstream os;
          os << "node " << n << " port " << p << " vc " << vc << " holds "
             << occ << " flits (depth " << opt_.buffer_flits << ")";
          return fail("no-overflow", os.str());
        }
        const std::size_t link = std::size_t(n) * std::size_t(ports_) +
                                 std::size_t(p);
        const NodeId up = neighbor_[link];
        if (up == topo::kInvalidNode) continue;
        const Port up_port = reverse_port_[link];
        const int credits =
            int(s.credits[std::size_t(up) * std::size_t(out_units()) +
                          std::size_t(up_port) * std::size_t(vcs_) +
                          std::size_t(vc)]);
        if (credits < 0 || std::size_t(credits) + occ !=
                               std::size_t(opt_.buffer_flits)) {
          std::ostringstream os;
          os << "link " << up << "->" << n << " vc " << vc << " has "
             << credits << " credits + " << occ << " buffered != depth "
             << opt_.buffer_flits;
          return fail("credit-conservation", os.str());
        }
      }
    }
  }
  return true;
}

bool ProtoModel::check_escape_reach(std::string* why) const {
  if (escape_vcs_ == 0) return true;  // vacuous: no escape layer configured
  for (NodeId n = 0; n < NodeId(nodes_); ++n) {
    for (NodeId d = 0; d < NodeId(nodes_); ++d) {
      if (n == d) continue;
      NodeId cur = n;
      int hops = 0;
      while (cur != d) {
        const Port p = escape_port(cur, d);
        if (p < 0 || hops > nodes_ * ports_) {
          if (why != nullptr) {
            std::ostringstream os;
            os << "escape chain " << n << "->" << d << " breaks at node "
               << cur;
            *why = os.str();
          }
          return false;
        }
        cur = link_neighbor(cur, p);
        ++hops;
      }
    }
  }
  return true;
}

std::string ProtoModel::encode_state(const ModelState& s) const {
  std::string out;
  out.reserve(s.queue.size() * 3 + s.credits.size() * 2 + s.rr.size() + 4);
  out.push_back(char(s.injected));
  for (std::size_t gi = 0; gi < s.queue.size(); ++gi) {
    const auto& q = s.queue[gi];
    out.push_back(char(q.size()));
    for (const ModelFlit& f : q) {
      out.push_back(char(f.dest));
      out.push_back(char((f.head ? 1 : 0) | (f.tail ? 2 : 0) |
                         (int(f.cls) << 2)));
    }
    out.push_back(char(s.active[gi]));
    out.push_back(char(int(s.out_port[gi]) + 1));
    out.push_back(char(int(s.out_vc[gi]) + 1));
  }
  for (std::size_t oi = 0; oi < s.credits.size(); ++oi) {
    out.push_back(char(s.credits[oi]));
    out.push_back(char(s.allocated[oi]));
  }
  for (const std::uint8_t rr : s.rr) out.push_back(char(rr));
  return out;
}

ModelState ProtoModel::decode_state(const std::string& bytes) const {
  ModelState s = initial();
  std::size_t at = 0;
  const auto next = [&]() -> std::uint8_t {
    DDPM_CHECK(at < bytes.size(), "model decode: truncated encoding");
    return std::uint8_t(bytes[at++]);
  };
  s.injected = next();
  for (std::size_t gi = 0; gi < s.queue.size(); ++gi) {
    const std::size_t len = next();
    s.queue[gi].resize(len);
    for (std::size_t i = 0; i < len; ++i) {
      ModelFlit& f = s.queue[gi][i];
      f.dest = next();
      const std::uint8_t flags = next();
      f.head = (flags & 1) != 0;
      f.tail = (flags & 2) != 0;
      f.cls = std::uint8_t(flags >> 2);
    }
    s.flits += len;
    s.active[gi] = next();
    s.out_port[gi] = std::int8_t(int(next()) - 1);
    s.out_vc[gi] = std::int8_t(int(next()) - 1);
  }
  for (std::size_t oi = 0; oi < s.credits.size(); ++oi) {
    s.credits[oi] = std::int8_t(next());
    s.allocated[oi] = next();
  }
  for (std::uint8_t& rr : s.rr) rr = next();
  DDPM_CHECK(at == bytes.size(), "model decode: trailing bytes");
  return s;
}

ModelProjection ProtoModel::project(const ModelState& s) const {
  ModelProjection proj;
  proj.occupancy.reserve(s.queue.size());
  for (const auto& q : s.queue) {
    proj.occupancy.push_back(std::uint32_t(q.size()));
  }
  proj.credits.assign(s.credits.begin(), s.credits.end());
  proj.allocated.assign(s.allocated.begin(), s.allocated.end());
  proj.flits_in_flight = s.flits;
  proj.delivered = s.delivered;
  return proj;
}

}  // namespace ddpm::verify::model
