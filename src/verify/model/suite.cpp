#include "verify/model/suite.hpp"

#include <stdexcept>

#include "verify/model/replay.hpp"

namespace ddpm::verify::model {

namespace {

ModelOptions config(const char* topology, const char* router,
                    int adaptive_vcs, int depth, int packets,
                    std::vector<std::pair<int, int>> pairs,
                    bool symmetry) {
  ModelOptions opt;
  opt.topology = topology;
  opt.router = router;
  opt.adaptive_vcs = adaptive_vcs;
  opt.buffer_flits = depth;
  opt.packets = packets;
  opt.flits_per_packet = 2;
  opt.allowed_pairs = std::move(pairs);
  opt.use_symmetry = symmetry;
  return opt;
}

}  // namespace

std::vector<ModelOptions> model_suite_configs() {
  // Restricted injection alphabets keep the larger fabrics exhaustively
  // closable; each restricted set pairs up antipodal/crossing flows (the
  // traffic class that exercises escape VCs and wrap links hardest) and is
  // closed under the surviving symmetry group.
  const std::vector<std::pair<int, int>> mesh3{{0, 8}, {8, 0}, {2, 6}, {6, 2}};
  const std::vector<std::pair<int, int>> torus3{{0, 4}, {4, 0}, {1, 5}, {5, 1}};
  const std::vector<std::pair<int, int>> cube3{{0, 7}, {7, 0}, {1, 6}, {6, 1}};
  std::vector<ModelOptions> grid;
  grid.push_back(config("mesh:2x2", "dor", 1, 1, 3, {}, false));
  grid.push_back(config("mesh:2x2", "adaptive", 1, 1, 3, {}, false));
  grid.push_back(config("mesh:2x2", "adaptive", 3, 2, 3, {}, false));
  grid.push_back(config("mesh:2x2", "north-last", 1, 2, 3, {}, false));
  grid.push_back(config("mesh:3x3", "dor", 1, 1, 3, mesh3, true));
  grid.push_back(config("mesh:3x3", "west-first", 2, 1, 2, mesh3, true));
  grid.push_back(config("torus:3x3", "dor", 1, 1, 2, torus3, true));
  grid.push_back(config("torus:3x3", "adaptive", 2, 2, 2, torus3, true));
  grid.push_back(config("hypercube:3", "dor", 1, 1, 2, cube3, true));
  grid.push_back(config("hypercube:3", "adaptive", 1, 2, 2, cube3, true));
  return grid;
}

ModelVerdict run_model_config(const ModelOptions& opt,
                              ModelWitness* witness) {
  ModelVerdict v;
  v.topology = opt.topology;
  v.router = opt.router;
  v.depth = opt.buffer_flits;
  v.packets = opt.packets;
  v.flits_per_packet = opt.flits_per_packet;
  v.symmetry = opt.use_symmetry;
  ModelCheckResult result;
  try {
    ProtoModel probe(opt);  // cheap: factories + tables, no exploration
    v.vcs = probe.vcs();
    v.pairs = probe.pairs().size();
    result = check_model(opt);
  } catch (const std::invalid_argument& e) {
    v.pass = false;
    v.note = std::string("configuration rejected: ") + e.what();
    return v;
  }
  v.states = result.states;
  v.transitions = result.transitions;
  v.complete = result.complete;
  v.symmetry = result.symmetry;
  v.credit_conservation = result.ok_conservation;
  v.no_overflow = result.ok_overflow;
  v.no_loss = result.ok_loss;
  v.escape_reachable = result.ok_escape;
  v.bounded_progress = result.ok_progress;
  v.violated = result.violated;
  v.note = result.note;
  if (result.has_witness) {
    if (witness != nullptr) *witness = result.witness;
    v.witness_events = result.witness.events.size();
    const ReplayResult replay = replay_witness(result.witness);
    if (!replay.ran) {
      v.witness_replay = "unavailable";
    } else {
      v.witness_replay = replay.reproduced ? "reproduced" : "not-reproduced";
    }
    if (!v.note.empty()) v.note += "; ";
    v.note += replay.detail;
  }
  v.pass = result.complete && result.all_ok();
  return v;
}

std::vector<ModelVerdict> run_model_suite(
    std::vector<ModelWitness>* witnesses) {
  std::vector<ModelVerdict> out;
  for (const ModelOptions& opt : model_suite_configs()) {
    ModelWitness w;
    ModelVerdict v = run_model_config(opt, witnesses != nullptr ? &w : nullptr);
    if (witnesses != nullptr && v.witness_events > 0) {
      witnesses->push_back(std::move(w));
    }
    out.push_back(std::move(v));
  }
  return out;
}

}  // namespace ddpm::verify::model
