#include "verify/model/symmetry.hpp"

#include <algorithm>

#include "core/check.hpp"

namespace ddpm::verify::model {

namespace {

/// Ports as a sorted vector, for order-insensitive candidate comparison.
std::vector<int> sorted_ports(const route::PortList& list) {
  std::vector<int> out(list.begin(), list.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

SymmetryGroup::SymmetryGroup(const ProtoModel& m) {
  const topo::Topology& topo = m.topology();
  const int N = m.nodes();
  const int P = m.ports();
  SymElem identity;
  identity.node_map.resize(std::size_t(N));
  identity.port_map.resize(std::size_t(P));
  for (int n = 0; n < N; ++n) identity.node_map[std::size_t(n)] = n;
  for (int p = 0; p < P; ++p) identity.port_map[std::size_t(p)] = p;
  elems_.push_back(identity);

  const std::size_t dims = topo.num_dims();
  if (dims > 10) return;  // bounded configs only; nothing to gain beyond
  for (std::uint32_t mask = 1; mask < (1u << dims); ++mask) {
    SymElem e = identity;
    if (topo.kind() == topo::TopologyKind::kHypercube) {
      // Bit complement of the selected dimensions; ports are dimensions
      // and map to themselves.
      for (int n = 0; n < N; ++n) {
        e.node_map[std::size_t(n)] = int(std::uint32_t(n) ^ mask);
      }
    } else {
      // Per-dimension coordinate reflection; the +/- direction ports of a
      // reflected dimension swap.
      for (int n = 0; n < N; ++n) {
        topo::Coord c = topo.coord_of(topo::NodeId(n));
        for (std::size_t d = 0; d < dims; ++d) {
          if ((mask >> d) & 1u) {
            c[d] = topo::Coord::value_type(topo.dim_size(d) - 1 - c[d]);
          }
        }
        e.node_map[std::size_t(n)] = int(topo.id_of(c));
      }
      for (int p = 0; p < P; ++p) {
        const std::size_t d = std::size_t(p / 2);
        e.port_map[std::size_t(p)] = ((mask >> d) & 1u) ? (p ^ 1) : p;
      }
    }
    if (validates(m, e)) elems_.push_back(e);
  }
}

bool SymmetryGroup::validates(const ProtoModel& m, const SymElem& e) const {
  const int N = m.nodes();
  const int P = m.ports();
  const auto pn = [&](NodeId n) { return NodeId(e.node_map[std::size_t(n)]); };
  const auto pp = [&](Port p) {
    return p == route::kLocalPort ? p : Port(e.port_map[std::size_t(p)]);
  };
  // Link tables must commute exactly.
  for (NodeId n = 0; n < NodeId(N); ++n) {
    for (Port p = 0; p < P; ++p) {
      const NodeId nbr = m.link_neighbor(n, p);
      const NodeId img_nbr = m.link_neighbor(pn(n), pp(p));
      if (nbr == topo::kInvalidNode) {
        if (img_nbr != topo::kInvalidNode) return false;
        continue;
      }
      if (img_nbr != pn(nbr)) return false;
      if (m.link_reverse(pn(n), pp(p)) != pp(m.link_reverse(n, p))) {
        return false;
      }
      if (m.link_wrap(pn(n), pp(p)) != m.link_wrap(n, p)) return false;
    }
  }
  // Escape next-hops and adaptive candidate sets must map consistently.
  for (NodeId n = 0; n < NodeId(N); ++n) {
    for (NodeId d = 0; d < NodeId(N); ++d) {
      if (n == d) continue;
      const Port esc = m.escape_port(n, d);
      const Port img_esc = m.escape_port(pn(n), pn(d));
      if (esc < 0 ? img_esc >= 0 : img_esc != pp(esc)) return false;
      for (Port a = -1; a < P; ++a) {
        std::vector<int> mapped;
        for (const Port c : m.cand(n, d, a)) mapped.push_back(int(pp(c)));
        std::sort(mapped.begin(), mapped.end());
        if (mapped != sorted_ports(m.cand(pn(n), pn(d), pp(a)))) {
          return false;
        }
      }
    }
  }
  // The injection alphabet must be closed under the element.
  std::vector<std::pair<int, int>> orig = m.pairs();
  std::vector<std::pair<int, int>> mapped;
  for (const auto& [s, d] : orig) {
    mapped.emplace_back(e.node_map[std::size_t(s)],
                        e.node_map[std::size_t(d)]);
  }
  std::sort(orig.begin(), orig.end());
  std::sort(mapped.begin(), mapped.end());
  return orig == mapped;
}

ModelState SymmetryGroup::apply(const ProtoModel& m, const ModelState& s,
                                const SymElem& e) const {
  const int V = m.vcs();
  const int P = m.ports();
  const int in_u = m.in_units();
  const int out_u = m.out_units();
  const auto unit_map = [&](int u) {
    const int port = u / V;
    return port == P ? u : e.port_map[std::size_t(port)] * V + u % V;
  };
  ModelState r = m.initial();
  r.injected = s.injected;
  r.delivered = s.delivered;
  r.flits = s.flits;
  for (int n = 0; n < m.nodes(); ++n) {
    const std::size_t src = std::size_t(n) * std::size_t(in_u);
    const std::size_t dst =
        std::size_t(e.node_map[std::size_t(n)]) * std::size_t(in_u);
    for (int u = 0; u < in_u; ++u) {
      const std::size_t gi = src + std::size_t(u);
      const std::size_t gj = dst + std::size_t(unit_map(u));
      r.queue[gj] = s.queue[gi];
      for (ModelFlit& f : r.queue[gj]) {
        f.dest = std::uint8_t(e.node_map[std::size_t(f.dest)]);
      }
      r.active[gj] = s.active[gi];
      r.out_port[gj] =
          s.out_port[gi] < 0
              ? s.out_port[gi]
              : std::int8_t(e.port_map[std::size_t(s.out_port[gi])]);
      r.out_vc[gj] = s.out_vc[gi];
    }
    const std::size_t osrc = std::size_t(n) * std::size_t(out_u);
    const std::size_t odst =
        std::size_t(e.node_map[std::size_t(n)]) * std::size_t(out_u);
    for (int p = 0; p < P; ++p) {
      for (int vc = 0; vc < V; ++vc) {
        const std::size_t oi = osrc + std::size_t(p * V + vc);
        const std::size_t oj =
            odst + std::size_t(e.port_map[std::size_t(p)] * V + vc);
        r.credits[oj] = s.credits[oi];
        r.allocated[oj] = s.allocated[oi];
      }
      r.rr[std::size_t(e.node_map[std::size_t(n)]) * std::size_t(P) +
           std::size_t(e.port_map[std::size_t(p)])] =
          std::uint8_t(unit_map(int(
              s.rr[std::size_t(n) * std::size_t(P) + std::size_t(p)])));
    }
  }
  return r;
}

std::string SymmetryGroup::canonical(const ProtoModel& m,
                                     const ModelState& s) const {
  std::string best = m.encode_state(s);
  for (std::size_t i = 1; i < elems_.size(); ++i) {
    std::string img = m.encode_state(apply(m, s, elems_[i]));
    if (img < best) best = std::move(img);
  }
  return best;
}

}  // namespace ddpm::verify::model
