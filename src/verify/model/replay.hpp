// Witness replay on the production WormholeNetwork.
//
// The model checker's convictions are claims about an ABSTRACTION; this
// harness closes the loop by executing the witness event sequence on the
// real engine and checking that the claimed failure actually occurs there
// (safety claims via the DDPM_MODEL check_protocol_invariants probe after
// every event, progress claims by running the network on past the prefix
// and observing frozen delivery). A conviction whose witness does not
// reproduce is reported as an unsound abstraction, not as a protocol bug —
// the distinction the suite and the mutation ctests assert on
// (docs/VERIFICATION.md, "witness replay contract").
#pragma once

#include <string>

#include "verify/model/witness.hpp"

namespace ddpm::verify::model {

struct ReplayResult {
  /// False when the witness could not be executed at all (e.g. it names a
  /// seeded mutation and this binary was built without the
  /// DDPM_MODEL_MUTATIONS hooks).
  bool ran = false;
  /// True when the real network exhibited the claimed failure.
  bool reproduced = false;
  std::string detail;
};

/// Replays `w` on a fresh WormholeNetwork built from the witness's own
/// configuration. `use_soa_engine` selects which of the two byte-identical
/// engines runs (both carry the mutation hooks).
ReplayResult replay_witness(const ModelWitness& w, bool use_soa_engine = true);

}  // namespace ddpm::verify::model
