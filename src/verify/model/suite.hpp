// Model-checking suite driver for ddpm_verify --model.
//
// model_suite_configs() is the certified design grid: small topology x
// router x VC x depth configurations whose reachable protocol state spaces
// close exhaustively within the per-config budget, chosen to cover every
// topology family, both routing disciplines the wormhole substrate
// supports (deterministic DOR, fully adaptive with escape), a turn-model
// router, 2-4 total VCs, and credit depths 1-2. run_model_suite() explores
// each one, replays any conviction on the real WormholeNetwork, and
// returns the ModelVerdict rows the Report renders (and the `verify-model`
// CI job ratchets via tools/ddpm_verify_diff.py).
#pragma once

#include <vector>

#include "verify/model/explore.hpp"
#include "verify/verdict.hpp"

namespace ddpm::verify::model {

/// The fixed configuration grid (deterministic order).
std::vector<ModelOptions> model_suite_configs();

/// Explores one configuration and folds the result (plus witness replay on
/// conviction) into a verdict row. When `witness` is non-null and the
/// exploration convicts, the concrete counterexample is copied out so the
/// caller can persist it (ddpm_verify --witness-dir).
ModelVerdict run_model_config(const ModelOptions& opt,
                              ModelWitness* witness = nullptr);

/// The whole grid. `witnesses`, when non-null, collects the witness of
/// every convicted configuration in grid order.
std::vector<ModelVerdict> run_model_suite(
    std::vector<ModelWitness>* witnesses = nullptr);

}  // namespace ddpm::verify::model
