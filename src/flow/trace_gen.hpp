// Deterministic synthetic flow-trace generator.
//
// Synthesizes CIC-DDoS2019-shaped workloads with millions of distinct
// sources without ever holding the trace in memory: `next()` merges a
// benign stream and an attack stream by timestamp, each driven by its own
// xoshiro jump stream off one seed (same two-level hierarchy the cluster
// model uses), so the same config reproduces the same records bit for bit
// on any machine.
//
//   * Benign traffic: `benign_sources` distinct clients whose popularity
//     follows a Zipf(s) law (rank sampled by inverse CDF over the
//     precomputed harmonic weights), talking to a small service pool with
//     exponential inter-arrival times.
//   * kFlood: every attack flow claims a FRESH spoofed source — a
//     bijective 32-bit mix of the flow counter — so `attack_sources`
//     flows yield exactly `attack_sources` distinct addresses (the
//     1M-distinct-source scenario the sketches must survive).
//   * kPulse: the flood gated by a duty cycle (shrew-style bursts that
//     evade EWMA smoothing between pulses).
//   * kChurn: the source pool is partitioned into blocks that rotate
//     every `churn_period` ticks — botnet membership churn, the workload
//     that ages out per-source state.
//
// All attack flows target `victim`; ground truth is carried in
// FlowRecord::attack, which generators of detection features must ignore.
#pragma once

#include <cstdint>
#include <vector>

#include "flow/record.hpp"
#include "netsim/rng.hpp"

namespace ddpm::flow {

enum class AttackShape : std::uint8_t { kNone, kFlood, kPulse, kChurn };

struct TraceGenConfig {
  std::uint64_t seed = 1;

  // Benign mix.
  std::uint32_t benign_sources = 10'000;
  double zipf_s = 1.1;              // Zipf skew over benign source ranks
  std::uint32_t services = 32;      // benign destination pool size
  double benign_rate = 0.02;        // aggregate benign flows per tick
  netsim::SimTime duration = 1'000'000;

  // Attack phase.
  AttackShape attack = AttackShape::kFlood;
  std::uint32_t attack_sources = 100'000;  // distinct spoofed addresses
  std::uint32_t victim = 0xC0A8'0001;      // attacked destination
  netsim::SimTime attack_start = 200'000;
  netsim::SimTime attack_duration = 600'000;
  double attack_rate = 0.5;                // attack flows per tick while on
  netsim::SimTime pulse_period = 50'000;   // kPulse on/off cycle length
  double pulse_duty = 0.2;                 // fraction of the period on
  netsim::SimTime churn_period = 100'000;  // kChurn block rotation
  std::uint32_t churn_blocks = 8;          // kChurn pool partitions
};

class TraceGenerator {
 public:
  explicit TraceGenerator(const TraceGenConfig& config);

  /// Produces the next record in non-decreasing first_ts order. Returns
  /// false when the configured duration is exhausted.
  bool next(FlowRecord& out);

  /// Drains the whole trace into a vector (tests and small traces; a
  /// million-source run should stream through next() instead).
  std::vector<FlowRecord> generate();

  std::uint64_t emitted() const noexcept { return emitted_; }
  const TraceGenConfig& config() const noexcept { return config_; }

  /// The bijective 32-bit mix used to turn counters/ranks into sparse
  /// addresses (exposed for tests: distinctness follows from bijectivity).
  static std::uint32_t scramble(std::uint32_t x) noexcept;

 private:
  void advance_benign();
  void advance_attack();
  /// True when the attack shape emits flows at tick `t`.
  bool attack_active(netsim::SimTime t) const noexcept;
  std::uint32_t attack_source(netsim::SimTime t) noexcept;

  TraceGenConfig config_;
  netsim::Rng rng_benign_;
  netsim::Rng rng_attack_;
  std::vector<double> zipf_cdf_;  // cumulative, normalized to [0,1]

  FlowRecord pending_benign_{};
  FlowRecord pending_attack_{};
  bool have_benign_ = false;
  bool have_attack_ = false;
  double benign_clock_ = 0.0;
  double attack_clock_ = 0.0;
  std::uint64_t attack_flows_ = 0;
  std::uint64_t emitted_ = 0;
};

}  // namespace ddpm::flow
