#include "flow/trace_gen.hpp"

#include <algorithm>
#include <cmath>

#include "core/check.hpp"

namespace ddpm::flow {

namespace {

/// Exponential inter-arrival advance of a double-precision clock. Rates
/// are per tick; the clock stays fractional so low rates do not quantize
/// to zero-length gaps.
double exp_gap(netsim::Rng& rng, double rate) {
  return rate > 0.0 ? rng.next_exponential(rate) : 0.0;
}

}  // namespace

std::uint32_t TraceGenerator::scramble(std::uint32_t x) noexcept {
  // Finalizer of MurmurHash3 (32-bit): every step is invertible, so the
  // map is a bijection on uint32 — distinct inputs give distinct outputs.
  x ^= x >> 16;
  x *= 0x85eb'ca6bu;
  x ^= x >> 13;
  x *= 0xc2b2'ae35u;
  x ^= x >> 16;
  return x;
}

TraceGenerator::TraceGenerator(const TraceGenConfig& config)
    : config_(config) {
  DDPM_CHECK(config_.benign_sources > 0,
             "TraceGenerator: benign_sources must be positive");
  DDPM_CHECK(config_.services > 0, "TraceGenerator: services must be positive");
  DDPM_CHECK(config_.attack == AttackShape::kNone || config_.attack_sources > 0,
             "TraceGenerator: attack_sources must be positive");
  // Two disjoint 2^128-draw streams off one seed: replays are reproducible
  // and the benign mix is independent of whether an attack runs.
  netsim::Rng root(config_.seed ^ 0xf10c'7ace'5eedULL);
  rng_benign_ = root.jump_stream();
  rng_attack_ = root.jump_stream();

  // Zipf inverse-CDF table: weight(rank) = 1 / rank^s, normalized.
  zipf_cdf_.resize(config_.benign_sources);
  double acc = 0.0;
  for (std::uint32_t r = 0; r < config_.benign_sources; ++r) {
    acc += std::pow(double(r) + 1.0, -config_.zipf_s);
    zipf_cdf_[r] = acc;
  }
  for (double& w : zipf_cdf_) w /= acc;

  advance_benign();
  advance_attack();
}

bool TraceGenerator::attack_active(netsim::SimTime t) const noexcept {
  if (config_.attack == AttackShape::kNone) return false;
  if (t < config_.attack_start ||
      t >= config_.attack_start + config_.attack_duration) {
    return false;
  }
  if (config_.attack == AttackShape::kPulse) {
    const netsim::SimTime phase =
        (t - config_.attack_start) % std::max<netsim::SimTime>(
                                         config_.pulse_period, 1);
    return double(phase) <
           config_.pulse_duty * double(std::max<netsim::SimTime>(
                                    config_.pulse_period, 1));
  }
  return true;
}

std::uint32_t TraceGenerator::attack_source(netsim::SimTime t) noexcept {
  switch (config_.attack) {
    case AttackShape::kChurn: {
      // Membership churn: block b of the pool is active during churn
      // period b; sources repeat within a block, then the block rotates.
      const std::uint32_t blocks = std::max<std::uint32_t>(
          config_.churn_blocks, 1);
      const std::uint32_t per_block =
          std::max<std::uint32_t>(config_.attack_sources / blocks, 1);
      const auto period = std::max<netsim::SimTime>(config_.churn_period, 1);
      const std::uint32_t block =
          std::uint32_t(((t - config_.attack_start) / period)) % blocks;
      const auto pick =
          std::uint32_t(rng_attack_.next_below(per_block));
      return scramble(0x4000'0000u + block * per_block + pick);
    }
    case AttackShape::kFlood:
    case AttackShape::kPulse: {
      // A fresh spoofed address per flow until the pool is exhausted, then
      // the pool cycles — attack_sources flows touch attack_sources
      // DISTINCT addresses (scramble is bijective).
      const std::uint32_t idx =
          std::uint32_t(attack_flows_ % config_.attack_sources);
      return scramble(0x8000'0000u + idx);
    }
    case AttackShape::kNone:
      break;
  }
  return 0;
}

void TraceGenerator::advance_benign() {
  have_benign_ = false;
  if (config_.benign_rate <= 0.0) return;
  benign_clock_ += exp_gap(rng_benign_, config_.benign_rate);
  const auto t = netsim::SimTime(benign_clock_);
  if (t >= config_.duration) return;

  // Zipf rank by binary search over the cumulative table.
  const double u = rng_benign_.next_double();
  const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  const auto rank = std::uint32_t(it - zipf_cdf_.begin());

  FlowRecord r;
  r.src = scramble(rank);  // sparse client address space
  r.dst = scramble(0xc000'0000u +
                   std::uint32_t(rng_benign_.next_below(config_.services)));
  r.packets = 1 + std::uint32_t(rng_benign_.next_below(64));
  r.bytes = std::uint64_t(r.packets) *
            (40 + rng_benign_.next_below(1460));
  r.first_ts = t;
  r.last_ts = t + rng_benign_.next_below(2000);
  r.proto = rng_benign_.next_bool(0.7) ? 6 : 17;
  r.attack = false;
  pending_benign_ = r;
  have_benign_ = true;
}

void TraceGenerator::advance_attack() {
  have_attack_ = false;
  if (config_.attack == AttackShape::kNone || config_.attack_rate <= 0.0) {
    return;
  }
  if (attack_clock_ < double(config_.attack_start)) {
    attack_clock_ = double(config_.attack_start);
  }
  for (;;) {
    attack_clock_ += exp_gap(rng_attack_, config_.attack_rate);
    const auto t = netsim::SimTime(attack_clock_);
    if (t >= config_.attack_start + config_.attack_duration ||
        t >= config_.duration) {
      return;  // attack phase over
    }
    if (!attack_active(t)) continue;  // skip the off part of a pulse

    FlowRecord r;
    r.src = attack_source(t);
    ++attack_flows_;
    r.dst = config_.victim;
    r.packets = 1 + std::uint32_t(rng_attack_.next_below(3));
    r.bytes = std::uint64_t(r.packets) * (40 + rng_attack_.next_below(64));
    r.first_ts = t;
    r.last_ts = t;  // single-burst spoofed flows have no duration
    r.proto = 17;
    r.attack = true;
    pending_attack_ = r;
    have_attack_ = true;
    return;
  }
}

bool TraceGenerator::next(FlowRecord& out) {
  if (!have_benign_ && !have_attack_) return false;
  // Two-way merge on first_ts; benign wins ties so the order is total.
  const bool take_benign =
      have_benign_ &&
      (!have_attack_ || pending_benign_.first_ts <= pending_attack_.first_ts);
  if (take_benign) {
    out = pending_benign_;
    advance_benign();
  } else {
    out = pending_attack_;
    advance_attack();
  }
  ++emitted_;
  return true;
}

std::vector<FlowRecord> TraceGenerator::generate() {
  std::vector<FlowRecord> records;
  FlowRecord r;
  while (next(r)) records.push_back(r);
  return records;
}

}  // namespace ddpm::flow
