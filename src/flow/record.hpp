// Flow-record model for trace-driven workloads.
//
// A FlowRecord is the unit the streaming detectors consume: one aggregated
// flow (CIC-DDoS2019 style) rather than one packet. The record deliberately
// carries only integers so a generate → write-CSV → parse round trip is
// byte-exact (no float formatting ambiguity), and it is a DDPM_HOT_STATE
// record: millions of them stream through the sketch update paths per
// replay, so the layout is pinned against silent growth.
//
// `attack` is ground truth for evaluation only — the analyzer in
// src/stream never reads it, mirroring Packet::true_source.
#pragma once

#include <cstdint>

#include "core/hot_path.hpp"
#include "netsim/event_queue.hpp"

namespace ddpm::flow {

struct DDPM_HOT_STATE FlowRecord {
  std::uint32_t src = 0;            // claimed (possibly spoofed) source
  std::uint32_t dst = 0;            // destination address
  std::uint64_t bytes = 0;          // payload volume of the flow
  netsim::SimTime first_ts = 0;     // first packet timestamp (ticks)
  netsim::SimTime last_ts = 0;      // last packet timestamp (ticks)
  std::uint32_t packets = 0;        // packet count of the flow
  std::uint8_t proto = 17;          // IP protocol number (17 = UDP, 6 = TCP)
  bool attack = false;              // ground truth label (evaluation only)

  friend bool operator==(const FlowRecord&, const FlowRecord&) = default;
};
DDPM_HOT_LAYOUT(FlowRecord, 40, 8);

}  // namespace ddpm::flow
