// Dependency-free CSV ingestion for CIC-DDoS2019-style flow traces.
//
// The wire format is one flow per line:
//
//   src,dst,bytes,packets,first_ts,last_ts,proto,label
//
// with a mandatory header row and a textual label column ("BENIGN" or an
// attack name, as in the CIC-DDoS2019 ground-truth CSVs; anything that is
// not BENIGN is an attack). All other columns are unsigned decimal
// integers, so a generate → write → parse round trip reproduces the
// records byte-identically (tests/test_flow.cpp pins this).
//
// Malformed input never throws mid-stream: a line that does not parse
// (wrong field count, non-numeric field, overflow, trailing garbage) is
// counted in CsvStats::malformed and skipped, because real capture files
// contain truncated tails and corrupt lines. Out-of-order timestamps are
// legal (captures interleave exporters) but counted, since downstream
// windowing folds stragglers into the current window.
//
// Ingestion lives HERE, not in src/stream: the repo linter's
// stream-no-ingest rule keeps <fstream> and string parsing out of the
// sketch library so its hot paths stay pure state updates.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "core/shard_annotations.hpp"
#include "flow/record.hpp"

namespace ddpm::flow {

inline constexpr std::string_view kCsvHeader =
    "src,dst,bytes,packets,first_ts,last_ts,proto,label";
inline constexpr std::string_view kBenignLabel = "BENIGN";

struct CsvStats {
  std::uint64_t lines = 0;         // data lines seen (header excluded)
  std::uint64_t records = 0;       // successfully parsed
  std::uint64_t malformed = 0;     // skipped lines
  std::uint64_t out_of_order = 0;  // first_ts earlier than its predecessor
  bool header_ok = false;          // first line matched kCsvHeader

  friend bool operator==(const CsvStats&, const CsvStats&) = default;
};

/// Parses one data line (no trailing newline; a trailing '\r' is
/// tolerated). Returns false — leaving `out` unspecified — when the line
/// is malformed.
bool parse_csv_line(std::string_view line, FlowRecord& out);

/// Streams every well-formed record of `in` into `sink` in file order.
/// An empty stream yields zero records and header_ok == false.
using RecordSink = std::function<void(const FlowRecord&)>;
CsvStats read_csv(std::istream& in, const RecordSink& sink);

/// File convenience wrappers. Reading a file that cannot be opened throws
/// std::runtime_error (an absent trace is a configuration error, not a
/// malformed line).
CsvStats read_csv_file(const std::string& path, const RecordSink& sink);
std::vector<FlowRecord> read_csv_file(const std::string& path,
                                      CsvStats* stats = nullptr);

/// Serializes records in the exact format parse_csv_line accepts.
/// DDPM_DET_SINK: the write → parse round trip is pinned byte-identical,
/// so serialization must not observe any nondeterministic order.
DDPM_DET_SINK void write_csv(std::ostream& out,
                             const std::vector<FlowRecord>& records);
void write_csv_file(const std::string& path,
                    const std::vector<FlowRecord>& records);

}  // namespace ddpm::flow
