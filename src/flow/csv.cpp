#include "flow/csv.hpp"

#include <array>
#include <charconv>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace ddpm::flow {

namespace {

/// Strict unsigned-decimal field parse: the whole field must be digits and
/// fit the destination type. std::from_chars is locale-free and never
/// allocates.
template <typename T>
bool parse_field(std::string_view field, T& out) {
  if (field.empty()) return false;
  const char* first = field.data();
  const char* last = first + field.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

/// Splits the next field off `line` into `out` and shrinks `line` to the
/// tail; `more` reports whether a comma was consumed. A field wrapped in
/// double quotes may contain commas, and a doubled `""` inside is an
/// escaped quote — when one occurs the unescaped text lives in `scratch`,
/// which must outlive the returned view. Returns false on a malformed
/// field (unterminated quote, or junk between the closing quote and the
/// next comma).
bool take_field(std::string_view& line, bool& more, std::string& scratch,
                std::string_view& out) {
  if (!line.empty() && line.front() == '"') {
    bool escaped = false;
    std::size_t i = 1;
    for (; i < line.size(); ++i) {
      if (line[i] != '"') continue;
      if (i + 1 < line.size() && line[i + 1] == '"') {
        escaped = true;
        ++i;  // consume the doubled quote
        continue;
      }
      break;  // lone quote closes the field
    }
    if (i >= line.size()) return false;  // unterminated quote
    const std::string_view body = line.substr(1, i - 1);
    const std::string_view rest = line.substr(i + 1);
    if (!rest.empty() && rest.front() != ',') return false;
    more = !rest.empty();
    line = more ? rest.substr(1) : std::string_view{};
    if (escaped) {
      scratch.clear();
      for (std::size_t j = 0; j < body.size(); ++j) {
        scratch.push_back(body[j]);
        if (body[j] == '"') ++j;  // collapse the doubling
      }
      out = scratch;
    } else {
      out = body;
    }
    return true;
  }
  const std::size_t comma = line.find(',');
  more = comma != std::string_view::npos;
  out = more ? line.substr(0, comma) : line;
  line = more ? line.substr(comma + 1) : std::string_view{};
  return true;
}

}  // namespace

bool parse_csv_line(std::string_view line, FlowRecord& out) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  std::array<std::string, 8> scratch;
  std::string_view fields[8];
  bool more = true;
  for (std::size_t i = 0; i < 8; ++i) {
    if (!take_field(line, more, scratch[i], fields[i])) return false;
  }
  // Exactly eight fields. One trailing delimiter (a common exporter
  // artifact) is tolerated, but anything after it is a ninth field.
  if (more && !line.empty()) return false;
  FlowRecord r;
  std::uint32_t proto = 0;
  if (!parse_field(fields[0], r.src) || !parse_field(fields[1], r.dst) ||
      !parse_field(fields[2], r.bytes) || !parse_field(fields[3], r.packets) ||
      !parse_field(fields[4], r.first_ts) ||
      !parse_field(fields[5], r.last_ts) || !parse_field(fields[6], proto) ||
      proto > 255 || fields[7].empty()) {
    return false;
  }
  r.proto = static_cast<std::uint8_t>(proto);
  r.attack = fields[7] != kBenignLabel;
  out = r;
  return true;
}

CsvStats read_csv(std::istream& in, const RecordSink& sink) {
  CsvStats stats;
  std::string line;
  bool first_line = true;
  netsim::SimTime prev_ts = 0;
  while (std::getline(in, line)) {
    std::string_view view(line);
    if (!view.empty() && view.back() == '\r') view.remove_suffix(1);
    if (first_line) {
      first_line = false;
      if (view == kCsvHeader) {
        stats.header_ok = true;
        continue;  // header row is not a data line
      }
      // Headerless input: fall through and treat it as data.
    }
    if (view.empty()) continue;  // blank lines (trailing newline) are noise
    ++stats.lines;
    FlowRecord record;
    if (!parse_csv_line(view, record)) {
      ++stats.malformed;
      continue;
    }
    if (stats.records > 0 && record.first_ts < prev_ts) ++stats.out_of_order;
    prev_ts = record.first_ts;
    ++stats.records;
    if (sink) sink(record);
  }
  return stats;
}

CsvStats read_csv_file(const std::string& path, const RecordSink& sink) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("flow::read_csv_file: cannot open " + path);
  return read_csv(in, sink);
}

std::vector<FlowRecord> read_csv_file(const std::string& path,
                                      CsvStats* stats) {
  std::vector<FlowRecord> records;
  const CsvStats s = read_csv_file(
      path, [&records](const FlowRecord& r) { records.push_back(r); });
  if (stats != nullptr) *stats = s;
  return records;
}

void write_csv(std::ostream& out, const std::vector<FlowRecord>& records) {
  out << kCsvHeader << '\n';
  for (const FlowRecord& r : records) {
    out << r.src << ',' << r.dst << ',' << r.bytes << ',' << r.packets << ','
        << r.first_ts << ',' << r.last_ts << ',' << unsigned(r.proto) << ','
        << (r.attack ? "ATTACK" : kBenignLabel) << '\n';
  }
}

void write_csv_file(const std::string& path,
                    const std::vector<FlowRecord>& records) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("flow::write_csv_file: cannot open " + path);
  }
  write_csv(out, records);
}

}  // namespace ddpm::flow
