#include "flow/csv.hpp"

#include <charconv>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace ddpm::flow {

namespace {

/// Strict unsigned-decimal field parse: the whole field must be digits and
/// fit the destination type. std::from_chars is locale-free and never
/// allocates.
template <typename T>
bool parse_field(std::string_view field, T& out) {
  if (field.empty()) return false;
  const char* first = field.data();
  const char* last = first + field.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

/// Splits `line` at the next comma; returns the head and shrinks `line`
/// to the tail. `more` reports whether a comma was consumed.
std::string_view take_field(std::string_view& line, bool& more) {
  const std::size_t comma = line.find(',');
  more = comma != std::string_view::npos;
  const std::string_view head = more ? line.substr(0, comma) : line;
  line = more ? line.substr(comma + 1) : std::string_view{};
  return head;
}

}  // namespace

bool parse_csv_line(std::string_view line, FlowRecord& out) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  bool more = true;
  const std::string_view fields[8] = {
      take_field(line, more), take_field(line, more), take_field(line, more),
      take_field(line, more), take_field(line, more), take_field(line, more),
      take_field(line, more), take_field(line, more)};
  // Exactly eight fields: the final take must have exhausted the commas.
  if (more) return false;
  FlowRecord r;
  std::uint32_t proto = 0;
  if (!parse_field(fields[0], r.src) || !parse_field(fields[1], r.dst) ||
      !parse_field(fields[2], r.bytes) || !parse_field(fields[3], r.packets) ||
      !parse_field(fields[4], r.first_ts) ||
      !parse_field(fields[5], r.last_ts) || !parse_field(fields[6], proto) ||
      proto > 255 || fields[7].empty()) {
    return false;
  }
  r.proto = static_cast<std::uint8_t>(proto);
  r.attack = fields[7] != kBenignLabel;
  out = r;
  return true;
}

CsvStats read_csv(std::istream& in, const RecordSink& sink) {
  CsvStats stats;
  std::string line;
  bool first_line = true;
  netsim::SimTime prev_ts = 0;
  while (std::getline(in, line)) {
    std::string_view view(line);
    if (!view.empty() && view.back() == '\r') view.remove_suffix(1);
    if (first_line) {
      first_line = false;
      if (view == kCsvHeader) {
        stats.header_ok = true;
        continue;  // header row is not a data line
      }
      // Headerless input: fall through and treat it as data.
    }
    if (view.empty()) continue;  // blank lines (trailing newline) are noise
    ++stats.lines;
    FlowRecord record;
    if (!parse_csv_line(view, record)) {
      ++stats.malformed;
      continue;
    }
    if (stats.records > 0 && record.first_ts < prev_ts) ++stats.out_of_order;
    prev_ts = record.first_ts;
    ++stats.records;
    if (sink) sink(record);
  }
  return stats;
}

CsvStats read_csv_file(const std::string& path, const RecordSink& sink) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("flow::read_csv_file: cannot open " + path);
  return read_csv(in, sink);
}

std::vector<FlowRecord> read_csv_file(const std::string& path,
                                      CsvStats* stats) {
  std::vector<FlowRecord> records;
  const CsvStats s = read_csv_file(
      path, [&records](const FlowRecord& r) { records.push_back(r); });
  if (stats != nullptr) *stats = s;
  return records;
}

void write_csv(std::ostream& out, const std::vector<FlowRecord>& records) {
  out << kCsvHeader << '\n';
  for (const FlowRecord& r : records) {
    out << r.src << ',' << r.dst << ',' << r.bytes << ',' << r.packets << ','
        << r.first_ts << ',' << r.last_ts << ',' << unsigned(r.proto) << ','
        << (r.attack ? "ATTACK" : kBenignLabel) << '\n';
  }
}

void write_csv_file(const std::string& path,
                    const std::vector<FlowRecord>& records) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("flow::write_csv_file: cannot open " + path);
  }
  write_csv(out, records);
}

}  // namespace ddpm::flow
