// Fixed-capacity candidate-port list — the allocation-free return type of
// Router::candidates / fallback_candidates.
//
// Candidate sets are tiny by construction: one port per hypercube
// dimension, two per Cartesian dimension, and the misroute fallback is
// bounded by the switch radix. Returning std::vector put a heap
// allocation on every per-flit routing decision (the single largest
// class of hot-no-alloc findings in the analyzer baseline); PortList is
// an inline array with the same iteration/query surface, so the wormhole
// loop's cold fallback path and the CDG verifier's exhaustive sweeps pay
// zero allocator traffic.
//
// The capacity deliberately matches the wormhole engine's route-table
// radix guard (`num_ports_ > 32` disables precomputed candidate masks,
// src/wormhole/wormhole.cpp): no supported topology exceeds 32 ports per
// switch, and a policy that emitted more would already have broken the
// mask tables. Overflow is a DDPM_CHECK, not silent truncation — a
// fabricated port set corrupts routing, it must abort loudly.
#pragma once

#include <cstddef>
#include <initializer_list>

#include "core/check.hpp"
#include "topology/topology.hpp"

namespace ddpm::route {

class PortList {
 public:
  using value_type = topo::Port;
  using iterator = topo::Port*;
  using const_iterator = const topo::Port*;

  /// One more than the largest switch radix the wormhole route tables
  /// accept; see the file comment.
  static constexpr std::size_t kCapacity = 32;

  constexpr PortList() noexcept = default;
  constexpr PortList(std::initializer_list<topo::Port> ports) {
    for (const topo::Port p : ports) push_back(p);
  }

  constexpr void push_back(topo::Port p) {
    DDPM_CHECK(size_ < kCapacity, "PortList overflow: radix exceeds 32");
    ports_[size_++] = p;
  }

  /// vector-compatible "reset to n copies of p" (the congestion tie-break
  /// keeps best_ports.assign(1, p)).
  constexpr void assign(std::size_t n, topo::Port p) {
    DDPM_CHECK(n <= kCapacity, "PortList overflow: radix exceeds 32");
    size_ = n;
    for (std::size_t i = 0; i < n; ++i) ports_[i] = p;
  }

  constexpr void clear() noexcept { size_ = 0; }

  /// Removes every occurrence of `banned`, preserving order (the
  /// turn-model routers' 180-degree-reversal ban).
  constexpr void erase_value(topo::Port banned) noexcept {
    std::size_t kept = 0;
    for (std::size_t i = 0; i < size_; ++i) {
      if (ports_[i] != banned) ports_[kept++] = ports_[i];
    }
    size_ = kept;
  }

  constexpr bool empty() const noexcept { return size_ == 0; }
  constexpr std::size_t size() const noexcept { return size_; }

  constexpr topo::Port front() const {
    DDPM_DCHECK(size_ > 0, "PortList::front on empty list");
    return ports_[0];
  }
  constexpr topo::Port operator[](std::size_t i) const {
    DDPM_DCHECK(i < size_, "PortList index out of range");
    return ports_[i];
  }

  constexpr iterator begin() noexcept { return ports_; }
  constexpr iterator end() noexcept { return ports_ + size_; }
  constexpr const_iterator begin() const noexcept { return ports_; }
  constexpr const_iterator end() const noexcept { return ports_ + size_; }

  friend constexpr bool operator==(const PortList& a,
                                   const PortList& b) noexcept {
    if (a.size_ != b.size_) return false;
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (a.ports_[i] != b.ports_[i]) return false;
    }
    return true;
  }

 private:
  topo::Port ports_[kCapacity] = {};
  std::size_t size_ = 0;
};

}  // namespace ddpm::route
