// Fault-aware shortest-path "oracle" router.
//
// Recomputes BFS distances to the destination over the currently usable
// links on every hop, then offers every port that lies on some shortest
// usable path. This is not implementable in real switch hardware (it needs
// global link state); it serves as the upper bound on routing adaptivity in
// the Figure 2 experiments and as a deterministic fully-adaptive reference
// for correctness tests.
#pragma once

#include "routing/router.hpp"

namespace ddpm::route {

class OracleRouter final : public Router {
 public:
  explicit OracleRouter(const topo::Topology& topo) : Router(topo) {}

  std::string name() const override { return "oracle"; }
  bool is_deterministic() const noexcept override { return false; }

  /// Ports on a shortest usable path; empty if `dest` is unreachable. Link
  /// usability is treated as symmetric (bidirectional links), matching the
  /// cluster model.
  PortList candidates(NodeId current, NodeId dest,
                      Port arrived_on) const override;

  /// Oracle candidates need the link state, which the base signature does
  /// not carry; select_output injects it via this hook before delegating.
  std::optional<Port> select_output(NodeId current, NodeId dest,
                                    Port arrived_on, const LinkStateView& links,
                                    netsim::Rng& rng) const override;

 private:
  PortList usable_shortest_ports(NodeId current, NodeId dest,
                                 const LinkStateView& links) const;
};

}  // namespace ddpm::route
