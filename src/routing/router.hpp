// Routing interfaces (paper §3).
//
// A Router is a pure policy object: given the current node, the
// destination, and a view of link state (failures + congestion), it picks
// an output port. Switch mechanics (queues, latency) live in the cluster
// model; routing tests drive routers directly.
//
// The split between `candidates` and `select_output` mirrors the paper's
// adaptivity taxonomy: deterministic routers return one candidate,
// partially adaptive routers return the subset their turn rules allow, and
// fully adaptive routers return every productive port (plus misroutes when
// blocked). Selection then applies congestion-awareness uniformly.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "netsim/rng.hpp"
#include "routing/port_list.hpp"
#include "topology/topology.hpp"

namespace ddpm::route {

using topo::NodeId;
using topo::Port;

/// Sentinel for "injected locally, did not arrive through a port".
inline constexpr Port kLocalPort = -1;

/// Dynamic link state the router may consult. Implemented over static
/// failure sets in tests and over live output-queue occupancy in the
/// cluster model.
class LinkStateView {
 public:
  virtual ~LinkStateView() = default;

  /// True iff the port exists at `node` and its link is operational.
  virtual bool link_usable(NodeId node, Port port) const = 0;

  /// Congestion metric for the link; larger is worse. Adaptive routers
  /// prefer smaller values. The default (0 everywhere) makes congestion
  /// selection degrade to first-candidate order.
  virtual double congestion(NodeId, Port) const { return 0.0; }

 protected:
  // C.67: suppress public copy through the base handle (slicing).
  LinkStateView() = default;
  LinkStateView(const LinkStateView&) = default;
  LinkStateView& operator=(const LinkStateView&) = default;
};

/// LinkStateView over topology geometry plus an optional failure set;
/// reports zero congestion.
class StaticLinkState final : public LinkStateView {
 public:
  explicit StaticLinkState(const topo::Topology& topo,
                           const topo::LinkFailureSet* failures = nullptr)
      : topo_(topo), failures_(failures) {}

  bool link_usable(NodeId node, Port port) const override {
    const auto next = topo_.neighbor(node, port);
    if (!next) return false;
    return failures_ == nullptr || !failures_->is_failed(node, *next);
  }

 private:
  const topo::Topology& topo_;
  const topo::LinkFailureSet* failures_;
};

class Router {
 public:
  explicit Router(const topo::Topology& topo) : topo_(topo) {}
  virtual ~Router() = default;

  virtual std::string name() const = 0;

  /// True for routers whose path between a fixed (src, dst) pair never
  /// varies (paper §3: "deterministic" vs "adaptive").
  virtual bool is_deterministic() const noexcept = 0;

  /// Preferred (productive) ports this algorithm permits at `current`
  /// toward `dest`. Does NOT filter by link state; `select_output` does.
  /// Returned by value in a fixed-capacity PortList: routing decisions
  /// run per flit in the wormhole loop, so the candidate set must never
  /// touch the allocator (routing/port_list.hpp).
  virtual PortList candidates(NodeId current, NodeId dest,
                              Port arrived_on) const = 0;

  /// Permitted misroute ports, consulted only when every preferred port is
  /// unusable. Empty for minimal algorithms.
  virtual PortList fallback_candidates(NodeId, NodeId, Port) const {
    return {};
  }

  /// True iff `candidates` depends only on (current, dest) — never on
  /// arrived_on or mutable router state — AND returns ports in strictly
  /// ascending order. Such candidate sets can be snapshotted into flat
  /// per-(node, dest) tables at network construction (the wormhole
  /// substrate does) with byte-identical routing behaviour. Leave false
  /// when unsure: false only costs the precompute, true wrongly claims
  /// arrival-invariance the tables would then bake in.
  virtual bool has_static_candidates() const noexcept { return false; }

  /// Picks the output port: the usable preferred candidate with the lowest
  /// congestion (random tie-break), falling back to misroute candidates
  /// when all preferred ports are unusable. Returns nullopt when every
  /// permitted port is unusable (the packet is blocked, as XY routing is in
  /// Figure 2(b)).
  virtual std::optional<Port> select_output(NodeId current, NodeId dest,
                                            Port arrived_on,
                                            const LinkStateView& links,
                                            netsim::Rng& rng) const;

  const topo::Topology& topology() const noexcept { return topo_; }

 protected:
  // C.67: a Router copied through the base handle would lose the derived
  // algorithm's state; keep copies within the derived types.
  Router(const Router&) = default;
  // The reference member makes assignment unimplementable anyway.
  Router& operator=(const Router&) = delete;

  const topo::Topology& topo_;
};

/// Constructs a router by name. Accepted names:
///   "dor" / "xy"      dimension-order (XY on 2-D mesh; e-cube on hypercube)
///   "west-first"      turn-model, 2-D mesh only
///   "north-last"      turn-model, 2-D mesh only
///   "negative-first"  turn-model, 2-D mesh only
///   "adaptive"        fully adaptive minimal, congestion-aware
///   "adaptive-misroute"  fully adaptive; misroutes when all minimal blocked
///   "oracle"          fault-aware shortest-path (upper bound; uses BFS)
///   "valiant"         randomized two-phase (non-minimal by design)
/// Throws std::invalid_argument for unknown names or incompatible topology.
std::unique_ptr<Router> make_router(const std::string& name,
                                    const topo::Topology& topo);

}  // namespace ddpm::route
