// Turn-model partially adaptive routing for the 2-D mesh (paper §3,
// Figure 2(b)).
//
// Glass & Ni's turn model removes just enough turns from the routing graph
// to break every deadlock cycle while leaving some adaptivity. We implement
// the three classic instances:
//
//   west-first      all westward hops happen first; turns *into* west
//                   (N->W, S->W) are prohibited. While the packet still
//                   needs to go west it may ONLY go west; afterwards it
//                   routes adaptively east/north/south, including
//                   non-minimal north/south detours (how Figure 2(b)'s
//                   packets get around the failed east links).
//   north-last      northward hops happen last; turns *out of* north are
//                   prohibited. The router is stateless per hop, so "I am
//                   heading north" is recovered from `arrived_on`.
//   negative-first  all negative-direction hops (west, north) first; turns
//                   from a positive into a negative direction prohibited.
//
// Axis convention (matches Figure 1's drawings): dimension 0 is X
// (west = decreasing, port 0; east = increasing, port 1); dimension 1 is Y
// (north = decreasing, port 2; south = increasing, port 3).
#pragma once

#include "routing/router.hpp"

namespace ddpm::route {

enum class TurnModel { kWestFirst, kNorthLast, kNegativeFirst };

std::string to_string(TurnModel model);

class TurnModelRouter final : public Router {
 public:
  /// Throws std::invalid_argument unless `topo` is a 2-D mesh.
  TurnModelRouter(const topo::Topology& topo, TurnModel model);

  std::string name() const override { return to_string(model_); }
  bool is_deterministic() const noexcept override { return false; }

  PortList candidates(NodeId current, NodeId dest,
                      Port arrived_on) const override;
  PortList fallback_candidates(NodeId current, NodeId dest,
                               Port arrived_on) const override;

  static constexpr Port kWest = 0;
  static constexpr Port kEast = 1;
  static constexpr Port kNorth = 2;
  static constexpr Port kSouth = 3;

 private:
  // `arrived_on` is the current node's port that connects back to the
  // previous node, so taking `arrived_on` itself is the 180-degree reversal
  // (prohibited by every model), and the packet's heading is its opposite
  // (arrived_on ^ 1).
  TurnModel model_;
};

}  // namespace ddpm::route
