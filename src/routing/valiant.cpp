#include "routing/valiant.hpp"

#include "routing/dor.hpp"

namespace ddpm::route {

namespace {

std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

PortList productive_ports(const topo::Topology& topo, NodeId current,
                          NodeId target) {
  PortList out;
  if (current == target) return out;
  if (topo.kind() == topo::TopologyKind::kHypercube) {
    const NodeId diff = current ^ target;
    for (Port p = 0; p < topo.num_ports(); ++p) {
      if (diff & (NodeId(1) << p)) out.push_back(p);
    }
    return out;
  }
  const topo::Coord a = topo.coord_of(current);
  const topo::Coord b = topo.coord_of(target);
  for (std::size_t d = 0; d < topo.num_dims(); ++d) {
    const int dir = productive_direction(topo, d, a[d], b[d]);
    if (dir != 0) out.push_back(static_cast<Port>(2 * d + (dir > 0 ? 1 : 0)));
  }
  return out;
}

}  // namespace

NodeId ValiantRouter::intermediate_for(NodeId dest) const {
  return NodeId(mix((std::uint64_t(dest) << 32) ^ salt_ ^
                    0xda3e39cb94b95bdbULL) %
                topo_.num_nodes());
}

PortList ValiantRouter::candidates(NodeId current, NodeId dest,
                                   Port /*arrived_on*/) const {
  if (current == dest) return {};
  const NodeId mid = intermediate_for(dest);
  const bool phase_two =
      current == mid ||
      topo_.min_hops(current, dest) < topo_.min_hops(mid, dest);
  return productive_ports(topo_, current, phase_two ? dest : mid);
}

}  // namespace ddpm::route
