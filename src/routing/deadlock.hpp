// Declared deadlock discipline per (router, topology) factory combo.
//
// Dally & Seitz: a routing function is deadlock-free on a blocking
// (wormhole / virtual-cut-through) substrate iff its channel dependency
// graph is acyclic. Every router the factory can construct therefore
// carries a declaration here: either its CDG is acyclic as-is, or it is
// only safe when the substrate supplies escape virtual channels (Duato's
// criterion — the escape subnetwork, dimension-order with torus dateline
// VCs in this codebase, must itself be acyclic).
//
// The declaration is the factory gate: `require_deadlock_safe` throws when
// a blocking substrate instantiates a combo without the VCs its
// declaration demands, and `ddpm_verify --cdg` (the tier-1 `verify_cdg`
// test) recomputes every combo's CDG and fails the build when a
// declaration contradicts the graph — a wrong entry here cannot ship.
// The packet-switched cluster model is exempt by construction: its
// output-queued switches drop on full rather than block, so they never
// hold a channel while waiting for another (see docs/VERIFICATION.md).
#pragma once

#include <string>

#include "routing/router.hpp"

namespace ddpm::route {

enum class DeadlockClass {
  /// Channel dependency graph is acyclic with a single virtual channel:
  /// safe on any substrate with no further mechanism.
  kAcyclic,
  /// CDG is (or may be) cyclic; safe on a blocking substrate only when
  /// packets can always fall back to an acyclic escape subnetwork
  /// (dimension-order, with two dateline VCs per torus ring).
  kNeedsEscapeVcs,
};

std::string to_string(DeadlockClass cls);

/// The discipline declared for `router` on its topology. Matches the
/// factory's name set (`make_router`); unknown names map to
/// kNeedsEscapeVcs — the conservative default for anything unvetted.
DeadlockClass declared_deadlock_class(const std::string& router_name,
                                      const topo::Topology& topo);

inline DeadlockClass declared_deadlock_class(const Router& router) {
  return declared_deadlock_class(router.name(), router.topology());
}

/// The gate for blocking substrates: throws std::invalid_argument when the
/// combo is declared kNeedsEscapeVcs and `escape_vcs_available` is false.
/// Queue-and-drop substrates (the cluster model) need not call this.
void require_deadlock_safe(const Router& router, bool escape_vcs_available);

}  // namespace ddpm::route
