#include "routing/dor.hpp"

#include "core/check.hpp"

namespace ddpm::route {

namespace {

constexpr Port cartesian_port(std::size_t dim, int dir) noexcept {
  return static_cast<Port>(2 * dim + (dir > 0 ? 1 : 0));
}

}  // namespace

int productive_direction(const topo::Topology& topo, std::size_t d, int a, int b) {
  if (a == b) return 0;
  if (topo.kind() == topo::TopologyKind::kTorus) {
    // Shorter way round; ring_shortest_delta ties go positive.
    return topo::ring_shortest_delta(a, b, topo.dim_size(d)) > 0 ? +1 : -1;
  }
  return b > a ? +1 : -1;
}

PortList DimensionOrderRouter::candidates(NodeId current, NodeId dest,
                                          Port /*arrived_on*/) const {
  if (current == dest) return {};
  if (topo_.kind() == topo::TopologyKind::kHypercube) {
    // e-cube: flip the lowest-order differing bit.
    const NodeId diff = current ^ dest;
    for (Port p = 0; p < topo_.num_ports(); ++p) {
      if (diff & (NodeId(1) << p)) return {p};
    }
    return {};
  }
  const topo::Coord a = topo_.coord_of(current);
  const topo::Coord b = topo_.coord_of(dest);
  for (std::size_t d = 0; d < topo_.num_dims(); ++d) {
    const int dir = productive_direction(topo_, d, a[d], b[d]);
    if (dir != 0) {
      const Port p = cartesian_port(d, dir);
      DDPM_DCHECK(p >= 0 && p < topo_.num_ports(),
                  "dimension-order port escaped the switch radix");
      return {p};
    }
  }
  return {};
}

}  // namespace ddpm::route
