#include "routing/adaptive.hpp"

#include <algorithm>

#include "core/check.hpp"
#include "routing/dor.hpp"

namespace ddpm::route {

PortList AdaptiveRouter::candidates(NodeId current, NodeId dest,
                                    Port /*arrived_on*/) const {
  PortList out;
  if (current == dest) return out;
  if (topo_.kind() == topo::TopologyKind::kHypercube) {
    const NodeId diff = current ^ dest;
    for (Port p = 0; p < topo_.num_ports(); ++p) {
      if (diff & (NodeId(1) << p)) out.push_back(p);
    }
    return out;
  }
  const topo::Coord a = topo_.coord_of(current);
  const topo::Coord b = topo_.coord_of(dest);
  for (std::size_t d = 0; d < topo_.num_dims(); ++d) {
    const int dir = productive_direction(topo_, d, a[d], b[d]);
    if (dir != 0) out.push_back(static_cast<Port>(2 * d + (dir > 0 ? 1 : 0)));
  }
  DDPM_DCHECK(out.size() <= std::size_t(topo_.num_ports()),
              "more productive ports than switch ports");
  return out;
}

PortList MisroutingAdaptiveRouter::fallback_candidates(NodeId current,
                                                       NodeId dest,
                                                       Port arrived_on) const {
  const auto productive = candidates(current, dest, arrived_on);
  PortList out;
  for (Port p = 0; p < topo_.num_ports(); ++p) {
    if (p == arrived_on) continue;  // no 180-degree reversal
    if (std::find(productive.begin(), productive.end(), p) != productive.end()) {
      continue;
    }
    out.push_back(p);
  }
  return out;
}

}  // namespace ddpm::route
