// Valiant-style randomized two-phase routing.
//
// Packets are routed minimally to an intermediate node first, then
// minimally to the destination. The detour decorrelates paths from the
// source — the strongest form of the "route is not stable" property the
// paper assumes (§4.1) — and makes paths non-minimal by design (~2x
// longer on average), which is exactly the stress a path-independent
// marking scheme must survive.
//
// The Router interface is per-hop stateless (it sees only node ids), so
// the intermediate is derived deterministically as hash(destination,
// salt): all traffic to one destination shares a detour, different
// destinations detour differently, and sweeping `salt` (e.g. per packet
// in a bench) gives the full per-packet Valiant behaviour.
//
// Phase rule (stateless, loop-free): route toward the intermediate until
// the packet reaches it OR is already strictly closer to the destination
// than the intermediate is; then route toward the destination. The phase
// predicate can only flip forward, and each phase's distance strictly
// decreases, so every walk terminates.
#pragma once

#include "routing/router.hpp"

namespace ddpm::route {

class ValiantRouter final : public Router {
 public:
  explicit ValiantRouter(const topo::Topology& topo, std::uint64_t salt = 0)
      : Router(topo), salt_(salt) {}

  std::string name() const override { return "valiant"; }
  bool is_deterministic() const noexcept override { return false; }

  PortList candidates(NodeId current, NodeId dest,
                      Port arrived_on) const override;

  /// The intermediate node used for traffic toward `dest` (tests/benches).
  NodeId intermediate_for(NodeId dest) const;

 private:
  std::uint64_t salt_;
};

}  // namespace ddpm::route
