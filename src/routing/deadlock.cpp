#include "routing/deadlock.hpp"

#include <stdexcept>

namespace ddpm::route {

std::string to_string(DeadlockClass cls) {
  switch (cls) {
    case DeadlockClass::kAcyclic: return "acyclic";
    case DeadlockClass::kNeedsEscapeVcs: return "needs-escape-vcs";
  }
  return "unknown";
}

DeadlockClass declared_deadlock_class(const std::string& router_name,
                                      const topo::Topology& topo) {
  if (router_name == "dor" || router_name == "xy" || router_name == "ecube") {
    // Dimension-order is acyclic on meshes and hypercubes (strictly
    // monotone dimension traversal); torus wrap rings reintroduce a cycle
    // per ring, broken by the substrate's two dateline VCs.
    return topo.kind() == topo::TopologyKind::kTorus
               ? DeadlockClass::kNeedsEscapeVcs
               : DeadlockClass::kAcyclic;
  }
  if (router_name == "west-first" || router_name == "north-last" ||
      router_name == "negative-first") {
    // Turn models prohibit enough turns to break every cycle on the 2-D
    // mesh — the only topology the factory constructs them for.
    return DeadlockClass::kAcyclic;
  }
  // Fully adaptive (± misrouting), the BFS oracle, and Valiant all permit
  // every turn somewhere, so their CDGs are cyclic on any topology with a
  // cycle; unknown names get the same conservative treatment.
  return DeadlockClass::kNeedsEscapeVcs;
}

void require_deadlock_safe(const Router& router, bool escape_vcs_available) {
  if (declared_deadlock_class(router) == DeadlockClass::kNeedsEscapeVcs &&
      !escape_vcs_available) {
    throw std::invalid_argument(
        "router '" + router.name() + "' on " + router.topology().spec() +
        " has a cyclic channel dependency graph; a blocking substrate must "
        "provide escape virtual channels (see docs/VERIFICATION.md)");
  }
}

}  // namespace ddpm::route
