#include "routing/turn_model.hpp"

#include <stdexcept>

namespace ddpm::route {

std::string to_string(TurnModel model) {
  switch (model) {
    case TurnModel::kWestFirst: return "west-first";
    case TurnModel::kNorthLast: return "north-last";
    case TurnModel::kNegativeFirst: return "negative-first";
  }
  return "unknown";
}

TurnModelRouter::TurnModelRouter(const topo::Topology& topo, TurnModel model)
    : Router(topo), model_(model) {
  if (topo.kind() != topo::TopologyKind::kMesh || topo.num_dims() != 2) {
    throw std::invalid_argument("TurnModelRouter requires a 2-D mesh");
  }
}

namespace {

struct Delta {
  int dx;  // >0: east needed, <0: west needed
  int dy;  // >0: south needed, <0: north needed
};

Delta delta_of(const topo::Topology& topo, NodeId current, NodeId dest) {
  const topo::Coord a = topo.coord_of(current);
  const topo::Coord b = topo.coord_of(dest);
  return {int(b[0]) - int(a[0]), int(b[1]) - int(a[1])};
}

void drop(PortList& ports, Port banned) { ports.erase_value(banned); }

}  // namespace

PortList TurnModelRouter::candidates(NodeId current, NodeId dest,
                                     Port arrived_on) const {
  if (current == dest) return {};
  const auto [dx, dy] = delta_of(topo_, current, dest);
  PortList out;
  switch (model_) {
    case TurnModel::kWestFirst:
      // Westward leg is mandatory and exclusive while dx < 0.
      if (dx < 0) return {kWest};
      if (dx > 0) out.push_back(kEast);
      if (dy < 0) out.push_back(kNorth);
      if (dy > 0) out.push_back(kSouth);
      break;
    case TurnModel::kNorthLast:
      // Once heading north (we arrived through our south port), turning is
      // prohibited: keep going north.
      if (arrived_on == kSouth) return {kNorth};
      if (dx < 0) out.push_back(kWest);
      if (dx > 0) out.push_back(kEast);
      if (dy > 0) out.push_back(kSouth);
      // North is allowed only when no east/west correction remains, making
      // it the final leg.
      if (dy < 0 && dx == 0) out.push_back(kNorth);
      break;
    case TurnModel::kNegativeFirst:
      // Negative (west/north) hops first, adaptively between themselves.
      if (dx < 0 || dy < 0) {
        if (dx < 0) out.push_back(kWest);
        if (dy < 0) out.push_back(kNorth);
        return out;
      }
      if (dx > 0) out.push_back(kEast);
      if (dy > 0) out.push_back(kSouth);
      break;
  }
  // 180-degree reversal is prohibited by every model. Minimal routing can
  // never produce one, but after a fallback misroute the minimal set DOES
  // contain the port straight back — the reachable-state CDG verifier
  // (src/verify/cdg.cpp) convicts the resulting south->north/north->south
  // dependency cycle, so the ban must live here, not only in the fallback.
  if (arrived_on != kLocalPort) drop(out, arrived_on);
  return out;
}

PortList TurnModelRouter::fallback_candidates(NodeId current, NodeId dest,
                                              Port arrived_on) const {
  if (current == dest) return {};
  const auto [dx, dy] = delta_of(topo_, current, dest);
  PortList out;
  switch (model_) {
    case TurnModel::kWestFirst:
      // While westbound no other direction is permitted at all.
      if (dx < 0) return {};
      // North/south are free directions under west-first (turns into them
      // are always legal), so non-minimal detours are allowed — this is the
      // escape route in Figure 2(b). East when dx == 0 would force a later
      // (prohibited) turn into west, so it is not offered.
      if (dy >= 0) out.push_back(kNorth);
      if (dy <= 0) out.push_back(kSouth);
      break;
    case TurnModel::kNorthLast:
      if (arrived_on == kSouth) return {};  // committed to north
      // East/west/south turn freely among themselves; misrouting on them is
      // legal. Misrouting north is not offered: it would commit the packet.
      if (dx >= 0) out.push_back(kWest);
      if (dx <= 0) out.push_back(kEast);
      if (dy <= 0) out.push_back(kSouth);
      break;
    case TurnModel::kNegativeFirst:
      // In the negative phase, extra west/north hops keep the packet in the
      // negative phase, so they are legal detours.
      if (dx < 0 || dy < 0) {
        if (dx >= 0) out.push_back(kWest);
        if (dy >= 0) out.push_back(kNorth);
      }
      // In the positive phase any extra east/south hop would require a
      // prohibited positive->negative turn to undo; no fallback exists.
      break;
  }
  // 180-degree reversal is never legal.
  if (arrived_on != kLocalPort) drop(out, arrived_on);
  return out;
}

}  // namespace ddpm::route
