// Fully adaptive routing (paper §3, Figure 2(c)).
//
// The minimal variant offers every productive port each hop and picks the
// least congested usable one, so paths between a fixed pair vary with
// network state — exactly the property that breaks path-recording
// traceback schemes (paper §4) and that DDPM must survive.
//
// The misrouting variant additionally derails to any usable non-productive
// port when all productive ports are blocked (no 180-degree reversal).
// Misrouting admits livelock in theory; in the simulator the packet TTL
// bounds it, mirroring the livelock-recovery schemes the paper mentions
// (§4.1: "many adaptive routing algorithms allow a packet to revisit the
// same node").
#pragma once

#include "routing/router.hpp"

namespace ddpm::route {

class AdaptiveRouter : public Router {
 public:
  /// Works on mesh, torus, and hypercube.
  explicit AdaptiveRouter(const topo::Topology& topo) : Router(topo) {}

  std::string name() const override { return "adaptive"; }
  bool is_deterministic() const noexcept override { return false; }
  // Productive ports are a pure function of the coordinate delta, emitted
  // in ascending dimension order (inherited by the misrouting variant,
  // whose `candidates` is the same minimal set).
  bool has_static_candidates() const noexcept override { return true; }

  /// Every productive (distance-reducing) port.
  PortList candidates(NodeId current, NodeId dest,
                      Port arrived_on) const override;
};

class MisroutingAdaptiveRouter final : public AdaptiveRouter {
 public:
  explicit MisroutingAdaptiveRouter(const topo::Topology& topo)
      : AdaptiveRouter(topo) {}

  std::string name() const override { return "adaptive-misroute"; }

  /// Every existing non-productive port except the 180-degree reversal.
  PortList fallback_candidates(NodeId current, NodeId dest,
                               Port arrived_on) const override;
};

}  // namespace ddpm::route
