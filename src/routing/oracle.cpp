#include "routing/oracle.hpp"

#include <deque>
#include <limits>

namespace ddpm::route {

PortList OracleRouter::candidates(NodeId current, NodeId dest,
                                  Port /*arrived_on*/) const {
  // Without link state, fall back to geometry: every port that moves
  // strictly closer by the topology's own metric.
  PortList out;
  if (current == dest) return out;
  const int here = topo_.min_hops(current, dest);
  for (Port p = 0; p < topo_.num_ports(); ++p) {
    const auto next = topo_.neighbor(current, p);
    if (next && topo_.min_hops(*next, dest) < here) out.push_back(p);
  }
  return out;
}

PortList OracleRouter::usable_shortest_ports(NodeId current, NodeId dest,
                                             const LinkStateView& links) const {
  // BFS from `dest` over usable links (treated as symmetric) gives each
  // node its usable-path distance; productive ports step down by one.
  std::vector<int> dist(topo_.num_nodes(), -1);
  dist[dest] = 0;
  std::deque<NodeId> frontier{dest};
  while (!frontier.empty() && dist[current] < 0) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (Port p = 0; p < topo_.num_ports(); ++p) {
      const auto v = topo_.neighbor(u, p);
      if (!v || dist[*v] >= 0 || !links.link_usable(u, p)) continue;
      dist[*v] = dist[u] + 1;
      frontier.push_back(*v);
    }
  }
  PortList out;
  if (dist[current] <= 0) return out;  // unreachable, or already there
  for (Port p = 0; p < topo_.num_ports(); ++p) {
    const auto next = topo_.neighbor(current, p);
    if (!next || !links.link_usable(current, p)) continue;
    if (dist[*next] >= 0 && dist[*next] == dist[current] - 1) out.push_back(p);
  }
  return out;
}

std::optional<Port> OracleRouter::select_output(NodeId current, NodeId dest,
                                                Port arrived_on,
                                                const LinkStateView& links,
                                                netsim::Rng& rng) const {
  (void)arrived_on;
  const auto ports = usable_shortest_ports(current, dest, links);
  if (ports.empty()) return std::nullopt;
  // Least congested among shortest-path ports, random tie-break.
  double best = std::numeric_limits<double>::infinity();
  PortList best_ports;
  for (Port p : ports) {
    const double c = links.congestion(current, p);
    if (c < best) {
      best = c;
      best_ports.assign(1, p);
    } else if (c == best) {
      best_ports.push_back(p);
    }
  }
  if (best_ports.size() == 1) return best_ports.front();
  return best_ports[rng.next_below(best_ports.size())];
}

}  // namespace ddpm::route
