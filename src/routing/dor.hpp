// Dimension-order routing (deterministic; paper §3 "XY routing" on the
// 2-D mesh, e-cube on the hypercube).
//
// The packet corrects dimensions in ascending order: all dimension-0 hops,
// then dimension 1, and so on. On the torus each dimension takes the
// shorter ring direction. There is exactly one permitted port per hop, so
// a blocked link blocks the packet — the behaviour Figure 2(b) shows.
#pragma once

#include "routing/router.hpp"

namespace ddpm::route {

class DimensionOrderRouter final : public Router {
 public:
  explicit DimensionOrderRouter(const topo::Topology& topo) : Router(topo) {}

  std::string name() const override { return "dor"; }
  bool is_deterministic() const noexcept override { return true; }
  // One port, chosen from (current, dest) coordinates alone.
  bool has_static_candidates() const noexcept override { return true; }

  PortList candidates(NodeId current, NodeId dest,
                      Port arrived_on) const override;
};

/// Signed step direction (-1 or +1) that dimension-order routing takes in
/// dimension `d` from coordinate `a` toward `b`, or 0 if already aligned.
/// Exposed for reuse by the adaptive routers.
int productive_direction(const topo::Topology& topo, std::size_t d, int a, int b);

}  // namespace ddpm::route
