#include "routing/router.hpp"

#include <limits>

#include "core/check.hpp"

namespace ddpm::route {

namespace {

/// Least-congested usable port from `ports`, random tie-break; nullopt if
/// none is usable.
std::optional<Port> pick(const PortList& ports, NodeId current,
                         const LinkStateView& links, netsim::Rng& rng) {
  double best = std::numeric_limits<double>::infinity();
  PortList best_ports;
  for (Port p : ports) {
    if (!links.link_usable(current, p)) continue;
    const double c = links.congestion(current, p);
    if (c < best) {
      best = c;
      best_ports.assign(1, p);
    } else if (c == best) {
      best_ports.push_back(p);
    }
  }
  if (best_ports.empty()) return std::nullopt;
  if (best_ports.size() == 1) return best_ports.front();
  return best_ports[rng.next_below(best_ports.size())];
}

}  // namespace

std::optional<Port> Router::select_output(NodeId current, NodeId dest,
                                          Port arrived_on,
                                          const LinkStateView& links,
                                          netsim::Rng& rng) const {
  DDPM_DCHECK(topo_.contains(current) && topo_.contains(dest),
              "select_output: node id outside topology");
  auto valid_out = [this, current](std::optional<Port> p) {
    // Every emitted port must exist at `current` and lead somewhere: a
    // routing policy that fabricates ports would make the cluster model
    // dereference a nonexistent link.
    DDPM_DCHECK(!p || (*p >= 0 && *p < topo_.num_ports()),
                "select_output: port index out of range");
    DDPM_DCHECK(!p || topo_.neighbor(current, *p).has_value(),
                "select_output: port has no neighbor");
    return p;
  };
  if (auto p = pick(candidates(current, dest, arrived_on), current, links, rng)) {
    return valid_out(p);
  }
  return valid_out(
      pick(fallback_candidates(current, dest, arrived_on), current, links, rng));
}

}  // namespace ddpm::route
