#include <stdexcept>

#include "routing/adaptive.hpp"
#include "routing/dor.hpp"
#include "routing/oracle.hpp"
#include "routing/router.hpp"
#include "routing/turn_model.hpp"
#include "routing/valiant.hpp"

namespace ddpm::route {

std::unique_ptr<Router> make_router(const std::string& name,
                                    const topo::Topology& topo) {
  if (name == "dor" || name == "xy" || name == "ecube") {
    return std::make_unique<DimensionOrderRouter>(topo);
  }
  if (name == "west-first") {
    return std::make_unique<TurnModelRouter>(topo, TurnModel::kWestFirst);
  }
  if (name == "north-last") {
    return std::make_unique<TurnModelRouter>(topo, TurnModel::kNorthLast);
  }
  if (name == "negative-first") {
    return std::make_unique<TurnModelRouter>(topo, TurnModel::kNegativeFirst);
  }
  if (name == "adaptive") {
    return std::make_unique<AdaptiveRouter>(topo);
  }
  if (name == "adaptive-misroute") {
    return std::make_unique<MisroutingAdaptiveRouter>(topo);
  }
  if (name == "oracle") {
    return std::make_unique<OracleRouter>(topo);
  }
  if (name == "valiant") {
    return std::make_unique<ValiantRouter>(topo);
  }
  throw std::invalid_argument("make_router: unknown router '" + name + "'");
}

}  // namespace ddpm::route
