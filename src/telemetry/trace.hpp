// Chrome trace_event emitter: scoped-duration spans, instant events, and
// counter tracks, ring-buffered and flushed to a sink as JSON that
// chrome://tracing and Perfetto open directly.
//
// Timestamps come from the owning simulator's clock (register it with
// set_clock); one simulation tick renders as one microsecond, so a 50-tick
// link hop reads as 50 µs on the timeline. Events append in nondecreasing
// ts order because the simulators' clocks are monotonic; the ring buffer
// overwrites the OLDEST events when full (the tail of a run is usually the
// interesting part of a DDoS timeline) and counts what it dropped.
//
// Hot-path cost: every recording call starts with the `enabled_` test, and
// event names/arg keys are captured as `const char*` — callers must pass
// string literals (or otherwise immortal strings) so recording never
// copies or allocates. Rendering happens only in flush().
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace ddpm::telemetry {

class Tracer {
 public:
  /// `ring_capacity` bounds retained events; 0 is clamped to 1.
  explicit Tracer(std::size_t ring_capacity = std::size_t{1} << 16);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Registers the simulation clock the events are stamped with. The
  /// pointee must outlive the tracer's recording phase.
  void set_clock(const std::uint64_t* ticks) noexcept { clock_ = ticks; }
  std::uint64_t now() const noexcept { return clock_ != nullptr ? *clock_ : 0; }

  /// Runtime gate: a disabled tracer records nothing.
  void set_enabled(bool on) noexcept { enabled_ = on; }
  bool enabled() const noexcept { return enabled_; }

  /// Timeline naming (rendered as Chrome "M" metadata events on flush).
  void set_process_name(std::uint32_t pid, std::string name);
  void set_thread_name(std::uint32_t pid, std::uint32_t tid, std::string name);

  /// Complete ("X") event covering [start, end]. `name` must be immortal.
  void complete(const char* name, std::uint32_t pid, std::uint32_t tid,
                std::uint64_t start, std::uint64_t end) {
    if (enabled_) record('X', name, pid, tid, start, end - start, nullptr, 0);
  }
  /// Instant ("i") event at the current clock, with an optional numeric arg.
  void instant(const char* name, std::uint32_t pid, std::uint32_t tid,
               const char* arg_key = nullptr, double arg = 0.0) {
    if (enabled_) record('i', name, pid, tid, now(), 0, arg_key, arg);
  }
  /// Counter ("C") track sample at the current clock.
  void counter(const char* name, std::uint32_t pid, double value) {
    if (enabled_) record('C', name, pid, 0, now(), 0, "value", value);
  }

  /// Events currently retained / recorded in total / evicted by the ring.
  std::size_t retained() const noexcept;
  std::uint64_t recorded() const noexcept { return recorded_; }
  std::uint64_t dropped() const noexcept { return dropped_; }

  /// Renders the retained events as one Chrome trace JSON object.
  void flush(std::ostream& out) const;
  /// flush() into a string (tests, small traces).
  std::string flush_to_string() const;

  /// Discards retained events; names and the clock binding survive.
  void clear() noexcept;

 private:
  struct Event {
    std::uint64_t ts = 0;
    std::uint64_t dur = 0;
    const char* name = nullptr;
    const char* arg_key = nullptr;
    double arg = 0.0;
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
    char phase = 'i';
  };

  void record(char phase, const char* name, std::uint32_t pid,
              std::uint32_t tid, std::uint64_t ts, std::uint64_t dur,
              const char* arg_key, double arg);

  std::vector<Event> ring_;
  std::size_t capacity_;
  std::size_t next_ = 0;  // slot the next event lands in
  bool wrapped_ = false;
  bool enabled_ = true;
  const std::uint64_t* clock_ = nullptr;
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<std::pair<std::uint32_t, std::string>> process_names_;
  std::vector<std::pair<std::pair<std::uint32_t, std::uint32_t>, std::string>>
      thread_names_;
};

/// RAII scoped-duration span: records a complete event from construction to
/// destruction against the tracer's clock. Null tracer (or disabled) makes
/// the span inert.
class TraceSpan {
 public:
  TraceSpan(Tracer* tracer, const char* name, std::uint32_t pid,
            std::uint32_t tid) noexcept
      : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr),
        name_(name),
        pid_(pid),
        tid_(tid),
        start_(tracer_ != nullptr ? tracer_->now() : 0) {}

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (tracer_ != nullptr) {
      tracer_->complete(name_, pid_, tid_, start_, tracer_->now());
    }
  }

 private:
  Tracer* tracer_;
  const char* name_;
  std::uint32_t pid_;
  std::uint32_t tid_;
  std::uint64_t start_;
};

}  // namespace ddpm::telemetry
