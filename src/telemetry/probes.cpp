#include "telemetry/probes.hpp"

namespace ddpm::telemetry {

void name_standard_processes(Tracer& tracer) {
  tracer.set_process_name(kPidKernel, "event kernel");
  tracer.set_process_name(kPidCluster, "cluster switches");
  tracer.set_process_name(kPidPipeline, "detect/identify/block");
  tracer.set_process_name(kPidWormhole, "wormhole substrate");
}

#if DDPM_TELEMETRY_ENABLED

void SwitchProbes::bind(Registry* registry, std::uint32_t switch_id,
                        const std::vector<std::string>& port_labels) {
  if (registry == nullptr) return;
  const std::string sw = "switch=" + std::to_string(switch_id);
  forwarded_ = registry->counter("switch.forwarded", sw);
  delivered_ = registry->counter("switch.delivered_local", sw);
  mark_hooks_ = registry->counter("switch.mark_hooks", sw);
  drop_queue_full_ = registry->counter("switch.drop_queue_full", sw);
  drop_no_route_ = registry->counter("switch.drop_no_route", sw);
  drop_ttl_ = registry->counter("switch.drop_ttl", sw);
  // Queue occupancy in packets; the upper edge tracks the deepest queue a
  // default config allows (capacity 16) with headroom for larger configs.
  queue_depth_ = registry->histogram("switch.queue_depth", sw, 0.0, 64.0, 64);
  port_tx_packets_.reserve(port_labels.size());
  port_tx_bytes_.reserve(port_labels.size());
  port_busy_ticks_.reserve(port_labels.size());
  for (const std::string& label : port_labels) {
    const std::string port = sw + ",port=" + label;
    port_tx_packets_.push_back(registry->counter("link.tx_packets", port));
    port_tx_bytes_.push_back(registry->counter("link.tx_bytes", port));
    port_busy_ticks_.push_back(registry->counter("link.busy_ticks", port));
  }
}

void MarkProbes::bind(Registry* registry, const std::string& scheme_name) {
  if (registry == nullptr) return;
  const std::string labels = "scheme=" + scheme_name;
  marks_ = registry->counter("mark.applied", labels);
  saturations_ = registry->counter("mark.field_saturations", labels);
}

void PipelineProbes::bind(Registry* registry, Tracer* tracer) {
  tracer_ = tracer;
  if (registry == nullptr) return;
  detector_firings_ = registry->counter("detect.firings");
  identify_attempts_ = registry->counter("identify.attempts");
  identify_unique_ = registry->counter("identify.unique");
  identify_ambiguous_ = registry->counter("identify.ambiguous");
  identify_none_ = registry->counter("identify.none");
  identified_correct_ = registry->counter("identify.correct");
  identified_innocent_ = registry->counter("identify.innocent");
  blocks_installed_ = registry->counter("mitigate.blocks_installed");
  detect_latency_ = registry->gauge("detect.latency_ticks");
  detect_memory_ = registry->gauge("detect.memory_bytes");
}

void WormholeProbes::bind(Registry* registry) {
  if (registry == nullptr) return;
  vc_allocs_ = registry->counter("wormhole.vc_allocs");
  alloc_stalls_ = registry->counter("wormhole.alloc_stalls");
  credit_stalls_ = registry->counter("wormhole.credit_stalls");
  flits_forwarded_ = registry->counter("wormhole.flits_forwarded");
  delivered_ = registry->counter("wormhole.delivered_packets");
  buffer_occupancy_ =
      registry->histogram("wormhole.buffer_occupancy", {}, 0.0, 32.0, 32);
}

void TcpProbes::bind(Registry* registry) {
  if (registry == nullptr) return;
  attempted_ = registry->counter("tcp.syn_attempted");
  refused_ = registry->counter("tcp.refused");
  established_ = registry->counter("tcp.established");
  completed_ = registry->counter("tcp.completed");
  client_timeouts_ = registry->counter("tcp.client_timeouts");
  half_open_expired_ = registry->counter("tcp.half_open_expired");
  attack_syns_ = registry->counter("tcp.attack_syns");
  backscatter_ = registry->counter("tcp.backscatter");
}

#endif  // DDPM_TELEMETRY_ENABLED

}  // namespace ddpm::telemetry
