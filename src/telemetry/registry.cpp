#include "telemetry/registry.hpp"

#include <algorithm>
#include <sstream>

namespace ddpm::telemetry {

void HistogramHandle::add_bound(double x) noexcept {
  ++slot_->total;
  slot_->sum += x;
  if (x < slot_->lo) {
    ++slot_->underflow;
  } else if (x >= slot_->hi) {
    ++slot_->overflow;
  } else {
    // Floating-point bin scaling (see netsim/stats.cpp for why not a
    // reciprocal multiply).
    ++slot_->bins[static_cast<std::size_t>(
        (x - slot_->lo) / slot_->width)];  // ddpm-analyze: allow(hot-no-div)
  }
}

std::string Registry::make_key(std::string_view name, std::string_view labels) {
  std::string key(name);
  if (!labels.empty()) {
    key += '{';
    key += labels;
    key += '}';
  }
  return key;
}

template <typename SlotT>
SlotT* Registry::find_or_create(
    std::deque<std::pair<std::string, SlotT>>& slots,
    std::unordered_map<std::string, SlotT*>& index, std::string key) {
  const auto it = index.find(key);
  if (it != index.end()) return it->second;
  slots.emplace_back(std::move(key), SlotT{});
  SlotT* slot = &slots.back().second;
  index.emplace(slots.back().first, slot);
  return slot;
}

Counter Registry::counter(std::string_view name, std::string_view labels) {
  if (!enabled_) return Counter{};
  const core::MutexLock lock(mutex_);
  return Counter(
      find_or_create(counters_, counter_index_, make_key(name, labels)));
}

Gauge Registry::gauge(std::string_view name, std::string_view labels) {
  if (!enabled_) return Gauge{};
  const core::MutexLock lock(mutex_);
  return Gauge(find_or_create(gauges_, gauge_index_, make_key(name, labels)));
}

HistogramHandle Registry::histogram(std::string_view name,
                                    std::string_view labels, double lo,
                                    double hi, std::size_t bins) {
  if (!enabled_) return HistogramHandle{};
  const core::MutexLock lock(mutex_);
  auto* slot = find_or_create(histograms_, histogram_index_,
                              make_key(name, labels));
  if (slot->bins.empty()) {
    slot->lo = lo;
    slot->hi = hi;
    slot->width = (hi - lo) / double(bins ? bins : 1);
    slot->bins.assign(bins ? bins : 1, 0);
  }
  return HistogramHandle(slot);
}

MetricsSnapshot Registry::snapshot() const {
  const core::MutexLock lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [key, value] : counters_) {
    snap.counters.push_back({key, value});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [key, slot] : gauges_) {
    snap.gauges.push_back({key, slot.value, slot.peak});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [key, slot] : histograms_) {
    snap.histograms.push_back({key, slot.lo, slot.hi, slot.underflow,
                               slot.overflow, slot.total, slot.sum,
                               slot.bins});
  }
  const auto by_key = [](const auto& a, const auto& b) { return a.key < b.key; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_key);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_key);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_key);
  return snap;
}

void Registry::reset() {
  const core::MutexLock lock(mutex_);
  for (auto& [key, value] : counters_) value = 0;
  for (auto& [key, slot] : gauges_) slot = Gauge::Slot{};
  for (auto& [key, slot] : histograms_) {
    slot.underflow = slot.overflow = slot.total = 0;
    slot.sum = 0.0;
    std::fill(slot.bins.begin(), slot.bins.end(), std::uint64_t{0});
  }
}

std::uint64_t MetricsSnapshot::counter_value(std::string_view key) const noexcept {
  const auto it = std::lower_bound(
      counters.begin(), counters.end(), key,
      [](const CounterEntry& e, std::string_view k) { return e.key < k; });
  return (it != counters.end() && it->key == key) ? it->value : 0;
}

std::uint64_t MetricsSnapshot::counter_sum_prefix(
    std::string_view prefix) const noexcept {
  std::uint64_t sum = 0;
  for (const CounterEntry& e : counters) {
    if (e.key.size() >= prefix.size() &&
        std::string_view(e.key).substr(0, prefix.size()) == prefix) {
      sum += e.value;
    }
  }
  return sum;
}

namespace {

/// Merges `from` into the key-sorted vector `into`: matching keys fold via
/// `fold`, new keys land in sorted position. Replication merges dominate
/// (summarize folds N identical-shaped snapshots), so the aligned cases are
/// fast paths: an empty accumulator adopts `from` wholesale, and identical
/// key sets fold element-wise with no allocation. Disjoint shapes fall back
/// to a single linear two-pointer merge — never per-entry vector::insert.
template <typename Entry, typename Fold>
void merge_sorted(std::vector<Entry>& into, const std::vector<Entry>& from,
                  Fold fold) {
  if (from.empty()) return;
  if (into.empty()) {
    into = from;
    return;
  }
  if (into.size() == from.size()) {
    bool aligned = true;
    for (std::size_t i = 0; i < into.size(); ++i) {
      if (into[i].key != from[i].key) {
        aligned = false;
        break;
      }
    }
    if (aligned) {
      for (std::size_t i = 0; i < into.size(); ++i) fold(into[i], from[i]);
      return;
    }
  }
  std::vector<Entry> merged;
  merged.reserve(into.size() + from.size());
  auto a = into.begin();
  auto b = from.begin();
  while (a != into.end() && b != from.end()) {
    if (a->key < b->key) {
      merged.push_back(std::move(*a++));
    } else if (b->key < a->key) {
      merged.push_back(*b++);
    } else {
      fold(*a, *b);
      merged.push_back(std::move(*a++));
      ++b;
    }
  }
  for (; a != into.end(); ++a) merged.push_back(std::move(*a));
  for (; b != from.end(); ++b) merged.push_back(*b);
  into = std::move(merged);
}

/// Doubles render with max_digits10 round-trip precision so a snapshot's
/// JSON/CSV is a faithful fingerprint for the determinism suite.
void write_double(std::ostream& os, double v) {
  std::ostringstream tmp;
  tmp.precision(17);
  tmp << v;
  os << tmp.str();
}

void json_escape(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

}  // namespace

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  merge_sorted(counters, other.counters,
               [](CounterEntry& a, const CounterEntry& b) { a.value += b.value; });
  merge_sorted(gauges, other.gauges, [](GaugeEntry& a, const GaugeEntry& b) {
    a.value += b.value;
    a.peak = std::max(a.peak, b.peak);
  });
  merge_sorted(histograms, other.histograms,
               [](HistogramEntry& a, const HistogramEntry& b) {
                 a.underflow += b.underflow;
                 a.overflow += b.overflow;
                 a.total += b.total;
                 a.sum += b.sum;
                 if (a.bins.size() == b.bins.size()) {
                   for (std::size_t i = 0; i < a.bins.size(); ++i) {
                     a.bins[i] += b.bins[i];
                   }
                 }
               });
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    os << (i ? "," : "") << "\n    \"";
    json_escape(os, counters[i].key);
    os << "\": " << counters[i].value;
  }
  os << (counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    os << (i ? "," : "") << "\n    \"";
    json_escape(os, gauges[i].key);
    os << "\": {\"value\": ";
    write_double(os, gauges[i].value);
    os << ", \"peak\": ";
    write_double(os, gauges[i].peak);
    os << "}";
  }
  os << (gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramEntry& h = histograms[i];
    os << (i ? "," : "") << "\n    \"";
    json_escape(os, h.key);
    os << "\": {\"lo\": ";
    write_double(os, h.lo);
    os << ", \"hi\": ";
    write_double(os, h.hi);
    os << ", \"underflow\": " << h.underflow << ", \"overflow\": "
       << h.overflow << ", \"total\": " << h.total << ", \"sum\": ";
    write_double(os, h.sum);
    os << ", \"bins\": [";
    for (std::size_t b = 0; b < h.bins.size(); ++b) {
      os << (b ? "," : "") << h.bins[b];
    }
    os << "]}";
  }
  os << (histograms.empty() ? "" : "\n  ") << "}\n}";
  return os.str();
}

std::string MetricsSnapshot::to_csv() const {
  std::ostringstream os;
  os << "kind,key,value,peak,lo,hi,underflow,overflow,bins\n";
  for (const CounterEntry& e : counters) {
    os << "counter," << e.key << ',' << e.value << ",,,,,,\n";
  }
  for (const GaugeEntry& e : gauges) {
    os << "gauge," << e.key << ',';
    write_double(os, e.value);
    os << ',';
    write_double(os, e.peak);
    os << ",,,,,\n";
  }
  for (const HistogramEntry& h : histograms) {
    os << "histogram," << h.key << ',';
    write_double(os, h.sum);
    os << ",,";
    write_double(os, h.lo);
    os << ',';
    write_double(os, h.hi);
    os << ',' << h.underflow << ',' << h.overflow << ',';
    for (std::size_t b = 0; b < h.bins.size(); ++b) {
      os << (b ? "|" : "") << h.bins[b];
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace ddpm::telemetry
