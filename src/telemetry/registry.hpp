// Metrics registry: named counters / gauges / histograms obtained once as
// fixed-cost handles.
//
// Design contract (docs/OBSERVABILITY.md):
//   * Registration (`counter()` / `gauge()` / `histogram()`) happens during
//     model construction. It formats a key, deduplicates it, and hands back
//     a handle holding a raw slot pointer.
//   * The hot path only touches handles: an increment is one null test plus
//     one add on a pre-resolved slot — no map lookups, no string work, no
//     allocation. A handle from a runtime-disabled registry carries a null
//     slot, so a disabled probe costs exactly the (perfectly predicted)
//     null test. Compile-time removal is the probe layer's job
//     (telemetry/probes.hpp, DDPM_TELEMETRY_ENABLED).
//   * `snapshot()` freezes every series into a MetricsSnapshot, sorted by
//     key, with deterministic JSON / CSV renderings. Snapshots of
//     independent replications merge in replication order, which keeps
//     aggregate telemetry bit-identical for any --jobs value.
//
// Threading contract: the hot path (handles) is single-writer, like the
// simulator that feeds it — one registry per ClusterNetwork / replication,
// merged after the fact, never shared across workers. The cold paths
// (registration, snapshot, reset) ARE serialized by an annotated mutex so
// concurrent model construction under the parallel runner cannot corrupt
// the slot maps; Clang's -Wthread-safety proves the locking discipline at
// compile time (src/core/thread_annotations.hpp, docs/STATIC_ANALYSIS.md).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/shard_annotations.hpp"
#include "core/thread_annotations.hpp"

namespace ddpm::telemetry {

/// Frozen, order-stable view of a registry (or a merge of several). All
/// three series lists are sorted by key.
struct MetricsSnapshot {
  struct CounterEntry {
    std::string key;
    std::uint64_t value = 0;
  };
  struct GaugeEntry {
    std::string key;
    double value = 0.0;  ///< last written value (sums across merges)
    double peak = 0.0;   ///< maximum ever written (max across merges)
  };
  struct HistogramEntry {
    std::string key;
    double lo = 0.0;
    double hi = 0.0;
    std::uint64_t underflow = 0;
    std::uint64_t overflow = 0;
    std::uint64_t total = 0;
    double sum = 0.0;
    std::vector<std::uint64_t> bins;
  };

  std::vector<CounterEntry> counters;
  std::vector<GaugeEntry> gauges;
  std::vector<HistogramEntry> histograms;

  bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  std::size_t series() const noexcept {
    return counters.size() + gauges.size() + histograms.size();
  }

  /// Finds a counter by exact key; 0 if absent.
  std::uint64_t counter_value(std::string_view key) const noexcept;
  /// Sums every counter whose key starts with `prefix`.
  std::uint64_t counter_sum_prefix(std::string_view prefix) const noexcept;

  /// Folds `other` into this snapshot: counters and histogram bins add,
  /// gauge values add and peaks take the max, unknown keys are inserted in
  /// sorted position. Merging replication snapshots in replication order is
  /// deterministic by construction. DDPM_SHARD_MERGE: the sanctioned
  /// crossing for per-replication telemetry.
  DDPM_SHARD_MERGE void merge(const MetricsSnapshot& other);

  /// Stable pretty-printed JSON: {"counters": {...}, "gauges": ...}.
  std::string to_json() const;
  /// One `kind,key,value,...` row per series (counters/gauges only carry a
  /// value column; histograms add lo/hi/underflow/overflow and the bins as
  /// a `|`-joined list).
  std::string to_csv() const;
};

class Registry;

/// Monotonic event count. Default-constructed (or runtime-disabled) handles
/// are inert.
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t n = 1) noexcept {
    if (slot_ != nullptr) *slot_ += n;
  }

 private:
  friend class Registry;
  explicit Counter(std::uint64_t* slot) noexcept : slot_(slot) {}
  std::uint64_t* slot_ = nullptr;
};

/// Last-value-plus-peak sample (queue depth, rate estimate, ...).
class Gauge {
 public:
  Gauge() = default;
  void set(double v) noexcept {
    if (slot_ == nullptr) return;
    slot_->value = v;
    if (v > slot_->peak) slot_->peak = v;
  }
  void add(double d) noexcept {
    if (slot_ != nullptr) set(slot_->value + d);
  }

 private:
  friend class Registry;
  struct Slot {
    double value = 0.0;
    double peak = 0.0;
  };
  explicit Gauge(Slot* slot) noexcept : slot_(slot) {}
  Slot* slot_ = nullptr;
};

/// Fixed-width-bin histogram over [lo, hi) with saturating under/overflow
/// bins. Self-contained (telemetry sits below netsim in the link graph).
class HistogramHandle {
 public:
  HistogramHandle() = default;
  /// The unbound check is inline so a disabled handle costs one predictable
  /// branch at the call site — the wormhole loop samples buffer depth on
  /// every forwarded flit, and an out-of-line call for a no-op was
  /// measurable there. The bound path stays out of line (bin math is cold
  /// relative to the null check).
  void add(double x) noexcept {
    if (slot_ != nullptr) add_bound(x);
  }

 private:
  void add_bound(double x) noexcept;
  friend class Registry;
  struct Slot {
    double lo = 0.0;
    double hi = 0.0;
    double width = 1.0;
    std::uint64_t underflow = 0;
    std::uint64_t overflow = 0;
    std::uint64_t total = 0;
    double sum = 0.0;
    std::vector<std::uint64_t> bins;
  };
  explicit HistogramHandle(Slot* slot) noexcept : slot_(slot) {}
  Slot* slot_ = nullptr;
};

/// Owns every series. Keys are `name` or `name{labels}` — e.g.
/// `switch.drop_queue_full{switch=3}` or `link.tx_packets{switch=3,port=+x}`.
/// Registering the same key twice returns a handle to the same slot.
class Registry {
 public:
  /// A disabled registry hands out inert handles and produces empty
  /// snapshots — the runtime half of the gating story.
  explicit Registry(bool enabled = true) noexcept : enabled_(enabled) {}

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  bool enabled() const noexcept { return enabled_; }

  Counter counter(std::string_view name, std::string_view labels = {})
      DDPM_EXCLUDES(mutex_);
  Gauge gauge(std::string_view name, std::string_view labels = {})
      DDPM_EXCLUDES(mutex_);
  HistogramHandle histogram(std::string_view name, std::string_view labels,
                            double lo, double hi, std::size_t bins)
      DDPM_EXCLUDES(mutex_);

  /// Number of registered series.
  std::size_t size() const DDPM_EXCLUDES(mutex_) {
    const core::MutexLock lock(mutex_);
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Freezes current values, sorted by key. DDPM_DET_SINK: snapshots feed
  /// the deterministic JSON/CSV artifacts, so the freeze path must walk
  /// the key-sorted series lists, never the unordered lookup indexes.
  DDPM_DET_SINK MetricsSnapshot snapshot() const DDPM_EXCLUDES(mutex_);

  /// Zeroes every slot; registrations (and outstanding handles) survive.
  void reset() DDPM_EXCLUDES(mutex_);

  static std::string make_key(std::string_view name, std::string_view labels);

 private:
  template <typename SlotT>
  SlotT* find_or_create(std::deque<std::pair<std::string, SlotT>>& slots,
                        std::unordered_map<std::string, SlotT*>& index,
                        std::string key) DDPM_REQUIRES(mutex_);

  bool enabled_;
  /// Serializes registration/snapshot/reset; the handles' slot writes are
  /// outside its scope by design (single-writer hot path, see file comment).
  mutable core::Mutex mutex_;
  // Deques: slot addresses must stay stable as registration continues.
  std::deque<std::pair<std::string, std::uint64_t>> counters_
      DDPM_GUARDED_BY(mutex_);
  std::deque<std::pair<std::string, Gauge::Slot>> gauges_
      DDPM_GUARDED_BY(mutex_);
  std::deque<std::pair<std::string, HistogramHandle::Slot>> histograms_
      DDPM_GUARDED_BY(mutex_);
  std::unordered_map<std::string, std::uint64_t*> counter_index_
      DDPM_GUARDED_BY(mutex_);
  std::unordered_map<std::string, Gauge::Slot*> gauge_index_
      DDPM_GUARDED_BY(mutex_);
  std::unordered_map<std::string, HistogramHandle::Slot*> histogram_index_
      DDPM_GUARDED_BY(mutex_);
};

}  // namespace ddpm::telemetry
