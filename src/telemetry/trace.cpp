#include "telemetry/trace.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace ddpm::telemetry {

Tracer::Tracer(std::size_t ring_capacity)
    : capacity_(std::max<std::size_t>(1, ring_capacity)) {
  // Grow lazily up to capacity_: short runs never pay for the full ring.
  ring_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void Tracer::set_process_name(std::uint32_t pid, std::string name) {
  process_names_.emplace_back(pid, std::move(name));
}

void Tracer::set_thread_name(std::uint32_t pid, std::uint32_t tid,
                             std::string name) {
  thread_names_.emplace_back(std::make_pair(pid, tid), std::move(name));
}

std::size_t Tracer::retained() const noexcept {
  return wrapped_ ? capacity_ : ring_.size();
}

void Tracer::record(char phase, const char* name, std::uint32_t pid,
                    std::uint32_t tid, std::uint64_t ts, std::uint64_t dur,
                    const char* arg_key, double arg) {
  ++recorded_;
  Event e;
  e.ts = ts;
  e.dur = dur;
  e.name = name;
  e.arg_key = arg_key;
  e.arg = arg;
  e.pid = pid;
  e.tid = tid;
  e.phase = phase;
  if (ring_.size() < capacity_) {
    ring_.push_back(e);
    return;
  }
  // Ring is full: overwrite the oldest slot, keep the most recent window.
  // (Branch, not modulo: capacity_ is runtime-chosen, and a compare-select
  // beats the divider on this per-event path.)
  ring_[next_] = e;
  next_ = next_ + 1 == capacity_ ? 0 : next_ + 1;
  wrapped_ = true;
  ++dropped_;
}

void Tracer::clear() noexcept {
  ring_.clear();
  next_ = 0;
  wrapped_ = false;
  recorded_ = 0;
  dropped_ = 0;
}

namespace {

void write_json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

void write_number(std::ostream& out, double v) {
  std::ostringstream tmp;
  tmp.precision(17);
  tmp << v;
  out << tmp.str();
}

}  // namespace

void Tracer::flush(std::ostream& out) const {
  out << "{\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {"
      << "\"recorded\": " << recorded_ << ", \"dropped\": " << dropped_
      << "},\n\"traceEvents\": [";
  bool first = true;
  const auto comma = [&]() {
    out << (first ? "\n" : ",\n");
    first = false;
  };
  for (const auto& [pid, name] : process_names_) {
    comma();
    out << R"({"name": "process_name", "ph": "M", "ts": 0, "pid": )" << pid
        << R"(, "tid": 0, "args": {"name": )";
    write_json_string(out, name);
    out << "}}";
  }
  for (const auto& [key, name] : thread_names_) {
    comma();
    out << R"({"name": "thread_name", "ph": "M", "ts": 0, "pid": )"
        << key.first << R"(, "tid": )" << key.second
        << R"(, "args": {"name": )";
    write_json_string(out, name);
    out << "}}";
  }
  // Chronological replay: the oldest retained event sits at `next_` once
  // the ring has wrapped.
  const std::size_t count = retained();
  const std::size_t start = wrapped_ ? next_ : 0;
  for (std::size_t i = 0; i < count; ++i) {
    const Event& e = ring_[(start + i) % capacity_];
    comma();
    out << "{\"name\": \"" << e.name << "\", \"ph\": \"" << e.phase
        << "\", \"ts\": " << e.ts << ", \"pid\": " << e.pid
        << ", \"tid\": " << e.tid;
    if (e.phase == 'X') out << ", \"dur\": " << e.dur;
    if (e.phase == 'i') out << ", \"s\": \"t\"";
    if (e.arg_key != nullptr) {
      out << ", \"args\": {\"" << e.arg_key << "\": ";
      write_number(out, e.arg);
      out << "}";
    }
    out << "}";
  }
  out << "\n]\n}\n";
}

std::string Tracer::flush_to_string() const {
  std::ostringstream os;
  flush(os);
  return os.str();
}

}  // namespace ddpm::telemetry
