// Probe layer: the compile-time half of telemetry gating.
//
// Domain code (the event kernel, switches, marking schemes, the wormhole
// substrate, the TCP workload, the detect→identify→block pipeline) holds
// these probe structs by value and calls their semantic hooks
// unconditionally. With DDPM_TELEMETRY_ENABLED=1 the hooks write through
// registry handles and the tracer; with 0 every struct is empty and every
// hook is an inline no-op, so a disabled probe compiles to nothing and the
// kernel stays at its un-instrumented speed. The two variants expose the
// same API — no #if ever appears at an instrumentation site.
//
// Trace pid map (process lanes in chrome://tracing):
//   0 = event kernel, 1 = cluster switches (tid = switch id),
//   2 = detect/identify/block pipeline, 3 = wormhole substrate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/registry.hpp"
#include "telemetry/trace.hpp"

#ifndef DDPM_TELEMETRY_ENABLED
#define DDPM_TELEMETRY_ENABLED 1
#endif

namespace ddpm::telemetry {

inline constexpr std::uint32_t kPidKernel = 0;
inline constexpr std::uint32_t kPidCluster = 1;
inline constexpr std::uint32_t kPidPipeline = 2;
inline constexpr std::uint32_t kPidWormhole = 3;

/// Registers the standard process-lane names on a tracer.
void name_standard_processes(Tracer& tracer);

#if DDPM_TELEMETRY_ENABLED

/// Event-kernel visibility: heap depth + executed-event counter tracks
/// (sampled every 2^12 pops) and clamped-schedule instants.
struct KernelProbes {
  static constexpr std::uint64_t kSampleMask = (1u << 12) - 1;

  void attach(Tracer* tracer) noexcept { tracer_ = tracer; }
  Tracer* tracer() const noexcept { return tracer_; }

  void on_pop(std::uint64_t executed, std::size_t pending) {
    if (tracer_ != nullptr && (executed & kSampleMask) == 0) {
      tracer_->counter("sim.pending_events", kPidKernel, double(pending));
      tracer_->counter("sim.events_executed", kPidKernel, double(executed));
    }
  }
  void on_clamp() {
    if (tracer_ != nullptr) {
      tracer_->instant("sim.clamped_schedule", kPidKernel, 0);
    }
  }

 private:
  Tracer* tracer_ = nullptr;
};

/// Per-switch observability: forward/deliver/drop/mark counters, a queue-
/// depth histogram sampled at every enqueue, and per-port link counters
/// (`switch=3,port=+x` labels).
struct SwitchProbes {
  void bind(Registry* registry, std::uint32_t switch_id,
            const std::vector<std::string>& port_labels);

  void on_local_delivery() { delivered_.inc(); }
  void on_forward(std::size_t queue_depth_after) {
    forwarded_.inc();
    queue_depth_.add(double(queue_depth_after));
  }
  void on_mark_hook() { mark_hooks_.inc(); }
  void on_drop_queue_full(Tracer* tracer, std::uint32_t switch_id) {
    drop_queue_full_.inc();
    if (tracer != nullptr) {
      tracer->instant("drop.queue_full", kPidCluster, switch_id);
    }
  }
  void on_drop_no_route(Tracer* tracer, std::uint32_t switch_id) {
    drop_no_route_.inc();
    if (tracer != nullptr) {
      tracer->instant("drop.no_route", kPidCluster, switch_id);
    }
  }
  void on_drop_ttl(Tracer* tracer, std::uint32_t switch_id) {
    drop_ttl_.inc();
    if (tracer != nullptr) {
      tracer->instant("drop.ttl", kPidCluster, switch_id);
    }
  }
  /// One link transmission: per-port counters plus a complete span covering
  /// [start, end] (serialization + propagation) on the switch's trace lane.
  void on_tx(Tracer* tracer, std::uint32_t switch_id, std::size_t port,
             std::uint64_t bytes, std::uint64_t busy_ticks,
             std::uint64_t start, std::uint64_t end) {
    if (port < port_tx_packets_.size()) {
      port_tx_packets_[port].inc();
      port_tx_bytes_[port].inc(bytes);
      port_busy_ticks_[port].inc(busy_ticks);
    }
    if (tracer != nullptr) {
      tracer->complete("link.tx", kPidCluster, switch_id, start, end);
    }
  }

 private:
  Counter forwarded_;
  Counter delivered_;
  Counter mark_hooks_;
  Counter drop_queue_full_;
  Counter drop_no_route_;
  Counter drop_ttl_;
  HistogramHandle queue_depth_;
  std::vector<Counter> port_tx_packets_;
  std::vector<Counter> port_tx_bytes_;
  std::vector<Counter> port_busy_ticks_;
};

/// Marking-scheme telemetry: marks applied and field saturations, labelled
/// with the scheme name.
struct MarkProbes {
  void bind(Registry* registry, const std::string& scheme_name);

  void on_mark() { marks_.inc(); }
  void on_saturation() { saturations_.inc(); }

 private:
  Counter marks_;
  Counter saturations_;
};

/// Detect→identify→block pipeline telemetry (owned by the SIS driver).
struct PipelineProbes {
  void bind(Registry* registry, Tracer* tracer);

  void on_detector_firing(std::uint32_t victim) {
    detector_firings_.inc();
    if (tracer_ != nullptr) {
      tracer_->instant("detect.alarm", kPidPipeline, 0, "victim",
                       double(victim));
    }
  }
  void on_identify(std::size_t candidates) {
    identify_attempts_.inc();
    if (candidates == 0) {
      identify_none_.inc();
    } else if (candidates == 1) {
      identify_unique_.inc();
    } else {
      identify_ambiguous_.inc();
    }
  }
  void on_identification(std::uint32_t named, bool correct) {
    (correct ? identified_correct_ : identified_innocent_).inc();
    if (tracer_ != nullptr) {
      tracer_->instant(correct ? "identify.source" : "identify.innocent",
                       kPidPipeline, 0, "node", double(named));
    }
  }
  void on_block(std::uint32_t named) {
    blocks_installed_.inc();
    if (tracer_ != nullptr) {
      tracer_->instant("mitigate.block", kPidPipeline, 0, "node",
                       double(named));
    }
  }
  /// End-of-run gauges: detection latency (alarm minus attack start; only
  /// set when the detector fired) and the detector's state footprint.
  void on_run_end(bool detected, double latency_ticks, double memory_bytes) {
    if (detected) detect_latency_.set(latency_ticks);
    detect_memory_.set(memory_bytes);
  }

 private:
  Tracer* tracer_ = nullptr;
  Gauge detect_latency_;
  Gauge detect_memory_;
  Counter detector_firings_;
  Counter identify_attempts_;
  Counter identify_unique_;
  Counter identify_ambiguous_;
  Counter identify_none_;
  Counter identified_correct_;
  Counter identified_innocent_;
  Counter blocks_installed_;
};

/// Wormhole substrate: VC allocation wins/stalls, credit stalls, flit
/// movement, buffer occupancy, and a flits-in-flight counter track.
struct WormholeProbes {
  void bind(Registry* registry);
  void attach(Tracer* tracer) noexcept { tracer_ = tracer; }

  void on_vc_alloc() { vc_allocs_.inc(); }
  void on_alloc_stall() { alloc_stalls_.inc(); }
  void on_credit_stall() { credit_stalls_.inc(); }
  void on_flit_forward() { flits_forwarded_.inc(); }
  void on_delivered() { delivered_.inc(); }
  void on_buffer_sample(std::size_t depth) {
    buffer_occupancy_.add(double(depth));
  }
  void on_cycle(std::uint64_t cycle, std::uint64_t flits_in_flight) {
    if (tracer_ != nullptr && (cycle & 63) == 0) {
      tracer_->counter("wormhole.flits_in_flight", kPidWormhole,
                       double(flits_in_flight));
    }
  }

 private:
  Tracer* tracer_ = nullptr;
  Counter vc_allocs_;
  Counter alloc_stalls_;
  Counter credit_stalls_;
  Counter flits_forwarded_;
  Counter delivered_;
  HistogramHandle buffer_occupancy_;
};

/// TCP workload: handshake outcomes, one counter per terminal state.
struct TcpProbes {
  void bind(Registry* registry);

  void on_syn_attempted() { attempted_.inc(); }
  void on_refused() { refused_.inc(); }
  void on_established() { established_.inc(); }
  void on_completed() { completed_.inc(); }
  void on_client_timeout() { client_timeouts_.inc(); }
  void on_half_open_expired() { half_open_expired_.inc(); }
  void on_attack_syn() { attack_syns_.inc(); }
  void on_backscatter() { backscatter_.inc(); }

 private:
  Counter attempted_;
  Counter refused_;
  Counter established_;
  Counter completed_;
  Counter client_timeouts_;
  Counter half_open_expired_;
  Counter attack_syns_;
  Counter backscatter_;
};

#else  // !DDPM_TELEMETRY_ENABLED — every probe is an inline no-op.

struct KernelProbes {
  void attach(Tracer*) noexcept {}
  Tracer* tracer() const noexcept { return nullptr; }
  void on_pop(std::uint64_t, std::size_t) noexcept {}
  void on_clamp() noexcept {}
};

struct SwitchProbes {
  void bind(Registry*, std::uint32_t, const std::vector<std::string>&) noexcept {}
  void on_local_delivery() noexcept {}
  void on_forward(std::size_t) noexcept {}
  void on_mark_hook() noexcept {}
  void on_drop_queue_full(Tracer*, std::uint32_t) noexcept {}
  void on_drop_no_route(Tracer*, std::uint32_t) noexcept {}
  void on_drop_ttl(Tracer*, std::uint32_t) noexcept {}
  void on_tx(Tracer*, std::uint32_t, std::size_t, std::uint64_t, std::uint64_t,
             std::uint64_t, std::uint64_t) noexcept {}
};

struct MarkProbes {
  void bind(Registry*, const std::string&) noexcept {}
  void on_mark() noexcept {}
  void on_saturation() noexcept {}
};

struct PipelineProbes {
  void bind(Registry*, Tracer*) noexcept {}
  void on_detector_firing(std::uint32_t) noexcept {}
  void on_identify(std::size_t) noexcept {}
  void on_identification(std::uint32_t, bool) noexcept {}
  void on_block(std::uint32_t) noexcept {}
  void on_run_end(bool, double, double) noexcept {}
};

struct WormholeProbes {
  void bind(Registry*) noexcept {}
  void attach(Tracer*) noexcept {}
  void on_vc_alloc() noexcept {}
  void on_alloc_stall() noexcept {}
  void on_credit_stall() noexcept {}
  void on_flit_forward() noexcept {}
  void on_delivered() noexcept {}
  void on_buffer_sample(std::size_t) noexcept {}
  void on_cycle(std::uint64_t, std::uint64_t) noexcept {}
};

struct TcpProbes {
  void bind(Registry*) noexcept {}
  void on_syn_attempted() noexcept {}
  void on_refused() noexcept {}
  void on_established() noexcept {}
  void on_completed() noexcept {}
  void on_client_timeout() noexcept {}
  void on_half_open_expired() noexcept {}
  void on_attack_syn() noexcept {}
  void on_backscatter() noexcept {}
};

#endif  // DDPM_TELEMETRY_ENABLED

}  // namespace ddpm::telemetry
