// The unit of traffic in the simulator.
//
// A Packet carries a real IPv4-style header (whose source address may be
// spoofed and whose identification field is the Marking Field) plus
// simulation-side bookkeeping. The bookkeeping is split deliberately:
//   * `true_source` is ground truth used ONLY by the evaluation harness to
//     score identification accuracy — no marking scheme or switch reads it.
//   * everything a scheme may legally see is in the header.
#pragma once

#include <cstdint>
#include <vector>

#include "netsim/event_queue.hpp"
#include "packet/ip_header.hpp"
#include "topology/topology.hpp"

namespace ddpm::pkt {

/// Traffic classes for the attack/benign models.
enum class TrafficClass : std::uint8_t {
  kBenign,
  kAttackFlood,   // first-generation volumetric DDoS (trinoo/TFN style)
  kAttackSyn,     // TCP SYN half-open flood
  kAttackWorm,    // second-generation worm propagation traffic
};

/// TCP flag bits for the transport model (src/transport). Stored on the
/// packet rather than in a parsed TCP header: the simulator models the
/// handshake, not the byte layout.
namespace tcpflags {
inline constexpr std::uint8_t kSyn = 0x1;
inline constexpr std::uint8_t kAck = 0x2;
inline constexpr std::uint8_t kFin = 0x4;
inline constexpr std::uint8_t kRst = 0x8;
}  // namespace tcpflags

struct Packet {
  IpHeader header;

  /// Simulator-assigned unique id.
  std::uint64_t id = 0;
  /// Flow identifier (generator-assigned); packets of one flow share it.
  std::uint64_t flow = 0;

  /// Ground truth for evaluation only — never consulted by schemes.
  topo::NodeId true_source = topo::kInvalidNode;
  /// Destination node index (switches route on this; paper §4.1 says
  /// switches look up the index for the destination address once).
  topo::NodeId dest_node = topo::kInvalidNode;

  TrafficClass traffic = TrafficClass::kBenign;

  /// tcpflags bits; meaningful only when header.protocol() == kTcp.
  std::uint8_t tcp_flags = 0;

  std::uint32_t payload_bytes = 0;
  netsim::SimTime injected_at = 0;
  netsim::SimTime delivered_at = 0;
  std::uint32_t hops = 0;

  /// Optional per-hop trace of visited nodes, recorded only when a scenario
  /// enables tracing (used by the Figure 3 walk-through bench and tests).
  std::vector<topo::NodeId> trace;

  /// IPv4 record-route option slots (paper §4.2 discusses and dismisses
  /// storing edge information "in the IP additional option"). Each entry
  /// costs 4 wire bytes, capped by the 40-byte IPv4 option space at 9
  /// addresses (RFC 791); see marking/record_route.hpp.
  std::vector<topo::NodeId> route_option;

  std::uint16_t marking_field() const noexcept { return header.identification(); }
  void set_marking_field(std::uint16_t v) noexcept { header.set_identification(v); }

  std::uint32_t wire_bytes() const noexcept {
    // Option bytes ride on the wire: record-route grows the packet by 4
    // bytes per recorded hop (the overhead the paper objects to).
    return std::uint32_t(IpHeader::kWireSize) + payload_bytes +
           4 * std::uint32_t(route_option.size());
  }

  bool is_attack() const noexcept { return traffic != TrafficClass::kBenign; }
};

}  // namespace ddpm::pkt
