// IPv4-style header model (paper §4.1, second assumption: cluster nodes
// speak IP even behind a front-end, so the 16-bit identification field is
// available as the Marking Field).
//
// The header is a faithful 20-byte IPv4 header: it serializes to wire
// format and carries a real RFC 1071 checksum, so tests can verify that
// marking updates — which rewrite the identification field in flight —
// keep the checksum consistent exactly the way a real switch would have to.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace ddpm::pkt {

/// 32-bit IPv4 address in host byte order.
using Ipv4Address = std::uint32_t;

std::string address_to_string(Ipv4Address addr);

/// IP protocol numbers used by the traffic models.
enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

class IpHeader {
 public:
  static constexpr std::size_t kWireSize = 20;  // no options

  IpHeader() = default;
  IpHeader(Ipv4Address src, Ipv4Address dst, IpProto proto,
           std::uint16_t payload_bytes);

  Ipv4Address source() const noexcept { return src_; }
  Ipv4Address destination() const noexcept { return dst_; }
  IpProto protocol() const noexcept { return proto_; }
  std::uint8_t ttl() const noexcept { return ttl_; }
  std::uint16_t total_length() const noexcept { return total_length_; }

  /// The 16-bit identification field doubling as the Marking Field (MF).
  std::uint16_t identification() const noexcept { return identification_; }
  void set_identification(std::uint16_t v) noexcept { identification_ = v; }

  /// Spoofing: attackers overwrite the source address (paper §4.1).
  void set_source(Ipv4Address src) noexcept { src_ = src; }

  void set_ttl(std::uint8_t ttl) noexcept { ttl_ = ttl; }
  /// Decrements TTL, saturating at zero. Returns the new value.
  std::uint8_t decrement_ttl() noexcept {
    if (ttl_ > 0) --ttl_;
    return ttl_;
  }

  /// Serializes to 20 bytes of wire format with a freshly computed checksum.
  std::array<std::uint8_t, kWireSize> serialize() const;

  /// Parses a wire-format header. Throws std::invalid_argument if the
  /// checksum or version is wrong.
  static IpHeader parse(const std::array<std::uint8_t, kWireSize>& wire);

  /// RFC 1071 one's-complement checksum of the serialized header with the
  /// checksum field zeroed.
  std::uint16_t compute_checksum() const;

 private:
  Ipv4Address src_ = 0;
  Ipv4Address dst_ = 0;
  IpProto proto_ = IpProto::kUdp;
  std::uint16_t total_length_ = kWireSize;
  std::uint16_t identification_ = 0;
  std::uint8_t ttl_ = 64;
  std::uint8_t tos_ = 0;
  std::uint16_t flags_fragment_ = 0;
};

}  // namespace ddpm::pkt
