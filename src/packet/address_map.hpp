// Bijection between topology node indices and private IPv4 addresses.
//
// Paper §4.1: "After establishing a mapping table between IP addresses and
// indexes, switches look for this index alone. But every packet still
// contains [an] IP header." This class is that mapping table. Cluster nodes
// live in 10.0.0.0/8; the node index is embedded in the low 24 bits, which
// caps the cluster at 2^24 nodes — far beyond every topology in the paper.
#pragma once

#include <optional>

#include "packet/ip_header.hpp"
#include "topology/topology.hpp"

namespace ddpm::pkt {

class AddressMap {
 public:
  static constexpr Ipv4Address kClusterBase = 0x0a000000u;  // 10.0.0.0
  static constexpr Ipv4Address kClusterMask = 0xff000000u;  // /8

  explicit AddressMap(topo::NodeId num_nodes) : num_nodes_(num_nodes) {}

  topo::NodeId num_nodes() const noexcept { return num_nodes_; }

  /// The canonical address of a node index.
  Ipv4Address address_of(topo::NodeId node) const {
    if (node >= num_nodes_) throw std::out_of_range("AddressMap: bad node id");
    return kClusterBase | (node + 1);  // +1 keeps 10.0.0.0 unused
  }

  /// The node index an address claims to come from; nullopt for addresses
  /// outside the cluster range or not assigned to any node — exactly the
  /// signature of a spoofed source.
  std::optional<topo::NodeId> node_of(Ipv4Address addr) const noexcept {
    if ((addr & kClusterMask) != kClusterBase) return std::nullopt;
    const Ipv4Address host = addr & ~kClusterMask;
    if (host == 0 || host > num_nodes_) return std::nullopt;
    return host - 1;
  }

  /// True iff the address is a valid cluster-node address.
  bool is_cluster_address(Ipv4Address addr) const noexcept {
    return node_of(addr).has_value();
  }

 private:
  topo::NodeId num_nodes_;
};

}  // namespace ddpm::pkt
