#include "packet/ip_header.hpp"

#include <sstream>
#include <stdexcept>

namespace ddpm::pkt {

std::string address_to_string(Ipv4Address addr) {
  std::ostringstream os;
  os << ((addr >> 24) & 0xff) << '.' << ((addr >> 16) & 0xff) << '.'
     << ((addr >> 8) & 0xff) << '.' << (addr & 0xff);
  return os.str();
}

IpHeader::IpHeader(Ipv4Address src, Ipv4Address dst, IpProto proto,
                   std::uint16_t payload_bytes)
    : src_(src),
      dst_(dst),
      proto_(proto),
      total_length_(static_cast<std::uint16_t>(kWireSize + payload_bytes)) {}

namespace {

void put16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v & 0xff);
}

void put32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>((v >> 16) & 0xff);
  p[2] = static_cast<std::uint8_t>((v >> 8) & 0xff);
  p[3] = static_cast<std::uint8_t>(v & 0xff);
}

std::uint16_t get16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((std::uint16_t(p[0]) << 8) | p[1]);
}

std::uint32_t get32(const std::uint8_t* p) {
  return (std::uint32_t(p[0]) << 24) | (std::uint32_t(p[1]) << 16) |
         (std::uint32_t(p[2]) << 8) | std::uint32_t(p[3]);
}

std::uint16_t rfc1071_checksum(const std::uint8_t* data, std::size_t len) {
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i + 1 < len; i += 2) {
    sum += get16(data + i);
  }
  if (len % 2) sum += std::uint16_t(data[len - 1]) << 8;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

}  // namespace

std::array<std::uint8_t, IpHeader::kWireSize> IpHeader::serialize() const {
  std::array<std::uint8_t, kWireSize> w{};
  w[0] = 0x45;  // version 4, IHL 5
  w[1] = tos_;
  put16(&w[2], total_length_);
  put16(&w[4], identification_);
  put16(&w[6], flags_fragment_);
  w[8] = ttl_;
  w[9] = static_cast<std::uint8_t>(proto_);
  put16(&w[10], 0);  // checksum placeholder
  put32(&w[12], src_);
  put32(&w[16], dst_);
  put16(&w[10], rfc1071_checksum(w.data(), kWireSize));
  return w;
}

std::uint16_t IpHeader::compute_checksum() const {
  auto w = serialize();
  return get16(&w[10]);
}

IpHeader IpHeader::parse(const std::array<std::uint8_t, kWireSize>& wire) {
  if (wire[0] != 0x45) {
    throw std::invalid_argument("IpHeader::parse: not an option-less IPv4 header");
  }
  // Checksum over the header including the stored checksum must be zero
  // (i.e., ~sum == 0 <=> recomputed == stored).
  auto copy = wire;
  const std::uint16_t stored = get16(&copy[10]);
  put16(&copy[10], 0);
  if (rfc1071_checksum(copy.data(), kWireSize) != stored) {
    throw std::invalid_argument("IpHeader::parse: bad checksum");
  }
  IpHeader h;
  h.tos_ = wire[1];
  h.total_length_ = get16(&wire[2]);
  h.identification_ = get16(&wire[4]);
  h.flags_fragment_ = get16(&wire[6]);
  h.ttl_ = wire[8];
  h.proto_ = static_cast<IpProto>(wire[9]);
  h.src_ = get32(&wire[12]);
  h.dst_ = get32(&wire[16]);
  return h;
}

}  // namespace ddpm::pkt
