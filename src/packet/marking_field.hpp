// Bit-level accessors for the 16-bit Marking Field.
//
// Every marking scheme in the paper packs structured data into the IPv4
// identification field. These helpers implement the packing: unsigned and
// signed (two's-complement) sub-fields at arbitrary bit offsets, with
// range checking so codec bugs fail loudly in tests instead of silently
// corrupting marks.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "core/check.hpp"

namespace ddpm::pkt {

/// A [offset, offset+width) slice of the 16-bit field. Bit 0 is the LSB.
struct FieldSlice {
  unsigned offset;
  unsigned width;

  /// True iff the slice denotes a nonempty bit range inside the 16-bit field.
  constexpr bool valid() const noexcept {
    return width >= 1 && width <= 16 && offset < 16 && offset + width <= 16;
  }

  constexpr std::uint16_t mask() const noexcept {
    DDPM_DCHECK(valid(), "malformed field slice");
    return static_cast<std::uint16_t>(((1u << width) - 1u) << offset);
  }
};

/// Reads an unsigned sub-field.
constexpr std::uint16_t read_unsigned(std::uint16_t field, FieldSlice s) noexcept {
  DDPM_DCHECK(s.valid(), "malformed field slice");
  return static_cast<std::uint16_t>((field >> s.offset) & ((1u << s.width) - 1u));
}

/// Writes an unsigned sub-field. Throws std::range_error if the value does
/// not fit in `s.width` bits.
inline std::uint16_t write_unsigned(std::uint16_t field, FieldSlice s,
                                    std::uint16_t value) {
  DDPM_DCHECK(s.valid(), "malformed field slice");
  if (value >= (1u << s.width)) {
    throw std::range_error("marking field: unsigned value out of range");
  }
  return static_cast<std::uint16_t>((field & ~s.mask()) |
                                    (std::uint16_t(value << s.offset) & s.mask()));
}

/// Reads a signed (two's-complement) sub-field into a plain int.
constexpr int read_signed(std::uint16_t field, FieldSlice s) noexcept {
  DDPM_DCHECK(s.valid(), "malformed field slice");
  const auto raw = read_unsigned(field, s);
  const std::uint16_t sign_bit = std::uint16_t(1u << (s.width - 1));
  if (raw & sign_bit) {
    return int(raw) - int(1u << s.width);
  }
  return int(raw);
}

/// Writes a signed sub-field. Throws std::range_error if `value` is outside
/// [-2^(w-1), 2^(w-1) - 1].
inline std::uint16_t write_signed(std::uint16_t field, FieldSlice s, int value) {
  DDPM_DCHECK(s.valid(), "malformed field slice");
  const int lo = -int(1u << (s.width - 1));
  const int hi = int(1u << (s.width - 1)) - 1;
  if (value < lo || value > hi) {
    throw std::range_error("marking field: signed value out of range");
  }
  const auto raw = static_cast<std::uint16_t>(value & int((1u << s.width) - 1u));
  return static_cast<std::uint16_t>((field & ~s.mask()) |
                                    (std::uint16_t(raw << s.offset) & s.mask()));
}

/// Reads a single bit.
constexpr bool read_bit(std::uint16_t field, unsigned bit) noexcept {
  DDPM_DCHECK(bit < 16, "bit index out of range");
  return (field >> bit) & 1u;
}

/// Writes a single bit.
constexpr std::uint16_t write_bit(std::uint16_t field, unsigned bit,
                                  bool value) noexcept {
  DDPM_DCHECK(bit < 16, "bit index out of range");
  const auto mask = std::uint16_t(1u << bit);
  return value ? std::uint16_t(field | mask) : std::uint16_t(field & ~mask);
}

}  // namespace ddpm::pkt
