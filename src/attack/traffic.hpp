// Background traffic patterns for cluster interconnects.
//
// These are the standard synthetic workloads of the interconnection-network
// literature (uniform random, transpose, bit-complement, bit-reverse,
// hotspot). The paper's evaluation needs them as the benign traffic a DDoS
// attack hides inside (paper §1: "a DDoS attack usually camouflages itself
// as normal traffic").
#pragma once

#include <memory>
#include <string>

#include "netsim/rng.hpp"
#include "topology/topology.hpp"

namespace ddpm::attack {

using topo::NodeId;

/// Picks the destination for a packet injected at `src`. Never returns
/// `src` itself (self-traffic stays on-node and exercises nothing).
class TrafficPattern {
 public:
  virtual ~TrafficPattern() = default;
  virtual std::string name() const = 0;
  virtual NodeId pick_dest(NodeId src, netsim::Rng& rng) const = 0;

 protected:
  // C.67: suppress public copy through the base handle (slicing).
  TrafficPattern() = default;
  TrafficPattern(const TrafficPattern&) = default;
  TrafficPattern& operator=(const TrafficPattern&) = default;
};

/// Uniformly random destination.
class UniformPattern final : public TrafficPattern {
 public:
  explicit UniformPattern(const topo::Topology& topo) : topo_(topo) {}
  std::string name() const override { return "uniform"; }
  NodeId pick_dest(NodeId src, netsim::Rng& rng) const override;

 private:
  const topo::Topology& topo_;
};

/// Coordinate transpose: (x0,...,xn-1) -> (xn-1,...,x0). Requires all
/// dimension sizes equal; nodes on the diagonal fall back to uniform.
class TransposePattern final : public TrafficPattern {
 public:
  explicit TransposePattern(const topo::Topology& topo);
  std::string name() const override { return "transpose"; }
  NodeId pick_dest(NodeId src, netsim::Rng& rng) const override;

 private:
  const topo::Topology& topo_;
  UniformPattern fallback_;
};

/// Per-dimension mirror: coordinate c -> k-1-c (bit complement on
/// power-of-two radices and hypercubes). Self-paired nodes fall back to
/// uniform.
class ComplementPattern final : public TrafficPattern {
 public:
  explicit ComplementPattern(const topo::Topology& topo)
      : topo_(topo), fallback_(topo) {}
  std::string name() const override { return "complement"; }
  NodeId pick_dest(NodeId src, netsim::Rng& rng) const override;

 private:
  const topo::Topology& topo_;
  UniformPattern fallback_;
};

/// Flat-id bit reversal over ceil(log2 N) bits, wrapped into range.
class BitReversePattern final : public TrafficPattern {
 public:
  explicit BitReversePattern(const topo::Topology& topo)
      : topo_(topo), fallback_(topo) {}
  std::string name() const override { return "bit-reverse"; }
  NodeId pick_dest(NodeId src, netsim::Rng& rng) const override;

 private:
  const topo::Topology& topo_;
  UniformPattern fallback_;
};

/// With probability `fraction` the destination is the fixed hotspot;
/// otherwise uniform.
class HotspotPattern final : public TrafficPattern {
 public:
  HotspotPattern(const topo::Topology& topo, NodeId hotspot, double fraction)
      : topo_(topo), fallback_(topo), hotspot_(hotspot), fraction_(fraction) {}
  std::string name() const override { return "hotspot"; }
  NodeId pick_dest(NodeId src, netsim::Rng& rng) const override;

 private:
  const topo::Topology& topo_;
  UniformPattern fallback_;
  NodeId hotspot_;
  double fraction_;
};

/// Builds a pattern by name: "uniform", "transpose", "complement",
/// "bit-reverse", "hotspot" (hotspot node 0, fraction 0.2).
std::unique_ptr<TrafficPattern> make_pattern(const std::string& name,
                                             const topo::Topology& topo);

}  // namespace ddpm::attack
