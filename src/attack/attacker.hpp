// DDoS attack scenario descriptions (paper §1).
//
// First-generation attacks (trinoo / Tribe Flood Network style): a set of
// compromised "zombie" nodes floods a victim with spoofed packets — either
// raw UDP volume or TCP SYNs that pin half-open connections. Second-
// generation attacks (Code Red / Nimda style worms): infection spreads by
// random scanning and traffic grows exponentially with the infected
// population. The cluster model executes these configs; this header only
// describes them.
#pragma once

#include <cstdint>
#include <vector>

#include "attack/spoof.hpp"
#include "netsim/event_queue.hpp"
#include "netsim/rng.hpp"
#include "packet/packet.hpp"
#include "topology/topology.hpp"

namespace ddpm::attack {

enum class AttackKind {
  kNone,
  kUdpFlood,   // volumetric flood at the victim
  kSynFlood,   // TCP SYN half-open flood at the victim
  kWorm,       // random-scanning worm; no single victim
  kReflector,  // SYNs to random nodes with the victim's spoofed address:
               // the reflectors' SYN+ACK backscatter converges on the
               // victim, and marking identifies reflectors, not zombies
};

std::string to_string(AttackKind kind);

struct AttackConfig {
  AttackKind kind = AttackKind::kNone;

  /// Initially compromised nodes (zombies; for the worm, patient zero(s)).
  std::vector<topo::NodeId> zombies;

  /// Flood target (ignored by the worm).
  topo::NodeId victim = topo::kInvalidNode;

  /// Mean attack packets per tick per attacking node (Poisson process).
  double rate_per_zombie = 0.01;

  SpoofStrategy spoof = SpoofStrategy::kRandomCluster;

  /// Attack window; the worm keeps spreading after start until stopped.
  netsim::SimTime start_time = 0;
  netsim::SimTime stop_time = ~netsim::SimTime{0};

  std::uint32_t payload_bytes = 64;

  /// Pulsing (shrew-style) attack: when pulse_period > 0 the zombies only
  /// inject during the first pulse_duty fraction of each period, dodging
  /// rate detectors tuned to sustained floods (ablation A7).
  netsim::SimTime pulse_period = 0;
  double pulse_duty = 0.5;

  /// Worm only: scans per tick per infected node, and the time a hit takes
  /// to turn a clean node into a scanner (infection latency).
  double worm_scan_rate = 0.005;
  netsim::SimTime worm_incubation = 500;
};

/// Picks `count` distinct zombies uniformly, excluding the victim.
std::vector<topo::NodeId> pick_zombies(const topo::Topology& topo,
                                       std::size_t count, topo::NodeId victim,
                                       netsim::Rng& rng);

}  // namespace ddpm::attack
