#include "attack/traffic.hpp"

#include <bit>
#include <stdexcept>

namespace ddpm::attack {

NodeId UniformPattern::pick_dest(NodeId src, netsim::Rng& rng) const {
  const NodeId n = topo_.num_nodes();
  // Sample from the n-1 nodes that are not `src`.
  const auto draw = NodeId(rng.next_below(n - 1));
  return draw >= src ? draw + 1 : draw;
}

TransposePattern::TransposePattern(const topo::Topology& topo)
    : topo_(topo), fallback_(topo) {
  for (std::size_t d = 1; d < topo.num_dims(); ++d) {
    if (topo.dim_size(d) != topo.dim_size(0)) {
      throw std::invalid_argument(
          "TransposePattern: all dimension sizes must be equal");
    }
  }
}

NodeId TransposePattern::pick_dest(NodeId src, netsim::Rng& rng) const {
  const topo::Coord c = topo_.coord_of(src);
  auto t = topo::Coord(c.size());
  for (std::size_t d = 0; d < c.size(); ++d) t[d] = c[c.size() - 1 - d];
  const NodeId dest = topo_.id_of(t);
  return dest == src ? fallback_.pick_dest(src, rng) : dest;
}

NodeId ComplementPattern::pick_dest(NodeId src, netsim::Rng& rng) const {
  const topo::Coord c = topo_.coord_of(src);
  auto m = topo::Coord(c.size());
  for (std::size_t d = 0; d < c.size(); ++d) {
    m[d] = static_cast<topo::Coord::value_type>(topo_.dim_size(d) - 1 - c[d]);
  }
  const NodeId dest = topo_.id_of(m);
  return dest == src ? fallback_.pick_dest(src, rng) : dest;
}

NodeId BitReversePattern::pick_dest(NodeId src, netsim::Rng& rng) const {
  const NodeId n = topo_.num_nodes();
  const int bits = n <= 1 ? 1 : std::bit_width(n - 1);
  NodeId rev = 0;
  for (int b = 0; b < bits; ++b) {
    if (src & (NodeId(1) << b)) rev |= NodeId(1) << (bits - 1 - b);
  }
  rev %= n;
  return rev == src ? fallback_.pick_dest(src, rng) : rev;
}

NodeId HotspotPattern::pick_dest(NodeId src, netsim::Rng& rng) const {
  if (src != hotspot_ && rng.next_bool(fraction_)) return hotspot_;
  return fallback_.pick_dest(src, rng);
}

std::unique_ptr<TrafficPattern> make_pattern(const std::string& name,
                                             const topo::Topology& topo) {
  if (name == "uniform") return std::make_unique<UniformPattern>(topo);
  if (name == "transpose") return std::make_unique<TransposePattern>(topo);
  if (name == "complement") return std::make_unique<ComplementPattern>(topo);
  if (name == "bit-reverse") return std::make_unique<BitReversePattern>(topo);
  if (name == "hotspot") {
    return std::make_unique<HotspotPattern>(topo, 0, 0.2);
  }
  throw std::invalid_argument("make_pattern: unknown pattern '" + name + "'");
}

}  // namespace ddpm::attack
