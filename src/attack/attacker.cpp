#include "attack/attacker.hpp"

#include <algorithm>
#include <stdexcept>

namespace ddpm::attack {

std::string to_string(AttackKind kind) {
  switch (kind) {
    case AttackKind::kNone: return "none";
    case AttackKind::kUdpFlood: return "udp-flood";
    case AttackKind::kSynFlood: return "syn-flood";
    case AttackKind::kWorm: return "worm";
    case AttackKind::kReflector: return "reflector";
  }
  return "unknown";
}

std::vector<topo::NodeId> pick_zombies(const topo::Topology& topo,
                                       std::size_t count, topo::NodeId victim,
                                       netsim::Rng& rng) {
  const std::size_t available =
      topo.num_nodes() - (victim < topo.num_nodes() ? 1 : 0);
  if (count > available) {
    throw std::invalid_argument("pick_zombies: not enough nodes");
  }
  // Partial Fisher-Yates over the candidate list.
  std::vector<topo::NodeId> pool;
  pool.reserve(available);
  for (topo::NodeId n = 0; n < topo.num_nodes(); ++n) {
    if (n != victim) pool.push_back(n);
  }
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = i + std::size_t(rng.next_below(pool.size() - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(count);
  std::sort(pool.begin(), pool.end());
  return pool;
}

}  // namespace ddpm::attack
