#include "attack/spoof.hpp"

namespace ddpm::attack {

std::string to_string(SpoofStrategy strategy) {
  switch (strategy) {
    case SpoofStrategy::kNone: return "none";
    case SpoofStrategy::kRandomCluster: return "random-cluster";
    case SpoofStrategy::kRandomAny: return "random-any";
    case SpoofStrategy::kVictimReflect: return "victim-reflect";
  }
  return "unknown";
}

void apply_spoof(pkt::Packet& packet, SpoofStrategy strategy,
                 const pkt::AddressMap& addresses, topo::NodeId attacker,
                 topo::NodeId victim, netsim::Rng& rng) {
  switch (strategy) {
    case SpoofStrategy::kNone:
      packet.header.set_source(addresses.address_of(attacker));
      break;
    case SpoofStrategy::kRandomCluster: {
      const auto node = topo::NodeId(rng.next_below(addresses.num_nodes()));
      packet.header.set_source(addresses.address_of(node));
      break;
    }
    case SpoofStrategy::kRandomAny:
      packet.header.set_source(pkt::Ipv4Address(rng.next_u64()));
      break;
    case SpoofStrategy::kVictimReflect:
      packet.header.set_source(addresses.address_of(victim));
      break;
  }
}

}  // namespace ddpm::attack
