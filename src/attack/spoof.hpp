// IP source-address spoofing strategies (paper §1, §4.1: "attackers
// generate packets with spoofed IP addresses").
//
// Spoofing only rewrites the header's source address; the marking schemes
// never read that field, which is the whole point of traceback.
#pragma once

#include <string>

#include "netsim/rng.hpp"
#include "packet/address_map.hpp"
#include "packet/packet.hpp"

namespace ddpm::attack {

enum class SpoofStrategy {
  kNone,           // honest source address
  kRandomCluster,  // a random *valid* cluster address (hardest to filter)
  kRandomAny,      // arbitrary 32-bit address (ingress filtering catches it)
  kVictimReflect,  // the victim's own address (classic reflection setup)
};

std::string to_string(SpoofStrategy strategy);

/// Applies the strategy to the packet's source address. `attacker` is the
/// real source node, `victim` the target node.
void apply_spoof(pkt::Packet& packet, SpoofStrategy strategy,
                 const pkt::AddressMap& addresses, topo::NodeId attacker,
                 topo::NodeId victim, netsim::Rng& rng);

}  // namespace ddpm::attack
