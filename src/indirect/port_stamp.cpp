#include "indirect/port_stamp.hpp"

#include <bit>
#include <stdexcept>

namespace ddpm::indirect {

namespace {

int ceil_log2(unsigned v) { return v <= 1 ? 0 : std::bit_width(v - 1); }

}  // namespace

int PortStampScheme::required_bits(const Butterfly& net) {
  return net.stages() * std::max(1, ceil_log2(unsigned(net.radix())));
}

PortStampScheme::PortStampScheme(const Butterfly& net)
    : net_(net),
      bits_per_digit_(std::max(1, ceil_log2(unsigned(net.radix())))) {
  if (required_bits(net) > 16) {
    throw std::invalid_argument("PortStampScheme: " +
                                std::to_string(required_bits(net)) +
                                " bits needed, Marking Field has 16 (" +
                                net.spec() + ")");
  }
}

std::uint16_t PortStampScheme::mark(std::uint16_t field, int stage,
                                    int in_port) const {
  const unsigned shift =
      unsigned(net_.stages() - 1 - stage) * unsigned(bits_per_digit_);
  const std::uint16_t mask =
      std::uint16_t(((1u << bits_per_digit_) - 1u) << shift);
  return std::uint16_t((field & ~mask) |
                       (std::uint16_t(in_port << shift) & mask));
}

std::uint16_t PortStampScheme::mark_along(TerminalId src, TerminalId dst,
                                          std::uint16_t seed_field) const {
  std::uint16_t field = seed_field;
  for (const Butterfly::Hop& hop : net_.route(src, dst)) {
    field = mark(field, hop.stage, hop.in_port);
  }
  return field;
}

std::optional<TerminalId> PortStampScheme::identify(std::uint16_t field) const {
  TerminalId id = 0;
  for (int stage = 0; stage < net_.stages(); ++stage) {
    const unsigned shift =
        unsigned(net_.stages() - 1 - stage) * unsigned(bits_per_digit_);
    const int digit = int((field >> shift) & ((1u << bits_per_digit_) - 1u));
    if (digit >= net_.radix()) return std::nullopt;  // dead code point
    id = id * TerminalId(net_.radix()) + TerminalId(digit);
  }
  return id;
}

}  // namespace ddpm::indirect
