// Port-Stamp Marking — DDPM's counterpart for indirect networks
// (our answer to the paper's §6.3 future work).
//
// DDPM records relative position instead of a path; in a butterfly the
// analogous switch-local, route-covering fact is the INPUT PORT: under
// destination-tag routing, the input port at stage i equals k-ary digit i
// of the source terminal (butterfly.hpp explains why). So if every
// stage-i switch stamps its input port into digit slot i of the 16-bit
// Marking Field, the delivered field *is* the source terminal id:
//   * one packet identifies the source — same headline as DDPM;
//   * every digit slot is overwritten by some switch on every path, so an
//     attacker-seeded field cannot deflect identification (bits beyond the
//     n*ceil(log2 k) used ones are simply never read) — stronger than
//     DDPM's injection reset, it needs no first-switch special case;
//   * the scheme needs n*ceil(log2 k) = ceil(log2 N) bits: 16 bits cover
//     65536 terminals, matching DDPM's hypercube bound (Table 3).
//
// Limitation (documented, tested): the input-port = source-digit identity
// requires the unique destination-tag path. Multipath MINs (Benes, fat
// trees) break it; that is the honest boundary of this extension.
#pragma once

#include <cstdint>
#include <optional>

#include "indirect/butterfly.hpp"

namespace ddpm::indirect {

class PortStampScheme {
 public:
  /// Throws if n*ceil(log2 k) exceeds the 16-bit Marking Field.
  explicit PortStampScheme(const Butterfly& net);

  /// Bits the scheme needs on `net` (probe without constructing).
  static int required_bits(const Butterfly& net);
  static bool fits(const Butterfly& net) { return required_bits(net) <= 16; }

  /// Stage-i switch hook: stamp the arrival port into digit slot i.
  std::uint16_t mark(std::uint16_t field, int stage, int in_port) const;

  /// Runs a packet's whole unique path through the stamps; returns the
  /// final Marking Field given the attacker-chosen initial one.
  std::uint16_t mark_along(TerminalId src, TerminalId dst,
                           std::uint16_t seed_field) const;

  /// Victim-side: decode the source terminal. Returns nullopt if any digit
  /// decodes out of range (k not a power of two leaves dead code points).
  std::optional<TerminalId> identify(std::uint16_t field) const;

  int bits_per_digit() const noexcept { return bits_per_digit_; }

 private:
  const Butterfly& net_;
  int bits_per_digit_;
};

}  // namespace ddpm::indirect
