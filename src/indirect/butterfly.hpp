// k-ary n-fly butterfly — a Multistage Interconnection Network (MIN).
//
// Paper §6.3: "Our approach is limited to direct networks. A lot of
// cluster systems employ indirect networks ... a new approach may be
// necessary to solve the source identification problem in such networks."
// This module is that new approach's substrate: the canonical indirect
// topology (paper §3 names crossbars and MINs as the indirect family).
//
// Structure: k^n terminal nodes on each side, n switch stages of k^(n-1)
// k-by-k switches. We use the digit-replacement formulation: a packet's
// "current address" starts as the source terminal id (n k-ary digits,
// digit 0 most significant); the stage-i switch replaces digit i with the
// destination's digit i. Hence
//   * destination-tag routing is unique-path: output port at stage i is
//     digit i of the destination;
//   * the INPUT port at stage i is digit i of the SOURCE (it has not been
//     replaced yet when the packet arrives) — the fact the port-stamp
//     identification scheme (port_stamp.hpp) rests on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ddpm::indirect {

/// Terminal (host) identifier: 0 .. k^n - 1.
using TerminalId = std::uint32_t;

class Butterfly {
 public:
  /// A k-ary n-fly. Throws unless k >= 2, n >= 1 and k^n fits 32 bits.
  Butterfly(int radix, int stages);

  int radix() const noexcept { return k_; }
  int stages() const noexcept { return n_; }
  TerminalId num_terminals() const noexcept { return terminals_; }
  std::uint32_t switches_per_stage() const noexcept { return terminals_ / std::uint32_t(k_); }
  std::uint32_t num_switches() const noexcept {
    return switches_per_stage() * std::uint32_t(n_);
  }

  /// k-ary digit i (0 = most significant) of a terminal id.
  int digit(TerminalId id, int i) const noexcept;

  /// Terminal id with digit i replaced.
  TerminalId with_digit(TerminalId id, int i, int value) const noexcept;

  /// One hop of the unique destination-tag path.
  struct Hop {
    int stage;                 // 0 .. n-1
    std::uint32_t switch_index;  // within the stage, 0 .. k^(n-1)-1
    int in_port;               // == digit(source, stage)
    int out_port;              // == digit(dest, stage)
  };

  /// The unique path from src to dst under destination-tag routing.
  std::vector<Hop> route(TerminalId src, TerminalId dst) const;

  /// Switch index at `stage` handling a packet whose current address is
  /// `address` (the address with digit `stage` deleted, read as a k-ary
  /// number of n-1 digits).
  std::uint32_t switch_index(int stage, TerminalId address) const noexcept;

  std::string spec() const;

 private:
  int k_;
  int n_;
  TerminalId terminals_;
  std::vector<std::uint32_t> digit_weight_;  // k^(n-1-i) for digit i
};

}  // namespace ddpm::indirect
