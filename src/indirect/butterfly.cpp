#include "indirect/butterfly.hpp"

#include <limits>
#include <sstream>
#include <stdexcept>

namespace ddpm::indirect {

Butterfly::Butterfly(int radix, int stages) : k_(radix), n_(stages) {
  if (radix < 2) throw std::invalid_argument("Butterfly: radix must be >= 2");
  if (stages < 1) throw std::invalid_argument("Butterfly: need >= 1 stage");
  std::uint64_t total = 1;
  for (int i = 0; i < stages; ++i) {
    total *= std::uint64_t(radix);
    if (total > std::numeric_limits<TerminalId>::max()) {
      throw std::invalid_argument("Butterfly: terminal count overflow");
    }
  }
  terminals_ = TerminalId(total);
  digit_weight_.resize(std::size_t(n_));
  std::uint32_t w = 1;
  for (int i = n_ - 1; i >= 0; --i) {
    digit_weight_[std::size_t(i)] = w;
    w *= std::uint32_t(k_);
  }
}

int Butterfly::digit(TerminalId id, int i) const noexcept {
  return int((id / digit_weight_[std::size_t(i)]) % std::uint32_t(k_));
}

TerminalId Butterfly::with_digit(TerminalId id, int i, int value) const noexcept {
  const std::uint32_t w = digit_weight_[std::size_t(i)];
  const int old = digit(id, i);
  return id + std::uint32_t(value - old) * w;
}

std::uint32_t Butterfly::switch_index(int stage, TerminalId address) const noexcept {
  // Delete digit `stage`: high digits keep their weight / k, low digits
  // keep theirs.
  const std::uint32_t w = digit_weight_[std::size_t(stage)];
  const std::uint32_t high = address / (w * std::uint32_t(k_));
  const std::uint32_t low = address % w;
  return high * w + low;
}

std::vector<Butterfly::Hop> Butterfly::route(TerminalId src, TerminalId dst) const {
  if (src >= terminals_ || dst >= terminals_) {
    throw std::out_of_range("Butterfly::route: bad terminal id");
  }
  std::vector<Hop> hops;
  hops.reserve(std::size_t(n_));
  TerminalId address = src;
  for (int stage = 0; stage < n_; ++stage) {
    Hop hop;
    hop.stage = stage;
    hop.switch_index = switch_index(stage, address);
    hop.in_port = digit(address, stage);   // still the source's digit
    hop.out_port = digit(dst, stage);
    address = with_digit(address, stage, hop.out_port);
    hops.push_back(hop);
  }
  return hops;
}

std::string Butterfly::spec() const {
  std::ostringstream os;
  os << "butterfly:" << k_ << "-ary-" << n_ << "-fly";
  return os.str();
}

}  // namespace ddpm::indirect
