#include "irregular/irregular.hpp"

#include <algorithm>
#include <deque>
#include <set>
#include <sstream>
#include <stdexcept>

namespace ddpm::irregular {

IrregularTopology::IrregularTopology(NodeId num_nodes, std::size_t extra_edges,
                                     std::uint64_t seed)
    : seed_(seed), extra_(extra_edges) {
  if (num_nodes < 2) {
    throw std::invalid_argument("IrregularTopology: need at least 2 nodes");
  }
  const std::size_t max_extra =
      std::size_t(num_nodes) * (num_nodes - 1) / 2 - (num_nodes - 1);
  if (extra_edges > max_extra) {
    throw std::invalid_argument("IrregularTopology: too many extra edges");
  }
  adjacency_.resize(num_nodes);
  netsim::Rng rng(seed);
  std::set<std::pair<NodeId, NodeId>> used;
  auto add_edge = [&](NodeId a, NodeId b) {
    if (a > b) std::swap(a, b);
    if (!used.insert({a, b}).second) return false;
    adjacency_[a].push_back(b);
    adjacency_[b].push_back(a);
    ++edges_;
    return true;
  };
  // Random spanning tree: attach each node to a random earlier node (a
  // random recursive tree — connected by construction).
  for (NodeId n = 1; n < num_nodes; ++n) {
    add_edge(n, NodeId(rng.next_below(n)));
  }
  // Extra cross edges.
  std::size_t added = 0;
  while (added < extra_edges) {
    const auto a = NodeId(rng.next_below(num_nodes));
    const auto b = NodeId(rng.next_below(num_nodes));
    if (a == b) continue;
    if (add_edge(a, b)) ++added;
  }
  for (auto& list : adjacency_) std::sort(list.begin(), list.end());

  // BFS levels from root 0 for the up/down orientation.
  levels_.assign(num_nodes, -1);
  levels_[0] = 0;
  std::deque<NodeId> frontier{0};
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (NodeId v : adjacency_[u]) {
      if (levels_[v] < 0) {
        levels_[v] = levels_[u] + 1;
        frontier.push_back(v);
      }
    }
  }
}

bool IrregularTopology::adjacent(NodeId a, NodeId b) const {
  const auto& list = adjacency_.at(a);
  return std::binary_search(list.begin(), list.end(), b);
}

bool IrregularTopology::is_up(NodeId a, NodeId b) const {
  const int la = levels_.at(a);
  const int lb = levels_.at(b);
  if (la != lb) return lb < la;
  return b < a;  // ties: smaller id is "higher"
}

std::string IrregularTopology::spec() const {
  std::ostringstream os;
  os << "irregular:" << num_nodes() << "n+" << extra_ << "e@" << seed_;
  return os.str();
}

UpDownRouter::UpDownRouter(const IrregularTopology& topo) : topo_(topo) {
  const NodeId n = topo.num_nodes();
  dist_.assign(n, std::vector<int>(std::size_t(n) * 2, -1));
  plain_.assign(n, std::vector<int>(n, -1));

  for (NodeId dest = 0; dest < n; ++dest) {
    // Plain BFS.
    auto& pd = plain_[dest];
    pd[dest] = 0;
    std::deque<NodeId> frontier{dest};
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop_front();
      for (NodeId v : topo.neighbors(u)) {
        if (pd[v] < 0) {
          pd[v] = pd[u] + 1;
          frontier.push_back(v);
        }
      }
    }
    // Legal-path BFS over (node, gone_down) states, searched backward from
    // the destination. Forward legality: an up hop is allowed only while
    // gone_down == false; a down hop sets gone_down = true. Backward, from
    // state (v, gd_v) we may have arrived from (u, gd_u) iff hop u->v is
    // legal and gd transitions match.
    auto& dd = dist_[dest];
    std::deque<std::uint32_t> states;
    // Arriving at dest with either phase ends the path.
    dd[std::size_t(dest) * 2 + 0] = 0;
    dd[std::size_t(dest) * 2 + 1] = 0;
    states.push_back(dest * 2 + 0);
    states.push_back(dest * 2 + 1);
    while (!states.empty()) {
      const std::uint32_t s = states.front();
      states.pop_front();
      const NodeId v = s / 2;
      const bool gd_v = s % 2;
      for (NodeId u : topo.neighbors(v)) {
        const bool up_hop = topo.is_up(u, v);
        // Predecessor phase options: the hop u->v requires
        //   up:   gd_u == false and gd_v == false
        //   down: gd_v == true (gd_u may be false or true)
        if (up_hop) {
          if (gd_v) continue;
          auto& cell = dd[std::size_t(u) * 2 + 0];
          if (cell < 0) {
            cell = dd[s] + 1;
            states.push_back(u * 2 + 0);
          }
        } else {
          if (!gd_v) continue;
          for (int gd_u = 0; gd_u < 2; ++gd_u) {
            auto& cell = dd[std::size_t(u) * 2 + std::size_t(gd_u)];
            if (cell < 0) {
              cell = dd[s] + 1;
              states.push_back(u * 2 + std::uint32_t(gd_u));
            }
          }
        }
      }
    }
  }
}

std::vector<NodeId> UpDownRouter::next_hops(NodeId current, NodeId dest,
                                            bool gone_down) const {
  std::vector<NodeId> out;
  if (current == dest) return out;
  const auto& dd = dist_[dest];
  const int here = dd[std::size_t(current) * 2 + std::size_t(gone_down)];
  if (here < 0) return out;
  for (NodeId v : topo_.neighbors(current)) {
    const bool up_hop = topo_.is_up(current, v);
    if (up_hop && gone_down) continue;  // illegal: up after down
    const bool gd_next = gone_down || !up_hop;
    if (dd[std::size_t(v) * 2 + std::size_t(gd_next)] == here - 1) {
      out.push_back(v);
    }
  }
  return out;
}

int UpDownRouter::legal_distance(NodeId src, NodeId dst) const {
  return dist_[dst][std::size_t(src) * 2 + 0];
}

int UpDownRouter::graph_distance(NodeId src, NodeId dst) const {
  return plain_[dst][src];
}

double UpDownRouter::path_inflation() const {
  double total = 0;
  std::uint64_t pairs = 0;
  const NodeId n = topo_.num_nodes();
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      if (s == d) continue;
      total += double(legal_distance(s, d)) / double(graph_distance(s, d));
      ++pairs;
    }
  }
  return total / double(pairs);
}

std::vector<NodeId> walk_updown(const IrregularTopology& topo,
                                const UpDownRouter& router, NodeId src,
                                NodeId dst, netsim::Rng& rng) {
  std::vector<NodeId> path;
  if (src == dst) return path;
  path.push_back(src);
  NodeId current = src;
  bool gone_down = false;
  while (current != dst) {
    const auto hops = router.next_hops(current, dst, gone_down);
    if (hops.empty()) return path;  // unreachable (cannot happen: connected)
    const NodeId next = hops[rng.next_below(hops.size())];
    gone_down = gone_down || !topo.is_up(current, next);
    current = next;
    path.push_back(current);
  }
  return path;
}

}  // namespace ddpm::irregular
