// Irregular switch networks with up*/down* routing (paper §6.3: "hybrid
// networks and irregular networks do not have a universal regularity and
// it may need a completely different approach").
//
// IrregularTopology is a random connected graph (spanning tree plus extra
// cross edges), the standard model for switch networks grown ad hoc
// (Autonet/Myrinet style). Routing is up*/down*: orient every link by BFS
// level from a root (ties by id); a legal path takes zero or more "up"
// links followed by zero or more "down" links, which provably breaks every
// channel-dependency cycle. Routes are precomputed by BFS over the
// (node, phase) state graph, so the router always takes a shortest LEGAL
// path (which may exceed the graph distance — the classic up*/down*
// inflation, reported by path_inflation()).
//
// DDPM cannot run here — there is no coordinate system to take differences
// in. Ingress-Stamp Marking (marking/ingress.hpp) can, which is exactly
// the §6.3 comparison bench_irregular makes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "netsim/rng.hpp"

namespace ddpm::irregular {

using NodeId = std::uint32_t;

class IrregularTopology {
 public:
  /// Random connected graph: a uniform spanning tree over `num_nodes`
  /// nodes plus `extra_edges` distinct non-tree edges.
  IrregularTopology(NodeId num_nodes, std::size_t extra_edges,
                    std::uint64_t seed);

  NodeId num_nodes() const noexcept { return NodeId(adjacency_.size()); }
  std::size_t num_edges() const noexcept { return edges_; }
  const std::vector<NodeId>& neighbors(NodeId node) const {
    return adjacency_.at(node);
  }
  bool adjacent(NodeId a, NodeId b) const;

  /// BFS level used for the up/down orientation (root has level 0).
  int level(NodeId node) const { return levels_.at(node); }

  /// True iff the a->b traversal goes "up" (toward the root): lower level
  /// wins, ties broken by smaller id.
  bool is_up(NodeId a, NodeId b) const;

  std::string spec() const;

 private:
  std::vector<std::vector<NodeId>> adjacency_;
  std::vector<int> levels_;
  std::size_t edges_ = 0;
  std::uint64_t seed_;
  std::size_t extra_;
};

/// Precomputed up*/down* routing: next hops along shortest legal paths.
class UpDownRouter {
 public:
  explicit UpDownRouter(const IrregularTopology& topo);

  /// Next-hop choices from `current` toward `dest`, given whether the path
  /// so far has already taken a down link (phase). All returned hops lie
  /// on shortest legal completions. Empty only when current == dest.
  std::vector<NodeId> next_hops(NodeId current, NodeId dest,
                                bool gone_down) const;

  /// Length of the shortest legal path (>= graph distance).
  int legal_distance(NodeId src, NodeId dst) const;
  /// Plain BFS distance, for measuring up*/down* inflation.
  int graph_distance(NodeId src, NodeId dst) const;
  /// Mean legal/graph distance ratio over all pairs.
  double path_inflation() const;

 private:
  // dist_[dest][state] with state = node * 2 + (gone_down ? 1 : 0):
  // remaining legal hops from that state to dest.
  std::vector<std::vector<int>> dist_;
  std::vector<std::vector<int>> plain_;
  const IrregularTopology& topo_;
};

/// Walks one packet with a random choice among legal next hops; returns
/// the visited node sequence (empty if src == dst).
std::vector<NodeId> walk_updown(const IrregularTopology& topo,
                                const UpDownRouter& router, NodeId src,
                                NodeId dst, netsim::Rng& rng);

}  // namespace ddpm::irregular
