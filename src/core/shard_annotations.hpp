// Shard-safety and determinism annotations for the static taint analyzer.
//
// ROADMAP item 2 (one production-scale run partitioned across worker
// threads with a deterministic cross-shard merge) needs its central
// invariant — sharded output byte-identical to serial — proven before the
// engine exists. `tools/ddpm_analyze.py` builds an interprocedural call
// graph over the tree and uses these annotations as the taint vocabulary
// for four rules (det-taint, shard-isolation, rng-stream-discipline,
// tick-domain; see docs/STATIC_ANALYSIS.md). Like DDPM_HOT, the macros
// are deliberately lexical tokens: the analyzer's bundled textual
// frontend recognizes them without preprocessing, so local runs without
// libclang enforce the same closures CI does.
//
// DDPM_DET_SOURCE     annotates a function whose result (or scheduling
//                     effect) depends on the execution environment —
//                     thread count, thread identity, address layout —
//                     rather than on the seeded simulation state. Calls
//                     to it from any determinism-sink closure are
//                     det-taint findings unless explicitly allowed.
// DDPM_DET_SINK       annotates a function whose output must be
//                     byte-reproducible (snapshot/merge/report/JSON/
//                     digest emitters). Result-path-named functions
//                     (to_json, snapshot, merge, ...) are sinks by
//                     naming convention already; the annotation extends
//                     the sink set to names the convention cannot see.
// DDPM_SHARD_MERGE    annotates the function that folds per-shard state
//                     into the global answer. It is the only sanctioned
//                     crossing point for DDPM_SHARD_STATE on a sink
//                     path, and its own call-graph closure must be
//                     det-taint-clean.
// DDPM_SHARD_STATE    annotates a data member that is logically
//                     partitioned per worker shard. The analyzer flags
//                     (a) any touch from outside the owning class and
//                     (b) any sink-path touch outside a DDPM_SHARD_MERGE
//                     closure.
//
// WindowIndex is the integer domain for "which aggregation window",
// distinct from netsim::SimTime ("which tick"). The tick-domain rule
// flags additive/comparison arithmetic mixing the two; explicit
// SimTime(...)/WindowIndex(...) construction is the sanctioned
// conversion.
#pragma once

#include <cstdint>

#if defined(__clang__)
#define DDPM_SHARD_STATE __attribute__((annotate("ddpm_shard_state")))
#define DDPM_SHARD_MERGE __attribute__((annotate("ddpm_shard_merge")))
#define DDPM_DET_SOURCE __attribute__((annotate("ddpm_det_source")))
#define DDPM_DET_SINK __attribute__((annotate("ddpm_det_sink")))
#elif defined(__GNUC__)
#define DDPM_SHARD_STATE
#define DDPM_SHARD_MERGE
#define DDPM_DET_SOURCE
#define DDPM_DET_SINK
#else
#define DDPM_SHARD_STATE
#define DDPM_SHARD_MERGE
#define DDPM_DET_SOURCE
#define DDPM_DET_SINK
#endif

namespace ddpm::core {

// Window ordinal within a streaming run: record.first_ts / window_len.
// A distinct alias (not a strong type yet) so the tick-domain rule can
// tell window arithmetic from tick arithmetic by declared type.
using WindowIndex = std::uint64_t;

}  // namespace ddpm::core
