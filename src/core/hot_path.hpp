// Hot-path annotations for the static performance auditor.
//
// `tools/ddpm_analyze.py` builds a call graph over the tree and treats
// every function marked DDPM_HOT — plus everything reachable from it —
// as flit-critical: the hot-no-alloc / hot-no-virtual / hot-no-lock /
// hot-no-throw-io rules then prove (statically, both frontends) that the
// steady-state loop performs no heap allocation, no per-flit virtual
// dispatch, no locking, and no throwing or console I/O. The macros are
// deliberately lexical tokens: the analyzer's bundled textual frontend
// recognizes them without preprocessing, so local runs without libclang
// enforce the same closure CI does.
//
// DDPM_HOT            annotates a function *definition* as a hot-path
//                     root (place it before the return type).
// DDPM_HOT_STATE      annotates a struct/class whose layout is
//                     flit-critical (per-flit or per-VC state). Every
//                     DDPM_HOT_STATE type must carry a matching
//                     DDPM_HOT_LAYOUT declaration or the layout-certified
//                     rule fails.
// DDPM_HOT_LAYOUT(T, size, align)
//                     certifies the expected size/alignment of T on the
//                     LP64 reference platform. Expands to a static_assert
//                     (so silent layout drift breaks the build) and is
//                     cross-checked against the real record layout by the
//                     analyzer's libclang frontend — which runs at
//                     configure time, before any compile.
//
// Contract-macro interaction: DDPM_CHECK/DDPM_DCHECK bodies live behind
// their macros, so the hot rules never see the (cold, allocation-free)
// abort path — contract checks stay legal in hot code by construction.
#pragma once

#include <cstddef>

#if defined(__clang__)
#define DDPM_HOT __attribute__((annotate("ddpm_hot")))
#define DDPM_HOT_STATE __attribute__((annotate("ddpm_hot_state")))
#elif defined(__GNUC__)
#define DDPM_HOT
#define DDPM_HOT_STATE
#else
#define DDPM_HOT
#define DDPM_HOT_STATE
#endif

// Layout certification only binds on LP64 (the reference platform CI
// runs); other ABIs compile the assertion away rather than fail builds
// the numbers were never written for.
#define DDPM_HOT_LAYOUT(TYPE, SIZE, ALIGN)                                   \
  static_assert(sizeof(void*) != 8 ||                                        \
                    (sizeof(TYPE) == (SIZE) && alignof(TYPE) == (ALIGN)),    \
                "hot-path layout drifted: " #TYPE " (update the "            \
                "DDPM_HOT_LAYOUT declaration deliberately)")
