// Runtime contract macros for hot invariants.
//
// The DDPM reproduction's headline claim — one marked packet identifies the
// true source — rests on bit-exact 16-bit field arithmetic and deterministic
// event ordering. A silently corrupted invariant does not crash; it quietly
// skews Tables 1-3. These macros make invariant violations loud:
//
//   DDPM_CHECK(cond)         always on, including Release. For invariants
//                            whose violation corrupts results (time going
//                            backwards, out-of-range coordinates) and whose
//                            cost is negligible relative to the operation.
//   DDPM_DCHECK(cond)        debug/sanitizer builds only; compiled out under
//                            NDEBUG (overridable with DDPM_ENABLE_DCHECKS).
//                            For per-element checks on hot paths.
//   DDPM_UNREACHABLE(msg)    marks impossible control flow; always fatal.
//
// Both CHECK forms accept an optional string-literal message:
//   DDPM_CHECK(when >= last, "event scheduled in the simulated past");
//
// On failure the macro prints `<kind> failure: <expr> (<message>) at
// file:line` to stderr and aborts, which gtest death tests and sanitizer
// log scrapers both recognise. The header is dependency-free and
// header-only so every layer (netsim upward) can include it without a link
// edge to ddpm_core.
#pragma once

#include <cstdio>  // ddpm-lint: allow(header-io) — the abort path must not allocate
#include <cstdlib>

namespace ddpm::core::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* message, const char* file,
                                          int line) noexcept {
  if (message != nullptr && message[0] != '\0') {
    std::fprintf(stderr,  // ddpm-lint: allow(src-no-console) — abort path
                 "%s failure: %s (%s) at %s:%d\n", kind, expr, message,
                 file, line);
  } else {
    std::fprintf(stderr,  // ddpm-lint: allow(src-no-console) — abort path
                 "%s failure: %s at %s:%d\n", kind, expr, file, line);
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace ddpm::core::detail

// `"" __VA_ARGS__` concatenates the optional message literal with an empty
// literal, so both DDPM_CHECK(x) and DDPM_CHECK(x, "msg") compile; it also
// rejects non-literal messages at compile time, keeping the failure path
// allocation-free.
#define DDPM_CHECK(cond, ...)                                            \
  (static_cast<bool>(cond)                                               \
       ? static_cast<void>(0)                                            \
       : ::ddpm::core::detail::contract_failure(                         \
             "DDPM_CHECK", #cond, "" __VA_ARGS__, __FILE__, __LINE__))

#ifndef DDPM_ENABLE_DCHECKS
#ifdef NDEBUG
#define DDPM_ENABLE_DCHECKS 0
#else
#define DDPM_ENABLE_DCHECKS 1
#endif
#endif

#if DDPM_ENABLE_DCHECKS
#define DDPM_DCHECK(cond, ...)                                           \
  (static_cast<bool>(cond)                                               \
       ? static_cast<void>(0)                                            \
       : ::ddpm::core::detail::contract_failure(                         \
             "DDPM_DCHECK", #cond, "" __VA_ARGS__, __FILE__, __LINE__))
#else
// Unevaluated sizeof keeps `cond`'s variables odr-used (no -Wunused fallout)
// while generating no code.
#define DDPM_DCHECK(cond, ...) \
  (static_cast<void>(sizeof(static_cast<bool>(cond) ? 1 : 0)))
#endif

#define DDPM_UNREACHABLE(msg)                                            \
  ::ddpm::core::detail::contract_failure("DDPM_UNREACHABLE", "reached",  \
                                         msg, __FILE__, __LINE__)
