// Model-checker annotations and the compile-time mutation hook.
//
// DDPM_MODEL marks the cold, side-effect-free surface the bounded protocol
// model checker (src/verify/model, docs/VERIFICATION.md) relies on: state
// snapshot accessors and invariant probes on the production WormholeNetwork
// that the witness-replay harness calls between cycles. The annotation is a
// lexical token (like DDPM_HOT) so the contract is greppable and the
// analyzer frontends can see it without preprocessing; it expands to
// nothing — annotated members are ordinary cold methods.
//
// DDPM_MODEL_MUTATION(kind) is the negative-control hook: it seeds known
// protocol bugs (a dropped credit return, an off-by-one buffer bound, a
// skipped escape-VC fallback) at the exact points in the wormhole engines
// where the real bug class would live. In ordinary builds the macro is the
// constant `false`, so the hot path compiles byte-identically to a tree
// without the hook (the wormhole_steps floor in BENCH_kernel.json pins
// this). Only a translation unit compiled with -DDDPM_MODEL_MUTATIONS
// (tests/test_model_mutations.cpp builds its own copy of wormhole.cpp that
// way) pays the runtime check, selected through set_model_mutation().
//
// The same ModelMutation enum parameterizes the abstract stepping model
// (verify::model::ModelOptions::mutation), which is how the ctest proves
// the loop closes: seed the bug in both the model and the real network,
// model-check to a conviction + witness, replay the witness on the real
// network, and require the real failure to reproduce.
#pragma once

namespace ddpm::core {

/// Seeded protocol bugs for the model checker's negative controls.
enum class ModelMutation {
  kNone = 0,
  /// return_credit becomes a no-op: the downstream pop never refills the
  /// upstream output VC (violates credit conservation, then wedges).
  kDropCreditReturn,
  /// Switch traversal treats zero credits as "one more slot" — the classic
  /// off-by-one in the stall comparison — overflowing the downstream
  /// buffer past its depth.
  kBufferOffByOne,
  /// VC allocation gives up when the adaptive candidates are exhausted
  /// instead of falling back to the escape VC (reintroduces the
  /// hold-and-wait deadlock the escape layer exists to break).
  kSkipEscapeFallback,
};

#if defined(DDPM_MODEL_MUTATIONS)

/// Process-wide selected mutation (mutation-enabled builds only; the test
/// binary is single-threaded by construction).
inline ModelMutation g_model_mutation = ModelMutation::kNone;

inline void set_model_mutation(ModelMutation m) noexcept {
  g_model_mutation = m;
}
inline ModelMutation active_model_mutation() noexcept {
  return g_model_mutation;
}

#define DDPM_MODEL_MUTATION(kind) \
  (::ddpm::core::active_model_mutation() == ::ddpm::core::ModelMutation::kind)

#else

#define DDPM_MODEL_MUTATION(kind) false

#endif

}  // namespace ddpm::core

/// Marks a cold method as part of the model checker's snapshot/replay
/// contract. Annotation only — expands to nothing on every compiler.
#define DDPM_MODEL
