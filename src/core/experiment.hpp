// Multi-seed experiment aggregation: run the same scenario under many RNG
// seeds and report means and spreads, so benches can show that results are
// properties of the design, not of one lucky seed.
//
// Replications are embarrassingly parallel (each owns a private Simulator
// and Rng); every entry point below takes a `jobs` count and fans the runs
// across a ParallelRunner. Aggregation always happens serially in
// replication order, so the summary is bit-identical for any `jobs`.
#pragma once

#include <vector>

#include "core/shard_annotations.hpp"
#include "core/sis.hpp"

namespace ddpm::core {

/// Raw scalars of one replication — computed inside the worker, merged
/// into the summary in replication order on the calling thread.
struct RunOutcome {
  bool detected = false;
  double detection_latency = 0;  // ticks after attack start (valid if detected)
  double true_positives = 0;
  double false_positives = 0;
  double packets_to_first_identification = 0;  // 0 = never identified
  double attack_delivered_after_block = 0;
  double benign_latency_mean = 0;
  bool perfect = false;  // every true source named, zero innocents
  /// This replication's full registry snapshot; folded into the summary's
  /// aggregate telemetry in replication order.
  telemetry::MetricsSnapshot telemetry;
};

/// Aggregate over the repeated runs of one scenario.
struct ExperimentSummary {
  std::size_t runs = 0;

  netsim::RunningStat detection_latency;  // ticks after attack start
  std::size_t detected_runs = 0;

  netsim::RunningStat true_positives;
  netsim::RunningStat false_positives;
  netsim::RunningStat packets_to_first_identification;
  netsim::RunningStat attack_delivered_after_block;
  netsim::RunningStat benign_latency_mean;

  /// Runs in which every true source was identified with zero innocents.
  std::size_t perfect_runs = 0;

  /// Merge of every replication's registry snapshot (counters summed,
  /// gauge peaks maxed). Merged serially in replication order, so the
  /// result is byte-identical for any `jobs` value.
  telemetry::MetricsSnapshot telemetry;

  std::string to_string() const;
};

/// Runs one scenario to completion and distills the report. The worker-side
/// half of every repeated-run entry point.
RunOutcome run_scenario_once(const ScenarioConfig& config);

/// Folds `n` outcomes into a summary in array order (deterministic merge).
/// The span form lets callers summarize a slice of a larger result vector
/// (the sweep grid's per-cell replication runs) without copying it first.
/// DDPM_SHARD_MERGE: the sanctioned crossing from per-worker outcomes to
/// the aggregate — the analyzer proves its closure det-taint-clean.
DDPM_SHARD_MERGE ExperimentSummary summarize(const RunOutcome* outcomes,
                                             std::size_t n);
DDPM_SHARD_MERGE ExperimentSummary summarize(
    const std::vector<RunOutcome>& outcomes);

/// Runs `config` once per seed (overriding config.cluster.seed) and
/// aggregates. The scenario is otherwise identical across runs. `jobs` > 1
/// fans the seeds across threads; the result is identical for any value.
ExperimentSummary run_repeated(const ScenarioConfig& config,
                               const std::vector<std::uint64_t>& seeds,
                               std::size_t jobs = 1);

/// Convenience: seeds 1..n. (Named distinctly so a braced seed list like
/// {42} cannot silently bind to the count overload.)
ExperimentSummary run_repeated_n(const ScenarioConfig& config, std::size_t n,
                                 std::size_t jobs = 1);

/// Runs n replications of `config` with the seed fixed and
/// cluster.rng_stream = 0..n-1: every replication draws from its own
/// 2^192-spaced xoshiro block (long_jump), provably disjoint from all
/// others — the statistically clean alternative to a seed list.
ExperimentSummary run_replications(const ScenarioConfig& config,
                                   std::size_t n, std::size_t jobs = 1);

}  // namespace ddpm::core
