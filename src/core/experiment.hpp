// Multi-seed experiment aggregation: run the same scenario under many RNG
// seeds and report means and spreads, so benches can show that results are
// properties of the design, not of one lucky seed.
#pragma once

#include <vector>

#include "core/sis.hpp"

namespace ddpm::core {

/// Aggregate over the repeated runs of one scenario.
struct ExperimentSummary {
  std::size_t runs = 0;

  netsim::RunningStat detection_latency;  // ticks after attack start
  std::size_t detected_runs = 0;

  netsim::RunningStat true_positives;
  netsim::RunningStat false_positives;
  netsim::RunningStat packets_to_first_identification;
  netsim::RunningStat attack_delivered_after_block;
  netsim::RunningStat benign_latency_mean;

  /// Runs in which every true source was identified with zero innocents.
  std::size_t perfect_runs = 0;

  std::string to_string() const;
};

/// Runs `config` once per seed (overriding config.cluster.seed) and
/// aggregates. The scenario is otherwise identical across runs.
ExperimentSummary run_repeated(const ScenarioConfig& config,
                               const std::vector<std::uint64_t>& seeds);

/// Convenience: seeds 1..n. (Named distinctly so a braced seed list like
/// {42} cannot silently bind to the count overload.)
ExperimentSummary run_repeated_n(const ScenarioConfig& config, std::size_t n);

}  // namespace ddpm::core
