// Deterministic fan-out of independent replications across a fixed thread
// pool.
//
// The design constraint is bit-identical output for any --jobs value:
//   * every work item is fully independent (its own Simulator + Rng —
//     nothing in the library has global mutable state);
//   * workers claim item indices from one atomic counter (no work stealing,
//     no per-thread queues — claim order may vary between runs, and that
//     is fine because it is unobservable);
//   * each item writes its result into its own pre-allocated slot, and the
//     caller merges slots in index order — so floating-point accumulation
//     order, and therefore every emitted bit, is independent of thread
//     timing.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <thread>
#include <utility>
#include <vector>

#include "core/shard_annotations.hpp"
#include "core/thread_annotations.hpp"

namespace ddpm::core {

class ParallelRunner {
 public:
  /// `jobs` = worker thread count; 0 and 1 both mean "run inline on the
  /// calling thread" (the serial path spawns nothing, so serial callers
  /// never pay thread start-up or need thread-safe callables).
  explicit ParallelRunner(std::size_t jobs) : jobs_(jobs == 0 ? 1 : jobs) {}

  std::size_t jobs() const noexcept { return jobs_; }

  /// Calls fn(i) for every i in [0, n), fanned across the pool. Returns
  /// after all items completed. If any fn throws, the first exception (in
  /// completion order) is rethrown after the pool drains; remaining
  /// unstarted items are skipped.
  /// DDPM_DET_SOURCE: dispatching work across threads is the repo's
  /// canonical nondeterminism source — anything a determinism sink
  /// derives from a dispatch must be merged in index order, and every
  /// sink-reachable call site must carry an explicit
  /// `ddpm-analyze: allow(det-taint: ...)` justification.
  template <typename Fn>
  DDPM_DET_SOURCE void for_each_index(std::size_t n, Fn&& fn) const {
    // Workers beyond the hardware thread count cannot run concurrently —
    // they only add scheduler churn and cache thrash (measured: --jobs=8 on
    // one core ran 7% slower than serial). Worker count is unobservable in
    // the output (results merge in index order), so clamp it; when one
    // worker remains, skip thread start-up entirely.
    // det-taint allowance: the worker count only clamps the pool; results
    // merge in index order, so it is unobservable in any sink output.
    const std::size_t hw =
        std::size_t(std::thread::hardware_concurrency());  // ddpm-analyze: allow(det-taint)
    const std::size_t workers =
        std::min(std::min(jobs_, n), hw == 0 ? jobs_ : hw);
    if (workers <= 1 || n <= 1) {
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    std::atomic<std::size_t> next{0};
    ErrorSlot error;
    auto worker = [&]() {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          fn(i);
        } catch (...) {
          const MutexLock lock(error.mutex);
          if (!error.first) error.first = std::current_exception();
          next.store(n, std::memory_order_relaxed);  // stop claiming work
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
    // The joins order every worker's write before this read, but the
    // thread-safety analysis reasons in capabilities, not happens-before:
    // take the lock so the guarded read is provably consistent.
    const MutexLock lock(error.mutex);
    if (error.first) std::rethrow_exception(error.first);
  }

  /// Maps fn over [0, n) and returns the results in index order — the
  /// deterministic-merge primitive. R must be default-constructible.
  template <typename R, typename Fn>
  std::vector<R> map(std::size_t n, Fn&& fn) const {
    std::vector<R> out(n);
    for_each_index(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  /// First exception thrown by any work item, captured under its mutex so
  /// Clang's thread-safety analysis can verify every access.
  struct ErrorSlot {
    Mutex mutex;
    std::exception_ptr first DDPM_GUARDED_BY(mutex);
  };

  std::size_t jobs_;
};

}  // namespace ddpm::core
