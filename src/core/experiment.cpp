#include "core/experiment.hpp"

#include <numeric>
#include <sstream>

#include "core/parallel_runner.hpp"

namespace ddpm::core {

RunOutcome run_scenario_once(const ScenarioConfig& config) {
  SourceIdentificationSystem system(config);
  ScenarioReport report = system.run();
  RunOutcome out;
  if (report.detection_time) {
    out.detected = true;
    const auto start = config.attack.start_time;
    out.detection_latency = double(
        *report.detection_time >= start ? *report.detection_time - start : 0);
  }
  out.true_positives = double(report.true_positives);
  out.false_positives = double(report.false_positives);
  out.packets_to_first_identification =
      double(report.packets_to_first_identification);
  out.attack_delivered_after_block =
      double(report.attack_delivered_after_block);
  out.benign_latency_mean = report.metrics.latency_benign.mean();
  out.perfect = report.true_positives == report.true_sources.size() &&
                report.false_positives == 0;
  out.telemetry = std::move(report.telemetry);
  return out;
}

ExperimentSummary summarize(const RunOutcome* outcomes, std::size_t n) {
  ExperimentSummary summary;
  for (std::size_t i = 0; i < n; ++i) {
    const RunOutcome& run = outcomes[i];
    ++summary.runs;
    if (run.detected) {
      ++summary.detected_runs;
      summary.detection_latency.add(run.detection_latency);
    }
    summary.true_positives.add(run.true_positives);
    summary.false_positives.add(run.false_positives);
    if (run.packets_to_first_identification > 0) {
      summary.packets_to_first_identification.add(
          run.packets_to_first_identification);
    }
    summary.attack_delivered_after_block.add(run.attack_delivered_after_block);
    summary.benign_latency_mean.add(run.benign_latency_mean);
    if (run.perfect) ++summary.perfect_runs;
    summary.telemetry.merge(run.telemetry);
  }
  return summary;
}

ExperimentSummary summarize(const std::vector<RunOutcome>& outcomes) {
  return summarize(outcomes.data(), outcomes.size());
}

ExperimentSummary run_repeated(const ScenarioConfig& config,
                               const std::vector<std::uint64_t>& seeds,
                               std::size_t jobs) {
  const ParallelRunner pool(jobs);
  const auto outcomes =
      pool.map<RunOutcome>(seeds.size(), [&](std::size_t i) {
        ScenarioConfig run_config = config;
        run_config.cluster.seed = seeds[i];
        return run_scenario_once(run_config);
      });
  return summarize(outcomes);
}

ExperimentSummary run_repeated_n(const ScenarioConfig& config, std::size_t n,
                                 std::size_t jobs) {
  std::vector<std::uint64_t> seeds(n);
  std::iota(seeds.begin(), seeds.end(), 1);
  return run_repeated(config, seeds, jobs);
}

ExperimentSummary run_replications(const ScenarioConfig& config,
                                   std::size_t n, std::size_t jobs) {
  const ParallelRunner pool(jobs);
  const auto outcomes = pool.map<RunOutcome>(n, [&](std::size_t i) {
    ScenarioConfig run_config = config;
    run_config.cluster.rng_stream = i;
    return run_scenario_once(run_config);
  });
  return summarize(outcomes);
}

std::string ExperimentSummary::to_string() const {
  std::ostringstream os;
  os << runs << " runs: detected " << detected_runs << "/" << runs
     << " (latency " << detection_latency.mean() << " +- "
     << detection_latency.stddev() << " ticks), TP "
     << true_positives.mean() << " +- " << true_positives.stddev() << ", FP "
     << false_positives.mean() << ", perfect " << perfect_runs << "/" << runs;
  return os.str();
}

}  // namespace ddpm::core
