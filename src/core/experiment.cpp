#include "core/experiment.hpp"

#include <numeric>
#include <sstream>

namespace ddpm::core {

ExperimentSummary run_repeated(const ScenarioConfig& config,
                               const std::vector<std::uint64_t>& seeds) {
  ExperimentSummary summary;
  for (const std::uint64_t seed : seeds) {
    ScenarioConfig run_config = config;
    run_config.cluster.seed = seed;
    SourceIdentificationSystem system(run_config);
    const ScenarioReport report = system.run();
    ++summary.runs;
    if (report.detection_time) {
      ++summary.detected_runs;
      const auto start = config.attack.start_time;
      summary.detection_latency.add(
          double(*report.detection_time >= start
                     ? *report.detection_time - start
                     : 0));
    }
    summary.true_positives.add(double(report.true_positives));
    summary.false_positives.add(double(report.false_positives));
    if (report.packets_to_first_identification > 0) {
      summary.packets_to_first_identification.add(
          double(report.packets_to_first_identification));
    }
    summary.attack_delivered_after_block.add(
        double(report.attack_delivered_after_block));
    summary.benign_latency_mean.add(report.metrics.latency_benign.mean());
    if (report.true_positives == report.true_sources.size() &&
        report.false_positives == 0) {
      ++summary.perfect_runs;
    }
  }
  return summary;
}

ExperimentSummary run_repeated_n(const ScenarioConfig& config, std::size_t n) {
  std::vector<std::uint64_t> seeds(n);
  std::iota(seeds.begin(), seeds.end(), 1);
  return run_repeated(config, seeds);
}

std::string ExperimentSummary::to_string() const {
  std::ostringstream os;
  os << runs << " runs: detected " << detected_runs << "/" << runs
     << " (latency " << detection_latency.mean() << " +- "
     << detection_latency.stddev() << " ticks), TP "
     << true_positives.mean() << " +- " << true_positives.stddev() << ", FP "
     << false_positives.mean() << ", perfect " << perfect_runs << "/" << runs;
  return os.str();
}

}  // namespace ddpm::core
