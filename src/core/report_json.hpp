// JSON serialization of scenario reports — the machine-readable output of
// ddpm_sim (--json) for downstream sweep/plotting tooling. No third-party
// dependency: the report is a closed, numeric structure, so a small
// hand-rolled writer suffices.
#pragma once

#include <string>

#include "core/sis.hpp"

namespace ddpm::core {

/// Serializes the report (pretty-printed, stable key order).
std::string to_json(const ScenarioReport& report);

/// Serializes the scenario configuration alongside, so one JSON document
/// fully describes an experiment: {"config": ..., "report": ...}.
std::string to_json(const ScenarioConfig& config, const ScenarioReport& report);

}  // namespace ddpm::core
