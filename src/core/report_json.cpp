#include "core/report_json.hpp"

#include <sstream>

namespace ddpm::core {

namespace {

/// Minimal JSON builder: tracks nesting/indentation and comma placement.
class Json {
 public:
  std::string str() const { return out_.str(); }

  void open_object(const std::string& key = "") {
    prefix(key);
    out_ << "{";
    first_.push_back(true);
  }
  void close_object() {
    first_.pop_back();
    newline();
    out_ << "}";
  }
  void open_array(const std::string& key) {
    prefix(key);
    out_ << "[";
    first_.push_back(true);
  }
  void close_array() {
    first_.pop_back();
    newline();
    out_ << "]";
  }

  template <typename T>
  void field(const std::string& key, const T& value) {
    prefix(key);
    write(value);
  }

 private:
  void newline() {
    out_ << '\n' << std::string(2 * first_.size(), ' ');
  }
  void prefix(const std::string& key) {
    if (!first_.empty()) {
      if (!first_.back()) out_ << ',';
      first_.back() = false;
      newline();
    }
    if (!key.empty()) out_ << '"' << key << "\": ";
  }
  void write(const std::string& value) {
    out_ << '"';
    for (char c : value) {
      switch (c) {
        case '"': out_ << "\\\""; break;
        case '\\': out_ << "\\\\"; break;
        case '\n': out_ << "\\n"; break;
        default: out_ << c;
      }
    }
    out_ << '"';
  }
  void write(const char* value) { write(std::string(value)); }
  void write(bool value) { out_ << (value ? "true" : "false"); }
  template <typename T>
  void write(const T& value) {
    out_ << value;
  }

  std::ostringstream out_;
  std::vector<bool> first_;
};

void write_metrics(Json& json, const cluster::Metrics& m) {
  json.open_object("metrics");
  json.field("injected_benign", m.injected_benign);
  json.field("injected_attack", m.injected_attack);
  json.field("delivered_benign", m.delivered_benign);
  json.field("delivered_attack", m.delivered_attack);
  json.field("dropped_queue_full", m.dropped_queue_full);
  json.field("dropped_no_route", m.dropped_no_route);
  json.field("dropped_ttl", m.dropped_ttl);
  json.field("blocked_at_source", m.blocked_at_source);
  json.field("filtered_at_victim", m.filtered_at_victim);
  json.field("benign_latency_mean", m.latency_benign.mean());
  json.field("benign_latency_max", m.latency_benign.max());
  json.field("attack_latency_mean", m.latency_attack.mean());
  json.field("mean_hops", m.hops.mean());
  json.close_object();
}

void write_report_body(Json& json, const ScenarioReport& report) {
  json.open_object("report");
  if (report.detection_time) {
    json.field("detection_time", *report.detection_time);
  } else {
    json.field("detection_time", "never");
  }
  json.field("true_positives", report.true_positives);
  json.field("false_positives", report.false_positives);
  json.field("packets_to_first_identification",
             report.packets_to_first_identification);
  json.field("attack_delivered_before_block",
             report.attack_delivered_before_block);
  json.field("attack_delivered_after_block",
             report.attack_delivered_after_block);
  json.open_array("true_sources");
  for (auto n : report.true_sources) json.field("", n);
  json.close_array();
  json.open_array("identified_sources");
  for (auto n : report.identified_sources) json.field("", n);
  json.close_array();
  json.open_array("blocked_sources");
  for (auto n : report.blocked_sources) json.field("", n);
  json.close_array();
  json.open_array("identifications");
  for (const auto& e : report.identifications) {
    json.open_object();
    json.field("t", e.when);
    json.field("identified", e.identified);
    json.field("correct", e.correct);
    json.close_object();
  }
  json.close_array();
  write_metrics(json, report.metrics);
  json.field("telemetry_series", report.telemetry.series());
  json.close_object();
}

}  // namespace

std::string to_json(const ScenarioReport& report) {
  Json json;
  json.open_object();
  write_report_body(json, report);
  json.close_object();
  return json.str();
}

std::string to_json(const ScenarioConfig& config,
                    const ScenarioReport& report) {
  Json json;
  json.open_object();
  json.open_object("config");
  json.field("topology", config.cluster.topology);
  json.field("router", config.cluster.router);
  json.field("scheme", config.cluster.scheme);
  json.field("pattern", config.cluster.pattern);
  json.field("benign_rate_per_node", config.cluster.benign_rate_per_node);
  json.field("seed", config.cluster.seed);
  json.field("identifier", config.identifier);
  json.field("detector", config.detector);
  json.field("detect_rate_threshold", config.detect_rate_threshold);
  json.field("auto_block", config.auto_block);
  json.field("duration", config.duration);
  json.open_object("attack");
  json.field("kind", attack::to_string(config.attack.kind));
  json.field("victim", config.attack.victim);
  json.field("rate_per_zombie", config.attack.rate_per_zombie);
  json.field("spoof", attack::to_string(config.attack.spoof));
  json.field("start_time", config.attack.start_time);
  json.open_array("zombies");
  for (auto z : config.attack.zombies) json.field("", z);
  json.close_array();
  json.close_object();
  json.close_object();
  write_report_body(json, report);
  json.close_object();
  return json.str();
}

}  // namespace ddpm::core
