// SourceIdentificationSystem: the library's top-level API.
//
// Wires a simulated cluster, a DDoS attack, a victim-side detector, a
// marking-scheme identifier, and (optionally) automatic mitigation into one
// runnable scenario, and reports everything the paper's evaluation story
// needs: when the attack was detected, which sources were identified, how
// many packets that took, and what happened to attack/benign goodput.
//
// The pipeline mirrors the paper's architecture:
//   detect (assumed to exist, §6.1)  ->  identify (the contribution, §5)
//   ->  block at the source switch (§2).
#pragma once

#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "cluster/network.hpp"
#include "detect/detector.hpp"
#include "marking/scheme.hpp"
#include "stream/detectors.hpp"
#include "telemetry/probes.hpp"
#include "telemetry/registry.hpp"

namespace ddpm::core {

struct ScenarioConfig {
  cluster::ClusterConfig cluster;
  attack::AttackConfig attack;

  /// Victim-side identifier; must match cluster.scheme ("ddpm", "dpm",
  /// "ppm-full", "ppm-xor", "ppm-bitdiff", or "none").
  std::string identifier = "ddpm";

  /// Victim-side detector (stream::make_detector): "rate-threshold",
  /// "entropy", "cusum", "syn-half-open", or the sublinear sketch trio
  /// "sketch-entropy" / "heavy-hitter" / "sketch-cusum".
  std::string detector = "rate-threshold";

  /// Rate-threshold knobs: EWMA inbound rate (packets/tick) at the victim.
  double detect_rate_threshold = 0.02;
  double detect_half_life = 2000;

  /// Knobs for the non-default detectors.
  stream::SketchDetectorTuning detect_tuning;

  /// Classifier imperfection: probability a benign packet at the victim is
  /// handed to the identifier as if it were attack traffic (0 = the perfect
  /// classifier the paper implicitly assumes).
  double classifier_false_positive_rate = 0.0;

  /// Install a source-switch block as soon as the identifier names a
  /// single candidate (the paper's mitigation step).
  bool auto_block = true;

  netsim::SimTime duration = 2'000'000;
};

struct IdentificationEvent {
  netsim::SimTime when = 0;
  topo::NodeId identified = topo::kInvalidNode;
  topo::NodeId true_source = topo::kInvalidNode;  // of the triggering packet
  bool correct = false;
};

struct ScenarioReport {
  cluster::Metrics metrics;

  std::optional<netsim::SimTime> detection_time;
  std::vector<IdentificationEvent> identifications;

  /// Ground truth and outcome sets.
  std::set<topo::NodeId> true_sources;        // zombies
  std::set<topo::NodeId> identified_sources;  // unique single-candidate IDs
  std::set<topo::NodeId> blocked_sources;

  std::size_t true_positives = 0;   // identified & really attacking
  std::size_t false_positives = 0;  // identified but innocent

  /// Attack packets the victim absorbed before / after the first block.
  std::uint64_t attack_delivered_before_block = 0;
  std::uint64_t attack_delivered_after_block = 0;

  /// Packets the identifier consumed before its first correct answer.
  std::uint64_t packets_to_first_identification = 0;

  /// Every registered telemetry series at end of run (per-switch drops,
  /// marks, pipeline counters, kernel gauges, ...). Empty when the cluster
  /// config disables telemetry or the build compiled it out.
  telemetry::MetricsSnapshot telemetry;

  std::string summary() const;
};

/// Builds and runs one scenario. The object owns the network; accessors
/// expose it for custom instrumentation between construction and run().
class SourceIdentificationSystem {
 public:
  explicit SourceIdentificationSystem(ScenarioConfig config);

  cluster::ClusterNetwork& network() noexcept { return *network_; }
  const ScenarioConfig& config() const noexcept { return config_; }

  /// Optional tap: sees every delivered packet (any node) alongside the
  /// pipeline. Used by benches to build timelines without displacing the
  /// detect/identify hook.
  using Observer = std::function<void(const pkt::Packet&, topo::NodeId)>;
  void set_observer(Observer observer) { observer_ = std::move(observer); }

  /// Routes kernel, switch, and pipeline trace events into `tracer` (which
  /// must outlive run()). Call before run().
  void set_tracer(telemetry::Tracer* tracer);

  /// Runs the full scenario and returns the report. Call once.
  ScenarioReport run();

 private:
  void on_delivery(const pkt::Packet& packet, topo::NodeId at);

  ScenarioConfig config_;
  Observer observer_;
  std::unique_ptr<cluster::ClusterNetwork> network_;
  std::unique_ptr<mark::SourceIdentifier> identifier_;
  std::unique_ptr<detect::Detector> detector_;
  netsim::Rng rng_;
  telemetry::PipelineProbes probes_;
  ScenarioReport report_;
  std::uint64_t suspect_packets_ = 0;
  bool any_block_installed_ = false;
  bool ran_ = false;
};

/// Builds the victim-side identifier matching a scheme name; nullptr for
/// "none". For "dpm" the identifier trains against deterministic
/// dimension-order routes (the stable-route assumption DPM needs).
std::unique_ptr<mark::SourceIdentifier> make_identifier(
    const std::string& name, const topo::Topology& topo, topo::NodeId victim,
    std::uint8_t initial_ttl);

}  // namespace ddpm::core
