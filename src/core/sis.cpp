#include "core/sis.hpp"

#include <sstream>
#include <stdexcept>

#include "marking/ddpm.hpp"
#include "marking/dpm.hpp"
#include "marking/ppm.hpp"
#include "marking/ppm_fragment.hpp"
#include "marking/ppm_reconstruct.hpp"
#include "routing/dor.hpp"

namespace ddpm::core {

std::unique_ptr<mark::SourceIdentifier> make_identifier(
    const std::string& name, const topo::Topology& topo, topo::NodeId victim,
    std::uint8_t initial_ttl) {
  if (name == "none") return nullptr;
  if (name == "ddpm") return std::make_unique<mark::DdpmIdentifier>(topo);
  if (name == "dpm") {
    // DPM's victim trains against the deterministic routes it assumes the
    // network uses (paper §4.3).
    const route::DimensionOrderRouter trained(topo);
    const mark::DpmScheme scheme;
    return std::make_unique<mark::DpmIdentifier>(topo, trained, victim, scheme,
                                                 initial_ttl);
  }
  if (name == "ppm-full") {
    return std::make_unique<mark::PpmIdentifier>(topo, mark::PpmVariant::kFullEdge);
  }
  if (name == "ppm-xor") {
    return std::make_unique<mark::PpmIdentifier>(topo, mark::PpmVariant::kXor);
  }
  if (name == "ppm-bitdiff") {
    return std::make_unique<mark::PpmIdentifier>(topo, mark::PpmVariant::kBitDiff);
  }
  if (name == "ppm-fragment") {
    return std::make_unique<mark::FragmentPpmIdentifier>(topo);
  }
  throw std::invalid_argument("make_identifier: unknown identifier '" + name + "'");
}

SourceIdentificationSystem::SourceIdentificationSystem(ScenarioConfig config)
    : config_(std::move(config)),
      network_(std::make_unique<cluster::ClusterNetwork>(config_.cluster)),
      detector_(stream::make_detector(config_.detector,
                                      config_.detect_rate_threshold,
                                      config_.detect_half_life,
                                      config_.detect_tuning)),
      rng_(config_.cluster.seed ^ 0xdddd5ULL) {
  if (config_.attack.kind != attack::AttackKind::kNone &&
      config_.attack.kind != attack::AttackKind::kWorm &&
      config_.attack.victim >= network_->topology().num_nodes()) {
    throw std::invalid_argument("SourceIdentificationSystem: bad victim");
  }
  identifier_ = make_identifier(config_.identifier, network_->topology(),
                                config_.attack.victim,
                                config_.cluster.initial_ttl);
  report_.true_sources.insert(config_.attack.zombies.begin(),
                              config_.attack.zombies.end());
  probes_.bind(&network_->registry(), nullptr);
  network_->set_attack(config_.attack);
  network_->set_delivery_hook(
      [this](const pkt::Packet& p, topo::NodeId at) { on_delivery(p, at); });
}

void SourceIdentificationSystem::set_tracer(telemetry::Tracer* tracer) {
  network_->set_tracer(tracer);
  // Re-binding reuses the existing registry slots; only the tracer changes.
  probes_.bind(&network_->registry(), tracer);
}

void SourceIdentificationSystem::on_delivery(const pkt::Packet& packet,
                                             topo::NodeId at) {
  if (observer_) observer_(packet, at);
  if (at != config_.attack.victim) return;
  const netsim::SimTime now = network_->sim().now();

  detector_->observe(packet, now);
  if (!detector_->alarmed()) return;
  if (!report_.detection_time) {
    report_.detection_time = detector_->alarm_time();
    probes_.on_detector_firing(config_.attack.victim);
  }

  // Post-detection classification: which delivered packets get traced. A
  // perfect classifier hands over exactly the attack packets; the
  // false-positive knob hands over some benign ones too (ablation).
  const bool suspect =
      packet.is_attack() ||
      (config_.classifier_false_positive_rate > 0.0 &&
       rng_.next_bool(config_.classifier_false_positive_rate));
  if (!suspect || identifier_ == nullptr) return;

  if (packet.is_attack()) {
    if (any_block_installed_) {
      ++report_.attack_delivered_after_block;
    } else {
      ++report_.attack_delivered_before_block;
    }
  }

  ++suspect_packets_;
  const std::vector<topo::NodeId> candidates = identifier_->observe(packet, at);
  probes_.on_identify(candidates.size());
  if (candidates.size() != 1) return;  // ambiguous or not yet known
  const topo::NodeId named = candidates.front();

  IdentificationEvent event;
  event.when = now;
  event.identified = named;
  event.true_source = packet.true_source;
  event.correct = report_.true_sources.count(named) != 0;
  const bool fresh = report_.identified_sources.insert(named).second;
  if (fresh) {
    report_.identifications.push_back(event);
    probes_.on_identification(named, event.correct);
    if (event.correct) {
      ++report_.true_positives;
      if (report_.packets_to_first_identification == 0) {
        report_.packets_to_first_identification = suspect_packets_;
      }
    } else {
      ++report_.false_positives;
    }
    if (config_.auto_block) {
      network_->filter().block_source_node(named);
      report_.blocked_sources.insert(named);
      any_block_installed_ = true;
      probes_.on_block(named);
    }
  }
}

ScenarioReport SourceIdentificationSystem::run() {
  if (ran_) throw std::logic_error("SourceIdentificationSystem::run: called twice");
  ran_ = true;
  network_->start();
  network_->run_until(config_.duration);
  const double latency =
      report_.detection_time
          ? double(*report_.detection_time) - double(config_.attack.start_time)
          : 0.0;
  probes_.on_run_end(report_.detection_time.has_value(), latency,
                     double(detector_->memory_bytes()));
  report_.metrics = network_->metrics();
  report_.telemetry = network_->telemetry_snapshot();
  return report_;
}

std::string ScenarioReport::summary() const {
  std::ostringstream os;
  os << metrics.summary() << '\n';
  os << "detection: "
     << (detection_time ? std::to_string(*detection_time) + " ticks" : "never")
     << '\n';
  os << "identified " << identified_sources.size() << "/"
     << true_sources.size() << " sources (" << true_positives
     << " correct, " << false_positives << " innocent); first correct after "
     << packets_to_first_identification << " traced packets\n";
  os << "attack packets at victim: " << attack_delivered_before_block
     << " before first block, " << attack_delivered_after_block << " after";
  return os.str();
}

}  // namespace ddpm::core
