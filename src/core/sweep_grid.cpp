#include "core/sweep_grid.hpp"

#include <sstream>

#include "attack/attacker.hpp"
#include "core/parallel_runner.hpp"
#include "topology/factory.hpp"

namespace ddpm::core {

namespace {

/// The scenario every cell shares, specialized by the cell's coordinates.
/// Mirrors the historical examples/sweep.cpp setup.
ScenarioConfig cell_config(const SweepSpec& spec, const std::string& topology,
                           const std::string& scheme,
                           const std::string& router, double rate) {
  ScenarioConfig config;
  config.cluster.topology = topology;
  config.cluster.router = router;
  config.cluster.scheme = scheme;
  config.cluster.seed = spec.seed;
  config.cluster.benign_rate_per_node = 0.0002;
  config.identifier = scheme;
  config.detect_rate_threshold = 0.005;
  config.duration = 300000;
  config.attack.kind = attack::AttackKind::kUdpFlood;
  config.attack.rate_per_zombie = rate;
  config.attack.start_time = 20000;
  const auto probe = topo::make_topology(topology);
  config.attack.victim = probe->num_nodes() - 1;
  {
    // rng-stream-discipline allowance: this RNG only picks the cell's fixed
    // zombie set, and cell_config runs serially before the fan-out — every
    // replication must see the SAME zombies, so a shared literal is the
    // point, not a correlated-stream bug.
    netsim::Rng rng(99);  // ddpm-analyze: allow(rng-stream-discipline)
    config.attack.zombies =
        attack::pick_zombies(*probe, 4, config.attack.victim, rng);
  }
  return config;
}

}  // namespace

std::vector<SweepCell> run_sweep(const SweepSpec& spec) {
  // Build the cell list (and each cell's scenario) serially so work-item
  // order — and therefore output order — is fixed before any thread runs.
  std::vector<SweepCell> cells;
  std::vector<ScenarioConfig> configs;
  for (const auto& topology : spec.topologies) {
    for (const auto& scheme : spec.schemes) {
      for (const auto& router : spec.routers) {
        for (const double rate : spec.rates) {
          cells.push_back(SweepCell{topology, scheme, router, rate, {}});
          configs.push_back(cell_config(spec, topology, scheme, router, rate));
        }
      }
    }
  }

  // Fan the flat (cell, replication) grid across the pool; replication r of
  // a cell draws from jumped stream r of the cell's seed.
  const std::size_t reps = spec.seeds;
  const ParallelRunner pool(spec.jobs);
  const auto outcomes =
      pool.map<RunOutcome>(cells.size() * reps, [&](std::size_t unit) {
        ScenarioConfig run_config = configs[unit / reps];
        run_config.cluster.rng_stream = unit % reps;
        return run_scenario_once(run_config);
      });

  // Deterministic merge: replication order within each cell. Summarize each
  // cell's slice in place — the old copy into a temporary vector hauled
  // every outcome's telemetry snapshot (keys, bins) through the allocator
  // once per cell.
  for (std::size_t c = 0; c < cells.size(); ++c) {
    cells[c].summary = summarize(outcomes.data() + c * reps, reps);
  }
  return cells;
}

std::string sweep_csv_header() {
  return "topology,scheme,router,attack_rate,seeds,detected_runs,"
         "detect_latency_mean,detect_latency_sd,tp_mean,fp_mean,"
         "packets_to_first_id,perfect_runs\n";
}

std::string sweep_csv(const std::vector<SweepCell>& cells) {
  std::ostringstream os;
  os << sweep_csv_header();
  for (const SweepCell& cell : cells) {
    const ExperimentSummary& s = cell.summary;
    os << cell.topology << ',' << cell.scheme << ',' << cell.router << ','
       << cell.rate << ',' << s.runs << ',' << s.detected_runs << ','
       << s.detection_latency.mean() << ',' << s.detection_latency.stddev()
       << ',' << s.true_positives.mean() << ',' << s.false_positives.mean()
       << ',' << s.packets_to_first_identification.mean() << ','
       << s.perfect_runs << '\n';
  }
  return os.str();
}

std::string sweep_metrics_json(const std::vector<SweepCell>& cells) {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const SweepCell& cell : cells) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "  \"" << cell.topology << '/' << cell.scheme << '/' << cell.router
       << '/' << cell.rate << "\": " << cell.summary.telemetry.to_json();
  }
  os << "\n}";
  return os.str();
}

}  // namespace ddpm::core
