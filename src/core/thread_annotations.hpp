// Clang thread-safety capability annotations (-Wthread-safety) and the
// annotated mutex wrappers the analysis needs to see.
//
// std::mutex carries no capability attributes, so Clang's static lock
// analysis cannot follow it. The Mutex/MutexLock pair below wraps it with
// the attributes, letting the compiler prove, at build time, that every
// access to a DDPM_GUARDED_BY member happens under its lock. The clang CI
// legs promote the warning to an error (-Werror=thread-safety); GCC and
// non-annotating builds compile the macros away. Discipline and rationale:
// docs/STATIC_ANALYSIS.md ("Thread-safety annotations").
//
// Keep the surface small: shared mutable state is a design smell in this
// codebase (replications share nothing, the analyzer's
// no-shared-mutable-static rule enforces it) — the only sanctioned users
// are the parallel runner's error slot and the telemetry registry's
// registration path.
#pragma once

#include <mutex>

#if defined(__clang__)
#define DDPM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DDPM_THREAD_ANNOTATION(x)
#endif

#define DDPM_CAPABILITY(x) DDPM_THREAD_ANNOTATION(capability(x))
#define DDPM_SCOPED_CAPABILITY DDPM_THREAD_ANNOTATION(scoped_lockable)
#define DDPM_GUARDED_BY(x) DDPM_THREAD_ANNOTATION(guarded_by(x))
#define DDPM_PT_GUARDED_BY(x) DDPM_THREAD_ANNOTATION(pt_guarded_by(x))
#define DDPM_ACQUIRE(...) DDPM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define DDPM_RELEASE(...) DDPM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define DDPM_REQUIRES(...) \
  DDPM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define DDPM_EXCLUDES(...) DDPM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define DDPM_NO_THREAD_SAFETY_ANALYSIS \
  DDPM_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace ddpm::core {

/// std::mutex with the capability attribute Clang's analysis tracks.
class DDPM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DDPM_ACQUIRE() { m_.lock(); }
  void unlock() DDPM_RELEASE() { m_.unlock(); }

 private:
  std::mutex m_;
};

/// RAII lock over Mutex; scoped so the analysis knows the capability is
/// held for exactly this block.
class DDPM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) DDPM_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~MutexLock() DDPM_RELEASE() { m_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& m_;
};

}  // namespace ddpm::core
