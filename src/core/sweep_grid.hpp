// Grid experiment driver: the topology x scheme x router x rate cross
// product, each cell replicated, the whole grid fanned across threads.
//
// This is the library half of examples/sweep.cpp. It lives in core so the
// determinism suite can assert the hard invariant directly: the CSV a
// sweep emits is bit-identical for --jobs 1 and --jobs N. That holds
// because the (cell, replication) work items are independent and the
// per-cell merge runs serially in replication order (see
// parallel_runner.hpp).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/shard_annotations.hpp"

namespace ddpm::core {

struct SweepSpec {
  std::vector<std::string> topologies{"mesh:8x8", "torus:8x8", "hypercube:6"};
  std::vector<std::string> schemes{"ddpm", "dpm", "ppm-full"};
  std::vector<std::string> routers{"dor", "adaptive"};
  std::vector<double> rates{0.005, 0.01};

  /// Replications per cell. Each replication r draws from the jumped
  /// stream (seed, rng_stream = r) — disjoint by construction.
  std::size_t seeds = 3;
  std::uint64_t seed = 42;

  /// Worker threads for the (cell, replication) fan-out.
  std::size_t jobs = 1;
};

struct SweepCell {
  std::string topology;
  std::string scheme;
  std::string router;
  double rate = 0;
  ExperimentSummary summary;
};

/// Runs the full grid. Cells appear in cross-product order (topology
/// outermost, rate innermost), matching the historical sweep CSV layout.
std::vector<SweepCell> run_sweep(const SweepSpec& spec);

/// One CSV row per cell, plus sweep_csv_header() on top — byte-for-byte
/// what examples/sweep.cpp prints. DDPM_DET_SINK: this string is the
/// determinism suite's bit-identity artifact; nothing nondeterministic
/// may flow into it.
std::string sweep_csv_header();
DDPM_DET_SINK std::string sweep_csv(const std::vector<SweepCell>& cells);

/// One JSON object keyed by "topology/scheme/router/rate"; each value is
/// the cell's merged telemetry snapshot (replications folded in order, so
/// the document is byte-identical for any jobs count).
DDPM_DET_SINK std::string sweep_metrics_json(const std::vector<SweepCell>& cells);

}  // namespace ddpm::core
