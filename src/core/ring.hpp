// Flat ring buffer: the allocation-free replacement for std::deque in
// per-port/per-VC queues.
//
// std::deque allocates a block map per queue plus a block per few dozen
// elements, and push/pop churn crosses block boundaries in steady state.
// A wormhole network has (P+1)*V input queues per node — thousands of
// deques on an 8x8 torus — so the hot loop paid scattered allocator
// traffic for buffers whose depth is bounded by credits anyway. RingBuffer
// keeps elements in one contiguous slab with head/count indices: pushes
// and pops in steady state touch no allocator, and a reserve() up front
// (credit depth for switch ports) makes the queue provably allocation-free
// — which is exactly what the hot-no-alloc analyzer rule and the
// zero-allocation ctest assert.
//
// Growth (unbounded injection queues only) doubles into a fresh slab with
// the elements rotated back to offset zero; amortized O(1), and never on
// the credit-bounded switch-port queues.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "core/check.hpp"

namespace ddpm::core {

template <typename T>
class RingBuffer {
 public:
  RingBuffer() = default;

  bool empty() const noexcept { return count_ == 0; }
  std::size_t size() const noexcept { return count_; }
  std::size_t capacity() const noexcept { return slots_.size(); }

  /// Pre-sizes the slab so pushes up to `n` outstanding elements never
  /// allocate. Call once at construction time (hot code must not grow).
  void reserve(std::size_t n) {
    if (n > slots_.size()) grow(n);
  }

  T& front() {
    DDPM_DCHECK(count_ > 0, "front() on empty ring");
    return slots_[head_];
  }
  const T& front() const {
    DDPM_DCHECK(count_ > 0, "front() on empty ring");
    return slots_[head_];
  }

  void push_back(T&& value) {
    if (count_ == slots_.size()) grow(count_ == 0 ? 4 : count_ * 2);
    std::size_t tail = head_ + count_;
    if (tail >= slots_.size()) tail -= slots_.size();
    slots_[tail] = std::move(value);
    ++count_;
  }

  void pop_front() {
    DDPM_DCHECK(count_ > 0, "pop_front() on empty ring");
    slots_[head_] = T{};  // release owned resources (e.g. shared_ptr)
    ++head_;
    if (head_ == slots_.size()) head_ = 0;
    --count_;
  }

  void clear() {
    while (count_ > 0) pop_front();
    head_ = 0;
  }

 private:
  void grow(std::size_t target) {
    std::vector<T> bigger;
    bigger.reserve(target);
    for (std::size_t i = 0; i < count_; ++i) {
      std::size_t idx = head_ + i;
      if (idx >= slots_.size()) idx -= slots_.size();
      bigger.push_back(std::move(slots_[idx]));
    }
    bigger.resize(target);
    slots_ = std::move(bigger);
    head_ = 0;
  }

  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace ddpm::core
