// Calendar-queue event wheel: O(1) schedule/pop for the regular cadences
// that dominate a link-clocked simulation, with a 4-ary-heap overflow for
// irregular timers.
//
// The 4-ary heap in event_queue.hpp pays O(log n) sifts on every schedule
// and pop even when — as in steady-state switch forwarding — almost every
// event lands within a few hundred ticks of the clock. The wheel exploits
// that locality: timestamps inside the near-future window
// [cursor, cursor + W) go to a per-timestamp bucket (append = schedule,
// indexed read = pop; both O(1)), and only timestamps beyond the window
// fall back to the heap. The window slides as the clock advances, so a
// periodic event with period < W never touches the heap at all.
//
// Semantics are EventQueue's, exactly — the differential stress test
// (tests/test_event_wheel.cpp) pins pop-order equality against it:
//   * FIFO among simultaneous events. Within a bucket, append order is
//     scheduling order. Across the bucket/heap split, every heap entry for
//     a time T was necessarily scheduled while T was still beyond the
//     window — strictly before any bucket entry for T existed (the window
//     only slides forward) — so popping heap-before-bucket on a time tie
//     replays global scheduling order.
//   * Ticket/generation EventIds and O(1) tombstone cancellation, with the
//     same compaction policy (sweep when the dead outnumber the living).
//   * The monotonic-clock contract (schedule at or after the last popped
//     time, checked fatal) — which is also what keeps the window math
//     sound: `when - cursor` never underflows.
//
// The wheel's next-event scan walks an occupancy bitmap (one bit per
// bucket, W/64 words, circularly from the cursor), so a sparse queue costs
// a handful of word tests per pop rather than a bucket-array sweep.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/check.hpp"
#include "core/hot_path.hpp"
#include "netsim/event_queue.hpp"
#include "netsim/inline_action.hpp"

namespace ddpm::netsim {

class EventWheel {
 public:
  using Action = InlineAction;

  /// Bucket count (= window width in ticks). Must be a power of two. The
  /// default covers the cluster model's forwarding cadence (per-hop delays
  /// of a few hundred ns) and every per-tick link clock with headroom.
  static constexpr std::size_t kDefaultWindow = 1024;

  explicit EventWheel(std::size_t window = kDefaultWindow);

  EventWheel(const EventWheel&) = delete;
  EventWheel& operator=(const EventWheel&) = delete;

  /// Schedules `action` at absolute time `when`. Contract: `when` must not
  /// precede the time of the most recently popped event (checked, fatal).
  EventId schedule(SimTime when, Action action);

  /// Cancels a pending event. Returns false if it already fired or was
  /// cancelled. O(1): tombstones the ticket; the bucket/heap entry is
  /// skipped when the scan reaches it.
  bool cancel(EventId id);

  bool empty() const noexcept { return live_ == 0; }
  std::size_t size() const noexcept { return live_; }

  /// Time of the earliest pending event. Precondition: !empty(). Prunes
  /// tombstones off bucket heads and the heap top, hence non-const.
  SimTime next_time();

  /// Time of the most recently popped event (0 before the first pop).
  SimTime last_popped_time() const noexcept { return cursor_; }

  /// Removes the earliest event and returns (time, action).
  /// Precondition: !empty().
  std::pair<SimTime, Action> pop();

  /// Discards all pending events and resets the clock watermark.
  /// Outstanding EventIds are invalidated, never recycled as-is.
  void clear();

  /// Pre-sizes the ticket pool and overflow heap for `n` simultaneous
  /// pending events.
  void reserve(std::size_t n);

  /// Cancelled events whose bucket/heap entries have not been swept yet.
  std::size_t tombstone_count() const noexcept { return tombstones_; }

  /// Window width in ticks (= bucket count).
  std::size_t window() const noexcept { return mask_ + 1; }

  /// Observability for tests and the crossover discussion in
  /// docs/PERFORMANCE.md: how many schedules took the O(1) bucket path vs
  /// the O(log n) overflow heap.
  std::uint64_t wheel_scheduled() const noexcept { return wheel_scheduled_; }
  std::uint64_t heap_scheduled() const noexcept { return heap_scheduled_; }

 private:
  /// Overflow-heap entry; identical shape to EventQueue's (the layout
  /// certification pins both).
  struct DDPM_HOT_STATE Entry {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t ticket;
  };
  DDPM_HOT_LAYOUT(Entry, 24, 8);

  struct Ticket {
    Action action;
    std::uint32_t generation = 0;
    bool live = false;
  };

  /// One near-future timestamp's events, in scheduling order. `head`
  /// advances on pop; storage is recycled (capacity retained) when the
  /// bucket drains, so steady-state cadences never allocate.
  struct Bucket {
    std::vector<std::uint32_t> tickets;
    std::uint32_t head = 0;
  };

  static constexpr std::size_t kArity = 4;
  static constexpr SimTime kNoTime = ~SimTime{0};

  static bool earlier(const Entry& a, const Entry& b) noexcept {
    return a.when < b.when || (a.when == b.when && a.seq < b.seq);
  }
  static EventId make_id(std::uint32_t ticket, std::uint32_t gen) noexcept {
    return (EventId(ticket) << 32) | gen;
  }

  std::uint32_t acquire_ticket();
  void release_ticket(std::uint32_t ticket) noexcept;

  /// Earliest live bucketed timestamp (pruning dead heads and draining
  /// dead-only buckets along the way), or kNoTime if the wheel is empty.
  SimTime wheel_next() noexcept;
  void reset_bucket(std::size_t b) noexcept;

  void prune_dead_top() noexcept;
  void remove_top() noexcept;
  void compact();
  void sift_up(std::size_t i) noexcept;
  void sift_down(std::size_t i) noexcept;

  std::size_t mask_;                  // window - 1
  std::vector<Bucket> buckets_;       // window buckets, one timestamp each
  std::vector<std::uint64_t> occ_;    // bit b: bucket b non-(drained)
  std::vector<Entry> heap_;           // beyond-window overflow
  std::vector<Ticket> tickets_;
  std::vector<std::uint32_t> free_tickets_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  std::size_t tombstones_ = 0;
  std::size_t pending_entries_ = 0;   // live + tombstoned, both stores
  SimTime cursor_ = 0;                // last popped time = window base
  std::uint64_t wheel_scheduled_ = 0;
  std::uint64_t heap_scheduled_ = 0;
};

}  // namespace ddpm::netsim
