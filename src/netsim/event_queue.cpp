#include "netsim/event_queue.hpp"

#include <algorithm>

namespace ddpm::netsim {

DDPM_HOT EventId EventQueue::schedule(SimTime when, Action action) {
  DDPM_CHECK(when >= last_popped_, "event scheduled in the simulated past");
  const std::uint32_t ticket = acquire_ticket();
  Ticket& slot = tickets_[ticket];
  slot.action = std::move(action);
  slot.live = true;
  heap_.push_back(Entry{when, next_seq_++, ticket});
  sift_up(heap_.size() - 1);
  ++live_;
  return make_id(ticket, slot.generation);
}

bool EventQueue::cancel(EventId id) {
  const auto ticket = std::uint32_t(id >> 32);
  const auto generation = std::uint32_t(id);
  if (ticket >= tickets_.size()) return false;
  Ticket& slot = tickets_[ticket];
  if (!slot.live || slot.generation != generation) return false;
  // Tombstone: the heap entry stays where it is and is skipped when it
  // surfaces. The action is destroyed now so cancelled captures do not
  // outlive their cancellation.
  slot.live = false;
  slot.action.reset();
  --live_;
  ++tombstones_;
  // Sweep when the dead outnumber the living, so a cancel-heavy workload
  // (e.g. timers that almost never fire) stays O(live) in memory.
  if (tombstones_ > 64 && tombstones_ * 2 > heap_.size()) compact();
  return true;
}

DDPM_HOT std::pair<SimTime, EventQueue::Action> EventQueue::pop() {
  DDPM_CHECK(live_ != 0, "pop on empty queue");
  prune_dead_top();
  const Entry top = heap_.front();
  Ticket& slot = tickets_[top.ticket];
  DDPM_DCHECK(slot.live, "tombstoned event surfaced as live");
  DDPM_DCHECK(top.when >= last_popped_, "event time went backwards");
  last_popped_ = top.when;
  Action action = std::move(slot.action);
  release_ticket(top.ticket);
  remove_top();
  --live_;
  return {top.when, std::move(action)};
}

void EventQueue::clear() {
  // Release every entry's ticket (live or tombstoned) so generations
  // advance and stale EventIds stay dead, then drop the heap wholesale.
  for (const Entry& e : heap_) release_ticket(e.ticket);
  heap_.clear();
  live_ = 0;
  tombstones_ = 0;
  last_popped_ = 0;  // a cleared queue may be reused from time zero
}

void EventQueue::reserve(std::size_t n) {
  heap_.reserve(n);
  tickets_.reserve(n);
  free_tickets_.reserve(n);
}

std::uint32_t EventQueue::acquire_ticket() {
  if (!free_tickets_.empty()) {
    const std::uint32_t ticket = free_tickets_.back();
    free_tickets_.pop_back();
    return ticket;
  }
  DDPM_CHECK(tickets_.size() < (std::size_t(1) << 32),
             "event ticket space exhausted");
  tickets_.emplace_back();
  return std::uint32_t(tickets_.size() - 1);
}

void EventQueue::release_ticket(std::uint32_t ticket) noexcept {
  Ticket& slot = tickets_[ticket];
  slot.live = false;
  slot.action.reset();
  ++slot.generation;  // invalidates every outstanding id for this slot
  free_tickets_.push_back(ticket);
}

void EventQueue::prune_dead_top() noexcept {
  while (!heap_.empty() && !tickets_[heap_.front().ticket].live) {
    release_ticket(heap_.front().ticket);
    remove_top();
    --tombstones_;
  }
}

void EventQueue::remove_top() noexcept {
  const std::size_t last = heap_.size() - 1;
  if (last > 0) {
    heap_.front() = heap_[last];
    heap_.pop_back();
    sift_down(0);
  } else {
    heap_.pop_back();
  }
}

void EventQueue::compact() {
  // Drop every tombstoned entry, then heapify what remains. Sequence
  // numbers survive the rebuild, so (time, seq) FIFO order is unchanged.
  std::size_t out = 0;
  for (const Entry& e : heap_) {
    if (tickets_[e.ticket].live) {
      heap_[out++] = e;
    } else {
      release_ticket(e.ticket);
    }
  }
  heap_.resize(out);
  tombstones_ = 0;
  if (out > 1) {
    for (std::size_t i = (out - 2) / kArity + 1; i-- > 0;) sift_down(i);
  }
}

void EventQueue::sift_up(std::size_t i) noexcept {
  const Entry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!earlier(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventQueue::sift_down(std::size_t i) noexcept {
  const std::size_t n = heap_.size();
  const Entry e = heap_[i];
  for (;;) {
    const std::size_t first = i * kArity + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t fence = std::min(first + kArity, n);
    for (std::size_t c = first + 1; c < fence; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], e)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

}  // namespace ddpm::netsim
