#include "netsim/event_queue.hpp"

#include <utility>

namespace ddpm::netsim {

EventId EventQueue::schedule(SimTime when, Action action) {
  DDPM_CHECK(when >= last_popped_, "event scheduled in the simulated past");
  const EventId id = next_id_++;
  Entry e{when, next_seq_++, id, std::move(action)};
  heap_.push_back(std::move(e));
  index_[id] = heap_.size() - 1;
  sift_up(heap_.size() - 1);
  return id;
}

bool EventQueue::cancel(EventId id) {
  auto it = index_.find(id);
  if (it == index_.end()) return false;
  const std::size_t slot = it->second;
  index_.erase(it);
  const std::size_t last = heap_.size() - 1;
  if (slot != last) {
    Entry moved = std::move(heap_[last]);
    heap_.pop_back();
    const bool goes_up = earlier(moved, heap_[slot]);
    place(slot, std::move(moved));
    if (goes_up) {
      sift_up(slot);
    } else {
      sift_down(slot);
    }
  } else {
    heap_.pop_back();
  }
  return true;
}

std::pair<SimTime, EventQueue::Action> EventQueue::pop() {
  DDPM_CHECK(!heap_.empty(), "pop on empty queue");
  Entry top = std::move(heap_.front());
  DDPM_DCHECK(top.when >= last_popped_, "event time went backwards");
  last_popped_ = top.when;
  index_.erase(top.id);
  const std::size_t last = heap_.size() - 1;
  if (last > 0) {
    Entry moved = std::move(heap_[last]);
    heap_.pop_back();
    place(0, std::move(moved));
    sift_down(0);
  } else {
    heap_.pop_back();
  }
  return {top.when, std::move(top.action)};
}

void EventQueue::clear() {
  heap_.clear();
  index_.clear();
  last_popped_ = 0;  // a cleared queue may be reused from time zero
}

void EventQueue::place(std::size_t i, Entry&& e) {
  index_[e.id] = i;
  heap_[i] = std::move(e);
}

void EventQueue::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!earlier(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    index_[heap_[i].id] = i;
    index_[heap_[parent].id] = parent;
    i = parent;
  }
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t smallest = i;
    const std::size_t left = 2 * i + 1;
    const std::size_t right = 2 * i + 2;
    if (left < n && earlier(heap_[left], heap_[smallest])) smallest = left;
    if (right < n && earlier(heap_[right], heap_[smallest])) smallest = right;
    if (smallest == i) break;
    std::swap(heap_[i], heap_[smallest]);
    index_[heap_[i].id] = i;
    index_[heap_[smallest].id] = smallest;
    i = smallest;
  }
}

}  // namespace ddpm::netsim
