// Simulation kernel: owns the clock and the event queue, and drives the
// model by firing events in timestamp order.
//
// The queue is the calendar-wheel variant (netsim/event_wheel.hpp): the
// cluster Switch's forwarding events and the wormhole link clock
// (wormhole/wheel_runner.hpp) are regular short-horizon cadences, which
// the wheel schedules and pops in O(1); irregular timers (attack onsets,
// long backoffs) overflow to its embedded 4-ary heap. Semantics are
// identical to EventQueue — the differential stress test pins that — so
// swapping the member type is invisible to models.
#pragma once

#include <cstdint>
#include <limits>

#include "netsim/event_wheel.hpp"
#include "telemetry/probes.hpp"

namespace ddpm::netsim {

class Simulator {
 public:
  /// Current simulation time. Monotonically non-decreasing.
  SimTime now() const noexcept { return now_; }

  /// Schedules `action` to fire `delay` ticks from now.
  EventId schedule_in(SimTime delay, EventWheel::Action action) {
    return queue_.schedule(now_ + delay, std::move(action));
  }

  /// Schedules `action` at absolute time `when`. `when` must not be in the
  /// past; a past timestamp is clamped to `now()` so the event still fires
  /// (in scheduling order) rather than corrupting the clock. Each clamp is
  /// counted (see clamped_events()): a model that relies on the clamp is
  /// usually mis-computing timestamps, and the counter makes that visible.
  EventId schedule_at(SimTime when, EventWheel::Action action) {
    if (when < now_) {
      ++clamped_;
      probes_.on_clamp();
      when = now_;
    }
    return queue_.schedule(when, std::move(action));
  }

  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs until the queue drains or the clock passes `until`, whichever
  /// comes first. Events stamped exactly `until` still fire. Returns the
  /// number of events executed.
  std::uint64_t run(SimTime until = std::numeric_limits<SimTime>::max());

  /// Executes at most one pending event. Returns false if none was pending.
  bool step();

  /// Number of events executed since construction.
  std::uint64_t events_executed() const noexcept { return executed_; }

  /// Number of schedule_at() calls whose timestamp was in the past and got
  /// clamped to now(). Zero in a healthy model; see schedule_at().
  std::uint64_t clamped_events() const noexcept { return clamped_; }

  bool pending() const noexcept { return !queue_.empty(); }
  std::size_t pending_count() const noexcept { return queue_.size(); }

  /// Pre-sizes the event queue for `n` simultaneous pending events
  /// (grow-once for steady-state workloads).
  void reserve(std::size_t n) { queue_.reserve(n); }

  /// Drops all pending events; the clock is left where it is.
  void clear_pending() { queue_.clear(); }

  /// Attaches an event tracer: the kernel samples heap depth and executed-
  /// event counter tracks into it and binds it to this clock, so RAII spans
  /// recorded anywhere in the model are stamped with simulation time.
  /// Compiled out entirely with DDPM_TELEMETRY=OFF.
  void attach_tracer(telemetry::Tracer* tracer) {
    probes_.attach(tracer);
    if (tracer != nullptr) tracer->set_clock(&now_);
  }
  telemetry::Tracer* tracer() const noexcept { return probes_.tracer(); }

 private:
  EventWheel queue_;
  SimTime now_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t clamped_ = 0;
  telemetry::KernelProbes probes_;
};

}  // namespace ddpm::netsim
