#include "netsim/simulator.hpp"

namespace ddpm::netsim {

std::uint64_t Simulator::run(SimTime until) {
  std::uint64_t count = 0;
  while (!queue_.empty() && queue_.next_time() <= until) {
    auto [when, action] = queue_.pop();
    now_ = when;
    action();
    ++executed_;
    ++count;
    probes_.on_pop(executed_, queue_.size());
  }
  if (queue_.empty() || queue_.next_time() > until) {
    // Advance the clock to the horizon so back-to-back run() calls with
    // increasing horizons behave like one continuous run.
    if (until != std::numeric_limits<SimTime>::max() && until > now_) {
      now_ = until;
    }
  }
  return count;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto [when, action] = queue_.pop();
  now_ = when;
  action();
  ++executed_;
  probes_.on_pop(executed_, queue_.size());
  return true;
}

}  // namespace ddpm::netsim
