// P² (piecewise-parabolic) streaming quantile estimator — Jain & Chlamtac
// (1985). Tracks a single quantile with five markers and O(1) memory,
// which lets Metrics report tail latencies (p99) over millions of packets
// without storing samples.
#pragma once

#include <array>
#include <cstdint>

namespace ddpm::netsim {

class P2Quantile {
 public:
  /// Tracks the `p` quantile, p in (0, 1).
  explicit P2Quantile(double p) noexcept : p_(p) {}

  void add(double x) noexcept;

  /// Current estimate; exact while fewer than five samples were seen.
  double value() const noexcept;

  std::uint64_t count() const noexcept { return count_; }

 private:
  double parabolic(int i, int d) const noexcept;
  double linear(int i, int d) const noexcept;

  double p_;
  std::uint64_t count_ = 0;
  std::array<double, 5> heights_{};    // marker heights (q_i)
  std::array<double, 5> positions_{};  // actual marker positions (n_i)
  std::array<double, 5> desired_{};    // desired positions (n'_i)
  std::array<double, 5> increments_{}; // dn'_i per observation
};

}  // namespace ddpm::netsim
