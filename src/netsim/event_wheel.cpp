#include "netsim/event_wheel.hpp"

namespace ddpm::netsim {

namespace {

constexpr bool is_pow2(std::size_t v) noexcept {
  return v != 0 && (v & (v - 1)) == 0;
}

}  // namespace

EventWheel::EventWheel(std::size_t window) : mask_(window - 1) {
  // >= 64 keeps the occupancy bitmap's word count a power of two, so the
  // circular scan wraps with a mask instead of a modulo.
  DDPM_CHECK(is_pow2(window) && window >= 64,
             "event wheel window must be a power of two >= 64");
  buckets_.resize(window);
  occ_.assign(window / 64, 0);
}

DDPM_HOT EventId EventWheel::schedule(SimTime when, Action action) {
  DDPM_CHECK(when >= cursor_, "event scheduled in the simulated past");
  const std::uint32_t ticket = acquire_ticket();
  Ticket& slot = tickets_[ticket];
  slot.action = std::move(action);
  slot.live = true;
  if (when - cursor_ <= mask_) {
    // Near future: O(1) append to the timestamp's bucket. No sequence
    // number is materialized — append order IS scheduling order, and heap
    // entries for the same instant always predate bucket ones (see the
    // ordering argument in the header).
    const std::size_t b = std::size_t(when) & mask_;
    // Bucket capacity is retained across drains (reset_bucket clears, never
    // shrinks), so this push grows only through warm-up — the same
    // amortized story as the heap's backing vector.
    buckets_[b].tickets.push_back(ticket);  // ddpm-analyze: allow(hot-no-alloc)
    occ_[b >> 6] |= std::uint64_t{1} << (b & 63);
    ++wheel_scheduled_;
  } else {
    heap_.push_back(Entry{when, next_seq_++, ticket});
    sift_up(heap_.size() - 1);
    ++heap_scheduled_;
  }
  ++live_;
  ++pending_entries_;
  return make_id(ticket, slot.generation);
}

bool EventWheel::cancel(EventId id) {
  const auto ticket = std::uint32_t(id >> 32);
  const auto generation = std::uint32_t(id);
  if (ticket >= tickets_.size()) return false;
  Ticket& slot = tickets_[ticket];
  if (!slot.live || slot.generation != generation) return false;
  slot.live = false;
  slot.action.reset();
  --live_;
  ++tombstones_;
  // Same sweep policy as EventQueue: compact when the dead outnumber the
  // living, so cancel-heavy timer workloads stay O(live) in memory.
  if (tombstones_ > 64 && tombstones_ * 2 > pending_entries_) compact();
  return true;
}

DDPM_HOT SimTime EventWheel::wheel_next() noexcept {
  const std::size_t words = occ_.size();
  const std::size_t b0 = std::size_t(cursor_) & mask_;
  const std::size_t w0 = b0 >> 6;
  const unsigned off = unsigned(b0 & 63);
  // Circular bitmap scan from the cursor's bucket: whole words in wrap
  // order, with the cursor word split so its below-cursor bits (times near
  // cursor + W) are visited last. Bit order within this traversal is
  // ascending time order.
  std::uint64_t w = occ_[w0] & (~std::uint64_t{0} << off);
  for (std::size_t i = 0;;) {
    while (w != 0) {
      const std::size_t wi = (w0 + i) & (words - 1);
      const std::size_t b = wi * 64 + std::size_t(__builtin_ctzll(w));
      Bucket& bk = buckets_[b];
      while (bk.head < bk.tickets.size() &&
             !tickets_[bk.tickets[bk.head]].live) {
        release_ticket(bk.tickets[bk.head]);
        ++bk.head;
        --tombstones_;
        --pending_entries_;
      }
      if (bk.head == bk.tickets.size()) {
        reset_bucket(b);  // dead-only bucket: drain and keep scanning
        w &= w - 1;
        continue;
      }
      return cursor_ + SimTime((b - b0) & mask_);
    }
    ++i;
    if (i > words) return kNoTime;
    w = (i == words) ? occ_[w0] & ~(~std::uint64_t{0} << off)
                     : occ_[(w0 + i) & (words - 1)];
  }
}

void EventWheel::reset_bucket(std::size_t b) noexcept {
  Bucket& bk = buckets_[b];
  bk.tickets.clear();  // capacity retained: steady cadences never allocate
  bk.head = 0;
  occ_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
}

SimTime EventWheel::next_time() {
  DDPM_DCHECK(live_ != 0, "next_time on empty wheel");
  const SimTime tw = wheel_next();
  prune_dead_top();
  if (heap_.empty()) return tw;
  const SimTime th = heap_.front().when;
  return tw < th ? tw : th;  // kNoTime is the max SimTime
}

DDPM_HOT std::pair<SimTime, EventWheel::Action> EventWheel::pop() {
  DDPM_CHECK(live_ != 0, "pop on empty wheel");
  const SimTime tw = wheel_next();
  prune_dead_top();
  // Heap wins ties: its entries for an instant were scheduled while that
  // instant was still out of window, i.e. before any bucket entry for it.
  if (!heap_.empty() && heap_.front().when <= tw) {
    const Entry top = heap_.front();
    DDPM_DCHECK(top.when >= cursor_, "event time went backwards");
    cursor_ = top.when;
    Action action = std::move(tickets_[top.ticket].action);
    release_ticket(top.ticket);
    remove_top();
    --live_;
    --pending_entries_;
    return {top.when, std::move(action)};
  }
  Bucket& bk = buckets_[std::size_t(tw) & mask_];
  const std::uint32_t ticket = bk.tickets[bk.head];
  ++bk.head;
  cursor_ = tw;  // slides the window forward
  Action action = std::move(tickets_[ticket].action);
  release_ticket(ticket);
  if (bk.head == bk.tickets.size()) reset_bucket(std::size_t(tw) & mask_);
  --live_;
  --pending_entries_;
  return {tw, std::move(action)};
}

void EventWheel::clear() {
  for (const Entry& e : heap_) release_ticket(e.ticket);
  heap_.clear();
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    Bucket& bk = buckets_[b];
    for (std::size_t i = bk.head; i < bk.tickets.size(); ++i) {
      release_ticket(bk.tickets[i]);
    }
    bk.tickets.clear();
    bk.head = 0;
  }
  for (std::uint64_t& w : occ_) w = 0;
  live_ = 0;
  tombstones_ = 0;
  pending_entries_ = 0;
  cursor_ = 0;  // a cleared wheel may be reused from time zero
}

void EventWheel::reserve(std::size_t n) {
  heap_.reserve(n);
  tickets_.reserve(n);
  free_tickets_.reserve(n);
}

std::uint32_t EventWheel::acquire_ticket() {
  if (!free_tickets_.empty()) {
    const std::uint32_t ticket = free_tickets_.back();
    free_tickets_.pop_back();
    return ticket;
  }
  DDPM_CHECK(tickets_.size() < (std::size_t(1) << 32),
             "event ticket space exhausted");
  tickets_.emplace_back();
  return std::uint32_t(tickets_.size() - 1);
}

void EventWheel::release_ticket(std::uint32_t ticket) noexcept {
  Ticket& slot = tickets_[ticket];
  slot.live = false;
  slot.action.reset();
  ++slot.generation;  // invalidates every outstanding id for this slot
  free_tickets_.push_back(ticket);
}

void EventWheel::prune_dead_top() noexcept {
  while (!heap_.empty() && !tickets_[heap_.front().ticket].live) {
    release_ticket(heap_.front().ticket);
    remove_top();
    --tombstones_;
    --pending_entries_;
  }
}

void EventWheel::remove_top() noexcept {
  const std::size_t last = heap_.size() - 1;
  if (last > 0) {
    heap_.front() = heap_[last];
    heap_.pop_back();
    sift_down(0);
  } else {
    heap_.pop_back();
  }
}

void EventWheel::compact() {
  // Heap: drop tombstones, re-heapify (seq survives, FIFO unchanged).
  std::size_t out = 0;
  for (const Entry& e : heap_) {
    if (tickets_[e.ticket].live) {
      heap_[out++] = e;
    } else {
      release_ticket(e.ticket);
    }
  }
  heap_.resize(out);
  if (out > 1) {
    for (std::size_t i = (out - 2) / kArity + 1; i-- > 0;) sift_down(i);
  }
  std::size_t entries = out;
  // Buckets: filter each one's unpopped span in place (append order — and
  // with it FIFO — is preserved).
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    Bucket& bk = buckets_[b];
    if (bk.tickets.empty()) continue;
    std::size_t keep = 0;
    for (std::size_t i = bk.head; i < bk.tickets.size(); ++i) {
      const std::uint32_t t = bk.tickets[i];
      if (tickets_[t].live) {
        bk.tickets[keep++] = t;
      } else {
        release_ticket(t);
      }
    }
    bk.tickets.resize(keep);
    bk.head = 0;
    if (keep == 0) {
      reset_bucket(b);
    } else {
      entries += keep;
    }
  }
  tombstones_ = 0;
  pending_entries_ = entries;
}

void EventWheel::sift_up(std::size_t i) noexcept {
  const Entry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!earlier(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventWheel::sift_down(std::size_t i) noexcept {
  const std::size_t n = heap_.size();
  const Entry e = heap_[i];
  for (;;) {
    const std::size_t first = i * kArity + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t fence = first + kArity < n ? first + kArity : n;
    for (std::size_t c = first + 1; c < fence; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], e)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

}  // namespace ddpm::netsim
