// Streaming statistics used throughout the simulator: running moments
// (Welford), fixed-bin histograms, EWMA rate estimation, and Shannon
// entropy over categorical counts.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace ddpm::netsim {

/// Numerically stable running mean/variance/min/max (Welford's algorithm).
class RunningStat {
 public:
  void add(double x) noexcept;

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const noexcept { return n_ > 1 ? m2_ / double(n_ - 1) : 0.0; }
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

  /// Merges another accumulator into this one (parallel-friendly).
  void merge(const RunningStat& other) noexcept;

  void reset() noexcept { *this = RunningStat{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width-bin histogram over [lo, hi); out-of-range samples land in
/// saturating underflow/overflow bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  std::uint64_t total() const noexcept { return total_; }
  std::size_t bin_count() const noexcept { return counts_.size(); }
  std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }
  double bin_low(std::size_t i) const noexcept { return lo_ + double(i) * width_; }

  /// Approximate quantile (q in [0,1]) by linear interpolation inside the
  /// bin that crosses the target rank. Returns lo/hi bounds at the extremes.
  double quantile(double q) const noexcept;

  std::string to_string(std::size_t max_rows = 20) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Exponentially weighted moving average of an event rate. Feed it event
/// timestamps; it reports a smoothed events-per-tick rate. Used by the
/// victim-side DDoS detector.
class EwmaRate {
 public:
  /// `half_life` is the time constant in ticks over which past traffic
  /// loses half its weight.
  explicit EwmaRate(double half_life) noexcept;

  /// Records `weight` events at time `now` (ticks).
  void observe(std::uint64_t now, double weight = 1.0) noexcept;

  /// Smoothed rate (events per tick) as of time `now`.
  double rate(std::uint64_t now) const noexcept;

 private:
  double decay_per_tick_;  // ln(2)/half_life
  double value_ = 0.0;     // rate estimate at last_
  std::uint64_t last_ = 0;
  bool seen_ = false;
};

/// Shannon entropy (bits) of a categorical distribution given by counts.
double shannon_entropy(const std::unordered_map<std::uint32_t, std::uint64_t>& counts);

}  // namespace ddpm::netsim
