#include "netsim/quantile.hpp"

#include <algorithm>
#include <cmath>

namespace ddpm::netsim {

void P2Quantile::add(double x) noexcept {
  if (count_ < 5) {
    heights_[count_] = x;
    ++count_;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
      for (int i = 0; i < 5; ++i) positions_[i] = i + 1;
      desired_ = {1, 1 + 2 * p_, 1 + 4 * p_, 3 + 2 * p_, 5};
      increments_ = {0, p_ / 2, p_, (1 + p_) / 2, 1};
    }
    return;
  }

  // Locate the cell k containing x and update the extreme markers.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = std::max(heights_[4], x);
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }

  for (int i = k + 1; i < 5; ++i) positions_[i] += 1;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];
  ++count_;

  // Adjust the three interior markers toward their desired positions.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    if ((d >= 1 && positions_[i + 1] - positions_[i] > 1) ||
        (d <= -1 && positions_[i - 1] - positions_[i] < -1)) {
      const int dir = d >= 0 ? 1 : -1;
      const double candidate = parabolic(i, dir);
      if (heights_[i - 1] < candidate && candidate < heights_[i + 1]) {
        heights_[i] = candidate;
      } else {
        heights_[i] = linear(i, dir);
      }
      positions_[i] += dir;
    }
  }
}

double P2Quantile::parabolic(int i, int d) const noexcept {
  const double np = positions_[i + 1];
  const double nm = positions_[i - 1];
  const double n = positions_[i];
  // P-squared parabolic interpolation: all three divides are
  // floating-point by marker-position deltas, not integer divides.
  const double dh_up = heights_[i + 1] - heights_[i];
  const double dh_dn = heights_[i] - heights_[i - 1];
  return heights_[i] +
         double(d) / (np - nm) *  // ddpm-analyze: allow(hot-no-div)
             ((n - nm + d) * dh_up / (np - n) +  // ddpm-analyze: allow(hot-no-div)
              (np - n - d) * dh_dn / (n - nm));  // ddpm-analyze: allow(hot-no-div)
}

double P2Quantile::linear(int i, int d) const noexcept {
  return heights_[i] + double(d) * (heights_[i + d] - heights_[i]) /
                           (positions_[i + d] - positions_[i]);
}

double P2Quantile::value() const noexcept {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact small-sample quantile (nearest rank on the sorted prefix).
    std::array<double, 5> sorted = heights_;
    std::sort(sorted.begin(), sorted.begin() + long(count_));
    const auto rank = std::min<std::uint64_t>(
        count_ - 1, std::uint64_t(p_ * double(count_)));
    return sorted[rank];
  }
  return heights_[2];
}

}  // namespace ddpm::netsim
