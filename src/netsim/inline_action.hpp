// Allocation-free type-erased callable for the event queue's hot path.
//
// std::function heap-allocates any capture larger than its tiny internal
// buffer (16 bytes on libstdc++), which put one malloc/free pair on every
// scheduled event. InlineAction stores the callable in a fixed 48-byte
// inline buffer — large enough for every scheduling site in the simulator
// (`this` plus a few scalars) — and *refuses to compile* anything bigger,
// so an accidental fat capture is a build error at the offending call
// site, not a silent allocation. Callables only need to be movable, so
// move-only captures (unique_ptr, Rng by value) work where std::function
// would reject them.
//
// The contract the event queue relies on:
//   * construction, move, destruction never allocate and never throw;
//   * a moved-from InlineAction is empty (operator bool == false);
//   * invoking an empty action is a DCHECK failure, not UB.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "core/check.hpp"

namespace ddpm::netsim {

class InlineAction {
 public:
  /// Inline capture budget. 48 bytes = `this` + five 64-bit scalars, with
  /// headroom; chosen so Entry+ops pointer stays within one cache line.
  static constexpr std::size_t kInlineSize = 48;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  /// True when F can be stored inline (and therefore scheduled at all).
  /// Exposed so call sites and tests can static_assert their captures fit.
  template <typename F>
  static constexpr bool fits_inline =
      sizeof(std::decay_t<F>) <= kInlineSize &&
      alignof(std::decay_t<F>) <= kInlineAlign &&
      std::is_nothrow_move_constructible_v<std::decay_t<F>>;

  constexpr InlineAction() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineAction>>>
  InlineAction(F&& f) noexcept(  // NOLINT(google-explicit-constructor)
      std::is_nothrow_constructible_v<std::decay_t<F>, F&&>) {
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, Fn&>,
                  "InlineAction requires a nullary void() callable");
    static_assert(sizeof(Fn) <= kInlineSize,
                  "capture exceeds InlineAction's 48-byte inline buffer; "
                  "park bulky state (e.g. a Packet) in the owning object "
                  "and capture a handle to it instead");
    static_assert(alignof(Fn) <= kInlineAlign,
                  "capture alignment exceeds InlineAction's buffer");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "InlineAction callables must be nothrow-movable");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    ops_ = &kOpsFor<Fn>;
  }

  InlineAction(InlineAction&& other) noexcept { take(other); }

  InlineAction& operator=(InlineAction&& other) noexcept {
    if (this != &other) {
      reset();
      take(other);
    }
    return *this;
  }

  InlineAction(const InlineAction&) = delete;
  InlineAction& operator=(const InlineAction&) = delete;

  ~InlineAction() { reset(); }

  /// Destroys the held callable (no-op when empty).
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() {
    DDPM_DCHECK(ops_ != nullptr, "invoking an empty InlineAction");
    ops_->invoke(storage_);
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src) noexcept;  // move-construct, then
                                                      // destroy the source
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  static Fn* as(void* p) noexcept {
    return std::launder(reinterpret_cast<Fn*>(p));
  }

  template <typename Fn>
  static void do_invoke(void* p) {
    (*as<Fn>(p))();
  }
  template <typename Fn>
  static void do_relocate(void* dst, void* src) noexcept {
    Fn* s = as<Fn>(src);
    ::new (dst) Fn(std::move(*s));
    s->~Fn();
  }
  template <typename Fn>
  static void do_destroy(void* p) noexcept {
    as<Fn>(p)->~Fn();
  }

  template <typename Fn>
  static constexpr Ops kOpsFor{&do_invoke<Fn>, &do_relocate<Fn>,
                               &do_destroy<Fn>};

  void take(InlineAction& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(storage_, other.storage_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  alignas(kInlineAlign) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace ddpm::netsim
