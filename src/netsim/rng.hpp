// Deterministic pseudo-random number generation for simulations.
//
// Every stochastic component in the library takes an explicit seed so that
// experiments are reproducible run-to-run and machine-to-machine. We use
// xoshiro256** (Blackman & Vigna) seeded through SplitMix64, which is the
// recommended seeding procedure for the xoshiro family. The generator
// satisfies the C++ UniformRandomBitGenerator concept, so it can also be
// plugged into <random> distributions, but the convenience members below
// avoid libstdc++'s distribution objects on hot paths.
#pragma once

#include <cstdint>
#include <limits>

namespace ddpm::netsim {

/// SplitMix64: a tiny, fast 64-bit generator used here to expand a single
/// 64-bit seed into the 256-bit state xoshiro256** requires.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit PRNG with 2^256-1 period.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator whose full 256-bit state is derived from `seed`.
  explicit constexpr Rng(std::uint64_t seed = 0x9d2c5680c0ffee42ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept { return next_u64(); }

  constexpr std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be nonzero. Uses Lemire's
  /// multiply-shift rejection method to avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    // 128-bit multiply: high word is an unbiased sample after rejection.
    auto mul = [](std::uint64_t a, std::uint64_t b) {
      return static_cast<unsigned __int128>(a) * b;
    };
    std::uint64_t x = next_u64();
    unsigned __int128 m = mul(x, bound);
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      // Lemire rejection threshold: this modulo runs only on the rare
      // reject branch (probability < bound / 2^64), never steady-state.
      const std::uint64_t threshold = -bound % bound;  // ddpm-analyze: allow(hot-no-div)
      while (lo < threshold) {
        x = next_u64();
        m = mul(x, bound);
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    // 53 high-quality mantissa bits.
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability `p`.
  bool next_bool(double p) noexcept { return next_double() < p; }

  /// Exponentially distributed value with the given rate (mean 1/rate).
  double next_exponential(double rate) noexcept;

  /// Standard normal via Marsaglia polar method.
  double next_normal() noexcept;

  /// Advances the state by 2^128 steps of next_u64() in O(1) work — the
  /// canonical xoshiro256** jump polynomial. Two generators started from
  /// the same seed and separated by jump() calls produce provably
  /// non-overlapping subsequences for up to 2^128 draws each.
  void jump() noexcept;

  /// Advances the state by 2^192 steps. Partitions the period into 2^64
  /// blocks of 2^192 draws; each block in turn holds 2^64 jump()-spaced
  /// substreams, giving a two-level seed -> replication -> entity stream
  /// hierarchy with no overlap anywhere.
  void long_jump() noexcept;

  /// Returns a generator positioned at the current state and advances this
  /// generator by jump(). Successive calls hand out disjoint 2^128-draw
  /// streams — the per-entity stream allocator used by the cluster model.
  Rng jump_stream() noexcept {
    Rng child = *this;
    jump();
    return child;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  /// Applies a jump polynomial (xoshiro's characteristic-polynomial trick):
  /// accumulates the states reached at the polynomial's set bits.
  void apply_jump_poly(const std::uint64_t (&poly)[4]) noexcept;

  std::uint64_t state_[4]{};
};

}  // namespace ddpm::netsim
