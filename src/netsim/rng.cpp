#include "netsim/rng.hpp"

#include <cmath>

namespace ddpm::netsim {

double Rng::next_exponential(double rate) noexcept {
  // Inverse-CDF sampling; clamp away from 0 so log() stays finite.
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / rate;
}

void Rng::apply_jump_poly(const std::uint64_t (&poly)[4]) noexcept {
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (const std::uint64_t word : poly) {
    for (int bit = 0; bit < 64; ++bit) {
      if ((word & (1ULL << bit)) != 0) {
        s0 ^= state_[0];
        s1 ^= state_[1];
        s2 ^= state_[2];
        s3 ^= state_[3];
      }
      next_u64();
    }
  }
  state_[0] = s0;
  state_[1] = s1;
  state_[2] = s2;
  state_[3] = s3;
}

void Rng::jump() noexcept {
  // Blackman & Vigna's published xoshiro256** 2^128 jump polynomial.
  static constexpr std::uint64_t kJump[4] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  apply_jump_poly(kJump);
}

void Rng::long_jump() noexcept {
  // Blackman & Vigna's published xoshiro256** 2^192 long-jump polynomial.
  static constexpr std::uint64_t kLongJump[4] = {
      0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL, 0x77710069854ee241ULL,
      0x39109bb02acbe635ULL};
  apply_jump_poly(kLongJump);
}

double Rng::next_normal() noexcept {
  // Marsaglia polar method: rejection-sample a point in the unit disc.
  for (;;) {
    const double u = 2.0 * next_double() - 1.0;
    const double v = 2.0 * next_double() - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

}  // namespace ddpm::netsim
