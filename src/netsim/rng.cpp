#include "netsim/rng.hpp"

#include <cmath>

namespace ddpm::netsim {

double Rng::next_exponential(double rate) noexcept {
  // Inverse-CDF sampling; clamp away from 0 so log() stays finite.
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / rate;
}

double Rng::next_normal() noexcept {
  // Marsaglia polar method: rejection-sample a point in the unit disc.
  for (;;) {
    const double u = 2.0 * next_double() - 1.0;
    const double v = 2.0 * next_double() - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

}  // namespace ddpm::netsim
