// Discrete-event priority queue with stable FIFO ordering among
// simultaneous events and O(log n) cancellation.
//
// The queue is a binary min-heap ordered by (time, sequence). The sequence
// number is assigned at scheduling time, which guarantees that two events
// scheduled for the same instant fire in scheduling order — essential for
// deterministic simulations. Cancellation is supported through opaque
// handles backed by an index map maintained during sift operations.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "core/check.hpp"

namespace ddpm::netsim {

/// Simulation time in abstract ticks. One tick is whatever the model says it
/// is; the cluster model uses nanoseconds.
using SimTime = std::uint64_t;

/// Identifies a scheduled event for cancellation. Ids are never reused.
using EventId = std::uint64_t;

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` to fire at absolute time `when`. Contract: `when`
  /// must not precede the time of the most recently popped event — the
  /// simulation clock never runs backwards (checked, fatal).
  EventId schedule(SimTime when, Action action);

  /// Cancels a pending event. Returns false if the event already fired or
  /// was cancelled. O(log n).
  bool cancel(EventId id);

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  /// Time of the earliest pending event. Precondition: !empty().
  SimTime next_time() const noexcept {
    DDPM_DCHECK(!heap_.empty(), "next_time on empty queue");
    return heap_.front().when;
  }

  /// Time of the most recently popped event (0 before the first pop) — the
  /// current simulation instant from the queue's perspective.
  SimTime last_popped_time() const noexcept { return last_popped_; }

  /// Removes the earliest event and returns (time, action). Precondition:
  /// !empty(). The action is moved out; run it after popping so that the
  /// action may itself schedule or cancel events.
  std::pair<SimTime, Action> pop();

  /// Discards all pending events and resets the monotonicity watermark, so
  /// a cleared queue may be reused from time zero.
  void clear();

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    EventId id;
    Action action;
  };

  static bool earlier(const Entry& a, const Entry& b) noexcept {
    return a.when < b.when || (a.when == b.when && a.seq < b.seq);
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void place(std::size_t i, Entry&& e);

  std::vector<Entry> heap_;
  std::unordered_map<EventId, std::size_t> index_;  // id -> heap slot
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  SimTime last_popped_ = 0;
};

}  // namespace ddpm::netsim
