// Discrete-event priority queue with stable FIFO ordering among
// simultaneous events and O(1) cancellation.
//
// Hot-path design (see docs/PERFORMANCE.md for rationale and numbers):
//   * Actions are InlineAction (48-byte small-buffer callables) parked in
//     stable "ticket" slots; nothing on the schedule/pop path allocates
//     once the backing vectors reach steady-state size.
//   * The heap is a 4-ary min-heap over 24-byte trivially-copyable entries
//     {when, seq, ticket} — sifts move three words, never a callable, and
//     the shallower tree halves the levels touched per pop.
//   * Ordering is (time, sequence): the sequence number is assigned at
//     scheduling time, so two events scheduled for the same instant fire
//     in scheduling order — essential for deterministic simulations.
//   * Cancellation is a lazy tombstone: cancel() kills the ticket in O(1)
//     and the dead heap entry is skipped when it surfaces (or swept out
//     wholesale when tombstones outnumber live entries). EventIds carry a
//     per-slot generation stamp, so a stale id can never cancel — or
//     resurrect — a later event that happens to reuse the same slot.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/check.hpp"
#include "core/hot_path.hpp"
#include "netsim/inline_action.hpp"

namespace ddpm::netsim {

/// Simulation time in abstract ticks. One tick is whatever the model says it
/// is; the cluster model uses nanoseconds.
using SimTime = std::uint64_t;

/// Identifies a scheduled event for cancellation. Packed (ticket slot,
/// generation): slots are recycled but generations are not, so an id stays
/// unambiguous for 2^32 reuses of its slot — far beyond any simulation.
using EventId = std::uint64_t;

class EventQueue {
 public:
  using Action = InlineAction;

  /// Schedules `action` to fire at absolute time `when`. Contract: `when`
  /// must not precede the time of the most recently popped event — the
  /// simulation clock never runs backwards (checked, fatal).
  EventId schedule(SimTime when, Action action);

  /// Cancels a pending event. Returns false if the event already fired or
  /// was cancelled. O(1): marks the ticket dead; the heap entry is pruned
  /// lazily.
  bool cancel(EventId id);

  bool empty() const noexcept { return live_ == 0; }
  std::size_t size() const noexcept { return live_; }

  /// Time of the earliest pending event. Precondition: !empty(). Prunes
  /// tombstones off the top, hence non-const.
  SimTime next_time() {
    DDPM_DCHECK(live_ != 0, "next_time on empty queue");
    prune_dead_top();
    return heap_.front().when;
  }

  /// Time of the most recently popped event (0 before the first pop) — the
  /// current simulation instant from the queue's perspective.
  SimTime last_popped_time() const noexcept { return last_popped_; }

  /// Removes the earliest event and returns (time, action). Precondition:
  /// !empty(). The action is moved out; run it after popping so that the
  /// action may itself schedule or cancel events.
  std::pair<SimTime, Action> pop();

  /// Discards all pending events and resets the monotonicity watermark, so
  /// a cleared queue may be reused from time zero. Outstanding EventIds are
  /// invalidated (their slots' generations advance), never recycled as-is.
  void clear();

  /// Pre-sizes the heap and ticket pool for `n` simultaneous pending
  /// events, so a steady-state workload grows its storage once instead of
  /// reallocating through the warm-up ramp.
  void reserve(std::size_t n);

  /// Cancelled events whose heap entries have not been swept yet.
  /// Observability hook for tests and the compaction policy.
  std::size_t tombstone_count() const noexcept { return tombstones_; }

 private:
  /// Trivially copyable; sift operations shuffle these, never an Action.
  /// Three words: the 4-ary heap's per-level cost is exactly one Entry
  /// copy, which the layout certification pins.
  struct DDPM_HOT_STATE Entry {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t ticket;
  };
  DDPM_HOT_LAYOUT(Entry, 24, 8);

  /// Stable slot for one scheduled action. `generation` advances every
  /// time the slot is released, invalidating all prior EventIds for it.
  struct Ticket {
    Action action;
    std::uint32_t generation = 0;
    bool live = false;
  };

  static constexpr std::size_t kArity = 4;

  static bool earlier(const Entry& a, const Entry& b) noexcept {
    return a.when < b.when || (a.when == b.when && a.seq < b.seq);
  }

  static EventId make_id(std::uint32_t ticket, std::uint32_t gen) noexcept {
    return (EventId(ticket) << 32) | gen;
  }

  std::uint32_t acquire_ticket();
  void release_ticket(std::uint32_t ticket) noexcept;
  void prune_dead_top() noexcept;
  void remove_top() noexcept;
  void compact();
  void sift_up(std::size_t i) noexcept;
  void sift_down(std::size_t i) noexcept;

  std::vector<Entry> heap_;
  std::vector<Ticket> tickets_;
  std::vector<std::uint32_t> free_tickets_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;        // pending minus tombstoned
  std::size_t tombstones_ = 0;  // cancelled entries still in heap_
  SimTime last_popped_ = 0;
};

}  // namespace ddpm::netsim
