#include "netsim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

namespace ddpm::netsim {

void RunningStat::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  // Welford update: floating-point divide by the running count is the
  // algorithm's definition, not an integer divide.
  mean_ += delta / double(n_);  // ddpm-analyze: allow(hot-no-div)
  m2_ += delta * (x - mean_);
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = double(n_ + other.n_);
  m2_ += other.m2_ + delta * delta * double(n_) * double(other.n_) / n;
  mean_ = (mean_ * double(n_) + other.mean_ * double(other.n_)) / n;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / double(bins)), counts_(bins, 0) {}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    // Floating-point bin scaling; a reciprocal multiply would move bin
    // boundaries by an ulp and silently reshuffle edge samples.
    ++counts_[static_cast<std::size_t>((x - lo_) / width_)];  // ddpm-analyze: allow(hot-no-div)
  }
}

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return lo_;
  const double target = q * double(total_);
  double cum = double(underflow_);
  if (cum >= target) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + double(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double frac = (target - cum) / double(counts_[i]);
      return bin_low(i) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::to_string(std::size_t max_rows) const {
  std::ostringstream os;
  const std::size_t step = std::max<std::size_t>(1, counts_.size() / max_rows);
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  for (std::size_t i = 0; i < counts_.size(); i += step) {
    std::uint64_t row = 0;
    for (std::size_t j = i; j < std::min(i + step, counts_.size()); ++j) {
      row += counts_[j];
    }
    os << "[" << bin_low(i) << ", " << bin_low(i) + width_ * double(step) << ") ";
    const auto bar = static_cast<std::size_t>(40.0 * double(row) / double(peak));
    for (std::size_t b = 0; b < bar; ++b) os << '#';
    os << ' ' << row << '\n';
  }
  return os.str();
}

EwmaRate::EwmaRate(double half_life) noexcept
    : decay_per_tick_(std::log(2.0) / half_life) {}

void EwmaRate::observe(std::uint64_t now, double weight) noexcept {
  if (!seen_) {
    seen_ = true;
    last_ = now;
    value_ = weight * decay_per_tick_;
    return;
  }
  // Out-of-order timestamps (now < last_) are treated as zero elapsed time;
  // the unsigned subtraction would otherwise wrap to ~2^64 ticks and decay
  // the estimate to zero in one step.
  const double dt = now >= last_ ? double(now - last_) : 0.0;
  value_ = value_ * std::exp(-decay_per_tick_ * dt) + weight * decay_per_tick_;
  if (now > last_) last_ = now;
}

double EwmaRate::rate(std::uint64_t now) const noexcept {
  if (!seen_) return 0.0;
  const double dt = now >= last_ ? double(now - last_) : 0.0;
  return value_ * std::exp(-decay_per_tick_ * dt);
}

double shannon_entropy(
    const std::unordered_map<std::uint32_t, std::uint64_t>& counts) {
  // Accumulate in sorted-key order: floating-point addition is not
  // associative, so walking the unordered_map directly would make the
  // entropy (and every report it feeds) depend on hash iteration order.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> sorted(counts.begin(),
                                                              counts.end());
  std::sort(sorted.begin(), sorted.end());
  std::uint64_t total = 0;
  for (const auto& [key, c] : sorted) total += c;
  if (total == 0) return 0.0;
  double h = 0.0;
  for (const auto& [key, c] : sorted) {
    if (c == 0) continue;
    const double p = double(c) / double(total);
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace ddpm::netsim
