// Cycle-driven wormhole-switched network with virtual channels.
//
// The cluster model in src/cluster is store-and-forward, which keeps the
// event count low for long scenario runs. Real cluster interconnects of
// the paper's era (and since) use wormhole switching: packets are split
// into flits, the head flit opens a path and the body follows, buffers are
// a few flits deep, and virtual channels (VCs) provide deadlock freedom.
// This module is that substrate, so every marking claim can also be
// exercised under realistic switching:
//
//   * input-buffered routers, one buffer per (input port, VC), credit-based
//     flow control (synchronous credit return, documented simplification);
//   * deadlock avoidance a la Duato: adaptive VCs may follow any productive
//     port, while an escape VC restricted to dimension-order routing is
//     always selectable when a packet (re)allocates at a hop. On the torus
//     the escape layer uses two VCs with a dateline discipline (packets
//     move to the second escape class after crossing a wrap link);
//   * marking and TTL run once per switch at route/VC allocation — the
//     same "after the routing decision" point as Figure 4 and the
//     store-and-forward Switch, so DDPM behaves identically.
//
// The network is stepped one cycle at a time (per cycle: allocation, then
// one flit per output port, then ejection), which makes load-latency
// sweeps (bench_wormhole_loadlatency) and deadlock tests deterministic.
//
// Steady-state performance: the per-flit loop is annotated DDPM_HOT and
// audited by the hot-path analyzer rules (docs/STATIC_ANALYSIS.md). At
// construction the network precomputes flat tables — neighbor/reverse-port
// per (node, port), dateline wrap flags, the escape router's
// dimension-order next hop per (node, dest), and, for routers that declare
// arrival-invariant candidates, the candidate port set as a bitmask per
// (node, dest) — so the steady-state loop performs no virtual dispatch and
// no heap allocation (flit queues are flat RingBuffers, reserved to credit
// depth). Table-driven routing is byte-identical to the virtual path; the
// `use_route_tables` toggle exists so tests can prove it.
//
// On top of the tables sits the structure-of-arrays engine (default): all
// per-unit control state lives in flat UnitCtl/OutCtl records indexed by
// the global unit id, switch-port flit buffers are fixed-depth windows in
// one contiguous slab (their ring cursors live in the control record),
// per-node occupancy and per-(node, port) request bitmasks drive the
// allocation and traversal passes (one ctz per occupied unit instead of a
// scan over every unit), and a two-level active-node bitmap lets step()
// walk exactly the switches holding flits, in ascending node order. The `use_soa_engine` toggle keeps the original
// object-graph engine alive as the reference: delivery evidence AND the
// telemetry snapshot must be byte-identical between the two
// (tests/test_wormhole.cpp, SoaEngineIsByteIdenticalToLegacyPath).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include <string>

#include "core/hot_path.hpp"
#include "core/model_hooks.hpp"
#include "core/ring.hpp"
#include "marking/scheme.hpp"
#include "netsim/rng.hpp"
#include "packet/packet.hpp"
#include "routing/dor.hpp"
#include "routing/router.hpp"
#include "telemetry/probes.hpp"
#include "topology/topology.hpp"

namespace ddpm::wormhole {

using topo::NodeId;
using topo::Port;

/// Between-cycles view of the credit/VC protocol state, engine-agnostic:
/// the same projection the bounded model checker's abstract states encode,
/// captured from the *real* network (src/verify/model, the witness-replay
/// contract). All vectors are indexed with the network's own unit layout:
/// input units as node * (P+1) * V + port * V + vc (port P = injection),
/// output VCs as node * P * V + port * V + vc.
struct ProtocolSnapshot {
  int nodes = 0;
  int ports = 0;
  int vcs = 0;
  int depth = 0;  ///< configured buffer_flits (per switch (port, VC))
  std::vector<std::uint32_t> occupancy;  ///< flits buffered per input unit
  std::vector<std::int32_t> credits;     ///< credit counter per output VC
  std::vector<std::uint8_t> allocated;   ///< allocation flag per output VC
  std::uint64_t flits_in_flight = 0;
  std::uint64_t delivered = 0;
};

struct WormholeConfig {
  std::uint32_t flit_bytes = 16;  // packet -> ceil(wire_bytes / flit_bytes) flits
  int adaptive_vcs = 1;           // VCs free to follow any productive port
  int buffer_flits = 4;           // per-(port, VC) buffer depth
  /// Negative control: remove the escape layer entirely (the network runs
  /// on the adaptive VCs alone, with no deadlock-free discipline). Ring
  /// traffic on the torus then wedges in the textbook hold-and-wait cycle
  /// — the experiment that shows the escape machinery is load-bearing.
  bool disable_escape = false;
  std::uint8_t initial_ttl = 255;
  std::uint64_t seed = 1;
  /// Precompute per-(node, dest) routing tables at construction so the
  /// steady-state loop never calls the virtual Router/Topology interfaces.
  /// Off = always route through the virtual path (the reference the route
  /// byte-identity test compares against).
  bool use_route_tables = true;
  /// Per-(node, dest) tables are O(N^2); beyond this many nodes the
  /// network falls back to the virtual path rather than burn memory.
  std::size_t route_table_max_nodes = 4096;
  /// Structure-of-arrays engine: flat control records plus occupancy /
  /// request bitmasks replace the nested node->unit object walk. Engaged
  /// when (P+1)*V fits the 64-bit unit masks; off (or oversize) runs the
  /// original engine — the reference the SoA byte-identity test compares
  /// against.
  bool use_soa_engine = true;
};

class WormholeNetwork {
 public:
  /// `router` supplies the adaptive candidates; the escape layer always
  /// uses an internal dimension-order router. `scheme` may be null.
  WormholeNetwork(const topo::Topology& topo, const route::Router& router,
                  mark::MarkingScheme* scheme, WormholeConfig config);

  WormholeNetwork(const WormholeNetwork&) = delete;
  WormholeNetwork& operator=(const WormholeNetwork&) = delete;

  /// Queues a packet at the source's injection port (unbounded queue; use
  /// injection_backlog to detect saturation). Runs the scheme's injection
  /// hook immediately.
  void inject(pkt::Packet&& packet, NodeId src);

  /// Advances the network one cycle.
  void step();
  /// Runs `cycles` cycles.
  void run(std::uint64_t cycles);
  /// Runs until no flit remains in flight (or `max_cycles` elapse).
  /// Returns true if the network drained.
  bool drain(std::uint64_t max_cycles);

  /// Cycles since the last flit movement or delivery while flits remain in
  /// flight. A large value with flits_in_flight() > 0 indicates deadlock.
  std::uint64_t stall_cycles() const noexcept { return stall_cycles_; }
  /// True if nothing has moved for `threshold` cycles with flits in flight.
  bool deadlocked(std::uint64_t threshold = 1000) const noexcept {
    return flits_in_flight_ > 0 && stall_cycles_ >= threshold;
  }

  std::uint64_t cycle() const noexcept { return cycle_; }
  std::uint64_t delivered() const noexcept { return delivered_; }
  std::uint64_t flits_in_flight() const noexcept { return flits_in_flight_; }
  std::uint64_t injection_backlog() const;
  std::uint64_t dropped_ttl() const noexcept { return dropped_ttl_; }

  /// True when construction built the per-(node, dest) candidate table for
  /// `router` (arrival-invariant candidates, N within budget). Exposed so
  /// tests can assert the fast path is actually exercised.
  bool using_route_tables() const noexcept { return !cand_mask_.empty(); }

  /// True when the structure-of-arrays engine is live (use_soa_engine and
  /// the unit count fits the 64-bit masks). Exposed so tests can assert
  /// which engine a scenario actually ran on.
  bool using_soa_engine() const noexcept { return soa_units_ != 0; }

  /// Captures the credit/VC protocol state (engine-agnostic projection).
  /// Cold by construction: the model checker's lockstep-differential test
  /// and the witness-replay harness call it between cycles; nothing on the
  /// step() path does.
  DDPM_MODEL ProtocolSnapshot snapshot_protocol() const;

  /// Checks the between-cycles protocol invariants on the live state:
  /// credit conservation (upstream credits + downstream occupancy == depth
  /// on every link/VC), no buffer overflow (occupancy <= depth on every
  /// switch unit), and flit accounting (buffered flits == flits_in_flight).
  /// Returns false and describes the first violation in `why` (if given).
  /// This is what a replayed witness must be able to break.
  DDPM_MODEL bool check_protocol_invariants(std::string* why = nullptr) const;

  /// Called with each fully ejected packet; delivered_at is the cycle the
  /// tail flit left the network.
  using DeliveryHook = std::function<void(pkt::Packet&&, NodeId)>;
  void set_delivery_hook(DeliveryHook hook) { hook_ = std::move(hook); }

  int total_vcs() const noexcept { return escape_vcs_ + config_.adaptive_vcs; }

  /// Registers wormhole series (VC allocations/stalls, credit stalls, flit
  /// movement, buffer occupancy). Call before the first step().
  void bind_telemetry(telemetry::Registry* registry) {
    probes_.bind(registry);
  }
  /// Samples a flits-in-flight counter track into `tracer`, timestamped in
  /// cycles (the wormhole clock).
  void attach_tracer(telemetry::Tracer* tracer) {
    probes_.attach(tracer);
    if (tracer != nullptr) tracer->set_clock(&cycle_);
  }

 private:
  // Flits carry a slab index, not ownership. All flits of a packet follow
  // the head over the same path and VCs (wormhole invariant), so they are
  // consumed in order at one unit and the tail is provably the last use:
  // the slot is released on tail ejection with no reference count at all.
  // (Previously this was a shared_ptr — one allocation plus ~2 atomic ops
  // per flit of pure overhead in a single-threaded simulation.)
  struct DDPM_HOT_STATE Flit {
    std::uint32_t pkt = 0;          // slot in pkt_pool_
    bool head = false;
    bool tail = false;
    std::uint8_t escape_class = 0;  // torus dateline state
  };
  DDPM_HOT_LAYOUT(Flit, 8, 4);

  struct DDPM_HOT_STATE InputVc {
    core::RingBuffer<Flit> buffer;
    bool active = false;  // head has been routed and holds an output VC
    Port out_port = -1;
    int out_vc = -1;
  };
  DDPM_HOT_LAYOUT(InputVc, 56, 8);

  struct DDPM_HOT_STATE OutputVc {
    bool allocated = false;
    int credits = 0;
  };
  DDPM_HOT_LAYOUT(OutputVc, 8, 4);

  struct NodeState {
    // Input units: [physical ports 0..P-1][injection port P], each with V VCs.
    std::vector<InputVc> in;                // (P+1) * V
    std::vector<OutputVc> out;              // P * V
    std::vector<std::size_t> rr;            // round-robin pointer per out port
  };

  InputVc& input_vc(NodeId n, int port, int vc) {
    return nodes_[n].in[std::size_t(port) * std::size_t(total_vcs()) + std::size_t(vc)];
  }
  OutputVc& output_vc(NodeId n, Port port, int vc) {
    return nodes_[n].out[std::size_t(port) * std::size_t(total_vcs()) + std::size_t(vc)];
  }

  int injection_port() const noexcept { return num_ports_; }

  /// Builds neighbor_/reverse_port_/wrap_link_ (always) and the
  /// per-(node, dest) escape + candidate tables (when within budget).
  void build_route_tables();

  // -- reference engine (object graph; use_soa_engine = false) -------------

  /// Route + VC allocation for the head flit at the front of an input VC.
  /// Returns true if an output VC was claimed.
  bool allocate(NodeId node, int in_port, InputVc& vc);

  /// One switch-allocation pass for a node: each output port forwards at
  /// most one flit; the ejection path consumes arbitrarily many.
  void switch_allocation(NodeId node);

  void eject(NodeId node, InputVc& vc);

  /// Credit return to the upstream output VC feeding (node, in_port, vc).
  void return_credit(NodeId node, int in_port, int vc);

  void step_ref();

  // -- SoA engine (flat records + bitmasks; engaged when soa_units_ != 0) --

  /// Per-input-unit control record, indexed by global unit id
  /// node * soa_units_ + unit. Switch units keep their queue cursors here
  /// (the flits themselves live in the fbuf_ slab); injection units ignore
  /// qhead/qcount and queue in inj_buf_.
  struct DDPM_HOT_STATE UnitCtl {
    std::int32_t out_slot = -1;  // claimed soa_out_ slot (cached index)
    std::int16_t out_port = -1;  // -1 idle/eject, -2 discard sink
    std::int8_t out_vc = -1;
    std::uint8_t active = 0;
    std::uint16_t qhead = 0;   // ring cursor into this unit's fbuf_ window
    std::uint16_t qcount = 0;  // flits buffered (credits bound it <= B)
  };
  DDPM_HOT_LAYOUT(UnitCtl, 12, 4);

  /// Per-output-VC control record, indexed by node * P * V + port * V + vc.
  struct DDPM_HOT_STATE OutCtl {
    std::int16_t credits = 0;
    std::uint8_t allocated = 0;
  };
  DDPM_HOT_LAYOUT(OutCtl, 4, 2);

  void build_soa();
  void step_soa();
  void soa_switch_allocation(NodeId node);
  bool soa_allocate(NodeId node, int in_port, int unit);
  void soa_eject(NodeId node, int unit);

  /// Start of switch unit `unit`'s fixed-depth window in the fbuf_ slab.
  std::size_t fbase(NodeId n, int unit) const noexcept {
    return (std::size_t(n) * std::size_t(soa_switch_units_) +
            std::size_t(unit)) *
           std::size_t(config_.buffer_flits);
  }
  /// Injection queue backing an injection unit (unit >= soa_switch_units_).
  core::RingBuffer<Flit>& inj_queue(NodeId n, int unit) noexcept {
    return inj_buf_[std::size_t(n) * std::size_t(total_vcs()) +
                    std::size_t(unit - soa_switch_units_)];
  }

  // Generic queue ops over a unit: switch units resolve to the slab window
  // addressed by the UnitCtl cursors (no pointer chase, the whole depth-B
  // window is contiguous); injection units dispatch to the unbounded ring.
  // The branch predicts well — switch units dominate every pass.
  std::size_t soa_qsize(NodeId n, int unit, const UnitCtl& ctl) noexcept {
    if (unit < soa_switch_units_) return ctl.qcount;
    return inj_queue(n, unit).size();
  }
  Flit& soa_qfront(NodeId n, int unit, UnitCtl& ctl) noexcept {
    if (unit < soa_switch_units_) return fbuf_[fbase(n, unit) + ctl.qhead];
    return inj_queue(n, unit).front();
  }
  void soa_qpop(NodeId n, int unit, UnitCtl& ctl) noexcept {
    if (unit < soa_switch_units_) {
      ctl.qhead = std::uint16_t(int(ctl.qhead) + 1 == config_.buffer_flits
                                    ? 0
                                    : ctl.qhead + 1);
      --ctl.qcount;
    } else {
      inj_queue(n, unit).pop_front();
    }
  }
  /// Credit return for a pop from global unit g = node * U + unit; the
  /// upstream output-VC slot is precomputed in credit_slot_.
  void soa_return_credit(std::size_t g) noexcept {
    if (DDPM_MODEL_MUTATION(kDropCreditReturn)) return;  // seeded bug
    const std::int32_t slot = credit_slot_[g];
    if (slot >= 0 && soa_out_[std::size_t(slot)].credits < config_.buffer_flits) {
      ++soa_out_[std::size_t(slot)].credits;
    }
  }

  std::size_t soa_out_index(NodeId n, Port port, int vc) const noexcept {
    return (std::size_t(n) * std::size_t(num_ports_) + std::size_t(port)) *
               std::size_t(total_vcs()) +
           std::size_t(vc);
  }

  /// Marks unit's buffer non-empty: occupancy bit, node bit, summary bit.
  void soa_note_push(NodeId n, int unit) noexcept {
    occ_[n] |= (std::uint64_t(1) << unsigned(unit));
    node_mask_[n >> 6] |= (std::uint64_t(1) << (n & 63));
    group_mask_[n >> 12] |= (std::uint64_t(1) << ((n >> 6) & 63));
  }
  /// Clears the occupancy bit after a pop emptied unit's buffer; drops the
  /// node out of the active bitmap when its last unit drains.
  void soa_note_empty(NodeId n, int unit) noexcept {
    occ_[n] &= ~(std::uint64_t(1) << unsigned(unit));
    if (occ_[n] == 0) {
      node_mask_[n >> 6] &= ~(std::uint64_t(1) << (n & 63));
      if (node_mask_[n >> 6] == 0) {
        group_mask_[n >> 12] &= ~(std::uint64_t(1) << ((n >> 6) & 63));
      }
    }
  }

  const topo::Topology& topo_;
  const route::Router& router_;
  route::DimensionOrderRouter escape_router_;
  mark::MarkingScheme* scheme_;
  WormholeConfig config_;
  int escape_vcs_;
  netsim::Rng rng_;

  // Construction-time caches of the virtual Topology interface: the hot
  // loop indexes these flat tables instead of dispatching per flit.
  int num_nodes_ = 0;
  int num_ports_ = 0;
  std::vector<NodeId> neighbor_;        // N*P; kInvalidNode where no link
  std::vector<Port> reverse_port_;      // N*P; port on neighbor back to node
  std::vector<std::uint8_t> wrap_link_; // N*P; 1 = torus wraparound link
  /// Escape next hop per (node, dest); -1 at node == dest. Dimension-order
  /// routing is deterministic and arrival-invariant, so one port suffices.
  std::vector<Port> escape_port_;       // N*N, or empty (fallback)
  /// Adaptive candidate ports per (node, dest) as an ascending bitmask.
  /// Built only when router_.has_static_candidates() and the returned
  /// order is verified ascending, so mask iteration reproduces the virtual
  /// candidate order bit for bit.
  std::vector<std::uint32_t> cand_mask_; // N*N, or empty (fallback)
  /// unit -> (in_port, in_vc) decomposition, precomputed so the per-probe
  /// scans in switch_allocation never divide (unit / V and unit % V were
  /// measurable on the cycle loop; V is runtime-sized).
  std::vector<std::int32_t> unit_port_;  // (P+1)*V
  std::vector<std::int32_t> unit_vc_;    // (P+1)*V

  std::vector<NodeState> nodes_;
  /// Flits buffered at each node's input units; lets step_ref() skip nodes
  /// with no work this cycle. Reference engine only.
  std::vector<std::uint32_t> node_flits_;

  /// Packet slab (both engines). inject() acquires a slot (freelist first,
  /// growth only when every slot is in flight — cold); tail ejection
  /// releases it. pkt_free_'s capacity tracks the pool's so the hot-path
  /// release push never allocates.
  std::vector<pkt::Packet> pkt_pool_;
  std::vector<std::uint32_t> pkt_free_;

  /// SoA engine state. `soa_units_` is (P+1)*V when engaged, 0 otherwise;
  /// records are indexed by global unit id node * soa_units_ + u. Units
  /// below `soa_switch_units_` (= P*V) are credit-bounded switch queues
  /// whose flits live in the fbuf_ slab; the rest are injection queues.
  int soa_units_ = 0;
  int soa_switch_units_ = 0;
  /// One contiguous depth-B window per switch unit (N * P*V * B flits,
  /// cursors in UnitCtl): at the default depth a whole window is 32 bytes,
  /// so a unit's entire buffer shares a cache line with its neighbors —
  /// the scattered RingBuffer-slab loads this slab replaced were the
  /// engine's largest remaining memory cost.
  std::vector<Flit> fbuf_;
  /// Unbounded injection queues, one per (node, VC); grow only in inject().
  std::vector<core::RingBuffer<Flit>> inj_buf_;  // N*V
  std::vector<UnitCtl> soa_in_;                  // N*U
  std::vector<OutCtl> soa_out_;                  // N*P*V
  std::vector<std::uint8_t> soa_rr_;             // N*P round-robin pointers
  /// Upstream output-VC slot credited when global unit g pops a flit, or
  /// -1 for injection units (unbounded, no credits). Static per topology;
  /// replaces two link-table loads and two index multiplies per pop.
  std::vector<std::int32_t> credit_slot_;        // N*U
  /// Downstream landing target per (node, out port): the neighbor node and
  /// its input-unit base (reverse_port * V); +vc gives the unit. Static.
  struct LinkDst {
    NodeId node = topo::kInvalidNode;
    std::uint16_t unit_base = 0;
  };
  std::vector<LinkDst> link_dst_;                // N*P
  /// Bit u of occ_[n]: unit u at node n holds at least one flit.
  std::vector<std::uint64_t> occ_;
  /// Bit u of req_[n*P + p]: unit u is active and routed to out port p.
  /// Traversal arbitration iterates req & occ instead of probing every
  /// unit; maintained at allocation (set) and tail departure (clear).
  std::vector<std::uint64_t> req_;
  /// Active-node bitmap (bit n of word n/64 set = occ_[n] != 0) plus a
  /// summary level (bit w of group_mask_[w/64] = node_mask_[w] != 0):
  /// step_soa() visits exactly the nodes holding flits, ascending — the
  /// same order the reference engine's full sweep observes.
  std::vector<std::uint64_t> node_mask_;
  std::vector<std::uint64_t> group_mask_;

  // Flits sent this cycle land in downstream buffers only after the full
  // pass, so a flit cannot traverse two links in one cycle.
  struct Staged {
    NodeId node;
    int in_port;
    int vc;
    Flit flit;
  };
  std::vector<Staged> staged_;
  /// SoA staging record: destination is already resolved to (node, unit)
  /// via link_dst_ at forward time, so landing is one push + bitmap note.
  struct SoaStaged {
    NodeId node;
    std::uint16_t unit;
    Flit flit;
  };
  std::vector<SoaStaged> soa_staged_;
  DeliveryHook hook_;
  std::uint64_t cycle_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t flits_in_flight_ = 0;
  std::uint64_t dropped_ttl_ = 0;
  std::uint64_t stall_cycles_ = 0;
  std::uint64_t progress_marker_ = 0;  // bumps on every flit event
  telemetry::WormholeProbes probes_;
};

}  // namespace ddpm::wormhole
