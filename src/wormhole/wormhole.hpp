// Cycle-driven wormhole-switched network with virtual channels.
//
// The cluster model in src/cluster is store-and-forward, which keeps the
// event count low for long scenario runs. Real cluster interconnects of
// the paper's era (and since) use wormhole switching: packets are split
// into flits, the head flit opens a path and the body follows, buffers are
// a few flits deep, and virtual channels (VCs) provide deadlock freedom.
// This module is that substrate, so every marking claim can also be
// exercised under realistic switching:
//
//   * input-buffered routers, one buffer per (input port, VC), credit-based
//     flow control (synchronous credit return, documented simplification);
//   * deadlock avoidance a la Duato: adaptive VCs may follow any productive
//     port, while an escape VC restricted to dimension-order routing is
//     always selectable when a packet (re)allocates at a hop. On the torus
//     the escape layer uses two VCs with a dateline discipline (packets
//     move to the second escape class after crossing a wrap link);
//   * marking and TTL run once per switch at route/VC allocation — the
//     same "after the routing decision" point as Figure 4 and the
//     store-and-forward Switch, so DDPM behaves identically.
//
// The network is stepped one cycle at a time (per cycle: allocation, then
// one flit per output port, then ejection), which makes load-latency
// sweeps (bench_wormhole_loadlatency) and deadlock tests deterministic.
//
// Steady-state performance: the per-flit loop is annotated DDPM_HOT and
// audited by the hot-path analyzer rules (docs/STATIC_ANALYSIS.md). At
// construction the network precomputes flat tables — neighbor/reverse-port
// per (node, port), dateline wrap flags, the escape router's
// dimension-order next hop per (node, dest), and, for routers that declare
// arrival-invariant candidates, the candidate port set as a bitmask per
// (node, dest) — so the steady-state loop performs no virtual dispatch and
// no heap allocation (flit queues are flat RingBuffers, reserved to credit
// depth). Table-driven routing is byte-identical to the virtual path; the
// `use_route_tables` toggle exists so tests can prove it.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/hot_path.hpp"
#include "core/ring.hpp"
#include "marking/scheme.hpp"
#include "netsim/rng.hpp"
#include "packet/packet.hpp"
#include "routing/dor.hpp"
#include "routing/router.hpp"
#include "telemetry/probes.hpp"
#include "topology/topology.hpp"

namespace ddpm::wormhole {

using topo::NodeId;
using topo::Port;

struct WormholeConfig {
  std::uint32_t flit_bytes = 16;  // packet -> ceil(wire_bytes / flit_bytes) flits
  int adaptive_vcs = 1;           // VCs free to follow any productive port
  int buffer_flits = 4;           // per-(port, VC) buffer depth
  /// Negative control: remove the escape layer entirely (the network runs
  /// on the adaptive VCs alone, with no deadlock-free discipline). Ring
  /// traffic on the torus then wedges in the textbook hold-and-wait cycle
  /// — the experiment that shows the escape machinery is load-bearing.
  bool disable_escape = false;
  std::uint8_t initial_ttl = 255;
  std::uint64_t seed = 1;
  /// Precompute per-(node, dest) routing tables at construction so the
  /// steady-state loop never calls the virtual Router/Topology interfaces.
  /// Off = always route through the virtual path (the reference the route
  /// byte-identity test compares against).
  bool use_route_tables = true;
  /// Per-(node, dest) tables are O(N^2); beyond this many nodes the
  /// network falls back to the virtual path rather than burn memory.
  std::size_t route_table_max_nodes = 4096;
};

class WormholeNetwork {
 public:
  /// `router` supplies the adaptive candidates; the escape layer always
  /// uses an internal dimension-order router. `scheme` may be null.
  WormholeNetwork(const topo::Topology& topo, const route::Router& router,
                  mark::MarkingScheme* scheme, WormholeConfig config);

  WormholeNetwork(const WormholeNetwork&) = delete;
  WormholeNetwork& operator=(const WormholeNetwork&) = delete;

  /// Queues a packet at the source's injection port (unbounded queue; use
  /// injection_backlog to detect saturation). Runs the scheme's injection
  /// hook immediately.
  void inject(pkt::Packet&& packet, NodeId src);

  /// Advances the network one cycle.
  void step();
  /// Runs `cycles` cycles.
  void run(std::uint64_t cycles);
  /// Runs until no flit remains in flight (or `max_cycles` elapse).
  /// Returns true if the network drained.
  bool drain(std::uint64_t max_cycles);

  /// Cycles since the last flit movement or delivery while flits remain in
  /// flight. A large value with flits_in_flight() > 0 indicates deadlock.
  std::uint64_t stall_cycles() const noexcept { return stall_cycles_; }
  /// True if nothing has moved for `threshold` cycles with flits in flight.
  bool deadlocked(std::uint64_t threshold = 1000) const noexcept {
    return flits_in_flight_ > 0 && stall_cycles_ >= threshold;
  }

  std::uint64_t cycle() const noexcept { return cycle_; }
  std::uint64_t delivered() const noexcept { return delivered_; }
  std::uint64_t flits_in_flight() const noexcept { return flits_in_flight_; }
  std::uint64_t injection_backlog() const;
  std::uint64_t dropped_ttl() const noexcept { return dropped_ttl_; }

  /// True when construction built the per-(node, dest) candidate table for
  /// `router` (arrival-invariant candidates, N within budget). Exposed so
  /// tests can assert the fast path is actually exercised.
  bool using_route_tables() const noexcept { return !cand_mask_.empty(); }

  /// Called with each fully ejected packet; delivered_at is the cycle the
  /// tail flit left the network.
  using DeliveryHook = std::function<void(pkt::Packet&&, NodeId)>;
  void set_delivery_hook(DeliveryHook hook) { hook_ = std::move(hook); }

  int total_vcs() const noexcept { return escape_vcs_ + config_.adaptive_vcs; }

  /// Registers wormhole series (VC allocations/stalls, credit stalls, flit
  /// movement, buffer occupancy). Call before the first step().
  void bind_telemetry(telemetry::Registry* registry) {
    probes_.bind(registry);
  }
  /// Samples a flits-in-flight counter track into `tracer`, timestamped in
  /// cycles (the wormhole clock).
  void attach_tracer(telemetry::Tracer* tracer) {
    probes_.attach(tracer);
    if (tracer != nullptr) tracer->set_clock(&cycle_);
  }

 private:
  struct DDPM_HOT_STATE Flit {
    std::shared_ptr<pkt::Packet> packet;  // shared by all flits of a packet
    bool head = false;
    bool tail = false;
    std::uint8_t escape_class = 0;        // torus dateline state
  };
  DDPM_HOT_LAYOUT(Flit, 24, 8);

  struct DDPM_HOT_STATE InputVc {
    core::RingBuffer<Flit> buffer;
    bool active = false;  // head has been routed and holds an output VC
    Port out_port = -1;
    int out_vc = -1;
  };
  DDPM_HOT_LAYOUT(InputVc, 56, 8);

  struct DDPM_HOT_STATE OutputVc {
    bool allocated = false;
    int credits = 0;
  };
  DDPM_HOT_LAYOUT(OutputVc, 8, 4);

  struct NodeState {
    // Input units: [physical ports 0..P-1][injection port P], each with V VCs.
    std::vector<InputVc> in;                // (P+1) * V
    std::vector<OutputVc> out;              // P * V
    std::vector<std::size_t> rr;            // round-robin pointer per out port
  };

  InputVc& input_vc(NodeId n, int port, int vc) {
    return nodes_[n].in[std::size_t(port) * std::size_t(total_vcs()) + std::size_t(vc)];
  }
  OutputVc& output_vc(NodeId n, Port port, int vc) {
    return nodes_[n].out[std::size_t(port) * std::size_t(total_vcs()) + std::size_t(vc)];
  }

  int injection_port() const noexcept { return num_ports_; }

  /// Builds neighbor_/reverse_port_/wrap_link_ (always) and the
  /// per-(node, dest) escape + candidate tables (when within budget).
  void build_route_tables();

  /// Route + VC allocation for the head flit at the front of an input VC.
  /// Returns true if an output VC was claimed.
  bool allocate(NodeId node, int in_port, InputVc& vc);

  /// One switch-allocation pass for a node: each output port forwards at
  /// most one flit; the ejection path consumes arbitrarily many.
  void switch_allocation(NodeId node);

  void eject(NodeId node, InputVc& vc);

  /// Credit return to the upstream output VC feeding (node, in_port, vc).
  void return_credit(NodeId node, int in_port, int vc);

  const topo::Topology& topo_;
  const route::Router& router_;
  route::DimensionOrderRouter escape_router_;
  mark::MarkingScheme* scheme_;
  WormholeConfig config_;
  int escape_vcs_;
  netsim::Rng rng_;

  // Construction-time caches of the virtual Topology interface: the hot
  // loop indexes these flat tables instead of dispatching per flit.
  int num_nodes_ = 0;
  int num_ports_ = 0;
  std::vector<NodeId> neighbor_;        // N*P; kInvalidNode where no link
  std::vector<Port> reverse_port_;      // N*P; port on neighbor back to node
  std::vector<std::uint8_t> wrap_link_; // N*P; 1 = torus wraparound link
  /// Escape next hop per (node, dest); -1 at node == dest. Dimension-order
  /// routing is deterministic and arrival-invariant, so one port suffices.
  std::vector<Port> escape_port_;       // N*N, or empty (fallback)
  /// Adaptive candidate ports per (node, dest) as an ascending bitmask.
  /// Built only when router_.has_static_candidates() and the returned
  /// order is verified ascending, so mask iteration reproduces the virtual
  /// candidate order bit for bit.
  std::vector<std::uint32_t> cand_mask_; // N*N, or empty (fallback)
  /// unit -> (in_port, in_vc) decomposition, precomputed so the per-probe
  /// scans in switch_allocation never divide (unit / V and unit % V were
  /// measurable on the cycle loop; V is runtime-sized).
  std::vector<std::int32_t> unit_port_;  // (P+1)*V
  std::vector<std::int32_t> unit_vc_;    // (P+1)*V

  std::vector<NodeState> nodes_;
  /// Flits buffered at each node's input units; lets step() skip nodes
  /// with no work this cycle.
  std::vector<std::uint32_t> node_flits_;

  // Flits sent this cycle land in downstream buffers only after the full
  // pass, so a flit cannot traverse two links in one cycle.
  struct Staged {
    NodeId node;
    int in_port;
    int vc;
    Flit flit;
  };
  std::vector<Staged> staged_;
  DeliveryHook hook_;
  std::uint64_t cycle_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t flits_in_flight_ = 0;
  std::uint64_t dropped_ttl_ = 0;
  std::uint64_t stall_cycles_ = 0;
  std::uint64_t progress_marker_ = 0;  // bumps on every flit event
  telemetry::WormholeProbes probes_;
};

}  // namespace ddpm::wormhole
