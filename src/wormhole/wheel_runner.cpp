#include "wormhole/wheel_runner.hpp"

#include "core/check.hpp"

namespace ddpm::wormhole {

namespace {

/// Self-rescheduling link-clock tick. 32 bytes — comfortably inside
/// InlineAction's inline buffer, so the steady-state reschedule never
/// allocates.
struct WheelTick {
  netsim::Simulator* sim;
  WormholeNetwork* net;
  std::uint64_t remaining;
  netsim::SimTime period;

  void operator()() {
    net->step();
    if (--remaining > 0) sim->schedule_in(period, *this);
  }
};

static_assert(netsim::InlineAction::fits_inline<WheelTick>,
              "link-clock tick must stay on the allocation-free path");

}  // namespace

std::uint64_t run_on_wheel(netsim::Simulator& sim, WormholeNetwork& net,
                           std::uint64_t cycles, netsim::SimTime tick_period,
                           netsim::SimTime until) {
  DDPM_CHECK(tick_period > 0, "link clock period must be positive");
  if (cycles == 0) return sim.run(until);
  sim.schedule_in(tick_period, WheelTick{&sim, &net, cycles, tick_period});
  return sim.run(until);
}

}  // namespace ddpm::wormhole
