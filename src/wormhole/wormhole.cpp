#include "wormhole/wormhole.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/check.hpp"
#include "routing/deadlock.hpp"

namespace ddpm::wormhole {

WormholeNetwork::WormholeNetwork(const topo::Topology& topo,
                                 const route::Router& router,
                                 mark::MarkingScheme* scheme,
                                 WormholeConfig config)
    : topo_(topo),
      router_(router),
      escape_router_(topo),
      scheme_(scheme),
      config_(config),
      escape_vcs_(config.disable_escape
                      ? 0
                      : (topo.kind() == topo::TopologyKind::kTorus ? 2 : 1)),
      rng_(config.seed) {
  // Factory deadlock gate (routing/deadlock.hpp): a blocking substrate
  // must carry the escape VCs the routing declaration demands. The
  // `disable_escape` negative control opts out explicitly — it exists to
  // demonstrate the deadlock the gate otherwise forbids.
  if (!config.disable_escape) {
    route::require_deadlock_safe(router, escape_vcs_ > 0);
  }
  num_nodes_ = int(topo.num_nodes());
  num_ports_ = topo.num_ports();
  const int V = total_vcs();
  DDPM_CHECK(config_.buffer_flits > 0 && config_.buffer_flits <= 0x7fff,
             "buffer_flits out of range for credit counters");
  // At most one flit per output port per node lands per cycle.
  staged_.reserve(std::size_t(num_nodes_) * std::size_t(num_ports_));
  unit_port_.resize(std::size_t(num_ports_ + 1) * std::size_t(V));
  unit_vc_.resize(std::size_t(num_ports_ + 1) * std::size_t(V));
  for (int unit = 0; unit < (num_ports_ + 1) * V; ++unit) {
    unit_port_[std::size_t(unit)] = unit / V;
    unit_vc_[std::size_t(unit)] = unit % V;
  }
  build_route_tables();
  if (config_.use_soa_engine && (num_ports_ + 1) * V <= 64) {
    build_soa();
  } else {
    nodes_.resize(std::size_t(num_nodes_));
    for (NodeState& node : nodes_) {
      node.in.resize(std::size_t(num_ports_ + 1) * std::size_t(V));
      node.out.resize(std::size_t(num_ports_) * std::size_t(V));
      for (OutputVc& out : node.out) out.credits = config_.buffer_flits;
      node.rr.assign(std::size_t(num_ports_), 0);
      // Switch-port buffers are credit-bounded at buffer_flits: reserving
      // that depth up front makes steady-state push/pop allocation-free
      // (tests/test_wormhole_steady_alloc.cpp proves it at runtime, the
      // hot-no-alloc rule statically). The injection units (ports >= P*V)
      // stay unreserved — they are unbounded and grow only in inject(),
      // which is off the hot path.
      for (std::size_t unit = 0;
           unit < std::size_t(num_ports_) * std::size_t(V); ++unit) {
        node.in[unit].buffer.reserve(std::size_t(config_.buffer_flits));
      }
    }
    node_flits_.assign(std::size_t(num_nodes_), 0);
  }
}

void WormholeNetwork::build_soa() {
  const int V = total_vcs();
  soa_units_ = (num_ports_ + 1) * V;
  soa_switch_units_ = num_ports_ * V;
  const std::size_t N = std::size_t(num_nodes_);
  const std::size_t U = std::size_t(soa_units_);
  // The slab preallocates every switch unit at full credit depth — the
  // same total footprint the per-unit RingBuffer reservations had, but
  // contiguous, so steady-state push/pop touches no queue metadata beyond
  // the unit's own control record.
  fbuf_.assign(N * std::size_t(soa_switch_units_) *
                   std::size_t(config_.buffer_flits),
               Flit{});
  inj_buf_.clear();
  inj_buf_.resize(N * std::size_t(V));
  soa_in_.assign(N * U, UnitCtl{});
  soa_out_.assign(N * std::size_t(num_ports_) * std::size_t(V), OutCtl{});
  for (OutCtl& out : soa_out_) out.credits = std::int16_t(config_.buffer_flits);
  soa_rr_.assign(N * std::size_t(num_ports_), 0);
  occ_.assign(N, 0);
  req_.assign(N * std::size_t(num_ports_), 0);
  node_mask_.assign((N + 63) / 64, 0);
  group_mask_.assign((node_mask_.size() + 63) / 64, 0);
  soa_staged_.reserve(N * std::size_t(num_ports_));
  // Static link-derived tables: the hot loop's per-pop credit target and
  // per-forward landing target collapse to one table load each.
  credit_slot_.assign(N * U, -1);
  link_dst_.assign(N * std::size_t(num_ports_), LinkDst{});
  for (NodeId n = 0; n < NodeId(N); ++n) {
    for (Port p = 0; p < num_ports_; ++p) {
      const std::size_t link = std::size_t(n) * std::size_t(num_ports_) +
                               std::size_t(p);
      const NodeId up = neighbor_[link];
      if (up == topo::kInvalidNode) continue;
      const Port up_port = reverse_port_[link];
      for (int vc = 0; vc < V; ++vc) {
        credit_slot_[std::size_t(n) * U + std::size_t(p * V + vc)] =
            std::int32_t(soa_out_index(up, up_port, vc));
      }
      link_dst_[link] = LinkDst{up, std::uint16_t(up_port * V)};
    }
  }
}

void WormholeNetwork::build_route_tables() {
  const std::size_t N = std::size_t(num_nodes_);
  const std::size_t P = std::size_t(num_ports_);

  // Link tables (always built — O(N*P)): the hot loop reads these instead
  // of dispatching through the virtual Topology interface per flit.
  neighbor_.assign(N * P, topo::kInvalidNode);
  reverse_port_.assign(N * P, Port(-1));
  wrap_link_.assign(N * P, 0);
  for (NodeId n = 0; n < NodeId(N); ++n) {
    for (Port p = 0; p < num_ports_; ++p) {
      const auto nbr = topo_.neighbor(n, p);
      if (!nbr.has_value()) continue;
      neighbor_[std::size_t(n) * P + std::size_t(p)] = *nbr;
      reverse_port_[std::size_t(n) * P + std::size_t(p)] = *topo_.port_to(*nbr, n);
      if (escape_vcs_ > 1) {
        // Dateline flag: on the torus, ports follow the cartesian
        // convention (port = 2*dim + dir), and a link whose coordinate
        // delta in its dimension is not +-1 is a wraparound link.
        const std::size_t dim = std::size_t(p / 2);
        const topo::Coord here = topo_.coord_of(n);
        const topo::Coord there = topo_.coord_of(*nbr);
        const int delta = int(there[dim]) - int(here[dim]);
        if (delta != 1 && delta != -1) {
          wrap_link_[std::size_t(n) * P + std::size_t(p)] = 1;
        }
      }
    }
  }

  // Per-(node, dest) tables are O(N^2); honor the budget.
  if (!config_.use_route_tables || N > config_.route_table_max_nodes) return;

  // Escape next hop: dimension-order routing is deterministic and ignores
  // the arrival port, so a single port per (node, dest) captures it.
  escape_port_.assign(N * N, Port(-1));
  for (NodeId n = 0; n < NodeId(N); ++n) {
    for (NodeId d = 0; d < NodeId(N); ++d) {
      const auto cands = escape_router_.candidates(n, d, route::kLocalPort);
      if (!cands.empty()) {
        escape_port_[std::size_t(n) * N + std::size_t(d)] = cands.front();
      }
    }
  }

  // Adaptive candidate bitmasks: only for routers that declare their
  // candidate set arrival-invariant, and only if the declared order is
  // verifiably ascending — mask iteration then replays the virtual
  // candidate order bit for bit (test_wormhole RouteTableByteIdentity).
  if (!router_.has_static_candidates() || num_ports_ > 32) return;
  std::vector<std::uint32_t> masks(N * N, 0);
  for (NodeId n = 0; n < NodeId(N); ++n) {
    for (NodeId d = 0; d < NodeId(N); ++d) {
      const auto cands = router_.candidates(n, d, route::kLocalPort);
      Port prev = -1;
      for (Port p : cands) {
        if (p <= prev || p < 0 || p >= num_ports_) return;  // not ascending
        prev = p;
        masks[std::size_t(n) * N + std::size_t(d)] |= (1u << unsigned(p));
      }
    }
  }
  cand_mask_ = std::move(masks);
}

void WormholeNetwork::inject(pkt::Packet&& packet, NodeId src) {
  if (scheme_ != nullptr) scheme_->on_injection(packet, src);
  packet.header.set_ttl(config_.initial_ttl);
  const std::uint32_t flits = std::max<std::uint32_t>(
      1, (packet.wire_bytes() + config_.flit_bytes - 1) / config_.flit_bytes);
  std::uint32_t id;
  if (!pkt_free_.empty()) {
    id = pkt_free_.back();
    pkt_free_.pop_back();
    pkt_pool_[id] = std::move(packet);
  } else {
    id = std::uint32_t(pkt_pool_.size());
    pkt_pool_.push_back(std::move(packet));
    // Keep the freelist's capacity at least the pool's: the tail-ejection
    // release in the hot loop must never allocate.
    pkt_free_.reserve(pkt_pool_.capacity());
  }
  if (soa_units_ != 0) {
    const int unit = soa_switch_units_;  // injection port, VC 0
    core::RingBuffer<Flit>& buf = inj_queue(src, unit);
    for (std::uint32_t i = 0; i < flits; ++i) {
      Flit flit;
      flit.head = (i == 0);
      flit.tail = (i + 1 == flits);
      flit.pkt = id;
      buf.push_back(std::move(flit));
    }
    soa_note_push(src, unit);
  } else {
    InputVc& vc = input_vc(src, injection_port(), 0);
    for (std::uint32_t i = 0; i < flits; ++i) {
      Flit flit;
      flit.head = (i == 0);
      flit.tail = (i + 1 == flits);
      flit.pkt = id;
      vc.buffer.push_back(std::move(flit));
    }
    node_flits_[src] += flits;
  }
  flits_in_flight_ += flits;
}

ProtocolSnapshot WormholeNetwork::snapshot_protocol() const {
  ProtocolSnapshot snap;
  const int V = total_vcs();
  snap.nodes = num_nodes_;
  snap.ports = num_ports_;
  snap.vcs = V;
  snap.depth = config_.buffer_flits;
  snap.flits_in_flight = flits_in_flight_;
  snap.delivered = delivered_;
  const std::size_t in_units = std::size_t(num_ports_ + 1) * std::size_t(V);
  const std::size_t out_units = std::size_t(num_ports_) * std::size_t(V);
  snap.occupancy.assign(std::size_t(num_nodes_) * in_units, 0);
  snap.credits.assign(std::size_t(num_nodes_) * out_units, 0);
  snap.allocated.assign(std::size_t(num_nodes_) * out_units, 0);
  for (NodeId n = 0; n < NodeId(num_nodes_); ++n) {
    for (std::size_t u = 0; u < in_units; ++u) {
      const std::size_t g = std::size_t(n) * in_units + u;
      if (soa_units_ != 0) {
        snap.occupancy[g] =
            int(u) < soa_switch_units_
                ? soa_in_[std::size_t(n) * std::size_t(soa_units_) + u].qcount
                : std::uint32_t(
                      inj_buf_[std::size_t(n) * std::size_t(V) +
                               (u - std::size_t(soa_switch_units_))]
                          .size());
      } else {
        snap.occupancy[g] = std::uint32_t(nodes_[n].in[u].buffer.size());
      }
    }
    for (std::size_t u = 0; u < out_units; ++u) {
      const std::size_t g = std::size_t(n) * out_units + u;
      if (soa_units_ != 0) {
        snap.credits[g] = soa_out_[g].credits;
        snap.allocated[g] = soa_out_[g].allocated;
      } else {
        snap.credits[g] = nodes_[n].out[u].credits;
        snap.allocated[g] = nodes_[n].out[u].allocated ? 1 : 0;
      }
    }
  }
  return snap;
}

bool WormholeNetwork::check_protocol_invariants(std::string* why) const {
  const ProtocolSnapshot snap = snapshot_protocol();
  const int V = snap.vcs;
  const std::size_t in_units = std::size_t(num_ports_ + 1) * std::size_t(V);
  const std::size_t out_units = std::size_t(num_ports_) * std::size_t(V);
  const auto fail = [why](const std::string& msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  // Flit accounting: every in-flight flit is buffered somewhere (between
  // cycles the staging vectors are empty), and nothing is double-counted.
  std::uint64_t buffered = 0;
  for (const std::uint32_t occ : snap.occupancy) buffered += occ;
  if (buffered != snap.flits_in_flight) {
    std::ostringstream os;
    os << "flit accounting: " << buffered << " buffered vs "
       << snap.flits_in_flight << " in flight (loss or duplication)";
    return fail(os.str());
  }
  for (NodeId n = 0; n < NodeId(snap.nodes); ++n) {
    // No overflow: switch units are bounded by the credit depth (injection
    // units, port P, are unbounded by design).
    for (Port p = 0; p < num_ports_; ++p) {
      for (int vc = 0; vc < V; ++vc) {
        const std::uint32_t occ =
            snap.occupancy[std::size_t(n) * in_units +
                           std::size_t(p) * std::size_t(V) + std::size_t(vc)];
        if (occ > std::uint32_t(snap.depth)) {
          std::ostringstream os;
          os << "buffer overflow: node " << n << " port " << p << " vc " << vc
             << " holds " << occ << " flits (depth " << snap.depth << ")";
          return fail(os.str());
        }
        // Credit conservation per link/VC: the upstream neighbor's credit
        // counter for the output VC feeding this buffer, plus the flits
        // sitting in the buffer, must equal the depth.
        const std::size_t link =
            std::size_t(n) * std::size_t(num_ports_) + std::size_t(p);
        const NodeId up = neighbor_[link];
        if (up == topo::kInvalidNode) continue;
        const Port up_port = reverse_port_[link];
        const std::int32_t credits =
            snap.credits[std::size_t(up) * out_units +
                         std::size_t(up_port) * std::size_t(V) +
                         std::size_t(vc)];
        if (credits < 0 || std::uint32_t(credits) + occ !=
                               std::uint32_t(snap.depth)) {
          std::ostringstream os;
          os << "credit conservation: link " << up << "->" << n << " vc "
             << vc << " has " << credits << " credits + " << occ
             << " buffered != depth " << snap.depth;
          return fail(os.str());
        }
      }
    }
  }
  return true;
}

std::uint64_t WormholeNetwork::injection_backlog() const {
  std::uint64_t total = 0;
  const int V = total_vcs();
  if (soa_units_ != 0) {
    for (const core::RingBuffer<Flit>& q : inj_buf_) total += q.size();
    return total;
  }
  for (const NodeState& node : nodes_) {
    for (int vc = 0; vc < V; ++vc) {
      total += node.in[std::size_t(num_ports_) * std::size_t(V) +
                       std::size_t(vc)]
                   .buffer.size();
    }
  }
  return total;
}

// --------------------------------------------------------------------------
// Reference engine (object graph). Kept verbatim as the semantic oracle:
// the SoA engine below must reproduce its delivery evidence and telemetry
// byte for byte (tests/test_wormhole.cpp pins it).
// --------------------------------------------------------------------------

DDPM_HOT void WormholeNetwork::return_credit(NodeId node, int in_port,
                                             int vc) {
  if (DDPM_MODEL_MUTATION(kDropCreditReturn)) return;  // seeded bug
  if (in_port == injection_port()) return;  // injection queue is unbounded
  const std::size_t link = std::size_t(node) * std::size_t(num_ports_) +
                           std::size_t(in_port);
  const NodeId upstream = neighbor_[link];
  const Port up_port = reverse_port_[link];
  OutputVc& out = output_vc(upstream, up_port, vc);
  if (out.credits < config_.buffer_flits) ++out.credits;
}

DDPM_HOT bool WormholeNetwork::allocate(NodeId node, int in_port,
                                        InputVc& vc) {
  const Flit& head = vc.buffer.front();
  pkt::Packet& packet = pkt_pool_[head.pkt];
  const Port arrived_on =
      in_port == injection_port() ? route::kLocalPort : Port(in_port);

  // Hop budget: a packet whose TTL expires is consumed silently (the
  // discard path in switch_allocation). With minimal adaptive candidates
  // this cannot trigger; it is the safety net the walker and the
  // store-and-forward switch also have.
  if (packet.header.ttl() == 0) {
    vc.active = true;
    vc.out_port = -2;  // discard sink
    vc.out_vc = -1;
    return true;
  }

  // 1. Adaptive VCs on any productive port: pick the (port, vc) with the
  //    most downstream credits (congestion-aware), first-wins on ties.
  //    Fast path: replay the precomputed candidate mask in ascending port
  //    order (verified identical to the router's order at construction).
  Port best_port = -1;
  int best_vc = -1;
  int best_credits = 0;
  if (!cand_mask_.empty()) {
    std::uint32_t mask = cand_mask_[std::size_t(node) * std::size_t(num_nodes_) +
                                    std::size_t(packet.dest_node)];
    while (mask != 0) {
      const Port p = Port(__builtin_ctz(mask));
      mask &= mask - 1;
      for (int v = escape_vcs_; v < total_vcs(); ++v) {
        const OutputVc& out = output_vc(node, p, v);
        if (!out.allocated && out.credits > best_credits) {
          best_credits = out.credits;
          best_port = p;
          best_vc = v;
        }
      }
    }
  } else {
    // Cold fallback (tables disabled or over budget): the per-flit virtual
    // dispatch and candidate-vector allocation this branch performs are
    // exactly what the tables remove.
    const auto candidates = router_.candidates(  // ddpm-analyze: allow(hot-no-virtual)
        node, packet.dest_node, arrived_on);
    for (Port p : candidates) {
      for (int v = escape_vcs_; v < total_vcs(); ++v) {
        const OutputVc& out = output_vc(node, p, v);
        if (!out.allocated && out.credits > best_credits) {
          best_credits = out.credits;
          best_port = p;
          best_vc = v;
        }
      }
    }
  }

  // 2. Escape layer: dimension-order port, dateline-disciplined VC class.
  std::uint8_t next_class = head.escape_class;
  if (best_port < 0 &&
      (config_.disable_escape || DDPM_MODEL_MUTATION(kSkipEscapeFallback))) {
    probes_.on_alloc_stall();
    return false;  // no escape lanes: wait (possibly forever — deadlock)
  }
  if (best_port < 0) {
    Port p = -1;
    if (!escape_port_.empty()) {
      p = escape_port_[std::size_t(node) * std::size_t(num_nodes_) +
                       std::size_t(packet.dest_node)];
      if (p < 0) return false;  // only possible if already at dest
    } else {
      // escape_router_ is a concrete member (no virtual dispatch here);
      // the vector it returns is the cost the escape_port_ table removes.
      const auto escape =
          escape_router_.candidates(node, packet.dest_node, arrived_on);
      if (escape.empty()) return false;  // only possible if already at dest
      p = escape.front();
    }
    if (escape_vcs_ > 1) {
      // Torus dateline: entering a new dimension resets the class; taking
      // the wraparound link (precomputed wrap_link_) promotes it.
      const std::size_t dim = std::size_t(p / 2);
      bool same_dim_as_arrival = false;
      if (arrived_on != route::kLocalPort) {
        same_dim_as_arrival = (std::size_t(arrived_on / 2) == dim);
      }
      if (!same_dim_as_arrival) next_class = 0;
      if (wrap_link_[std::size_t(node) * std::size_t(num_ports_) +
                     std::size_t(p)] != 0) {
        next_class = 1;  // wrap crossing
      }
    }
    const int v = int(next_class);
    const OutputVc& out = output_vc(node, p, v);
    if (out.allocated || out.credits == 0) {
      (out.allocated ? probes_.on_alloc_stall() : probes_.on_credit_stall());
      return false;  // wait
    }
    best_port = p;
    best_vc = v;
  }

  // Claim the output VC; run TTL + marking once per switch, exactly at the
  // post-routing point Figure 4 prescribes.
  output_vc(node, best_port, best_vc).allocated = true;
  probes_.on_vc_alloc();
  vc.active = true;
  vc.out_port = best_port;
  vc.out_vc = best_vc;
  const NodeId next = neighbor_[std::size_t(node) * std::size_t(num_ports_) +
                                std::size_t(best_port)];
  packet.header.decrement_ttl();
  // Scheme polymorphism is the experiment's independent variable — the
  // one virtual call the hot path keeps, by design.
  if (scheme_ != nullptr) scheme_->on_forward(packet, node, next);  // ddpm-analyze: allow(hot-no-virtual)
  ++packet.hops;
  // Path tracing is opt-in (trace seeded non-empty) and bounded by TTL.
  if (!packet.trace.empty()) packet.trace.push_back(next);  // ddpm-analyze: allow(hot-no-alloc)
  // Record the downstream escape class on the (future) head flit.
  vc.buffer.front().escape_class = next_class;
  return true;
}

DDPM_HOT void WormholeNetwork::eject(NodeId node, InputVc& vc) {
  // Consume every buffered flit of the packet being ejected this cycle
  // (infinite ejection bandwidth, a standard simulator simplification).
  while (!vc.buffer.empty()) {
    Flit flit = std::move(vc.buffer.front());
    vc.buffer.pop_front();
    --flits_in_flight_;
    --node_flits_[node];
    ++progress_marker_;
    const bool tail = flit.tail;
    if (tail) {
      vc.active = false;
      if (vc.out_port == -2) {
        ++dropped_ttl_;
      } else {
        pkt_pool_[flit.pkt].delivered_at = cycle_;
        ++delivered_;
        probes_.on_delivered();
        if (hook_) hook_(std::move(pkt_pool_[flit.pkt]), node);
      }
      pkt_free_.push_back(flit.pkt);  // tail is the packet's last use
      vc.out_port = -1;
      return;
    }
  }
}

DDPM_HOT void WormholeNetwork::switch_allocation(NodeId node) {
  NodeState& state = nodes_[node];
  const int V = total_vcs();
  const int in_units = (num_ports_ + 1) * V;

  // VC allocation + ejection/discard for heads at buffer fronts.
  for (int unit = 0; unit < in_units; ++unit) {
    InputVc& vc = state.in[std::size_t(unit)];
    if (vc.buffer.empty()) continue;
    const int in_port = int(unit_port_[std::size_t(unit)]);
    const int in_vc = int(unit_vc_[std::size_t(unit)]);
    if (!vc.active) {
      const Flit& front = vc.buffer.front();
      if (!front.head) continue;  // body flits of an ejected/advancing head
      if (pkt_pool_[front.pkt].dest_node == node) {
        // Local delivery path: consume and credit.
        const std::size_t consumed = vc.buffer.size();
        vc.out_port = -1;
        vc.active = true;  // occupy until tail passes
        eject(node, vc);
        for (std::size_t i = 0; i < consumed - vc.buffer.size(); ++i) {
          return_credit(node, in_port, in_vc);
        }
        continue;
      }
      if (!allocate(node, in_port, vc)) continue;
    }
    if (vc.active && (vc.out_port == -1 || vc.out_port == -2)) {
      // Ejection or discard in progress: keep consuming arrivals.
      const std::size_t before = vc.buffer.size();
      eject(node, vc);
      for (std::size_t i = 0; i < before - vc.buffer.size(); ++i) {
        return_credit(node, in_port, in_vc);
      }
    }
  }

  // Switch traversal: each output port forwards at most one flit.
  for (Port out_port = 0; out_port < num_ports_; ++out_port) {
    std::size_t& rr = state.rr[std::size_t(out_port)];
    std::size_t unit = rr;  // wraps by conditional subtract, never %
    for (int probe = 0; probe < in_units;
         ++probe, unit = (unit + 1 == std::size_t(in_units)) ? 0 : unit + 1) {
      InputVc& vc = state.in[unit];
      if (!vc.active || vc.out_port != out_port || vc.buffer.empty()) continue;
      OutputVc& out = output_vc(node, out_port, vc.out_vc);
      if (out.credits == 0 && !DDPM_MODEL_MUTATION(kBufferOffByOne)) {
        probes_.on_credit_stall();
        continue;
      }
      probes_.on_flit_forward();
      probes_.on_buffer_sample(vc.buffer.size());
      Flit flit = std::move(vc.buffer.front());
      vc.buffer.pop_front();
      --node_flits_[node];
#if defined(DDPM_MODEL_MUTATIONS)
      // Under the off-by-one mutation the sender "knows" about one slot
      // that does not exist; clamp so the counter models that belief
      // rather than underflowing.
      if (out.credits > 0) --out.credits;
#else
      --out.credits;
#endif
      const int in_port = int(unit_port_[unit]);
      const int in_vc = int(unit_vc_[unit]);
      return_credit(node, in_port, in_vc);
      const std::size_t link = std::size_t(node) * std::size_t(num_ports_) +
                               std::size_t(out_port);
      const NodeId next = neighbor_[link];
      const int next_in_port = reverse_port_[link];
      if (flit.tail) {
        out.allocated = false;
        vc.active = false;
        vc.out_port = -1;
      }
      staged_.push_back(Staged{next, next_in_port, vc.out_vc,
                               std::move(flit)});
      rr = (unit + 1 == std::size_t(in_units)) ? 0 : unit + 1;
      break;  // one flit per output port per cycle
    }
  }
}

DDPM_HOT void WormholeNetwork::step_ref() {
  const NodeId n_nodes = NodeId(num_nodes_);
  for (NodeId node = 0; node < n_nodes; ++node) {
    // A node with no buffered flits has no allocation, traversal, or
    // ejection work: skipping it is observationally identical (no probes
    // fire, no round-robin pointer moves on an all-empty switch).
    if (node_flits_[node] == 0) continue;
    switch_allocation(node);
  }
  progress_marker_ += staged_.size();
  for (Staged& s : staged_) {
    ++node_flits_[s.node];
    input_vc(s.node, s.in_port, s.vc).buffer.push_back(std::move(s.flit));
  }
  staged_.clear();
}

// --------------------------------------------------------------------------
// SoA engine. Same cycle semantics, driven by bitmasks: the allocation
// pass walks the occupancy mask (one ctz per occupied unit), traversal
// arbitration walks req & occ rotated to the round-robin pointer, and the
// node loop walks the two-level active bitmap — everything in the same
// ascending order the reference engine's full scans observe, so probes
// fire and credits move identically.
// --------------------------------------------------------------------------

DDPM_HOT void WormholeNetwork::soa_eject(NodeId node, int unit) {
  const std::size_t g = std::size_t(node) * std::size_t(soa_units_) +
                        std::size_t(unit);
  UnitCtl& ctl = soa_in_[g];
  while (soa_qsize(node, unit, ctl) > 0) {
    const Flit flit = soa_qfront(node, unit, ctl);
    soa_qpop(node, unit, ctl);
    --flits_in_flight_;
    ++progress_marker_;
    if (flit.tail) {
      ctl.active = 0;
      if (ctl.out_port == -2) {
        ++dropped_ttl_;
      } else {
        pkt_pool_[flit.pkt].delivered_at = cycle_;
        ++delivered_;
        probes_.on_delivered();
        if (hook_) hook_(std::move(pkt_pool_[flit.pkt]), node);
      }
      pkt_free_.push_back(flit.pkt);  // tail is the packet's last use
      ctl.out_port = -1;
      break;
    }
  }
  if (soa_qsize(node, unit, ctl) == 0) soa_note_empty(node, unit);
}

DDPM_HOT bool WormholeNetwork::soa_allocate(NodeId node, int in_port,
                                            int unit) {
  const std::size_t g = std::size_t(node) * std::size_t(soa_units_) +
                        std::size_t(unit);
  UnitCtl& ctl = soa_in_[g];
  const Flit& head = soa_qfront(node, unit, ctl);
  pkt::Packet& packet = pkt_pool_[head.pkt];
  const Port arrived_on =
      in_port == injection_port() ? route::kLocalPort : Port(in_port);

  if (packet.header.ttl() == 0) {
    ctl.active = 1;
    ctl.out_port = -2;  // discard sink
    ctl.out_vc = -1;
    ctl.out_slot = -1;
    return true;
  }

  Port best_port = -1;
  int best_vc = -1;
  int best_credits = 0;
  if (!cand_mask_.empty()) {
    std::uint32_t mask = cand_mask_[std::size_t(node) * std::size_t(num_nodes_) +
                                    std::size_t(packet.dest_node)];
    while (mask != 0) {
      const Port p = Port(__builtin_ctz(mask));
      mask &= mask - 1;
      for (int v = escape_vcs_; v < total_vcs(); ++v) {
        const OutCtl& out = soa_out_[soa_out_index(node, p, v)];
        if (out.allocated == 0 && int(out.credits) > best_credits) {
          best_credits = int(out.credits);
          best_port = p;
          best_vc = v;
        }
      }
    }
  } else {
    // Cold fallback (tables disabled or over budget), same as the
    // reference engine's.
    const auto candidates = router_.candidates(  // ddpm-analyze: allow(hot-no-virtual)
        node, packet.dest_node, arrived_on);
    for (Port p : candidates) {
      for (int v = escape_vcs_; v < total_vcs(); ++v) {
        const OutCtl& out = soa_out_[soa_out_index(node, p, v)];
        if (out.allocated == 0 && int(out.credits) > best_credits) {
          best_credits = int(out.credits);
          best_port = p;
          best_vc = v;
        }
      }
    }
  }

  std::uint8_t next_class = head.escape_class;
  if (best_port < 0 &&
      (config_.disable_escape || DDPM_MODEL_MUTATION(kSkipEscapeFallback))) {
    probes_.on_alloc_stall();
    return false;
  }
  if (best_port < 0) {
    Port p = -1;
    if (!escape_port_.empty()) {
      p = escape_port_[std::size_t(node) * std::size_t(num_nodes_) +
                       std::size_t(packet.dest_node)];
      if (p < 0) return false;  // only possible if already at dest
    } else {
      const auto escape =
          escape_router_.candidates(node, packet.dest_node, arrived_on);
      if (escape.empty()) return false;  // only possible if already at dest
      p = escape.front();
    }
    if (escape_vcs_ > 1) {
      const std::size_t dim = std::size_t(p / 2);
      bool same_dim_as_arrival = false;
      if (arrived_on != route::kLocalPort) {
        same_dim_as_arrival = (std::size_t(arrived_on / 2) == dim);
      }
      if (!same_dim_as_arrival) next_class = 0;
      if (wrap_link_[std::size_t(node) * std::size_t(num_ports_) +
                     std::size_t(p)] != 0) {
        next_class = 1;  // wrap crossing
      }
    }
    const int v = int(next_class);
    const OutCtl& out = soa_out_[soa_out_index(node, p, v)];
    if (out.allocated != 0 || out.credits == 0) {
      (out.allocated != 0 ? probes_.on_alloc_stall()
                          : probes_.on_credit_stall());
      return false;  // wait
    }
    best_port = p;
    best_vc = v;
  }

  const std::size_t slot = soa_out_index(node, best_port, best_vc);
  soa_out_[slot].allocated = 1;
  probes_.on_vc_alloc();
  ctl.active = 1;
  ctl.out_port = std::int16_t(best_port);
  ctl.out_vc = std::int8_t(best_vc);
  ctl.out_slot = std::int32_t(slot);
  req_[std::size_t(node) * std::size_t(num_ports_) + std::size_t(best_port)] |=
      (std::uint64_t(1) << unsigned(unit));
  const NodeId next = neighbor_[std::size_t(node) * std::size_t(num_ports_) +
                                std::size_t(best_port)];
  packet.header.decrement_ttl();
  if (scheme_ != nullptr) scheme_->on_forward(packet, node, next);  // ddpm-analyze: allow(hot-no-virtual)
  ++packet.hops;
  if (!packet.trace.empty()) packet.trace.push_back(next);  // ddpm-analyze: allow(hot-no-alloc)
  soa_qfront(node, unit, ctl).escape_class = next_class;
  return true;
}

DDPM_HOT void WormholeNetwork::soa_switch_allocation(NodeId node) {
  const std::size_t base = std::size_t(node) * std::size_t(soa_units_);

  // VC allocation + ejection/discard, over occupied units only. In-transit
  // units (out_port claimed == some req_ bit set) are provably no-ops in
  // this pass — the reference engine falls through both branches without
  // firing a probe — so they are masked out up front; what remains is
  // units awaiting allocation, ejection, or discard. The mask snapshot is
  // safe: this pass can only empty the unit it is processing, never
  // another unit at this node (and staged arrivals land after the full
  // node sweep), so snapshot == live set; emptiness is still re-checked
  // per unit like the reference engine does.
  const std::size_t rbase = std::size_t(node) * std::size_t(num_ports_);
  std::uint64_t transit = 0;
  for (Port p = 0; p < num_ports_; ++p) transit |= req_[rbase + std::size_t(p)];
  std::uint64_t occ = occ_[node] & ~transit;
  while (occ != 0) {
    const int unit = __builtin_ctzll(occ);
    occ &= occ - 1;
    UnitCtl& ctl = soa_in_[base + std::size_t(unit)];
    if (soa_qsize(node, unit, ctl) == 0) continue;
    if (ctl.active == 0) {
      const Flit& front = soa_qfront(node, unit, ctl);
      if (!front.head) continue;  // body flits of an ejected/advancing head
      if (pkt_pool_[front.pkt].dest_node == node) {
        const std::size_t consumed = soa_qsize(node, unit, ctl);
        ctl.out_port = -1;
        ctl.active = 1;  // occupy until tail passes
        soa_eject(node, unit);
        for (std::size_t i = 0; i < consumed - soa_qsize(node, unit, ctl);
             ++i) {
          soa_return_credit(base + std::size_t(unit));
        }
        continue;
      }
      if (!soa_allocate(node, int(unit_port_[std::size_t(unit)]), unit)) {
        continue;
      }
    }
    if (ctl.active != 0 && (ctl.out_port == -1 || ctl.out_port == -2)) {
      const std::size_t before = soa_qsize(node, unit, ctl);
      soa_eject(node, unit);
      for (std::size_t i = 0; i < before - soa_qsize(node, unit, ctl); ++i) {
        soa_return_credit(base + std::size_t(unit));
      }
    }
  }

  // Switch traversal: each output port forwards at most one flit. The
  // candidate mask (active units routed to this port that hold a flit)
  // is rotated to the round-robin pointer, reproducing the reference
  // engine's wrap-around scan order — including the credit-stall probes
  // on skipped candidates.
  for (Port out_port = 0; out_port < num_ports_; ++out_port) {
    const std::size_t np = rbase + std::size_t(out_port);
    const std::uint64_t cand = req_[np] & occ_[node];
    if (cand == 0) continue;
    std::uint8_t& rr = soa_rr_[np];
    const std::uint64_t high =
        rr == 0 ? cand : (cand >> unsigned(rr)) << unsigned(rr);
    std::uint64_t part = high != 0 ? high : (cand ^ high);
    bool wrapped = (high == 0);
    while (part != 0) {
      const int unit = __builtin_ctzll(part);
      part &= part - 1;
      if (part == 0 && !wrapped) {
        part = cand ^ high;  // continue the scan below the pointer
        wrapped = true;
      }
      UnitCtl& ctl = soa_in_[base + std::size_t(unit)];
      OutCtl& out = soa_out_[std::size_t(ctl.out_slot)];
      if (out.credits == 0 && !DDPM_MODEL_MUTATION(kBufferOffByOne)) {
        probes_.on_credit_stall();
        continue;
      }
      probes_.on_flit_forward();
      probes_.on_buffer_sample(soa_qsize(node, unit, ctl));
      const Flit flit = soa_qfront(node, unit, ctl);
      soa_qpop(node, unit, ctl);
#if defined(DDPM_MODEL_MUTATIONS)
      // See the reference-engine traversal: model the sender's stale belief
      // without underflowing the counter.
      if (out.credits > 0) --out.credits;
#else
      --out.credits;
#endif
      soa_return_credit(base + std::size_t(unit));
      const LinkDst dst = link_dst_[np];
      if (flit.tail) {
        out.allocated = 0;
        ctl.active = 0;
        ctl.out_port = -1;
        req_[np] &= ~(std::uint64_t(1) << unsigned(unit));
      }
      soa_staged_.push_back(SoaStaged{
          dst.node, std::uint16_t(dst.unit_base + unsigned(ctl.out_vc)),
          flit});
      if (soa_qsize(node, unit, ctl) == 0) soa_note_empty(node, unit);
      rr = std::uint8_t(unit + 1 == soa_units_ ? 0 : unit + 1);
      break;  // one flit per output port per cycle
    }
  }
}

DDPM_HOT void WormholeNetwork::step_soa() {
  // Two-level active-node bitmap walk, ascending. Processing a node can
  // only clear ITS OWN bits (other nodes' occupancy moves via staged_,
  // which lands after the sweep), so word snapshots match the live set.
  for (std::size_t grp = 0; grp < group_mask_.size(); ++grp) {
    std::uint64_t gw = group_mask_[grp];
    while (gw != 0) {
      const std::size_t word = grp * 64 + std::size_t(__builtin_ctzll(gw));
      gw &= gw - 1;
      std::uint64_t nw = node_mask_[word];
      while (nw != 0) {
        const NodeId node = NodeId(word * 64 + std::size_t(__builtin_ctzll(nw)));
        nw &= nw - 1;
        soa_switch_allocation(node);
      }
    }
  }
  progress_marker_ += soa_staged_.size();
  // Arrivals always land on a switch unit (links feed ports 0..P-1), so
  // landing is a direct slab store: window base + (head + count) mod B.
  const std::size_t depth = std::size_t(config_.buffer_flits);
  for (const SoaStaged& s : soa_staged_) {
    UnitCtl& ctl = soa_in_[std::size_t(s.node) * std::size_t(soa_units_) +
                           std::size_t(s.unit)];
    std::size_t pos = std::size_t(ctl.qhead) + std::size_t(ctl.qcount);
    if (pos >= depth) pos -= depth;
    fbuf_[fbase(s.node, int(s.unit)) + pos] = s.flit;
    ++ctl.qcount;
    soa_note_push(s.node, int(s.unit));
  }
  soa_staged_.clear();
}

DDPM_HOT void WormholeNetwork::step() {
  const std::uint64_t before = progress_marker_;
  if (soa_units_ != 0) {
    step_soa();
  } else {
    step_ref();
  }
  ++cycle_;
  probes_.on_cycle(cycle_, flits_in_flight_);
  if (progress_marker_ == before && flits_in_flight_ > 0) {
    ++stall_cycles_;
  } else {
    stall_cycles_ = 0;
  }
}

void WormholeNetwork::run(std::uint64_t cycles) {
  for (std::uint64_t i = 0; i < cycles; ++i) step();
}

bool WormholeNetwork::drain(std::uint64_t max_cycles) {
  for (std::uint64_t i = 0; i < max_cycles; ++i) {
    if (flits_in_flight_ == 0) return true;
    if (deadlocked()) return false;  // no point burning cycles
    step();
  }
  return flits_in_flight_ == 0;
}

}  // namespace ddpm::wormhole
