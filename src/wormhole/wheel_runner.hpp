// Drives a WormholeNetwork as a periodic link-clock event on the
// simulation kernel — i.e. on the calendar-wheel event queue.
//
// The wormhole substrate is cycle-stepped; standalone harnesses call
// WormholeNetwork::run(). But scenario drivers that mix the flit model
// with event-driven machinery (attack onset timers, cluster-side traffic,
// measurement epochs) need the link clock to live on the same timeline as
// everything else. run_on_wheel() schedules the clock as one
// self-rescheduling event with a fixed period — exactly the regular
// cadence the wheel's bucket path handles in O(1), never touching its
// overflow heap (tests/test_event_wheel.cpp asserts this) — so a
// million-cycle run adds no O(log n) sift cost on top of the SoA engine's
// per-step work.
#pragma once

#include <cstdint>

#include "netsim/simulator.hpp"
#include "wormhole/wormhole.hpp"

namespace ddpm::wormhole {

/// Schedules `net`'s link clock on `sim` (first tick at now + tick_period,
/// then every tick_period) for `cycles` steps, and runs the simulator
/// until its queue drains or `until` passes. Interleaves correctly with
/// any other events already pending on `sim`. Returns the number of
/// events the simulator executed.
std::uint64_t run_on_wheel(
    netsim::Simulator& sim, WormholeNetwork& net, std::uint64_t cycles,
    netsim::SimTime tick_period,
    netsim::SimTime until = std::numeric_limits<netsim::SimTime>::max());

}  // namespace ddpm::wormhole
