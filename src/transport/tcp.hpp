// Connection-level TCP model: three-way handshake, data, FIN — enough to
// turn the SYN flood from a traffic statistic into an actual denial of
// service.
//
// The paper's §1 example: "TCP SYN flooding attack makes as many TCP
// half-open connections as the victim host is limited to receive" — the
// damage is REFUSED BENIGN CONNECTIONS, not link load. This workload
// module drives real handshakes over a ClusterNetwork:
//
//   client:  SYN  ->            server: backlog slot or refuse (RST-less
//            <- SYN+ACK                  drop, like a listen queue)
//            ACK, data x N ->
//            FIN ->                      completed
//
// Attack SYNs occupy backlog slots; their SYN+ACKs go to the spoofed
// address (backscatter — delivered to an innocent node or unroutable) and
// the slot holds until the handshake timeout. When the backlog is full,
// benign SYNs are refused: the paper's DoS condition, measurable as a
// service-level success rate.
//
// TcpWorkload owns the network's delivery hook; victim-side analyses
// (detectors, identifiers) attach through set_tap.
#pragma once

#include <map>
#include <set>
#include <optional>
#include <unordered_map>

#include "cluster/network.hpp"
#include "marking/scheme.hpp"

namespace ddpm::transport {

using topo::NodeId;

struct TcpConfig {
  /// New benign connections per tick per node (Poisson).
  double connection_rate_per_node = 0.00002;
  std::uint32_t data_packets = 4;
  std::uint32_t data_payload = 512;
  netsim::SimTime handshake_timeout = 50000;
  /// Per-server listen-backlog capacity (half-open slots). The knob the
  /// SYN flood exhausts.
  std::size_t server_backlog = 64;
  /// Client gives up waiting for SYN+ACK after this long.
  netsim::SimTime client_timeout = 100000;
  /// If set, every client dials this server (a cluster service node) —
  /// the configuration where a SYN flood against it is a full outage.
  /// kInvalidNode means clients pick servers uniformly.
  topo::NodeId fixed_server = topo::kInvalidNode;
  std::uint64_t seed = 1;
};

struct TcpStats {
  std::uint64_t attempted = 0;       // benign SYNs sent by clients
  std::uint64_t refused = 0;         // benign SYNs dropped: backlog full
  std::uint64_t established = 0;     // handshakes completed (benign)
  std::uint64_t completed = 0;       // full connections (data + FIN)
  std::uint64_t client_timeouts = 0; // clients that gave up
  std::uint64_t half_open_expired = 0;  // server slots reclaimed by timeout
  std::uint64_t attack_syns = 0;     // attack SYNs absorbed by servers
  std::uint64_t backscatter = 0;     // SYN+ACKs sent to spoofed addresses

  double benign_success_rate() const {
    return attempted ? double(completed) / double(attempted) : 0.0;
  }
};

class TcpWorkload {
 public:
  /// Claims `net`'s delivery hook. Call before net.start().
  TcpWorkload(cluster::ClusterNetwork& net, TcpConfig config);

  /// Schedules the client processes. Call once, before or after
  /// net.start() but before running.
  void start();

  /// Forwarded copy of every delivered packet (for detectors/identifiers).
  void set_tap(cluster::ClusterNetwork::DeliveryHook tap) {
    tap_ = std::move(tap);
  }

  const TcpStats& stats() const noexcept { return stats_; }

  /// Currently pending half-open slots at one server.
  std::size_t half_open(NodeId server) const;

  /// Two-stage reflection tracing (the constructive answer to ablation
  /// A7a). Reflector attacks bounce off innocent servers, so the marks on
  /// the backscatter name reflectors, not attackers — but each reflector
  /// DID receive the triggering SYN, whose own Marking Field names the
  /// zombie. With tracing enabled, every server records the identified
  /// origin of each incoming SYN, keyed by the node the SYN *claimed* to
  /// come from; `trace_reflection(victim)` then returns the true origins
  /// of all SYNs that impersonated the victim — the zombies.
  void enable_reflection_tracing(mark::SourceIdentifier* identifier) {
    syn_tracer_ = identifier;
  }
  std::vector<NodeId> trace_reflection(NodeId victim) const;

 private:
  struct ServerConn {
    NodeId client_node;  // where SYN+ACK goes (claimed source)
    netsim::SimTime opened;
    bool established = false;
  };
  struct ClientConn {
    NodeId server;
    std::uint32_t data_left;
    bool done = false;
  };

  void on_delivery(const pkt::Packet& packet, NodeId at);
  void handle_server(const pkt::Packet& packet, NodeId at);
  void handle_client(const pkt::Packet& packet, NodeId at);
  void open_connection(NodeId client);
  void schedule_client(NodeId client);
  void expire_half_open(NodeId server, netsim::SimTime now);

  pkt::Packet make_segment(NodeId from, NodeId to, std::uint8_t flags,
                           std::uint64_t conn, std::uint32_t payload);

  cluster::ClusterNetwork& net_;
  TcpConfig config_;
  netsim::Rng rng_;
  /// Mirrors TcpStats into the network's registry (tcp.* counters) so
  /// handshake outcomes appear in telemetry snapshots.
  telemetry::TcpProbes probes_;
  cluster::ClusterNetwork::DeliveryHook tap_;
  TcpStats stats_;
  std::uint64_t next_conn_ = 1;
  // server -> (connection id -> slot)
  std::unordered_map<NodeId, std::map<std::uint64_t, ServerConn>> servers_;
  // connection id -> client state
  std::unordered_map<std::uint64_t, ClientConn> clients_;
  // reflection tracing: claimed-source node -> true SYN origins seen
  mark::SourceIdentifier* syn_tracer_ = nullptr;
  std::unordered_map<NodeId, std::set<NodeId>> syn_origins_by_claimed_;
};

}  // namespace ddpm::transport
