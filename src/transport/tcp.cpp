#include "transport/tcp.hpp"

namespace ddpm::transport {

using pkt::tcpflags::kAck;
using pkt::tcpflags::kFin;
using pkt::tcpflags::kSyn;

TcpWorkload::TcpWorkload(cluster::ClusterNetwork& net, TcpConfig config)
    : net_(net), config_(config), rng_(config.seed ^ 0x7c9ULL) {
  probes_.bind(&net_.registry());
  net_.set_delivery_hook([this](const pkt::Packet& p, NodeId at) {
    on_delivery(p, at);
  });
}

void TcpWorkload::start() {
  if (config_.connection_rate_per_node <= 0.0) return;
  for (NodeId n = 0; n < net_.topology().num_nodes(); ++n) {
    schedule_client(n);
  }
}

void TcpWorkload::schedule_client(NodeId client) {
  const auto wait = netsim::SimTime(rng_.next_exponential(
                        config_.connection_rate_per_node)) + 1;
  net_.sim().schedule_in(wait, [this, client]() {
    open_connection(client);
    schedule_client(client);
  });
}

pkt::Packet TcpWorkload::make_segment(NodeId from, NodeId to,
                                      std::uint8_t flags, std::uint64_t conn,
                                      std::uint32_t payload) {
  pkt::Packet p;
  p.header = pkt::IpHeader(net_.addresses().address_of(from),
                           net_.addresses().address_of(to), pkt::IpProto::kTcp,
                           std::uint16_t(payload));
  p.header.set_ttl(net_.config().initial_ttl);
  p.true_source = from;
  p.dest_node = to;
  p.traffic = pkt::TrafficClass::kBenign;
  p.tcp_flags = flags;
  p.flow = conn;
  p.payload_bytes = payload;
  p.injected_at = net_.sim().now();
  return p;
}

void TcpWorkload::open_connection(NodeId client) {
  NodeId server;
  if (config_.fixed_server != topo::kInvalidNode) {
    server = config_.fixed_server;
    if (server == client) return;  // the service node dials nobody
  } else {
    // Pick a server other than ourselves.
    const NodeId n = net_.topology().num_nodes();
    server = NodeId(rng_.next_below(n - 1));
    if (server >= client) ++server;
  }
  const std::uint64_t conn = next_conn_++;
  clients_[conn] = ClientConn{server, config_.data_packets, false};
  ++stats_.attempted;
  probes_.on_syn_attempted();
  net_.inject(make_segment(client, server, kSyn, conn, 40), client);
  // Client-side give-up timer.
  net_.sim().schedule_in(config_.client_timeout, [this, conn]() {
    auto it = clients_.find(conn);
    if (it != clients_.end() && !it->second.done) {
      ++stats_.client_timeouts;
      probes_.on_client_timeout();
      clients_.erase(it);
    }
  });
}

void TcpWorkload::expire_half_open(NodeId server, netsim::SimTime now) {
  auto& table = servers_[server];
  for (auto it = table.begin(); it != table.end();) {
    if (!it->second.established &&
        it->second.opened + config_.handshake_timeout <= now) {
      ++stats_.half_open_expired;
      probes_.on_half_open_expired();
      it = table.erase(it);
    } else {
      ++it;
    }
  }
}

void TcpWorkload::on_delivery(const pkt::Packet& packet, NodeId at) {
  if (tap_) tap_(packet, at);
  if (packet.header.protocol() != pkt::IpProto::kTcp) return;
  if (packet.tcp_flags & kSyn) {
    if (packet.tcp_flags & kAck) {
      handle_client(packet, at);
    } else {
      handle_server(packet, at);
    }
    return;
  }
  // ACK / data / FIN all land at the server.
  handle_server(packet, at);
}

void TcpWorkload::handle_server(const pkt::Packet& packet, NodeId at) {
  const netsim::SimTime now = net_.sim().now();
  auto& table = servers_[at];
  if (packet.tcp_flags == kSyn) {
    expire_half_open(at, now);
    const bool attack = packet.is_attack();
    if (attack) {
      ++stats_.attack_syns;
      probes_.on_attack_syn();
    }
    // Reflection tracing: remember who actually sent this SYN, keyed by
    // whoever it claims to be. If that claimed node later reports a
    // backscatter flood, the recorded origins are the attackers.
    if (syn_tracer_ != nullptr) {
      const auto claimed_node =
          net_.addresses().node_of(packet.header.source());
      const auto origins = syn_tracer_->observe(packet, at);
      if (claimed_node && origins.size() == 1) {
        syn_origins_by_claimed_[*claimed_node].insert(origins.front());
      }
    }
    if (table.size() >= config_.server_backlog) {
      // Listen queue full: silently refuse (no RST in this model).
      if (!attack) {
        ++stats_.refused;
        probes_.on_refused();
      }
      return;
    }
    // The server answers whatever source the SYN *claims*. For spoofed
    // SYNs that is backscatter to an innocent (or unroutable) address.
    const auto claimed = net_.addresses().node_of(packet.header.source());
    ServerConn conn;
    conn.client_node = claimed.value_or(topo::kInvalidNode);
    conn.opened = now;
    table[packet.flow] = conn;
    if (!claimed.has_value()) {
      ++stats_.backscatter;  // unroutable spoof: nothing to send
      probes_.on_backscatter();
      return;
    }
    if (attack) {
      ++stats_.backscatter;
      probes_.on_backscatter();
    }
    net_.inject(make_segment(at, *claimed, kSyn | kAck, packet.flow, 40), at);
    return;
  }
  const auto it = table.find(packet.flow);
  if (it == table.end()) return;  // late segment for a reclaimed slot
  if (packet.tcp_flags == kAck && !it->second.established) {
    it->second.established = true;
    ++stats_.established;
    probes_.on_established();
    return;
  }
  if (packet.tcp_flags & kFin) {
    if (it->second.established) {
      ++stats_.completed;
      probes_.on_completed();
    }
    table.erase(it);
  }
  // Bare data segments need no server action in this model.
}

void TcpWorkload::handle_client(const pkt::Packet& packet, NodeId at) {
  // SYN+ACK. Backscatter from spoofed attack SYNs arrives at innocent
  // nodes that never opened the connection: they ignore it.
  const auto it = clients_.find(packet.flow);
  if (it == clients_.end() || it->second.done) return;
  ClientConn& conn = it->second;
  // Accept only the server we dialed (by its honest header address).
  if (net_.addresses().node_of(packet.header.source()) != conn.server) return;
  // Complete the handshake, stream the data, close.
  net_.inject(make_segment(at, conn.server, kAck, packet.flow, 40), at);
  for (std::uint32_t i = 0; i < conn.data_left; ++i) {
    net_.inject(make_segment(at, conn.server, 0, packet.flow,
                             config_.data_payload),
                at);
  }
  net_.inject(make_segment(at, conn.server, kFin, packet.flow, 40), at);
  conn.done = true;
}

std::vector<NodeId> TcpWorkload::trace_reflection(NodeId victim) const {
  const auto it = syn_origins_by_claimed_.find(victim);
  if (it == syn_origins_by_claimed_.end()) return {};
  std::vector<NodeId> out;
  for (const NodeId origin : it->second) {
    // A SYN whose marking-identified origin matches its claimed source is
    // honest traffic (the victim's own connections), not impersonation.
    if (origin != victim) out.push_back(origin);
  }
  return out;
}

std::size_t TcpWorkload::half_open(NodeId server) const {
  const auto it = servers_.find(server);
  if (it == servers_.end()) return 0;
  std::size_t count = 0;
  for (const auto& [conn, slot] : it->second) count += !slot.established;
  return count;
}

}  // namespace ddpm::transport
