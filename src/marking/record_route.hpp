// Record-route marking — the IP-option alternative the paper weighs and
// rejects (§4.2): "It would be possible to store the edge information in
// the IP additional option ... switches would have to check the IP option
// of every packet and then write marking information in the appropriate
// position. This large overhead is not preferable to high performance
// clusters."
//
// We implement it as a baseline so the rejection becomes a measurement:
// every switch appends its index to the packet's IPv4 record-route option.
// Identification is trivial (the first recorded entry IS the source
// switch) and exact — but each hop adds 4 wire bytes to every packet, the
// option space caps at 9 entries (RFC 791), and the per-hop work is a
// memory write into a variable-length structure instead of fixed-field
// arithmetic. bench_record_route quantifies the bandwidth/latency price;
// bench_switch_overhead has the per-operation cost.
#pragma once

#include "marking/scheme.hpp"

namespace ddpm::mark {

class RecordRouteScheme final : public MarkingScheme {
 public:
  /// RFC 791: the 40-byte option area holds at most 9 IPv4 addresses.
  static constexpr std::size_t kMaxEntries = 9;

  std::string name() const override { return "record-route"; }

  /// The source switch starts a fresh list (an attacker-seeded option is
  /// discarded, same trust model as DDPM's injection reset).
  void on_injection(pkt::Packet& packet, NodeId at) override {
    packet.route_option.clear();
    (void)at;
  }

  void on_forward(pkt::Packet& packet, NodeId current, NodeId) override {
    if (packet.route_option.size() < kMaxEntries) {
      packet.route_option.push_back(current);
    }
  }
};

/// Victim-side: the first recorded switch is the source. Exact whenever
/// the option was not attacker-seeded past the source switch, i.e. under
/// the same assumptions as every other scheme here.
class RecordRouteIdentifier final : public SourceIdentifier {
 public:
  explicit RecordRouteIdentifier(const topo::Topology& topo) : topo_(topo) {}

  std::string name() const override { return "record-route-id"; }

  std::vector<NodeId> observe(const pkt::Packet& packet, NodeId) override {
    if (packet.route_option.empty()) return {};
    const NodeId first = packet.route_option.front();
    if (!topo_.contains(first)) return {};
    return {first};
  }

 private:
  const topo::Topology& topo_;
};

}  // namespace ddpm::mark
