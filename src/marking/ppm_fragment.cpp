#include "marking/ppm_fragment.hpp"

#include <array>
#include <stdexcept>

namespace ddpm::mark {

std::uint32_t FragmentLayout::h22(std::uint32_t index) {
  std::uint64_t z = index + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return std::uint32_t(z) & ((1u << kHashBits) - 1u);
}

std::uint32_t FragmentLayout::word(topo::NodeId node) {
  return (std::uint32_t(node) << kHashBits) | h22(std::uint32_t(node));
}

std::uint8_t FragmentLayout::fragment_of(std::uint32_t word, int offset) {
  return std::uint8_t(word >> (unsigned(offset) * kFragmentBits));
}

bool FragmentLayout::supports(const topo::Topology& topo) {
  return topo.num_nodes() <= (1u << kIndexBits) &&
         topo.diameter() <= kMaxDistance;
}

FragmentPpmScheme::FragmentPpmScheme(const topo::Topology& topo,
                                     double marking_probability,
                                     std::uint64_t seed)
    : p_(marking_probability), rng_(seed) {
  if (!FragmentLayout::supports(topo)) {
    throw std::invalid_argument(
        "FragmentPpmScheme: needs <= 1024 nodes and diameter <= 31 (" +
        topo.spec() + ")");
  }
  if (p_ <= 0.0 || p_ > 1.0) {
    throw std::invalid_argument("FragmentPpmScheme: bad probability");
  }
}

void FragmentPpmScheme::on_forward(pkt::Packet& packet, NodeId current,
                                   NodeId /*next*/) {
  std::uint16_t field = packet.marking_field();
  if (rng_.next_bool(p_)) {
    const int offset = int(rng_.next_below(FragmentLayout::kFragments));
    field = pkt::write_unsigned(field, FragmentLayout::offset(),
                                std::uint16_t(offset));
    field = pkt::write_unsigned(field, FragmentLayout::distance(), 0);
    field = pkt::write_unsigned(
        field, FragmentLayout::fragment(),
        FragmentLayout::fragment_of(FragmentLayout::word(current), offset));
  } else {
    const int d = int(pkt::read_unsigned(field, FragmentLayout::distance()));
    if (d == 0) {
      // Complete the edge: XOR in our fragment at the stored offset.
      const int offset =
          int(pkt::read_unsigned(field, FragmentLayout::offset()));
      const auto mine =
          FragmentLayout::fragment_of(FragmentLayout::word(current), offset);
      field = pkt::write_unsigned(
          field, FragmentLayout::fragment(),
          std::uint16_t(pkt::read_unsigned(field, FragmentLayout::fragment()) ^
                        mine));
    }
    if (d < FragmentLayout::kMaxDistance) {
      field = pkt::write_unsigned(field, FragmentLayout::distance(),
                                  std::uint16_t(d + 1));
    }
  }
  packet.set_marking_field(field);
}

FragmentPpmIdentifier::FragmentPpmIdentifier(const topo::Topology& topo)
    : topo_(topo) {
  if (!FragmentLayout::supports(topo)) {
    throw std::invalid_argument("FragmentPpmIdentifier: topology unsupported");
  }
}

void FragmentPpmIdentifier::reset() {
  levels_.clear();
  unique_ = 0;
}

std::vector<NodeId> FragmentPpmIdentifier::observe(const pkt::Packet& packet,
                                                   NodeId victim) {
  const std::uint16_t field = packet.marking_field();
  const int level = int(pkt::read_unsigned(field, FragmentLayout::distance()));
  const int offset = int(pkt::read_unsigned(field, FragmentLayout::offset()));
  const auto fragment =
      std::uint8_t(pkt::read_unsigned(field, FragmentLayout::fragment()));
  if (levels_[level][std::size_t(offset)].insert(fragment).second) ++unique_;
  return origins(victim);
}

std::vector<NodeId> FragmentPpmIdentifier::origins(NodeId victim) const {
  // Walk levels from the victim outward; `prev` holds the verified chain
  // nodes one level closer to the victim.
  std::set<NodeId> prev;
  std::set<NodeId> result;
  int expected = 0;
  for (const auto& [level, sets] : levels_) {
    if (level != expected) break;  // gap: cannot chain deeper yet
    // All offsets must have at least one fragment, and the cross-product
    // must stay tractable.
    std::size_t combos = 1;
    bool complete = true;
    for (const auto& s : sets) {
      if (s.empty()) {
        complete = false;
        break;
      }
      combos *= s.size();
    }
    if (!complete || combos > kComboCap) break;
    std::set<NodeId> here;
    // Enumerate the cross-product of fragment choices.
    std::array<std::set<std::uint8_t>::const_iterator,
               FragmentLayout::kFragments>
        its{sets[0].begin(), sets[1].begin(), sets[2].begin(),
            sets[3].begin()};
    for (;;) {
      std::uint32_t w = 0;
      for (int o = 0; o < FragmentLayout::kFragments; ++o) {
        w |= std::uint32_t(*its[std::size_t(o)])
             << (unsigned(o) * FragmentLayout::kFragmentBits);
      }
      if (level == 0) {
        // Half-written mark: w must BE some neighbor's word.
        const NodeId a = NodeId(w >> FragmentLayout::kHashBits);
        if (topo_.contains(a) && FragmentLayout::word(a) == w &&
            topo_.port_to(a, victim).has_value()) {
          here.insert(a);
        }
      } else {
        // w = word(a) ^ word(b) for edge (a, b) with b one level closer.
        for (const NodeId b : prev) {
          const NodeId a =
              NodeId((w >> FragmentLayout::kHashBits) ^ std::uint32_t(b));
          if (!topo_.contains(a)) continue;
          const std::uint32_t expected_hash =
              (FragmentLayout::h22(std::uint32_t(a)) ^
               FragmentLayout::h22(std::uint32_t(b)));
          if ((w & ((1u << FragmentLayout::kHashBits) - 1u)) != expected_hash) {
            continue;
          }
          if (topo_.port_to(a, b).has_value()) here.insert(a);
        }
      }
      // Advance the odometer.
      int o = 0;
      for (; o < FragmentLayout::kFragments; ++o) {
        if (++its[std::size_t(o)] != sets[std::size_t(o)].end()) break;
        its[std::size_t(o)] = sets[std::size_t(o)].begin();
      }
      if (o == FragmentLayout::kFragments) break;
    }
    if (here.empty()) break;
    result = here;  // deepest fully-chained level's candidates
    prev = std::move(here);
    ++expected;
  }
  return std::vector<NodeId>(result.begin(), result.end());
}

}  // namespace ddpm::mark
