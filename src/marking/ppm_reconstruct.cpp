#include "marking/ppm_reconstruct.hpp"

#include <algorithm>
#include <bit>

namespace ddpm::mark {

PpmIdentifier::PpmIdentifier(const topo::Topology& topo, PpmVariant variant)
    : topo_(topo),
      variant_(variant),
      layout_(PpmLayout::for_topology(variant, topo)) {}

void PpmIdentifier::reset() {
  marks_by_level_.clear();
  unique_marks_ = 0;
}

std::vector<NodeId> PpmIdentifier::observe(const pkt::Packet& packet,
                                           NodeId victim) {
  const std::uint16_t field = packet.marking_field();
  const int level = int(pkt::read_unsigned(field, layout_.distance));
  RawMark mark{};
  mark.start = pkt::read_unsigned(field, layout_.start);
  switch (variant_) {
    case PpmVariant::kFullEdge:
      mark.aux = pkt::read_unsigned(field, layout_.end);
      break;
    case PpmVariant::kBitDiff:
      mark.aux = layout_.bitpos.width > 0
                     ? pkt::read_unsigned(field, layout_.bitpos)
                     : 0;
      break;
    case PpmVariant::kXor:
      mark.aux = 0;
      break;
  }
  if (level == 0) mark.aux = 0;  // end/bitpos are stale in half-written marks
  if (marks_by_level_[level].insert(mark).second) ++unique_marks_;
  return origins(victim);
}

std::vector<NodeId> PpmIdentifier::expand(const RawMark& mark, int level,
                                          const std::set<NodeId>& prev,
                                          NodeId victim) const {
  std::vector<NodeId> out;
  if (level == 0) {
    // Half-written mark: `start` is the last forwarding switch, which must
    // be a neighbor of the victim (map validation). For the XOR layout the
    // level-0 value is also the raw start index.
    const NodeId a = mark.start;
    if (!topo_.contains(a)) return out;
    if (topo_.port_to(a, victim).has_value()) out.push_back(a);
    return out;
  }
  switch (variant_) {
    case PpmVariant::kFullEdge: {
      const NodeId a = mark.start;
      const NodeId b = mark.aux;
      if (!topo_.contains(a) || !topo_.contains(b)) break;
      if (!topo_.port_to(a, b).has_value()) break;  // not a real edge: spoofed
      if (prev.count(b)) out.push_back(a);
      break;
    }
    case PpmVariant::kXor: {
      // Any edge (a, b) with a ^ b == value and b consistent below.
      for (const NodeId b : prev) {
        const NodeId a = NodeId(mark.start) ^ b;
        if (topo_.contains(a) && topo_.port_to(a, b).has_value()) {
          out.push_back(a);
        }
      }
      break;
    }
    case PpmVariant::kBitDiff: {
      const NodeId a = mark.start;
      if (!topo_.contains(a)) break;
      // Successor candidates: neighbors of `a` whose id differs from `a`
      // with the recorded lowest set bit.
      for (const NodeId b : topo_.neighbors(a)) {
        const NodeId diff = a ^ b;
        const unsigned pos = unsigned(std::countr_zero(diff));
        const unsigned stored_bits = layout_.bitpos.width;
        const unsigned masked =
            stored_bits >= 16 ? pos : (pos & ((1u << stored_bits) - 1u));
        if (masked == mark.aux && prev.count(b)) {
          out.push_back(a);
          break;
        }
      }
      break;
    }
  }
  return out;
}

std::vector<std::pair<NodeId, NodeId>> PpmIdentifier::chain_edges(
    NodeId victim) const {
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::set<NodeId> prev;
  int expected = 0;
  for (const auto& [level, marks] : marks_by_level_) {
    if (level != expected) break;
    std::set<NodeId> here;
    for (const RawMark& m : marks) {
      for (NodeId a : expand(m, level, prev, victim)) {
        here.insert(a);
        if (level == 0) {
          edges.emplace_back(a, victim);
        } else {
          // Record the (a, b) pairs this mark certifies.
          for (const NodeId b : prev) {
            const bool linked =
                variant_ == PpmVariant::kFullEdge
                    ? (NodeId(m.start) == a && NodeId(m.aux) == b)
                    : topo_.port_to(a, b).has_value();
            if (linked) edges.emplace_back(a, b);
          }
        }
      }
    }
    if (here.empty()) break;
    prev = std::move(here);
    ++expected;
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

std::vector<NodeId> PpmIdentifier::origins(NodeId victim) const {
  if (marks_by_level_.empty()) return {};
  // consistent[d]: nodes that can start a chain segment at level d.
  std::map<int, std::set<NodeId>> consistent;
  std::set<NodeId> prev;  // consistent set at level-1
  int expected = 0;
  for (const auto& [level, marks] : marks_by_level_) {
    if (level != expected) break;  // gap: deeper marks cannot chain yet
    std::set<NodeId>& here = consistent[level];
    for (const RawMark& m : marks) {
      for (NodeId a : expand(m, level, prev, victim)) here.insert(a);
    }
    if (here.empty()) {
      consistent.erase(level);
      break;
    }
    prev = here;
    ++expected;
  }
  if (consistent.empty()) return {};
  // Leaves: consistent starts with no deeper consistent mark pointing at
  // them (no level-(d+1) chain continues through them).
  std::vector<NodeId> leaves;
  for (const auto& [level, nodes] : consistent) {
    const auto next = consistent.find(level + 1);
    for (NodeId a : nodes) {
      bool continued = false;
      if (next != consistent.end()) {
        // A deeper chain continues through `a` if some consistent start at
        // level+1 is adjacent to `a` via an observed mark. Conservatively,
        // treat any consistent level+1 start adjacent to `a` as continuing.
        for (NodeId deeper : next->second) {
          if (topo_.port_to(deeper, a).has_value()) {
            continued = true;
            break;
          }
        }
      }
      if (!continued) leaves.push_back(a);
    }
  }
  std::sort(leaves.begin(), leaves.end());
  leaves.erase(std::unique(leaves.begin(), leaves.end()), leaves.end());
  return leaves;
}

}  // namespace ddpm::mark
