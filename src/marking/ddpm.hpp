// Deterministic Distance Packet Marking (paper §5, Figure 4) — the paper's
// contribution.
//
// Every switch adds the per-dimension coordinate difference of the hop it
// is about to take into the 16-bit Marking Field. Because the per-hop
// differences telescope, the accumulated vector V at any point equals
// (current − source) no matter which route the packet took — including
// non-minimal adaptive routes, torus wraparounds, and revisits. The
// destination D recovers the true source as S = D − V (mesh/torus) or
// S = D ⊕ V (hypercube) from a SINGLE packet, with no path knowledge.
//
// The telescoping argument also bounds the stored values: every component
// of V is a coordinate difference, hence within [-(k−1), k−1], so the codec
// never overflows mid-route if it can represent the final vector.
#pragma once

#include <cstdint>
#include <optional>

#include "marking/scheme.hpp"
#include "packet/marking_field.hpp"

namespace ddpm::mark {

/// Packs a signed displacement vector into the 16-bit Marking Field.
///
/// Mesh/torus: dimension d gets a two's-complement slice wide enough for
/// [-(k_d − 1), k_d − 1], i.e. ceil(log2 k_d) + 1 bits. Hypercube:
/// dimension d gets a single bit. Construction throws if the total exceeds
/// 16 bits; `required_bits` lets callers (and the Table 3 bench) probe the
/// limit without constructing.
class DdpmCodec {
 public:
  explicit DdpmCodec(const topo::Topology& topo);

  /// Total Marking Field bits DDPM needs for this topology.
  static int required_bits(const topo::Topology& topo);
  /// True iff the topology's displacement vectors fit in 16 bits.
  static bool fits(const topo::Topology& topo);

  /// Encodes a displacement vector. Throws std::range_error if any
  /// component exceeds its slice — which indicates a caller bug, since
  /// legal coordinate differences always fit (see file comment).
  std::uint16_t encode(const topo::Coord& v) const;

  /// Decodes the field back into a displacement vector.
  topo::Coord decode(std::uint16_t field) const;

  std::size_t num_dims() const noexcept { return slices_.size(); }
  bool is_hypercube() const noexcept { return hypercube_; }

  /// Bit slice assigned to dimension d — the verifier's hook for auditing
  /// the layout (contiguity, width sums) against the Table 3 bit budgets.
  const pkt::FieldSlice& slice(std::size_t d) const { return slices_.at(d); }

 private:
  std::vector<pkt::FieldSlice> slices_;  // one per dimension
  bool hypercube_;
};

/// Switch-side DDPM (Figure 4). Stateless apart from the codec; every
/// operation is an add/XOR plus a field repack — the basis of the paper's
/// §6.2 low-overhead claim.
class DdpmScheme final : public MarkingScheme {
 public:
  explicit DdpmScheme(const topo::Topology& topo)
      : topo_(topo), codec_(topo) {}

  std::string name() const override { return "ddpm"; }

  /// Figure 4: V := 0 when the packet enters its first switch.
  void on_injection(pkt::Packet& packet, NodeId at) override;

  /// Figure 4: V' := V + (Y − X); for the hypercube V' := V ⊕ (Y ⊕ X).
  void on_forward(pkt::Packet& packet, NodeId current, NodeId next) override;

  const DdpmCodec& codec() const noexcept { return codec_; }

 private:
  const topo::Topology& topo_;
  DdpmCodec codec_;
};

/// Victim-side DDPM: one packet, one answer.
class DdpmIdentifier final : public SourceIdentifier {
 public:
  explicit DdpmIdentifier(const topo::Topology& topo)
      : topo_(topo), codec_(topo) {}

  std::string name() const override { return "ddpm"; }

  /// Returns exactly one candidate: S = D − V (or D ⊕ V). Returns empty
  /// only if the decoded source lies outside the coordinate space, which
  /// cannot happen for packets marked by honest switches.
  std::vector<NodeId> observe(const pkt::Packet& packet, NodeId victim) override;

  /// Stateless helper for direct use: source from a (victim, marking field)
  /// pair.
  std::optional<NodeId> identify(NodeId victim, std::uint16_t field) const;

 private:
  const topo::Topology& topo_;
  DdpmCodec codec_;
};

}  // namespace ddpm::mark
