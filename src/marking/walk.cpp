#include "marking/walk.hpp"

namespace ddpm::mark {

WalkResult walk_packet(const topo::Topology& topo, const route::Router& router,
                       MarkingScheme* scheme, NodeId src, NodeId dst,
                       const WalkOptions& options,
                       std::uint16_t seed_marking_field) {
  WalkResult result;
  pkt::Packet& packet = result.packet;
  packet.true_source = src;
  packet.dest_node = dst;
  packet.header.set_ttl(options.initial_ttl);
  packet.set_marking_field(seed_marking_field);

  netsim::Rng rng(options.seed);
  route::StaticLinkState links(topo, options.failures);

  if (scheme != nullptr) scheme->on_injection(packet, src);

  NodeId current = src;
  route::Port arrived_on = route::kLocalPort;
  if (options.record_path) result.path.push_back(current);

  while (current != dst) {
    const auto port = router.select_output(current, dst, arrived_on, links, rng);
    if (!port) {
      result.outcome = WalkOutcome::kBlocked;
      return result;
    }
    if (packet.header.decrement_ttl() == 0) {
      result.outcome = WalkOutcome::kTtlExpired;
      return result;
    }
    const NodeId next = *topo.neighbor(current, *port);
    if (scheme != nullptr) scheme->on_forward(packet, current, next);
    ++result.hops;
    ++packet.hops;
    arrived_on = *topo.port_to(next, current);
    current = next;
    if (options.record_path) result.path.push_back(current);
  }
  result.outcome = WalkOutcome::kDelivered;
  return result;
}

}  // namespace ddpm::mark
