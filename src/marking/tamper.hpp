// Adversarial deployments of a marking scheme.
//
// The paper assumes "switches cannot be compromised" (§4.1) and defers
// incremental deployment ("a minimal set of trusted switches", §6.1) to
// future work. These decorators make both assumptions testable:
//
//   TamperingScheme    — a configured set of compromised switches corrupts
//                        the Marking Field after honest marking (random
//                        garbage, zeroing, or a fixed frame-up value).
//   PartialDeployment  — only a configured subset of switches runs the
//                        scheme at all; the rest forward untouched.
//
// Both wrap any MarkingScheme, so the same experiments run against DDPM,
// DPM and PPM (bench_compromised_switch, bench_partial_deployment).
#pragma once

#include <memory>
#include <unordered_set>

#include "marking/scheme.hpp"
#include "netsim/rng.hpp"

namespace ddpm::mark {

class TamperingScheme final : public MarkingScheme {
 public:
  enum class Action {
    kRandomize,  // overwrite the field with random bits
    kZero,       // clear the field
    kFrameUp,    // write a fixed value (e.g. an innocent node's signature)
  };

  TamperingScheme(std::unique_ptr<MarkingScheme> inner,
                  std::unordered_set<NodeId> compromised, Action action,
                  std::uint16_t frame_value = 0, std::uint64_t seed = 13)
      : inner_(std::move(inner)),
        compromised_(std::move(compromised)),
        action_(action),
        frame_value_(frame_value),
        rng_(seed) {}

  std::string name() const override {
    return (inner_ ? inner_->name() : std::string("none")) + "+tamper";
  }

  void on_injection(pkt::Packet& packet, NodeId at) override {
    if (inner_) inner_->on_injection(packet, at);
    tamper_if_compromised(packet, at);
  }

  void on_forward(pkt::Packet& packet, NodeId current, NodeId next) override {
    if (inner_) inner_->on_forward(packet, current, next);
    tamper_if_compromised(packet, current);
  }

  std::uint64_t tamper_count() const noexcept { return tampered_; }

 private:
  void tamper_if_compromised(pkt::Packet& packet, NodeId at) {
    if (compromised_.count(at) == 0) return;
    ++tampered_;
    switch (action_) {
      case Action::kRandomize:
        packet.set_marking_field(std::uint16_t(rng_.next_u64()));
        break;
      case Action::kZero:
        packet.set_marking_field(0);
        break;
      case Action::kFrameUp:
        packet.set_marking_field(frame_value_);
        break;
    }
  }

  std::unique_ptr<MarkingScheme> inner_;
  std::unordered_set<NodeId> compromised_;
  Action action_;
  std::uint16_t frame_value_;
  netsim::Rng rng_;
  std::uint64_t tampered_ = 0;
};

class PartialDeploymentScheme final : public MarkingScheme {
 public:
  PartialDeploymentScheme(std::unique_ptr<MarkingScheme> inner,
                          std::unordered_set<NodeId> deployed)
      : inner_(std::move(inner)), deployed_(std::move(deployed)) {}

  std::string name() const override {
    return (inner_ ? inner_->name() : std::string("none")) + "+partial";
  }

  void on_injection(pkt::Packet& packet, NodeId at) override {
    if (inner_ && deployed_.count(at)) inner_->on_injection(packet, at);
  }

  void on_forward(pkt::Packet& packet, NodeId current, NodeId next) override {
    if (inner_ && deployed_.count(current)) {
      inner_->on_forward(packet, current, next);
    }
  }

  bool is_deployed(NodeId node) const { return deployed_.count(node) != 0; }

 private:
  std::unique_ptr<MarkingScheme> inner_;
  std::unordered_set<NodeId> deployed_;
};

}  // namespace ddpm::mark
