// Probabilistic Packet Marking adapted to cluster interconnects
// (paper §2 and §4.2).
//
// Savage-style edge sampling: each forwarding switch, with probability p,
// overwrites the Marking Field with its own index and distance 0;
// otherwise, if the distance is 0 it completes the half-written edge and in
// any case increments the distance. A mark that survives to the victim
// therefore names an edge (start, start's successor) together with the hop
// count from the start switch, and the victim can stitch edges of adjacent
// distances into the attack path.
//
// Three field layouts, matching the paper's scalability discussion:
//   * full edge   [start | end | distance]        — Table 1 limits
//   * XOR         [start XOR end | distance]      — ambiguous (§4.2)
//   * bit-diff    [start | bitpos | distance]     — Table 2 limits
//
// Distance semantics in this implementation: a delivered mark's distance is
// the number of forwarding switches the packet traversed *after* the start
// switch (the destination's own switch delivers locally and does not mark).
// So distance 0 means "start is the last switch before the victim" and the
// end field of a distance-0 mark is stale and must be ignored.
#pragma once

#include <cstdint>
#include <optional>

#include "marking/scheme.hpp"
#include "netsim/rng.hpp"
#include "packet/marking_field.hpp"

namespace ddpm::mark {

enum class PpmVariant { kFullEdge, kXor, kBitDiff };

std::string to_string(PpmVariant variant);

/// Bit layout of one PPM variant over a given topology. `fits` is false
/// when the 16-bit field cannot hold the variant's record — the condition
/// Tables 1 and 2 tabulate.
struct PpmLayout {
  PpmVariant variant;
  pkt::FieldSlice start{};    // full-edge & bit-diff: start index; XOR: a XOR b
  pkt::FieldSlice end{};      // full-edge only
  pkt::FieldSlice bitpos{};   // bit-diff only
  pkt::FieldSlice distance{};
  int total_bits = 0;
  bool fits = false;

  static PpmLayout for_topology(PpmVariant variant, const topo::Topology& topo);

  /// Required bits as a pure function of node count and diameter, for the
  /// scalability tables.
  static int required_bits(PpmVariant variant, std::uint64_t num_nodes,
                           int diameter);

  int max_distance() const noexcept { return int(1u << distance.width) - 1; }
};

class PpmScheme final : public MarkingScheme {
 public:
  /// Throws std::invalid_argument if the layout does not fit in 16 bits
  /// (use PpmLayout::for_topology to probe first).
  PpmScheme(const topo::Topology& topo, PpmVariant variant,
            double marking_probability, std::uint64_t seed);

  std::string name() const override;

  // PPM has no injection behaviour: an Internet router never knows it is
  // the first hop, so the inherited no-op is the faithful choice. This also
  // means an attacker-seeded Marking Field survives until some switch
  // happens to re-mark — the known mark-spoofing weakness.

  void on_forward(pkt::Packet& packet, NodeId current, NodeId next) override;

  const PpmLayout& layout() const noexcept { return layout_; }
  double marking_probability() const noexcept { return p_; }

 private:
  const topo::Topology& topo_;
  PpmLayout layout_;
  double p_;
  netsim::Rng rng_;
};

/// Expected packets the victim must receive to reconstruct a path of
/// length d when each switch marks with probability p (paper §2, citing
/// Savage): ln(d) / (p (1-p)^{d-1}). The k-fragment form of the same bound
/// is k ln(kd) / (p (1-p)^{d-1}).
double ppm_expected_packets(int path_length, double p);
double ppm_expected_packets_fragmented(int path_length, double p, int fragments);

}  // namespace ddpm::mark
