#include "marking/factory.hpp"

#include <stdexcept>

#include "marking/ddpm.hpp"
#include "marking/dpm.hpp"
#include "marking/ppm.hpp"
#include "marking/ppm_fragment.hpp"

namespace ddpm::mark {

std::unique_ptr<MarkingScheme> make_scheme(const std::string& name,
                                           const topo::Topology& topo,
                                           double ppm_probability,
                                           std::uint64_t seed) {
  if (name == "none") return nullptr;
  if (name == "ddpm") return std::make_unique<DdpmScheme>(topo);
  if (name == "dpm") return std::make_unique<DpmScheme>();
  if (name == "ppm-full") {
    return std::make_unique<PpmScheme>(topo, PpmVariant::kFullEdge,
                                       ppm_probability, seed);
  }
  if (name == "ppm-xor") {
    return std::make_unique<PpmScheme>(topo, PpmVariant::kXor, ppm_probability,
                                       seed);
  }
  if (name == "ppm-fragment") {
    return std::make_unique<FragmentPpmScheme>(topo, ppm_probability, seed);
  }
  if (name == "ppm-bitdiff") {
    return std::make_unique<PpmScheme>(topo, PpmVariant::kBitDiff,
                                       ppm_probability, seed);
  }
  throw std::invalid_argument("make_scheme: unknown scheme '" + name + "'");
}

}  // namespace ddpm::mark
