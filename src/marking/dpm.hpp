// Deterministic Packet Marking adapted to cluster interconnects
// (paper §2 and §4.3, after Yaar et al.'s Pi).
//
// Every forwarding switch writes one bit — the low bit of a hash of its
// index (or of the (current, next) edge pair) — into the Marking Field at
// position TTL mod 16. Since every switch decrements TTL, consecutive
// switches write consecutive positions and a stable path leaves an
// (almost) unique 16-bit signature. The victim blocks traffic by signature.
//
// The paper's two criticisms are both reproduced faithfully:
//   * paths longer than 16 hops wrap around and overwrite the bits written
//     near the source, destroying exactly the information that identifies
//     it (§4.3);
//   * roughly half of a node's neighbors share its hash bit, and adaptive
//     routing gives one source many signatures, so the signature->source
//     map is ambiguous in both directions.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "marking/scheme.hpp"
#include "routing/router.hpp"

namespace ddpm::mark {

class DpmScheme final : public MarkingScheme {
 public:
  enum class HashInput {
    kSwitchIndex,  // the paper's running example: hash of the node index
    kEdgePair,     // Yaar's variant: hash of both endpoints of the edge
  };

  /// `bits_per_hop` generalizes to Yaar et al.'s Pi scheme (paper ref
  /// [20]): each switch writes b hash bits at position (TTL mod 16/b)*b.
  /// b = 1 is the paper's §4.3 description (16-hop window); b = 2 halves
  /// the window to 8 hops but quarters the per-hop collision probability.
  /// Must divide 16.
  explicit DpmScheme(HashInput input = HashInput::kSwitchIndex,
                     int bits_per_hop = 1);

  std::string name() const override {
    return bits_per_hop_ == 1 ? "dpm" : "pi-" + std::to_string(bits_per_hop_);
  }

  /// Hops before the marks wrap and overwrite: 16 / bits_per_hop.
  int window_hops() const noexcept { return 16 / bits_per_hop_; }

  // No injection behaviour: like PPM, DPM routers never reset the field,
  // so attacker-seeded bits in positions the path does not overwrite
  // survive to the victim.

  void on_forward(pkt::Packet& packet, NodeId current, NodeId next) override;

  /// The bit a switch writes (exposed for the signature trainer and tests).
  bool mark_bit(NodeId current, NodeId next) const noexcept;
  /// The b-bit value a switch writes (low bits of the hash).
  std::uint16_t mark_value(NodeId current, NodeId next) const noexcept;

  HashInput hash_input() const noexcept { return input_; }
  int bits_per_hop() const noexcept { return bits_per_hop_; }

 private:
  HashInput input_;
  int bits_per_hop_;
  // 16/b - 1, precomputed: every divisor of 16 is a power of two, so
  // TTL mod (16/b) is TTL & slot_mask_ — no divide on the marking path.
  unsigned slot_mask_;
};

/// Victim-side DPM. The victim is assumed to know the interconnect map and
/// the deterministic routing function (the Song-Perrig assumption the paper
/// cites), so it can precompute each candidate source's signature by
/// walking the deterministic route — that is the constructor's training
/// pass. `observe` then returns every source whose trained signature
/// matches the packet's Marking Field: one node when unique, several when
/// signatures collide, none when adaptive routing produced a signature the
/// training never saw.
class DpmIdentifier final : public SourceIdentifier {
 public:
  DpmIdentifier(const topo::Topology& topo, const route::Router& trained_route,
                NodeId victim, const DpmScheme& scheme,
                std::uint8_t initial_ttl = 64);

  std::string name() const override { return "dpm-id"; }

  std::vector<NodeId> observe(const pkt::Packet& packet, NodeId victim) override;

  /// Trained signature of a source (tests / ambiguity bench).
  std::uint16_t signature_of(NodeId source) const;

  /// Number of distinct trained signatures (diagnostic: collisions shrink
  /// this below num_nodes - 1).
  std::size_t distinct_signatures() const noexcept { return table_.size(); }

 private:
  NodeId victim_;
  std::unordered_map<std::uint16_t, std::vector<NodeId>> table_;
  std::vector<std::uint16_t> signature_by_source_;
};

}  // namespace ddpm::mark
