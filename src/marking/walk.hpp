// Lightweight packet walker: drives one packet from source to destination
// through (topology, router, marking scheme) without the full cluster
// simulator. Used by the DPM identifier's training pass, the Figure 3
// walk-through bench, and the routing/marking test suites.
//
// Per hop, in order (matching the cluster Switch):
//   1. the router picks the output port (blocked -> packet dies),
//   2. the switch decrements TTL (0 -> packet dies: livelock bound),
//   3. the marking scheme's on_forward runs with (current, next).
// The destination's switch delivers locally and neither decrements TTL nor
// marks.
#pragma once

#include <vector>

#include "marking/scheme.hpp"
#include "netsim/rng.hpp"
#include "routing/router.hpp"

namespace ddpm::mark {

struct WalkOptions {
  std::uint8_t initial_ttl = 64;
  const topo::LinkFailureSet* failures = nullptr;
  std::uint64_t seed = 1;
  bool record_path = true;
};

enum class WalkOutcome { kDelivered, kBlocked, kTtlExpired };

struct WalkResult {
  WalkOutcome outcome = WalkOutcome::kBlocked;
  pkt::Packet packet;
  std::vector<NodeId> path;  // visited nodes incl. endpoints (if recorded)
  int hops = 0;

  bool delivered() const noexcept { return outcome == WalkOutcome::kDelivered; }
};

/// Walks a fresh packet from `src` to `dst`. `scheme` may be null (pure
/// routing experiments). The packet's marking field starts at
/// `seed_marking_field` before injection, which lets tests model attackers
/// that pre-load the field.
WalkResult walk_packet(const topo::Topology& topo, const route::Router& router,
                       MarkingScheme* scheme, NodeId src, NodeId dst,
                       const WalkOptions& options = {},
                       std::uint16_t seed_marking_field = 0);

}  // namespace ddpm::mark
