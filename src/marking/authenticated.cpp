#include "marking/authenticated.hpp"

namespace ddpm::mark {

namespace {

std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

int ceil_log2_count(std::uint64_t v) {
  return v <= 1 ? 0 : int(std::bit_width(v - 1));
}

}  // namespace

std::uint64_t stamp_prf(std::uint64_t key, std::uint64_t flow) {
  return mix64(key ^ mix64(flow ^ 0x9e3779b97f4a7c15ULL));
}

std::uint64_t switch_key(std::uint64_t master_secret, NodeId node) {
  return mix64(master_secret ^ (std::uint64_t(node) << 32) ^ 0xa5c3ULL);
}

AuthenticatedStampScheme::AuthenticatedStampScheme(std::uint64_t num_nodes,
                                                   std::uint64_t master_secret)
    : num_nodes_(num_nodes),
      master_(master_secret),
      index_bits_(unsigned(std::max(1, ceil_log2_count(num_nodes)))) {
  if (index_bits_ > 12) {
    throw std::invalid_argument(
        "AuthenticatedStampScheme: fewer than 4 MAC bits would remain");
  }
}

std::uint16_t AuthenticatedStampScheme::stamp(NodeId source,
                                              std::uint64_t flow) const {
  const pkt::FieldSlice index_slice{mac_bits(), index_bits_};
  const pkt::FieldSlice mac_slice{0, mac_bits()};
  const auto mac = std::uint16_t(stamp_prf(switch_key(master_, source), flow) &
                                 ((1u << mac_bits()) - 1u));
  std::uint16_t field = 0;
  field = pkt::write_unsigned(field, index_slice, std::uint16_t(source));
  field = pkt::write_unsigned(field, mac_slice, mac);
  return field;
}

void AuthenticatedStampScheme::on_injection(pkt::Packet& packet, NodeId at) {
  packet.set_marking_field(stamp(at, packet.flow));
}

std::vector<NodeId> AuthenticatedStampIdentifier::observe(
    const pkt::Packet& packet, NodeId) {
  const pkt::FieldSlice index_slice{scheme_.mac_bits(), scheme_.index_bits()};
  const NodeId claimed =
      pkt::read_unsigned(packet.marking_field(), index_slice);
  if (claimed >= num_nodes_ ||
      scheme_.stamp(claimed, packet.flow) != packet.marking_field()) {
    ++rejected_;
    return {};
  }
  return {claimed};
}

}  // namespace ddpm::mark
