// Convenience constructors for marking schemes by name, used by the
// examples and the experiment configs:
//   "ddpm", "ppm-full", "ppm-xor", "ppm-bitdiff", "ppm-fragment", "dpm", "none"
#pragma once

#include <memory>
#include <string>

#include "marking/scheme.hpp"
#include "topology/topology.hpp"

namespace ddpm::mark {

/// Default Savage marking probability (1/25, the value his analysis uses).
inline constexpr double kDefaultPpmProbability = 0.04;

/// Builds a scheme by name; returns nullptr for "none". Throws
/// std::invalid_argument for unknown names or when the scheme cannot fit
/// its record into the 16-bit field on this topology.
std::unique_ptr<MarkingScheme> make_scheme(
    const std::string& name, const topo::Topology& topo,
    double ppm_probability = kDefaultPpmProbability, std::uint64_t seed = 1);

}  // namespace ddpm::mark
