// Analytical field-width requirements — the paper's Tables 1, 2 and 3.
//
// Each function answers: how many Marking Field bits does scheme X need on
// topology Y of a given size, and what is the largest cluster that fits in
// the 16-bit field? Widths use ceilings of logs (a field holds whole bits),
// which reproduces the paper's numbers at every power-of-two size.
//
// Note on Table 2: the paper's printed formula for the hypercube row
// ("2log2^n + ...") is inconsistent with its own maximum (2^8 nodes); the
// self-consistent reading — one node index + bit position + distance =
// n + 2*ceil(log2 n) bits — reproduces that maximum and is what we
// implement. See EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ddpm::mark {

enum class SchemeKind { kSimplePpm, kBitDiffPpm, kDdpm };

std::string to_string(SchemeKind kind);

/// Bits required on an n x n 2-D mesh or torus (their index and distance
/// widths coincide at the sizes the paper tabulates; we use the mesh
/// diameter 2n-2 for PPM distance fields, matching Table 1 at n = 8).
int required_bits_mesh2d(SchemeKind scheme, int n);

/// Bits required on an n-cube hypercube (2^n nodes).
int required_bits_hypercube(SchemeKind scheme, int n);

/// Largest power-of-two side n such that an n x n mesh/torus fits the
/// 16-bit Marking Field (the paper quotes powers of two).
int max_mesh2d_side(SchemeKind scheme);

/// Largest (not necessarily power-of-two) side that fits.
int max_mesh2d_side_exact(SchemeKind scheme);

/// Largest hypercube dimension n that fits.
int max_hypercube_dim(SchemeKind scheme);

/// One row of a scalability table, ready for printing.
struct ScalabilityRow {
  std::string topology;
  std::string formula;       // paper notation
  std::string max_cluster;   // e.g. "128 x 128 (16384 nodes)"
  std::uint64_t max_nodes;
};

/// The full table for a scheme: one mesh/torus row, one hypercube row —
/// the shape of the paper's Tables 1-3.
std::vector<ScalabilityRow> scalability_table(SchemeKind scheme);

}  // namespace ddpm::mark
