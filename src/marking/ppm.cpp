#include "marking/ppm.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace ddpm::mark {

namespace {

int ceil_log2_count(std::uint64_t v) {
  // Bits needed to index v distinct values (v >= 1).
  return v <= 1 ? 0 : int(std::bit_width(v - 1));
}

}  // namespace

std::string to_string(PpmVariant variant) {
  switch (variant) {
    case PpmVariant::kFullEdge: return "ppm-full";
    case PpmVariant::kXor: return "ppm-xor";
    case PpmVariant::kBitDiff: return "ppm-bitdiff";
  }
  return "ppm-unknown";
}

int PpmLayout::required_bits(PpmVariant variant, std::uint64_t num_nodes,
                             int diameter) {
  const int idx = ceil_log2_count(num_nodes);
  const int dist = ceil_log2_count(std::uint64_t(diameter) + 1);
  switch (variant) {
    case PpmVariant::kFullEdge:
      return 2 * idx + dist;
    case PpmVariant::kXor:
      return idx + dist;
    case PpmVariant::kBitDiff:
      return idx + ceil_log2_count(std::uint64_t(idx)) + dist;
  }
  return 0;
}

PpmLayout PpmLayout::for_topology(PpmVariant variant, const topo::Topology& topo) {
  PpmLayout l;
  l.variant = variant;
  const unsigned idx = unsigned(ceil_log2_count(topo.num_nodes()));
  const unsigned dist = unsigned(ceil_log2_count(std::uint64_t(topo.diameter()) + 1));
  unsigned offset = 0;
  auto put = [&offset](pkt::FieldSlice& s, unsigned width) {
    s = {offset, width};
    offset += width;
  };
  switch (variant) {
    case PpmVariant::kFullEdge:
      put(l.start, idx);
      put(l.end, idx);
      break;
    case PpmVariant::kXor:
      put(l.start, idx);
      break;
    case PpmVariant::kBitDiff:
      put(l.start, idx);
      put(l.bitpos, unsigned(ceil_log2_count(std::uint64_t(idx))));
      break;
  }
  put(l.distance, dist);
  l.total_bits = int(offset);
  l.fits = offset <= 16;
  return l;
}

PpmScheme::PpmScheme(const topo::Topology& topo, PpmVariant variant,
                     double marking_probability, std::uint64_t seed)
    : topo_(topo),
      layout_(PpmLayout::for_topology(variant, topo)),
      p_(marking_probability),
      rng_(seed) {
  if (!layout_.fits) {
    throw std::invalid_argument("PpmScheme: " + to_string(variant) +
                                " needs " + std::to_string(layout_.total_bits) +
                                " bits on " + topo.spec() +
                                ", Marking Field has 16");
  }
  if (p_ <= 0.0 || p_ > 1.0) {
    throw std::invalid_argument("PpmScheme: marking probability must be in (0,1]");
  }
}

std::string PpmScheme::name() const { return to_string(layout_.variant); }

void PpmScheme::on_forward(pkt::Packet& packet, NodeId current, NodeId /*next*/) {
  std::uint16_t field = packet.marking_field();
  if (rng_.next_bool(p_)) {
    // Fresh mark: this switch becomes the edge start, distance resets.
    // Whatever end/bitpos bits were there become stale; they are only
    // meaningful again once the next switch completes the edge.
    field = pkt::write_unsigned(field, layout_.start,
                                std::uint16_t(current));
    field = pkt::write_unsigned(field, layout_.distance, 0);
    probes_.on_mark();
  } else {
    const int d = int(pkt::read_unsigned(field, layout_.distance));
    if (d == 0) {
      // Complete the half-written edge.
      switch (layout_.variant) {
        case PpmVariant::kFullEdge:
          field = pkt::write_unsigned(field, layout_.end,
                                      std::uint16_t(current));
          break;
        case PpmVariant::kXor:
          field = pkt::write_unsigned(
              field, layout_.start,
              std::uint16_t(pkt::read_unsigned(field, layout_.start) ^
                            std::uint16_t(current)));
          break;
        case PpmVariant::kBitDiff: {
          const auto start = pkt::read_unsigned(field, layout_.start);
          const std::uint16_t diff =
              std::uint16_t(start ^ std::uint16_t(current));
          const unsigned pos =
              diff == 0 ? 0u : unsigned(std::countr_zero(diff));
          if (layout_.bitpos.width > 0) {
            field = pkt::write_unsigned(
                field, layout_.bitpos,
                std::uint16_t(pos & ((1u << layout_.bitpos.width) - 1u)));
          }
          break;
        }
      }
    }
    if (d < layout_.max_distance()) {
      field = pkt::write_unsigned(field, layout_.distance, std::uint16_t(d + 1));
    } else {
      // Distance field pegged at its ceiling: the recorded edge is now an
      // under-estimate of the true distance.
      probes_.on_saturation();
    }
  }
  packet.set_marking_field(field);
}

double ppm_expected_packets(int path_length, double p) {
  const double d = double(path_length);
  return std::log(d) / (p * std::pow(1.0 - p, d - 1.0));
}

double ppm_expected_packets_fragmented(int path_length, double p, int fragments) {
  const double d = double(path_length);
  const double k = double(fragments);
  return k * std::log(k * d) / (p * std::pow(1.0 - p, d - 1.0));
}

}  // namespace ddpm::mark
