// Packet-marking scheme interfaces (paper §2, §4, §5).
//
// A MarkingScheme is the switch-side half: it rewrites the 16-bit Marking
// Field as packets flow. A SourceIdentifier is the victim-side half: it
// consumes delivered packets and produces candidate source nodes. The two
// halves communicate only through the Marking Field — identifiers never see
// `Packet::true_source`, which exists purely so the evaluation harness can
// score them.
//
// on_injection runs at the source switch when a packet first arrives from
// the attached computing node; on_forward runs at every switch after the
// routing decision, with the chosen next hop — the ordering Figure 4
// prescribes, and the reason DDPM is agnostic to the routing algorithm.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "packet/packet.hpp"
#include "telemetry/probes.hpp"
#include "topology/topology.hpp"

namespace ddpm::mark {

using topo::NodeId;

class MarkingScheme {
 public:
  virtual ~MarkingScheme() = default;

  virtual std::string name() const = 0;

  /// Registers the scheme's telemetry series (`mark.applied` and
  /// `mark.field_saturations`, labelled `scheme=<name>`). Call once, after
  /// construction and before the simulation starts.
  void bind_telemetry(telemetry::Registry* registry) {
    probes_.bind(registry, name());
  }

  /// Source-switch hook. The default does nothing — faithful to the
  /// Internet schemes (PPM/DPM), where no router knows it is first on the
  /// path, which leaves them open to attacker-seeded marks. DDPM overrides
  /// this to zero the distance vector (Figure 4: "V is set to a zero vector
  /// when the packet first enters a switch from a computing node").
  virtual void on_injection(pkt::Packet&, NodeId) {}

  /// Per-hop hook, called after routing chose `next`.
  virtual void on_forward(pkt::Packet& packet, NodeId current, NodeId next) = 0;

 protected:
  // C.67: copying through a MarkingScheme handle would slice off the
  // derived scheme's tables. Derived classes stay copyable through their
  // own types; only base-handle copies are closed off.
  MarkingScheme() = default;
  MarkingScheme(const MarkingScheme&) = default;
  MarkingScheme& operator=(const MarkingScheme&) = default;

  /// Scheme implementations report through these hooks; inert until
  /// bind_telemetry(), and compiled out with DDPM_TELEMETRY=OFF.
  telemetry::MarkProbes probes_;
};

/// Victim-side analysis. `observe` ingests one delivered packet and returns
/// the scheme's current belief about that packet's origin:
///   * empty vector: no identification yet (PPM needs many packets)
///   * one node: unambiguous identification
///   * several nodes: ambiguous identification (DPM signature collisions)
class SourceIdentifier {
 public:
  virtual ~SourceIdentifier() = default;

  virtual std::string name() const = 0;

  virtual std::vector<NodeId> observe(const pkt::Packet& packet, NodeId victim) = 0;

  /// Drops accumulated state (new detection episode).
  virtual void reset() {}

 protected:
  // C.67: slicing an identifier through a base handle would drop its
  // accumulated reconstruction state mid-episode.
  SourceIdentifier() = default;
  SourceIdentifier(const SourceIdentifier&) = default;
  SourceIdentifier& operator=(const SourceIdentifier&) = default;
};

}  // namespace ddpm::mark
