// Ingress-Stamp Marking — the degenerate-but-powerful baseline.
//
// DDPM's Figure 4 gives the source's own switch a special role: it zeroes
// V when the packet "first enters a switch from a computing node". But a
// switch that knows it is first can do something much simpler: write its
// own index into the Marking Field and have every other switch leave it
// alone. Under the paper's trust model (switches cannot be compromised,
// §4.1) this identifies the source from one packet in ANY topology —
// direct, indirect, or irregular — using ceil(log2 N) <= 16 bits for up
// to 65536 nodes, beating DDPM's own Table 3 on the mesh.
//
// We implement it as an honest baseline and compare failure modes in
// bench_irregular and EXPERIMENTS.md: both schemes stand or fall with the
// same two assumptions (trusted switches; the source switch marks), so
// DDPM's real contribution is the coordinate arithmetic that *survives a
// missing ingress reset for in-network hops* — not extra security.
#pragma once

#include <bit>
#include <stdexcept>

#include "marking/scheme.hpp"

namespace ddpm::mark {

class IngressStampScheme final : public MarkingScheme {
 public:
  /// `num_nodes` only bounds the index width; throws if it needs > 16 bits.
  explicit IngressStampScheme(std::uint64_t num_nodes) {
    if (num_nodes > (1ull << 16)) {
      throw std::invalid_argument(
          "IngressStampScheme: node index needs more than 16 bits");
    }
  }

  std::string name() const override { return "ingress-stamp"; }

  /// The source switch stamps its index — the only marking action.
  void on_injection(pkt::Packet& packet, NodeId at) override {
    packet.set_marking_field(std::uint16_t(at));
  }

  /// In-network switches do not touch the field.
  void on_forward(pkt::Packet&, NodeId, NodeId) override {}
};

class IngressStampIdentifier final : public SourceIdentifier {
 public:
  explicit IngressStampIdentifier(std::uint64_t num_nodes)
      : num_nodes_(num_nodes) {}

  std::string name() const override { return "ingress-stamp-id"; }

  std::vector<NodeId> observe(const pkt::Packet& packet, NodeId) override {
    const NodeId named = packet.marking_field();
    if (named >= num_nodes_) return {};
    return {named};
  }

 private:
  std::uint64_t num_nodes_;
};

}  // namespace ddpm::mark
