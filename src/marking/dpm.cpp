#include "marking/dpm.hpp"

#include <stdexcept>

#include "marking/walk.hpp"
#include "packet/marking_field.hpp"

namespace ddpm::mark {

namespace {

std::uint64_t mix64(std::uint64_t z) noexcept {
  // SplitMix64 finalizer: a cheap, well-distributed hash.
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

DpmScheme::DpmScheme(HashInput input, int bits_per_hop)
    : input_(input), bits_per_hop_(bits_per_hop) {
  if (bits_per_hop < 1 || 16 % bits_per_hop != 0) {
    throw std::invalid_argument("DpmScheme: bits_per_hop must divide 16");
  }
  slot_mask_ = 16u / unsigned(bits_per_hop) - 1u;
}

std::uint16_t DpmScheme::mark_value(NodeId current, NodeId next) const noexcept {
  const std::uint64_t key =
      input_ == HashInput::kSwitchIndex
          ? std::uint64_t(current)
          : (std::uint64_t(current) << 32) | std::uint64_t(next);
  return std::uint16_t(mix64(key) & ((1u << bits_per_hop_) - 1u));
}

bool DpmScheme::mark_bit(NodeId current, NodeId next) const noexcept {
  return mark_value(current, next) & 1u;
}

void DpmScheme::on_forward(pkt::Packet& packet, NodeId current, NodeId next) {
  // The switch decremented TTL just before this hook (see walk.hpp and the
  // cluster Switch), so consecutive switches see consecutive TTL values and
  // write consecutive (b-bit) field positions.
  const unsigned position =
      (packet.header.ttl() & slot_mask_) * unsigned(bits_per_hop_);
  const pkt::FieldSlice slice{position, unsigned(bits_per_hop_)};
  packet.set_marking_field(pkt::write_unsigned(
      packet.marking_field(), slice, mark_value(current, next)));
  probes_.on_mark();
}

DpmIdentifier::DpmIdentifier(const topo::Topology& topo,
                             const route::Router& trained_route, NodeId victim,
                             const DpmScheme& scheme, std::uint8_t initial_ttl)
    : victim_(victim), signature_by_source_(topo.num_nodes(), 0) {
  if (!trained_route.is_deterministic()) {
    throw std::invalid_argument(
        "DpmIdentifier: training requires a deterministic route (the "
        "stable-route assumption DPM rests on)");
  }
  // Training pass: walk every candidate source's deterministic path and
  // record the signature it produces.
  DpmScheme trainer(scheme.hash_input(), scheme.bits_per_hop());
  WalkOptions options;
  options.initial_ttl = initial_ttl;
  options.record_path = false;
  for (NodeId s = 0; s < topo.num_nodes(); ++s) {
    if (s == victim) continue;
    const WalkResult walk =
        walk_packet(topo, trained_route, &trainer, s, victim, options);
    if (!walk.delivered()) continue;
    const std::uint16_t sig = walk.packet.marking_field();
    signature_by_source_[s] = sig;
    table_[sig].push_back(s);
  }
}

std::vector<NodeId> DpmIdentifier::observe(const pkt::Packet& packet,
                                           NodeId victim) {
  if (victim != victim_) return {};
  const auto it = table_.find(packet.marking_field());
  if (it == table_.end()) return {};
  return it->second;
}

std::uint16_t DpmIdentifier::signature_of(NodeId source) const {
  return signature_by_source_.at(source);
}

}  // namespace ddpm::mark
