// Victim-side PPM path reconstruction (paper §2, §4.2).
//
// The victim buckets received marks by distance and stitches them into
// chains: a level-d mark (start A, end B) is consistent if (A,B) is a real
// topology edge and B is a consistent start at level d-1. Level-0 starts
// must be neighbors of the victim. Chain "leaves" — consistent starts with
// no deeper consistent mark pointing at them — are the current origin
// candidates. With the full-edge layout and a stable route the unique leaf
// converges to the true source once every edge of the path has been
// sampled; the XOR and bit-difference layouts admit multiple (A,B) pairs
// per mark, which is precisely the reconstruction ambiguity §4.2 analyzes.
//
// The class follows the Song-Perrig assumption the paper cites: the victim
// has a complete map of the interconnect, so it can (and does) discard
// marks that name non-edges — the only defense PPM has against
// attacker-seeded marks.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "marking/ppm.hpp"
#include "marking/scheme.hpp"

namespace ddpm::mark {

class PpmIdentifier final : public SourceIdentifier {
 public:
  PpmIdentifier(const topo::Topology& topo, PpmVariant variant);

  std::string name() const override { return to_string(variant_) + "-id"; }

  /// Ingests the packet's mark and returns the current origin candidates
  /// (chain leaves). The candidate set evolves as marks accumulate; PPM has
  /// no single-packet answer.
  std::vector<NodeId> observe(const pkt::Packet& packet, NodeId victim) override;

  void reset() override;

  /// Unique marks collected so far (diagnostic).
  std::size_t unique_marks() const noexcept { return unique_marks_; }

  /// Current origin candidates without ingesting a packet.
  std::vector<NodeId> origins(NodeId victim) const;

  /// The chain edges currently consistent with the collected marks,
  /// oriented toward the victim as (from, to) pairs — the attack-path
  /// reconstruction an analyst would plot (analysis::AttackGraph). Only
  /// the full-edge layout yields unambiguous edges; the other variants
  /// return the edges compatible with their candidate sets.
  std::vector<std::pair<NodeId, NodeId>> chain_edges(NodeId victim) const;

 private:
  struct RawMark {
    std::uint16_t start;  // full/bit-diff: start index; XOR: a^b (or raw start at d=0)
    std::uint16_t aux;    // full: end index; bit-diff: bit position; XOR: unused
    bool operator<(const RawMark& o) const noexcept {
      return start < o.start || (start == o.start && aux < o.aux);
    }
  };

  /// Nodes that can be the level-d start given a mark and the level-(d-1)
  /// consistent set.
  std::vector<NodeId> expand(const RawMark& mark, int level,
                             const std::set<NodeId>& prev, NodeId victim) const;

  const topo::Topology& topo_;
  PpmVariant variant_;
  PpmLayout layout_;
  std::map<int, std::set<RawMark>> marks_by_level_;
  std::size_t unique_marks_ = 0;
};

}  // namespace ddpm::mark
