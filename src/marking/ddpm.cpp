#include "marking/ddpm.hpp"

#include <bit>
#include <stdexcept>

#include "core/check.hpp"
#include "core/hot_path.hpp"

namespace ddpm::mark {

namespace {

int ceil_log2(unsigned v) {
  // Smallest w with 2^w >= v (v >= 1).
  return v <= 1 ? 0 : std::bit_width(v - 1);
}

}  // namespace

DdpmCodec::DdpmCodec(const topo::Topology& topo)
    : hypercube_(topo.kind() == topo::TopologyKind::kHypercube) {
  const int total = required_bits(topo);
  if (total > 16) {
    throw std::invalid_argument(
        "DdpmCodec: displacement vector needs " + std::to_string(total) +
        " bits, Marking Field has 16 (" + topo.spec() + ")");
  }
  unsigned offset = 0;
  slices_.reserve(topo.num_dims());
  for (std::size_t d = 0; d < topo.num_dims(); ++d) {
    const unsigned width =
        hypercube_ ? 1u
                   : unsigned(ceil_log2(unsigned(topo.dim_size(d))) + 1);
    slices_.push_back({offset, width});
    offset += width;
  }
}

int DdpmCodec::required_bits(const topo::Topology& topo) {
  if (topo.kind() == topo::TopologyKind::kHypercube) {
    return int(topo.num_dims());
  }
  int total = 0;
  for (std::size_t d = 0; d < topo.num_dims(); ++d) {
    total += ceil_log2(unsigned(topo.dim_size(d))) + 1;
  }
  return total;
}

bool DdpmCodec::fits(const topo::Topology& topo) {
  return required_bits(topo) <= 16;
}

DDPM_HOT std::uint16_t DdpmCodec::encode(const topo::Coord& v) const {
  if (v.size() != slices_.size()) {
    // Cold precondition guard: per-hop callers feed encode() the vector
    // decode() just produced, whose size is fixed at construction.
    throw std::invalid_argument(  // ddpm-analyze: allow(hot-no-throw-io)
        "DdpmCodec::encode: dimensionality mismatch");
  }
  std::uint16_t field = 0;
  for (std::size_t d = 0; d < slices_.size(); ++d) {
    DDPM_DCHECK(slices_[d].valid(), "codec slice escaped the 16-bit field");
    if (hypercube_) {
      field = pkt::write_unsigned(field, slices_[d],
                                  static_cast<std::uint16_t>(v[d] & 1));
    } else {
      field = pkt::write_signed(field, slices_[d], v[d]);
    }
  }
  return field;
}

DDPM_HOT topo::Coord DdpmCodec::decode(std::uint16_t field) const {
  topo::Coord v(slices_.size());
  for (std::size_t d = 0; d < slices_.size(); ++d) {
    v[d] = static_cast<topo::Coord::value_type>(
        hypercube_ ? int(pkt::read_unsigned(field, slices_[d]))
                   : pkt::read_signed(field, slices_[d]));
  }
  return v;
}

void DdpmScheme::on_injection(pkt::Packet& packet, NodeId /*at*/) {
  packet.set_marking_field(codec_.encode(topo::Coord(topo_.num_dims())));
}

DDPM_HOT void DdpmScheme::on_forward(pkt::Packet& packet, NodeId current,
                                     NodeId next) {
  const topo::Coord v = codec_.decode(packet.marking_field());
  // Hypercube hops flip one coordinate bit, so the per-hop delta and the
  // accumulation are both XOR; elsewhere they are signed differences/sums.
  topo::Coord updated =
      codec_.is_hypercube()
          ? (v ^ (topo_.coord_of(next) ^ topo_.coord_of(current)))
          : (v + (topo_.coord_of(next) - topo_.coord_of(current)));
  // Honest fields can never leave the codec's range (telescoping bounds
  // every component by the coordinate span), but a compromised switch or
  // an un-reset attacker seed can push the sum to the slice boundary. A
  // switch must not fault on hostile input: saturate instead. A saturated
  // vector decodes to an out-of-range source at the victim, i.e. the
  // tampering is detected rather than silently misattributed.
  if (!codec_.is_hypercube()) {
    for (std::size_t d = 0; d < topo_.num_dims(); ++d) {
      const int span = topo_.dim_size(d) - 1;
      if (updated[d] > span || updated[d] < -span) probes_.on_saturation();
      if (updated[d] > span) updated[d] = topo::Coord::value_type(span);
      if (updated[d] < -span) updated[d] = topo::Coord::value_type(-span);
      // Post-saturation, every component fits its codec slice: the slice
      // holds [-2^(w-1), 2^(w-1)-1] with 2^(w-1) >= dim_size > span.
      DDPM_DCHECK(updated[d] >= -span && updated[d] <= span,
                  "displacement escaped saturation bounds");
    }
  }
  packet.set_marking_field(codec_.encode(updated));
  probes_.on_mark();
}

std::vector<NodeId> DdpmIdentifier::observe(const pkt::Packet& packet,
                                            NodeId victim) {
  if (auto src = identify(victim, packet.marking_field())) return {*src};
  return {};
}

std::optional<NodeId> DdpmIdentifier::identify(NodeId victim,
                                               std::uint16_t field) const {
  const topo::Coord v = codec_.decode(field);
  const topo::Coord d = topo_.coord_of(victim);
  const topo::Coord s = codec_.is_hypercube() ? (d ^ v) : (d - v);
  for (std::size_t dim = 0; dim < topo_.num_dims(); ++dim) {
    if (s[dim] < 0 || s[dim] >= topo_.dim_size(dim)) return std::nullopt;
  }
  return topo_.id_of(s);
}

}  // namespace ddpm::mark
