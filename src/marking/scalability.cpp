#include "marking/scalability.hpp"

#include <bit>
#include <sstream>

namespace ddpm::mark {

namespace {

int ceil_log2_count(std::uint64_t v) {
  return v <= 1 ? 0 : int(std::bit_width(v - 1));
}

constexpr int kFieldBits = 16;

}  // namespace

std::string to_string(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kSimplePpm: return "simple PPM";
    case SchemeKind::kBitDiffPpm: return "bit-difference PPM";
    case SchemeKind::kDdpm: return "DDPM";
  }
  return "unknown";
}

int required_bits_mesh2d(SchemeKind scheme, int n) {
  const std::uint64_t nodes = std::uint64_t(n) * std::uint64_t(n);
  const int idx = ceil_log2_count(nodes);                // log n^2
  const int dist = ceil_log2_count(std::uint64_t(2 * n) - 1);  // log 2n (diam 2n-2)
  switch (scheme) {
    case SchemeKind::kSimplePpm:
      return 2 * idx + dist;  // Table 1: logn^2 + logn^2 + log2n
    case SchemeKind::kBitDiffPpm:
      return idx + ceil_log2_count(std::uint64_t(idx)) + dist;  // Table 2
    case SchemeKind::kDdpm:
      // Table 3: one signed per-dimension offset each; the sign bit is why
      // "half of MF can represent 2^7 nodes in one dimension".
      return 2 * (ceil_log2_count(std::uint64_t(n)) + 1);
  }
  return 0;
}

int required_bits_hypercube(SchemeKind scheme, int n) {
  switch (scheme) {
    case SchemeKind::kSimplePpm:
      return 2 * n + ceil_log2_count(std::uint64_t(n));  // Table 1: 2log2^n + loglog2^n
    case SchemeKind::kBitDiffPpm:
      return n + 2 * ceil_log2_count(std::uint64_t(n));  // Table 2 (see header note)
    case SchemeKind::kDdpm:
      return n;  // Table 3: log 2^n
  }
  return 0;
}

int max_mesh2d_side(SchemeKind scheme) {
  int best = 0;
  for (int n = 2; n <= (1 << 14); n *= 2) {
    if (required_bits_mesh2d(scheme, n) <= kFieldBits) best = n;
  }
  return best;
}

int max_mesh2d_side_exact(SchemeKind scheme) {
  int best = 0;
  for (int n = 2; n <= (1 << 14); ++n) {
    if (required_bits_mesh2d(scheme, n) <= kFieldBits) best = n;
  }
  return best;
}

int max_hypercube_dim(SchemeKind scheme) {
  int best = 0;
  for (int n = 1; n <= 16; ++n) {
    if (required_bits_hypercube(scheme, n) <= kFieldBits) best = n;
  }
  return best;
}

std::vector<ScalabilityRow> scalability_table(SchemeKind scheme) {
  std::vector<ScalabilityRow> rows;
  {
    ScalabilityRow row;
    row.topology = "n x n mesh, torus";
    switch (scheme) {
      case SchemeKind::kSimplePpm:
        row.formula = "logn^2 + logn^2 + log2n";
        break;
      case SchemeKind::kBitDiffPpm:
        row.formula = "logn^2 + loglogn^2 + log2n";
        break;
      case SchemeKind::kDdpm:
        row.formula = "2(logn + 1)";
        break;
    }
    const int n = max_mesh2d_side(scheme);
    row.max_nodes = std::uint64_t(n) * std::uint64_t(n);
    std::ostringstream os;
    os << n << " x " << n << " (" << row.max_nodes << " nodes)";
    row.max_cluster = os.str();
    rows.push_back(row);
  }
  {
    ScalabilityRow row;
    row.topology = "n-cube hypercube";
    switch (scheme) {
      case SchemeKind::kSimplePpm:
        row.formula = "2log2^n + loglog2^n";
        break;
      case SchemeKind::kBitDiffPpm:
        row.formula = "log2^n + 2loglog2^n";
        break;
      case SchemeKind::kDdpm:
        row.formula = "log2^n";
        break;
    }
    const int n = max_hypercube_dim(scheme);
    row.max_nodes = std::uint64_t(1) << n;
    std::ostringstream os;
    os << n << "-cube (" << row.max_nodes << " nodes)";
    row.max_cluster = os.str();
    rows.push_back(row);
  }
  return rows;
}

}  // namespace ddpm::mark
