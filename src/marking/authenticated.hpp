// Authenticated Stamp Marking — the §6.2 future-work direction, built.
//
// Paper §6.2: "To prevent even the small probability of compromising
// switch, we should add an authentication function working on the
// switching layer. Before putting this function into a switch, rigorous
// research is required..." This scheme is that function for the
// stamp-style identification family:
//
//   field = [ source index : idx bits | MAC : 16 - idx bits ]
//   MAC   = PRF(k_source, flow) truncated
//
// Each switch holds a secret key; the SOURCE switch stamps its index plus
// a MAC over the packet's flow id under ITS key. The victim (which, per
// the Song-Perrig assumption the paper already uses, knows the network
// map — here extended to the key table) recomputes the MAC under the
// claimed index's key; a mismatch proves tampering.
//
// Security properties (measured in bench_authenticated / tests):
//   * an honest stamp always verifies;
//   * a compromised NON-SOURCE switch that frames node X must forge
//     PRF(k_X, flow) blind — per-packet success 2^-(16-idx), e.g. 1/1024
//     on a 64-node cluster (6-bit index, 10-bit MAC);
//   * the MAC covers the flow id, so a captured valid stamp replays only
//     within its own flow.
// Cost: the index budget shrinks — idx + mac = 16 caps the cluster at
// 2^idx nodes with a 2^-(16-idx) forgery floor; the knob is explicit.
#pragma once

#include <bit>
#include <stdexcept>

#include "marking/scheme.hpp"
#include "packet/marking_field.hpp"

namespace ddpm::mark {

/// PRF used for the MACs: SplitMix64 finalizer over (key, flow). Stands in
/// for a real keyed PRF; the structure, not the cryptography, is under
/// study here.
std::uint64_t stamp_prf(std::uint64_t key, std::uint64_t flow);

/// Derives switch k's secret from a master secret (the deployment would
/// provision these out of band).
std::uint64_t switch_key(std::uint64_t master_secret, NodeId node);

class AuthenticatedStampScheme final : public MarkingScheme {
 public:
  /// `num_nodes` fixes the index width; the rest of the field is MAC.
  /// Throws if fewer than 4 MAC bits would remain.
  AuthenticatedStampScheme(std::uint64_t num_nodes,
                           std::uint64_t master_secret);

  std::string name() const override { return "auth-stamp"; }

  void on_injection(pkt::Packet& packet, NodeId at) override;
  void on_forward(pkt::Packet&, NodeId, NodeId) override {}

  unsigned index_bits() const noexcept { return index_bits_; }
  unsigned mac_bits() const noexcept { return 16 - index_bits_; }

  /// The field an honest source switch writes (exposed for the verifier
  /// and for forgery experiments).
  std::uint16_t stamp(NodeId source, std::uint64_t flow) const;

 private:
  std::uint64_t num_nodes_;
  std::uint64_t master_;
  unsigned index_bits_;
};

class AuthenticatedStampIdentifier final : public SourceIdentifier {
 public:
  AuthenticatedStampIdentifier(std::uint64_t num_nodes,
                               std::uint64_t master_secret)
      : scheme_(num_nodes, master_secret), num_nodes_(num_nodes) {}

  std::string name() const override { return "auth-stamp-id"; }

  /// One candidate when the MAC verifies under the claimed index's key;
  /// empty (tampering detected) otherwise.
  std::vector<NodeId> observe(const pkt::Packet& packet, NodeId) override;

  std::uint64_t rejected() const noexcept { return rejected_; }

 private:
  AuthenticatedStampScheme scheme_;
  std::uint64_t num_nodes_;
  std::uint64_t rejected_ = 0;
};

}  // namespace ddpm::mark
