// Compressed edge-fragment sampling — Savage's full Internet PPM encoding
// (paper §2: "they proposed an encoding scheme which hashes IP addresses
// and writes a fraction of it", with expected packets k ln(kd)/(p(1-p)^(d-1))).
//
// Adaptation to the cluster index space: each switch r owns a 32-bit word
//   word(r) = (index(r) << 22) | h22(index(r))
// (10-bit index, 22-bit hash — the scaled-down analogue of Savage's 32-bit
// address + 32-bit hash). A marking switch picks a random fragment offset
// o in [0,4), stores fragment o of its word with distance 0; the next
// switch XORs in fragment o of its own word, making the stored fragment a
// piece of word(a) XOR word(b) for edge (a,b); everyone after increments
// the distance. Field layout (15 of 16 bits):
//   [fragment: 8 | distance: 5 | offset: 2]
//
// The victim reassembles: per (distance, offset) it accumulates fragment
// sets, forms the cross-product of the four offsets, and keeps the 32-bit
// words whose hash part verifies against a candidate edge from its network
// map. The win over the full-edge layout: it fits networks up to 1024
// nodes and diameter 31 (e.g. a 16x16 mesh, where full-edge needs 21
// bits). The cost — k times more packets and combinatorial reconstruction
// — is exactly the trade the paper says disqualifies PPM in clusters.
#pragma once

#include <map>
#include <set>

#include "marking/scheme.hpp"
#include "netsim/rng.hpp"
#include "packet/marking_field.hpp"

namespace ddpm::mark {

/// Static parameters of the fragment encoding.
struct FragmentLayout {
  static constexpr int kFragments = 4;
  static constexpr unsigned kFragmentBits = 8;
  static constexpr unsigned kIndexBits = 10;   // <= 1024 nodes
  static constexpr unsigned kHashBits = 22;
  static constexpr int kMaxDistance = 31;      // 5-bit distance field

  static constexpr pkt::FieldSlice fragment() { return {0, 8}; }
  static constexpr pkt::FieldSlice distance() { return {8, 5}; }
  static constexpr pkt::FieldSlice offset() { return {13, 2}; }

  /// 22-bit hash of a node index (SplitMix64 finalizer, truncated).
  static std::uint32_t h22(std::uint32_t index);
  /// The switch's 32-bit word: index || hash.
  static std::uint32_t word(topo::NodeId node);
  /// Fragment o (bits [8o, 8o+8)) of a word.
  static std::uint8_t fragment_of(std::uint32_t word, int offset);

  static bool supports(const topo::Topology& topo);
};

class FragmentPpmScheme final : public MarkingScheme {
 public:
  /// Throws if the topology exceeds 1024 nodes or diameter 31.
  FragmentPpmScheme(const topo::Topology& topo, double marking_probability,
                    std::uint64_t seed);

  std::string name() const override { return "ppm-fragment"; }

  void on_forward(pkt::Packet& packet, NodeId current, NodeId next) override;

 private:
  double p_;
  netsim::Rng rng_;
};

class FragmentPpmIdentifier final : public SourceIdentifier {
 public:
  explicit FragmentPpmIdentifier(const topo::Topology& topo);

  std::string name() const override { return "ppm-fragment-id"; }

  std::vector<NodeId> observe(const pkt::Packet& packet, NodeId victim) override;
  void reset() override;

  /// Candidate chain origins reconstructible from the fragments collected
  /// so far (the cross-product per level is capped; see kComboCap).
  std::vector<NodeId> origins(NodeId victim) const;

  std::size_t unique_fragments() const noexcept { return unique_; }

 private:
  static constexpr std::size_t kComboCap = 65536;

  const topo::Topology& topo_;
  // level -> offset -> fragment values seen.
  std::map<int, std::array<std::set<std::uint8_t>, FragmentLayout::kFragments>>
      levels_;
  std::size_t unique_ = 0;
};

}  // namespace ddpm::mark
