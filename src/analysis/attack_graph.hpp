// Attack-graph assembly and Graphviz export.
//
// The victim's forensic output is a graph: identified sources weighted by
// packet counts (DDPM/DPM verdicts) and, for PPM, the reconstructed path
// edges. This module accumulates both and renders Graphviz DOT, so a run
// of ddpm_sim --dot can be piped straight into `dot -Tsvg`.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "topology/topology.hpp"

namespace ddpm::analysis {

class AttackGraph {
 public:
  explicit AttackGraph(topo::NodeId victim) : victim_(victim) {}

  /// Records a source verdict (one per traced packet).
  void add_source(topo::NodeId source, std::uint64_t weight = 1);

  /// Records a reconstructed path edge (PPM chains), oriented toward the
  /// victim.
  void add_path_edge(topo::NodeId from, topo::NodeId to,
                     std::uint64_t weight = 1);

  /// Sources ranked by accumulated weight, heaviest first.
  std::vector<std::pair<topo::NodeId, std::uint64_t>> ranked_sources() const;

  std::uint64_t total_verdicts() const noexcept { return total_; }
  bool empty() const noexcept { return sources_.empty() && edges_.empty(); }

  /// Graphviz DOT. When `topo` is given, nodes are labeled with their
  /// coordinates; edge/source pen widths scale with weight.
  std::string to_dot(const topo::Topology* topo = nullptr) const;

 private:
  topo::NodeId victim_;
  std::map<topo::NodeId, std::uint64_t> sources_;
  std::map<std::pair<topo::NodeId, topo::NodeId>, std::uint64_t> edges_;
  std::uint64_t total_ = 0;
};

}  // namespace ddpm::analysis
