#include "analysis/attack_graph.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace ddpm::analysis {

void AttackGraph::add_source(topo::NodeId source, std::uint64_t weight) {
  sources_[source] += weight;
  total_ += weight;
}

void AttackGraph::add_path_edge(topo::NodeId from, topo::NodeId to,
                                std::uint64_t weight) {
  edges_[{from, to}] += weight;
}

std::vector<std::pair<topo::NodeId, std::uint64_t>>
AttackGraph::ranked_sources() const {
  std::vector<std::pair<topo::NodeId, std::uint64_t>> out(sources_.begin(),
                                                          sources_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second > b.second || (a.second == b.second && a.first < b.first);
  });
  return out;
}

namespace {

std::string label(topo::NodeId node, const topo::Topology* topo) {
  if (topo != nullptr && topo->contains(node)) {
    return std::to_string(node) + "\\n" + topo->coord_of(node).to_string();
  }
  return std::to_string(node);
}

double pen_width(std::uint64_t weight, std::uint64_t max_weight) {
  if (max_weight == 0) return 1.0;
  return 1.0 + 3.0 * std::sqrt(double(weight) / double(max_weight));
}

}  // namespace

std::string AttackGraph::to_dot(const topo::Topology* topo) const {
  std::uint64_t max_source = 0;
  for (const auto& [node, w] : sources_) max_source = std::max(max_source, w);
  std::uint64_t max_edge = 0;
  for (const auto& [edge, w] : edges_) max_edge = std::max(max_edge, w);

  std::ostringstream os;
  os << "digraph attack {\n"
     << "  rankdir=LR;\n"
     << "  node [shape=circle, fontsize=10];\n"
     << "  n" << victim_ << " [label=\"" << label(victim_, topo)
     << "\", shape=doublecircle, style=filled, fillcolor=\"#ffd0d0\"];\n";
  for (const auto& [node, weight] : sources_) {
    if (node == victim_) continue;
    os << "  n" << node << " [label=\"" << label(node, topo)
       << "\", style=filled, fillcolor=\"#ffb0b0\", penwidth="
       << pen_width(weight, max_source) << "];\n";
    // Verdict arrow straight to the victim, annotated with packet count.
    os << "  n" << node << " -> n" << victim_ << " [label=\"" << weight
       << "\", penwidth=" << pen_width(weight, max_source) << "];\n";
  }
  for (const auto& [edge, weight] : edges_) {
    os << "  n" << edge.first << " -> n" << edge.second
       << " [style=dashed, penwidth=" << pen_width(weight, max_edge)
       << "];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace ddpm::analysis
