// Builds topologies from compact string specs, the format used by every
// example and benchmark:
//   "mesh:4x4"        2-D 4x4 mesh
//   "mesh:8x8x8"      3-D mesh
//   "torus:16x16"     4-ary style torus (k-ary n-cube)
//   "hypercube:10"    10-cube, 1024 nodes
#pragma once

#include <memory>
#include <string>

#include "topology/topology.hpp"

namespace ddpm::topo {

/// Parses `spec` and constructs the topology. Throws std::invalid_argument
/// on malformed specs or out-of-range parameters.
std::unique_ptr<Topology> make_topology(const std::string& spec);

}  // namespace ddpm::topo
