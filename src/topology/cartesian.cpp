#include "topology/cartesian.hpp"

#include <limits>
#include <stdexcept>

namespace ddpm::topo {

CartesianTopology::CartesianTopology(std::vector<int> dims, int min_radix)
    : dims_(std::move(dims)) {
  if (dims_.empty()) {
    throw std::invalid_argument("CartesianTopology: need at least 1 dimension");
  }
  if (dims_.size() > Coord::kMaxDims) {
    throw std::invalid_argument("CartesianTopology: too many dimensions");
  }
  std::uint64_t total = 1;
  for (int k : dims_) {
    if (k < min_radix) {
      throw std::invalid_argument("CartesianTopology: radix below minimum");
    }
    total *= std::uint64_t(k);
    if (total > std::numeric_limits<NodeId>::max()) {
      throw std::invalid_argument("CartesianTopology: node count overflow");
    }
  }
  num_nodes_ = static_cast<NodeId>(total);
  // Row-major strides: the last dimension varies fastest.
  strides_.assign(dims_.size(), 1);
  for (std::size_t d = dims_.size(); d-- > 1;) {
    strides_[d - 1] = strides_[d] * NodeId(dims_[d]);
  }
}

Coord CartesianTopology::coord_of(NodeId id) const {
  if (id >= num_nodes_) throw std::out_of_range("coord_of: bad node id");
  Coord c(dims_.size());
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    // The id<->coord codec IS the division; hot paths never call it —
    // they read tables precomputed from it at construction.
    c[d] = static_cast<Coord::value_type>(
        (id / strides_[d]) % NodeId(dims_[d]));  // ddpm-analyze: allow(hot-no-div)
  }
  return c;
}

NodeId CartesianTopology::id_of(const Coord& c) const {
  if (c.size() != dims_.size()) throw std::invalid_argument("id_of: bad dims");
  NodeId id = 0;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    if (c[d] < 0 || c[d] >= dims_[d]) {
      throw std::out_of_range("id_of: coordinate out of range");
    }
    id += NodeId(c[d]) * strides_[d];
  }
  return id;
}

}  // namespace ddpm::topo
