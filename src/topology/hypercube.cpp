#include "topology/hypercube.hpp"

#include <bit>
#include <sstream>
#include <stdexcept>

namespace ddpm::topo {

Hypercube::Hypercube(int n) : n_(n) {
  if (n < 1 || n > int(Coord::kMaxDims)) {
    throw std::invalid_argument("Hypercube: dimension must be in [1, 16]");
  }
}

Coord Hypercube::coord_of(NodeId id) const {
  if (id >= num_nodes()) throw std::out_of_range("coord_of: bad node id");
  auto c = Coord(std::size_t(n_));  // zero vector with n_ dimensions
  for (int d = 0; d < n_; ++d) {
    c[std::size_t(d)] = static_cast<Coord::value_type>((id >> d) & 1u);
  }
  return c;
}

NodeId Hypercube::id_of(const Coord& c) const {
  if (c.size() != std::size_t(n_)) throw std::invalid_argument("id_of: bad dims");
  NodeId id = 0;
  for (int d = 0; d < n_; ++d) {
    const auto bit = c[std::size_t(d)];
    if (bit != 0 && bit != 1) throw std::out_of_range("id_of: coordinate not 0/1");
    id |= NodeId(bit) << d;
  }
  return id;
}

std::optional<NodeId> Hypercube::neighbor(NodeId node, Port port) const {
  if (port < 0 || port >= n_) return std::nullopt;
  return node ^ (NodeId(1) << port);
}

std::optional<Port> Hypercube::port_to(NodeId from, NodeId to) const {
  const NodeId diff = from ^ to;
  if (std::popcount(diff) != 1) return std::nullopt;
  return std::countr_zero(diff);
}

int Hypercube::min_hops(NodeId a, NodeId b) const {
  return std::popcount(a ^ b);
}

std::string Hypercube::spec() const {
  std::ostringstream os;
  os << "hypercube:" << n_;
  return os.str();
}

}  // namespace ddpm::topo
