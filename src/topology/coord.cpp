#include "topology/coord.hpp"

#include <cstdlib>
#include <sstream>

namespace ddpm::topo {

namespace {
void require_same_dims(const Coord& a, const Coord& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("Coord arithmetic: dimensionality mismatch");
  }
}
}  // namespace

Coord Coord::operator+(const Coord& other) const {
  require_same_dims(*this, other);
  Coord out(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    out[i] = static_cast<value_type>(data_[i] + other.data_[i]);
  }
  return out;
}

Coord Coord::operator-(const Coord& other) const {
  require_same_dims(*this, other);
  Coord out(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    out[i] = static_cast<value_type>(data_[i] - other.data_[i]);
  }
  return out;
}

Coord Coord::operator^(const Coord& other) const {
  require_same_dims(*this, other);
  Coord out(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    out[i] = static_cast<value_type>(data_[i] ^ other.data_[i]);
  }
  return out;
}

int Coord::l1_norm() const noexcept {
  int sum = 0;
  for (std::size_t i = 0; i < size_; ++i) sum += std::abs(int(data_[i]));
  return sum;
}

int Coord::nonzero_count() const noexcept {
  int count = 0;
  for (std::size_t i = 0; i < size_; ++i) count += (data_[i] != 0);
  return count;
}

std::string Coord::to_string() const {
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < size_; ++i) {
    if (i) os << ',';
    os << data_[i];
  }
  os << ')';
  return os.str();
}

std::size_t Coord::hash() const noexcept {
  std::size_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::size_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    mix(static_cast<std::size_t>(static_cast<std::uint16_t>(data_[i])));
  }
  return h;
}

}  // namespace ddpm::topo
