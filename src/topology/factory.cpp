#include "topology/factory.hpp"

#include <charconv>
#include <stdexcept>
#include <vector>

#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"
#include "topology/torus.hpp"

namespace ddpm::topo {

namespace {

int parse_int(std::string_view text) {
  int value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    throw std::invalid_argument("make_topology: bad integer in spec");
  }
  return value;
}

std::vector<int> parse_dims(std::string_view text) {
  std::vector<int> dims;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t sep = text.find('x', start);
    const std::string_view part =
        text.substr(start, sep == std::string_view::npos ? sep : sep - start);
    if (part.empty()) throw std::invalid_argument("make_topology: empty dimension");
    dims.push_back(parse_int(part));
    if (sep == std::string_view::npos) break;
    start = sep + 1;
  }
  return dims;
}

}  // namespace

std::unique_ptr<Topology> make_topology(const std::string& spec) {
  const std::size_t colon = spec.find(':');
  if (colon == std::string::npos) {
    throw std::invalid_argument("make_topology: expected '<kind>:<params>'");
  }
  const std::string_view kind(spec.data(), colon);
  const std::string_view params(spec.data() + colon + 1, spec.size() - colon - 1);
  if (kind == "mesh") {
    return std::make_unique<Mesh>(parse_dims(params));
  }
  if (kind == "torus") {
    return std::make_unique<Torus>(parse_dims(params));
  }
  if (kind == "hypercube") {
    return std::make_unique<Hypercube>(parse_int(params));
  }
  throw std::invalid_argument("make_topology: unknown kind '" + std::string(kind) + "'");
}

}  // namespace ddpm::topo
