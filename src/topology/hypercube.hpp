// n-cube hypercube (paper §3): an n-dimensional mesh with k_i = 2 for all
// i. Nodes are adjacent iff their ids differ in exactly one bit. Degree and
// diameter are both n. Port d flips bit d.
//
// Coordinates are the binary digits of the node id (coordinate d = bit d),
// so the id<->coord mapping is trivial bit manipulation.
#pragma once

#include "topology/topology.hpp"

namespace ddpm::topo {

class Hypercube final : public Topology {
 public:
  /// An `n`-cube with 2^n nodes; 1 <= n <= 16 (Table 3's largest case).
  explicit Hypercube(int n);

  TopologyKind kind() const noexcept override { return TopologyKind::kHypercube; }
  NodeId num_nodes() const noexcept override { return NodeId(1) << n_; }
  std::size_t num_dims() const noexcept override { return std::size_t(n_); }
  int dim_size(std::size_t) const noexcept override { return 2; }
  int degree() const noexcept override { return n_; }
  int diameter() const noexcept override { return n_; }
  int num_ports() const noexcept override { return n_; }

  Coord coord_of(NodeId id) const override;
  NodeId id_of(const Coord& c) const override;

  std::optional<NodeId> neighbor(NodeId node, Port port) const override;
  std::optional<Port> port_to(NodeId from, NodeId to) const override;
  int min_hops(NodeId a, NodeId b) const override;

  std::string spec() const override;

 private:
  int n_;
};

}  // namespace ddpm::topo
