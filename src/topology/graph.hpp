// Graph algorithms over a Topology with optional link failures: BFS hop
// distances, shortest paths, and connectivity. Used by routing tests (to
// check minimality), by the PPM reconstruction engine (candidate-path
// enumeration) and by the Figure 2 experiments.
#pragma once

#include <optional>
#include <vector>

#include "topology/topology.hpp"

namespace ddpm::topo {

/// Hop distance from `src` to every node, honoring failed links.
/// Unreachable nodes get -1.
std::vector<int> bfs_distances(const Topology& topo, NodeId src,
                               const LinkFailureSet* failures = nullptr);

/// One shortest path (node sequence, inclusive of endpoints) from `src` to
/// `dst`, honoring failed links; nullopt if unreachable.
std::optional<std::vector<NodeId>> shortest_path(
    const Topology& topo, NodeId src, NodeId dst,
    const LinkFailureSet* failures = nullptr);

/// True iff every node can reach every other given the failures.
bool is_connected(const Topology& topo, const LinkFailureSet* failures = nullptr);

/// Hop distance between two nodes honoring failures; -1 if unreachable.
int hop_distance(const Topology& topo, NodeId src, NodeId dst,
                 const LinkFailureSet* failures = nullptr);

}  // namespace ddpm::topo
