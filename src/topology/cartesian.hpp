// Shared machinery for coordinate-indexed (Cartesian) topologies: the
// row-major id<->coordinate bijection used by both the mesh and the torus.
#pragma once

#include <vector>

#include "core/check.hpp"
#include "topology/topology.hpp"

namespace ddpm::topo {

class CartesianTopology : public Topology {
 public:
  /// `dims` lists the radix of each dimension, innermost last (row-major):
  /// {k0, k1, ..., kn-1} has strides so that the last coordinate varies
  /// fastest. Throws if dims is empty, has > Coord::kMaxDims entries, any
  /// radix < `min_radix`, or the node count overflows NodeId.
  CartesianTopology(std::vector<int> dims, int min_radix);

  NodeId num_nodes() const noexcept override { return num_nodes_; }
  std::size_t num_dims() const noexcept override { return dims_.size(); }
  int dim_size(std::size_t d) const noexcept override { return dims_[d]; }
  int num_ports() const noexcept override { return int(2 * dims_.size()); }
  int degree() const noexcept override { return int(2 * dims_.size()); }

  Coord coord_of(NodeId id) const override;
  NodeId id_of(const Coord& c) const override;

 protected:
  /// Decomposes a port into (dimension, direction): direction -1 for even
  /// ports, +1 for odd ports, matching the convention in topology.hpp.
  static std::pair<std::size_t, int> port_dim_dir(Port port) noexcept {
    DDPM_DCHECK(port >= 0, "port_dim_dir: negative port");
    return {static_cast<std::size_t>(port / 2), (port % 2 == 0) ? -1 : +1};
  }
  static Port make_port(std::size_t dim, int dir) noexcept {
    return static_cast<Port>(2 * dim + (dir > 0 ? 1 : 0));
  }

  const std::vector<int>& dims() const noexcept { return dims_; }

 private:
  std::vector<int> dims_;
  std::vector<NodeId> strides_;
  NodeId num_nodes_ = 0;
};

}  // namespace ddpm::topo
