#include "topology/mesh.hpp"

#include <cstdlib>
#include <sstream>

namespace ddpm::topo {

Mesh::Mesh(std::vector<int> dims) : CartesianTopology(std::move(dims), 2) {
  for (std::size_t d = 0; d < num_dims(); ++d) {
    diameter_ += dim_size(d) - 1;
    // Paper §3 quotes degree 2n, which assumes every dimension has an
    // interior (k >= 3); a radix-2 dimension contributes only one link.
    degree_ += dim_size(d) >= 3 ? 2 : 1;
  }
}

std::optional<NodeId> Mesh::neighbor(NodeId node, Port port) const {
  if (port < 0 || port >= num_ports()) return std::nullopt;
  const auto [dim, dir] = port_dim_dir(port);
  Coord c = coord_of(node);
  const int next = int(c[dim]) + dir;
  if (next < 0 || next >= dim_size(dim)) return std::nullopt;  // mesh boundary
  c[dim] = static_cast<Coord::value_type>(next);
  return id_of(c);
}

std::optional<Port> Mesh::port_to(NodeId from, NodeId to) const {
  const Coord a = coord_of(from);
  const Coord b = coord_of(to);
  std::optional<Port> port;
  for (std::size_t d = 0; d < num_dims(); ++d) {
    const int delta = int(b[d]) - int(a[d]);
    if (delta == 0) continue;
    if (std::abs(delta) != 1 || port.has_value()) return std::nullopt;
    port = make_port(d, delta);
  }
  return port;
}

int Mesh::min_hops(NodeId a, NodeId b) const {
  return (coord_of(b) - coord_of(a)).l1_norm();
}

std::string Mesh::spec() const {
  std::ostringstream os;
  os << "mesh:";
  for (std::size_t d = 0; d < num_dims(); ++d) {
    if (d) os << 'x';
    os << dim_size(d);
  }
  return os.str();
}

}  // namespace ddpm::topo
