// n-dimensional mesh (paper §3): nodes X and Y are adjacent iff their
// coordinates agree in all but one dimension i where x_i = y_i ± 1.
// Degree 2n, diameter Σ(k_i − 1).
#pragma once

#include "topology/cartesian.hpp"

namespace ddpm::topo {

class Mesh final : public CartesianTopology {
 public:
  /// `dims` = {k0, ..., kn-1}; every radix must be >= 2.
  explicit Mesh(std::vector<int> dims);

  TopologyKind kind() const noexcept override { return TopologyKind::kMesh; }
  int diameter() const noexcept override { return diameter_; }
  /// Exact maximum neighbor count: 2n when every radix >= 3 (the paper's
  /// formula), less when a dimension has no interior.
  int degree() const noexcept override { return degree_; }

  std::optional<NodeId> neighbor(NodeId node, Port port) const override;
  std::optional<Port> port_to(NodeId from, NodeId to) const override;
  int min_hops(NodeId a, NodeId b) const override;

  std::string spec() const override;

 private:
  int diameter_ = 0;
  int degree_ = 0;
};

}  // namespace ddpm::topo
