#include "topology/graph.hpp"

#include <algorithm>
#include <deque>

namespace ddpm::topo {

namespace {

bool usable(const LinkFailureSet* failures, NodeId a, NodeId b) {
  return failures == nullptr || !failures->is_failed(a, b);
}

}  // namespace

std::vector<int> bfs_distances(const Topology& topo, NodeId src,
                               const LinkFailureSet* failures) {
  std::vector<int> dist(topo.num_nodes(), -1);
  dist[src] = 0;
  std::deque<NodeId> frontier{src};
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (Port p = 0; p < topo.num_ports(); ++p) {
      const auto v = topo.neighbor(u, p);
      if (!v || dist[*v] >= 0 || !usable(failures, u, *v)) continue;
      dist[*v] = dist[u] + 1;
      frontier.push_back(*v);
    }
  }
  return dist;
}

std::optional<std::vector<NodeId>> shortest_path(const Topology& topo,
                                                 NodeId src, NodeId dst,
                                                 const LinkFailureSet* failures) {
  std::vector<NodeId> parent(topo.num_nodes(), kInvalidNode);
  std::vector<int> dist(topo.num_nodes(), -1);
  dist[src] = 0;
  std::deque<NodeId> frontier{src};
  while (!frontier.empty() && dist[dst] < 0) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (Port p = 0; p < topo.num_ports(); ++p) {
      const auto v = topo.neighbor(u, p);
      if (!v || dist[*v] >= 0 || !usable(failures, u, *v)) continue;
      dist[*v] = dist[u] + 1;
      parent[*v] = u;
      frontier.push_back(*v);
    }
  }
  if (dist[dst] < 0) return std::nullopt;
  std::vector<NodeId> path;
  for (NodeId at = dst; at != kInvalidNode; at = parent[at]) {
    path.push_back(at);
    if (at == src) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

bool is_connected(const Topology& topo, const LinkFailureSet* failures) {
  if (topo.num_nodes() == 0) return true;
  const auto dist = bfs_distances(topo, 0, failures);
  return std::all_of(dist.begin(), dist.end(), [](int d) { return d >= 0; });
}

int hop_distance(const Topology& topo, NodeId src, NodeId dst,
                 const LinkFailureSet* failures) {
  return bfs_distances(topo, src, failures)[dst];
}

}  // namespace ddpm::topo
