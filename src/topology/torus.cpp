#include "topology/torus.hpp"

#include <cstdlib>
#include <sstream>

#include "core/check.hpp"

namespace ddpm::topo {

Torus::Torus(std::vector<int> dims) : CartesianTopology(std::move(dims), 3) {
  for (std::size_t d = 0; d < num_dims(); ++d) diameter_ += dim_size(d) / 2;
}

std::optional<NodeId> Torus::neighbor(NodeId node, Port port) const {
  if (port < 0 || port >= num_ports()) return std::nullopt;
  const auto [dim, dir] = port_dim_dir(port);
  Coord c = coord_of(node);
  const int k = dim_size(dim);
  // Wrap in unsigned space: coord + dir + k is in [k-1, 2k] for a valid
  // coordinate, so the modular reduction never touches signed overflow.
  // Audited wrap arithmetic (neighbor codec); hot paths read the
  // precomputed neighbor tables instead of re-deriving this.
  const unsigned wrapped =
      (unsigned(int(c[dim]) + dir + k)) % unsigned(k);  // ddpm-analyze: allow(hot-no-div)
  c[dim] = static_cast<Coord::value_type>(wrapped);
  return id_of(c);
}

std::optional<Port> Torus::port_to(NodeId from, NodeId to) const {
  const Coord a = coord_of(from);
  const Coord b = coord_of(to);
  std::optional<Port> port;
  for (std::size_t d = 0; d < num_dims(); ++d) {
    if (a[d] == b[d]) continue;
    const int k = dim_size(d);
    const int plus = (int(a[d]) + 1) % k;
    const int minus = (int(a[d]) - 1 + k) % k;
    int dir;
    if (int(b[d]) == plus) {
      dir = +1;
    } else if (int(b[d]) == minus) {
      dir = -1;
    } else {
      return std::nullopt;
    }
    if (port.has_value()) return std::nullopt;  // differs in two dimensions
    port = make_port(d, dir);
  }
  return port;
}

int Torus::ring_delta(int a, int b, std::size_t d) const noexcept {
  DDPM_CHECK(d < num_dims(), "ring_delta: dimension out of range");
  const int k = dim_size(d);
  DDPM_CHECK(a >= 0 && a < k && b >= 0 && b < k,
             "ring_delta: coordinate outside [0, k)");
  // k even and delta == k/2: +k/2 (positive direction), per contract.
  return ring_shortest_delta(a, b, k);
}

int Torus::min_hops(NodeId a, NodeId b) const {
  const Coord ca = coord_of(a);
  const Coord cb = coord_of(b);
  int hops = 0;
  for (std::size_t d = 0; d < num_dims(); ++d) {
    hops += std::abs(ring_delta(ca[d], cb[d], d));
  }
  return hops;
}

std::string Torus::spec() const {
  std::ostringstream os;
  os << "torus:";
  for (std::size_t d = 0; d < num_dims(); ++d) {
    if (d) os << 'x';
    os << dim_size(d);
  }
  return os.str();
}

}  // namespace ddpm::topo
