// Fixed-capacity coordinate vector for regular direct networks.
//
// A Coord holds one signed integer per dimension. The capacity (16) covers
// every topology in the paper, including the 16-cube hypercube of Table 3.
// Signed elements let the same type represent both node positions and the
// per-dimension displacement vectors DDPM accumulates.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <stdexcept>
#include <string>

#include "core/check.hpp"

namespace ddpm::topo {

class Coord {
 public:
  static constexpr std::size_t kMaxDims = 16;
  using value_type = std::int16_t;

  constexpr Coord() noexcept = default;

  /// Zero vector with `dims` dimensions.
  explicit constexpr Coord(std::size_t dims) : size_(check_dims(dims)) {}

  constexpr Coord(std::initializer_list<int> values)
      : size_(check_dims(values.size())) {
    std::size_t i = 0;
    for (int v : values) data_[i++] = static_cast<value_type>(v);
  }

  constexpr std::size_t size() const noexcept { return size_; }
  constexpr bool empty() const noexcept { return size_ == 0; }

  constexpr value_type operator[](std::size_t i) const noexcept {
    DDPM_DCHECK(i < size_, "Coord index out of range");
    return data_[i];
  }
  constexpr value_type& operator[](std::size_t i) noexcept {
    DDPM_DCHECK(i < size_, "Coord index out of range");
    return data_[i];
  }

  value_type at(std::size_t i) const {
    if (i >= size_) throw std::out_of_range("Coord::at");
    return data_[i];
  }

  constexpr bool operator==(const Coord& other) const noexcept {
    if (size_ != other.size_) return false;
    for (std::size_t i = 0; i < size_; ++i) {
      if (data_[i] != other.data_[i]) return false;
    }
    return true;
  }
  constexpr bool operator!=(const Coord& other) const noexcept {
    return !(*this == other);
  }

  /// Element-wise sum. Both operands must have the same dimensionality.
  Coord operator+(const Coord& other) const;
  /// Element-wise difference (this - other).
  Coord operator-(const Coord& other) const;
  /// Element-wise XOR, used by the hypercube variant of DDPM.
  Coord operator^(const Coord& other) const;

  /// Sum of absolute element values (L1 norm) — the minimal hop count in a
  /// mesh when applied to a displacement vector.
  int l1_norm() const noexcept;

  /// Number of nonzero elements — the minimal hop count in a hypercube when
  /// applied to a (0/1-valued) displacement vector.
  int nonzero_count() const noexcept;

  std::string to_string() const;

  /// FNV-1a over the active elements, for hashing.
  std::size_t hash() const noexcept;

 private:
  static constexpr std::size_t check_dims(std::size_t dims) {
    if (dims > kMaxDims) throw std::invalid_argument("Coord: too many dimensions");
    return dims;
  }

  std::array<value_type, kMaxDims> data_{};
  std::size_t size_ = 0;
};

struct CoordHash {
  std::size_t operator()(const Coord& c) const noexcept { return c.hash(); }
};

/// Shortest signed ring displacement from coordinate `a` to coordinate `b`
/// on a ring of size `k`, in (-k/2, k/2]; an even k with |delta| == k/2
/// reports +k/2 (ties go the positive way round). Both coordinates must
/// already be in [0, k).
///
/// This helper — together with the coordinate<->id math in
/// CartesianTopology and Torus::ring_delta, which delegates here — is the
/// sanctioned home for modular arithmetic on torus coordinates. Raw `%`/`/`
/// on coordinates anywhere else is flagged by the `torus-wrap` analyzer
/// rule (docs/STATIC_ANALYSIS.md): ad-hoc wraparound math is exactly the
/// class of bug the ddpm_verify invariant checker otherwise catches late.
constexpr int ring_shortest_delta(int a, int b, int k) noexcept {
  // The audited wrap helper is the one sanctioned home for this modulo;
  // hot callers reach it through precomputed route/neighbor tables.
  const int delta = ((b - a) % k + k) % k;  // ddpm-analyze: allow(hot-no-div)
  return delta > k / 2 ? delta - k : delta;
}

}  // namespace ddpm::topo
