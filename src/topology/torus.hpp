// k-ary n-cube torus (paper §3): like the mesh but with wraparound
// channels, x_i = (y_i ± 1) mod k. Degree 2n, per-dimension diameter
// ⌊k_i / 2⌋.
//
// Radix 3 is the minimum: with k = 2 the "plus" and "minus" ports would
// reach the same neighbor (that degenerate case is the hypercube, which has
// its own class).
#pragma once

#include "topology/cartesian.hpp"

namespace ddpm::topo {

class Torus final : public CartesianTopology {
 public:
  /// `dims` = {k0, ..., kn-1}; every radix must be >= 3.
  explicit Torus(std::vector<int> dims);

  TopologyKind kind() const noexcept override { return TopologyKind::kTorus; }
  int diameter() const noexcept override { return diameter_; }

  std::optional<NodeId> neighbor(NodeId node, Port port) const override;
  std::optional<Port> port_to(NodeId from, NodeId to) const override;
  int min_hops(NodeId a, NodeId b) const override;

  /// Signed ring distance from a to b in dimension d: the smallest-magnitude
  /// delta with b = (a + delta) mod k. Ties (k even, |delta| = k/2) resolve
  /// to the positive direction. Contract: d < num_dims() and a, b are valid
  /// coordinates in [0, k_d) (checked, fatal) — arbitrary ints would make
  /// the modular reduction overflow-prone.
  int ring_delta(int a, int b, std::size_t d) const noexcept;

  std::string spec() const override;

 private:
  int diameter_ = 0;
};

}  // namespace ddpm::topo
