#include "topology/topology.hpp"

namespace ddpm::topo {

std::string to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kMesh: return "mesh";
    case TopologyKind::kTorus: return "torus";
    case TopologyKind::kHypercube: return "hypercube";
  }
  return "unknown";
}

std::vector<NodeId> Topology::neighbors(NodeId node) const {
  std::vector<NodeId> out;
  out.reserve(static_cast<std::size_t>(num_ports()));
  for (Port p = 0; p < num_ports(); ++p) {
    if (auto n = neighbor(node, p)) out.push_back(*n);
  }
  return out;
}

std::vector<std::pair<NodeId, NodeId>> Topology::links() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  for (NodeId a = 0; a < num_nodes(); ++a) {
    for (Port p = 0; p < num_ports(); ++p) {
      if (auto b = neighbor(a, p)) {
        if (a < *b) out.emplace_back(a, *b);
      }
    }
  }
  return out;
}

}  // namespace ddpm::topo
