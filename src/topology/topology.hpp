// Abstract model of a regular direct network (paper §3).
//
// A Topology is pure geometry: it maps flat node ids to coordinates,
// enumerates neighbor links by port number, and reports degree/diameter.
// Dynamic state — link failures, congestion — lives elsewhere
// (LinkFailureSet here, queue occupancy in the cluster model) so the same
// geometry can be shared immutably by every component.
//
// Port numbering convention:
//   * mesh / torus: port 2*d   = negative direction in dimension d,
//                   port 2*d+1 = positive direction in dimension d.
//   * hypercube:    port d     = flip dimension (bit) d.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "topology/coord.hpp"

namespace ddpm::topo {

/// Flat node identifier; row-major over the coordinate space.
using NodeId = std::uint32_t;
/// Output port index on a switch; see the numbering convention above.
using Port = int;

inline constexpr NodeId kInvalidNode = 0xffffffffu;

enum class TopologyKind { kMesh, kTorus, kHypercube };

std::string to_string(TopologyKind kind);

class Topology {
 public:
  virtual ~Topology() = default;

  virtual TopologyKind kind() const noexcept = 0;

  /// Total number of nodes (product of dimension sizes).
  virtual NodeId num_nodes() const noexcept = 0;

  /// Number of dimensions n.
  virtual std::size_t num_dims() const noexcept = 0;

  /// Radix k_d of dimension d.
  virtual int dim_size(std::size_t d) const noexcept = 0;

  /// Maximum number of links incident on any node (paper §3).
  virtual int degree() const noexcept = 0;

  /// Largest minimal hop distance between any node pair (paper §3).
  virtual int diameter() const noexcept = 0;

  /// Number of physical ports per switch (= degree for these topologies).
  virtual int num_ports() const noexcept = 0;

  virtual Coord coord_of(NodeId id) const = 0;
  virtual NodeId id_of(const Coord& c) const = 0;

  /// Neighbor reached through `port`, or nullopt if the port does not exist
  /// at this node (mesh boundary).
  virtual std::optional<NodeId> neighbor(NodeId node, Port port) const = 0;

  /// Port on `from` that reaches adjacent node `to`; nullopt if not adjacent.
  virtual std::optional<Port> port_to(NodeId from, NodeId to) const = 0;

  /// Minimal hop distance between two nodes.
  virtual int min_hops(NodeId a, NodeId b) const = 0;

  /// All existing neighbors of a node, in port order.
  std::vector<NodeId> neighbors(NodeId node) const;

  /// All undirected links as (low-id, high-id) pairs, each listed once.
  std::vector<std::pair<NodeId, NodeId>> links() const;

  /// Human-readable spec, e.g. "mesh:4x4", "torus:8x8x8", "hypercube:10".
  virtual std::string spec() const = 0;

  bool contains(NodeId id) const noexcept { return id < num_nodes(); }

 protected:
  // C.67: suppress public copy through the base handle (slicing).
  Topology() = default;
  Topology(const Topology&) = default;
  Topology& operator=(const Topology&) = default;
};

/// Mutable set of failed (bidirectional) links, used to reproduce the
/// Figure 2 fault scenarios and for fault-injection testing. A failed link
/// blocks traffic in both directions.
class LinkFailureSet {
 public:
  void fail(NodeId a, NodeId b) { failed_.insert(key(a, b)); }
  void restore(NodeId a, NodeId b) { failed_.erase(key(a, b)); }
  bool is_failed(NodeId a, NodeId b) const { return failed_.count(key(a, b)) != 0; }
  void clear() { failed_.clear(); }
  std::size_t size() const noexcept { return failed_.size(); }

 private:
  static std::uint64_t key(NodeId a, NodeId b) noexcept {
    if (a > b) std::swap(a, b);
    return (std::uint64_t(a) << 32) | b;
  }
  std::unordered_set<std::uint64_t> failed_;
};

}  // namespace ddpm::topo
