#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "netsim/rng.hpp"
#include "packet/packet.hpp"
#include "stream/cusum.hpp"
#include "stream/detectors.hpp"
#include "stream/entropy_window.hpp"
#include "stream/flow_analyzer.hpp"
#include "stream/sketch.hpp"
#include "stream/space_saving.hpp"

namespace ddpm::stream {
namespace {

constexpr std::size_t kMemoryBudget = 4u << 20;  // 4 MiB

/// A skewed synthetic stream over ~100k distinct keys: rank sampled with
/// a heavy bias so a handful of keys dominate (the regime sketches are
/// built for).
std::vector<std::uint32_t> skewed_stream(std::size_t n, std::uint32_t keys,
                                         std::uint64_t seed) {
  netsim::Rng rng(seed);
  std::vector<std::uint32_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Squaring a uniform variate biases toward low ranks ~ p(r) ∝ 1/sqrt(r).
    const double u = rng.next_double();
    out.push_back(std::uint32_t(u * u * double(keys)));
  }
  return out;
}

TEST(CountMin, NeverUnderestimates) {
  CountMinSketch cms(2048, 4, 99);
  std::unordered_map<std::uint32_t, std::uint64_t> exact;
  for (std::uint32_t key : skewed_stream(200'000, 100'000, 1)) {
    cms.update(key);
    ++exact[key];
  }
  EXPECT_EQ(cms.items(), 200'000u);
  for (const auto& [key, count] : exact) {
    EXPECT_GE(cms.estimate(key), count);
  }
}

TEST(CountMin, EpsilonDeltaBoundHolds) {
  CountMinSketch cms(2048, 4, 123);
  std::unordered_map<std::uint32_t, std::uint64_t> exact;
  for (std::uint32_t key : skewed_stream(200'000, 100'000, 2)) {
    cms.update(key);
    ++exact[key];
  }
  const double bound = cms.epsilon() * double(cms.items());
  std::size_t violations = 0;
  for (const auto& [key, count] : exact) {
    if (double(cms.estimate(key)) > double(count) + bound) ++violations;
  }
  // P(violation) <= delta per key; with conservative update the observed
  // rate is far lower. Allow 2x delta for statistical slack.
  const double max_violations = 2.0 * cms.delta() * double(exact.size());
  EXPECT_LE(double(violations), std::max(max_violations, 4.0));
}

TEST(CountMin, ConservativeDominatesPlain) {
  CountMinSketch conservative(512, 4, 7, true);
  CountMinSketch plain(512, 4, 7, false);
  const std::vector<std::uint32_t> stream = skewed_stream(50'000, 20'000, 3);
  for (std::uint32_t key : stream) {
    conservative.update(key);
    plain.update(key);
  }
  // Same hash seeds, so pointwise: conservative estimate <= plain estimate.
  for (std::uint32_t key = 0; key < 20'000; ++key) {
    EXPECT_LE(conservative.estimate(key), plain.estimate(key));
  }
}

TEST(CountMin, UpdateReturnsPostEstimateAndClearResets) {
  CountMinSketch cms(64, 4, 5);
  EXPECT_EQ(cms.update(42), 1u);
  EXPECT_EQ(cms.update(42, 9), 10u);
  EXPECT_GE(cms.estimate(42), 10u);
  cms.clear();
  EXPECT_EQ(cms.estimate(42), 0u);
  EXPECT_EQ(cms.items(), 0u);
}

TEST(CountMin, MemoryIsGeometryNotStream) {
  CountMinSketch cms(2048, 4, 1);
  const std::size_t before = cms.memory_bytes();
  for (std::uint32_t key = 0; key < 500'000; ++key) cms.update(key);
  EXPECT_EQ(cms.memory_bytes(), before);
  EXPECT_LE(cms.memory_bytes(), kMemoryBudget);
}

TEST(SpaceSaving, CountBracketsTruth) {
  SpaceSavingTopK summary(64, 17);
  std::unordered_map<std::uint32_t, std::uint64_t> exact;
  for (std::uint32_t key : skewed_stream(100'000, 50'000, 4)) {
    summary.offer(key);
    ++exact[key];
  }
  EXPECT_EQ(summary.total(), 100'000u);
  for (const auto& item : summary.top(64)) {
    const std::uint64_t truth = exact[item.key];
    EXPECT_LE(truth, item.count);                // never undercounts
    EXPECT_GE(truth + item.error, item.count);   // overcount bounded by error
  }
}

/// Half the stream concentrates on 16 hot keys, the rest spreads over
/// `keys` cold ones — every hot key's count is well above N/capacity, so
/// the Space-Saving guarantees bite (the plain skewed_stream is too flat
/// for a capacity-64 summary over 100k keys).
std::vector<std::uint32_t> hot_cold_stream(std::size_t n, std::uint32_t keys,
                                           std::uint64_t seed) {
  netsim::Rng rng(seed);
  std::vector<std::uint32_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.next_bool(0.5)) {
      out.push_back(std::uint32_t(rng.next_below(16)));
    } else {
      out.push_back(16 + std::uint32_t(rng.next_below(keys)));
    }
  }
  return out;
}

TEST(SpaceSaving, GuaranteedHeavyHittersAreMonitored) {
  SpaceSavingTopK summary(64, 18);
  std::unordered_map<std::uint32_t, std::uint64_t> exact;
  for (std::uint32_t key : hot_cold_stream(100'000, 50'000, 5)) {
    summary.offer(key);
    ++exact[key];
  }
  // Classic guarantee: any key with true count > N/capacity is monitored.
  const std::uint64_t threshold = summary.total() / summary.capacity();
  std::size_t heavy = 0;
  for (const auto& [key, count] : exact) {
    if (count > threshold) {
      ++heavy;
      EXPECT_GT(summary.estimate(key), 0u) << "missing heavy key " << key;
    }
  }
  EXPECT_GE(heavy, 16u);  // the guarantee was actually exercised
}

TEST(SpaceSaving, TopKRecallOnSkewedStream) {
  SpaceSavingTopK summary(64, 19);
  std::map<std::uint32_t, std::uint64_t> exact;
  for (std::uint32_t key : hot_cold_stream(200'000, 100'000, 6)) {
    summary.offer(key);
    ++exact[key];
  }
  // True top-8 by count (key-ascending tiebreak, same as the summary).
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ranked;
  for (const auto& [key, count] : exact) ranked.push_back({count, key});
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  const auto top = summary.top(16);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    for (const auto& item : top) {
      if (item.key == ranked[i].second) {
        ++hits;
        break;
      }
    }
  }
  EXPECT_GE(hits, 7u);  // >= 7/8 of the true top-8 inside the reported top-16
}

TEST(SpaceSaving, EvictionTracksNewHeavyKey) {
  SpaceSavingTopK summary(4, 20);
  for (int i = 0; i < 100; ++i) {
    summary.offer(1);
    summary.offer(2);
    summary.offer(3);
    summary.offer(4);
  }
  // A fresh key hammered after the summary is full must displace someone
  // and surface at the top.
  for (int i = 0; i < 1000; ++i) summary.offer(99);
  const auto top = summary.top(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].key, 99u);
  EXPECT_GE(top[0].count, 1000u);
  EXPECT_LE(top[0].count - top[0].error, 1000u + 100u);
  EXPECT_EQ(summary.top1().key, 99u);
}

TEST(SpaceSaving, ClearEmptiesSummary) {
  SpaceSavingTopK summary(8, 21);
  for (std::uint32_t k = 0; k < 100; ++k) summary.offer(k);
  summary.clear();
  EXPECT_EQ(summary.size(), 0u);
  EXPECT_EQ(summary.total(), 0u);
  EXPECT_EQ(summary.estimate(5), 0u);
  summary.offer(7, 3);
  EXPECT_EQ(summary.estimate(7), 3u);
}

TEST(EntropySketch, MatchesExactEntropyOnSmallAlphabet) {
  // 8 equiprobable keys into 4096 buckets: collisions are negligible, so
  // the sketch entropy must sit at ~3 bits once the window fills.
  SlidingEntropySketch sketch(1024, 4096, 31);
  for (std::uint32_t i = 0; i < 4096; ++i) sketch.observe_key(i & 7);
  EXPECT_TRUE(sketch.full());
  EXPECT_NEAR(sketch.entropy_bits(), 3.0, 0.01);
}

TEST(EntropySketch, SlidesWithTheWindow) {
  SlidingEntropySketch sketch(1024, 4096, 32);
  // Fill with high diversity, then flood a single key: the window must
  // forget the diverse prefix and collapse toward 0 bits.
  for (std::uint32_t i = 0; i < 2048; ++i) sketch.observe_key(i);
  const double diverse = sketch.entropy_bits();
  EXPECT_GT(diverse, 9.0);
  for (std::uint32_t i = 0; i < 2048; ++i) sketch.observe_key(0xdead);
  EXPECT_NEAR(sketch.entropy_bits(), 0.0, 1e-9);
}

TEST(EntropySketch, SpoofedFloodSaturates) {
  SlidingEntropySketch sketch(4096, 4096, 33);
  for (std::uint32_t i = 0; i < 8192; ++i) sketch.observe_key(i * 2654435761u);
  // All-distinct keys: entropy approaches log2(window) minus collision
  // loss (~0.8 bits for load factor 1).
  EXPECT_GT(sketch.entropy_bits(), 10.5);
  EXPECT_LE(sketch.entropy_bits(), 12.0);
}

TEST(EntropySketch, ClearResets) {
  SlidingEntropySketch sketch(64, 64, 34);
  for (std::uint32_t i = 0; i < 100; ++i) sketch.observe_key(i);
  sketch.clear();
  EXPECT_FALSE(sketch.full());
  EXPECT_EQ(sketch.entropy_bits(), 0.0);
}

TEST(RateCusum, RatchetsAcrossBursts) {
  RateCusum cusum(10.0, 5.0, 100.0);
  // Benign windows hover at the mean: statistic stays pinned at 0.
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(cusum.fold(10.0));
  EXPECT_EQ(cusum.statistic(), 0.0);
  // 40-per-window bursts with quiet gaps: each burst adds 25, each gap
  // subtracts 15 — the ratchet still climbs to the threshold.
  bool alarmed = false;
  for (int i = 0; i < 40 && !alarmed; ++i) {
    alarmed = cusum.fold(i % 2 == 0 ? 40.0 : 0.0);
  }
  EXPECT_TRUE(alarmed);
}

pkt::Packet make_packet(std::uint32_t src) {
  pkt::Packet p;
  p.header = pkt::IpHeader(src, 42, pkt::IpProto::kUdp, 64);
  return p;
}

TEST(SketchDetectors, EntropyDetectorAlarmsOnSpoofedFlood) {
  SketchDetectorTuning tuning;
  tuning.entropy_window = 1024;
  tuning.entropy_buckets = 2048;
  tuning.entropy_low_bits = 0.5;
  tuning.entropy_high_bits = 8.0;
  SketchEntropyDetector detector(tuning);
  netsim::SimTime t = 0;
  // Benign: 64 distinct sources -> ~6 bits, inside the band.
  for (int i = 0; i < 4096; ++i) detector.observe(make_packet(i % 64), ++t);
  EXPECT_FALSE(detector.alarmed()) << detector.current_entropy();
  // Spoofed flood: every packet a fresh source -> entropy > 8 bits.
  for (std::uint32_t i = 0; i < 4096; ++i) {
    detector.observe(make_packet(0x10000 + i), ++t);
  }
  EXPECT_TRUE(detector.alarmed());
  EXPECT_LE(detector.memory_bytes(), kMemoryBudget);
  detector.reset();
  EXPECT_FALSE(detector.alarmed());
}

TEST(SketchDetectors, HeavyHitterAlarmsOnDominatingSource) {
  SketchDetectorTuning tuning;
  tuning.hh_min_total = 256;
  tuning.hh_share = 0.5;
  HeavyHitterDetector detector(tuning);
  netsim::SimTime t = 0;
  for (int round = 0; round < 64; ++round) {
    for (std::uint32_t s = 0; s < 16; ++s) detector.observe(make_packet(s), ++t);
  }
  EXPECT_FALSE(detector.alarmed());  // uniform: max share 1/16
  for (int i = 0; i < 4096; ++i) detector.observe(make_packet(7), ++t);
  EXPECT_TRUE(detector.alarmed());
  EXPECT_EQ(detector.top_source().key, 7u);
}

TEST(SketchDetectors, SketchCusumCatchesPulsingSource) {
  SketchDetectorTuning tuning;
  tuning.cusum_window = 1000;
  tuning.cusum_mean = 10.0;
  tuning.cusum_slack = 5.0;
  tuning.cusum_threshold = 200.0;
  SketchCusumDetector detector(tuning);
  netsim::SimTime t = 0;
  // Benign: ~10 packets per window from rotating sources.
  for (int w = 0; w < 20; ++w) {
    for (int i = 0; i < 10; ++i) detector.observe(make_packet(i), t + 100u * i);
    t += 1000;
  }
  EXPECT_FALSE(detector.alarmed());
  // Pulse: every other window one source fires 100 packets.
  for (int w = 0; w < 20 && !detector.alarmed(); ++w) {
    if (w % 2 == 0) {
      for (int i = 0; i < 100; ++i) detector.observe(make_packet(666), t + i);
    } else {
      detector.observe(make_packet(1), t + 1);
    }
    t += 1000;
  }
  EXPECT_TRUE(detector.alarmed());
}

TEST(SketchDetectors, FactoryBuildsEveryName) {
  for (const char* name :
       {"rate-threshold", "entropy", "cusum", "syn-half-open",
        "sketch-entropy", "heavy-hitter", "sketch-cusum"}) {
    const auto detector = make_detector(name, 0.02, 2000, {});
    ASSERT_NE(detector, nullptr) << name;
    EXPECT_FALSE(detector->alarmed());
    EXPECT_LE(detector->memory_bytes(), kMemoryBudget);
  }
  EXPECT_THROW(make_detector("nope", 0.02, 2000, {}), std::invalid_argument);
}

TEST(FlowAnalyzer, QuietOnBenignTraffic) {
  flow::TraceGenConfig gen;
  gen.seed = 9;
  gen.attack = flow::AttackShape::kNone;
  gen.duration = 400'000;
  flow::TraceGenerator source(gen);
  const StreamReport report = replay(source, FlowAnalyzerConfig{});
  EXPECT_FALSE(report.detection_time.has_value());
  EXPECT_FALSE(report.victim_identified);
  EXPECT_GT(report.records, 1000u);
}

TEST(FlowAnalyzer, DetectsFloodAndNamesVictim) {
  flow::TraceGenConfig gen;
  gen.seed = 10;
  gen.attack = flow::AttackShape::kFlood;
  gen.attack_sources = 50'000;
  gen.attack_start = 100'000;
  gen.attack_duration = 200'000;
  gen.duration = 400'000;
  flow::TraceGenerator source(gen);
  FlowAnalyzerConfig config;
  const StreamReport report = replay(source, config);
  ASSERT_TRUE(report.detection_time.has_value());
  // Detection within two windows of the attack starting.
  EXPECT_GE(*report.detection_time, gen.attack_start);
  EXPECT_LE(*report.detection_time, gen.attack_start + 2 * config.window);
  EXPECT_TRUE(report.victim_identified);
  EXPECT_EQ(report.victim, gen.victim);
  EXPECT_LE(report.memory_bytes, kMemoryBudget);
  // The victim tops the cumulative destination heavy hitters.
  ASSERT_FALSE(report.top_dests.empty());
  EXPECT_EQ(report.top_dests[0].key, gen.victim);
}

TEST(FlowAnalyzer, MemoryIndependentOfSourceCount) {
  FlowAnalyzerConfig config;
  const std::size_t expected = FlowStreamAnalyzer(config).memory_bytes();
  for (std::uint32_t sources : {10'000u, 100'000u}) {
    flow::TraceGenConfig gen;
    gen.attack_sources = sources;
    gen.duration = 200'000;
    gen.attack_start = 50'000;
    gen.attack_duration = 100'000;
    flow::TraceGenerator source(gen);
    const StreamReport report = replay(source, config);
    EXPECT_EQ(report.memory_bytes, expected) << sources;
  }
}

TEST(FlowAnalyzer, LateRecordsFoldIntoOpenWindow) {
  FlowAnalyzerConfig config;
  config.window = 1000;
  FlowStreamAnalyzer analyzer(config);
  flow::FlowRecord r;
  r.src = 1;
  r.dst = 2;
  r.packets = 1;
  r.bytes = 100;
  r.first_ts = 5'500;
  r.last_ts = 5'500;
  analyzer.ingest(r);
  r.first_ts = 200;  // straggler from an earlier window
  analyzer.ingest(r);
  const StreamReport report = analyzer.finish();
  EXPECT_EQ(report.records, 2u);
  EXPECT_EQ(report.windows, 6u);  // windows 0..5 closed
}

TEST(StreamReportJson, IsWellFormedAndStable) {
  flow::TraceGenConfig gen;
  gen.duration = 100'000;
  gen.attack_start = 20'000;
  gen.attack_duration = 50'000;
  flow::TraceGenerator source(gen);
  const StreamReport report = replay(source, FlowAnalyzerConfig{});
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"records\""), std::string::npos);
  EXPECT_NE(json.find("\"detection_time\""), std::string::npos);
  EXPECT_NE(json.find("\"top_dests\""), std::string::npos);
  // No "jobs" field: reports at different parallelism compare bytewise.
  EXPECT_EQ(json.find("jobs"), std::string::npos);
}

}  // namespace
}  // namespace ddpm::stream
