#include "routing/dor.hpp"

#include <gtest/gtest.h>

#include "marking/walk.hpp"
#include "topology/factory.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"
#include "topology/torus.hpp"

namespace ddpm::route {
namespace {

using mark::walk_packet;
using topo::Coord;

TEST(DimensionOrder, XyRoutesDimension0First) {
  topo::Mesh m({4, 4});
  DimensionOrderRouter router(m);
  const auto walk = walk_packet(m, router, nullptr, m.id_of(Coord{0, 0}),
                                m.id_of(Coord{3, 2}));
  ASSERT_TRUE(walk.delivered());
  // Expect x-correcting hops first, then y.
  const std::vector<topo::NodeId> expected{
      m.id_of(Coord{0, 0}), m.id_of(Coord{1, 0}), m.id_of(Coord{2, 0}),
      m.id_of(Coord{3, 0}), m.id_of(Coord{3, 1}), m.id_of(Coord{3, 2})};
  EXPECT_EQ(walk.path, expected);
}

TEST(DimensionOrder, ExactlyOneTurn) {
  topo::Mesh m({6, 6});
  DimensionOrderRouter router(m);
  const auto walk = walk_packet(m, router, nullptr, m.id_of(Coord{5, 5}),
                                m.id_of(Coord{1, 0}));
  ASSERT_TRUE(walk.delivered());
  // Count direction changes along the path: XY routing allows one turn.
  int turns = 0;
  std::optional<std::size_t> prev_dim;
  for (std::size_t i = 1; i < walk.path.size(); ++i) {
    const Coord a = m.coord_of(walk.path[i - 1]);
    const Coord b = m.coord_of(walk.path[i]);
    const std::size_t dim = (a[0] != b[0]) ? 0 : 1;
    if (prev_dim && dim != *prev_dim) ++turns;
    prev_dim = dim;
  }
  EXPECT_LE(turns, 1);
}

TEST(DimensionOrder, DeterministicSamePathEveryTime) {
  topo::Mesh m({5, 5});
  DimensionOrderRouter router(m);
  EXPECT_TRUE(router.is_deterministic());
  mark::WalkOptions a, b;
  a.seed = 1;
  b.seed = 999;  // different RNG must not matter
  const auto w1 = walk_packet(m, router, nullptr, 3, 21, a);
  const auto w2 = walk_packet(m, router, nullptr, 3, 21, b);
  EXPECT_EQ(w1.path, w2.path);
}

TEST(DimensionOrder, MinimalOnAllPairs) {
  topo::Mesh m({4, 4});
  DimensionOrderRouter router(m);
  for (topo::NodeId s = 0; s < m.num_nodes(); ++s) {
    for (topo::NodeId d = 0; d < m.num_nodes(); ++d) {
      if (s == d) continue;
      const auto walk = walk_packet(m, router, nullptr, s, d);
      ASSERT_TRUE(walk.delivered());
      EXPECT_EQ(walk.hops, m.min_hops(s, d));
    }
  }
}

TEST(DimensionOrder, TorusTakesShorterRingDirection) {
  topo::Torus t({8, 8});
  DimensionOrderRouter router(t);
  // From (0,0) to (6,0): going minus (wrapping) is 2 hops, plus is 6.
  const auto walk = walk_packet(t, router, nullptr, t.id_of(Coord{0, 0}),
                                t.id_of(Coord{6, 0}));
  ASSERT_TRUE(walk.delivered());
  EXPECT_EQ(walk.hops, 2);
  EXPECT_EQ(walk.path[1], t.id_of(Coord{7, 0}));
}

TEST(DimensionOrder, TorusMinimalOnAllPairs) {
  topo::Torus t({5, 4});
  DimensionOrderRouter router(t);
  for (topo::NodeId s = 0; s < t.num_nodes(); s += 2) {
    for (topo::NodeId d = 0; d < t.num_nodes(); ++d) {
      if (s == d) continue;
      const auto walk = walk_packet(t, router, nullptr, s, d);
      ASSERT_TRUE(walk.delivered());
      EXPECT_EQ(walk.hops, t.min_hops(s, d));
    }
  }
}

TEST(DimensionOrder, HypercubeEcubeFlipsLowestBitFirst) {
  topo::Hypercube h(4);
  DimensionOrderRouter router(h);
  const auto walk = walk_packet(h, router, nullptr, 0b0000, 0b1011);
  ASSERT_TRUE(walk.delivered());
  const std::vector<topo::NodeId> expected{0b0000, 0b0001, 0b0011, 0b1011};
  EXPECT_EQ(walk.path, expected);
}

TEST(DimensionOrder, BlockedByFailedLinkOnItsOnlyPath) {
  // Figure 2(b)'s premise: deterministic routing cannot sidestep a failed
  // link on its fixed path.
  topo::Mesh m({4, 4});
  DimensionOrderRouter router(m);
  topo::LinkFailureSet failures;
  failures.fail(m.id_of(Coord{1, 0}), m.id_of(Coord{2, 0}));
  mark::WalkOptions options;
  options.failures = &failures;
  const auto walk = walk_packet(m, router, nullptr, m.id_of(Coord{0, 0}),
                                m.id_of(Coord{3, 0}), options);
  EXPECT_EQ(walk.outcome, mark::WalkOutcome::kBlocked);
}

TEST(DimensionOrder, NoCandidatesAtDestination) {
  topo::Mesh m({4, 4});
  DimensionOrderRouter router(m);
  EXPECT_TRUE(router.candidates(5, 5, kLocalPort).empty());
}

TEST(ProductiveDirection, MeshAndTorusSemantics) {
  topo::Mesh m({8, 8});
  EXPECT_EQ(productive_direction(m, 0, 2, 5), +1);
  EXPECT_EQ(productive_direction(m, 0, 5, 2), -1);
  EXPECT_EQ(productive_direction(m, 0, 3, 3), 0);
  topo::Torus t({8, 8});
  EXPECT_EQ(productive_direction(t, 0, 0, 6), -1);  // wrap is shorter
  EXPECT_EQ(productive_direction(t, 0, 0, 3), +1);
  EXPECT_EQ(productive_direction(t, 0, 0, 4), +1);  // tie goes positive
}

}  // namespace
}  // namespace ddpm::route
