#include "indirect/port_stamp.hpp"

#include <gtest/gtest.h>

namespace ddpm::indirect {
namespace {

TEST(PortStamp, RequiredBitsMatchesLogN) {
  EXPECT_EQ(PortStampScheme::required_bits(Butterfly(2, 16)), 16);
  EXPECT_EQ(PortStampScheme::required_bits(Butterfly(4, 8)), 16);
  EXPECT_EQ(PortStampScheme::required_bits(Butterfly(8, 5)), 15);
  EXPECT_EQ(PortStampScheme::required_bits(Butterfly(16, 4)), 16);
  EXPECT_TRUE(PortStampScheme::fits(Butterfly(2, 16)));   // 65536 terminals
  EXPECT_FALSE(PortStampScheme::fits(Butterfly(2, 17)));
}

TEST(PortStamp, ConstructorEnforcesFieldLimit) {
  Butterfly too_big(4, 9);  // 18 bits
  EXPECT_THROW(PortStampScheme{too_big}, std::invalid_argument);
}

TEST(PortStamp, IdentifiesEverySourceExhaustively) {
  for (const auto& [k, n] : std::vector<std::pair<int, int>>{
           {2, 4}, {3, 3}, {4, 3}, {8, 2}}) {
    Butterfly net(k, n);
    PortStampScheme scheme(net);
    for (TerminalId s = 0; s < net.num_terminals(); ++s) {
      for (TerminalId d = 0; d < net.num_terminals(); ++d) {
        const auto field = scheme.mark_along(s, d, 0);
        ASSERT_EQ(scheme.identify(field), s)
            << "k=" << k << " n=" << n << " s=" << s << " d=" << d;
      }
    }
  }
}

TEST(PortStamp, AttackerSeededFieldCannotDeflectIdentification) {
  // Every stage overwrites its digit slot, so whatever the attacker seeds,
  // all bits the identifier reads are switch-written — stronger than
  // DDPM's injection-time reset, which only the first switch performs.
  // (Bits above n*b are unused and ignored by identify().)
  Butterfly net(2, 8);
  PortStampScheme scheme(net);
  const TerminalId src = 173, dst = 9;
  const std::uint16_t used_mask = (1u << (8 * 1)) - 1u;
  const auto clean = scheme.mark_along(src, dst, 0);
  for (std::uint16_t seed : {std::uint16_t(0xffff), std::uint16_t(0xbeef),
                             std::uint16_t(0x0001)}) {
    const auto field = scheme.mark_along(src, dst, seed);
    EXPECT_EQ(field & used_mask, clean & used_mask);
    EXPECT_EQ(scheme.identify(field), src);
  }
  EXPECT_EQ(scheme.identify(clean), src);
}

TEST(PortStamp, FieldIsLiterallyTheSourceForPowerOfTwoRadix) {
  Butterfly net(2, 10);
  PortStampScheme scheme(net);
  // With k a power of two the digit slots concatenate into the source id.
  EXPECT_EQ(scheme.mark_along(777, 3, 0), 777);
}

TEST(PortStamp, NonPowerOfTwoRadixHasDeadCodePoints) {
  Butterfly net(3, 3);  // digits 0..2 in 2-bit slots; value 3 is invalid
  PortStampScheme scheme(net);
  // A field with an out-of-range digit decodes to "unidentifiable".
  const std::uint16_t bogus = 0b11'11'11;
  EXPECT_FALSE(scheme.identify(bogus).has_value());
}

TEST(PortStamp, MarkWritesOnlyItsSlot) {
  Butterfly net(4, 3);
  PortStampScheme scheme(net);
  const std::uint16_t before = 0b111111;  // slots: 11|11|11
  const std::uint16_t after = scheme.mark(before, 1, 0b00);
  EXPECT_EQ(after, 0b110011);
}

}  // namespace
}  // namespace ddpm::indirect
