#include "marking/dpm.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "marking/walk.hpp"
#include "routing/adaptive.hpp"
#include "routing/dor.hpp"
#include "topology/mesh.hpp"
#include "topology/torus.hpp"

namespace ddpm::mark {
namespace {

using topo::Coord;

TEST(DpmScheme, MarkBitDeterministic) {
  DpmScheme a, b;
  for (topo::NodeId n = 0; n < 100; ++n) {
    EXPECT_EQ(a.mark_bit(n, 0), b.mark_bit(n, 0));
  }
}

TEST(DpmScheme, SwitchIndexHashIgnoresNext) {
  DpmScheme scheme(DpmScheme::HashInput::kSwitchIndex);
  EXPECT_EQ(scheme.mark_bit(5, 1), scheme.mark_bit(5, 99));
}

TEST(DpmScheme, EdgePairHashUsesBothEndpoints) {
  DpmScheme scheme(DpmScheme::HashInput::kEdgePair);
  bool any_difference = false;
  for (topo::NodeId n = 0; n < 64 && !any_difference; ++n) {
    any_difference = scheme.mark_bit(n, 1) != scheme.mark_bit(n, 2);
  }
  EXPECT_TRUE(any_difference);
}

TEST(DpmScheme, HashBitsRoughlyBalanced) {
  // Paper §4.3: "two out of four neighbors in the 2-D mesh have the same
  // last bit" on average — the hash bit must be ~uniform.
  DpmScheme scheme;
  int ones = 0;
  for (topo::NodeId n = 0; n < 1024; ++n) ones += scheme.mark_bit(n, 0);
  EXPECT_NEAR(double(ones) / 1024.0, 0.5, 0.06);
}

TEST(DpmScheme, WritesPositionTtlMod16) {
  DpmScheme scheme;
  pkt::Packet p;
  p.header.set_ttl(37);  // switch already decremented: position 37 % 16 = 5
  p.set_marking_field(0);
  scheme.on_forward(p, 3, 4);
  const std::uint16_t field = p.marking_field();
  // Only bit 5 may differ from zero, and equals the hash bit.
  EXPECT_EQ(field & ~(1u << 5), 0);
  EXPECT_EQ(bool(field >> 5 & 1), scheme.mark_bit(3, 4));
}

TEST(DpmIdentifier, TrainedLookupFindsSourceUnderStableRoutes) {
  topo::Mesh m({8, 8});
  DpmScheme scheme;
  route::DimensionOrderRouter router(m);
  const auto victim = m.id_of(Coord{7, 7});
  DpmIdentifier identifier(m, router, victim, scheme);
  // Every source's runtime signature must match training, and the lookup
  // must contain the true source.
  for (topo::NodeId src = 0; src < m.num_nodes(); ++src) {
    if (src == victim) continue;
    const auto walk = walk_packet(m, router, &scheme, src, victim);
    ASSERT_TRUE(walk.delivered());
    EXPECT_EQ(walk.packet.marking_field(), identifier.signature_of(src));
    const auto candidates = identifier.observe(walk.packet, victim);
    EXPECT_NE(std::find(candidates.begin(), candidates.end(), src),
              candidates.end());
  }
}

TEST(DpmIdentifier, SignatureCollisionsExist) {
  // 63 sources into at most 2^16 signatures — but near sources leave most
  // of the field untouched, and hash bits collide; the paper expects
  // ambiguity. At minimum, distinct_signatures <= sources, and usually <.
  topo::Mesh m({8, 8});
  DpmScheme scheme;
  route::DimensionOrderRouter router(m);
  const auto victim = m.id_of(Coord{0, 0});
  DpmIdentifier identifier(m, router, victim, scheme);
  EXPECT_LE(identifier.distinct_signatures(), std::size_t(m.num_nodes() - 1));
  // Ambiguity factor: how many sources share the most popular signature.
  std::size_t worst = 0;
  std::set<std::uint16_t> seen;
  for (topo::NodeId src = 0; src < m.num_nodes(); ++src) {
    if (src == victim) continue;
    const auto sig = identifier.signature_of(src);
    if (!seen.insert(sig).second) worst = 1;  // at least one collision
  }
  EXPECT_EQ(identifier.distinct_signatures() < m.num_nodes() - 1, worst == 1);
}

TEST(DpmIdentifier, AdaptiveRoutingProducesUnknownSignatures) {
  // Paper §4.3: adaptive routing gives one source many signatures, most of
  // which training (on deterministic routes) never saw.
  topo::Mesh m({8, 8});
  DpmScheme scheme;
  route::DimensionOrderRouter trained(m);
  route::AdaptiveRouter adaptive(m);
  const auto victim = m.id_of(Coord{7, 7});
  DpmIdentifier identifier(m, trained, victim, scheme);
  const auto src = m.id_of(Coord{0, 0});
  int missed = 0, wrong = 0, trials = 200;
  for (int i = 0; i < trials; ++i) {
    WalkOptions options;
    options.seed = std::uint64_t(i) * 31 + 1;
    options.record_path = false;
    const auto walk = walk_packet(m, adaptive, &scheme, src, victim, options);
    ASSERT_TRUE(walk.delivered());
    const auto candidates = identifier.observe(walk.packet, victim);
    if (candidates.empty()) {
      ++missed;
    } else if (std::find(candidates.begin(), candidates.end(), src) ==
               candidates.end()) {
      ++wrong;
    }
  }
  EXPECT_GT(missed + wrong, trials / 2) << "DPM should break under adaptivity";
}

TEST(DpmIdentifier, LongPathsOverwriteSourceBits) {
  // Paper §4.3: beyond 16 hops the early marks are overwritten. On a
  // 20x20 mesh two far-apart sources whose last 16 switches coincide get
  // identical signatures even though their paths differ before that.
  topo::Mesh m({20, 20});
  DpmScheme scheme;
  route::DimensionOrderRouter router(m);
  const auto victim = m.id_of(Coord{19, 19});
  // Equidistant sources (same TTL alignment) whose XY paths share the final
  // 16+ switches up column x=19 but differ before that: the last 16 writes
  // cover every field position and erase the earlier difference.
  const auto far1 = m.id_of(Coord{0, 2});
  const auto far2 = m.id_of(Coord{2, 0});
  const auto w1 = walk_packet(m, router, &scheme, far1, victim);
  const auto w2 = walk_packet(m, router, &scheme, far2, victim);
  ASSERT_TRUE(w1.delivered());
  ASSERT_TRUE(w2.delivered());
  ASSERT_EQ(w1.hops, w2.hops);
  ASSERT_GT(w1.hops, 16);
  EXPECT_EQ(w1.packet.marking_field(), w2.packet.marking_field());
}

TEST(DpmIdentifier, RequiresDeterministicTrainingRoute) {
  topo::Mesh m({4, 4});
  DpmScheme scheme;
  route::AdaptiveRouter adaptive(m);
  EXPECT_THROW(DpmIdentifier(m, adaptive, 0, scheme), std::invalid_argument);
}

TEST(DpmIdentifier, WrongVictimYieldsNothing) {
  topo::Mesh m({4, 4});
  DpmScheme scheme;
  route::DimensionOrderRouter router(m);
  DpmIdentifier identifier(m, router, 15, scheme);
  pkt::Packet p;
  p.set_marking_field(identifier.signature_of(0));
  EXPECT_FALSE(identifier.observe(p, 15).empty());
  EXPECT_TRUE(identifier.observe(p, 3).empty());
}

TEST(PiVariant, MultiBitMarkingWindowAndValues) {
  DpmScheme pi2(DpmScheme::HashInput::kSwitchIndex, 2);
  EXPECT_EQ(pi2.name(), "pi-2");
  EXPECT_EQ(pi2.window_hops(), 8);
  EXPECT_LT(pi2.mark_value(3, 0), 4u);
  EXPECT_THROW(DpmScheme(DpmScheme::HashInput::kSwitchIndex, 3),
               std::invalid_argument);
  EXPECT_THROW(DpmScheme(DpmScheme::HashInput::kSwitchIndex, 0),
               std::invalid_argument);
}

TEST(PiVariant, FewerCollisionsThanOneBitOnShortPaths) {
  // Within its window, 2 bits per hop discriminate sources better: fewer
  // trained-signature collisions at the same victim on an 8x8 mesh
  // (diameter 14 > 8, so some far sources wrap — the trade is visible in
  // both directions; collisions still drop overall here).
  topo::Mesh m({8, 8});
  route::DimensionOrderRouter router(m);
  const auto victim = m.id_of(Coord{4, 4});  // max distance 8 = pi-2 window
  DpmScheme one_bit(DpmScheme::HashInput::kSwitchIndex, 1);
  DpmScheme two_bit(DpmScheme::HashInput::kSwitchIndex, 2);
  DpmIdentifier id1(m, router, victim, one_bit);
  DpmIdentifier id2(m, router, victim, two_bit);
  EXPECT_GT(id2.distinct_signatures(), id1.distinct_signatures());
}

TEST(PiVariant, RuntimeMatchesTraining) {
  topo::Mesh m({6, 6});
  route::DimensionOrderRouter router(m);
  DpmScheme pi4(DpmScheme::HashInput::kEdgePair, 4);
  DpmIdentifier identifier(m, router, 35, pi4);
  for (topo::NodeId src = 0; src < 35; ++src) {
    const auto walk = walk_packet(m, router, &pi4, src, 35);
    ASSERT_TRUE(walk.delivered());
    EXPECT_EQ(walk.packet.marking_field(), identifier.signature_of(src));
  }
}

}  // namespace
}  // namespace ddpm::mark
