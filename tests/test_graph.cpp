#include "topology/graph.hpp"

#include <gtest/gtest.h>

#include "topology/factory.hpp"
#include "topology/mesh.hpp"

namespace ddpm::topo {
namespace {

TEST(Graph, BfsDistancesOnMesh) {
  Mesh m({4, 4});
  const auto dist = bfs_distances(m, m.id_of(Coord{0, 0}));
  EXPECT_EQ(dist[m.id_of(Coord{0, 0})], 0);
  EXPECT_EQ(dist[m.id_of(Coord{3, 3})], 6);
  EXPECT_EQ(dist[m.id_of(Coord{1, 2})], 3);
}

TEST(Graph, ShortestPathEndpointsAndLength) {
  Mesh m({4, 4});
  const NodeId s = m.id_of(Coord{0, 0});
  const NodeId d = m.id_of(Coord{2, 3});
  const auto path = shortest_path(m, s, d);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->front(), s);
  EXPECT_EQ(path->back(), d);
  EXPECT_EQ(int(path->size()) - 1, m.min_hops(s, d));
  // Consecutive nodes must be adjacent.
  for (std::size_t i = 1; i < path->size(); ++i) {
    EXPECT_TRUE(m.port_to((*path)[i - 1], (*path)[i]).has_value());
  }
}

TEST(Graph, ShortestPathToSelf) {
  Mesh m({3, 3});
  const auto path = shortest_path(m, 4, 4);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 1u);
}

TEST(Graph, FailuresLengthenPaths) {
  Mesh m({3, 3});
  // Cut the direct middle column links around the center.
  LinkFailureSet failures;
  const NodeId s = m.id_of(Coord{0, 0});
  const NodeId d = m.id_of(Coord{0, 2});
  failures.fail(m.id_of(Coord{0, 0}), m.id_of(Coord{0, 1}));
  const int with = hop_distance(m, s, d, &failures);
  EXPECT_EQ(hop_distance(m, s, d), 2);
  EXPECT_EQ(with, 4);  // detour through row 1
}

TEST(Graph, DisconnectionDetected) {
  Mesh m({2, 2});
  LinkFailureSet failures;
  // Isolate node (0,0) completely.
  failures.fail(m.id_of(Coord{0, 0}), m.id_of(Coord{0, 1}));
  failures.fail(m.id_of(Coord{0, 0}), m.id_of(Coord{1, 0}));
  EXPECT_FALSE(is_connected(m, &failures));
  EXPECT_TRUE(is_connected(m));
  EXPECT_EQ(hop_distance(m, m.id_of(Coord{0, 0}), m.id_of(Coord{1, 1}), &failures), -1);
  EXPECT_FALSE(shortest_path(m, m.id_of(Coord{0, 0}), m.id_of(Coord{1, 1}),
                             &failures)
                   .has_value());
}

TEST(Graph, AllTopologiesConnected) {
  for (const char* spec : {"mesh:4x4", "torus:4x4", "hypercube:4",
                           "mesh:2x3x4", "torus:3x3x3"}) {
    const auto topo = make_topology(spec);
    EXPECT_TRUE(is_connected(*topo)) << spec;
  }
}

TEST(LinkFailures, SymmetricAndClearable) {
  LinkFailureSet failures;
  failures.fail(3, 7);
  EXPECT_TRUE(failures.is_failed(3, 7));
  EXPECT_TRUE(failures.is_failed(7, 3));
  EXPECT_FALSE(failures.is_failed(3, 8));
  failures.restore(7, 3);
  EXPECT_FALSE(failures.is_failed(3, 7));
  failures.fail(1, 2);
  failures.fail(2, 3);
  EXPECT_EQ(failures.size(), 2u);
  failures.clear();
  EXPECT_EQ(failures.size(), 0u);
}

}  // namespace
}  // namespace ddpm::topo
