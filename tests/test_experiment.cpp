#include "core/experiment.hpp"

#include <gtest/gtest.h>

namespace ddpm::core {
namespace {

ScenarioConfig scenario() {
  ScenarioConfig config;
  config.cluster.topology = "mesh:6x6";
  config.cluster.benign_rate_per_node = 0.0002;
  config.identifier = "ddpm";
  config.detect_rate_threshold = 0.003;
  config.attack.kind = attack::AttackKind::kUdpFlood;
  config.attack.victim = 35;
  config.attack.zombies = {1, 20};
  config.attack.rate_per_zombie = 0.008;
  config.attack.start_time = 30000;
  config.duration = 200000;
  return config;
}

TEST(Experiment, AggregatesAcrossSeeds) {
  const auto summary = run_repeated_n(scenario(), 5);
  EXPECT_EQ(summary.runs, 5u);
  EXPECT_EQ(summary.detected_runs, 5u);
  // DDPM is exact in every run regardless of seed.
  EXPECT_EQ(summary.perfect_runs, 5u);
  EXPECT_DOUBLE_EQ(summary.true_positives.mean(), 2.0);
  EXPECT_DOUBLE_EQ(summary.false_positives.mean(), 0.0);
  EXPECT_GT(summary.detection_latency.mean(), 0.0);
  // Seeds vary detection latency but not correctness.
  EXPECT_GE(summary.detection_latency.stddev(), 0.0);
}

TEST(Experiment, ExplicitSeedListRespected) {
  const auto a = run_repeated(scenario(), {42});
  const auto b = run_repeated(scenario(), {42});
  EXPECT_EQ(a.runs, 1u);
  EXPECT_DOUBLE_EQ(a.detection_latency.mean(), b.detection_latency.mean());
}

TEST(Experiment, SummaryStringMentionsKeyNumbers) {
  const auto summary = run_repeated_n(scenario(), 2);
  const auto text = summary.to_string();
  EXPECT_NE(text.find("2 runs"), std::string::npos);
  EXPECT_NE(text.find("perfect 2/2"), std::string::npos);
}

}  // namespace
}  // namespace ddpm::core
