#include "packet/ip_header.hpp"

#include <gtest/gtest.h>

namespace ddpm::pkt {
namespace {

TEST(IpHeader, SerializeParseRoundTrip) {
  IpHeader h(0x0a000001, 0x0a000002, IpProto::kUdp, 100);
  h.set_identification(0xbeef);
  h.set_ttl(37);
  const auto wire = h.serialize();
  const IpHeader parsed = IpHeader::parse(wire);
  EXPECT_EQ(parsed.source(), 0x0a000001u);
  EXPECT_EQ(parsed.destination(), 0x0a000002u);
  EXPECT_EQ(parsed.protocol(), IpProto::kUdp);
  EXPECT_EQ(parsed.identification(), 0xbeef);
  EXPECT_EQ(parsed.ttl(), 37);
  EXPECT_EQ(parsed.total_length(), 120);
}

TEST(IpHeader, WireFormatFields) {
  IpHeader h(0x01020304, 0x05060708, IpProto::kTcp, 0);
  const auto w = h.serialize();
  EXPECT_EQ(w[0], 0x45);             // version 4, IHL 5
  EXPECT_EQ(w[9], 6);                // TCP
  EXPECT_EQ(w[12], 0x01);            // src big-endian
  EXPECT_EQ(w[15], 0x04);
  EXPECT_EQ(w[16], 0x05);            // dst big-endian
  EXPECT_EQ(w[19], 0x08);
}

TEST(IpHeader, CorruptedChecksumRejected) {
  IpHeader h(1, 2, IpProto::kUdp, 10);
  auto wire = h.serialize();
  wire[15] ^= 0x01;  // flip a source-address bit without fixing checksum
  EXPECT_THROW(IpHeader::parse(wire), std::invalid_argument);
}

TEST(IpHeader, NonIpv4Rejected) {
  IpHeader h(1, 2, IpProto::kUdp, 10);
  auto wire = h.serialize();
  wire[0] = 0x60;  // IPv6 version nibble
  EXPECT_THROW(IpHeader::parse(wire), std::invalid_argument);
}

TEST(IpHeader, MarkingRewriteChangesChecksum) {
  // A switch rewriting the identification field must recompute the
  // checksum; serialize() always does.
  IpHeader h(1, 2, IpProto::kUdp, 10);
  h.set_identification(0x0000);
  const auto sum_before = h.compute_checksum();
  h.set_identification(0x1234);
  const auto sum_after = h.compute_checksum();
  EXPECT_NE(sum_before, sum_after);
  EXPECT_NO_THROW(IpHeader::parse(h.serialize()));
}

TEST(IpHeader, TtlDecrementSaturatesAtZero) {
  IpHeader h;
  h.set_ttl(2);
  EXPECT_EQ(h.decrement_ttl(), 1);
  EXPECT_EQ(h.decrement_ttl(), 0);
  EXPECT_EQ(h.decrement_ttl(), 0);
}

TEST(IpHeader, SpoofingOverwritesSource) {
  IpHeader h(0x0a000001, 0x0a000002, IpProto::kUdp, 0);
  h.set_source(0xdeadbeef);
  EXPECT_EQ(h.source(), 0xdeadbeefu);
  EXPECT_EQ(h.destination(), 0x0a000002u);  // destination untouched
}

TEST(AddressToString, DottedQuad) {
  EXPECT_EQ(address_to_string(0x0a000001), "10.0.0.1");
  EXPECT_EQ(address_to_string(0xffffffff), "255.255.255.255");
  EXPECT_EQ(address_to_string(0), "0.0.0.0");
}

}  // namespace
}  // namespace ddpm::pkt
