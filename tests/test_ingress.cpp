#include "marking/ingress.hpp"

#include <gtest/gtest.h>

#include "irregular/irregular.hpp"
#include "marking/walk.hpp"
#include "routing/router.hpp"
#include "topology/factory.hpp"

namespace ddpm::mark {
namespace {

TEST(IngressStamp, IdentifiesOnDirectNetworks) {
  for (const char* spec : {"mesh:8x8", "torus:8x8", "hypercube:6"}) {
    const auto topo = topo::make_topology(spec);
    const auto router = route::make_router("adaptive", *topo);
    IngressStampScheme scheme(topo->num_nodes());
    IngressStampIdentifier identifier(topo->num_nodes());
    netsim::Rng rng(3);
    for (int trial = 0; trial < 100; ++trial) {
      const auto s = topo::NodeId(rng.next_below(topo->num_nodes()));
      auto d = topo::NodeId(rng.next_below(topo->num_nodes()));
      if (d == s) d = (d + 1) % topo->num_nodes();
      WalkOptions options;
      options.seed = rng.next_u64();
      options.record_path = false;
      // Attacker pre-loads the field; ingress stamp overwrites it.
      const auto walk =
          walk_packet(*topo, *router, &scheme, s, d, options, 0xffff);
      ASSERT_TRUE(walk.delivered()) << spec;
      const auto named = identifier.observe(walk.packet, d);
      ASSERT_EQ(named.size(), 1u) << spec;
      EXPECT_EQ(named.front(), s) << spec;
    }
  }
}

TEST(IngressStamp, IdentifiesOnIrregularNetworksWhereDdpmCannotRun) {
  // The §6.3 point: no coordinates, no DDPM — but ingress stamping only
  // needs a node index.
  irregular::IrregularTopology topo(48, 20, 41);
  irregular::UpDownRouter router(topo);
  IngressStampScheme scheme(topo.num_nodes());
  IngressStampIdentifier identifier(topo.num_nodes());
  netsim::Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const auto s = irregular::NodeId(rng.next_below(topo.num_nodes()));
    auto d = irregular::NodeId(rng.next_below(topo.num_nodes()));
    if (d == s) d = (d + 1) % topo.num_nodes();
    const auto path = walk_updown(topo, router, s, d, rng);
    ASSERT_FALSE(path.empty());
    // Emulate the switch pipeline over the walked path.
    pkt::Packet p;
    p.set_marking_field(0xffff);  // attacker seed
    scheme.on_injection(p, s);
    for (std::size_t i = 1; i < path.size(); ++i) {
      scheme.on_forward(p, path[i - 1], path[i]);
    }
    const auto named = identifier.observe(p, d);
    ASSERT_EQ(named.size(), 1u);
    EXPECT_EQ(named.front(), s);
  }
}

TEST(IngressStamp, ScalesToSixtyFourKNodes) {
  EXPECT_NO_THROW(IngressStampScheme(1ull << 16));
  EXPECT_THROW(IngressStampScheme((1ull << 16) + 1), std::invalid_argument);
}

TEST(IngressStamp, OutOfRangeStampRejected) {
  IngressStampIdentifier identifier(100);
  pkt::Packet p;
  p.set_marking_field(100);  // not a valid node
  EXPECT_TRUE(identifier.observe(p, 0).empty());
  p.set_marking_field(99);
  EXPECT_EQ(identifier.observe(p, 0), std::vector<topo::NodeId>{99});
}

TEST(IngressStamp, ForwardNeverTouchesField) {
  IngressStampScheme scheme(64);
  pkt::Packet p;
  p.set_marking_field(0x1234);
  scheme.on_forward(p, 5, 6);
  EXPECT_EQ(p.marking_field(), 0x1234);
}

}  // namespace
}  // namespace ddpm::mark
