#include "marking/ppm_reconstruct.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "marking/walk.hpp"
#include "routing/router.hpp"
#include "topology/mesh.hpp"

namespace ddpm::mark {
namespace {

using topo::Coord;

/// Feeds packets from `src` to `victim` through the scheme until the
/// identifier names the true source or the budget runs out; returns the
/// number of packets used (0 = never converged).
std::uint64_t packets_until_identified(const topo::Topology& topo,
                                       const route::Router& router,
                                       PpmScheme& scheme,
                                       PpmIdentifier& identifier,
                                       topo::NodeId src, topo::NodeId victim,
                                       std::uint64_t budget) {
  for (std::uint64_t n = 1; n <= budget; ++n) {
    WalkOptions options;
    options.seed = n * 7919;
    options.record_path = false;
    const auto walk = walk_packet(topo, router, &scheme, src, victim, options);
    if (!walk.delivered()) continue;
    const auto candidates = identifier.observe(walk.packet, victim);
    if (std::find(candidates.begin(), candidates.end(), src) !=
        candidates.end()) {
      return n;
    }
  }
  return 0;
}

TEST(PpmReconstruct, FullEdgeConvergesOnStableRoute) {
  topo::Mesh m({8, 8});
  PpmScheme scheme(m, PpmVariant::kFullEdge, 0.2, 42);
  PpmIdentifier identifier(m, PpmVariant::kFullEdge);
  const auto router = route::make_router("dor", m);
  const auto src = m.id_of(Coord{0, 0});
  const auto victim = m.id_of(Coord{7, 7});
  const auto used = packets_until_identified(m, *router, scheme, identifier,
                                             src, victim, 100000);
  EXPECT_GT(used, 0u) << "never identified";
  EXPECT_GT(identifier.unique_marks(), 10u);  // all 14 path edges sampled
}

TEST(PpmReconstruct, NeedsManyPacketsUnlikeDdpm) {
  // The victim cannot identify from one packet: the first packet yields at
  // most one mark, and a chain of one level-0 mark names only the last
  // switch, not the distant source.
  topo::Mesh m({8, 8});
  PpmScheme scheme(m, PpmVariant::kFullEdge, 0.04, 11);
  PpmIdentifier identifier(m, PpmVariant::kFullEdge);
  const auto router = route::make_router("dor", m);
  const auto src = m.id_of(Coord{0, 0});
  const auto victim = m.id_of(Coord{7, 7});
  const auto used = packets_until_identified(m, *router, scheme, identifier,
                                             src, victim, 200000);
  EXPECT_GT(used, 10u);
}

TEST(PpmReconstruct, IdentifiesMultipleAttackersEventually) {
  topo::Mesh m({8, 8});
  PpmScheme scheme(m, PpmVariant::kFullEdge, 0.15, 5);
  PpmIdentifier identifier(m, PpmVariant::kFullEdge);
  const auto router = route::make_router("dor", m);
  const auto victim = m.id_of(Coord{4, 4});
  const std::vector<topo::NodeId> attackers{m.id_of(Coord{0, 0}),
                                            m.id_of(Coord{7, 1})};
  std::set<topo::NodeId> found;
  for (std::uint64_t n = 1; n <= 60000 && found.size() < attackers.size(); ++n) {
    const auto src = attackers[n % attackers.size()];
    WalkOptions options;
    options.seed = n * 104729;
    options.record_path = false;
    const auto walk = walk_packet(m, *router, &scheme, src, victim, options);
    ASSERT_TRUE(walk.delivered());
    for (auto c : identifier.observe(walk.packet, victim)) {
      if (std::find(attackers.begin(), attackers.end(), c) != attackers.end()) {
        found.insert(c);
      }
    }
  }
  EXPECT_EQ(found.size(), attackers.size());
}

TEST(PpmReconstruct, AdaptiveRoutingBreaksChains) {
  // Under adaptive routing the marks come from many different paths; the
  // level-based chaining mixes them and convergence degrades badly — the
  // paper's §4.2 conclusion. We check it needs far more packets than the
  // deterministic case (or never converges in budget).
  topo::Mesh m({8, 8});
  const auto budget = 4000u;

  PpmScheme det_scheme(m, PpmVariant::kFullEdge, 0.1, 77);
  PpmIdentifier det_id(m, PpmVariant::kFullEdge);
  const auto dor = route::make_router("dor", m);
  const auto src = m.id_of(Coord{0, 0});
  const auto victim = m.id_of(Coord{7, 7});
  const auto det_used = packets_until_identified(m, *dor, det_scheme, det_id,
                                                 src, victim, budget);
  ASSERT_GT(det_used, 0u);

  PpmScheme ada_scheme(m, PpmVariant::kFullEdge, 0.1, 77);
  PpmIdentifier ada_id(m, PpmVariant::kFullEdge);
  const auto adaptive = route::make_router("adaptive", m);
  const auto ada_used = packets_until_identified(m, *adaptive, ada_scheme,
                                                 ada_id, src, victim, budget);
  // Either it never converged, or it took noticeably longer.
  if (ada_used != 0) {
    EXPECT_GT(ada_used, det_used);
  } else {
    SUCCEED();
  }
}

TEST(PpmReconstruct, SpoofedMarksPrunedByMapValidation) {
  // Marks naming non-edges are discarded (Song-Perrig map assumption), so
  // a victim fed garbage fields has no candidates.
  topo::Mesh m({8, 8});
  PpmIdentifier identifier(m, PpmVariant::kFullEdge);
  const auto layout = PpmLayout::for_topology(PpmVariant::kFullEdge, m);
  pkt::Packet p;
  std::uint16_t field = 0;
  field = pkt::write_unsigned(field, layout.start, 0);   // (0,0)
  field = pkt::write_unsigned(field, layout.end, 63);    // (7,7): not an edge
  field = pkt::write_unsigned(field, layout.distance, 1);
  p.set_marking_field(field);
  EXPECT_TRUE(identifier.observe(p, 63).empty());
}

TEST(PpmReconstruct, XorVariantAmbiguous) {
  // Feed the XOR identifier a long-running stream; its candidate sets
  // should (at least sometimes) contain multiple plausible origins, the
  // §4.2 ambiguity.
  topo::Mesh m({8, 8});
  PpmScheme scheme(m, PpmVariant::kXor, 0.15, 3);
  PpmIdentifier identifier(m, PpmVariant::kXor);
  const auto router = route::make_router("dor", m);
  const auto src = m.id_of(Coord{0, 0});
  const auto victim = m.id_of(Coord{7, 7});
  std::size_t max_candidates = 0;
  for (std::uint64_t n = 1; n <= 20000; ++n) {
    WalkOptions options;
    options.seed = n;
    options.record_path = false;
    const auto walk = walk_packet(m, *router, &scheme, src, victim, options);
    max_candidates =
        std::max(max_candidates, identifier.observe(walk.packet, victim).size());
  }
  EXPECT_GE(max_candidates, 1u);
}

TEST(PpmReconstruct, ChainEdgesReconstructTheAttackPath) {
  // Once converged on a stable route, the chain edges are exactly the
  // path's edges oriented toward the victim.
  topo::Mesh m({8, 8});
  PpmScheme scheme(m, PpmVariant::kFullEdge, 0.2, 42);
  PpmIdentifier identifier(m, PpmVariant::kFullEdge);
  const auto router = route::make_router("dor", m);
  const auto src = m.id_of(Coord{0, 0});
  const auto victim = m.id_of(Coord{7, 7});
  ASSERT_GT(packets_until_identified(m, *router, scheme, identifier, src,
                                     victim, 100000),
            0u);
  // Keep feeding so every edge has been sampled with high probability.
  for (std::uint64_t n = 0; n < 2000; ++n) {
    WalkOptions options;
    options.seed = n * 31 + 7;
    options.record_path = false;
    const auto walk = walk_packet(m, *router, &scheme, src, victim, options);
    identifier.observe(walk.packet, victim);
  }
  const auto edges = identifier.chain_edges(victim);
  // The DOR path has 14 edges; the reconstruction must contain each,
  // oriented (farther, closer).
  const auto path = walk_packet(m, *router, nullptr, src, victim).path;
  std::size_t found = 0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    found += std::count(edges.begin(), edges.end(),
                        std::make_pair(path[i], path[i + 1]));
  }
  EXPECT_EQ(found, path.size() - 1) << "missing path edges";
  // And nothing that is not a real topology edge (victim map validation).
  for (const auto& [a, b] : edges) {
    EXPECT_TRUE(m.port_to(a, b).has_value());
  }
}

TEST(PpmReconstruct, ResetClearsState) {
  topo::Mesh m({4, 4});
  PpmIdentifier identifier(m, PpmVariant::kFullEdge);
  pkt::Packet p;
  p.set_marking_field(0);
  identifier.observe(p, 5);
  EXPECT_GT(identifier.unique_marks(), 0u);
  identifier.reset();
  EXPECT_EQ(identifier.unique_marks(), 0u);
  EXPECT_TRUE(identifier.origins(5).empty());
}

TEST(PpmReconstruct, BitDiffWorksOnHypercubeStyleIds) {
  // On the 8x8 mesh with row-major ids, column neighbors differ by 1 and
  // row neighbors by 8 — both single-bit differences, so bit-diff marks
  // reconstruct like full-edge ones on paths that use such edges.
  topo::Mesh m({8, 8});
  PpmScheme scheme(m, PpmVariant::kBitDiff, 0.2, 9);
  PpmIdentifier identifier(m, PpmVariant::kBitDiff);
  const auto router = route::make_router("dor", m);
  const auto src = m.id_of(Coord{0, 0});
  const auto victim = m.id_of(Coord{4, 4});
  const auto used = packets_until_identified(m, *router, scheme, identifier,
                                             src, victim, 60000);
  EXPECT_GT(used, 0u);
}

}  // namespace
}  // namespace ddpm::mark
