#include "marking/ppm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "marking/walk.hpp"
#include "packet/marking_field.hpp"
#include "routing/router.hpp"
#include "topology/factory.hpp"
#include "topology/mesh.hpp"

namespace ddpm::mark {
namespace {

TEST(PpmLayout, Table1BoundaryOnMesh) {
  // Paper §4.2: on the 4x4 mesh two 4-bit indexes + a 3-bit distance = 11
  // bits fit; Table 1 says the full-edge layout tops out at 8x8.
  topo::Mesh small({4, 4});
  const auto l4 = PpmLayout::for_topology(PpmVariant::kFullEdge, small);
  EXPECT_EQ(l4.total_bits, 4 + 4 + 3);
  EXPECT_TRUE(l4.fits);

  topo::Mesh eight({8, 8});
  const auto l8 = PpmLayout::for_topology(PpmVariant::kFullEdge, eight);
  EXPECT_EQ(l8.total_bits, 16);
  EXPECT_TRUE(l8.fits);

  topo::Mesh sixteen({16, 16});
  EXPECT_FALSE(PpmLayout::for_topology(PpmVariant::kFullEdge, sixteen).fits);
}

TEST(PpmLayout, RequiredBitsFormulae) {
  // 8x8 mesh: 2*log(64) + log(2*8) = 6+6+4 = 16.
  EXPECT_EQ(PpmLayout::required_bits(PpmVariant::kFullEdge, 64, 14), 16);
  // XOR drops one index.
  EXPECT_EQ(PpmLayout::required_bits(PpmVariant::kXor, 64, 14), 10);
  // Bit-diff: index + log(index bits) + distance.
  EXPECT_EQ(PpmLayout::required_bits(PpmVariant::kBitDiff, 64, 14), 6 + 3 + 4);
}

TEST(PpmScheme, ConstructorRejectsOversizedTopology) {
  topo::Mesh big({16, 16});
  EXPECT_THROW(PpmScheme(big, PpmVariant::kFullEdge, 0.04, 1),
               std::invalid_argument);
  // XOR still fits on 16x16: 8 + 5 = 13 bits.
  EXPECT_NO_THROW(PpmScheme(big, PpmVariant::kXor, 0.04, 1));
}

TEST(PpmScheme, RejectsBadProbability) {
  topo::Mesh m({4, 4});
  EXPECT_THROW(PpmScheme(m, PpmVariant::kFullEdge, 0.0, 1),
               std::invalid_argument);
  EXPECT_THROW(PpmScheme(m, PpmVariant::kFullEdge, 1.5, 1),
               std::invalid_argument);
  EXPECT_NO_THROW(PpmScheme(m, PpmVariant::kFullEdge, 1.0, 1));
}

TEST(PpmScheme, AlwaysMarkWritesLastSwitch) {
  // p = 1: every switch overwrites, so the delivered mark is always the
  // last forwarding switch at distance 0.
  topo::Mesh m({4, 4});
  PpmScheme scheme(m, PpmVariant::kFullEdge, 1.0, 7);
  const auto router = route::make_router("dor", m);
  const auto walk = walk_packet(m, *router, &scheme, 0, 3);
  ASSERT_TRUE(walk.delivered());
  const auto& layout = scheme.layout();
  const auto field = walk.packet.marking_field();
  EXPECT_EQ(pkt::read_unsigned(field, layout.distance), 0);
  // Last forwarding switch is the destination's predecessor (0,2) = id 2.
  EXPECT_EQ(pkt::read_unsigned(field, layout.start), 2);
}

TEST(PpmScheme, DistanceIncrementsWhenNotMarking) {
  // Force a mark at the source then never again (rig via p=1 scheme for one
  // hop, then a p-epsilon scheme): emulate by marking manually.
  topo::Mesh m({8, 8});
  PpmScheme scheme(m, PpmVariant::kFullEdge, 1e-9, 3);
  const auto router = route::make_router("dor", m);
  // Seed the field as if switch 0 had just marked (start=0, distance=0).
  auto layout = scheme.layout();
  std::uint16_t seeded = 0;
  seeded = pkt::write_unsigned(seeded, layout.start, 0);
  seeded = pkt::write_unsigned(seeded, layout.distance, 0);
  // Destination (7,0) = id 56: a 7-hop column path with 7 forwarding
  // switches, each of which increments the seeded distance once.
  const auto walk = walk_packet(m, *router, &scheme, 0, 56, {}, seeded);
  ASSERT_TRUE(walk.delivered());
  const auto field = walk.packet.marking_field();
  EXPECT_EQ(pkt::read_unsigned(field, layout.distance), 7);
}

TEST(PpmScheme, DistanceSaturatesAtFieldMax) {
  topo::Mesh m({8, 8});
  PpmScheme scheme(m, PpmVariant::kFullEdge, 1e-9, 3);
  auto layout = scheme.layout();
  pkt::Packet p;
  p.set_marking_field(pkt::write_unsigned(0, layout.distance, 0));
  // Hammer more forwards than the distance field can count.
  for (int i = 0; i < 100; ++i) scheme.on_forward(p, 0, 1);
  EXPECT_EQ(pkt::read_unsigned(p.marking_field(), layout.distance),
            std::uint16_t(layout.max_distance()));
}

TEST(PpmScheme, MarkingProbabilityRoughlyHonored) {
  topo::Mesh m({8, 8});
  PpmScheme scheme(m, PpmVariant::kFullEdge, 0.25, 11);
  const auto layout = scheme.layout();
  int fresh = 0;
  constexpr int kTrials = 10000;
  for (int i = 0; i < kTrials; ++i) {
    pkt::Packet p;
    p.set_marking_field(pkt::write_unsigned(0, layout.distance, 5));
    scheme.on_forward(p, 9, 10);
    // A fresh mark resets distance to 0; otherwise it increments to 6.
    fresh += (pkt::read_unsigned(p.marking_field(), layout.distance) == 0);
  }
  EXPECT_NEAR(double(fresh) / kTrials, 0.25, 0.02);
}

TEST(PpmFormula, MatchesPaperNumbers) {
  // Savage's bound ln(d) / (p (1-p)^{d-1}).
  EXPECT_NEAR(ppm_expected_packets(10, 0.04), std::log(10.0) / (0.04 * std::pow(0.96, 9)),
              1e-9);
  // Longer paths need superlinearly more packets.
  EXPECT_GT(ppm_expected_packets(30, 0.04), ppm_expected_packets(10, 0.04) * 3);
  // Fragmented variant is k ln(kd) / ...
  EXPECT_GT(ppm_expected_packets_fragmented(10, 0.04, 8),
            ppm_expected_packets(10, 0.04));
}

TEST(PpmVariantNames, Stable) {
  EXPECT_EQ(to_string(PpmVariant::kFullEdge), "ppm-full");
  EXPECT_EQ(to_string(PpmVariant::kXor), "ppm-xor");
  EXPECT_EQ(to_string(PpmVariant::kBitDiff), "ppm-bitdiff");
}

}  // namespace
}  // namespace ddpm::mark
