#include "netsim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ddpm::netsim {
namespace {

TEST(Simulator, ClockAdvancesToEventTimes) {
  Simulator sim;
  std::vector<SimTime> observed;
  sim.schedule_at(10, [&] { observed.push_back(sim.now()); });
  sim.schedule_at(25, [&] { observed.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(observed, (std::vector<SimTime>{10, 25}));
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  SimTime inner = 0;
  sim.schedule_at(100, [&] {
    sim.schedule_in(5, [&] { inner = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(inner, 105u);
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(20, [&] { ++fired; });
  sim.schedule_at(30, [&] { ++fired; });
  sim.run(20);
  EXPECT_EQ(fired, 2);       // the t=20 event fires, t=30 does not
  EXPECT_EQ(sim.now(), 20u);
  sim.run(30);
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunReturnsEventCount) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(SimTime(i), [] {});
  EXPECT_EQ(sim.run(), 7u);
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) sim.schedule_in(1, chain);
  };
  sim.schedule_at(0, chain);
  sim.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.now(), 9u);
}

TEST(Simulator, StepExecutesOneEvent) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1, [&] { ++fired; });
  sim.schedule_at(2, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, PastScheduleAtClampsToNow) {
  Simulator sim;
  SimTime when = 0;
  sim.schedule_at(50, [&] {
    sim.schedule_at(10, [&] { when = sim.now(); });  // in the past
  });
  sim.run();
  EXPECT_EQ(when, 50u);
}

TEST(Simulator, ClampedEventsAreCounted) {
  // The clamp keeps past-stamped events from corrupting the clock, but a
  // model leaning on it is mis-computing timestamps; the counter makes
  // that visible without turning the clamp into a hard failure.
  Simulator sim;
  sim.schedule_at(100, [&] {
    sim.schedule_at(10, [] {});   // past: clamped
    sim.schedule_at(100, [] {});  // exactly now: not a clamp
    sim.schedule_at(30, [] {});   // past: clamped
    sim.schedule_at(200, [] {});  // future: not a clamp
  });
  EXPECT_EQ(sim.clamped_events(), 0u);
  sim.run();
  EXPECT_EQ(sim.clamped_events(), 2u);
}

TEST(Simulator, ReserveDoesNotDisturbPendingEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(5, [&] { ++fired; });
  sim.reserve(4096);
  sim.schedule_at(6, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, ClearPendingDropsEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1, [&] { ++fired; });
  sim.clear_pending();
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.schedule_at(5, [&] { ++fired; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, HorizonAdvancesClockEvenWithoutEvents) {
  Simulator sim;
  sim.run(1000);
  EXPECT_EQ(sim.now(), 1000u);
}

}  // namespace
}  // namespace ddpm::netsim
