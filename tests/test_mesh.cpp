#include "topology/mesh.hpp"

#include <gtest/gtest.h>

namespace ddpm::topo {
namespace {

TEST(Mesh, PaperFigure1aProperties) {
  // Figure 1(a): a 4x4 2-D mesh has degree 4 and diameter 6.
  Mesh m({4, 4});
  EXPECT_EQ(m.num_nodes(), 16u);
  EXPECT_EQ(m.degree(), 4);
  EXPECT_EQ(m.diameter(), 6);
  EXPECT_EQ(m.num_dims(), 2u);
  EXPECT_EQ(m.spec(), "mesh:4x4");
  EXPECT_EQ(m.kind(), TopologyKind::kMesh);
}

TEST(Mesh, IdCoordBijection) {
  Mesh m({3, 5});
  for (NodeId id = 0; id < m.num_nodes(); ++id) {
    EXPECT_EQ(m.id_of(m.coord_of(id)), id);
  }
}

TEST(Mesh, RowMajorLayout) {
  Mesh m({3, 4});  // dims {k0=3, k1=4}, last dim varies fastest
  EXPECT_EQ(m.coord_of(0), (Coord{0, 0}));
  EXPECT_EQ(m.coord_of(1), (Coord{0, 1}));
  EXPECT_EQ(m.coord_of(4), (Coord{1, 0}));
  EXPECT_EQ(m.id_of(Coord{2, 3}), 11u);
}

TEST(Mesh, InteriorNodeHasAllNeighbors) {
  Mesh m({4, 4});
  const NodeId center = m.id_of(Coord{1, 1});
  EXPECT_EQ(m.neighbors(center).size(), 4u);
}

TEST(Mesh, CornerNodeHasTwoNeighbors) {
  Mesh m({4, 4});
  EXPECT_EQ(m.neighbors(m.id_of(Coord{0, 0})).size(), 2u);
  EXPECT_EQ(m.neighbors(m.id_of(Coord{3, 3})).size(), 2u);
}

TEST(Mesh, BoundaryPortsDoNotExist) {
  Mesh m({4, 4});
  const NodeId corner = m.id_of(Coord{0, 0});
  EXPECT_FALSE(m.neighbor(corner, 0).has_value());  // dim0 minus
  EXPECT_TRUE(m.neighbor(corner, 1).has_value());   // dim0 plus
  EXPECT_FALSE(m.neighbor(corner, 2).has_value());  // dim1 minus
  EXPECT_TRUE(m.neighbor(corner, 3).has_value());
}

TEST(Mesh, PortConvention) {
  Mesh m({4, 4});
  const NodeId n = m.id_of(Coord{2, 2});
  EXPECT_EQ(m.neighbor(n, 0), m.id_of(Coord{1, 2}));  // dim0 -
  EXPECT_EQ(m.neighbor(n, 1), m.id_of(Coord{3, 2}));  // dim0 +
  EXPECT_EQ(m.neighbor(n, 2), m.id_of(Coord{2, 1}));  // dim1 -
  EXPECT_EQ(m.neighbor(n, 3), m.id_of(Coord{2, 3}));  // dim1 +
}

TEST(Mesh, PortToInvertsNeighbor) {
  Mesh m({4, 4});
  for (NodeId id = 0; id < m.num_nodes(); ++id) {
    for (Port p = 0; p < m.num_ports(); ++p) {
      if (auto n = m.neighbor(id, p)) {
        EXPECT_EQ(m.port_to(id, *n), p);
      }
    }
  }
}

TEST(Mesh, PortToNonNeighborIsEmpty) {
  Mesh m({4, 4});
  EXPECT_FALSE(m.port_to(m.id_of(Coord{0, 0}), m.id_of(Coord{2, 0})).has_value());
  EXPECT_FALSE(m.port_to(m.id_of(Coord{0, 0}), m.id_of(Coord{1, 1})).has_value());
  EXPECT_FALSE(m.port_to(0, 0).has_value());
}

TEST(Mesh, MinHopsIsManhattan) {
  Mesh m({5, 5});
  EXPECT_EQ(m.min_hops(m.id_of(Coord{0, 0}), m.id_of(Coord{4, 4})), 8);
  EXPECT_EQ(m.min_hops(m.id_of(Coord{2, 3}), m.id_of(Coord{2, 3})), 0);
  EXPECT_EQ(m.min_hops(m.id_of(Coord{1, 1}), m.id_of(Coord{2, 3})), 3);
}

TEST(Mesh, ThreeDimensional) {
  Mesh m({2, 3, 4});
  EXPECT_EQ(m.num_nodes(), 24u);
  EXPECT_EQ(m.degree(), 5);  // the radix-2 dimension contributes one link
  EXPECT_EQ(Mesh({3, 3, 3}).degree(), 6);  // paper's 2n with interiors
  EXPECT_EQ(m.diameter(), 1 + 2 + 3);
  EXPECT_EQ(m.spec(), "mesh:2x3x4");
}

TEST(Mesh, InvalidConstructionThrows) {
  EXPECT_THROW(Mesh({}), std::invalid_argument);
  EXPECT_THROW(Mesh({1, 4}), std::invalid_argument);  // radix < 2
  EXPECT_THROW(Mesh({70000, 70000}), std::invalid_argument);  // id overflow
}

TEST(Mesh, LinksCountMatchesFormula) {
  // n x m mesh has n(m-1) + m(n-1) undirected links.
  Mesh m({4, 6});
  EXPECT_EQ(m.links().size(), std::size_t(4 * 5 + 6 * 3));
}

TEST(Mesh, CoordOfOutOfRangeThrows) {
  Mesh m({2, 2});
  EXPECT_THROW(m.coord_of(4), std::out_of_range);
  EXPECT_THROW(m.id_of(Coord{2, 0}), std::out_of_range);
  EXPECT_THROW(m.id_of(Coord{0, -1}), std::out_of_range);
  EXPECT_THROW(m.id_of(Coord{0}), std::invalid_argument);
}

}  // namespace
}  // namespace ddpm::topo
