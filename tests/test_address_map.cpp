#include "packet/address_map.hpp"

#include <gtest/gtest.h>

namespace ddpm::pkt {
namespace {

TEST(AddressMap, Bijective) {
  AddressMap map(64);
  for (topo::NodeId n = 0; n < 64; ++n) {
    const Ipv4Address addr = map.address_of(n);
    EXPECT_EQ(map.node_of(addr), n);
  }
}

TEST(AddressMap, AddressesAreInClusterRange) {
  AddressMap map(100);
  for (topo::NodeId n = 0; n < 100; ++n) {
    EXPECT_EQ(map.address_of(n) & AddressMap::kClusterMask,
              AddressMap::kClusterBase);
  }
  EXPECT_EQ(map.address_of(0), 0x0a000001u);  // 10.0.0.1
}

TEST(AddressMap, ForeignAddressesAreNotNodes) {
  AddressMap map(16);
  EXPECT_FALSE(map.node_of(0xc0a80001).has_value());  // 192.168.0.1
  EXPECT_FALSE(map.node_of(0x0a000000).has_value());  // base itself unused
  EXPECT_FALSE(map.node_of(0x0a000011).has_value());  // host 17 > 16 nodes
  EXPECT_TRUE(map.node_of(0x0a000010).has_value());   // host 16 = node 15
  EXPECT_FALSE(map.is_cluster_address(0xdeadbeef));
  EXPECT_TRUE(map.is_cluster_address(map.address_of(3)));
}

TEST(AddressMap, OutOfRangeNodeThrows) {
  AddressMap map(8);
  EXPECT_THROW(map.address_of(8), std::out_of_range);
}

}  // namespace
}  // namespace ddpm::pkt
