#include "packet/marking_field.hpp"

#include <gtest/gtest.h>

namespace ddpm::pkt {
namespace {

TEST(MarkingField, UnsignedRoundTrip) {
  const FieldSlice s{4, 6};
  std::uint16_t f = 0xffff;
  f = write_unsigned(f, s, 42);
  EXPECT_EQ(read_unsigned(f, s), 42);
  // Bits outside the slice untouched.
  EXPECT_EQ(f & 0x000f, 0x000f);
  EXPECT_EQ(f & 0xfc00, 0xfc00);
}

TEST(MarkingField, UnsignedRangeChecked) {
  const FieldSlice s{0, 4};
  EXPECT_NO_THROW(write_unsigned(0, s, 15));
  EXPECT_THROW(write_unsigned(0, s, 16), std::range_error);
}

TEST(MarkingField, SignedRoundTripAllValues) {
  const FieldSlice s{3, 5};  // holds [-16, 15]
  for (int v = -16; v <= 15; ++v) {
    const std::uint16_t f = write_signed(0, s, v);
    EXPECT_EQ(read_signed(f, s), v) << v;
  }
}

TEST(MarkingField, SignedRangeChecked) {
  const FieldSlice s{0, 5};
  EXPECT_NO_THROW(write_signed(0, s, -16));
  EXPECT_NO_THROW(write_signed(0, s, 15));
  EXPECT_THROW(write_signed(0, s, -17), std::range_error);
  EXPECT_THROW(write_signed(0, s, 16), std::range_error);
}

TEST(MarkingField, SignedPreservesNeighborSlices) {
  const FieldSlice lo{0, 8};
  const FieldSlice hi{8, 8};
  std::uint16_t f = 0;
  f = write_signed(f, lo, -3);
  f = write_signed(f, hi, 100);
  EXPECT_EQ(read_signed(f, lo), -3);
  EXPECT_EQ(read_signed(f, hi), 100);
  f = write_signed(f, lo, 77);
  EXPECT_EQ(read_signed(f, hi), 100);  // untouched by the lo rewrite
}

TEST(MarkingField, Bits) {
  std::uint16_t f = 0;
  f = write_bit(f, 0, true);
  f = write_bit(f, 15, true);
  EXPECT_TRUE(read_bit(f, 0));
  EXPECT_TRUE(read_bit(f, 15));
  EXPECT_FALSE(read_bit(f, 7));
  f = write_bit(f, 15, false);
  EXPECT_FALSE(read_bit(f, 15));
  EXPECT_TRUE(read_bit(f, 0));
}

TEST(MarkingField, MaskMatchesSlice) {
  EXPECT_EQ((FieldSlice{0, 16}).mask(), 0xffff);
  EXPECT_EQ((FieldSlice{8, 8}).mask(), 0xff00);
  EXPECT_EQ((FieldSlice{4, 1}).mask(), 0x0010);
}

TEST(MarkingField, FullWidthSigned) {
  const FieldSlice s{0, 16};
  EXPECT_EQ(read_signed(write_signed(0, s, -32768), s), -32768);
  EXPECT_EQ(read_signed(write_signed(0, s, 32767), s), 32767);
}

}  // namespace
}  // namespace ddpm::pkt
