// Adversarial deployments: compromised switches and partial deployment
// (stress-testing the paper's §4.1 trust assumption and §6.1 future work).
#include "marking/tamper.hpp"

#include <gtest/gtest.h>

#include "marking/ddpm.hpp"
#include "marking/walk.hpp"
#include "routing/router.hpp"
#include "topology/mesh.hpp"

namespace ddpm::mark {
namespace {

using topo::Coord;

TEST(Tampering, HonestPathStillIdentifies) {
  topo::Mesh m({6, 6});
  TamperingScheme scheme(std::make_unique<DdpmScheme>(m),
                         {m.id_of(Coord{5, 0})},  // corner off every path used
                         TamperingScheme::Action::kRandomize);
  DdpmIdentifier identifier(m);
  const auto router = route::make_router("dor", m);
  const auto walk = walk_packet(m, *router, &scheme, 0, 14);
  ASSERT_TRUE(walk.delivered());
  EXPECT_EQ(identifier.identify(14, walk.packet.marking_field()), 0u);
  EXPECT_EQ(scheme.tamper_count(), 0u);
}

TEST(Tampering, CompromisedSwitchOnPathBreaksIdentification) {
  topo::Mesh m({6, 6});
  const auto mid = m.id_of(Coord{3, 0});  // on the XY path 0 -> (5,0)
  TamperingScheme scheme(std::make_unique<DdpmScheme>(m), {mid},
                         TamperingScheme::Action::kZero);
  DdpmIdentifier identifier(m);
  const auto router = route::make_router("dor", m);
  const auto dst = m.id_of(Coord{5, 0});
  const auto walk = walk_packet(m, *router, &scheme, 0, dst);
  ASSERT_TRUE(walk.delivered());
  EXPECT_GT(scheme.tamper_count(), 0u);
  const auto named = identifier.identify(dst, walk.packet.marking_field());
  // Zeroing at `mid` makes the remaining hops accumulate (dst - mid's
  // successor...), so the victim names the tamperer's neighborhood, not
  // the true source.
  ASSERT_TRUE(named.has_value());
  EXPECT_NE(*named, 0u);
}

TEST(Tampering, FrameUpNamesTheConfiguredInnocent) {
  topo::Mesh m({6, 6});
  DdpmCodec codec(m);
  const auto dst = m.id_of(Coord{5, 5});
  const auto innocent = m.id_of(Coord{0, 5});
  // Craft the field that, at dst, decodes to the innocent node...
  const auto frame =
      codec.encode(m.coord_of(dst) - m.coord_of(innocent));
  // ...and compromise the destination's last-hop switch.
  const auto last = m.id_of(Coord{5, 4});
  TamperingScheme scheme(std::make_unique<DdpmScheme>(m), {last},
                         TamperingScheme::Action::kFrameUp, frame);
  DdpmIdentifier identifier(m);
  const auto router = route::make_router("dor", m);
  const auto walk = walk_packet(m, *router, &scheme, 0, dst);
  ASSERT_TRUE(walk.delivered());
  EXPECT_EQ(identifier.identify(dst, walk.packet.marking_field()), innocent);
}

TEST(Tampering, RandomizedFieldsOftenDetectablyInvalid) {
  // Random 16-bit values frequently decode outside the coordinate space;
  // the victim can at least *detect* (not attribute) such tampering.
  topo::Mesh m({6, 6});
  const auto mid = m.id_of(Coord{2, 2});
  TamperingScheme scheme(std::make_unique<DdpmScheme>(m), {mid},
                         TamperingScheme::Action::kRandomize);
  DdpmIdentifier identifier(m);
  const auto router = route::make_router("dor", m);
  const auto dst = m.id_of(Coord{2, 5});
  int invalid = 0, trials = 200;
  for (int i = 0; i < trials; ++i) {
    WalkOptions options;
    options.seed = std::uint64_t(i);
    options.record_path = false;
    const auto walk =
        walk_packet(m, *router, &scheme, m.id_of(Coord{2, 0}), dst, options);
    ASSERT_TRUE(walk.delivered());
    if (!identifier.identify(dst, walk.packet.marking_field())) ++invalid;
  }
  // 6x6 mesh: the per-dimension slice holds [-8,7] but only 11 deltas are
  // in range, so most random fields decode out of range.
  EXPECT_GT(invalid, trials / 2);
}

TEST(PartialDeployment, FullDeploymentEqualsPlainScheme) {
  topo::Mesh m({5, 5});
  std::unordered_set<topo::NodeId> all;
  for (topo::NodeId n = 0; n < m.num_nodes(); ++n) all.insert(n);
  PartialDeploymentScheme scheme(std::make_unique<DdpmScheme>(m), all);
  DdpmIdentifier identifier(m);
  const auto router = route::make_router("adaptive", m);
  for (topo::NodeId s = 0; s < m.num_nodes(); s += 3) {
    const topo::NodeId d = (s + 7) % m.num_nodes();
    if (s == d) continue;
    const auto walk = walk_packet(m, *router, &scheme, s, d);
    ASSERT_TRUE(walk.delivered());
    EXPECT_EQ(identifier.identify(d, walk.packet.marking_field()), s);
  }
}

TEST(PartialDeployment, MissingSwitchSkewsTheVector) {
  topo::Mesh m({5, 5});
  std::unordered_set<topo::NodeId> deployed;
  for (topo::NodeId n = 0; n < m.num_nodes(); ++n) deployed.insert(n);
  const auto hole = m.id_of(Coord{2, 0});  // un-deployed switch on the path
  deployed.erase(hole);
  PartialDeploymentScheme scheme(std::make_unique<DdpmScheme>(m), deployed);
  DdpmIdentifier identifier(m);
  const auto router = route::make_router("dor", m);
  const auto dst = m.id_of(Coord{4, 0});
  const auto walk = walk_packet(m, *router, &scheme, 0, dst);
  ASSERT_TRUE(walk.delivered());
  const auto named = identifier.identify(dst, walk.packet.marking_field());
  // The hole's hop went unrecorded: V is short by one unit, so the victim
  // names the true source's neighbor — off by exactly the missing hop.
  ASSERT_TRUE(named.has_value());
  EXPECT_EQ(*named, m.id_of(Coord{1, 0}));
}

TEST(PartialDeployment, UndeployedSourceSwitchLeaksAttackerSeed) {
  // If the SOURCE's switch is not deployed, nobody zeroes the field at
  // injection: the attacker's seed survives until the next deployed switch
  // and shifts attribution — quantified in bench_partial_deployment.
  topo::Mesh m({5, 5});
  std::unordered_set<topo::NodeId> deployed;
  for (topo::NodeId n = 1; n < m.num_nodes(); ++n) deployed.insert(n);
  PartialDeploymentScheme scheme(std::make_unique<DdpmScheme>(m), deployed);
  DdpmIdentifier identifier(m);
  DdpmCodec codec(m);
  const auto router = route::make_router("dor", m);
  const auto dst = m.id_of(Coord{0, 4});
  // Attacker at node (0,0) seeds V = (0,-2). The deployed switches add the
  // remaining (0,3) of the path (the source switch's (0,1) is missing), so
  // the victim computes (0,4) - (0,1) = (0,3): attribution lands on an
  // innocent node two hops away, exactly where the seed pointed it.
  const auto seed_field = codec.encode(Coord{0, -2});
  const auto walk = walk_packet(m, *router, &scheme, 0, dst, {}, seed_field);
  ASSERT_TRUE(walk.delivered());
  const auto named = identifier.identify(dst, walk.packet.marking_field());
  ASSERT_TRUE(named.has_value());
  EXPECT_EQ(*named, m.id_of(Coord{0, 3}));  // deflected to an innocent
}

}  // namespace
}  // namespace ddpm::mark
