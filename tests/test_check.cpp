// Contract-layer tests: the macros themselves, plus death tests proving
// the wired invariants actually fire where the tooling pass installed them
// (event-queue monotonicity, torus coordinate ranges).
#include "core/check.hpp"

#include <gtest/gtest.h>

#include "netsim/event_queue.hpp"
#include "topology/torus.hpp"

namespace ddpm {
namespace {

TEST(Check, PassingCheckIsSilent) {
  DDPM_CHECK(1 + 1 == 2);
  DDPM_CHECK(true, "with a message");
  DDPM_DCHECK(2 * 2 == 4, "also fine");
  SUCCEED();
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(DDPM_CHECK(false, "deliberate failure"),
               "DDPM_CHECK failure: false \\(deliberate failure\\)");
}

TEST(CheckDeathTest, MessageIsOptional) {
  EXPECT_DEATH(DDPM_CHECK(2 < 1), "DDPM_CHECK failure: 2 < 1 at");
}

TEST(CheckDeathTest, UnreachableAborts) {
  EXPECT_DEATH(DDPM_UNREACHABLE("impossible branch"),
               "DDPM_UNREACHABLE failure: reached \\(impossible branch\\)");
}

#if DDPM_ENABLE_DCHECKS
TEST(CheckDeathTest, DcheckActiveInDebugBuilds) {
  EXPECT_DEATH(DDPM_DCHECK(false, "debug-only failure"),
               "DDPM_DCHECK failure: false");
}
#else
TEST(Check, DcheckCompiledOutInReleaseBuilds) {
  int evaluations = 0;
  // The condition must not be evaluated, only odr-used.
  DDPM_DCHECK(++evaluations > 0);
  EXPECT_EQ(evaluations, 0);
}
#endif

// The invariant the whole simulation rests on: once an event at time t has
// fired, nothing may be scheduled before t — otherwise the discrete-event
// loop would deliver packets into the past and every latency metric in
// Tables 1-3 would silently skew.
TEST(CheckDeathTest, NonMonotonicEventInsertFires) {
  netsim::EventQueue queue;
  queue.schedule(10, [] {});
  (void)queue.pop();  // watermark is now 10
  EXPECT_DEATH(queue.schedule(5, [] {}),
               "DDPM_CHECK failure:.*event scheduled in the simulated past");
}

TEST(Check, MonotonicScheduleAtWatermarkIsAllowed) {
  netsim::EventQueue queue;
  queue.schedule(10, [] {});
  (void)queue.pop();
  queue.schedule(10, [] {});  // equal to the watermark: legal
  queue.schedule(11, [] {});
  EXPECT_EQ(queue.size(), 2u);
}

TEST(CheckDeathTest, PopOnEmptyQueueFires) {
  netsim::EventQueue queue;
  EXPECT_DEATH((void)queue.pop(), "DDPM_CHECK failure:.*pop on empty queue");
}

// Coordinate-range contract in the torus wraparound math: ring_delta's
// modular reduction is only overflow-safe for genuine coordinates.
TEST(CheckDeathTest, OutOfRangeCoordinateFires) {
  const topo::Torus torus({4, 4});
  EXPECT_DEATH((void)torus.ring_delta(0, 99, 0),
               "DDPM_CHECK failure:.*coordinate outside \\[0, k\\)");
  EXPECT_DEATH((void)torus.ring_delta(-1, 2, 1),
               "DDPM_CHECK failure:.*coordinate outside \\[0, k\\)");
}

TEST(CheckDeathTest, OutOfRangeDimensionFires) {
  const topo::Torus torus({4, 4});
  EXPECT_DEATH((void)torus.ring_delta(0, 1, 7),
               "DDPM_CHECK failure:.*dimension out of range");
}

TEST(Check, InRangeRingDeltaUnaffected) {
  const topo::Torus torus({5, 5});
  EXPECT_EQ(torus.ring_delta(0, 4, 0), -1);  // wraparound is the short way
  EXPECT_EQ(torus.ring_delta(4, 0, 1), +1);
  EXPECT_EQ(torus.ring_delta(1, 3, 0), +2);
}

}  // namespace
}  // namespace ddpm
