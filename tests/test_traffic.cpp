#include "attack/traffic.hpp"

#include <gtest/gtest.h>

#include <map>

#include "topology/factory.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"

namespace ddpm::attack {
namespace {

using topo::Coord;

TEST(Uniform, NeverPicksSelfAndCoversAll) {
  topo::Mesh m({4, 4});
  UniformPattern pattern(m);
  netsim::Rng rng(1);
  std::map<NodeId, int> counts;
  for (int i = 0; i < 30000; ++i) {
    const NodeId d = pattern.pick_dest(5, rng);
    EXPECT_NE(d, 5u);
    ++counts[d];
  }
  EXPECT_EQ(counts.size(), 15u);
  for (const auto& [node, c] : counts) {
    EXPECT_NEAR(double(c), 2000.0, 300.0);
  }
}

TEST(Transpose, ReversesCoordinates) {
  topo::Mesh m({4, 4});
  TransposePattern pattern(m);
  netsim::Rng rng(2);
  EXPECT_EQ(pattern.pick_dest(m.id_of(Coord{1, 3}), rng), m.id_of(Coord{3, 1}));
  EXPECT_EQ(pattern.pick_dest(m.id_of(Coord{0, 2}), rng), m.id_of(Coord{2, 0}));
}

TEST(Transpose, DiagonalFallsBackToUniform) {
  topo::Mesh m({4, 4});
  TransposePattern pattern(m);
  netsim::Rng rng(3);
  const NodeId diag = m.id_of(Coord{2, 2});
  for (int i = 0; i < 100; ++i) EXPECT_NE(pattern.pick_dest(diag, rng), diag);
}

TEST(Transpose, RequiresEqualDims) {
  topo::Mesh uneven({4, 8});
  EXPECT_THROW(TransposePattern{uneven}, std::invalid_argument);
}

TEST(Complement, MirrorsEachDimension) {
  topo::Mesh m({4, 4});
  ComplementPattern pattern(m);
  netsim::Rng rng(4);
  EXPECT_EQ(pattern.pick_dest(m.id_of(Coord{0, 0}), rng), m.id_of(Coord{3, 3}));
  EXPECT_EQ(pattern.pick_dest(m.id_of(Coord{1, 2}), rng), m.id_of(Coord{2, 1}));
}

TEST(Complement, IsBitComplementOnHypercube) {
  topo::Hypercube h(4);
  ComplementPattern pattern(h);
  netsim::Rng rng(5);
  EXPECT_EQ(pattern.pick_dest(0b0101, rng), 0b1010u);
  EXPECT_EQ(pattern.pick_dest(0b0000, rng), 0b1111u);
}

TEST(BitReverse, ReversesFlatIdBits) {
  topo::Hypercube h(4);  // 16 nodes, 4 bits
  BitReversePattern pattern(h);
  netsim::Rng rng(6);
  EXPECT_EQ(pattern.pick_dest(0b0001, rng), 0b1000u);
  EXPECT_EQ(pattern.pick_dest(0b0011, rng), 0b1100u);
}

TEST(Hotspot, FractionToHotspot) {
  topo::Mesh m({4, 4});
  HotspotPattern pattern(m, 7, 0.3);
  netsim::Rng rng(7);
  int to_hotspot = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    to_hotspot += (pattern.pick_dest(0, rng) == 7u);
  }
  // 30% direct + uniform residue landing on node 7 occasionally.
  EXPECT_NEAR(double(to_hotspot) / kTrials, 0.3 + 0.7 / 15.0, 0.02);
}

TEST(Hotspot, HotspotItselfSendsUniform) {
  topo::Mesh m({4, 4});
  HotspotPattern pattern(m, 7, 1.0);
  netsim::Rng rng(8);
  for (int i = 0; i < 100; ++i) EXPECT_NE(pattern.pick_dest(7, rng), 7u);
}

TEST(PatternFactory, BuildsAllAndRejectsUnknown) {
  topo::Mesh m({4, 4});
  for (const char* name :
       {"uniform", "transpose", "complement", "bit-reverse", "hotspot"}) {
    EXPECT_NE(make_pattern(name, m), nullptr) << name;
  }
  EXPECT_THROW(make_pattern("zipf", m), std::invalid_argument);
}

}  // namespace
}  // namespace ddpm::attack
