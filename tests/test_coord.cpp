#include "topology/coord.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace ddpm::topo {
namespace {

TEST(Coord, DefaultIsEmpty) {
  Coord c;
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.size(), 0u);
}

TEST(Coord, DimensionConstructorZeroes) {
  auto c = Coord(std::size_t(4));
  EXPECT_EQ(c.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(c[i], 0);
}

TEST(Coord, InitializerList) {
  Coord c{1, -2, 3};
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c[0], 1);
  EXPECT_EQ(c[1], -2);
  EXPECT_EQ(c[2], 3);
}

TEST(Coord, EqualityRequiresSameDimsAndValues) {
  EXPECT_EQ((Coord{1, 2}), (Coord{1, 2}));
  EXPECT_NE((Coord{1, 2}), (Coord{1, 3}));
  EXPECT_NE((Coord{1, 2}), (Coord{1, 2, 0}));
}

TEST(Coord, Arithmetic) {
  const Coord a{3, 5};
  const Coord b{1, 7};
  EXPECT_EQ(a + b, (Coord{4, 12}));
  EXPECT_EQ(a - b, (Coord{2, -2}));
  EXPECT_EQ((Coord{1, 0, 1} ^ Coord{1, 1, 0}), (Coord{0, 1, 1}));
}

TEST(Coord, ArithmeticDimMismatchThrows) {
  EXPECT_THROW((void)(Coord{1, 2} + Coord{1}), std::invalid_argument);
  EXPECT_THROW((void)(Coord{1, 2} - Coord{1, 2, 3}), std::invalid_argument);
}

TEST(Coord, Norms) {
  EXPECT_EQ((Coord{3, -4, 0}).l1_norm(), 7);
  EXPECT_EQ((Coord{3, -4, 0}).nonzero_count(), 2);
  EXPECT_EQ((Coord{0, 0}).l1_norm(), 0);
}

TEST(Coord, AtThrowsOutOfRange) {
  const Coord c{1, 2};
  EXPECT_EQ(c.at(1), 2);
  EXPECT_THROW(c.at(2), std::out_of_range);
}

TEST(Coord, TooManyDimsThrows) {
  EXPECT_THROW(Coord(std::size_t(17)), std::invalid_argument);
  EXPECT_NO_THROW(Coord(std::size_t(16)));
}

TEST(Coord, ToString) {
  EXPECT_EQ((Coord{1, -2}).to_string(), "(1,-2)");
  EXPECT_EQ(Coord{}.to_string(), "()");
}

TEST(Coord, HashDistinguishesValuesAndDims) {
  std::unordered_set<std::size_t> hashes;
  hashes.insert((Coord{0, 0}).hash());
  hashes.insert((Coord{0, 1}).hash());
  hashes.insert((Coord{1, 0}).hash());
  hashes.insert((Coord{0, 0, 0}).hash());
  hashes.insert((Coord{-1, 0}).hash());
  EXPECT_EQ(hashes.size(), 5u);
}

TEST(Coord, UsableAsUnorderedMapKey) {
  std::unordered_set<Coord, CoordHash> set;
  set.insert(Coord{1, 2});
  set.insert(Coord{1, 2});
  set.insert(Coord{2, 1});
  EXPECT_EQ(set.size(), 2u);
}

}  // namespace
}  // namespace ddpm::topo
