#include "topology/torus.hpp"

#include <gtest/gtest.h>

#include "topology/graph.hpp"

namespace ddpm::topo {
namespace {

TEST(Torus, PaperFigure1bProperties) {
  // Figure 1(b): a 4-ary 2-cube has degree 2n = 4 and diameter sum(k/2) = 4.
  Torus t({4, 4});
  EXPECT_EQ(t.num_nodes(), 16u);
  EXPECT_EQ(t.degree(), 4);
  EXPECT_EQ(t.diameter(), 4);
  EXPECT_EQ(t.spec(), "torus:4x4");
  EXPECT_EQ(t.kind(), TopologyKind::kTorus);
}

TEST(Torus, EveryNodeHasFullDegree) {
  Torus t({4, 5});
  for (NodeId id = 0; id < t.num_nodes(); ++id) {
    EXPECT_EQ(t.neighbors(id).size(), 4u);
  }
}

TEST(Torus, WraparoundNeighbors) {
  Torus t({4, 4});
  const NodeId corner = t.id_of(Coord{0, 0});
  EXPECT_EQ(t.neighbor(corner, 0), t.id_of(Coord{3, 0}));  // dim0 minus wraps
  EXPECT_EQ(t.neighbor(corner, 2), t.id_of(Coord{0, 3}));  // dim1 minus wraps
}

TEST(Torus, PortToHandlesWraparound) {
  Torus t({4, 4});
  const NodeId a = t.id_of(Coord{0, 0});
  const NodeId b = t.id_of(Coord{3, 0});
  EXPECT_EQ(t.port_to(a, b), 0);  // reach via minus direction
  EXPECT_EQ(t.port_to(b, a), 1);  // reach via plus direction
}

TEST(Torus, RingDeltaShortestDirection) {
  Torus t({8, 8});
  EXPECT_EQ(t.ring_delta(0, 3, 0), 3);
  EXPECT_EQ(t.ring_delta(0, 5, 0), -3);   // shorter the other way
  EXPECT_EQ(t.ring_delta(7, 0, 0), 1);    // wrap forward
  EXPECT_EQ(t.ring_delta(0, 4, 0), 4);    // tie resolves positive
  EXPECT_EQ(t.ring_delta(2, 2, 0), 0);
}

TEST(Torus, MinHopsMatchesBfs) {
  Torus t({4, 5});
  for (NodeId a = 0; a < t.num_nodes(); ++a) {
    const auto dist = bfs_distances(t, a);
    for (NodeId b = 0; b < t.num_nodes(); ++b) {
      EXPECT_EQ(t.min_hops(a, b), dist[b]) << "a=" << a << " b=" << b;
    }
  }
}

TEST(Torus, DiameterMatchesBfsEccentricity) {
  Torus t({5, 6});
  int worst = 0;
  const auto dist = bfs_distances(t, 0);
  for (int d : dist) worst = std::max(worst, d);
  // Vertex-transitive: eccentricity of node 0 is the diameter.
  EXPECT_EQ(t.diameter(), worst);
}

TEST(Torus, OddRadixDiameter) {
  Torus t({5, 5});
  EXPECT_EQ(t.diameter(), 4);  // floor(5/2) per dimension
}

TEST(Torus, MinimumRadixIsThree) {
  EXPECT_THROW(Torus({2, 4}), std::invalid_argument);
  EXPECT_NO_THROW(Torus({3, 3}));
}

TEST(Torus, LinksCountIsNTimesDims) {
  // Every node owns one positive link per dimension: N*n undirected links.
  Torus t({4, 4});
  EXPECT_EQ(t.links().size(), std::size_t(16 * 2));
}

TEST(Torus, ThreeDimensional) {
  Torus t({4, 4, 4});
  EXPECT_EQ(t.num_nodes(), 64u);
  EXPECT_EQ(t.degree(), 6);
  EXPECT_EQ(t.diameter(), 6);
}

}  // namespace
}  // namespace ddpm::topo
