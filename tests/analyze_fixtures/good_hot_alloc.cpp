// ddpm_analyze fixture: hot-no-alloc MUST-PASS case.
// Growth calls whose receiver is reserve()d in the same file are
// slab-backed in steady state (the reserve-dominates heuristic), and
// allocation in functions outside the hot closure is free to stay.
#include <vector>

#define DDPM_HOT

namespace fx {

void warm_up(std::vector<int>& xs) {
  // Not reachable from any DDPM_HOT function: allocation is fine here.
  int* scratch = new int(7);
  xs.push_back(*scratch);
  delete scratch;
}

DDPM_HOT int hot_tick(std::vector<int>& xs) {
  xs.reserve(16);
  xs.push_back(1);  // reserve() above dominates: no finding
  return int(xs.size());
}

}  // namespace fx
