// tick-domain, compliant: every crossing between the SimTime and
// WindowIndex integer domains happens through an explicit conversion on
// the same line, and same-domain arithmetic is never flagged.
#include <cstdint>

using SimTime = std::uint64_t;
using WindowIndex = std::uint64_t;

class WindowClockOk {
 public:
  explicit WindowClockOk(SimTime len) : window_len_(len) {}

  WindowIndex index_of(SimTime now) const {
    return WindowIndex(now / window_len_);
  }

  bool window_elapsed(SimTime now) const {
    return now >= SimTime(open_window_ + 1) * window_len_;
  }

  // Same-domain arithmetic: one vocabulary, no crossing.
  bool before(SimTime a, SimTime b) const { return a + window_len_ < b; }

  void open_next() { open_window_ = open_window_ + 1; }

 private:
  WindowIndex open_window_ = 0;
  SimTime window_len_ = 1;
};
