// ddpm_analyze fixture: hot-no-div MUST-FLAG case.
// Integer division or modulo with a non-constant right operand inside the
// DDPM_HOT call-graph closure: the hardware divider is a 20-40 cycle
// partially-serializing unit, so a divisor that the compiler cannot
// strength-reduce does not belong on the hot path. Callees of a DDPM_HOT
// root inherit the budget, exactly like the other hot-path rules.
#define DDPM_HOT

namespace fx {

int spread(int value, int buckets) {
  return value % buckets;  // ddpm-analyze: expect(hot-no-div)
}

DDPM_HOT int hot_tick(int cursor, int window, int stride) {
  const int lane = spread(cursor, window);  // pulls spread() into the closure
  int share = cursor / stride;  // ddpm-analyze: expect(hot-no-div)
  share /= (window - 1);  // ddpm-analyze: expect(hot-no-div)
  return lane + share;
}

}  // namespace fx
