// ddpm_analyze fixture: suppression MUST-PASS case.
// Real violations carrying an `allow(rule)` comment are reported as
// suppressed, not as new findings, so this fixture must come out clean.
#include <chrono>
#include <cstdint>

namespace fx {

long profiling_stamp() {
  // Deliberate wall-clock read (imagine a profiling-only code path).
  auto t = std::chrono::steady_clock::now();  // ddpm-analyze: allow(no-wall-clock)
  return t.time_since_epoch().count();
}

static std::uint64_t g_debug_probe = 0;  // ddpm-analyze: allow(no-shared-mutable-static)

void poke() { g_debug_probe += 1; }

}  // namespace fx
