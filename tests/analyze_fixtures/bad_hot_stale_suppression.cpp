// ddpm_analyze fixture: stale hot-rule suppression MUST-FLAG case.
// The allocation was hoisted out of the hot path but its allow() comment
// stayed behind; the analyzer reports the dead suppression as debt.
#define DDPM_HOT

namespace fx {

DDPM_HOT int hot_add(int x) {
  return x + 1;  // ddpm-analyze: allow(hot-no-alloc) ddpm-analyze: expect(stale-suppression)
}

}  // namespace fx
