// ddpm_analyze fixture: no-wall-clock MUST-PASS cases.
// Simulation time comes from the event queue; durations are plain integers.
#include <cstdint>

namespace fx {

using SimTime = std::uint64_t;

class Clock {
 public:
  SimTime now() const noexcept { return now_; }
  void advance(SimTime dt) noexcept { now_ += dt; }

 private:
  SimTime now_ = 0;
};

SimTime deadline(const Clock& clock, SimTime timeout) {
  // "time" as an identifier fragment (timeout, SimTime) must not trip the
  // wall-clock rule; only real clock calls do.
  return clock.now() + timeout;
}

}  // namespace fx
