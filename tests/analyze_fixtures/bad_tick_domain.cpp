// tick-domain: additive/comparison arithmetic mixing SimTime (simulator
// ticks) and WindowIndex (window ordinals) operands without an explicit
// SimTime(...)/WindowIndex(...) conversion. Both alias to uint64_t, so
// the compiler is silent — the analyzer tracks the declared vocabulary.
#include <cstdint>

using SimTime = std::uint64_t;
using WindowIndex = std::uint64_t;

class WindowClock {
 public:
  explicit WindowClock(SimTime len) : window_len_(len) {}

  bool window_elapsed(SimTime now) const {
    return now >= open_window_;  // ddpm-analyze: expect(tick-domain)
  }

  SimTime deadline() const {
    SimTime at = open_window_ + window_len_;  // ddpm-analyze: expect(tick-domain)
    return at;
  }

  // The sanctioned crossing: an explicit conversion on the line.
  SimTime close_at() const { return SimTime(open_window_ + 1) * window_len_; }

 private:
  WindowIndex open_window_ = 0;
  SimTime window_len_ = 1;
};
