// det-taint: nondeterminism sources flowing interprocedurally into an
// annotated determinism sink. `publish_stats` is NOT result-path-named —
// only the DDPM_DET_SINK annotation marks it — so this is the
// generalization over ordered-iteration (PR 4): the naming convention
// alone cannot see any of these flows.
//
// The bucket_accumulate walk re-convicts the exact bug class PR 4 fixed
// in entropy_window: a float accumulation whose value depends on
// unordered_map iteration order.
#define DDPM_DET_SINK
#define DDPM_DET_SOURCE
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <unordered_map>

struct WindowStats {
  std::unordered_map<std::uint32_t, double> buckets;

  double bucket_accumulate() const {
    double sum = 0.0;
    for (const auto& [k, v] : buckets) {  // ddpm-analyze: expect(det-taint)
      sum += v;
    }
    return sum;
  }

  DDPM_DET_SOURCE static unsigned worker_count() {
    return std::thread::hardware_concurrency();  // ddpm-analyze: expect(det-taint)
  }

  DDPM_DET_SINK std::string publish_stats() const {
    double total = bucket_accumulate();
    unsigned w = worker_count();  // ddpm-analyze: expect(det-taint)
    std::map<const double*, int> by_addr;  // ddpm-analyze: expect(det-taint)
    by_addr[&total] = int(w);
    return std::to_string(total) + ":" + std::to_string(by_addr.size());
  }
};
