// ddpm_analyze fixture: no-wall-clock MUST-FLAG cases.
// Wall-clock reads make simulation results depend on when they ran.
#include <chrono>
#include <cstdlib>
#include <ctime>

namespace fx {

long stamp_run() {
  auto now = std::chrono::system_clock::now();  // ddpm-analyze: expect(no-wall-clock)
  return now.time_since_epoch().count();
}

long measure_phase() {
  auto t0 = std::chrono::steady_clock::now();  // ddpm-analyze: expect(no-wall-clock)
  return t0.time_since_epoch().count();
}

long legacy_seed() {
  return static_cast<long>(time(nullptr));  // ddpm-analyze: expect(no-wall-clock)
}

bool env_toggle() {
  return std::getenv("DDPM_FAST") != nullptr;  // ddpm-analyze: expect(no-wall-clock)
}

}  // namespace fx
