// det-taint, compliant: the sink walks a sorted snapshot, and the
// environment reads live in a tuning helper that no determinism sink can
// reach — closure scoping, not a blanket ban.
#define DDPM_DET_SINK
#define DDPM_DET_SOURCE
#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

struct WindowStatsOk {
  std::unordered_map<std::uint32_t, double> buckets;

  std::vector<std::pair<std::uint32_t, double>> sorted_buckets() const {
    std::vector<std::pair<std::uint32_t, double>> out(buckets.begin(),
                                                      buckets.end());
    std::sort(out.begin(), out.end());
    return out;
  }

  DDPM_DET_SINK std::string publish_stats() const {
    double sum = 0.0;
    for (const auto& kv : sorted_buckets()) {
      sum += kv.second;
    }
    return std::to_string(sum);
  }
};

// Environment reads are fine outside every sink closure: sizing a thread
// pool is an execution concern, not a result.
unsigned tune_pool_width() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}
