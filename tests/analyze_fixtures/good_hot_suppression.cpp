// ddpm_analyze fixture: hot-rule suppression MUST-PASS case.
// A deliberate hot-path violation carrying an allow() on the flagged line
// is reported as suppressed, not new (here: opt-in path tracing that
// pushes into an unreserved vector, mirroring src/wormhole/wormhole.cpp).
#include <vector>

#define DDPM_HOT

namespace fx {

DDPM_HOT int hot_trace(std::vector<int>& trace, int hop) {
  trace.push_back(hop);  // ddpm-analyze: allow(hot-no-alloc)
  return int(trace.size());
}

}  // namespace fx
