// ddpm_analyze fixture: hot-no-alloc MUST-FLAG case.
// A DDPM_HOT function (and its call-graph closure) may not allocate:
// operator new is flagged directly, and container growth is flagged when
// no dominating reserve() for that receiver appears in the file.
#include <vector>

#define DDPM_HOT

namespace fx {

void fill(std::vector<int>& xs) {
  xs.push_back(1);  // ddpm-analyze: expect(hot-no-alloc)
}

DDPM_HOT int hot_tick(std::vector<int>& xs) {
  fill(xs);  // pulls fill() into the hot closure
  int* scratch = new int(3);  // ddpm-analyze: expect(hot-no-alloc)
  const int v = *scratch + int(xs.size());
  delete scratch;
  return v;
}

}  // namespace fx
