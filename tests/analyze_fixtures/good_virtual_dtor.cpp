// ddpm_analyze fixture: virtual-dtor MUST-PASS cases.
#include <string>

namespace fx {

// The repo's house pattern: virtual dtor + protected defaulted copies.
class GoodBase {
 public:
  virtual ~GoodBase() = default;
  virtual std::string name() const = 0;

 protected:
  GoodBase() = default;
  GoodBase(const GoodBase&) = default;
  GoodBase& operator=(const GoodBase&) = default;
};

// Derived classes are exempt: the base already gatekeeps.
class Derived final : public GoodBase {
 public:
  std::string name() const override { return "derived"; }
};

// Deleted copies work too.
class NonCopyable {
 public:
  virtual ~NonCopyable() = default;
  virtual int id() const { return 1; }
  NonCopyable() = default;
  NonCopyable(const NonCopyable&) = delete;
  NonCopyable& operator=(const NonCopyable&) = delete;
};

// No virtual members at all: plain value type, rule does not apply.
class Value {
 public:
  int x() const { return x_; }

 private:
  int x_ = 0;
};

}  // namespace fx
