// ddpm_analyze fixture: shared-mutable-static MUST-PASS cases.
#include <array>
#include <cstdint>

namespace fx {

// Immutable statics are fine: constexpr / const / constinit-const.
static constexpr std::uint32_t kMaxPorts = 8;
static const std::array<int, 3> kWeights = {1, 2, 3};
constexpr double kAlpha = 0.25;

// Function-local constants are fine too.
int lookup(int i) {
  static constexpr std::array<int, 4> kTable = {0, 1, 4, 9};
  return kTable[static_cast<std::size_t>(i) % kTable.size()] +
         static_cast<int>(kMaxPorts) + kWeights[0] + static_cast<int>(kAlpha);
}

// Non-static locals never trip the rule.
int accumulate(int n) {
  int total = 0;
  for (int i = 0; i < n; ++i) total += i;
  return total;
}

}  // namespace fx
