// ddpm_analyze fixture: ordered-iteration MUST-FLAG cases.
// Iterating an unordered container inside (or reachable from) a
// result-path function leaks hash order into reported output.
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace fx {

class FlowTable {
 public:
  std::string to_json() const;             // result-path seed by name
  std::uint64_t merge_counts() const;      // result-path seed by name
  std::uint64_t helper_total() const;      // reachable from to_json()

 private:
  std::unordered_map<std::uint32_t, std::uint64_t> flows_;
  std::unordered_set<std::uint32_t> marked_;
};

std::uint64_t FlowTable::helper_total() const {
  std::uint64_t total = 0;
  for (const auto& [id, count] : flows_) {  // ddpm-analyze: expect(ordered-iteration)
    total += count * id;
  }
  return total;
}

std::string FlowTable::to_json() const {
  std::string out = "{";
  for (const std::uint32_t id : marked_) {  // ddpm-analyze: expect(ordered-iteration)
    out += std::to_string(id);
  }
  out += std::to_string(helper_total());
  return out + "}";
}

std::uint64_t FlowTable::merge_counts() const {
  std::uint64_t sum = 0;
  for (auto it = flows_.begin(); it != flows_.end(); ++it) {  // ddpm-analyze: expect(ordered-iteration)
    sum += it->second;
  }
  return sum;
}

}  // namespace fx
