// ddpm_analyze fixture: stale-suppression MUST-FLAG case.
// An allow() comment on a line that no longer violates its rule is debt
// that hides future regressions; the analyzer reports it.
#include <cstdint>

namespace fx {

std::uint64_t tick(std::uint64_t now) {
  // The wall-clock call was removed but the suppression stayed behind.
  std::uint64_t t = now + 1;  // ddpm-analyze: allow(no-wall-clock) ddpm-analyze: expect(stale-suppression)
  return t;
}

}  // namespace fx
