// shard-isolation: all three violation shapes.
//  (a) export_total is a determinism sink (annotated, not name-matched)
//      reading DDPM_SHARD_STATE directly instead of going through the
//      DDPM_SHARD_MERGE function.
//  (b) Auditor::sum touches the shard-state member name from outside the
//      owning class (the analyzer is deliberately name-conservative:
//      shard-state member names are reserved repo-wide).
//  (c) fold_shards is DDPM_SHARD_MERGE but its closure reads the thread
//      count, so the merge itself is not det-taint-clean.
#define DDPM_SHARD_STATE
#define DDPM_SHARD_MERGE
#define DDPM_DET_SINK
#include <cstdint>
#include <thread>
#include <vector>

class ShardedCounter {
 public:
  void ingest(std::size_t shard, std::uint64_t n) { slots_[shard] += n; }

  DDPM_DET_SINK std::uint64_t export_total() const {
    std::uint64_t t = 0;
    for (std::uint64_t v : slots_) t += v;  // ddpm-analyze: expect(shard-isolation)
    return t;
  }

  DDPM_SHARD_MERGE std::uint64_t fold_shards() const {  // ddpm-analyze: expect(shard-isolation)
    std::uint64_t t = 0;
    std::size_t stride = std::thread::hardware_concurrency();
    for (std::size_t i = 0; i < slots_.size(); i += stride ? stride : 1) {
      t += slots_[i];
    }
    return t;
  }

 private:
  DDPM_SHARD_STATE std::vector<std::uint64_t> slots_;
};

struct Auditor {
  std::vector<std::uint64_t> slots_;
  std::uint64_t sum() const {
    std::uint64_t t = 0;
    for (std::uint64_t v : slots_) t += v;  // ddpm-analyze: expect(shard-isolation)
    return t;
  }
};
