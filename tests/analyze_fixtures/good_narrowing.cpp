// ddpm_analyze fixture: narrowing-in-marking MUST-PASS cases.
#include <cstdint>

namespace fx {

std::uint16_t combine(std::uint16_t hi, std::uint16_t lo) {
  // Explicit cast: truncation is acknowledged at the call site.
  std::uint16_t word = static_cast<std::uint16_t>(hi << 8);
  std::uint16_t sum = static_cast<std::uint16_t>(hi + lo);
  return word > sum ? word : sum;
}

std::uint32_t widen(std::uint16_t hi, std::uint16_t lo) {
  // Widening target: the promoted int result fits, nothing narrows.
  std::uint32_t word = hi + lo;
  return word;
}

std::uint16_t copy_through(std::uint16_t field) {
  // Plain copy with no arithmetic: nothing to truncate.
  std::uint16_t mirror = field;
  // Bitwise AND of two 16-bit operands cannot exceed 16 bits.
  std::uint16_t masked = field & 0x0fff;
  return mirror > masked ? mirror : masked;
}

}  // namespace fx
