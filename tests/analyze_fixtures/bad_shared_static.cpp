// ddpm_analyze fixture: shared-mutable-static MUST-FLAG cases.
// Mutable globals couple parallel sweep jobs to each other; results then
// depend on scheduling.
#include <cstdint>
#include <vector>

namespace fx {

static std::uint64_t g_packet_count = 0;  // ddpm-analyze: expect(no-shared-mutable-static)

static std::vector<int> g_scratch;  // ddpm-analyze: expect(no-shared-mutable-static)

void bump() {
  static int calls = 0;  // ddpm-analyze: expect(no-shared-mutable-static)
  calls += 1;
  g_packet_count += static_cast<std::uint64_t>(calls);
  g_scratch.push_back(calls);
}

}  // namespace fx
