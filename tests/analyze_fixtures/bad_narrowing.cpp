// ddpm_analyze fixture: narrowing-in-marking MUST-FLAG cases.
// Integer promotion widens 16-bit operands to int; storing the arithmetic
// result back into a 16-bit marking field silently truncates.
#include <cstdint>

namespace fx {

std::uint16_t combine(std::uint16_t hi, std::uint16_t lo) {
  std::uint16_t word = hi << 8;  // ddpm-analyze: expect(narrowing-in-marking)
  std::uint16_t sum = hi + lo;   // ddpm-analyze: expect(narrowing-in-marking)
  return word + sum > 0xffff ? word : sum;
}

std::uint16_t scale(std::uint16_t distance) {
  std::uint16_t scaled = distance * 3;  // ddpm-analyze: expect(narrowing-in-marking)
  return scaled;
}

}  // namespace fx
