// rng-stream-discipline, compliant: worker streams derive from an
// explicit per-task seed / jump-stream argument, and a literal-seeded
// RNG outside every dispatch closure is legitimate (closure scoping, not
// a blanket ban on literals).
#include <cstddef>
#include <cstdint>

struct Rng {
  explicit Rng(std::uint64_t seed_value = 42) : state(seed_value) {}
  Rng jump_stream() const { return Rng(state * 6364136223846793005ULL + 1); }
  std::uint64_t state;
};

struct ParallelRunner {
  template <typename Fn>
  void for_each_index(std::size_t n, Fn&& fn) const {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
};

double simulate_one(std::uint64_t task_seed) {
  Rng rng(task_seed);
  return double(rng.state);
}

double run_workers(std::size_t n, std::uint64_t base_seed) {
  double total = 0.0;
  const ParallelRunner pool;
  pool.for_each_index(
      n, [&](std::size_t i) { total += simulate_one(base_seed + i); });
  return total;
}

// Outside every dispatch closure a fixed literal is fine: this is the
// one deterministic probe stream the smoke test uses.
double smoke_probe() {
  Rng rng(1234);
  return double(rng.state);
}
