// shard-isolation, compliant: shard state is touched only by its owning
// class; the sink path crosses shards exclusively through the
// DDPM_SHARD_MERGE function, whose closure is det-taint-clean; the
// per-shard ingest path never appears in any sink closure.
#define DDPM_SHARD_STATE
#define DDPM_SHARD_MERGE
#define DDPM_DET_SINK
#include <cstdint>
#include <vector>

class ShardedCounterOk {
 public:
  void ingest(std::size_t shard, std::uint64_t n) { lanes_[shard] += n; }

  DDPM_SHARD_MERGE std::uint64_t fold_lanes() const {
    std::uint64_t t = 0;
    for (std::uint64_t v : lanes_) t += v;
    return t;
  }

  DDPM_DET_SINK std::uint64_t export_total() const { return fold_lanes(); }

 private:
  DDPM_SHARD_STATE std::vector<std::uint64_t> lanes_;
};
