// ddpm_analyze fixture: hot-no-throw-io MUST-FLAG case.
// Throwing and console I/O reachable from a DDPM_HOT function stall the
// pipeline (unwinding tables, syscalls); report through counters instead.
#include <cstdio>

#define DDPM_HOT

namespace fx {

int checked(int x) {
  if (x < 0) throw x;  // ddpm-analyze: expect(hot-no-throw-io)
  std::printf("x=%d\n", x);  // ddpm-analyze: expect(hot-no-throw-io)
  return x;
}

DDPM_HOT int hot_step(int x) {
  return checked(x);  // pulls checked() into the hot closure
}

}  // namespace fx
