// ddpm_analyze fixture: hot-no-virtual MUST-PASS case.
// Calling through a concrete derived type devirtualizes: the receiver's
// declared class introduces no virtuals of its own (`override` only), so
// the compiler can bind the call statically.
#define DDPM_HOT

namespace fx {

class Base {
 public:
  virtual ~Base() = default;
  virtual int route(int x) const = 0;

 protected:
  Base() = default;
  Base(const Base&) = default;
  Base& operator=(const Base&) = delete;
};

class Mesh final : public Base {
 public:
  int route(int x) const override { return x + 1; }
};

DDPM_HOT int hot_pick(const Mesh& m) {
  return m.route(3);  // concrete final receiver: statically bound
}

}  // namespace fx
