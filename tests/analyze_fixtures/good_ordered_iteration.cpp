// ddpm_analyze fixture: ordered-iteration MUST-PASS cases.
// Ordered containers on result paths, unordered containers off them, and
// sort-before-emit are all fine.
#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace fx {

class GoodTable {
 public:
  std::string to_json() const;        // result path, but walks std::map
  std::uint64_t hot_lookup() const;   // walks unordered_map, NOT on a result path

 private:
  std::map<std::uint32_t, std::uint64_t> ordered_;
  std::unordered_map<std::uint32_t, std::uint64_t> cache_;
};

std::string GoodTable::to_json() const {
  std::string out = "{";
  for (const auto& [id, count] : ordered_) {  // std::map: deterministic order
    out += std::to_string(id) + ":" + std::to_string(count);
  }
  // Sort-before-emit: copy the unordered container into a vector first.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> rows(cache_.begin(),
                                                            cache_.end());
  std::sort(rows.begin(), rows.end());
  for (const auto& [id, count] : rows) {
    out += std::to_string(id + count);
  }
  return out + "}";
}

std::uint64_t GoodTable::hot_lookup() const {
  // Unordered iteration is fine here: hot_lookup is not reachable from any
  // result-path function, so hash order never escapes into output.
  std::uint64_t total = 0;
  for (const auto& [id, count] : cache_) {
    total += count + id;
  }
  return total;
}

}  // namespace fx
