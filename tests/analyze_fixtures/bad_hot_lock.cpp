// ddpm_analyze fixture: hot-no-lock MUST-FLAG case.
// The simulator hot loop is single-threaded by design; a lock or an
// atomic RMW reachable from a DDPM_HOT function is pure overhead.
#include <atomic>
#include <mutex>

#define DDPM_HOT

namespace fx {

struct Guarded {
  std::mutex m;
  std::atomic<int> hits{0};
  int v = 0;
};

DDPM_HOT int hot_count(Guarded& g) {
  std::lock_guard<std::mutex> lock(g.m);  // ddpm-analyze: expect(hot-no-lock)
  g.hits.fetch_add(1);  // ddpm-analyze: expect(hot-no-lock)
  return ++g.v;
}

}  // namespace fx
