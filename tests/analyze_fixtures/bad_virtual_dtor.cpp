// ddpm_analyze fixture: virtual-dtor MUST-FLAG cases.
#include <string>

namespace fx {

// Virtual method but non-virtual public destructor: deleting a derived
// object via a Base* is undefined behaviour.
class Base {  // ddpm-analyze: expect(virtual-dtor)
 public:
  virtual std::string name() const { return "base"; }
};

// Virtual destructor but copy operations left public and implicit: callers
// can slice a derived object through the base handle (C.67).
class Sliceable {  // ddpm-analyze: expect(virtual-dtor)
 public:
  virtual ~Sliceable() = default;
  virtual int id() const { return 0; }
};

}  // namespace fx
