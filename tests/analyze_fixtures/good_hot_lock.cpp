// ddpm_analyze fixture: hot-no-lock MUST-PASS case.
// Synchronization in registration/merge paths outside the hot closure is
// legitimate (the parallel sweep runner merges under a mutex).
#include <mutex>

#define DDPM_HOT

namespace fx {

struct Guarded {
  std::mutex m;
  int v = 0;
};

int merge_results(Guarded& g, int delta) {
  // Not reachable from any DDPM_HOT function.
  std::lock_guard<std::mutex> lock(g.m);
  g.v += delta;
  return g.v;
}

DDPM_HOT int hot_count(Guarded& g) {
  return g.v + 1;  // reads a plain field: no synchronization on the hot path
}

}  // namespace fx
