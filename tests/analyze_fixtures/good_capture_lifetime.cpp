// ddpm_analyze fixture: capture-lifetime MUST-PASS cases.
// By-value captures survive the enclosing frame; reference captures are
// fine in lambdas that run immediately (not scheduled).
#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

namespace fx {

using SimTime = std::uint64_t;

class Queue {
 public:
  void schedule(SimTime at, std::function<void()> action) {
    last_at_ = at;
    last_ = std::move(action);
  }

 private:
  SimTime last_at_ = 0;
  std::function<void()> last_;
};

void arm_by_value(Queue& q, std::uint32_t node) {
  int retries = 3;
  q.schedule(100, [retries, node]() mutable {
    retries -= 1;
    (void)node;
  });
}

void arm_default_copy(Queue& q) {
  int budget = 7;
  q.schedule(50, [=]() { (void)budget; });
}

int count_big(const std::vector<int>& xs, int floor) {
  // Immediate lambda: reference capture is fine, it never outlives the frame.
  return static_cast<int>(
      std::count_if(xs.begin(), xs.end(), [&](int x) { return x > floor; }));
}

}  // namespace fx
