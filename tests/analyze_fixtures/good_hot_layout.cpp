// ddpm_analyze fixture: layout-certified MUST-PASS case.
// The DDPM_HOT_LAYOUT pin matches the real LP64 layout of the record
// (two ints: 8 bytes, 4-byte alignment), so the libclang cross-check and
// the textual presence check both come out clean.
#define DDPM_HOT_STATE
#define DDPM_HOT_LAYOUT(TYPE, SIZE, ALIGN)

namespace fx {

struct DDPM_HOT_STATE Slot {
  int credits;
  int occupancy;
};
DDPM_HOT_LAYOUT(Slot, 8, 4);

inline int peek(const Slot& s) { return s.credits + s.occupancy; }

}  // namespace fx
