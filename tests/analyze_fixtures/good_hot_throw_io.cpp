// ddpm_analyze fixture: hot-no-throw-io MUST-PASS case.
// Precondition validation that throws is fine in cold setup paths; the
// hot function reports failure through its return value.
#include <cstdio>

#define DDPM_HOT

namespace fx {

void validate_config(int x) {
  // Construction-time validation, not reachable from any DDPM_HOT root.
  if (x < 0) throw x;
  std::printf("configured x=%d\n", x);
}

DDPM_HOT int hot_step(int x) {
  if (x < 0) return -1;  // failure is a value, not an exception
  return x + 1;
}

}  // namespace fx
