// ddpm_analyze fixture: hot-no-div MUST-PASS case.
// Constant divisors are free: the compiler strength-reduces them to
// shifts/multiplies, so literals, sizeof, and constant-cased identifiers
// (kArity, BUCKET_WORDS — optionally behind Qualifier:: scopes) are all
// exempt. Division outside the DDPM_HOT closure is also free to stay.
#include <cstddef>

#define DDPM_HOT

namespace fx {

constexpr int kArity = 4;
constexpr int BUCKET_WORDS = 16;

struct Wheel {
  static constexpr int kWindow = 64;
};

int cold_average(int total, int samples) {
  // Not reachable from any DDPM_HOT function: divide freely.
  return total / samples;
}

DDPM_HOT int hot_tick(int cursor, std::size_t bytes) {
  const int parent = (cursor - 1) / kArity;
  const int word = cursor / BUCKET_WORDS;
  const int lane = cursor % Wheel::kWindow;
  const int cells = int(bytes / sizeof(int));
  const int half = cursor / 2;
  return parent + word + lane + cells + half;
}

}  // namespace fx
