// ddpm_analyze fixture: capture-lifetime MUST-FLAG cases.
// A lambda handed to the scheduler runs later; reference captures dangle
// once the enclosing frame is gone.
#include <cstdint>
#include <functional>

namespace fx {

using SimTime = std::uint64_t;

class Queue {
 public:
  void schedule(SimTime at, std::function<void()> action) {
    last_at_ = at;
    last_ = std::move(action);
  }
  void schedule_in(SimTime delay, std::function<void()> action) {
    schedule(delay, std::move(action));
  }

 private:
  SimTime last_at_ = 0;
  std::function<void()> last_;
};

void arm_timeout(Queue& q) {
  int retries = 3;
  q.schedule(100, [&retries]() {  // ddpm-analyze: expect(capture-lifetime)
    retries -= 1;
  });
}

void arm_default_ref(Queue& q) {
  int budget = 7;
  q.schedule_in(50, [&]() {  // ddpm-analyze: expect(capture-lifetime)
    budget += 1;
  });
}

}  // namespace fx
