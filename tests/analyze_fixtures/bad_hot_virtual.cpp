// ddpm_analyze fixture: hot-no-virtual MUST-FLAG case.
// A member call through a receiver whose declared type is a class that
// declares virtual members is unresolvable dispatch on the hot path.
#define DDPM_HOT

namespace fx {

class Base {
 public:
  virtual ~Base() = default;
  virtual int route(int x) const = 0;

 protected:
  Base() = default;
  Base(const Base&) = default;
  Base& operator=(const Base&) = delete;
};

DDPM_HOT int hot_pick(const Base& b) {
  return b.route(3);  // ddpm-analyze: expect(hot-no-virtual)
}

}  // namespace fx
