// rng-stream-discipline: RNGs constructed inside the call-graph closure
// of a ParallelRunner dispatch site must derive from an explicit stream
// (jump_stream()/long_jump()/a seed argument). A literal or default seed
// gives every worker the SAME stream — replications silently correlate.
#include <cstddef>
#include <cstdint>

// Minimal stand-ins (the rule is lexical over Rng declarations and the
// dispatch-site vocabulary, same as the production netsim::Rng).
struct Rng {
  explicit Rng(std::uint64_t seed_value = 42) : state(seed_value) {}
  std::uint64_t state;
};

struct ParallelRunner {
  template <typename Fn>
  void for_each_index(std::size_t n, Fn&& fn) const {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
};

double simulate_one(std::uint64_t stream_id) {
  Rng rng(1234);  // ddpm-analyze: expect(rng-stream-discipline)
  Rng backup;     // ddpm-analyze: expect(rng-stream-discipline)
  return double(rng.state + backup.state + stream_id);
}

double run_workers(std::size_t n) {
  double total = 0.0;
  const ParallelRunner pool;
  pool.for_each_index(n, [&](std::size_t i) { total += simulate_one(i); });
  return total;
}
