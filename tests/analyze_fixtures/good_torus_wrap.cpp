// Self-test fixture: wrap arithmetic the torus-wrap rule must NOT flag —
// the audited ring_delta context itself, plain-int modular arithmetic with
// no Coord on the line, and Coord reads without any division.

namespace ddpm::topo {

struct Coord {
  int v[4] = {0, 0, 0, 0};
  int& operator[](int i) { return v[i]; }
  int operator[](int i) const { return v[i]; }
};

}  // namespace ddpm::topo

namespace fixture {

// The canonical helper: modular reduction on ring coordinates is its job,
// so the rule exempts any function named ring_delta by context.
int ring_delta(const ddpm::topo::Coord& c, int k) {
  return ((c[0] % k) + k) % k;
}

// Plain ints wrap freely — no Coord-typed operand anywhere on the line.
int plain_modulo(int a, int k) { return ((a % k) + k) % k; }

// Coord reads without % or / are fine in any function.
int manhattan(const ddpm::topo::Coord& a, const ddpm::topo::Coord& b) {
  int d = 0;
  for (int i = 0; i < 4; ++i) d += (a[i] > b[i]) ? a[i] - b[i] : b[i] - a[i];
  return d;
}

}  // namespace fixture
