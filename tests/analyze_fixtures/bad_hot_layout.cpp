// ddpm_analyze fixture: layout-certified MUST-FLAG case.
// Every DDPM_HOT_STATE record needs a DDPM_HOT_LAYOUT(size, align) pin in
// the same file, so accidental growth (a debug field, a fatter handle)
// shows up in review instead of silently bloating the hot working set.
#define DDPM_HOT_STATE
#define DDPM_HOT_LAYOUT(TYPE, SIZE, ALIGN)

namespace fx {

struct DDPM_HOT_STATE Slot {  // ddpm-analyze: expect(layout-certified)
  int credits;
  int occupancy;
};

inline int peek(const Slot& s) { return s.credits + s.occupancy; }

}  // namespace fx
